// Cloudflare validation (§6 of the paper): synthesize the July 2018
// firewall-rules snapshot — taken during the accidental April–August
// regression that gave every account tier the Enterprise-only country
// block — and regenerate Table 9 and Figure 5.
//
//	go run ./examples/cloudflare-rules [-scale 0.2]
package main

import (
	"flag"
	"fmt"
	"os"

	"geoblock"
	"geoblock/internal/analysis"
	"geoblock/internal/cfrules"
	"geoblock/internal/papertables"
)

func main() {
	scale := flag.Float64("scale", 0.2, "zone-population scale in (0,1]")
	flag.Parse()

	sys := geoblock.New(geoblock.Options{Scale: *scale})
	ds := sys.CloudflareRulesSnapshot()

	total := 0
	for _, z := range ds.ZonesPerTier {
		total += z
	}
	fmt.Printf("Snapshot: %d zones, %d active country-scoped rules\n\n", total, len(ds.Rules))

	papertables.PrintCloudflareTable9(os.Stdout, sys.World.Geo, ds)
	papertables.PrintFigure(os.Stdout,
		"Figure 5: Enterprise geoblock-rule activation over time (KP, IR, SY, SD, CU)",
		analysis.BuildFigure5(ds))

	fmt.Printf("Non-Enterprise block rules activated during the regression window: %d\n",
		ds.RegressionUptake())
	fmt.Printf("(every one of them would have been impossible before April 2018 —\n")
	fmt.Printf(" 'where the functionality is available, many websites will opt to use it')\n\n")

	kp := ds.CumulativeActivations("KP", []cfrules.Day{cfrules.DaySnapshot})[0]
	fmt.Printf("North Korea: %d Enterprise rules — the most blocked country among large customers,\n", kp)
	fmt.Printf("despite its negligible Internet access: sanctions compliance, not abuse, drives it.\n")
}
