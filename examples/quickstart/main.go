// Quickstart: build a small simulated Internet, run the Top-10K
// geoblocking study, and print who blocks whom.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sort"

	"geoblock"
)

func main() {
	// A 5%-scale world runs in a few seconds and still shows the
	// paper's shape: sanctioned countries on top, App Engine blocking
	// exactly the sanctioned set, Shopping leading the categories.
	sys := geoblock.New(geoblock.Options{Scale: 0.05})

	res := sys.RunTop10K(geoblock.Top10KConfig{})

	fmt.Printf("Scanned %d domains from %d countries: %d confirmed geoblocking instances\n\n",
		len(res.SafeDomains), len(res.Countries), len(res.Findings))

	// Group findings per domain.
	byDomain := map[string][]geoblock.Finding{}
	for _, f := range res.Findings {
		byDomain[f.DomainName] = append(byDomain[f.DomainName], f)
	}
	domains := make([]string, 0, len(byDomain))
	for d := range byDomain {
		domains = append(domains, d)
	}
	sort.Strings(domains)

	for _, d := range domains {
		fs := byDomain[d]
		fmt.Printf("%-28s via %-18v blocked in:", d, fs[0].Kind)
		for _, f := range fs {
			fmt.Printf(" %s", f.Country)
		}
		fmt.Println()
	}

	fmt.Printf("\n%d candidate pairs failed the %.0f%% agreement threshold (bot noise, policy changes, GeoIP errors)\n",
		res.Eliminated, 100*res.Config.Threshold)
}
