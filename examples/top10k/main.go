// Top-10K study end to end (§4 of the paper): the full discovery
// pipeline — safe-list filtering, the 3-sample snapshot across 177
// countries, length-outlier extraction, clustering, recall evaluation,
// confirmation — with every §4 table printed, plus the Figure 1/3
// subsampling experiment.
//
//	go run ./examples/top10k [-scale 0.1]
package main

import (
	"flag"
	"fmt"
	"os"

	"geoblock"
	"geoblock/internal/analysis"
	"geoblock/internal/papertables"
	"geoblock/internal/stats"
)

func main() {
	scale := flag.Float64("scale", 0.1, "population scale in (0,1]")
	flag.Parse()

	sys := geoblock.New(geoblock.Options{Scale: *scale})
	out := os.Stdout

	r := sys.RunTop10K(geoblock.Top10KConfig{})
	papertables.FindingsSummary(out, r)
	papertables.PrintTable1(out, analysis.BuildTable1(r))
	rows, total := analysis.BuildTable2(r)
	papertables.PrintTable2(out, rows, total)
	papertables.PrintTable3(out, analysis.BuildTable3(sys.World, r.Findings))
	papertables.PrintCategoryRates(out, "Table 4: Geoblocked sites by category",
		analysis.BuildCategoryRates(sys.World, analysis.RespondingDomains(r.Initial), r.Findings))
	papertables.PrintTable5(out, sys.World.Geo, analysis.BuildTable5(sys.World, r.Findings))
	papertables.PrintCountryCDN(out, "Table 6: Geoblocking by country",
		sys.World.Geo, analysis.BuildCountryCDNTable(r.Findings), 10)

	// The Figure 1/3 experiment: how many samples does confident
	// detection need?
	exp := sys.RunConsistencyExperiment(r, 100, 200, []int{1, 2, 3, 5, 10, 20})
	fmt.Println("Sampling design (Figures 1 and 3):")
	for _, k := range exp.SampleSizes {
		fmt.Printf("  %3d samples: %5.1f%% of pairs below the 80%% threshold, %5.2f%% chance of missing a geoblocker\n",
			k, 100*exp.FractionBelow(k, 0.8), 100*exp.MeanFalseNegative(k))
	}
	fmt.Println()
	papertables.PrintFigure(out, "Figure 3: false negative rate vs sample size",
		[]stats.Series{analysis.BuildFigure3(exp)})
}
