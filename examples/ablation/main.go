// Ablations of the paper's methodology choices (§4.1.5 and DESIGN.md
// §4): the length-cutoff sweep, the percentage-vs-raw comparison, the
// agreement-threshold sweep, and the single-link dendrogram the cut is
// taken from.
//
//	go run ./examples/ablation [-scale 0.05]
package main

import (
	"flag"
	"fmt"
	"os"

	"geoblock"
	"geoblock/internal/blockpage"
	"geoblock/internal/cluster"
	"geoblock/internal/fingerprint"
	"geoblock/internal/outlier"
	"geoblock/internal/papertables"
	"geoblock/internal/textfeat"
)

func main() {
	scale := flag.Float64("scale", 0.05, "population scale in (0,1]")
	flag.Parse()

	sys := geoblock.New(geoblock.Options{Scale: *scale})
	r := sys.RunTop10K(geoblock.Top10KConfig{})
	out := os.Stdout

	papertables.PrintClusterSummaries(out, r.ClusterSummaries(), 12)

	// 1. Length-cutoff sweep: "selection of length cutoff is relatively
	// arbitrary between 5% and 50%" (§4.1.5).
	fmt.Println("Length-cutoff sweep (outliers extracted | block pages recalled):")
	cls := fingerprint.NewClassifier()
	type obs struct {
		domain int32
		length int
		block  bool
	}
	var observations []obs
	for i := range r.Initial.Samples {
		sm := &r.Initial.Samples[i]
		if !sm.OK() || sm.BodyLen <= 0 {
			continue
		}
		isBlock := sm.Body != "" && cls.IsBlockPage(sm.Body)
		observations = append(observations, obs{sm.Domain, int(sm.BodyLen), isBlock})
	}
	for _, cut := range []float64{0.05, 0.15, 0.30, 0.50, 0.80} {
		extracted, recalled, blocks := 0, 0, 0
		for _, o := range observations {
			hit := r.Rep.IsOutlier(o.domain, o.length, cut)
			if hit {
				extracted++
			}
			if o.block {
				blocks++
				if hit {
					recalled++
				}
			}
		}
		fmt.Printf("  cutoff %2.0f%%: %6d outliers, recall %5.1f%% (%d/%d)\n",
			cut*100, extracted, 100*float64(recalled)/float64(max(blocks, 1)), recalled, blocks)
	}

	// 2. Percentage vs raw byte difference (the paper rejects raw:
	// "raw length differences excessively penalize long pages").
	fmt.Println("\nPercentage vs raw cutoff (block-page recall):")
	for _, delta := range []int{500, 2000, 8000} {
		recalled, blocks := 0, 0
		for _, o := range observations {
			if !o.block {
				continue
			}
			blocks++
			if r.Rep.IsOutlierRaw(o.domain, o.length, delta) {
				recalled++
			}
		}
		fmt.Printf("  raw Δ%5dB: recall %5.1f%%\n", delta, 100*float64(recalled)/float64(max(blocks, 1)))
	}
	_ = outlier.DefaultCutoff

	// 3. Agreement-threshold sweep over the candidate pairs.
	fmt.Println("\nAgreement-threshold sweep (candidate pairs eliminated):")
	for _, th := range []float64{0.5, 0.8, 0.95, 1.0} {
		eliminated := 0
		for _, rate := range r.AgreementRates {
			if rate < th {
				eliminated++
			}
		}
		fmt.Printf("  threshold %3.0f%%: %3d of %d eliminated\n",
			th*100, eliminated, len(r.AgreementRates))
	}

	// 4. The dendrogram behind the cluster cut: how the count moves
	// with the threshold.
	docs := make([]string, 0, len(r.Outliers))
	for i := range r.Outliers {
		docs = append(docs, r.Outliers[i].Body)
	}
	if len(docs) > 600 {
		docs = docs[:600]
	}
	_, vecs := textfeat.FitTransform(docs)
	dend := cluster.BuildDendrogram(docs, vecs, 8)
	fmt.Println("\nSingle-link dendrogram cuts (clusters at each threshold):")
	ths := []float64{0.5, 0.7, 0.82, 0.9, 0.97}
	counts := dend.ClusterCounts(ths)
	for i, th := range ths {
		marker := ""
		if th == 0.82 {
			marker = "   <- production cut"
		}
		fmt.Printf("  cosine ≥ %.2f: %4d clusters%s\n", th, counts[i], marker)
	}
	_ = blockpage.Kinds
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
