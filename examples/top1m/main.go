// Top-1M study end to end (§5 of the paper): CDN customer discovery by
// response headers, Akamai Pragma probing and App Engine netblock
// walking; the 5% sample; explicit confirmation (Tables 7 and 8); and
// the §5.2.2 consistency analysis that separates Akamai/Incapsula
// geoblocking from their bot defenses.
//
//	go run ./examples/top1m [-scale 0.1]
package main

import (
	"flag"
	"fmt"
	"os"

	"geoblock"
	"geoblock/internal/analysis"
	"geoblock/internal/papertables"
	"geoblock/internal/worldgen"
)

func main() {
	scale := flag.Float64("scale", 0.1, "population scale in (0,1]")
	flag.Parse()

	sys := geoblock.New(geoblock.Options{Scale: *scale})
	out := os.Stdout

	r := sys.RunTop1M(geoblock.Top1MConfig{})

	fmt.Printf("Discovery: %d unique CDN customers in the Top 1M (%d behind two services)\n",
		r.Discovered.Total(), r.DualCount)
	for _, p := range []worldgen.Provider{
		worldgen.Cloudflare, worldgen.CloudFront, worldgen.Akamai,
		worldgen.Incapsula, worldgen.AppEngine,
	} {
		fmt.Printf("  %-12s %6d customers\n", p, len(r.Discovered.ByProvider[p]))
	}
	fmt.Printf("After the category and Citizen Lab filters: %d eligible; sampled %d (%.0f%%)\n\n",
		r.EligibleCount, len(r.TestDomains), 100*r.Config.SampleFraction)

	papertables.PrintCountryCDN(out, "Table 7: Geoblocking among Top 1M sites, by country",
		sys.World.Geo, analysis.BuildCountryCDNTable(r.ExplicitFindings), 10)
	papertables.PrintCategoryRates(out, "Table 8: Geoblocked sites by top category",
		analysis.BuildCategoryRates(sys.World, analysis.RespondingDomains(r.Initial), r.ExplicitFindings))
	papertables.PrintProviderRates(out, "Per-provider geoblock rates (§5.2.1)",
		analysis.BuildProviderRates(r.TestedPerProvider, r.ExplicitFindings))

	papertables.PrintNonExplicit(out, r)
	for _, f := range r.NonExplicitFindings {
		fmt.Printf("  %-28s %-10v consistently blocks %v\n", f.DomainName, f.Kind, f.Blocked)
	}
	if r.CensoredGAEPairs > 0 {
		fmt.Printf("\n%d App Engine platform blocks were unmeasurable because national censorship fired first (§5.2.1)\n",
			r.CensoredGAEPairs)
	}
}
