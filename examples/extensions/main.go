// Future-work extensions (§7.3 of the paper), implemented: detection of
// timeout-based geoblocking, application-layer geo-discrimination
// (removed features, price markups), and region-granular blocking
// (Crimea vs mainland Ukraine).
//
//	go run ./examples/extensions [-scale 0.1]
package main

import (
	"flag"
	"fmt"
	"os"

	"geoblock"
	"geoblock/internal/geo"
	"geoblock/internal/papertables"
)

func main() {
	scale := flag.Float64("scale", 0.1, "population scale in (0,1]")
	flag.Parse()

	sys := geoblock.New(geoblock.Options{Scale: *scale})
	out := os.Stdout

	// The extensions reuse the §4 snapshot: run it first.
	r := sys.RunTop10K(geoblock.Top10KConfig{})
	fmt.Fprintf(out, "Base study: %d confirmed geoblocking instances. Now the §7.3 extensions.\n\n",
		len(r.Findings))

	// 1. Timeout geoblocking: domains that silently drop connections
	// from specific countries.
	timeouts := sys.AnalyzeTimeouts(r, 10)
	papertables.PrintTimeouts(out, timeouts)

	// 2. Application-layer discrimination across the whole responding
	// population, against a U.S. reference.
	targets := []geo.CountryCode{"IR", "SY", "SD", "CU", "CN", "RU", "BR", "IN", "NG", "UA"}
	app := sys.RunAppLayerStudy(respondingDomains(r), "US", targets)
	papertables.PrintAppLayer(out, app)

	// 3. Region granularity: probe every candidate domain through
	// Crimean vs mainland-Ukraine exits.
	regional := sys.RunRegionalAnalysis(candidateDomains(r), 12)
	papertables.PrintRegional(out, regional)
}

func respondingDomains(r *geoblock.Top10KResult) []string {
	ok := make([]bool, len(r.SafeDomains))
	for i := range r.Initial.Samples {
		if r.Initial.Samples[i].OK() {
			ok[r.Initial.Samples[i].Domain] = true
		}
	}
	var out []string
	for i, name := range r.SafeDomains {
		if ok[i] {
			out = append(out, name)
		}
	}
	return out
}

func candidateDomains(r *geoblock.Top10KResult) []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range r.Candidates {
		if !seen[f.DomainName] {
			seen[f.DomainName] = true
			out = append(out, f.DomainName)
		}
	}
	return out
}
