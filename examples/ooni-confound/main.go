// OONI confound (§7.1 of the paper): synthesize a censorship-
// measurement corpus over the Citizen Lab test list and show how much
// of it is actually server-side geoblocking — and how often the Tor
// control measurement is itself blocked.
//
//	go run ./examples/ooni-confound [-scale 0.1]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"geoblock"
	"geoblock/internal/blockpage"
	"geoblock/internal/papertables"
)

func main() {
	scale := flag.Float64("scale", 0.1, "population scale in (0,1]")
	flag.Parse()

	sys := geoblock.New(geoblock.Options{Scale: *scale})
	corpus := sys.SynthesizeOONI(2)
	a := sys.AnalyzeOONI(corpus)
	papertables.PrintOONI(os.Stdout, a)

	// Which geoblock pages pollute the corpus, and where?
	kindCounts := map[blockpage.Kind]int{}
	countryCounts := map[string]int{}
	for _, m := range corpus.Measurements {
		if m.LocalKind.Explicit() {
			kindCounts[m.LocalKind]++
			countryCounts[string(m.Country)]++
		}
	}
	fmt.Println("Geoblock pages inside the censorship corpus, by provider:")
	for _, k := range []blockpage.Kind{
		blockpage.Cloudflare, blockpage.CloudFront, blockpage.AppEngine,
		blockpage.Baidu, blockpage.Airbnb,
	} {
		if kindCounts[k] > 0 {
			fmt.Printf("  %-18v %6d cases\n", k, kindCounts[k])
		}
	}

	type cc struct {
		c string
		n int
	}
	var top []cc
	for c, n := range countryCounts {
		top = append(top, cc{c, n})
	}
	sort.Slice(top, func(i, j int) bool {
		if top[i].n != top[j].n {
			return top[i].n > top[j].n
		}
		return top[i].c < top[j].c
	})
	fmt.Println("\nTop countries with geoblock pages in 'censorship' data:")
	for i := 0; i < 8 && i < len(top); i++ {
		fmt.Printf("  %-4s %6d cases\n", top[i].c, top[i].n)
	}
	fmt.Println("\nA censorship study trusting this data without geoblocking")
	fmt.Println("fingerprints would misattribute every one of those cases.")
}
