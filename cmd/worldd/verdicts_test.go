package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"geoblock"
	"geoblock/internal/blockpage"
	"geoblock/internal/geo"
	"geoblock/internal/telemetry"
	"geoblock/internal/verdict"
)

// edgeSnapshot is the small fixed matrix the handler tests serve.
func edgeSnapshot(t testing.TB, version uint64) *verdict.Snapshot {
	t.Helper()
	src := verdict.Source{
		Version:   version,
		Seed:      42,
		Domains:   []string{"blocked.example", "clear.example", "swap.example"},
		Countries: []geo.CountryCode{"CN", "US"},
		Entries: []verdict.Entry{
			{Domain: "blocked.example", Country: "CN", Kind: blockpage.Cloudflare},
		},
	}
	if version > 1 {
		// Later studies also block swap.example — how the soak and swap
		// tests tell the two snapshots' answers apart.
		src.Entries = append(src.Entries, verdict.Entry{
			Domain: "swap.example", Country: "CN", Kind: blockpage.Akamai,
		})
	}
	snap, err := verdict.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// newEdgeServer serves just the verdict edge (no world) with the given
// limiter, returning the server and the edge for swaps.
func newEdgeServer(t testing.TB, limiter *verdict.Limiter) (*httptest.Server, *verdictEdge, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewWithClock(telemetry.Wall{})
	edge := newVerdictEdge(reg, limiter)
	var holder atomic.Pointer[geoblock.System]
	srv := httptest.NewServer(countRequests(reg, newMux(&holder, reg, edge, nil)))
	t.Cleanup(srv.Close)
	return srv, edge, reg
}

func TestVerdictEndpointGatesBeforeFirstSnapshot(t *testing.T) {
	srv, _, _ := newEdgeServer(t, nil)
	for _, req := range []struct {
		method, path, body string
	}{
		{http.MethodGet, "/v1/verdict?domain=blocked.example&cc=CN", ""},
		{http.MethodPost, "/v1/verdicts", `{"queries":[{"domain":"blocked.example","cc":"CN"}]}`},
	} {
		r, _ := http.NewRequest(req.method, srv.URL+req.path, strings.NewReader(req.body))
		resp, err := http.DefaultClient.Do(r)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s %s before first snapshot: status %d, want 503", req.method, req.path, resp.StatusCode)
		}
	}
}

func TestVerdictEndpointMethodGating(t *testing.T) {
	srv, edge, _ := newEdgeServer(t, nil)
	edge.Swap(edgeSnapshot(t, 1))
	cases := []struct {
		path    string
		methods []string // rejected methods
		allow   string
	}{
		{"/v1/verdict?domain=x&cc=CN", []string{http.MethodPost, http.MethodPut, http.MethodDelete}, "GET, HEAD"},
		{"/v1/verdicts", []string{http.MethodGet, http.MethodPut, http.MethodDelete}, "POST"},
		{"/v1/snapshot", []string{http.MethodGet, http.MethodPut, http.MethodDelete}, "POST"},
	}
	for _, c := range cases {
		for _, method := range c.methods {
			req, _ := http.NewRequest(method, srv.URL+c.path, strings.NewReader("x"))
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusMethodNotAllowed {
				t.Errorf("%s %s: status %d, want 405", method, c.path, resp.StatusCode)
			}
			if allow := resp.Header.Get("Allow"); allow != c.allow {
				t.Errorf("%s %s: Allow %q, want %q", method, c.path, allow, c.allow)
			}
		}
	}
}

func TestVerdictLookupStatuses(t *testing.T) {
	srv, edge, _ := newEdgeServer(t, nil)
	edge.Swap(edgeSnapshot(t, 1))
	cases := []struct {
		name    string
		query   string
		status  int
		blocked bool
		kind    string
	}{
		{"blocked pair", "domain=blocked.example&cc=CN", 200, true, "Cloudflare"},
		{"studied clear pair", "domain=clear.example&cc=US", 200, false, ""},
		{"studied domain, clear country", "domain=blocked.example&cc=US", 200, false, ""},
		{"unknown domain", "domain=nope.example&cc=CN", 404, false, ""},
		{"unknown country", "domain=blocked.example&cc=ZZ", 404, false, ""},
		{"missing domain", "cc=CN", 400, false, ""},
		{"missing cc", "domain=blocked.example", 400, false, ""},
	}
	for _, c := range cases {
		resp, err := http.Get(srv.URL + "/v1/verdict?" + c.query)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != c.status {
			t.Errorf("%s: status %d, want %d (%s)", c.name, resp.StatusCode, c.status, body)
			continue
		}
		if c.status != 200 {
			continue
		}
		var v verdictBody
		if err := json.Unmarshal(body, &v); err != nil {
			t.Errorf("%s: bad JSON %q: %v", c.name, body, err)
			continue
		}
		if v.Blocked != c.blocked || v.Kind != c.kind || v.Version != 1 {
			t.Errorf("%s: %+v, want blocked=%v kind=%q version=1", c.name, v, c.blocked, c.kind)
		}
	}
}

func TestVerdictETagRevalidation(t *testing.T) {
	srv, edge, reg := newEdgeServer(t, nil)
	snap := edgeSnapshot(t, 1)
	edge.Swap(snap)

	resp, err := http.Get(srv.URL + "/v1/verdict?domain=blocked.example&cc=CN")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	if etag != snap.ETag() {
		t.Fatalf("ETag %q, want %q", etag, snap.ETag())
	}

	// Revalidation with the current tag: 304, no body.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/verdict?domain=blocked.example&cc=CN", nil)
	req.Header.Set("If-None-Match", etag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation: status %d, want 304", resp.StatusCode)
	}
	if len(body) != 0 {
		t.Fatalf("304 carried a %d-byte body", len(body))
	}
	found := false
	for _, m := range reg.Snapshot().Counters {
		if m.Name == verdict.MetNotModified && m.Value == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("304 did not tick the not_modified counter")
	}

	// After a swap the old tag no longer matches: full 200 with the new
	// matrix's answers.
	edge.Swap(edgeSnapshot(t, 2))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("revalidation after swap: status %d, want 200", resp.StatusCode)
	}
	if newTag := resp.Header.Get("ETag"); newTag == etag || newTag == "" {
		t.Fatalf("ETag did not change across the swap: %q", newTag)
	}
	var v verdictBody
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.Version != 2 {
		t.Fatalf("post-swap answer carries version %d, want 2", v.Version)
	}
}

func TestVerdictBulk(t *testing.T) {
	srv, edge, _ := newEdgeServer(t, nil)
	snap := edgeSnapshot(t, 2)
	edge.Swap(snap)

	body := `{"queries":[
		{"domain":"blocked.example","cc":"CN"},
		{"domain":"swap.example","cc":"CN"},
		{"domain":"clear.example","cc":"US"},
		{"domain":"nope.example","cc":"CN"}
	]}`
	resp, err := http.Post(srv.URL+"/v1/verdicts", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bulk: status %d", resp.StatusCode)
	}
	var out struct {
		Version uint64       `json:"version"`
		ETag    string       `json:"etag"`
		Results []bulkResult `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Version != 2 || out.ETag != snap.ETag() || len(out.Results) != 4 {
		t.Fatalf("bulk envelope %+v", out)
	}
	want := []bulkResult{
		{Domain: "blocked.example", Country: "CN", Found: true, Blocked: true, Kind: "Cloudflare"},
		{Domain: "swap.example", Country: "CN", Found: true, Blocked: true, Kind: "Akamai"},
		{Domain: "clear.example", Country: "US", Found: true},
		{Domain: "nope.example", Country: "CN"},
	}
	for i, w := range want {
		if out.Results[i] != w {
			t.Errorf("bulk result %d = %+v, want %+v", i, out.Results[i], w)
		}
	}

	// Malformed and oversized batches are client errors.
	for name, bad := range map[string]string{
		"not json":      "{",
		"empty queries": `{"queries":[]}`,
		"over cap": `{"queries":[` + strings.Repeat(`{"domain":"a","cc":"US"},`, maxBulkQueries) + `{"domain":"a","cc":"US"}]}`,
	} {
		resp, err := http.Post(srv.URL+"/v1/verdicts", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

func TestVerdictLoadShedding(t *testing.T) {
	clock := &telemetry.Virtual{}
	srv, edge, reg := newEdgeServer(t, verdict.NewLimiter(1, 3, clock))
	edge.Swap(edgeSnapshot(t, 1))

	get := func() *http.Response {
		t.Helper()
		resp, err := http.Get(srv.URL + "/v1/verdict?domain=blocked.example&cc=CN")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}
	for i := 0; i < 3; i++ {
		if resp := get(); resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d inside burst: status %d", i, resp.StatusCode)
		}
	}
	resp := get()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("request beyond burst: status %d, want 429", resp.StatusCode)
	}
	retry, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || retry < 1 {
		t.Fatalf("Retry-After %q, want a positive integer", resp.Header.Get("Retry-After"))
	}
	// The bulk endpoint sheds through the same bucket.
	bresp, err := http.Post(srv.URL+"/v1/verdicts", "application/json",
		strings.NewReader(`{"queries":[{"domain":"blocked.example","cc":"CN"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	bresp.Body.Close()
	if bresp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("bulk beyond burst: status %d, want 429", bresp.StatusCode)
	}
	var shed int64
	for _, m := range reg.Snapshot().Counters {
		if m.Name == verdict.MetShed {
			shed = m.Value
		}
	}
	if shed != 2 {
		t.Fatalf("shed counter = %d, want 2", shed)
	}
	// Tokens refill with (virtual) time.
	clock.Advance(2 * time.Second)
	if resp := get(); resp.StatusCode != http.StatusOK {
		t.Fatalf("request after refill: status %d, want 200", resp.StatusCode)
	}
}

func TestSnapshotUploadAndSwap(t *testing.T) {
	srv, _, reg := newEdgeServer(t, nil)
	snap := edgeSnapshot(t, 1)

	resp, err := http.Post(srv.URL+"/v1/snapshot", "application/octet-stream", bytes.NewReader(snap.Encode()))
	if err != nil {
		t.Fatal(err)
	}
	var meta struct {
		Version uint64 `json:"version"`
		ETag    string `json:"etag"`
		Blocked int    `json:"blocked"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&meta); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || meta.Version != 1 || meta.ETag != snap.ETag() || meta.Blocked != 1 {
		t.Fatalf("upload: status %d meta %+v", resp.StatusCode, meta)
	}

	// The edge serves the uploaded matrix immediately.
	vresp, err := http.Get(srv.URL + "/v1/verdict?domain=blocked.example&cc=CN")
	if err != nil {
		t.Fatal(err)
	}
	var v verdictBody
	if err := json.NewDecoder(vresp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	vresp.Body.Close()
	if !v.Blocked || v.Version != 1 {
		t.Fatalf("post-upload verdict %+v", v)
	}

	// Corrupt uploads are rejected and do not disturb the live snapshot.
	bad := snap.Encode()
	bad[len(bad)-1] ^= 0xff
	resp, err = http.Post(srv.URL+"/v1/snapshot", "application/octet-stream", bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt upload: status %d, want 400", resp.StatusCode)
	}
	var swaps int64
	for _, m := range reg.Snapshot().Counters {
		if m.Name == verdict.MetSwaps {
			swaps = m.Value
		}
	}
	if swaps != 1 {
		t.Fatalf("swap counter = %d, want 1 (corrupt upload must not count)", swaps)
	}
}
