package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"geoblock"
	"geoblock/internal/telemetry"
	"geoblock/internal/trace"
	"geoblock/internal/verdict"
)

// TestDebugTraceServesChromeJSON: /debug/trace answers valid Chrome
// trace-event JSON from the daemon's tracer — including with a nil
// tracer, where the timeline is just the process metadata record.
func TestDebugTraceServesChromeJSON(t *testing.T) {
	reg := telemetry.NewWithClock(telemetry.Wall{})
	tr := trace.New(trace.Root(403)).WithWall(telemetry.Wall{})
	ev := trace.NewEvent(tr.Root().Child("scan/test", 0), "scan")
	ev.Phase = "test"
	ev.Outcome = "ok"
	tr.Record(ev)

	var holder atomic.Pointer[geoblock.System]
	srv := httptest.NewServer(newMux(&holder, reg, newVerdictEdge(reg, nil), tr))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 { // process_name metadata + the scan event
		t.Fatalf("%d traceEvents, want 2", len(doc.TraceEvents))
	}
	if doc.TraceEvents[1]["name"] != "scan" {
		t.Fatalf("event name = %v", doc.TraceEvents[1]["name"])
	}

	// Nil tracer: still valid Chrome JSON, just empty.
	srv2 := httptest.NewServer(newMux(&holder, reg, newVerdictEdge(reg, nil), nil))
	defer srv2.Close()
	resp2, err := http.Get(srv2.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if !strings.Contains(string(b), "traceEvents") {
		t.Fatalf("nil-tracer response is not a Chrome trace: %s", b)
	}
}

// TestSlowLookupExemplar: a request served slower than the edge's slow
// threshold leaves a runtime exemplar event carrying its trace ID next
// to the latency histogram observation.
func TestSlowLookupExemplar(t *testing.T) {
	reg := telemetry.NewWithClock(telemetry.Wall{})
	tr := trace.New(trace.Root(403)).WithWall(telemetry.Wall{})
	edge := newVerdictEdge(reg, nil)
	edge.Trace(tr)
	edge.slowNS = 0 // every request is "slow": the threshold is the knob under test
	edge.Swap(edgeSnapshot(t, 1))

	var holder atomic.Pointer[geoblock.System]
	srv := httptest.NewServer(newMux(&holder, reg, edge, tr))
	defer srv.Close()

	for i := 0; i < 2; i++ {
		resp, err := http.Get(srv.URL + "/v1/verdict?domain=blocked.example&cc=CN")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	snap := tr.Snapshot()
	var exemplars []trace.Event
	for _, ev := range snap.Events {
		if ev.Name == "verdict.lookup.slow" {
			exemplars = append(exemplars, ev)
		}
	}
	if len(exemplars) != 2 {
		t.Fatalf("%d slow-lookup exemplars, want 2", len(exemplars))
	}
	if exemplars[0].Span == exemplars[1].Span {
		t.Fatal("exemplars share a span ID; each request must be distinguishable")
	}
	for _, ev := range exemplars {
		if !ev.Runtime {
			t.Fatal("exemplar must be runtime-class: lookup traffic is schedule-dependent")
		}
		if ev.Trace != tr.Root().Trace {
			t.Fatalf("exemplar trace ID %s not under the daemon trace %s", ev.Trace, tr.Root().Trace)
		}
		if ev.WallDurNS <= 0 {
			t.Fatal("exemplar carries no duration")
		}
	}
	// The histogram got the same observations the exemplars annotate,
	// and the slow counter matches.
	ms := reg.Snapshot()
	foundHist := false
	for _, h := range ms.Histograms {
		if h.Name == verdict.HistLookupNanos && h.Total == 2 {
			foundHist = true
		}
	}
	if !foundHist {
		t.Fatalf("latency histogram missing or wrong total: %+v", ms.Histograms)
	}
	foundCount := false
	for _, c := range ms.Counters {
		if c.Name == verdict.MetSlowLookups && c.Value == 2 {
			foundCount = true
		}
	}
	if !foundCount {
		t.Fatalf("%s counter missing or wrong: %+v", verdict.MetSlowLookups, ms.Counters)
	}

	// The deterministic view strips exemplars: serving traffic is not
	// part of the study's determinism contract.
	if det := snap.Deterministic(); len(det.Events) != 0 {
		t.Fatalf("deterministic view kept %d serving events", len(det.Events))
	}
}

// TestWorlddMetricsPrometheus: the daemon's /debug/metrics negotiates
// into the Prometheus exposition format end to end.
func TestWorlddMetricsPrometheus(t *testing.T) {
	reg := telemetry.NewWithClock(telemetry.Wall{})
	reg.Counter("worldd.test").Add(3)
	var holder atomic.Pointer[geoblock.System]
	srv := httptest.NewServer(newMux(&holder, reg, newVerdictEdge(reg, nil), nil))
	defer srv.Close()

	req, _ := http.NewRequest("GET", srv.URL+"/debug/metrics", nil)
	req.Header.Set("Accept", "text/plain; version=0.0.4; charset=utf-8")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.PrometheusContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, telemetry.PrometheusContentType)
	}
	b, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(b), "# TYPE worldd_test counter") || !strings.Contains(string(b), "worldd_test 3") {
		t.Fatalf("exposition body wrong:\n%s", b)
	}
}
