package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"geoblock/internal/stats"
	"geoblock/internal/telemetry"
	"geoblock/internal/verdict"
)

// soakParams sizes the sustained-QPS soak. The default (always-on)
// shape keeps `go test ./...` fast; `make soak` sets GEOBLOCK_SOAK=full
// for the real run: more clients, a longer window, and the latency and
// throughput floors enforced.
type soakParams struct {
	clients  int
	duration time.Duration
	full     bool
}

func soakConfig() soakParams {
	if os.Getenv("GEOBLOCK_SOAK") == "full" {
		return soakParams{clients: 32, duration: 3 * time.Second, full: true}
	}
	return soakParams{clients: 8, duration: 300 * time.Millisecond, full: false}
}

// soakExpect is the ground truth the clients validate against, per
// snapshot version: the soak serves version 1 first, then swaps to
// version 2 mid-run. A response is judged against the version it
// *reports*, so in-flight requests across the swap stay valid.
func soakExpect(version uint64, domain string, cc string) (blocked bool, kind string, known bool) {
	if cc != "CN" && cc != "US" {
		return false, "", false
	}
	switch domain {
	case "blocked.example":
		if cc == "CN" {
			return true, "Cloudflare", true
		}
		return false, "", true
	case "swap.example":
		if cc == "CN" && version >= 2 {
			return true, "Akamai", true
		}
		return false, "", true
	case "clear.example":
		return false, "", true
	default:
		return false, "", false
	}
}

// TestVerdictSoak drives the verdict edge with concurrent clients for
// a sustained window, swaps the snapshot atomically mid-soak via
// POST /v1/snapshot, and asserts zero dropped or incorrect verdicts.
// Full mode (GEOBLOCK_SOAK=full) additionally enforces a p99 service
// latency bound from the telemetry histogram and a ≥1M lookups/s
// in-process floor.
func TestVerdictSoak(t *testing.T) {
	p := soakConfig()
	srv, edge, reg := newEdgeServer(t, nil) // shedding off: every request must be answered
	snapA := edgeSnapshot(t, 1)
	snapB := edgeSnapshot(t, 2)
	edge.Swap(snapA)

	queries := []struct{ domain, cc string }{
		{"blocked.example", "CN"},
		{"swap.example", "CN"},
		{"clear.example", "US"},
		{"blocked.example", "US"},
		{"nope.example", "CN"},   // outside universe: always 404
		{"blocked.example", "ZZ"}, // outside universe: always 404
	}

	wall := telemetry.Wall{}
	deadline := wall.Now().Add(p.duration)
	swapAt := wall.Now().Add(p.duration / 2)

	var (
		wg       sync.WaitGroup
		lookups  atomic.Int64
		notMod   atomic.Int64
		failures atomic.Int64
		firstErr atomic.Pointer[string]
	)
	fail := func(format string, args ...any) {
		failures.Add(1)
		msg := fmt.Sprintf(format, args...)
		firstErr.CompareAndSwap(nil, &msg)
	}

	client := func(id int) {
		defer wg.Done()
		rng := stats.NewRNG(uint64(id + 1)).Fork("soak")
		hc := &http.Client{}
		var lastETag string
		for i := 0; wall.Now().Before(deadline); i++ {
			q := queries[rng.Intn(len(queries))]
			switch {
			case i%16 == 15:
				// Bulk round trip over the full query set.
				var sb strings.Builder
				sb.WriteString(`{"queries":[`)
				for j, bq := range queries {
					if j > 0 {
						sb.WriteString(",")
					}
					fmt.Fprintf(&sb, `{"domain":%q,"cc":%q}`, bq.domain, bq.cc)
				}
				sb.WriteString("]}")
				resp, err := hc.Post(srv.URL+"/v1/verdicts", "application/json", strings.NewReader(sb.String()))
				if err != nil {
					fail("bulk: %v", err)
					return
				}
				var out struct {
					Version uint64       `json:"version"`
					Results []bulkResult `json:"results"`
				}
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					fail("bulk: status %d err %v", resp.StatusCode, err)
					return
				}
				for j, res := range out.Results {
					blocked, kind, known := soakExpect(out.Version, queries[j].domain, queries[j].cc)
					if res.Found != known || res.Blocked != blocked || res.Kind != kind {
						fail("bulk v%d (%s,%s): got %+v want found=%v blocked=%v kind=%q",
							out.Version, queries[j].domain, queries[j].cc, res, known, blocked, kind)
						return
					}
				}
				lookups.Add(int64(len(out.Results)))
			default:
				req, err := http.NewRequest(http.MethodGet,
					srv.URL+"/v1/verdict?domain="+q.domain+"&cc="+q.cc, nil)
				if err != nil {
					fail("request: %v", err)
					return
				}
				// Periodically revalidate with the last seen tag — the
				// swap must rotate the validator, never serve a stale 304
				// for a changed matrix.
				if i%8 == 7 && lastETag != "" {
					req.Header.Set("If-None-Match", lastETag)
				}
				resp, err := hc.Do(req)
				if err != nil {
					fail("get: %v", err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				lookups.Add(1)
				_, _, known := soakExpect(1, q.domain, q.cc)
				switch resp.StatusCode {
				case http.StatusNotModified:
					if resp.Header.Get("ETag") != lastETag {
						fail("304 under a different ETag")
						return
					}
					notMod.Add(1)
				case http.StatusNotFound:
					if known {
						fail("(%s,%s): dropped to 404 mid-soak", q.domain, q.cc)
						return
					}
				case http.StatusOK:
					if !known {
						fail("(%s,%s): 200 for an outside-universe pair", q.domain, q.cc)
						return
					}
					var v verdictBody
					if err := json.Unmarshal(body, &v); err != nil {
						fail("(%s,%s): bad body %q", q.domain, q.cc, body)
						return
					}
					if v.Version != 1 && v.Version != 2 {
						fail("(%s,%s): foreign snapshot version %d", q.domain, q.cc, v.Version)
						return
					}
					blocked, kind, _ := soakExpect(v.Version, q.domain, q.cc)
					if v.Blocked != blocked || v.Kind != kind {
						fail("v%d (%s,%s): got blocked=%v kind=%q want blocked=%v kind=%q",
							v.Version, q.domain, q.cc, v.Blocked, v.Kind, blocked, kind)
						return
					}
					lastETag = resp.Header.Get("ETag")
				default:
					fail("(%s,%s): status %d (%s)", q.domain, q.cc, resp.StatusCode, body)
					return
				}
			}
		}
	}

	wg.Add(p.clients)
	for i := 0; i < p.clients; i++ {
		go client(i)
	}

	// The swapper: once the soak is half done, publish snapshot B
	// through the management endpoint — the edge must not drop a single
	// request across the swap.
	wg.Add(1)
	swapped := make(chan struct{})
	go func() {
		defer wg.Done()
		defer close(swapped)
		for wall.Now().Before(swapAt) {
			yieldSoak()
		}
		resp, err := http.Post(srv.URL+"/v1/snapshot", "application/octet-stream",
			strings.NewReader(string(snapB.Encode())))
		if err != nil {
			fail("swap: %v", err)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fail("swap: status %d", resp.StatusCode)
		}
	}()
	wg.Wait()
	<-swapped

	if failures.Load() > 0 {
		t.Fatalf("%d incorrect/dropped verdicts; first: %s", failures.Load(), *firstErr.Load())
	}
	if lookups.Load() == 0 {
		t.Fatal("soak performed no lookups")
	}
	// The swap landed: the edge now answers with snapshot B.
	resp, err := http.Get(srv.URL + "/v1/verdict?domain=swap.example&cc=CN")
	if err != nil {
		t.Fatal(err)
	}
	var v verdictBody
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if v.Version != 2 || !v.Blocked || v.Kind != "Akamai" {
		t.Fatalf("post-soak verdict %+v, want the snapshot-B answer", v)
	}
	t.Logf("soak: %d clients, %d lookups (%d revalidated 304) over %v; swap mid-soak ok",
		p.clients, lookups.Load(), notMod.Load(), p.duration)

	// p99 service latency from the telemetry histogram: walk the bins
	// to the 99th percentile. Enforced in full mode; quick mode only
	// requires that the histogram recorded traffic.
	var hist *telemetry.HistogramStats
	metricsSnap := reg.Snapshot()
	for i := range metricsSnap.Histograms {
		if metricsSnap.Histograms[i].Name == verdict.HistLookupNanos {
			hist = &metricsSnap.Histograms[i]
		}
	}
	if hist == nil || hist.Total == 0 {
		t.Fatal("soak recorded no lookup latencies")
	}
	p99 := histP99(*hist)
	t.Logf("soak: p99 service latency ≤ %v (%d observations, %d beyond range)",
		time.Duration(p99), hist.Total, hist.OutOfRange)
	if p.full && raceEnabled == false {
		const bound = 1e6 // 1ms: the histogram's full range
		if p99 > bound {
			t.Fatalf("p99 service latency %v exceeds %v", time.Duration(p99), time.Duration(int64(bound)))
		}
	}

	// In-process lookup throughput floor: the matrix itself must serve
	// ≥1M lookups/s (the HTTP stack above it is the transport tax).
	doms := snapB.Domains()
	ccs := snapB.Countries()
	const n = 2_000_000
	start := wall.Now()
	var sink bool
	for i := 0; i < n; i++ {
		v, _ := snapB.Lookup(doms[i%len(doms)], ccs[i%len(ccs)])
		sink = v.Blocked
	}
	_ = sink
	elapsed := wall.Now().Sub(start)
	rate := float64(n) / elapsed.Seconds()
	t.Logf("soak: in-process %0.1fM lookups/s", rate/1e6)
	if !raceEnabled && rate < 1e6 {
		t.Fatalf("in-process lookup rate %.0f/s below the 1M/s floor", rate)
	}
}

// histP99 returns the nanosecond upper edge of the bin holding the
// 99th-percentile observation. Observations beyond the histogram range
// count as the range maximum.
func histP99(h telemetry.HistogramStats) float64 {
	target := (h.Total*99 + 99) / 100 // ceil(0.99 * total)
	seen := 0
	width := (h.Max - h.Min) / float64(len(h.Counts))
	for i, c := range h.Counts {
		seen += c
		if seen >= target {
			return h.Min + width*float64(i+1)
		}
	}
	return h.Max
}

// yieldSoak parks the swapper between deadline polls without a
// wall-clock sleep (this package sits under the determinism lint).
func yieldSoak() { runtime.Gosched() }
