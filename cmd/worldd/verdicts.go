// The /v1 verdict edge: worldd's production surface. Where the rest of
// the daemon serves debug views of the world, these endpoints serve the
// *study's answers* — the compiled (domain × country) block-verdict
// matrix — at memory speed, with atomic snapshot swap on study
// completion, ETag revalidation, and token-bucket load shedding.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"

	"geoblock/internal/geo"
	"geoblock/internal/telemetry"
	"geoblock/internal/trace"
	"geoblock/internal/verdict"
)

// maxSnapshotBytes bounds a POST /v1/snapshot body.
const maxSnapshotBytes = 64 << 20

// maxBulkQueries bounds one POST /v1/verdicts batch.
const maxBulkQueries = 10000

// verdictEdge serves the verdict matrix. One instance lives for the
// daemon's lifetime; snapshots swap through the holder without
// dropping in-flight requests.
type verdictEdge struct {
	reg     *telemetry.Registry
	limiter *verdict.Limiter // nil: no shedding
	holder  verdict.Holder

	// tracer, when set via Trace, receives slow-lookup exemplar events:
	// one runtime-class wide event per request served slower than
	// slowNS, carrying the trace ID the histogram bucket can't.
	tracer   *trace.Tracer
	traceCtx trace.SpanCtx
	slowNS   float64
	slowSeq  atomic.Int64
}

func newVerdictEdge(reg *telemetry.Registry, limiter *verdict.Limiter) *verdictEdge {
	return &verdictEdge{reg: reg, limiter: limiter, slowNS: verdict.SlowLookupNanos}
}

// Trace attaches a tracer; requests served slower than SlowLookupNanos
// then record exemplar events under the verdict/edge span.
func (e *verdictEdge) Trace(tr *trace.Tracer) {
	e.tracer = tr
	e.traceCtx = tr.Root().Child("verdict/edge", 0)
}

// Swap atomically publishes a new snapshot; readers in flight keep the
// one they loaded.
func (e *verdictEdge) Swap(s *verdict.Snapshot) {
	e.holder.Swap(s)
	e.reg.RuntimeCounter(verdict.MetSwaps).Add(1)
}

// register mounts the /v1 routes.
func (e *verdictEdge) register(mux *http.ServeMux) {
	mux.Handle("/v1/verdict", http.HandlerFunc(e.handleVerdict))
	mux.Handle("/v1/verdicts", http.HandlerFunc(e.handleBulk))
	mux.Handle("/v1/snapshot", http.HandlerFunc(e.handleSnapshot))
}

// admit runs the edge's front door: load shedding first (a 429 must be
// cheaper than the work it refuses), then the first-snapshot 503 gate.
// Returns the snapshot to serve from, or nil after writing the refusal.
func (e *verdictEdge) admit(w http.ResponseWriter) *verdict.Snapshot {
	if ok, retry := e.limiter.Allow(); !ok {
		e.reg.RuntimeCounter(verdict.MetShed).Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(int(retry.Seconds())))
		http.Error(w, "verdict edge shedding load", http.StatusTooManyRequests)
		return nil
	}
	snap := e.holder.Load()
	if snap == nil {
		http.Error(w, "no verdict snapshot loaded yet; run a study or POST /v1/snapshot", http.StatusServiceUnavailable)
		return nil
	}
	return snap
}

// observeLatency records one request's service time in the lookup
// histogram (nanoseconds, 10µs bins to 1ms). Requests past the slow
// threshold also leave an exemplar in the trace: the histogram says
// the tail exists, the exemplar's trace ID says which request it was.
func (e *verdictEdge) observeLatency(endpoint string, ns float64) {
	e.reg.RuntimeHistogram(verdict.HistLookupNanos, 0, 1e6, 100).Observe(ns)
	if e.tracer == nil || ns < e.slowNS {
		return
	}
	e.reg.RuntimeCounter(verdict.MetSlowLookups).Add(1)
	seq := int(e.slowSeq.Add(1)) - 1
	ev := trace.NewEvent(e.traceCtx.Child("lookup", seq), "verdict.lookup.slow")
	ev.Parent = e.traceCtx.Span
	ev.Runtime = true
	ev.Outcome = "slow"
	_, ev.WallNS = e.tracer.Now()
	ev.WallDurNS = int64(ns)
	ev.Attrs = []trace.Attr{
		{K: "endpoint", V: endpoint},
		{K: "ns", V: strconv.FormatFloat(ns, 'f', -1, 64)},
	}
	e.tracer.Record(ev)
}

// countLookup tallies one answered lookup by result class.
func (e *verdictEdge) countLookup(result string) {
	e.reg.RuntimeCounter(telemetry.Label(verdict.MetLookups, "result", result)).Add(1)
}

// verdictBody is the GET /v1/verdict and bulk-result JSON shape.
type verdictBody struct {
	Domain  string `json:"domain"`
	Country string `json:"cc"`
	Blocked bool   `json:"blocked"`
	Kind    string `json:"kind,omitempty"`
	Version uint64 `json:"version"`
}

// handleVerdict is GET /v1/verdict?domain=&cc=: one pair, one answer.
// 404 means the pair is outside the studied universe — distinct from
// 200 blocked:false, which is a studied pair the study cleared.
func (e *verdictEdge) handleVerdict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	start := e.reg.Now()
	snap := e.admit(w)
	if snap == nil {
		return
	}
	domain := r.URL.Query().Get("domain")
	cc := r.URL.Query().Get("cc")
	if domain == "" || cc == "" {
		http.Error(w, "domain and cc query parameters are required", http.StatusBadRequest)
		return
	}

	// The whole matrix shares one validator, so a client that cached
	// any answer under this ETag can revalidate every pair for free
	// until the next study lands.
	w.Header().Set("ETag", snap.ETag())
	if r.Header.Get("If-None-Match") == snap.ETag() {
		e.reg.RuntimeCounter(verdict.MetNotModified).Add(1)
		w.WriteHeader(http.StatusNotModified)
		return
	}

	v, ok := snap.Lookup(domain, geo.CountryCode(cc))
	if !ok {
		e.countLookup("unknown")
		http.Error(w, fmt.Sprintf("pair (%s, %s) outside the studied universe", domain, cc), http.StatusNotFound)
		return
	}
	body := verdictBody{Domain: domain, Country: cc, Blocked: v.Blocked, Version: snap.Version()}
	if v.Blocked {
		e.countLookup("blocked")
		body.Kind = v.Kind.String()
	} else {
		e.countLookup("clear")
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(body)
	e.observeLatency("verdict", float64(e.reg.Now().Sub(start).Nanoseconds()))
}

// bulkRequest is the POST /v1/verdicts body.
type bulkRequest struct {
	Queries []struct {
		Domain  string `json:"domain"`
		Country string `json:"cc"`
	} `json:"queries"`
}

// bulkResult is one bulk answer; Found false marks an outside-universe
// pair (the bulk analogue of the single endpoint's 404).
type bulkResult struct {
	Domain  string `json:"domain"`
	Country string `json:"cc"`
	Found   bool   `json:"found"`
	Blocked bool   `json:"blocked"`
	Kind    string `json:"kind,omitempty"`
}

// handleBulk is POST /v1/verdicts: many pairs in one round trip, the
// shape a CDN edge function batches per request wave.
func (e *verdictEdge) handleBulk(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	start := e.reg.Now()
	snap := e.admit(w)
	if snap == nil {
		return
	}
	var req bulkRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20)).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Queries) == 0 {
		http.Error(w, "queries must be non-empty", http.StatusBadRequest)
		return
	}
	if len(req.Queries) > maxBulkQueries {
		http.Error(w, fmt.Sprintf("at most %d queries per batch", maxBulkQueries), http.StatusBadRequest)
		return
	}
	results := make([]bulkResult, len(req.Queries))
	for i, q := range req.Queries {
		res := bulkResult{Domain: q.Domain, Country: q.Country}
		if v, ok := snap.Lookup(q.Domain, geo.CountryCode(q.Country)); ok {
			res.Found = true
			res.Blocked = v.Blocked
			if v.Blocked {
				e.countLookup("blocked")
				res.Kind = v.Kind.String()
			} else {
				e.countLookup("clear")
			}
		} else {
			e.countLookup("unknown")
		}
		results[i] = res
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("ETag", snap.ETag())
	json.NewEncoder(w).Encode(struct {
		Version uint64       `json:"version"`
		ETag    string       `json:"etag"`
		Results []bulkResult `json:"results"`
	}{snap.Version(), snap.ETag(), results})
	e.observeLatency("bulk", float64(e.reg.Now().Sub(start).Nanoseconds()))
}

// handleSnapshot is POST /v1/snapshot: load an encoded snapshot and
// swap it in atomically. The management plane, so it is not shed and
// not gated on readiness — it is how the edge *becomes* ready.
func (e *verdictEdge) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	b, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSnapshotBytes))
	if err != nil {
		http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
		return
	}
	snap, err := verdict.Decode(b)
	if err != nil {
		http.Error(w, "decode snapshot: "+err.Error(), http.StatusBadRequest)
		return
	}
	e.Swap(snap)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Version   uint64 `json:"version"`
		ETag      string `json:"etag"`
		Blocked   int    `json:"blocked"`
		Domains   int    `json:"domains"`
		Countries int    `json:"countries"`
	}{snap.Version(), snap.ETag(), snap.Blocked(), len(snap.Domains()), len(snap.Countries())})
}
