package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"geoblock"
	"geoblock/internal/telemetry"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	reg := telemetry.New()
	sys := geoblock.New(geoblock.Options{Scale: 0.02, Metrics: reg})
	var holder atomic.Pointer[geoblock.System]
	holder.Store(sys)
	srv := httptest.NewServer(countRequests(reg, newMux(&holder, reg, newVerdictEdge(reg, nil), nil)))
	t.Cleanup(srv.Close)
	return srv
}

// TestReadiness drives the holder through its lifecycle: before the
// world lands, /healthz is live but /readyz and every world-backed
// endpoint answer 503; after, everything flips to 200.
func TestReadiness(t *testing.T) {
	reg := telemetry.New()
	var holder atomic.Pointer[geoblock.System]
	srv := httptest.NewServer(countRequests(reg, newMux(&holder, reg, newVerdictEdge(reg, nil), nil)))
	defer srv.Close()

	status := func(path string) int {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := status("/healthz"); got != http.StatusOK {
		t.Fatalf("GET /healthz before load: status %d, want 200", got)
	}
	for _, path := range []string{"/readyz", "/?host=example.com&from=US", "/domains"} {
		if got := status(path); got != http.StatusServiceUnavailable {
			t.Errorf("GET %s before load: status %d, want 503", path, got)
		}
	}

	holder.Store(geoblock.New(geoblock.Options{Scale: 0.02, Metrics: reg}))
	for _, path := range []string{"/readyz", "/domains"} {
		if got := status(path); got != http.StatusOK {
			t.Errorf("GET %s after load: status %d, want 200", path, got)
		}
	}
}

func TestHealthz(t *testing.T) {
	srv := newTestServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz: status %d, want 200", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "ok\n" {
		t.Fatalf("GET /healthz: body %q, want %q", body, "ok\n")
	}
}

func TestReadOnlyEndpointsRejectWrites(t *testing.T) {
	srv := newTestServer(t)
	for _, path := range []string{"/?host=example.com&from=US", "/domains"} {
		for _, method := range []string{http.MethodPost, http.MethodPut, http.MethodDelete} {
			req, err := http.NewRequest(method, srv.URL+path, strings.NewReader("x"))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusMethodNotAllowed {
				t.Errorf("%s %s: status %d, want 405", method, path, resp.StatusCode)
			}
			if allow := resp.Header.Get("Allow"); allow != "GET, HEAD" {
				t.Errorf("%s %s: Allow %q, want %q", method, path, allow, "GET, HEAD")
			}
		}
	}
}

func TestGetStillServes(t *testing.T) {
	srv := newTestServer(t)
	for _, path := range []string{"/domains", "/gallery"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d, want 200", path, resp.StatusCode)
		}
	}
}
