package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"geoblock"
	"geoblock/internal/telemetry"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	reg := telemetry.New()
	sys := geoblock.New(geoblock.Options{Scale: 0.02, Metrics: reg})
	srv := httptest.NewServer(countRequests(reg, newMux(sys, reg)))
	t.Cleanup(srv.Close)
	return srv
}

func TestHealthz(t *testing.T) {
	srv := newTestServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz: status %d, want 200", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "ok\n" {
		t.Fatalf("GET /healthz: body %q, want %q", body, "ok\n")
	}
}

func TestReadOnlyEndpointsRejectWrites(t *testing.T) {
	srv := newTestServer(t)
	for _, path := range []string{"/?host=example.com&from=US", "/domains"} {
		for _, method := range []string{http.MethodPost, http.MethodPut, http.MethodDelete} {
			req, err := http.NewRequest(method, srv.URL+path, strings.NewReader("x"))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusMethodNotAllowed {
				t.Errorf("%s %s: status %d, want 405", method, path, resp.StatusCode)
			}
			if allow := resp.Header.Get("Allow"); allow != "GET, HEAD" {
				t.Errorf("%s %s: Allow %q, want %q", method, path, allow, "GET, HEAD")
			}
		}
	}
}

func TestGetStillServes(t *testing.T) {
	srv := newTestServer(t)
	for _, path := range []string{"/domains", "/gallery"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d, want 200", path, resp.StatusCode)
		}
	}
}
