// Command worldd serves the simulated web over a real HTTP listener so
// the block pages can be explored with curl or a browser:
//
//	worldd -addr :8403 -scale 0.1
//
//	# Airbnb's restriction page, as seen from Iran:
//	curl 'http://localhost:8403/?host=airbnb.fr&from=IR'
//
//	# The App Engine platform block, as seen from Crimea:
//	curl 'http://localhost:8403/?host=geniusdisplay.com&from=crimea'
//
//	# The same site from Germany serves its real page:
//	curl 'http://localhost:8403/?host=geniusdisplay.com&from=DE'
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"geoblock"
	"geoblock/internal/blockpage"
	"geoblock/internal/telemetry"
	"geoblock/internal/trace"
	"geoblock/internal/verdict"
	"geoblock/internal/vnet"
	"geoblock/internal/worldgen"
)

func main() {
	addr := flag.String("addr", ":8403", "listen address")
	scale := flag.Float64("scale", 0.1, "population scale in (0,1]")
	seed := flag.Uint64("seed", 403, "world seed")
	verdictFile := flag.String("verdicts", "", "load an encoded verdict snapshot at startup (see /v1/snapshot)")
	study := flag.Bool("study", false, "run the Top-10K study in the background and serve its verdicts on /v1")
	verdictQPS := flag.Float64("verdict-qps", 0, "admission rate for /v1 read endpoints (0 = no shedding)")
	verdictBurst := flag.Int("verdict-burst", 100, "admission burst for /v1 read endpoints")
	flag.Parse()

	// The daemon is a real server, so its telemetry runs on the wall
	// clock; /debug/metrics serves the live registry.
	reg := telemetry.NewWithClock(telemetry.Wall{})

	// The daemon traces for its whole lifetime: background studies
	// record into it, the verdict edge leaves slow-lookup exemplars, and
	// /debug/trace serves the accumulated timeline as Chrome trace JSON.
	// A panic dumps the flight recorder before the stack unwinds.
	tracer := geoblock.NewTracer(*seed).WithWall(telemetry.Wall{}).WithFlightSink(os.Stderr)
	defer trace.CrashDump(tracer, os.Stderr)

	// The listener comes up immediately; the world (seconds of
	// generation at paper scale) loads in the background. /healthz is
	// live from the first instant, /readyz flips to 200 — and the
	// world-backed endpoints stop answering 503 — once the load lands.
	var holder atomic.Pointer[geoblock.System]
	edge := newVerdictEdge(reg, verdict.NewLimiter(*verdictQPS, *verdictBurst, telemetry.Wall{}))
	if *verdictFile != "" {
		b, err := os.ReadFile(*verdictFile)
		if err != nil {
			log.Fatalf("worldd: -verdicts: %v", err)
		}
		snap, err := verdict.Decode(b)
		if err != nil {
			log.Fatalf("worldd: -verdicts %s: %v", *verdictFile, err)
		}
		edge.Swap(snap)
		log.Printf("worldd: verdict snapshot v%d loaded: %d blocked pairs over %d domains × %d countries",
			snap.Version(), snap.Blocked(), len(snap.Domains()), len(snap.Countries()))
	}
	edge.Trace(tracer)
	mux := newMux(&holder, reg, edge, tracer)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           countRequests(reg, mux),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() {
		sys := geoblock.New(geoblock.Options{
			Seed: *seed, Scale: *scale, Metrics: reg, Trace: tracer,
			// Each completed study swaps its matrix into the live edge.
			VerdictOut: edge.Swap,
		})
		holder.Store(sys)
		log.Printf("worldd: %d domains simulated; ready", len(sys.World.Top10K()))
		if *study {
			log.Printf("worldd: running Top-10K study for /v1 verdicts")
			r := sys.RunTop10K(geoblock.Top10KConfig{})
			log.Printf("worldd: study complete: %d findings; /v1 serving snapshot v%d",
				len(r.Findings), edge.holder.Load().Version())
		}
	}()
	log.Printf("worldd: serving on %s (world generating; poll /readyz)", *addr)
	log.Printf("try: curl 'http://localhost%s/?host=airbnb.fr&from=IR'", *addr)
	log.Printf("verdicts: curl 'http://localhost%s/v1/verdict?domain=airbnb.fr&cc=IR'", *addr)
	log.Printf("metrics: curl 'http://localhost%s/debug/metrics'", *addr)

	// Serve until the listener fails or the process is interrupted;
	// on SIGINT/SIGTERM, drain in-flight requests before exiting.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			log.Printf("worldd: shutdown: %v", err)
			return
		}
		log.Printf("worldd: shut down cleanly")
	}
}

// newMux builds the daemon's routing table over a System holder that
// fills asynchronously: world-backed endpoints answer 503 until the
// world lands. Factored out of main so tests can drive it through
// httptest without a listener. tr may be nil; /debug/trace then serves
// an empty timeline.
func newMux(holder *atomic.Pointer[geoblock.System], reg *telemetry.Registry, edge *verdictEdge, tr *trace.Tracer) *http.ServeMux {
	// ready gates a world-backed handler: 503 before the world exists.
	ready := func(h func(sys *geoblock.System, w http.ResponseWriter, r *http.Request)) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sys := holder.Load()
			if sys == nil {
				http.Error(w, "world still generating; poll /readyz", http.StatusServiceUnavailable)
				return
			}
			h(sys, w, r)
		})
	}
	mux := http.NewServeMux()
	mux.Handle("/", getOnly(ready(func(sys *geoblock.System, w http.ResponseWriter, r *http.Request) {
		vnet.Handler(sys.World).ServeHTTP(w, r)
	})))
	mux.Handle("/domains", getOnly(ready(func(sys *geoblock.System, w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "# geoblocking domains in the simulated Top 10K (ground truth)")
		for _, d := range sys.World.Top10K() {
			if len(d.GeoRules) == 0 && !d.AirbnbStyle && !d.GAEHosted {
				continue
			}
			fmt.Fprintf(w, "%s\tproviders=%v", d.Name, d.Providers)
			ruled := make([]string, 0, len(d.GeoRules))
			for p := range d.GeoRules {
				ruled = append(ruled, string(p))
			}
			sort.Strings(ruled)
			for _, p := range ruled {
				rule := d.GeoRules[worldgen.Provider(p)]
				fmt.Fprintf(w, "\t%s:%s=%v", p, rule.Action, rule.CountryList())
			}
			if d.GAEHosted {
				fmt.Fprintf(w, "\tGAE-platform-block")
			}
			if d.AirbnbStyle {
				fmt.Fprintf(w, "\tairbnb-policy")
			}
			fmt.Fprintln(w)
		}
	})))

	// Liveness probe: always 200, no world access, so orchestration
	// health checks stay cheap and method-agnostic tooling (HEAD) works.
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})

	// Readiness probe: distinct from liveness — the process is alive the
	// moment the listener binds, but world-backed endpoints only work
	// once generation finishes. 503 until then, 200 after.
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		if holder.Load() == nil {
			http.Error(w, "world still generating", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})

	mux.HandleFunc("/gallery", func(w http.ResponseWriter, r *http.Request) {
		kind := r.URL.Query().Get("page")
		if kind == "" {
			fmt.Fprintln(w, "# one sample render per block-page class; fetch /gallery?page=<name>")
			for _, k := range append(blockpage.Kinds(), blockpage.Censorship) {
				fmt.Fprintln(w, k)
			}
			return
		}
		for _, k := range append(blockpage.Kinds(), blockpage.Censorship) {
			if k.String() == kind {
				w.Header().Set("Content-Type", "text/html; charset=utf-8")
				w.WriteHeader(k.Status())
				fmt.Fprint(w, blockpage.Render(k, blockpage.Vars{
					Domain: "gallery.example.com", ClientIP: "203.0.113.7",
					CountryName: "Iran", RayID: "44bfa65f2a8c2b91", Nonce: "f3a9c1d0",
				}))
				return
			}
		}
		http.Error(w, "unknown page class: "+kind, http.StatusNotFound)
	})

	// The /v1 verdict edge gates itself on its own snapshot, not the
	// world: an edge fed from a snapshot file serves verdicts while the
	// world is still generating, and the debug views keep working when
	// no study has run.
	edge.register(mux)

	telemetry.AttachDebug(mux, reg)

	// The live timeline: everything the daemon's tracer has collected —
	// study phases, scan units, slow-lookup exemplars — as Chrome
	// trace-event JSON, loadable directly in Perfetto (ui.perfetto.dev).
	mux.Handle("/debug/trace", getOnly(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := tr.Snapshot().WriteChrome(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})))
	return mux
}

// getOnly rejects non-read methods with 405 (and an Allow header)
// instead of letting read-only endpoints answer a POST with 200 — the
// world and domain listings are pure views, and answering writes as if
// they succeeded confuses probing tools.
func getOnly(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// countRequests tallies served requests by coarse path class so the
// /debug/metrics view shows what the daemon has been asked for.
func countRequests(reg *telemetry.Registry, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		class := "world"
		switch {
		case r.URL.Path == "/domains":
			class = "domains"
		case r.URL.Path == "/gallery":
			class = "gallery"
		case strings.HasPrefix(r.URL.Path, "/v1/"):
			class = "verdict"
		case strings.HasPrefix(r.URL.Path, "/debug/"):
			class = "debug"
		}
		reg.RuntimeCounter(telemetry.Label("worldd.requests", "path", class)).Add(1)
		next.ServeHTTP(w, r)
	})
}
