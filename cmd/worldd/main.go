// Command worldd serves the simulated web over a real HTTP listener so
// the block pages can be explored with curl or a browser:
//
//	worldd -addr :8403 -scale 0.1
//
//	# Airbnb's restriction page, as seen from Iran:
//	curl 'http://localhost:8403/?host=airbnb.fr&from=IR'
//
//	# The App Engine platform block, as seen from Crimea:
//	curl 'http://localhost:8403/?host=geniusdisplay.com&from=crimea'
//
//	# The same site from Germany serves its real page:
//	curl 'http://localhost:8403/?host=geniusdisplay.com&from=DE'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"sort"
	"time"

	"geoblock"
	"geoblock/internal/blockpage"
	"geoblock/internal/vnet"
	"geoblock/internal/worldgen"
)

func main() {
	addr := flag.String("addr", ":8403", "listen address")
	scale := flag.Float64("scale", 0.1, "population scale in (0,1]")
	seed := flag.Uint64("seed", 403, "world seed")
	flag.Parse()

	sys := geoblock.New(geoblock.Options{Seed: *seed, Scale: *scale})

	mux := http.NewServeMux()
	mux.Handle("/", vnet.Handler(sys.World))
	mux.HandleFunc("/domains", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "# geoblocking domains in the simulated Top 10K (ground truth)")
		for _, d := range sys.World.Top10K() {
			if len(d.GeoRules) == 0 && !d.AirbnbStyle && !d.GAEHosted {
				continue
			}
			fmt.Fprintf(w, "%s\tproviders=%v", d.Name, d.Providers)
			ruled := make([]string, 0, len(d.GeoRules))
			for p := range d.GeoRules {
				ruled = append(ruled, string(p))
			}
			sort.Strings(ruled)
			for _, p := range ruled {
				rule := d.GeoRules[worldgen.Provider(p)]
				fmt.Fprintf(w, "\t%s:%s=%v", p, rule.Action, rule.CountryList())
			}
			if d.GAEHosted {
				fmt.Fprintf(w, "\tGAE-platform-block")
			}
			if d.AirbnbStyle {
				fmt.Fprintf(w, "\tairbnb-policy")
			}
			fmt.Fprintln(w)
		}
	})

	mux.HandleFunc("/gallery", func(w http.ResponseWriter, r *http.Request) {
		kind := r.URL.Query().Get("page")
		if kind == "" {
			fmt.Fprintln(w, "# one sample render per block-page class; fetch /gallery?page=<name>")
			for _, k := range append(blockpage.Kinds(), blockpage.Censorship) {
				fmt.Fprintln(w, k)
			}
			return
		}
		for _, k := range append(blockpage.Kinds(), blockpage.Censorship) {
			if k.String() == kind {
				w.Header().Set("Content-Type", "text/html; charset=utf-8")
				w.WriteHeader(k.Status())
				fmt.Fprint(w, blockpage.Render(k, blockpage.Vars{
					Domain: "gallery.example.com", ClientIP: "203.0.113.7",
					CountryName: "Iran", RayID: "44bfa65f2a8c2b91", Nonce: "f3a9c1d0",
				}))
				return
			}
		}
		http.Error(w, "unknown page class: "+kind, http.StatusNotFound)
	})

	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("worldd: %d domains simulated; serving on %s", len(sys.World.Top10K()), *addr)
	log.Printf("try: curl 'http://localhost%s/?host=airbnb.fr&from=IR'", *addr)
	if err := srv.ListenAndServe(); err != nil {
		log.Fatal(err)
	}
}
