//go:build race

package main

// raceEnabled gates throughput floors: the race detector slows the
// serving path by an order of magnitude, so absolute rates are only
// asserted in non-race runs.
const raceEnabled = true
