// Command mktables regenerates every table and figure of the paper's
// evaluation and writes them under an output directory — text tables,
// CSV series, and a combined report. This is the reproduction harness
// behind EXPERIMENTS.md.
//
//	mktables -scale 1.0 -out out/
//
// At -scale 1.0 the run performs the full paper-scale studies (several
// million simulated HTTP requests) and takes a few minutes.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"geoblock"
	"geoblock/internal/analysis"
	"geoblock/internal/papertables"
	"geoblock/internal/report"
	"geoblock/internal/stats"
)

func main() {
	scale := flag.Float64("scale", 1.0, "population scale in (0,1]; 1.0 = paper scale")
	seed := flag.Uint64("seed", 403, "world seed")
	outDir := flag.String("out", "out", "output directory")
	stamp := flag.String("stamp", "", "timestamp to record in the report header (injected, e.g. $(date -u +%Y-%m-%dT%H:%M:%SZ)); empty omits it")
	flag.Parse()

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	combined, err := os.Create(filepath.Join(*outDir, "report.txt"))
	if err != nil {
		log.Fatal(err)
	}
	defer combined.Close()
	out := io.MultiWriter(os.Stdout, combined)

	// No wall clock in here (the determinism gate enforces it): the
	// report is a pure function of (seed, scale), so identical inputs
	// must produce byte-identical report files. A run timestamp, when
	// wanted, is injected via -stamp rather than read from the clock.
	sys := geoblock.New(geoblock.Options{
		Seed: *seed, Scale: *scale,
		Log: func(format string, args ...any) { log.Printf(format, args...) },
	})
	if *stamp != "" {
		fmt.Fprintf(out, "geoblock reproduction — seed %d, scale %.2f, run %s\n\n", *seed, *scale, *stamp)
	} else {
		fmt.Fprintf(out, "geoblock reproduction — seed %d, scale %.2f\n\n", *seed, *scale)
	}

	// §3.1 exploration.
	explore := sys.RunExploration()
	papertables.PrintExploration(out, explore)

	// §4: the Top-10K study → Tables 1–6, Figures 1–4.
	r10 := sys.RunTop10K(geoblock.Top10KConfig{})
	papertables.FindingsSummary(out, r10)
	papertables.PrintTable1(out, analysis.BuildTable1(r10))
	papertables.PrintClusterSummaries(out, r10.ClusterSummaries(), 15)
	rows2, total2 := analysis.BuildTable2(r10)
	papertables.PrintTable2(out, rows2, total2)
	writeTableCSV(*outDir, "table2.csv", []string{"page", "recalled", "actual"}, func() [][]string {
		var rows [][]string
		for _, r := range rows2 {
			rows = append(rows, []string{r.Kind.String(), report.Itoa(r.Recalled), report.Itoa(r.Actual)})
		}
		return rows
	}())
	papertables.PrintTable3(out, analysis.BuildTable3(sys.World, r10.Findings))
	papertables.PrintCategoryRates(out, "Table 4: Geoblocked sites by category (Top 10K)",
		analysis.BuildCategoryRates(sys.World, analysis.RespondingDomains(r10.Initial), r10.Findings))
	papertables.PrintTable5(out, sys.World.Geo, analysis.BuildTable5(sys.World, r10.Findings))
	t6 := analysis.BuildCountryCDNTable(r10.Findings)
	papertables.PrintCountryCDN(out, "Table 6: Geoblocking among Top 10K sites, by country",
		sys.World.Geo, t6, 10)
	writeTableCSV(*outDir, "table6.csv", []string{"country", "total"}, countryRows(t6))
	papertables.PrintProviderRates(out, "Per-provider geoblock rates (§4.2.1)",
		analysis.BuildProviderRates(papertables.ProviderCountsFromWorld(sys.World), r10.Findings))
	fmt.Fprintf(out, "Median geoblocked domains per country: %.1f (paper: 3)\n\n",
		analysis.MedianBlockedPerCountry(r10.Findings, r10.Countries))

	es := analysis.BuildErrorStats(r10.Initial)
	worst, worstRate := geoblock.CountryCode(""), 1.0
	for cc, rate := range es.CountryResponseRates {
		if rate < worstRate {
			worst, worstRate = cc, rate
		}
	}
	fmt.Fprintf(out, "Scan reliability (§4.1.1): 90%% of domains saw ≤%.1f%% errors (paper: 11.7%%); worst country response rate %s at %.1f%% (paper: Comoros, 76.4%%)\n\n",
		100*es.P90DomainErrorRate, sys.World.Geo.Name(worst), 100*worstRate)

	exp := sys.RunConsistencyExperiment(r10, 100, 500, nil)
	f1 := analysis.BuildFigure1(exp)
	papertables.PrintFigure(out, "Figure 1: Consistency for various sample rates (CDF)", f1)
	fmt.Fprintf(out, "At 20 samples, %.1f%% of pairs fall below the 80%% threshold (paper: 3.9%%)\n\n",
		100*exp.FractionBelow(20, 0.8))
	writeCSV(*outDir, "figure1.csv", f1)

	f2 := analysis.BuildFigure2(r10)
	papertables.PrintFigure2(out, f2)

	f3 := analysis.BuildFigure3(exp)
	papertables.PrintFigure(out, "Figure 3: False negative rate vs sample size", []stats.Series{f3})
	fmt.Fprintf(out, "At 3 samples, %.1f%% of known geoblocking pairs would be missed (paper: 1.7%%)\n\n",
		100*exp.MeanFalseNegative(3))
	writeCSV(*outDir, "figure3.csv", []stats.Series{f3})

	f4 := analysis.BuildFigure4(r10)
	papertables.PrintFigure(out, "Figure 4: Consistency of geoblocking observations (CDF)", []stats.Series{f4})
	writeCSV(*outDir, "figure4.csv", []stats.Series{f4})

	// §7.3 extensions over the §4 snapshot: timeout geoblocking,
	// application-layer discrimination, region granularity.
	papertables.PrintTimeouts(out, sys.AnalyzeTimeouts(r10, 10))
	appTargets := []geoblock.CountryCode{"IR", "SY", "SD", "CU", "CN", "RU", "BR", "IN", "NG", "UA"}
	papertables.PrintAppLayer(out, sys.RunAppLayerStudy(analysis.RespondingDomains(r10.Initial), "US", appTargets))
	regCandidates := map[string]bool{}
	var regDomains []string
	for _, f := range r10.Candidates {
		if !regCandidates[f.DomainName] {
			regCandidates[f.DomainName] = true
			regDomains = append(regDomains, f.DomainName)
		}
	}
	papertables.PrintRegional(out, sys.RunRegionalAnalysis(regDomains, 12))

	// §5: the Top-1M study → Tables 7, 8 and the non-explicit analysis.
	r1m := sys.RunTop1M(geoblock.Top1MConfig{})
	fmt.Fprintf(out, "Top 1M: %d customers discovered (%d dual), %d eligible, %d sampled, %d explicit findings, %d GAE pairs hidden by censorship\n\n",
		r1m.Discovered.Total(), r1m.DualCount, r1m.EligibleCount, len(r1m.TestDomains),
		len(r1m.ExplicitFindings), r1m.CensoredGAEPairs)
	t7 := analysis.BuildCountryCDNTable(r1m.ExplicitFindings)
	papertables.PrintCountryCDN(out, "Table 7: Geoblocking among Top 1M sites, by country",
		sys.World.Geo, t7, 10)
	writeTableCSV(*outDir, "table7.csv", []string{"country", "total"}, countryRows(t7))
	papertables.PrintCategoryRates(out, "Table 8: Geoblocked sites by top category (Top 1M)",
		analysis.BuildCategoryRates(sys.World, analysis.RespondingDomains(r1m.Initial), r1m.ExplicitFindings))
	papertables.PrintProviderRates(out, "Per-provider geoblock rates (§5.2.1)",
		analysis.BuildProviderRates(r1m.TestedPerProvider, r1m.ExplicitFindings))
	papertables.PrintNonExplicit(out, r1m)

	// §6: Cloudflare validation → Table 9, Figure 5.
	ds := sys.CloudflareRulesSnapshot()
	papertables.PrintCloudflareTable9(out, sys.World.Geo, ds)
	f5 := analysis.BuildFigure5(ds)
	papertables.PrintFigure(out, "Figure 5: Enterprise geoblock-rule activation over time", f5)
	writeCSV(*outDir, "figure5.csv", f5)

	// §7.1: OONI confound.
	corpus := sys.SynthesizeOONI(2)
	papertables.PrintOONI(out, sys.AnalyzeOONI(corpus))

	fmt.Fprintln(out, "done")
}

func countryRows(rows []analysis.CountryCDNRow) [][]string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{string(r.Country), report.Itoa(r.Total)})
	}
	return out
}

func writeTableCSV(dir, name string, headers []string, rows [][]string) {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := report.CSV(f, headers, rows); err != nil {
		log.Fatal(err)
	}
}

func writeCSV(dir, name string, series []stats.Series) {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := report.SeriesCSV(f, series); err != nil {
		log.Fatal(err)
	}
}
