// Command scanworker is the worker side of the distributed scan
// fabric: it dials a coordinator (lumscan -serve-fabric, or geoscan
// -fabric), regenerates the coordinator's deterministic world from the
// study spec, and executes leased scan shards until the study is done.
//
//	scanworker -coordinator http://127.0.0.1:7403
//
// Run as many scanworker processes as you like — the merged output on
// the coordinator is byte-identical regardless of worker count, and a
// worker that dies mid-shard just forfeits its lease.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"geoblock"
	"geoblock/internal/faults"
	"geoblock/internal/telemetry"
	"geoblock/internal/trace"
)

func main() {
	coordinator := flag.String("coordinator", "http://127.0.0.1:7403", "coordinator base URL")
	name := flag.String("name", "", "worker name in leases and logs (default: scanworker-<pid>)")
	dialFor := flag.Duration("dial-for", 30*time.Second, "keep retrying the first coordinator contact for this long")
	killAfter := flag.Int64("kill-after", 0, "chaos: die (exit 3) after executing roughly this many units, before reporting the last one; 0 disables")
	killSeed := flag.Uint64("kill-seed", 1, "chaos: seed for the -kill-after death draw")
	verbose := flag.Bool("v", false, "log leases and phase changes")
	traceOut := flag.String("trace", "", "write this worker's local wide-event trace to this file (.json: Chrome trace-event JSON); unit events ship to the coordinator regardless")
	flag.Parse()

	if *name == "" {
		*name = fmt.Sprintf("scanworker-%d", os.Getpid())
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// The worker always carries a local tracer: when chaos (or a panic)
	// kills it, the flight recorder dumps the last events to stderr —
	// the post-mortem for a process that never reports home. The
	// deterministic unit events still ship to the coordinator through
	// the completion payload; this tracer is the worker's own black box.
	tracer := geoblock.NewTracer(0).WithWall(telemetry.Wall{}).WithFlightSink(os.Stderr)
	defer trace.CrashDump(tracer, os.Stderr)

	opts := geoblock.FabricWorkerOptions{
		Coordinator: *coordinator,
		Name:        *name,
		Sleep:       time.Sleep, //geolint:allow determinism worker poll backoff waits on the real wall clock
		Trace:       tracer,
	}
	if *verbose {
		opts.Log = func(format string, args ...any) { log.Printf(format, args...) }
	}
	if *killAfter > 0 {
		opts.Kill = faults.New(*killSeed).WorkerDeath(*killAfter)
		fmt.Fprintf(os.Stderr, "scanworker: chaos death armed (span %d, seed %d)\n", *killAfter, *killSeed)
	}

	// The coordinator usually starts a beat after its workers in
	// scripted runs; retry the first contact instead of dying on a
	// connection refused.
	var w *geoblock.FabricWorker
	deadline := telemetry.Wall{}.Now().Add(*dialFor)
	for {
		var err error
		w, err = geoblock.NewFabricWorker(ctx, opts)
		if err == nil {
			break
		}
		if ctx.Err() != nil || !(telemetry.Wall{}).Now().Before(deadline) {
			fmt.Fprintf(os.Stderr, "scanworker: cannot reach coordinator %s: %v\n", *coordinator, err)
			os.Exit(2)
		}
		time.Sleep(250 * time.Millisecond) //geolint:allow determinism coordinator dial retry on the real wall clock
	}
	fmt.Fprintf(os.Stderr, "scanworker: %s leasing from %s\n", *name, *coordinator)

	runErr := w.Run(ctx)
	// Written before the exit-code switch: os.Exit skips defers, and
	// the killed-worker trace is exactly the one worth keeping.
	if *traceOut != "" {
		snap := tracer.Snapshot()
		if werr := snap.WriteFile(*traceOut); werr != nil {
			fmt.Fprintf(os.Stderr, "scanworker: trace: %v\n", werr)
		} else {
			fmt.Fprintf(os.Stderr, "scanworker: %d trace events written to %s\n", len(snap.Events), *traceOut)
		}
	}
	switch err := runErr; {
	case err == nil:
		fmt.Fprintf(os.Stderr, "scanworker: %s: study done\n", *name)
	case errors.Is(err, geoblock.ErrFabricWorkerKilled):
		fmt.Fprintf(os.Stderr, "scanworker: %s: %v\n", *name, err)
		os.Exit(3)
	default:
		fmt.Fprintf(os.Stderr, "scanworker: %s: %v\n", *name, err)
		os.Exit(1)
	}
}
