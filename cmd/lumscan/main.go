// Command lumscan is the interactive face of the scanning engine: probe
// chosen domains from chosen countries through the simulated
// residential proxy mesh and print per-sample results — the workflow
// the paper's operators used when manually verifying block pages.
//
//	lumscan -domains airbnb.fr,fasttech.com -countries IR,CN,US -samples 5
//
// Pass -domains all to scan the whole (safe) Top-10K population, or
// -zgrab to use the bare ZGrab header set and watch bot defenses fire.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	stdnet "net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"geoblock"
	"geoblock/internal/faults"
	"geoblock/internal/fingerprint"
	"geoblock/internal/geo"
	"geoblock/internal/lumscan"
	"geoblock/internal/proxy"
	"geoblock/internal/runstore"
	"geoblock/internal/stats"
	"geoblock/internal/telemetry"
	"geoblock/internal/trace"
)

func main() {
	domainsFlag := flag.String("domains", "airbnb.fr,fasttech.com,geniusdisplay.com", "comma-separated domains, or 'all'")
	countriesFlag := flag.String("countries", "US,IR,SY,CN,RU", "comma-separated country codes")
	samples := flag.Int("samples", 3, "samples per (domain, country) pair")
	scale := flag.Float64("scale", 0.1, "population scale in (0,1]")
	seed := flag.Uint64("seed", 403, "world seed")
	zgrab := flag.Bool("zgrab", false, "use the bare ZGrab header set instead of browser headers")
	showErrors := flag.Bool("errors", false, "print failed samples too")
	faultsFlag := flag.String("faults", "", "chaos profile to inject: "+strings.Join(faults.Names(), ", "))
	faultSeed := flag.Uint64("faultseed", 1, "fault-injection seed (reproducible chaos)")
	faultCountry := flag.String("faultcountry", "", "restrict the chaos profile to one country code (default: all)")
	metricsAddr := flag.String("metrics", "", "serve /debug/metrics (and pprof) on this address while the scan runs")
	metricsOut := flag.String("metrics-out", "", "write the final telemetry snapshot to this file (.json for JSON, else text)")
	traceOut := flag.String("trace", "", "write the run's wide-event trace to this file (.json: Chrome trace-event JSON, loadable in Perfetto)")
	storeDir := flag.String("store", "", "journal the scan to this directory (crash-safe; see -resume)")
	resume := flag.Bool("resume", false, "resume an interrupted scan from the -store journal instead of refusing it")
	serveFabric := flag.String("serve-fabric", "", "serve a distributed-scan coordinator on this address; the scan executes on scanworker processes instead of in-process")
	fabricReady := flag.String("fabric-ready-file", "", "write the coordinator's resolved listen address to this file (for scripts that spawn workers)")
	flag.Parse()

	// The world calibration is pinned explicitly (not via Seed/Scale
	// shorthand) because -serve-fabric ships it to workers verbatim.
	wcfg := geoblock.DefaultWorldConfig()
	if *seed != 0 {
		wcfg.Seed = *seed
	}
	if *scale != 0 {
		wcfg.Scale = *scale
	}
	sys := geoblock.New(geoblock.Options{World: &wcfg})
	net := proxy.NewNetwork(sys.World)
	cls := fingerprint.NewClassifier()

	// An interactive scan runs on the wall clock so span durations and
	// the fetch-latency histogram mean something.
	reg := telemetry.NewWithClock(telemetry.Wall{})

	// -trace arms the tracer for the whole run: wall stamps for the
	// Perfetto timeline, flight dumps to stderr on an Outage, and a
	// crash-path dump if the process panics.
	var tracer *geoblock.Tracer
	if *traceOut != "" {
		tracer = geoblock.NewTracer(wcfg.Seed).WithWall(telemetry.Wall{}).WithFlightSink(os.Stderr)
		defer trace.CrashDump(tracer, os.Stderr)
	}
	if *metricsAddr != "" {
		srv := telemetry.MetricsServer(*metricsAddr, reg)
		go func() {
			if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "lumscan: metrics server: %v\n", err)
			}
		}()
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "lumscan: metrics on http://%s/debug/metrics\n", *metricsAddr)
	}

	if *faultsFlag != "" {
		profile, ok := faults.Named(*faultsFlag)
		if !ok {
			fmt.Fprintf(os.Stderr, "lumscan: unknown fault profile %q (have: %s)\n",
				*faultsFlag, strings.Join(faults.Names(), ", "))
			os.Exit(2)
		}
		inj := faults.New(*faultSeed).Instrument(reg)
		if *faultCountry != "" {
			inj.Country(geo.CountryCode(strings.ToUpper(*faultCountry)), profile)
		} else {
			inj.Default(profile)
		}
		net.SetFaults(inj)
		fmt.Fprintf(os.Stderr, "lumscan: chaos profile %q (seed %d) active\n", *faultsFlag, *faultSeed)
	}

	// -serve-fabric: lease the scan's shards to worker processes instead
	// of fetching in-process. Output — samples, outages, journal — stays
	// byte-identical; only the fetching moves.
	var coord *geoblock.FabricCoordinator
	if *serveFabric != "" {
		spec := geoblock.FabricStudySpec{World: wcfg}
		if *faultsFlag != "" {
			profile := geoblock.FabricFaultSpec{Seed: *faultSeed, Profile: *faultsFlag, Country: strings.ToUpper(*faultCountry)}
			spec.Faults = &profile
		}
		coord = geoblock.NewFabric(geoblock.FabricOptions{Study: spec, Metrics: reg, Trace: tracer})
		coord.BindWorld(sys.World)
		ln, lerr := stdnet.Listen("tcp", *serveFabric)
		if lerr != nil {
			fmt.Fprintf(os.Stderr, "lumscan: fabric listener: %v\n", lerr)
			os.Exit(2)
		}
		fsrv := &http.Server{Handler: coord.Handler()}
		go func() {
			if serr := fsrv.Serve(ln); serr != nil && !errors.Is(serr, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "lumscan: fabric server: %v\n", serr)
			}
		}()
		defer fsrv.Close()
		if *fabricReady != "" {
			if werr := os.WriteFile(*fabricReady, []byte(ln.Addr().String()), 0o644); werr != nil {
				fmt.Fprintf(os.Stderr, "lumscan: fabric-ready-file: %v\n", werr)
				os.Exit(2)
			}
		}
		fmt.Fprintf(os.Stderr, "lumscan: fabric coordinator on http://%s (start workers: scanworker -coordinator http://%s)\n", ln.Addr(), ln.Addr())
	}

	var domains []string
	if *domainsFlag == "all" {
		for _, d := range sys.World.Top10K() {
			domains = append(domains, d.Name)
		}
	} else {
		for _, d := range strings.Split(*domainsFlag, ",") {
			d = strings.TrimSpace(d)
			if d == "" {
				continue
			}
			if _, ok := sys.World.Lookup(d); !ok {
				fmt.Fprintf(os.Stderr, "lumscan: %s does not exist in this world (seed %d, scale %.2f)\n", d, *seed, *scale)
				os.Exit(2)
			}
			domains = append(domains, d)
		}
	}

	var countries []geo.CountryCode
	for _, c := range strings.Split(*countriesFlag, ",") {
		c = strings.TrimSpace(strings.ToUpper(c))
		if c != "" {
			countries = append(countries, geo.CountryCode(c))
		}
	}

	cfg := lumscan.DefaultConfig()
	cfg.Samples = *samples
	cfg.Phase = "cli"
	cfg.Metrics = reg
	if tracer != nil {
		cfg.Trace = tracer
		cfg.TraceWall = tracer.WallClock()
	}
	if *zgrab {
		cfg.Headers = lumscan.ZGrabHeaders()
	}

	if *resume && *storeDir == "" {
		fmt.Fprintln(os.Stderr, "lumscan: -resume requires -store")
		os.Exit(2)
	}
	var store *runstore.Store
	if *storeDir != "" {
		st, oerr := runstore.Open(*storeDir, runstore.Options{Metrics: reg})
		if oerr != nil {
			fmt.Fprintf(os.Stderr, "lumscan: %v\n", oerr)
			os.Exit(2)
		}
		if info, ok := st.Phase("cli"); ok && !*resume {
			st.Close()
			fmt.Fprintf(os.Stderr, "lumscan: %s already holds a journal (%d shards checkpointed); pass -resume to continue it, or point -store at a fresh directory\n",
				*storeDir, info.Shards)
			os.Exit(2)
		} else if ok {
			fmt.Fprintf(os.Stderr, "lumscan: resuming from %s: %d shards / %d samples journaled\n",
				*storeDir, info.Shards, info.Samples)
		}
		defer st.Close()
		store = st
	}

	// Stream results as shards complete (canonical order is preserved
	// by the engine), and let Ctrl-C cancel a long run cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	stopProgress := telemetry.StartProgress(os.Stderr, 2*time.Second, func() string {
		return "lumscan: " + lumscan.ProgressLine(reg)
	})
	fmt.Printf("%-28s %-4s %-3s %-8s %-6s %-16s %s\n",
		"DOMAIN", "CC", "N", "STATUS", "BYTES", "EXIT", "PAGE")
	tasks := lumscan.CrossProduct(len(domains), len(countries))
	sink := &cliSink{emit: func(s lumscan.Sample) {
		domain := domains[s.Domain]
		cc := countries[s.Country]
		if !s.OK() {
			if *showErrors {
				fmt.Printf("%-28s %-4s %-3d %-8s %-6s %-16s -\n",
					domain, cc, s.Attempt, "ERR", "-", s.Err)
			}
			return
		}
		page := "-"
		if s.Body != "" {
			if k := cls.Classify(s.Body); k != 0 {
				page = k.String()
			}
		}
		fmt.Printf("%-28s %-4s %-3d %-8d %-6d %-16s %s\n",
			domain, cc, s.Attempt, s.Status, s.BodyLen, s.ExitIP, page)
	}}
	runScan := func(cfg lumscan.Config, sk lumscan.Sink) error {
		if coord != nil {
			return coord.RunPhase(ctx, domains, countries, tasks, cfg, sk)
		}
		return lumscan.ScanStream(ctx, net, domains, countries, tasks, cfg, sk)
	}
	var err error
	if store != nil {
		err = store.Scan(runstore.Scan{
			Key:         "cli",
			Fingerprint: scanFingerprint(*seed, *scale, domains, countries, *samples, *zgrab),
			Cfg:         cfg,
			Sink:        sink,
			Run:         runScan,
		})
	} else {
		err = runScan(cfg, sink)
	}
	stopProgress()
	if coord != nil {
		coord.FinishStudy()
		// Grace period: let polling workers observe study-done and exit
		// cleanly before the coordinator endpoint disappears.
		time.Sleep(time.Second) //geolint:allow determinism worker-drain grace period on the real wall clock
	}
	if *metricsOut != "" {
		if werr := reg.Snapshot().WriteFile(*metricsOut); werr != nil {
			fmt.Fprintf(os.Stderr, "lumscan: metrics-out: %v\n", werr)
		}
	}
	if *traceOut != "" {
		snap := tracer.Snapshot()
		if werr := snap.WriteFile(*traceOut); werr != nil {
			fmt.Fprintf(os.Stderr, "lumscan: trace: %v\n", werr)
		} else {
			fmt.Fprintf(os.Stderr, "lumscan: %d trace events written to %s (open in ui.perfetto.dev)\n", len(snap.Events), *traceOut)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "lumscan: phase %q failed: %v\n", cfg.Phase, err)
		os.Exit(1)
	}
}

// cliSink streams samples to stdout and the degradation accounting —
// per-country outages and the attained-vs-requested coverage line — to
// stderr, where it survives piping the sample stream elsewhere.
type cliSink struct {
	emit func(lumscan.Sample)
}

func (c *cliSink) Emit(s lumscan.Sample) { c.emit(s) }

func (c *cliSink) EmitOutage(o lumscan.Outage) {
	fmt.Fprintf(os.Stderr, "lumscan: outage %s (%s): %d/%d shards, %d tasks lost\n",
		o.Country, o.Reason, o.Shards, o.ShardsTotal, o.Tasks)
}

func (c *cliSink) EmitCoverage(cov lumscan.Coverage) {
	if cov.Full() {
		return
	}
	fmt.Fprintf(os.Stderr, "lumscan: coverage %d/%d countries attained (%d tasks lost; lost: %s)\n",
		cov.Attained, cov.Requested, cov.TasksLost, joinCountries(cov.Lost))
}

// scanFingerprint digests the scan's identity for the journal, so a
// -store directory reused with different inputs errors instead of
// splicing two different scans. Concurrency is deliberately absent.
func scanFingerprint(seed uint64, scale float64, domains []string, countries []geo.CountryCode, samples int, zgrab bool) uint64 {
	h := fnv("lumscan-cli")
	h = stats.Mix64(h ^ seed)
	h = stats.Mix64(h ^ math.Float64bits(scale))
	for _, d := range domains {
		h = stats.Mix64(h ^ fnv(d))
	}
	for _, c := range countries {
		h = stats.Mix64(h ^ fnv(string(c)))
	}
	h = stats.Mix64(h ^ uint64(samples))
	if zgrab {
		h = stats.Mix64(h ^ 1)
	}
	return h
}

func fnv(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func joinCountries(ccs []geo.CountryCode) string {
	if len(ccs) == 0 {
		return "none fully"
	}
	parts := make([]string, len(ccs))
	for i, cc := range ccs {
		parts[i] = string(cc)
	}
	return strings.Join(parts, ",")
}
