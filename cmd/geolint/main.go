// Command geolint runs the geoblock static-analysis suite over the
// module: the machine check for the invariants the scan engine's
// determinism and degradation contracts rest on (no wall clock or
// global RNG in the scan path, no map-ordered output, contexts threaded
// end to end, every Outage and scan error handled, no stray
// goroutines). It is a tier-1 gate: `make check` runs it between `go
// vet` and the tests.
//
//	geolint ./...          # everything (the default)
//	geolint -list          # describe the analyzers
//
// Exact-line escapes use `//geolint:allow <analyzer> <reason>`; see
// internal/lint for the rules.
package main

import (
	"flag"
	"fmt"
	"os"

	"geoblock/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "geolint:", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(dir, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "geolint:", err)
		os.Exit(2)
	}
	diags := lint.Check(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "geolint: %d invariant violation(s)\n", len(diags))
		os.Exit(1)
	}
}
