// Command geolint runs the geoblock static-analysis suite over the
// module: the machine check for the invariants the scan engine's
// determinism and degradation contracts rest on (no wall clock or
// global RNG in the scan path — directly or through wrapper functions
// in other packages, no map-ordered output, contexts threaded end to
// end, checked codec I/O with encode/decode field parity, a static
// class-consistent metric namespace, mutex/atomic discipline on shared
// snapshot state). It is a tier-1 gate: `make check` runs it between
// `go vet` and the tests.
//
//	geolint ./...                      # everything (the default)
//	geolint -list                      # describe the analyzers
//	geolint -baseline lint.baseline ./...   # apply the committed ratchet
//	geolint -json ./...                # machine-readable diagnostics
//	geolint -write-baseline lint.baseline ./...  # accept current findings
//
// With -baseline, a diagnostic the baseline covers is reported but
// does not fail the run; a new diagnostic fails it; a stale baseline
// entry is flagged on stderr so the ratchet only tightens. Exact-line
// escapes use `//geolint:allow <analyzer> <reason>` and block escapes
// `//geolint:allow-block <analyzer> <reason>`; see internal/lint.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"geoblock/internal/lint"
)

// jsonDiag is the machine-readable diagnostic shape for CI annotation.
type jsonDiag struct {
	Analyzer  string `json:"analyzer"`
	File      string `json:"file"`
	Line      int    `json:"line"`
	Column    int    `json:"column"`
	Message   string `json:"message"`
	Baselined bool   `json:"baselined,omitempty"`
}

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON on stdout")
	baselinePath := flag.String("baseline", "", "baseline file: covered diagnostics do not fail the run")
	writeBaseline := flag.String("write-baseline", "", "write current diagnostics to this baseline file and exit")
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	dir, err := os.Getwd()
	if err != nil {
		fail(err)
	}
	pkgs, err := lint.Load(dir, flag.Args()...)
	if err != nil {
		fail(err)
	}
	diags := lint.Check(pkgs, analyzers)

	if *writeBaseline != "" {
		if err := os.WriteFile(*writeBaseline, []byte(lint.FormatBaseline(dir, diags)), 0o644); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "geolint: wrote %d finding(s) to %s\n", len(diags), *writeBaseline)
		return
	}

	covered, surviving := []lint.Diagnostic(nil), diags
	var stale []string
	if *baselinePath != "" {
		base, err := lint.LoadBaseline(*baselinePath)
		if err != nil {
			fail(err)
		}
		covered, surviving, stale = base.Apply(dir, diags)
	}

	if *jsonOut {
		out := make([]jsonDiag, 0, len(diags))
		emit := func(ds []lint.Diagnostic, baselined bool) {
			for _, d := range ds {
				out = append(out, jsonDiag{
					Analyzer: d.Analyzer, File: d.Pos.Filename, Line: d.Pos.Line,
					Column: d.Pos.Column, Message: d.Message, Baselined: baselined,
				})
			}
		}
		emit(surviving, false)
		emit(covered, true)
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(out); err != nil {
			fail(err)
		}
	} else {
		for _, d := range surviving {
			fmt.Println(d)
		}
		for _, d := range covered {
			fmt.Printf("%s [baselined]\n", d)
		}
	}
	for _, s := range stale {
		fmt.Fprintf(os.Stderr, "geolint: stale baseline entry (fixed? shrink the baseline): %s\n", s)
	}
	if len(surviving) > 0 {
		fmt.Fprintf(os.Stderr, "geolint: %d invariant violation(s)\n", len(surviving))
		os.Exit(1)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "geolint:", err)
	os.Exit(2)
}
