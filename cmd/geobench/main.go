// Command geobench records the engine's perf trajectory: it times the
// Top-10K study single-process and distributed over 1/2/4 fabric
// workers, measures the journal's crash/resume replay speedup,
// microbenchmarks the shard wire encoding and the verdict snapshot's
// lookup path, then writes the numbers as JSON (BENCH_<pr>.json at the
// repo root by convention) so future changes compare against a
// recorded baseline instead of anecdotes.
//
//	geobench -out BENCH_9.json
//
// Schema geobench/3 adds allocs_per_sample to every study and
// per-worker lease_wait_seconds to the fabric cells; scripts/benchdiff
// gates changes against the previous baseline.
//
// All timing flows through telemetry.Wall, the engine's one sanctioned
// wall-clock seam; the workloads themselves stay deterministic, only
// their durations vary run to run.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"geoblock"
	"geoblock/internal/runstore"
	"geoblock/internal/scanner"
	"geoblock/internal/telemetry"
)

// report is the JSON shape written to -out. Fields are stable: future
// PRs append files, they do not reshape old ones.
type report struct {
	Schema string  `json:"schema"`
	Scale  float64 `json:"scale"`
	Seed   uint64  `json:"seed"`

	SingleProcess study   `json:"single_process"`
	Fabric        []study `json:"fabric"`

	Resume  resumeStats  `json:"resume"`
	Encode  encodeStats  `json:"encode"`
	Verdict verdictStats `json:"verdict"`
}

// study is one timed Top-10K run. Samples counts the initial-snapshot
// scan — the study's dominant phase and the same workload in every
// cell, so samples/sec compares fairly across single-process and
// worker counts. Since geobench/3 each study also reports heap
// allocations per sample (driver-process Mallocs over the whole run),
// and fabric studies report how long each worker spent parked in
// lease-wait backoff — the queueing cost the batch-lease protocol
// exists to keep down.
type study struct {
	Workers          int       `json:"workers,omitempty"`
	Seconds          float64   `json:"seconds"`
	Samples          int       `json:"samples"`
	SamplesPerSec    float64   `json:"samples_per_sec"`
	AllocsPerSample  float64   `json:"allocs_per_sample"`
	LeaseWaitSeconds []float64 `json:"lease_wait_seconds,omitempty"`
}

type resumeStats struct {
	ColdSeconds   float64 `json:"cold_seconds"`
	ResumeSeconds float64 `json:"resume_seconds"`
	Speedup       float64 `json:"speedup"`
}

type encodeStats struct {
	Records     int     `json:"records"`
	NsPerRecord float64 `json:"ns_per_record"`
}

// verdictStats measures the verdict edge's serving primitive: lookups
// against the immutable snapshot the study emits. The alloc count is a
// hard invariant (the edge promises zero allocations per lookup), the
// nanosecond figure is the trajectory number.
type verdictStats struct {
	Domains            int     `json:"domains"`
	Countries          int     `json:"countries"`
	Blocked            int     `json:"blocked"`
	Lookups            int     `json:"lookups"`
	NsPerVerdictLookup float64 `json:"ns_per_verdict_lookup"`
	AllocsPerLookup    float64 `json:"allocs_per_lookup"`
}

func main() {
	out := flag.String("out", "BENCH_9.json", "output JSON path")
	scale := flag.Float64("scale", 0.02, "population scale for the benchmark study")
	seed := flag.Uint64("seed", 11, "world seed")
	flag.Parse()

	rep := report{Schema: "geobench/3", Scale: *scale, Seed: *seed}

	log.Printf("geobench: single-process study (scale %g)", *scale)
	single, snap := runSingle(*scale, *seed)
	rep.SingleProcess = single

	for _, n := range []int{1, 2, 4} {
		log.Printf("geobench: fabric study, %d worker(s)", n)
		rep.Fabric = append(rep.Fabric, runFabric(*scale, *seed, n))
	}

	log.Printf("geobench: journaled cold run + resume replay")
	rep.Resume = runResume(*scale, *seed)

	log.Printf("geobench: shard wire encoding")
	rep.Encode = runEncode()

	log.Printf("geobench: verdict snapshot lookups")
	rep.Verdict = runVerdict(snap)

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	b = append(b, '\n')
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s", b)
	log.Printf("geobench: wrote %s", *out)
}

// wall reads the sanctioned wall-clock seam.
func wall() time.Time { return telemetry.Wall{}.Now() }

// world pins the benchmark calibration (the chaos matrix's own).
func world(scale float64, seed uint64) geoblock.WorldConfig {
	cfg := geoblock.DefaultWorldConfig()
	cfg.Seed = seed
	cfg.Scale = scale
	return cfg
}

// runSingle times the in-process study and keeps the verdict snapshot
// it emits — the same matrix the verdict microbenchmark then serves.
func runSingle(scale float64, seed uint64) (study, *geoblock.VerdictSnapshot) {
	wcfg := world(scale, seed)
	s := geoblock.New(geoblock.Options{World: &wcfg, Metrics: telemetry.New()})
	var before runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := wall()
	r := s.RunTop10K(geoblock.Top10KConfig{})
	st := timed(0, start, len(r.Initial.Samples))
	st.AllocsPerSample = allocsSince(&before, st.Samples)
	return st, s.Verdicts()
}

// allocsSince reads the heap's Mallocs delta since before and spreads
// it over the study's samples. It is a whole-process figure — scan
// work plus journaling plus scheduling — which is exactly what the
// perf trajectory wants to watch for regressions.
func allocsSince(before *runtime.MemStats, samples int) float64 {
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if samples == 0 {
		return 0
	}
	return float64(after.Mallocs-before.Mallocs) / float64(samples)
}

func runFabric(scale float64, seed uint64, nWorkers int) study {
	wcfg := world(scale, seed)
	coord := geoblock.NewFabric(geoblock.FabricOptions{
		Study:   geoblock.FabricStudySpec{World: wcfg},
		Metrics: telemetry.New(),
	})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx := context.Background()
	var wg sync.WaitGroup
	// Each worker's Sleep hook tallies the backoff it was asked to take
	// while no lease was available — the protocol's queueing cost. The
	// hook never actually sleeps (Gosched keeps the bench hot), so the
	// figure is requested wait, not wall time lost.
	waitNS := make([]int64, nWorkers)
	var before runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := wall()
	for i := 0; i < nWorkers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w, err := geoblock.NewFabricWorker(ctx, geoblock.FabricWorkerOptions{
				Coordinator: srv.URL,
				Name:        fmt.Sprintf("bench-%d", i),
				Sleep: func(d time.Duration) {
					atomic.AddInt64(&waitNS[i], int64(d))
					runtime.Gosched()
				},
			})
			if err != nil {
				log.Fatalf("geobench: worker %d: %v", i, err)
			}
			if err := w.Run(ctx); err != nil {
				log.Fatalf("geobench: worker %d: %v", i, err)
			}
		}(i)
	}
	s := geoblock.New(geoblock.Options{World: &wcfg, Metrics: telemetry.New(), Fabric: coord})
	r := s.RunTop10K(geoblock.Top10KConfig{})
	if err := s.Err(); err != nil {
		log.Fatalf("geobench: fabric study: %v", err)
	}
	coord.FinishStudy()
	wg.Wait()
	st := timed(nWorkers, start, len(r.Initial.Samples))
	st.AllocsPerSample = allocsSince(&before, st.Samples)
	st.LeaseWaitSeconds = make([]float64, nWorkers)
	for i, ns := range waitNS {
		st.LeaseWaitSeconds[i] = time.Duration(ns).Seconds()
	}
	return st
}

func runResume(scale float64, seed uint64) resumeStats {
	dir, err := os.MkdirTemp("", "geobench-journal-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	run := func() float64 {
		st, err := geoblock.OpenRunStore(dir, geoblock.RunStoreOptions{})
		if err != nil {
			log.Fatal(err)
		}
		wcfg := world(scale, seed)
		s := geoblock.New(geoblock.Options{World: &wcfg, Metrics: telemetry.New(), Store: st})
		start := wall()
		s.RunTop10K(geoblock.Top10KConfig{})
		secs := wall().Sub(start).Seconds()
		if err := s.Err(); err != nil {
			log.Fatalf("geobench: journaled study: %v", err)
		}
		st.Close()
		return secs
	}
	cold := run()
	// Second run over the same journal: every phase is already
	// committed, so the scans replay from disk instead of executing.
	resume := run()
	return resumeStats{ColdSeconds: cold, ResumeSeconds: resume, Speedup: cold / resume}
}

func runEncode() encodeStats {
	const perShard = 64
	const iters = 2000
	samples := make([]scanner.Sample, perShard)
	for i := range samples {
		samples[i] = scanner.Sample{Domain: int32(i), Country: 7, Seed: uint64(i) * 2654435761}
	}
	cp := runstore.Checkpoint{Seq: 1, Country: "IR", Tasks: perShard, Samples: perShard}

	start := wall()
	var sink int
	for i := 0; i < iters; i++ {
		sink += len(runstore.EncodeShardFrames(samples, cp))
	}
	elapsed := wall().Sub(start)
	if sink == 0 {
		log.Fatal("geobench: encode produced no bytes")
	}
	records := iters * (perShard + 1)
	return encodeStats{Records: records, NsPerRecord: float64(elapsed.Nanoseconds()) / float64(records)}
}

// runVerdict hammers the snapshot's Lookup across its whole
// domain×country universe: nanoseconds per lookup from the wall clock,
// allocations per lookup from the heap's Mallocs counter (which must
// come out at zero — the serving path is a map index plus a bit test).
func runVerdict(snap *geoblock.VerdictSnapshot) verdictStats {
	if snap == nil {
		log.Fatal("geobench: study emitted no verdict snapshot")
	}
	doms := snap.Domains()
	ccs := snap.Countries()
	const n = 4_000_000
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := wall()
	var sink bool
	for i := 0; i < n; i++ {
		v, _ := snap.Lookup(doms[i%len(doms)], ccs[i%len(ccs)])
		sink = v.Blocked
	}
	elapsed := wall().Sub(start)
	runtime.ReadMemStats(&after)
	_ = sink
	return verdictStats{
		Domains:            len(doms),
		Countries:          len(ccs),
		Blocked:            snap.Blocked(),
		Lookups:            n,
		NsPerVerdictLookup: float64(elapsed.Nanoseconds()) / float64(n),
		AllocsPerLookup:    float64(after.Mallocs-before.Mallocs) / float64(n),
	}
}

func timed(workers int, start time.Time, samples int) study {
	secs := wall().Sub(start).Seconds()
	return study{Workers: workers, Seconds: secs, Samples: samples, SamplesPerSec: float64(samples) / secs}
}
