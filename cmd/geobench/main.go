// Command geobench records the engine's perf trajectory: it times the
// Top-10K study single-process and distributed over 1/2/4 fabric
// workers, measures the journal's crash/resume replay speedup,
// microbenchmarks the shard wire encoding and the verdict snapshot's
// lookup path, then writes the numbers as JSON (BENCH_<pr>.json at the
// repo root by convention) so future changes compare against a
// recorded baseline instead of anecdotes.
//
//	geobench -out BENCH_7.json
//
// All timing flows through telemetry.Wall, the engine's one sanctioned
// wall-clock seam; the workloads themselves stay deterministic, only
// their durations vary run to run.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"time"

	"geoblock"
	"geoblock/internal/runstore"
	"geoblock/internal/scanner"
	"geoblock/internal/telemetry"
)

// report is the JSON shape written to -out. Fields are stable: future
// PRs append files, they do not reshape old ones.
type report struct {
	Schema string  `json:"schema"`
	Scale  float64 `json:"scale"`
	Seed   uint64  `json:"seed"`

	SingleProcess study   `json:"single_process"`
	Fabric        []study `json:"fabric"`

	Resume  resumeStats  `json:"resume"`
	Encode  encodeStats  `json:"encode"`
	Verdict verdictStats `json:"verdict"`
}

// study is one timed Top-10K run. Samples counts the initial-snapshot
// scan — the study's dominant phase and the same workload in every
// cell, so samples/sec compares fairly across single-process and
// worker counts.
type study struct {
	Workers       int     `json:"workers,omitempty"`
	Seconds       float64 `json:"seconds"`
	Samples       int     `json:"samples"`
	SamplesPerSec float64 `json:"samples_per_sec"`
}

type resumeStats struct {
	ColdSeconds   float64 `json:"cold_seconds"`
	ResumeSeconds float64 `json:"resume_seconds"`
	Speedup       float64 `json:"speedup"`
}

type encodeStats struct {
	Records     int     `json:"records"`
	NsPerRecord float64 `json:"ns_per_record"`
}

// verdictStats measures the verdict edge's serving primitive: lookups
// against the immutable snapshot the study emits. The alloc count is a
// hard invariant (the edge promises zero allocations per lookup), the
// nanosecond figure is the trajectory number.
type verdictStats struct {
	Domains            int     `json:"domains"`
	Countries          int     `json:"countries"`
	Blocked            int     `json:"blocked"`
	Lookups            int     `json:"lookups"`
	NsPerVerdictLookup float64 `json:"ns_per_verdict_lookup"`
	AllocsPerLookup    float64 `json:"allocs_per_lookup"`
}

func main() {
	out := flag.String("out", "BENCH_7.json", "output JSON path")
	scale := flag.Float64("scale", 0.02, "population scale for the benchmark study")
	seed := flag.Uint64("seed", 11, "world seed")
	flag.Parse()

	rep := report{Schema: "geobench/2", Scale: *scale, Seed: *seed}

	log.Printf("geobench: single-process study (scale %g)", *scale)
	single, snap := runSingle(*scale, *seed)
	rep.SingleProcess = single

	for _, n := range []int{1, 2, 4} {
		log.Printf("geobench: fabric study, %d worker(s)", n)
		rep.Fabric = append(rep.Fabric, runFabric(*scale, *seed, n))
	}

	log.Printf("geobench: journaled cold run + resume replay")
	rep.Resume = runResume(*scale, *seed)

	log.Printf("geobench: shard wire encoding")
	rep.Encode = runEncode()

	log.Printf("geobench: verdict snapshot lookups")
	rep.Verdict = runVerdict(snap)

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	b = append(b, '\n')
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s", b)
	log.Printf("geobench: wrote %s", *out)
}

// wall reads the sanctioned wall-clock seam.
func wall() time.Time { return telemetry.Wall{}.Now() }

// world pins the benchmark calibration (the chaos matrix's own).
func world(scale float64, seed uint64) geoblock.WorldConfig {
	cfg := geoblock.DefaultWorldConfig()
	cfg.Seed = seed
	cfg.Scale = scale
	return cfg
}

// runSingle times the in-process study and keeps the verdict snapshot
// it emits — the same matrix the verdict microbenchmark then serves.
func runSingle(scale float64, seed uint64) (study, *geoblock.VerdictSnapshot) {
	wcfg := world(scale, seed)
	s := geoblock.New(geoblock.Options{World: &wcfg, Metrics: telemetry.New()})
	start := wall()
	r := s.RunTop10K(geoblock.Top10KConfig{})
	return timed(0, start, len(r.Initial.Samples)), s.Verdicts()
}

func runFabric(scale float64, seed uint64, nWorkers int) study {
	wcfg := world(scale, seed)
	coord := geoblock.NewFabric(geoblock.FabricOptions{
		Study:   geoblock.FabricStudySpec{World: wcfg},
		Metrics: telemetry.New(),
	})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx := context.Background()
	var wg sync.WaitGroup
	start := wall()
	for i := 0; i < nWorkers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w, err := geoblock.NewFabricWorker(ctx, geoblock.FabricWorkerOptions{
				Coordinator: srv.URL,
				Name:        fmt.Sprintf("bench-%d", i),
				Sleep:       func(time.Duration) { runtime.Gosched() },
			})
			if err != nil {
				log.Fatalf("geobench: worker %d: %v", i, err)
			}
			if err := w.Run(ctx); err != nil {
				log.Fatalf("geobench: worker %d: %v", i, err)
			}
		}(i)
	}
	s := geoblock.New(geoblock.Options{World: &wcfg, Metrics: telemetry.New(), Fabric: coord})
	r := s.RunTop10K(geoblock.Top10KConfig{})
	if err := s.Err(); err != nil {
		log.Fatalf("geobench: fabric study: %v", err)
	}
	coord.FinishStudy()
	wg.Wait()
	return timed(nWorkers, start, len(r.Initial.Samples))
}

func runResume(scale float64, seed uint64) resumeStats {
	dir, err := os.MkdirTemp("", "geobench-journal-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	run := func() float64 {
		st, err := geoblock.OpenRunStore(dir, geoblock.RunStoreOptions{})
		if err != nil {
			log.Fatal(err)
		}
		wcfg := world(scale, seed)
		s := geoblock.New(geoblock.Options{World: &wcfg, Metrics: telemetry.New(), Store: st})
		start := wall()
		s.RunTop10K(geoblock.Top10KConfig{})
		secs := wall().Sub(start).Seconds()
		if err := s.Err(); err != nil {
			log.Fatalf("geobench: journaled study: %v", err)
		}
		st.Close()
		return secs
	}
	cold := run()
	// Second run over the same journal: every phase is already
	// committed, so the scans replay from disk instead of executing.
	resume := run()
	return resumeStats{ColdSeconds: cold, ResumeSeconds: resume, Speedup: cold / resume}
}

func runEncode() encodeStats {
	const perShard = 64
	const iters = 2000
	samples := make([]scanner.Sample, perShard)
	for i := range samples {
		samples[i] = scanner.Sample{Domain: int32(i), Country: 7, Seed: uint64(i) * 2654435761}
	}
	cp := runstore.Checkpoint{Seq: 1, Country: "IR", Tasks: perShard, Samples: perShard}

	start := wall()
	var sink int
	for i := 0; i < iters; i++ {
		sink += len(runstore.EncodeShardFrames(samples, cp))
	}
	elapsed := wall().Sub(start)
	if sink == 0 {
		log.Fatal("geobench: encode produced no bytes")
	}
	records := iters * (perShard + 1)
	return encodeStats{Records: records, NsPerRecord: float64(elapsed.Nanoseconds()) / float64(records)}
}

// runVerdict hammers the snapshot's Lookup across its whole
// domain×country universe: nanoseconds per lookup from the wall clock,
// allocations per lookup from the heap's Mallocs counter (which must
// come out at zero — the serving path is a map index plus a bit test).
func runVerdict(snap *geoblock.VerdictSnapshot) verdictStats {
	if snap == nil {
		log.Fatal("geobench: study emitted no verdict snapshot")
	}
	doms := snap.Domains()
	ccs := snap.Countries()
	const n = 4_000_000
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := wall()
	var sink bool
	for i := 0; i < n; i++ {
		v, _ := snap.Lookup(doms[i%len(doms)], ccs[i%len(ccs)])
		sink = v.Blocked
	}
	elapsed := wall().Sub(start)
	runtime.ReadMemStats(&after)
	_ = sink
	return verdictStats{
		Domains:            len(doms),
		Countries:          len(ccs),
		Blocked:            snap.Blocked(),
		Lookups:            n,
		NsPerVerdictLookup: float64(elapsed.Nanoseconds()) / float64(n),
		AllocsPerLookup:    float64(after.Mallocs-before.Mallocs) / float64(n),
	}
}

func timed(workers int, start time.Time, samples int) study {
	secs := wall().Sub(start).Seconds()
	return study{Workers: workers, Seconds: secs, Samples: samples, SamplesPerSec: float64(samples) / secs}
}
