// Command geoscan runs the geoblocking studies against the simulated
// Internet and prints the paper's tables to stdout.
//
// Usage:
//
//	geoscan [-scale 0.1] [-seed 403] [-study top10k|top1m|explore|ooni|cfrules|all] [-v]
//
// At -scale 1.0 the world is paper scale (10,000 popular domains,
// ~152k Top-1M CDN customers, 177 countries); the default 0.1 runs in
// seconds on a laptop.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	stdnet "net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"geoblock"
	"geoblock/internal/analysis"
	"geoblock/internal/faults"
	"geoblock/internal/lumscan"
	"geoblock/internal/papertables"
	"geoblock/internal/telemetry"
	"geoblock/internal/trace"
)

func main() {
	scale := flag.Float64("scale", 0.1, "population scale in (0,1]; 1.0 = paper scale")
	seed := flag.Uint64("seed", 403, "world seed")
	study := flag.String("study", "top10k", "study to run: top10k, top1m, explore, ooni, cfrules, extensions, all")
	verbose := flag.Bool("v", false, "log progress")
	faultsFlag := flag.String("faults", "", "chaos profile to inject into the proxy mesh: "+strings.Join(faults.Names(), ", "))
	faultSeed := flag.Uint64("faultseed", 1, "fault-injection seed (reproducible chaos)")
	faultCountry := flag.String("faultcountry", "", "restrict the chaos profile to one country code (default: all)")
	metricsAddr := flag.String("metrics", "", "serve /debug/metrics (and pprof) on this address while the study runs")
	metricsOut := flag.String("metrics-out", "", "write the final telemetry snapshot to this file (.json for JSON, else text)")
	traceOut := flag.String("trace", "", "write the study's wide-event trace to this file (.json: Chrome trace-event JSON, loadable in Perfetto)")
	storeDir := flag.String("store", "", "journal every scan phase to this directory (crash-safe; see -resume)")
	resume := flag.Bool("resume", false, "resume an interrupted run from the -store journal instead of refusing it")
	fabricAddr := flag.String("fabric", "", "serve a distributed-scan coordinator on this address; residential scan phases then run on scanworker processes instead of in-process")
	fabricReady := flag.String("fabric-ready-file", "", "write the coordinator's resolved listen address to this file (for scripts that spawn workers)")
	flag.Parse()

	// Ctrl-C cancels in-flight scans; studies then return partial
	// results and the process exits on the next table boundary.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// Studies driven from the CLI report real elapsed time in their
	// phase spans, and the registry backs the live endpoints below.
	reg := telemetry.NewWithClock(telemetry.Wall{})

	if *resume && *storeDir == "" {
		fmt.Fprintln(os.Stderr, "geoscan: -resume requires -store")
		os.Exit(2)
	}
	var store *geoblock.RunStore
	if *storeDir != "" {
		st, err := openStore(*storeDir, *resume, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "geoscan: %v\n", err)
			os.Exit(2)
		}
		defer st.Close()
		store = st
	}

	// -trace arms the tracer for the whole study: every phase's scan
	// records into it, and the merged timeline lands in one file at the
	// end. Flight dumps go to stderr on an Outage or a panic.
	var tracer *geoblock.Tracer
	if *traceOut != "" {
		tracer = geoblock.NewTracer(*seed).WithWall(telemetry.Wall{}).WithFlightSink(os.Stderr)
		defer trace.CrashDump(tracer, os.Stderr)
	}

	opts := geoblock.Options{Seed: *seed, Scale: *scale, Ctx: ctx, Metrics: reg, Store: store, Trace: tracer}
	if *verbose {
		opts.Log = func(format string, args ...any) {
			log.Printf(format, args...)
		}
	}

	// -fabric: become the coordinator of a distributed study. The world
	// calibration is pinned explicitly so workers regenerate the exact
	// same world from the study spec.
	var coord *geoblock.FabricCoordinator
	if *fabricAddr != "" {
		wcfg := geoblock.DefaultWorldConfig()
		wcfg.Seed = *seed
		wcfg.Scale = *scale
		spec := geoblock.FabricStudySpec{World: wcfg}
		if *faultsFlag != "" {
			spec.Faults = &geoblock.FabricFaultSpec{
				Seed:    *faultSeed,
				Profile: *faultsFlag,
				Country: strings.ToUpper(*faultCountry),
			}
		}
		coord = geoblock.NewFabric(geoblock.FabricOptions{Study: spec, Metrics: reg, Trace: tracer})
		ln, lerr := stdnet.Listen("tcp", *fabricAddr)
		if lerr != nil {
			fmt.Fprintf(os.Stderr, "geoscan: fabric listener: %v\n", lerr)
			os.Exit(2)
		}
		srv := &http.Server{Handler: coord.Handler()}
		go func() {
			if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "geoscan: fabric server: %v\n", err)
			}
		}()
		defer srv.Close()
		if *fabricReady != "" {
			if werr := os.WriteFile(*fabricReady, []byte(ln.Addr().String()), 0o644); werr != nil {
				fmt.Fprintf(os.Stderr, "geoscan: fabric-ready-file: %v\n", werr)
				os.Exit(2)
			}
		}
		fmt.Fprintf(os.Stderr, "geoscan: fabric coordinator on http://%s (start workers: scanworker -coordinator http://%s)\n", ln.Addr(), ln.Addr())
		opts.World = &wcfg
		opts.Fabric = coord
	}
	sys := geoblock.New(opts)
	out := os.Stdout

	if *metricsAddr != "" {
		srv := telemetry.MetricsServer(*metricsAddr, reg)
		go func() {
			if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "geoscan: metrics server: %v\n", err)
			}
		}()
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "geoscan: metrics on http://%s/debug/metrics\n", *metricsAddr)
	}
	stopProgress := telemetry.StartProgress(os.Stderr, 2*time.Second, func() string {
		return "geoscan: " + lumscan.ProgressLine(reg)
	})
	defer stopProgress()

	if *faultsFlag != "" {
		profile, ok := faults.Named(*faultsFlag)
		if !ok {
			fmt.Fprintf(os.Stderr, "geoscan: unknown fault profile %q (have: %s)\n",
				*faultsFlag, strings.Join(faults.Names(), ", "))
			os.Exit(2)
		}
		inj := faults.New(*faultSeed).Instrument(reg)
		if *faultCountry != "" {
			inj.Country(geoblock.CountryCode(strings.ToUpper(*faultCountry)), profile)
		} else {
			inj.Default(profile)
		}
		sys.Net().SetFaults(inj)
		fmt.Fprintf(os.Stderr, "geoscan: chaos profile %q (seed %d) active\n", *faultsFlag, *faultSeed)
	}

	runTop10K := func() {
		r := sys.RunTop10K(geoblock.Top10KConfig{})
		papertables.PrintCoverage(out, "top10k initial snapshot", r.Outages, r.Coverage)
		papertables.FindingsSummary(out, r)
		papertables.PrintTable1(out, analysis.BuildTable1(r))
		rows, total := analysis.BuildTable2(r)
		papertables.PrintTable2(out, rows, total)
		papertables.PrintTable3(out, analysis.BuildTable3(sys.World, r.Findings))
		papertables.PrintCategoryRates(out, "Table 4: Geoblocked sites by category (Top 10K)",
			analysis.BuildCategoryRates(sys.World, analysis.RespondingDomains(r.Initial), r.Findings))
		papertables.PrintTable5(out, sys.World.Geo, analysis.BuildTable5(sys.World, r.Findings))
		papertables.PrintCountryCDN(out, "Table 6: Geoblocking among Top 10K sites, by country",
			sys.World.Geo, analysis.BuildCountryCDNTable(r.Findings), 10)
		papertables.PrintProviderRates(out, "Per-provider geoblock rates (§4.2.1)",
			analysis.BuildProviderRates(papertables.ProviderCountsFromWorld(sys.World), r.Findings))
	}

	runTop1M := func() {
		r := sys.RunTop1M(geoblock.Top1MConfig{})
		papertables.PrintCoverage(out, "top1m snapshot", r.Outages, r.Coverage)
		fmt.Fprintf(out, "Top 1M: %d customers discovered, %d eligible, %d sampled, %d explicit findings\n\n",
			r.Discovered.Total(), r.EligibleCount, len(r.TestDomains), len(r.ExplicitFindings))
		papertables.PrintCountryCDN(out, "Table 7: Geoblocking among Top 1M sites, by country",
			sys.World.Geo, analysis.BuildCountryCDNTable(r.ExplicitFindings), 10)
		papertables.PrintCategoryRates(out, "Table 8: Geoblocked sites by top category (Top 1M)",
			analysis.BuildCategoryRates(sys.World, analysis.RespondingDomains(r.Initial), r.ExplicitFindings))
		papertables.PrintProviderRates(out, "Per-provider geoblock rates (§5.2.1)",
			analysis.BuildProviderRates(r.TestedPerProvider, r.ExplicitFindings))
		papertables.PrintNonExplicit(out, r)
	}

	runExtensions := func() {
		r := sys.RunTop10K(geoblock.Top10KConfig{})
		papertables.PrintTimeouts(out, sys.AnalyzeTimeouts(r, 10))
		targets := []geoblock.CountryCode{"IR", "SY", "SD", "CU", "CN", "RU", "BR", "IN", "NG", "UA"}
		papertables.PrintAppLayer(out, sys.RunAppLayerStudy(analysis.RespondingDomains(r.Initial), "US", targets))
		seen := map[string]bool{}
		var regDomains []string
		for _, f := range r.Candidates {
			if !seen[f.DomainName] {
				seen[f.DomainName] = true
				regDomains = append(regDomains, f.DomainName)
			}
		}
		papertables.PrintRegional(out, sys.RunRegionalAnalysis(regDomains, 12))
	}

	switch *study {
	case "top10k":
		runTop10K()
	case "top1m":
		runTop1M()
	case "explore":
		papertables.PrintExploration(out, sys.RunExploration())
	case "ooni":
		corpus := sys.SynthesizeOONI(2)
		papertables.PrintOONI(out, sys.AnalyzeOONI(corpus))
	case "cfrules":
		papertables.PrintCloudflareTable9(out, sys.World.Geo, sys.CloudflareRulesSnapshot())
	case "extensions":
		runExtensions()
	case "all":
		papertables.PrintExploration(out, sys.RunExploration())
		runTop10K()
		runTop1M()
		corpus := sys.SynthesizeOONI(2)
		papertables.PrintOONI(out, sys.AnalyzeOONI(corpus))
		papertables.PrintCloudflareTable9(out, sys.World.Geo, sys.CloudflareRulesSnapshot())
	default:
		fmt.Fprintf(os.Stderr, "unknown study %q\n", *study)
		os.Exit(2)
	}

	stopProgress()
	if coord != nil {
		coord.FinishStudy()
		// Grace period: let polling workers observe study-done and exit
		// cleanly before the coordinator endpoint disappears.
		time.Sleep(time.Second) //geolint:allow determinism worker-drain grace period on the real wall clock
	}
	if *metricsOut != "" {
		if err := reg.Snapshot().WriteFile(*metricsOut); err != nil {
			fmt.Fprintf(os.Stderr, "geoscan: metrics-out: %v\n", err)
		}
	}
	if *traceOut != "" {
		snap := tracer.Snapshot()
		if werr := snap.WriteFile(*traceOut); werr != nil {
			fmt.Fprintf(os.Stderr, "geoscan: trace: %v\n", werr)
		} else {
			fmt.Fprintf(os.Stderr, "geoscan: %d trace events written to %s (open in ui.perfetto.dev)\n", len(snap.Events), *traceOut)
		}
	}
	// A study that lost a phase (cancellation, journal severance, a
	// failed fabric phase) printed partial tables; say so and exit
	// non-zero, naming the phase that died.
	if err := sys.Err(); err != nil {
		if store != nil {
			store.Close()
		}
		fmt.Fprintf(os.Stderr, "geoscan: study aborted: %v\n", err)
		os.Exit(1)
	}
}

// openStore opens the run journal, refusing to silently extend an
// existing one: a journal that already holds phases is only reopened
// under -resume, so a mistyped -store directory can't splice two runs.
func openStore(dir string, resume bool, reg *telemetry.Registry) (*geoblock.RunStore, error) {
	st, err := geoblock.OpenRunStore(dir, geoblock.RunStoreOptions{Metrics: reg})
	if err != nil {
		return nil, err
	}
	if phases := st.Phases(); len(phases) > 0 && !resume {
		st.Close()
		return nil, fmt.Errorf("%s already holds a journal (%d phases); pass -resume to continue it, or point -store at a fresh directory", dir, len(phases))
	}
	if resume {
		var done, shards int
		for _, ph := range st.Phases() {
			if ph.Done {
				done++
			}
			shards += ph.Shards
		}
		fmt.Fprintf(os.Stderr, "geoscan: resuming from %s: %d phases journaled (%d complete, %d shards checkpointed)\n",
			dir, len(st.Phases()), done, shards)
	}
	return st, nil
}
