# Development gate for the geoblock reproduction.
#
#   make check   build + vet + full test suite (the tier-1 gate)
#   make race    race-detector pass over every package (the chaos and
#                scheduler suites exercise the concurrent scan path)
#   make cover   coverage with ratcheted floors for the scan engine and
#                the fault-injection layer
#   make bench   the scan engine benchmarks (collect vs streaming,
#                sharded vs one-worker-per-country)

GO ?= go

.PHONY: check race cover bench

check:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Ratcheted coverage floors: set just below the level each package
# actually achieves, so coverage can only move up. Raise the floor when
# you raise the coverage; never lower it to make a build pass.
cover:
	@set -e; \
	check() { \
	  pct=$$($(GO) test -cover $$1 | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
	  echo "$$1: $${pct}% (floor $$2%)"; \
	  awk -v p="$$pct" -v m="$$2" 'BEGIN { exit (p+0 >= m+0) ? 0 : 1 }' \
	    || { echo "FAIL: coverage for $$1 fell below the ratcheted floor of $$2%"; exit 1; }; \
	}; \
	check ./internal/scanner 85; \
	check ./internal/faults 88

bench:
	$(GO) test . -run xxx -bench 'BenchmarkScan(Collect|Streaming|SkewedSharded)' -benchtime 3x
