# Development gate for the geoblock reproduction.
#
#   make check   build + vet + full test suite (the tier-1 gate)
#   make race    race-detector pass over the concurrent scan path
#   make bench   the scan engine benchmarks (collect vs streaming,
#                sharded vs one-worker-per-country)

GO ?= go

.PHONY: check race bench

check:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...

race:
	$(GO) test -race ./internal/scanner ./internal/lumscan ./internal/pipeline

bench:
	$(GO) test . -run xxx -bench 'BenchmarkScan(Collect|Streaming|SkewedSharded)' -benchtime 3x
