# Development gate for the geoblock reproduction.
#
#   make check   the tier-1 gate, in order: build → vet → geolint → test.
#                geolint (cmd/geolint, built from internal/lint) machine-
#                checks the engine's invariants — determinism (including
#                the cross-package clockflow reachability pass), context
#                flow, outcome handling, codec parity (wirecheck), the
#                metric namespace (telemetrycheck), and shared-snapshot
#                discipline (swapcheck) — against the committed
#                lint.baseline ratchet; it runs after vet so type errors
#                surface with the compiler's messages first, and before
#                the test suite so an invariant violation fails in
#                seconds, not after a full chaos run.
#   make lint    vet plus the geolint pass, against the baseline.
#   make lint-json  the same pass emitting machine-readable JSON to
#                lint.json (the CI artifact), baselined findings included
#                with "baselined": true.
#   make race    race-detector pass over every package (the chaos and
#                scheduler suites exercise the concurrent scan path),
#                plus an explicit run of the verdict edge's trimmed soak
#                shape — the heaviest reader/swap interleaving the suite
#                has — so it never hides behind test caching
#   make cover   coverage with ratcheted floors for the scan engine, the
#                fault-injection layer, the telemetry layer, the journal
#                (runstore), the verdict edge, and the lint suite
#   make fuzz    short-budget fuzz pass over the hostile-input decoders:
#                the journal's record decoder, the blockpage signature
#                matcher, and the verdict snapshot codec (one
#                `go test -fuzz` invocation per package; the corpus
#                seeds still run under plain `make check`)
#   make bench   the scan engine benchmarks (collect vs streaming,
#                sharded vs one-worker-per-country, instrumented vs bare)
#   make profile the streaming scan benchmark under the CPU and memory
#                profilers; inspect with `go tool pprof geoblock.test cpu.prof`
#   make fabric-test  the multi-process fabric integration: a lumscan
#                coordinator plus three scanworker processes (one
#                chaos-killed mid-shard) must journal byte-identically
#                to a single-process run of the same scan
#   make perf    regenerate the recorded perf trajectory (BENCH_9.json,
#                schema geobench/3): samples/sec single-process vs
#                1/2/4 fabric workers, allocs/sample, per-worker lease
#                wait, resume replay speedup, ns/record wire encoding,
#                and ns/lookup + allocs/lookup against the verdict
#                snapshot
#   make perf-diff  gate the fresh trajectory against the committed
#                BENCH_7.json baseline: >15% regression in samples/sec,
#                ns/lookup, or ns/record (or any allocation on the
#                verdict serving path) fails the build
#   make soak    the verdict edge's full soak: 32 concurrent clients, a
#                live snapshot swap mid-run, zero dropped or incorrect
#                verdicts, p99 service latency and in-process lookup
#                floors enforced (the same test runs in a trimmed shape
#                under plain `make check`)

GO ?= go

.PHONY: check lint lint-json race cover fuzz bench profile fabric-test perf perf-diff soak

check:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) run ./cmd/geolint -baseline lint.baseline ./...
	$(GO) test ./...

lint:
	$(GO) vet ./...
	$(GO) run ./cmd/geolint -baseline lint.baseline ./...

lint-json:
	$(GO) run ./cmd/geolint -json -baseline lint.baseline ./... > lint.json

race:
	$(GO) test -race ./...
	$(GO) test -race ./cmd/worldd -run TestVerdictSoak -count=1

# Ratcheted coverage floors: set just below the level each package
# actually achieves, so coverage can only move up. Raise the floor when
# you raise the coverage; never lower it to make a build pass.
cover:
	@set -e; \
	check() { \
	  pct=$$($(GO) test -cover $$1 | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
	  echo "$$1: $${pct}% (floor $$2%)"; \
	  awk -v p="$$pct" -v m="$$2" 'BEGIN { exit (p+0 >= m+0) ? 0 : 1 }' \
	    || { echo "FAIL: coverage for $$1 fell below the ratcheted floor of $$2%"; exit 1; }; \
	}; \
	check ./internal/scanner 90; \
	check ./internal/faults 94; \
	check ./internal/lint 92; \
	check ./internal/telemetry 95; \
	check ./internal/trace 89; \
	check ./internal/runstore 89; \
	check ./internal/fabric 79; \
	check ./internal/verdict 85

# `go test -fuzz` takes exactly one fuzz target per invocation, so each
# decoder gets its own line. The budget is deliberately small: this is a
# smoke pass to catch freshly broken invariants, not a campaign.
FUZZTIME ?= 10s

fuzz:
	$(GO) test ./internal/runstore -run FuzzDecodeRecord -fuzz FuzzDecodeRecord -fuzztime $(FUZZTIME)
	$(GO) test ./internal/blockpage -run FuzzMatchSignature -fuzz FuzzMatchSignature -fuzztime $(FUZZTIME)
	$(GO) test ./internal/verdict -run FuzzDecodeSnapshot -fuzz FuzzDecodeSnapshot -fuzztime $(FUZZTIME)

bench:
	$(GO) test . -run xxx -bench 'BenchmarkScan(Collect|Streaming|SkewedSharded|Instrumented|ColdVsResume)' -benchtime 3x

profile:
	$(GO) test . -run xxx -bench 'BenchmarkScanStreaming' -benchtime 10x \
		-cpuprofile cpu.prof -memprofile mem.prof -o geoblock.test
	@echo "inspect with: $(GO) tool pprof geoblock.test cpu.prof"

fabric-test:
	sh scripts/fabric_integration.sh

perf:
	$(GO) run ./cmd/geobench -out BENCH_9.json

perf-diff:
	$(GO) run ./scripts/benchdiff.go -base BENCH_7.json -new BENCH_9.json

soak:
	GEOBLOCK_SOAK=full $(GO) test ./cmd/worldd -run TestVerdictSoak -v -count=1
