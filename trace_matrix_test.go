package geoblock

import (
	"bytes"
	"testing"

	"geoblock/internal/telemetry"
)

// tracedStudy runs the Top-10K study in-process at the given scan
// concurrency with a tracer attached, and returns the deterministic
// trace view's byte form.
func tracedStudy(t *testing.T, conc int) []byte {
	t.Helper()
	wcfg := matrixWorld()
	tr := NewTracer(wcfg.Seed)
	s := New(Options{World: &wcfg, Trace: tr})
	s.RunTop10K(Top10KConfig{Concurrency: conc})
	if err := s.Err(); err != nil {
		t.Fatalf("concurrency %d: study aborted: %v", conc, err)
	}
	b, err := tr.Snapshot().Deterministic().JSON()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestTraceMatrix is the tracing acceptance gate at study scope: the
// deterministic trace of a full Top-10K study — every phase's unit,
// fetch, session, emission, and pipeline event, in stream order — is
// byte-identical at scan concurrency 1, 4, and 32, and identical again
// when the study's residential phases are distributed over {1, 2, 4}
// fabric workers, including runs where a worker is chaos-killed
// mid-shard and its lease re-issued. One timeline, no matter how many
// goroutines or processes produced it.
func TestTraceMatrix(t *testing.T) {
	ref := tracedStudy(t, 1)
	for _, want := range []string{
		`"name": "pipeline/scan"`, `"name": "scan"`, `"name": "unit"`,
		`"name": "fetch"`, `"name": "session.open"`, `"name": "sink.emit"`,
	} {
		if !bytes.Contains(ref, []byte(want)) {
			t.Fatalf("reference trace is missing %s", want)
		}
	}

	for _, conc := range []int{4, 32} {
		if got := tracedStudy(t, conc); !bytes.Equal(got, ref) {
			t.Fatalf("in-process trace at concurrency %d diverges from concurrency 1 (%d vs %d bytes)",
				conc, len(got), len(ref))
		}
	}

	for _, tc := range []struct {
		workers int
		kill    bool
	}{{1, false}, {2, true}, {4, true}} {
		wcfg := matrixWorld()
		tr := NewTracer(wcfg.Seed)
		dir := t.TempDir()
		store, err := OpenRunStore(dir, RunStoreOptions{})
		if err != nil {
			t.Fatal(err)
		}
		fabricRun(t, store, telemetry.New(), tr, tc.workers, tc.kill)
		store.Close()
		got, err := tr.Snapshot().Deterministic().JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, ref) {
			t.Fatalf("workers=%d kill=%v: fabric trace diverges from the in-process reference (%d vs %d bytes)",
				tc.workers, tc.kill, len(got), len(ref))
		}
	}
}
