package cluster

import (
	"testing"

	"geoblock/internal/blockpage"
	"geoblock/internal/textfeat"
)

func dendCorpus() ([]string, []textfeat.Vector) {
	kinds := []blockpage.Kind{
		blockpage.Cloudflare, blockpage.Akamai, blockpage.AppEngine,
		blockpage.Nginx, blockpage.Incapsula,
	}
	var docs []string
	for _, k := range kinds {
		for i := 0; i < 8; i++ {
			docs = append(docs, renderKind(k, i))
		}
	}
	_, vecs := textfeat.FitTransform(docs)
	return docs, vecs
}

func clusterFingerprint(cs []Cluster) string {
	s := ""
	for _, c := range cs {
		for _, m := range c.Members {
			s += string(rune(m)) + ","
		}
		s += ";"
	}
	return s
}

func TestDendrogramCutEqualsSingleLink(t *testing.T) {
	docs, vecs := dendCorpus()
	d := BuildDendrogram(docs, vecs, 4)
	for _, th := range []float64{0.5, 0.7, 0.82, 0.95, 0.999} {
		viaCut := d.CutAt(th)
		direct := SingleLink(docs, vecs, Options{MinSimilarity: th, Workers: 4})
		if clusterFingerprint(viaCut) != clusterFingerprint(direct) {
			t.Fatalf("threshold %v: dendrogram cut and direct single-link disagree\ncut:    %d clusters\ndirect: %d clusters",
				th, len(viaCut), len(direct))
		}
	}
}

func TestDendrogramMonotoneCounts(t *testing.T) {
	docs, vecs := dendCorpus()
	d := BuildDendrogram(docs, vecs, 2)
	thresholds := []float64{0.1, 0.3, 0.5, 0.7, 0.82, 0.9, 0.99, 1.0}
	counts := d.ClusterCounts(thresholds)
	for i := 1; i < len(counts); i++ {
		if counts[i] < counts[i-1] {
			t.Fatalf("cluster count must grow with the threshold: %v at %v", counts, thresholds)
		}
	}
	if counts[0] != 1 {
		t.Fatalf("a near-zero threshold must merge everything: %d clusters", counts[0])
	}
	if counts[len(counts)-1] < 5 {
		t.Fatalf("a 1.0 threshold should split the kinds: %d clusters", counts[len(counts)-1])
	}
}

func TestDendrogramMergesOrdered(t *testing.T) {
	docs, vecs := dendCorpus()
	d := BuildDendrogram(docs, vecs, 1)
	ms := d.Merges()
	if len(ms) != len(docs)-1 {
		t.Fatalf("a dendrogram over n docs has n-1 merges; got %d for %d docs", len(ms), len(docs))
	}
	for i := 1; i < len(ms); i++ {
		if ms[i].Similarity > ms[i-1].Similarity {
			t.Fatal("merges must be ordered by descending similarity")
		}
	}
}

func TestDendrogramDuplicatesMergeFirst(t *testing.T) {
	docs := []string{"same text", "same text", "other words entirely"}
	_, vecs := textfeat.FitTransform(docs)
	d := BuildDendrogram(docs, vecs, 1)
	if m := d.Merges()[0]; m.Similarity != 1 || m.A != 0 || m.B != 1 {
		t.Fatalf("duplicates should merge first at similarity 1: %+v", m)
	}
	cs := d.CutAt(0.999)
	if len(cs) != 2 {
		t.Fatalf("cut just below 1 should keep duplicates together: %d clusters", len(cs))
	}
}

func TestDendrogramTrivialInputs(t *testing.T) {
	_, vecs := textfeat.FitTransform([]string{"only doc"})
	d := BuildDendrogram([]string{"only doc"}, vecs, 1)
	if len(d.Merges()) != 0 {
		t.Fatal("single doc has no merges")
	}
	if cs := d.CutAt(0.5); len(cs) != 1 || cs[0].Size() != 1 {
		t.Fatalf("single doc cut: %+v", cs)
	}
}

func TestDendrogramWorkerInvariance(t *testing.T) {
	docs, vecs := dendCorpus()
	a := BuildDendrogram(docs, vecs, 1)
	b := BuildDendrogram(docs, vecs, 8)
	if clusterFingerprint(a.CutAt(0.82)) != clusterFingerprint(b.CutAt(0.82)) {
		t.Fatal("worker count changed the dendrogram")
	}
}
