// Package cluster implements single-link agglomerative hierarchical
// clustering over sparse TF-IDF vectors — the grouping step the paper
// applies to candidate block pages (§4.1.3). Single-link clustering cut
// at a distance threshold is exactly the connected components of the
// ε-neighborhood similarity graph, which is how it is computed here
// (with union-find), after collapsing byte-identical documents.
package cluster

import (
	"sort"
	"sync"

	"geoblock/internal/textfeat"
)

// Cluster is one group of document indices (into the input slice),
// sorted ascending.
type Cluster struct {
	Members []int
}

// Size returns the number of documents in the cluster.
func (c Cluster) Size() int { return len(c.Members) }

// Options tunes the clustering.
type Options struct {
	// MinSimilarity joins two documents when cosine ≥ this (i.e. a
	// single-link distance cut at 1−MinSimilarity).
	MinSimilarity float64
	// Workers parallelizes the pairwise similarity pass (0 = serial).
	Workers int
	// MaxLengthRatio prunes pairs whose byte lengths differ by more
	// than this factor before computing cosine: near-duplicate
	// templates necessarily have similar lengths, and the prune removes
	// the bulk of origin-vs-blockpage comparisons. 0 disables.
	MaxLengthRatio float64
}

// DefaultOptions joins documents at cosine ≥ 0.82: measured across the
// template corpus, same-template renders stay above 0.84 (the variable
// fields — ray IDs, domains, country names — never dominate) while the
// closest cross-template pair (Cloudflare block vs. Cloudflare captcha,
// which share footer boilerplate) stays below 0.80. The length prune at
// 2.5× is far looser than anything cosine 0.82 admits.
func DefaultOptions() Options {
	return Options{MinSimilarity: 0.82, Workers: 8, MaxLengthRatio: 2.5}
}

// unionFind is a standard disjoint-set with path halving.
type unionFind struct {
	parent []int
	rank   []int8
}

func newUnionFind(n int) *unionFind {
	u := &unionFind{parent: make([]int, n), rank: make([]int8, n)}
	for i := range u.parent {
		u.parent[i] = i
	}
	return u
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
}

// SingleLink clusters docs (with their precomputed vectors) and returns
// clusters ordered by descending size (ties: by smallest member).
// Byte-identical documents are collapsed before the O(k²) similarity
// pass, which matters enormously for block pages: thousands of samples
// reduce to a few hundred distinct texts.
func SingleLink(docs []string, vecs []textfeat.Vector, opts Options) []Cluster {
	if len(docs) != len(vecs) {
		panic("cluster: docs and vectors length mismatch")
	}
	n := len(docs)
	uf := newUnionFind(n)

	// Collapse exact duplicates.
	rep := make(map[string]int, n)
	var distinct []int
	for i, d := range docs {
		if j, ok := rep[d]; ok {
			uf.union(i, j)
			continue
		}
		rep[d] = i
		distinct = append(distinct, i)
	}

	// ε-neighborhood graph over the distinct representatives: edges are
	// discovered in parallel, then merged. The length prune is safe for
	// near-duplicate detection (high cosine over TF-IDF implies similar
	// token volume) and removes the vast majority of candidate pairs.
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	edges := make([][][2]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for a := w; a < len(distinct); a += workers {
				ia := distinct[a]
				la := float64(len(docs[ia]))
				for b := a + 1; b < len(distinct); b++ {
					ib := distinct[b]
					if opts.MaxLengthRatio > 0 {
						lb := float64(len(docs[ib]))
						if la > lb*opts.MaxLengthRatio || lb > la*opts.MaxLengthRatio {
							continue
						}
					}
					if textfeat.Cosine(vecs[ia], vecs[ib]) >= opts.MinSimilarity {
						edges[w] = append(edges[w], [2]int{ia, ib})
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for _, es := range edges {
		for _, e := range es {
			uf.union(e[0], e[1])
		}
	}

	groups := make(map[int][]int)
	for i := 0; i < n; i++ {
		r := uf.find(i)
		groups[r] = append(groups[r], i)
	}
	out := make([]Cluster, 0, len(groups))
	for _, members := range groups {
		sort.Ints(members)
		out = append(out, Cluster{Members: members})
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Members) != len(out[j].Members) {
			return len(out[i].Members) > len(out[j].Members)
		}
		return out[i].Members[0] < out[j].Members[0]
	})
	return out
}

// Purity scores a clustering against ground-truth labels: the fraction
// of documents whose cluster's majority label matches their own. Used
// by the ablation benches to compare linkage strategies.
func Purity(clusters []Cluster, labels []string) float64 {
	if len(labels) == 0 {
		return 0
	}
	correct := 0
	for _, c := range clusters {
		counts := map[string]int{}
		for _, m := range c.Members {
			counts[labels[m]]++
		}
		best := 0
		for _, n := range counts {
			if n > best {
				best = n
			}
		}
		correct += best
	}
	return float64(correct) / float64(len(labels))
}

// CompleteLink is the ablation comparator: complete-link agglomerative
// clustering cut at the same similarity threshold (a cluster joins only
// if *all* cross-pairs are similar). Implemented naively; intended for
// modest inputs in benchmarks.
func CompleteLink(docs []string, vecs []textfeat.Vector, opts Options) []Cluster {
	n := len(docs)
	clusters := make([][]int, 0, n)
	// Seed with duplicate-collapsed singletons.
	rep := make(map[string]int, n)
	dupOf := make(map[int][]int)
	for i, d := range docs {
		if j, ok := rep[d]; ok {
			dupOf[j] = append(dupOf[j], i)
			continue
		}
		rep[d] = i
		clusters = append(clusters, []int{i})
	}

	minSim := func(a, b []int) float64 {
		lo := 1.0
		for _, i := range a {
			for _, j := range b {
				s := textfeat.Cosine(vecs[i], vecs[j])
				if s < lo {
					lo = s
				}
			}
		}
		return lo
	}

	for {
		bi, bj, best := -1, -1, opts.MinSimilarity
		for i := 0; i < len(clusters); i++ {
			for j := i + 1; j < len(clusters); j++ {
				if s := minSim(clusters[i], clusters[j]); s >= best {
					bi, bj, best = i, j, s
				}
			}
		}
		if bi < 0 {
			break
		}
		clusters[bi] = append(clusters[bi], clusters[bj]...)
		clusters = append(clusters[:bj], clusters[bj+1:]...)
	}

	out := make([]Cluster, 0, len(clusters))
	for _, members := range clusters {
		full := append([]int(nil), members...)
		for _, m := range members {
			full = append(full, dupOf[m]...)
		}
		sort.Ints(full)
		out = append(out, Cluster{Members: full})
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Members) != len(out[j].Members) {
			return len(out[i].Members) > len(out[j].Members)
		}
		return out[i].Members[0] < out[j].Members[0]
	})
	return out
}
