package cluster

import (
	"fmt"
	"testing"

	"geoblock/internal/blockpage"
	"geoblock/internal/textfeat"
)

func renderKind(k blockpage.Kind, i int) string {
	return blockpage.Render(k, blockpage.Vars{
		Domain:      fmt.Sprintf("site%d.example", i),
		ClientIP:    fmt.Sprintf("10.0.%d.%d", i%250, (i*7)%250),
		CountryName: []string{"Iran", "Syria", "Cuba", "Sudan"}[i%4],
		RayID:       fmt.Sprintf("%08x%08x", i*2654435761, i),
		Nonce:       fmt.Sprintf("%06x", i*40503),
	})
}

func TestBlockPagesClusterByKind(t *testing.T) {
	kinds := []blockpage.Kind{
		blockpage.Cloudflare, blockpage.Akamai, blockpage.CloudFront,
		blockpage.AppEngine, blockpage.Incapsula, blockpage.Nginx,
	}
	var docs []string
	var labels []string
	for _, k := range kinds {
		for i := 0; i < 12; i++ {
			docs = append(docs, renderKind(k, i))
			labels = append(labels, k.String())
		}
	}
	_, vecs := textfeat.FitTransform(docs)
	clusters := SingleLink(docs, vecs, DefaultOptions())
	// A template may split into a few clusters (the paper saw 119
	// clusters for ~16 page classes), but clusters must never mix
	// kinds, and the count must stay reviewable.
	if len(clusters) < len(kinds) || len(clusters) > 4*len(kinds) {
		t.Fatalf("got %d clusters for %d kinds", len(clusters), len(kinds))
	}
	if p := Purity(clusters, labels); p < 0.999 {
		t.Fatalf("purity = %v", p)
	}
	for ci, c := range clusters {
		seen := map[string]bool{}
		for _, m := range c.Members {
			seen[labels[m]] = true
		}
		if len(seen) != 1 {
			t.Fatalf("cluster %d mixes kinds: %v", ci, seen)
		}
	}
}

func TestIdenticalDocsSingleCluster(t *testing.T) {
	docs := []string{"same page body", "same page body", "same page body"}
	_, vecs := textfeat.FitTransform(docs)
	clusters := SingleLink(docs, vecs, DefaultOptions())
	if len(clusters) != 1 || clusters[0].Size() != 3 {
		t.Fatalf("clusters = %+v", clusters)
	}
}

func TestDissimilarDocsStayApart(t *testing.T) {
	docs := []string{
		"alpha beta gamma delta epsilon",
		"one two three four five",
		"red orange yellow green blue",
	}
	_, vecs := textfeat.FitTransform(docs)
	clusters := SingleLink(docs, vecs, DefaultOptions())
	if len(clusters) != 3 {
		t.Fatalf("got %d clusters, want 3", len(clusters))
	}
}

func TestClusterOrdering(t *testing.T) {
	docs := []string{"aa bb cc", "aa bb cc", "zz yy xx", "aa bb cc"}
	_, vecs := textfeat.FitTransform(docs)
	clusters := SingleLink(docs, vecs, DefaultOptions())
	if clusters[0].Size() != 3 || clusters[1].Size() != 1 {
		t.Fatalf("clusters not size-ordered: %+v", clusters)
	}
	// Members sorted ascending.
	m := clusters[0].Members
	for i := 1; i < len(m); i++ {
		if m[i] <= m[i-1] {
			t.Fatalf("members unsorted: %v", m)
		}
	}
}

func TestSingleLinkChaining(t *testing.T) {
	// A chains to B, B chains to C, but A and C are dissimilar —
	// single-link must merge all three (the defining property).
	docs := []string{
		"w1 w2 w3 w4 w5 w6 w7 w8",
		"w5 w6 w7 w8 w9 w10 w11 w12",
		"w9 w10 w11 w12 w13 w14 w15 w16",
	}
	_, vecs := textfeat.FitTransform(docs)
	a := textfeat.Cosine(vecs[0], vecs[1])
	c := textfeat.Cosine(vecs[0], vecs[2])
	if c >= a {
		t.Skip("corpus did not produce a chain")
	}
	clusters := SingleLink(docs, vecs, Options{MinSimilarity: a - 0.01})
	if len(clusters) != 1 {
		t.Fatalf("single-link should chain: %d clusters", len(clusters))
	}
	// Complete-link at the same threshold must NOT merge A with C.
	complete := CompleteLink(docs, vecs, Options{MinSimilarity: a - 0.01})
	if len(complete) == 1 {
		t.Fatal("complete-link should refuse the chain merge")
	}
}

func TestCompleteLinkBasics(t *testing.T) {
	docs := []string{"aa bb cc dd", "aa bb cc dd", "zz yy xx ww"}
	_, vecs := textfeat.FitTransform(docs)
	clusters := CompleteLink(docs, vecs, DefaultOptions())
	if len(clusters) != 2 {
		t.Fatalf("complete-link clusters = %d, want 2", len(clusters))
	}
	total := 0
	for _, c := range clusters {
		total += c.Size()
	}
	if total != len(docs) {
		t.Fatalf("complete-link lost documents: %d of %d", total, len(docs))
	}
}

func TestAllDocsAssignedExactlyOnce(t *testing.T) {
	var docs []string
	for i := 0; i < 50; i++ {
		docs = append(docs, renderKind(blockpage.Cloudflare, i%5))
	}
	for i := 0; i < 30; i++ {
		docs = append(docs, renderKind(blockpage.Nginx, i))
	}
	_, vecs := textfeat.FitTransform(docs)
	clusters := SingleLink(docs, vecs, DefaultOptions())
	seen := make([]bool, len(docs))
	for _, c := range clusters {
		for _, m := range c.Members {
			if seen[m] {
				t.Fatalf("doc %d in two clusters", m)
			}
			seen[m] = true
		}
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("doc %d unassigned", i)
		}
	}
}

func TestPurity(t *testing.T) {
	clusters := []Cluster{{Members: []int{0, 1, 2}}, {Members: []int{3, 4}}}
	labels := []string{"a", "a", "b", "c", "c"}
	// Cluster 1 majority "a" (2/3 correct), cluster 2 majority "c" (2/2).
	if p := Purity(clusters, labels); p != 0.8 {
		t.Fatalf("purity = %v, want 0.8", p)
	}
	if Purity(nil, nil) != 0 {
		t.Fatal("empty purity should be 0")
	}
}

func TestMismatchedInputPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SingleLink([]string{"a"}, nil, DefaultOptions())
}
