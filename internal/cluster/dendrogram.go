package cluster

import (
	"sort"
	"sync"

	"geoblock/internal/textfeat"
)

// Merge is one agglomeration step of a dendrogram: the two clusters
// containing documents A and B merge at the given cosine similarity.
// Merges are ordered from most to least similar, so walking the list
// replays the agglomerative process.
type Merge struct {
	A, B       int
	Similarity float64
}

// Dendrogram is the full single-link hierarchy over a document corpus:
// the structure the paper's semi-automated process actually explores
// before choosing a cut ("single-link hierarchical clustering, which
// does not require that we know the number of clusters beforehand",
// §4.1.3). Build one with BuildDendrogram; CutAt then yields the
// clustering for any threshold without re-running the O(n²) similarity
// pass.
type Dendrogram struct {
	n      int
	merges []Merge
	// dupOf maps a duplicate-collapsed representative to its copies.
	dupOf map[int][]int
}

// BuildDendrogram computes the single-link hierarchy. The minimum
// spanning tree of the similarity graph (Prim's algorithm, O(k²) over
// the k distinct documents) contains exactly the single-link merge
// structure: cutting all MST edges below a similarity threshold yields
// the same components as thresholding the full graph.
func BuildDendrogram(docs []string, vecs []textfeat.Vector, workers int) *Dendrogram {
	if len(docs) != len(vecs) {
		panic("cluster: docs and vectors length mismatch")
	}
	d := &Dendrogram{n: len(docs), dupOf: map[int][]int{}}

	// Collapse byte-identical documents: they merge at similarity 1.
	rep := make(map[string]int, len(docs))
	var distinct []int
	for i, doc := range docs {
		if j, ok := rep[doc]; ok {
			d.dupOf[j] = append(d.dupOf[j], i)
			d.merges = append(d.merges, Merge{A: j, B: i, Similarity: 1})
			continue
		}
		rep[doc] = i
		distinct = append(distinct, i)
	}
	k := len(distinct)
	if k <= 1 {
		sortMerges(d.merges)
		return d
	}

	// Prim's MST over the complete similarity graph (maximizing
	// similarity). bestSim[i] is the best similarity from the grown
	// tree to distinct[i]; the inner scans parallelize across workers.
	if workers < 1 {
		workers = 1
	}
	inTree := make([]bool, k)
	bestSim := make([]float64, k)
	bestFrom := make([]int, k)
	for i := range bestSim {
		bestSim[i] = -1
	}
	inTree[0] = true
	updateFrom(docs, vecs, distinct, 0, inTree, bestSim, bestFrom, workers)

	for added := 1; added < k; added++ {
		// Pick the most similar outside vertex.
		best := -1
		for i := 0; i < k; i++ {
			if !inTree[i] && (best < 0 || bestSim[i] > bestSim[best]) {
				best = i
			}
		}
		d.merges = append(d.merges, Merge{
			A:          distinct[bestFrom[best]],
			B:          distinct[best],
			Similarity: bestSim[best],
		})
		inTree[best] = true
		updateFrom(docs, vecs, distinct, best, inTree, bestSim, bestFrom, workers)
	}

	sortMerges(d.merges)
	return d
}

// updateFrom relaxes the frontier similarities after vertex src joins
// the tree.
func updateFrom(docs []string, vecs []textfeat.Vector, distinct []int, src int, inTree []bool, bestSim []float64, bestFrom []int, workers int) {
	k := len(distinct)
	vs := vecs[distinct[src]]
	if workers == 1 || k < 256 {
		for i := 0; i < k; i++ {
			if inTree[i] {
				continue
			}
			if s := textfeat.Cosine(vs, vecs[distinct[i]]); s > bestSim[i] {
				bestSim[i] = s
				bestFrom[i] = src
			}
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (k + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > k {
			hi = k
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				if inTree[i] {
					continue
				}
				if s := textfeat.Cosine(vs, vecs[distinct[i]]); s > bestSim[i] {
					bestSim[i] = s
					bestFrom[i] = src
				}
			}
		}(lo, hi)
	}
	wg.Wait()
}

func sortMerges(ms []Merge) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Similarity != ms[j].Similarity {
			return ms[i].Similarity > ms[j].Similarity
		}
		if ms[i].A != ms[j].A {
			return ms[i].A < ms[j].A
		}
		return ms[i].B < ms[j].B
	})
}

// Merges returns the agglomeration sequence, most similar first.
func (d *Dendrogram) Merges() []Merge { return d.merges }

// CutAt returns the clustering obtained by applying every merge with
// similarity ≥ minSim — identical to SingleLink at the same threshold.
func (d *Dendrogram) CutAt(minSim float64) []Cluster {
	uf := newUnionFind(d.n)
	for _, m := range d.merges {
		if m.Similarity < minSim {
			break
		}
		uf.union(m.A, m.B)
	}
	groups := make(map[int][]int)
	for i := 0; i < d.n; i++ {
		r := uf.find(i)
		groups[r] = append(groups[r], i)
	}
	out := make([]Cluster, 0, len(groups))
	for _, members := range groups {
		sort.Ints(members)
		out = append(out, Cluster{Members: members})
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Members) != len(out[j].Members) {
			return len(out[i].Members) > len(out[j].Members)
		}
		return out[i].Members[0] < out[j].Members[0]
	})
	return out
}

// ClusterCounts returns, for each threshold, the number of clusters at
// that cut — the curve an analyst inspects to pick the knee.
func (d *Dendrogram) ClusterCounts(thresholds []float64) []int {
	out := make([]int, len(thresholds))
	for i, t := range thresholds {
		out[i] = len(d.CutAt(t))
	}
	return out
}
