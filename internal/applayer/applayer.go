// Package applayer detects application-layer geographic discrimination
// — the phenomenon the paper's §7.3 calls "vital to understanding
// geographic discrimination" but leaves to future work: pages that load
// fine everywhere while quietly removing features or raising prices for
// some countries.
//
// The detector compares structural observations of the same page
// fetched from a reference country and a target country: the set of
// navigation links, region-notice markers, and the machine-readable
// price. Whole-page diffs are useless (dynamic content differs on every
// load); structural extraction is robust to it.
package applayer

import (
	"sort"
	"strconv"
	"strings"
)

// Observation is the structural summary of one page load.
type Observation struct {
	// Links is the sorted set of same-site link targets.
	Links []string
	// RegionNotices counts "not available in your region" markers.
	RegionNotices int
	// Price is the first machine-readable price on the page (NaN-free:
	// ok reports presence).
	Price    float64
	HasPrice bool
}

// Extract parses the structural features out of an HTML body.
func Extract(body string) Observation {
	var o Observation
	seen := map[string]bool{}
	for i := 0; i+6 < len(body); {
		j := strings.Index(body[i:], `href="`)
		if j < 0 {
			break
		}
		start := i + j + len(`href="`)
		end := strings.IndexByte(body[start:], '"')
		if end < 0 {
			break
		}
		target := body[start : start+end]
		i = start + end
		// Same-site navigation only.
		if !strings.HasPrefix(target, "/") || strings.HasPrefix(target, "//") {
			continue
		}
		// Asset links are not features.
		if strings.HasPrefix(target, "/assets/") || strings.HasPrefix(target, "/static/") {
			continue
		}
		if !seen[target] {
			seen[target] = true
			o.Links = append(o.Links, target)
		}
	}
	sort.Strings(o.Links)

	o.RegionNotices = strings.Count(body, `class="region-notice"`)

	if j := strings.Index(body, `data-amount="`); j >= 0 {
		start := j + len(`data-amount="`)
		if end := strings.IndexByte(body[start:], '"'); end > 0 {
			if p, err := strconv.ParseFloat(body[start:start+end], 64); err == nil {
				o.Price = p
				o.HasPrice = true
			}
		}
	}
	return o
}

// Diff is the structural difference between a reference and a target
// observation of the same page.
type Diff struct {
	// MissingLinks are present at the reference but absent at the
	// target — removed features.
	MissingLinks []string
	// NoticeAdded reports a region notice at the target only.
	NoticeAdded bool
	// PriceRatio is target/reference when both carry prices (0 when
	// either side lacks one).
	PriceRatio float64
}

// Compare diffs a target observation against the reference.
func Compare(ref, target Observation) Diff {
	var d Diff
	targetSet := map[string]bool{}
	for _, l := range target.Links {
		targetSet[l] = true
	}
	for _, l := range ref.Links {
		if !targetSet[l] {
			d.MissingLinks = append(d.MissingLinks, l)
		}
	}
	d.NoticeAdded = target.RegionNotices > ref.RegionNotices
	if ref.HasPrice && target.HasPrice && ref.Price > 0 {
		d.PriceRatio = target.Price / ref.Price
	}
	return d
}

// Discriminates reports whether the diff shows geographic
// discrimination: removed features, an added region notice, or a price
// markup beyond tolerance.
func (d Diff) Discriminates() bool {
	if len(d.MissingLinks) > 0 || d.NoticeAdded {
		return true
	}
	return d.PriceRatio > 1.02
}
