package applayer

import (
	"testing"
	"testing/quick"

	"geoblock/internal/blockpage"
	"geoblock/internal/stats"
)

func TestExtractLinksAndPrice(t *testing.T) {
	body := `<html><body>
<a href="/checkout">Checkout</a> <a href="/about">About</a>
<a href="https://other.example/x">external</a>
<a href="/assets/style.css">asset</a>
<span class="price" data-amount="000123.45">USD 123.45</span>
</body></html>`
	o := Extract(body)
	if len(o.Links) != 2 || o.Links[0] != "/about" || o.Links[1] != "/checkout" {
		t.Fatalf("links = %v", o.Links)
	}
	if !o.HasPrice || o.Price != 123.45 {
		t.Fatalf("price = %v %v", o.Price, o.HasPrice)
	}
	if o.RegionNotices != 0 {
		t.Fatal("no notices expected")
	}
}

func TestExtractNotices(t *testing.T) {
	o := Extract(`<span class="region-notice">Checkout is not available in your region.</span>`)
	if o.RegionNotices != 1 {
		t.Fatalf("notices = %d", o.RegionNotices)
	}
}

func TestCompareDetectsRemovedFeature(t *testing.T) {
	ref := Extract(`<a href="/checkout">c</a><a href="/about">a</a>`)
	target := Extract(`<a href="/about">a</a><span class="region-notice">nope</span>`)
	d := Compare(ref, target)
	if len(d.MissingLinks) != 1 || d.MissingLinks[0] != "/checkout" {
		t.Fatalf("missing = %v", d.MissingLinks)
	}
	if !d.NoticeAdded || !d.Discriminates() {
		t.Fatal("discrimination not flagged")
	}
}

func TestCompareIdenticalPages(t *testing.T) {
	o := Extract(`<a href="/checkout">c</a><span data-amount="000100.00"></span>`)
	d := Compare(o, o)
	if d.Discriminates() {
		t.Fatalf("identical pages flagged: %+v", d)
	}
	if d.PriceRatio != 1 {
		t.Fatalf("price ratio = %v", d.PriceRatio)
	}
}

func TestComparePriceMarkup(t *testing.T) {
	ref := Extract(`<span data-amount="000100.00"></span>`)
	up := Extract(`<span data-amount="000129.00"></span>`)
	d := Compare(ref, up)
	if d.PriceRatio < 1.28 || d.PriceRatio > 1.30 {
		t.Fatalf("ratio = %v", d.PriceRatio)
	}
	if !d.Discriminates() {
		t.Fatal("markup not flagged")
	}
	// Tiny fluctuations are tolerated.
	near := Extract(`<span data-amount="000100.99"></span>`)
	if Compare(ref, near).Discriminates() {
		t.Fatal("1% fluctuation should not flag")
	}
}

func TestOriginVariantsRoundTrip(t *testing.T) {
	// End to end against the real origin renderer: the restricted
	// variant must be detectable, the base variant must not.
	site := blockpage.NewOriginSite("shop.example.com", stats.NewRNG(9))
	base := Extract(site.RenderVariant(1, blockpage.PageVariant{}))
	restricted := Extract(site.RenderVariant(1, blockpage.PageVariant{Restricted: true}))
	marked := Extract(site.RenderVariant(1, blockpage.PageVariant{PriceFactor: 1.4}))

	d := Compare(base, restricted)
	if !d.Discriminates() || !d.NoticeAdded {
		t.Fatalf("restricted variant not detected: %+v", d)
	}
	found := false
	for _, l := range d.MissingLinks {
		if l == "/checkout" {
			found = true
		}
	}
	if !found {
		t.Fatalf("checkout removal not detected: %v", d.MissingLinks)
	}

	d = Compare(base, marked)
	if !d.Discriminates() || d.PriceRatio < 1.35 || d.PriceRatio > 1.45 {
		t.Fatalf("price markup not detected: %+v", d)
	}

	// Base pages from different sample seeds must NOT discriminate
	// (dynamic content varies, structure does not).
	other := Extract(site.RenderVariant(2, blockpage.PageVariant{}))
	if Compare(base, other).Discriminates() {
		t.Fatal("dynamic variation misdetected as discrimination")
	}
}

func TestVariantLengthConsistency(t *testing.T) {
	site := blockpage.NewOriginSite("len.example.com", stats.NewRNG(3))
	for _, v := range []blockpage.PageVariant{
		{}, {Restricted: true}, {PriceFactor: 1.5}, {Restricted: true, PriceFactor: 1.2},
	} {
		body := site.RenderVariant(5, v)
		if len(body) != site.VariantLength(5, v) {
			t.Fatalf("variant %+v: len %d != VariantLength %d", v, len(body), site.VariantLength(5, v))
		}
	}
	// Price factor must not change page length (fixed-width price).
	a := site.VariantLength(5, blockpage.PageVariant{})
	b := site.VariantLength(5, blockpage.PageVariant{PriceFactor: 1.6})
	if a != b {
		t.Fatal("price discrimination changed page length; the length heuristic would see it")
	}
}

func TestExtractNeverPanicsProperty(t *testing.T) {
	f := func(body string) bool {
		o := Extract(body)
		for i := 1; i < len(o.Links); i++ {
			if o.Links[i] < o.Links[i-1] {
				return false // links must stay sorted
			}
		}
		return o.RegionNotices >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestExtractMalformedHTML(t *testing.T) {
	cases := []string{
		`<a href="`,
		`href="`,
		`data-amount="`,
		`data-amount="notanumber"`,
		`<a href="/x`,
		"",
		`href="//protocol-relative.example/x"`,
	}
	for _, body := range cases {
		o := Extract(body) // must not panic
		if len(o.Links) != 0 && body != `<a href="/x` {
			t.Errorf("unexpected links from %q: %v", body, o.Links)
		}
	}
}

func TestCompareSelfNeverDiscriminates(t *testing.T) {
	f := func(body string) bool {
		o := Extract(body)
		return !Compare(o, o).Discriminates()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
