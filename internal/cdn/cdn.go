// Package cdn implements the serving side of the simulated Internet:
// for each provider the paper studies, the edge logic that decides —
// given a client's geolocated address, its header fingerprint, and the
// site owner's access rules — whether to serve the origin page, the
// provider's block page, or a challenge, with the provider's
// characteristic response headers.
//
// Everything the paper's detection pipeline keys on happens here: the
// explicit geoblock pages (Cloudflare, CloudFront, App Engine, Baidu,
// Airbnb), the ambiguous shared block/bot pages (Akamai, Incapsula),
// interactive challenges (captchas, the Cloudflare JavaScript page),
// the identifying headers used for population discovery (CF-RAY,
// X-Amz-Cf-Id, X-Iinfo, the Akamai Pragma debug headers), and the
// GeoIP noise that keeps observed blocking below 100% agreement.
package cdn

import (
	"fmt"
	"net/http"

	"geoblock/internal/blockpage"
	"geoblock/internal/geo"
	"geoblock/internal/stats"
	"geoblock/internal/worldgen"
)

// Request is one client request as the edge sees it.
type Request struct {
	Domain     *worldgen.Domain
	Host       string // host as requested (may carry a www. prefix)
	Path       string
	Method     string
	Scheme     string // "http" or "https"
	ClientIP   geo.IP
	Header     http.Header
	Clock      int64
	SampleSeed uint64 // drives per-request randomness, deterministic per sample
}

// Response is the edge's answer. Body is lazy: it is only rendered if
// called, so length-only consumers stay cheap. Page records the ground
// truth of what was served (never exposed on the wire).
type Response struct {
	Status   int
	Header   http.Header
	BodyLen  int
	Body     func() string
	Page     blockpage.Kind
	Redirect string // non-empty for 3xx, the Location value
}

// edgeGeoIPErrorPermille is the per-address probability (in 1/1000)
// that a provider's GeoIP database misplaces a residential address into
// a neighboring country — one of the paper's explanations for sub-100%
// block-page agreement (§4.2). The error is *sticky per address*: a
// GeoIP database does not flip between requests, so disagreement
// appears only when consecutive samples ride different exits.
const edgeGeoIPErrorPermille = 10

// Serve answers req according to the domain's serving chain.
func Serve(w *worldgen.World, req Request) Response {
	d := req.Domain
	rng := stats.NewRNG(stats.Mix64(req.SampleSeed) ^ hashName(d.Name))

	loc, ok := w.Geo.Locate(req.ClientIP)
	if !ok {
		loc = geo.Location{}
	}
	loc = maybeMisgeolocate(w, loc, req.ClientIP)
	countryName := w.Geo.Name(loc.Country)

	vars := blockpage.Vars{
		Domain:      d.Name,
		Path:        req.Path,
		ClientIP:    req.ClientIP.String(),
		CountryName: countryName,
		RayID:       fmt.Sprintf("%016x", rng.Uint64()),
		Nonce:       fmt.Sprintf("%08x", uint32(rng.Uint64())),
	}

	header := make(http.Header)
	for _, p := range d.Providers {
		addProviderHeaders(header, p, req, vars)
	}
	header.Set("Content-Type", "text/html; charset=utf-8")

	// Access control runs at first contact, before any redirect: a
	// blocked client never sees the redirect chain.
	if resp, denied := applyAccessControl(w, d, req, loc, vars, header, rng); denied {
		return resp
	}

	// Same-site redirect hops: http→https, then apex→www.
	if next := redirectLocation(d, req); next != "" {
		header.Set("Location", next)
		const movedBody = "<html><head><title>301 Moved Permanently</title></head><body>moved</body></html>\n"
		return page(301, header, blockpage.KindNone, func() string {
			return movedBody
		}, len(movedBody), next)
	}

	// Flaky backends intermittently serve a shared junk page
	// (maintenance interstitial, default vhost page) — 200-status
	// short-page noise for the outlier pipeline.
	if d.JunkRate > 0 && rng.Bool(d.JunkRate) {
		kinds := blockpage.JunkKinds()
		k := kinds[hashName(d.Name)%uint64(len(kinds))]
		junk := blockpage.RenderJunk(k, d.Name, vars.Nonce[:6])
		return page(200, header, blockpage.KindNone, func() string { return junk }, len(junk), "")
	}

	// Origin content — possibly an application-layer variant: the page
	// loads with a 200 everywhere, but some countries lose features or
	// see marked-up prices (§7.3).
	body := d.Origin
	variant := blockpage.PageVariant{}
	if d.AppLayer != nil {
		if d.AppLayer.RestrictedIn[loc.Country] {
			variant.Restricted = true
		}
		if f, ok := d.AppLayer.PriceMarkup[loc.Country]; ok {
			variant.PriceFactor = f
		}
	}
	n := body.VariantLength(req.SampleSeed, variant)
	return page(200, header, blockpage.KindNone, func() string {
		return body.RenderVariant(req.SampleSeed, variant)
	}, n, "")
}

func page(status int, h http.Header, kind blockpage.Kind, body func() string, n int, redirect string) Response {
	h.Set("Content-Length", fmt.Sprintf("%d", n))
	return Response{
		Status:   status,
		Header:   h,
		BodyLen:  n,
		Body:     body,
		Page:     kind,
		Redirect: redirect,
	}
}

func blockResponse(kind blockpage.Kind, vars blockpage.Vars, h http.Header) Response {
	body := blockpage.Render(kind, vars)
	return page(kind.Status(), h, kind, func() string { return body }, len(body), "")
}

// applyAccessControl walks the serving chain and returns the denial
// response if any layer refuses the request.
func applyAccessControl(w *worldgen.World, d *worldgen.Domain, req Request, loc geo.Location, vars blockpage.Vars, header http.Header, rng *stats.RNG) (Response, bool) {
	crawler := crawlerLike(req.Header)

	// Proxy-blacklist blocking fires before anything else: these
	// deployments deny the residential-proxy address lists wholesale,
	// in every country — the blocked-everywhere behaviour that defeats
	// the representative-length heuristic (Table 2) and that the
	// consistency analysis must exclude (§5.2.2).
	if d.BlocksProxies && w.Geo.IsProxyExit(req.ClientIP) {
		if d.DistilProtected {
			return blockResponse(blockpage.DistilCaptcha, vars, header), true
		}
		switch {
		case d.FrontedBy(worldgen.Akamai):
			return blockResponse(blockpage.Akamai, vars, header), true
		case d.FrontedBy(worldgen.Incapsula):
			return blockResponse(blockpage.Incapsula, vars, header), true
		case d.Hosting() == worldgen.OriginVarnish:
			return blockResponse(blockpage.Varnish, vars, header), true
		default:
			return blockResponse(blockpage.Nginx, vars, header), true
		}
	}

	for _, p := range d.Providers {
		// Platform-level App Engine block (§4.2.1): Google itself, not
		// the customer, denies sanctioned locations.
		if p == worldgen.AppEngine && d.GAEHosted && gaeBlocked(loc) {
			return blockResponse(blockpage.AppEngine, vars, header), true
		}

		if rule, ok := d.GeoRules[p]; ok && rule.Applies(loc, req.Clock) {
			switch rule.Action {
			case worldgen.ActionBlock:
				if d.Legal451 {
					// RFC 7725: the operator states the legal basis.
					return blockResponse(blockpage.Legal451, vars, header), true
				}
				return blockResponse(blockKind(p), vars, header), true
			case worldgen.ActionCaptcha:
				return blockResponse(captchaKind(d, p), vars, header), true
			case worldgen.ActionJS:
				return blockResponse(blockpage.CloudflareJS, vars, header), true
			}
		}

		// Bot defense: crawler-like fingerprints are denied with the
		// same page the provider uses for everything else — the §3.1
		// false-positive machine.
		if crawler && d.BotSensitivity > 0 && rng.Bool(d.BotSensitivity) {
			switch p {
			case worldgen.Akamai:
				return blockResponse(blockpage.Akamai, vars, header), true
			case worldgen.Incapsula:
				return blockResponse(blockpage.Incapsula, vars, header), true
			case worldgen.Cloudflare:
				return blockResponse(blockpage.CloudflareCaptcha, vars, header), true
			}
		}

		// Anonymizer challenge: Cloudflare-fronted sites challenge
		// known Tor/VPN exit addresses (the tool-vs-Tor fate sharing of
		// Khattak et al., §8); the verdict is sticky per (domain,
		// address). The challenge page carries a 403, which is why OONI
		// controls made over Tor so often look "blocked" (§7.1).
		if p == worldgen.Cloudflare && w.Geo.IsAnonymizer(req.ClientIP) {
			draw := float64(stats.Mix64(hashName(d.Name)^uint64(req.ClientIP)^0x7042)>>11) / (1 << 53)
			if draw < 0.80 {
				return blockResponse(blockpage.CloudflareCaptcha, vars, header), true
			}
		}

		// IP-reputation denial: reputation-prone Akamai/Incapsula
		// deployments deny sources from abuse-heavy address space at a
		// rate scaled by the client's country risk (and higher for
		// datacenter sources). The verdict is *sticky per (domain,
		// client address)* — blacklists do not flip between requests —
		// so a VPS revisit reproduces the block (§3.1's "genuine"
		// pairs) while residential measurements through rotating exits
		// see it intermittently. The page is the same ambiguous one the
		// provider uses for geo rules, which is why the paper needs the
		// consistency analysis of §5.2.2 to separate the two.
		if d.ReputationSensitivity > 0 && (p == worldgen.Akamai || p == worldgen.Incapsula) {
			risk := countryRiskFactor(w, loc, w.Geo.IsDatacenter(req.ClientIP))
			if w.Geo.IsAnonymizer(req.ClientIP) {
				risk = 0.88
			}
			draw := float64(stats.Mix64(hashName(d.Name)^uint64(req.ClientIP)^0x5ca1ab1e)>>11) / (1 << 53)
			if draw < d.ReputationSensitivity*risk {
				if p == worldgen.Akamai {
					return blockResponse(blockpage.Akamai, vars, header), true
				}
				return blockResponse(blockpage.Incapsula, vars, header), true
			}
		}
	}

	// Airbnb's custom application-level restriction page.
	if d.AirbnbStyle && airbnbBlocked(loc) {
		return blockResponse(blockpage.Airbnb, vars, header), true
	}

	// IP-reputation noise: heavily defended sites challenge even
	// browser-like residential clients at a low per-request rate.
	if d.ResidentialChallengeRate > 0 && rng.Bool(d.ResidentialChallengeRate) {
		if d.DistilProtected {
			return blockResponse(blockpage.DistilCaptcha, vars, header), true
		}
		if d.FrontedBy(worldgen.Cloudflare) {
			return blockResponse(blockpage.CloudflareCaptcha, vars, header), true
		}
		return blockResponse(blockpage.DistilCaptcha, vars, header), true
	}

	return Response{}, false
}

// blockKind maps a provider to its hard-block page.
func blockKind(p worldgen.Provider) blockpage.Kind {
	switch p {
	case worldgen.Cloudflare:
		return blockpage.Cloudflare
	case worldgen.Akamai:
		return blockpage.Akamai
	case worldgen.CloudFront:
		return blockpage.CloudFront
	case worldgen.AppEngine:
		return blockpage.AppEngine
	case worldgen.Incapsula:
		return blockpage.Incapsula
	case worldgen.Baidu:
		return blockpage.Baidu
	case worldgen.Soasta:
		return blockpage.Soasta
	case worldgen.OriginNginx:
		return blockpage.Nginx
	case worldgen.OriginVarnish:
		return blockpage.Varnish
	default:
		return blockpage.Nginx
	}
}

// captchaKind maps a provider (and the Distil overlay) to its
// interactive challenge page.
func captchaKind(d *worldgen.Domain, p worldgen.Provider) blockpage.Kind {
	if d.DistilProtected {
		return blockpage.DistilCaptcha
	}
	switch p {
	case worldgen.Cloudflare:
		return blockpage.CloudflareCaptcha
	case worldgen.Baidu:
		return blockpage.BaiduCaptcha
	default:
		return blockpage.DistilCaptcha
	}
}

// countryRiskFactor scales reputation-based denials by the abuse
// profile of the client's network: sanctioned countries' address space
// carries the worst reputations, high-risk countries follow, everyone
// else sees only background noise, and datacenter sources are penalized
// on top.
func countryRiskFactor(w *worldgen.World, loc geo.Location, datacenter bool) float64 {
	risk := 0.035
	switch loc.Country {
	case "IR", "SY", "SD", "CU", "KP":
		risk = 0.60
	default:
		if c, ok := w.Geo.Country(loc.Country); ok && c.HighRisk {
			risk = 0.18
		}
	}
	if datacenter {
		risk *= 1.6
		if risk > 0.95 {
			risk = 0.95
		}
	}
	return risk
}

// crawlerLike implements the bot-fingerprint heuristic the paper's
// tooling fought: merely setting User-Agent is insufficient (§3.2); a
// browser-like request carries Accept, Accept-Language and a Mozilla
// UA.
func crawlerLike(h http.Header) bool {
	if h == nil {
		return true
	}
	ua := h.Get("User-Agent")
	if ua == "" {
		return true
	}
	if h.Get("Accept") == "" || h.Get("Accept-Language") == "" {
		return true
	}
	return false
}

// redirectLocation computes the next hop of the domain's same-site
// redirect chain, or "" when content should be served.
func redirectLocation(d *worldgen.Domain, req Request) string {
	if d.RedirectLoop {
		// Pathological: bounce between two paths forever.
		if req.Path == "/a" {
			return fmt.Sprintf("%s://%s/b", req.Scheme, req.Host)
		}
		return fmt.Sprintf("%s://%s/a", req.Scheme, req.Host)
	}
	www := len(req.Host) > 4 && req.Host[:4] == "www."
	switch {
	case d.RedirectHops >= 1 && req.Scheme == "http":
		return "https://" + req.Host + req.Path
	case d.RedirectHops >= 2 && !www:
		return "https://www." + req.Host + req.Path
	}
	return ""
}

// addProviderHeaders attaches each provider's identifying headers: the
// discovery signals of §5.1.1.
func addProviderHeaders(h http.Header, p worldgen.Provider, req Request, vars blockpage.Vars) {
	switch p {
	case worldgen.Cloudflare:
		h.Set("Server", "cloudflare")
		h.Set("CF-RAY", vars.RayID[:12]+"-SIM")
	case worldgen.CloudFront:
		h.Set("Via", "1.1 "+vars.Nonce+".cloudfront.net (CloudFront)")
		h.Set("X-Amz-Cf-Id", vars.RayID+vars.Nonce)
		h.Set("X-Cache", "Miss from cloudfront")
	case worldgen.Incapsula:
		h.Set("X-Iinfo", fmt.Sprintf("9-%s 0NNN RT", vars.Nonce))
		h.Set("X-CDN", "Incapsula")
	case worldgen.Akamai:
		// Akamai identifies itself only when poked with the Pragma
		// debug header (§5.1.1).
		if wantsAkamaiDebug(req.Header) {
			h.Set("X-Cache", "TCP_MISS from a23-"+vars.Nonce[:4]+".deploy.akamaitechnologies.com (AkamaiGHost/9.5.0)")
			h.Set("X-Check-Cacheable", "YES")
			h.Set("X-Cache-Key", "/L/1234/567890/1d/origin."+vars.Domain+"/")
		}
	case worldgen.Baidu:
		h.Set("Server", "yunjiasu-nginx")
	case worldgen.Soasta:
		h.Set("X-1-Edge", "soasta-mpulse")
	case worldgen.AppEngine:
		// No identifying header: App Engine customers are discovered by
		// netblock (§5.1.1).
	case worldgen.OriginNginx:
		h.Set("Server", "nginx/1.14.0")
	case worldgen.OriginVarnish:
		h.Set("Via", "1.1 varnish")
		h.Set("X-Varnish", vars.Nonce)
	case worldgen.OriginApache:
		h.Set("Server", "Apache/2.4.29 (Ubuntu)")
	}
}

// wantsAkamaiDebug reports whether the client sent the Akamai Pragma
// debug directives.
func wantsAkamaiDebug(h http.Header) bool {
	if h == nil {
		return false
	}
	for _, v := range h.Values("Pragma") {
		if containsFold(v, "akamai-x-cache-on") || containsFold(v, "akamai-x-get-cache-key") {
			return true
		}
	}
	return false
}

func containsFold(s, sub string) bool {
	n := len(sub)
	if n == 0 {
		return true
	}
	for i := 0; i+n <= len(s); i++ {
		ok := true
		for j := 0; j < n; j++ {
			a, b := s[i+j], sub[j]
			if 'A' <= a && a <= 'Z' {
				a += 'a' - 'A'
			}
			if 'A' <= b && b <= 'Z' {
				b += 'a' - 'A'
			}
			if a != b {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// maybeMisgeolocate perturbs the edge's view of the client location for
// the sticky fraction of addresses the GeoIP database has wrong, moving
// them to an adjacent country in the table.
func maybeMisgeolocate(w *worldgen.World, loc geo.Location, ip geo.IP) geo.Location {
	if loc.Country == "" {
		return loc
	}
	h := stats.Mix64(uint64(ip) ^ 0x6e0c817)
	if h%1000 >= edgeGeoIPErrorPermille {
		return loc
	}
	cs := w.Geo.Countries()
	for i, c := range cs {
		if c.Code == loc.Country {
			j := (i + 1 + int(h>>32)%5) % len(cs)
			return geo.Location{Country: cs[j].Code}
		}
	}
	return loc
}

// gaeBlocked mirrors Google's platform policy: Cuba, Iran, Syria,
// Sudan, North Korea, Crimea.
func gaeBlocked(loc geo.Location) bool {
	switch loc.Country {
	case "CU", "IR", "SY", "SD", "KP":
		return true
	}
	return loc.Region == geo.RegionCrimea
}

// airbnbBlocked mirrors Airbnb's stated policy: Crimea, Iran, Syria,
// North Korea.
func airbnbBlocked(loc geo.Location) bool {
	switch loc.Country {
	case "IR", "SY", "KP":
		return true
	}
	return loc.Region == geo.RegionCrimea
}

func hashName(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
