package cdn

import (
	"testing"

	"geoblock/internal/blockpage"
	"geoblock/internal/geo"
	"geoblock/internal/stats"
	"geoblock/internal/worldgen"
)

// synthetic builds a bare domain with the given chain and rules,
// bypassing the generator so every branch of the edge is reachable.
func synthetic(name string, chain []worldgen.Provider, mutate func(*worldgen.Domain)) *worldgen.Domain {
	d := &worldgen.Domain{
		Name:      name,
		Rank:      1,
		TLD:       "com",
		Providers: chain,
		Origin:    blockpage.NewOriginSite(name, stats.NewRNG(1)),
		GeoRules:  map[worldgen.Provider]*worldgen.GeoRule{},
	}
	if mutate != nil {
		mutate(d)
	}
	return d
}

func serveSyn(t *testing.T, d *worldgen.Domain, cc geo.CountryCode, h map[string]string) Response {
	t.Helper()
	ip, err := testWorld.Geo.HostIP(cc, 42)
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Domain: d, Host: d.Name, Path: "/", Method: "GET", Scheme: "https",
		ClientIP: ip, Header: browserHeaders(), SampleSeed: 1}
	for k, v := range h {
		req.Header.Set(k, v)
	}
	return Serve(testWorld, req)
}

func TestBlockKindPerProvider(t *testing.T) {
	rule := func() *worldgen.GeoRule {
		return &worldgen.GeoRule{
			Action:    worldgen.ActionBlock,
			Countries: map[geo.CountryCode]bool{"CH": true},
		}
	}
	cases := []struct {
		prov worldgen.Provider
		want blockpage.Kind
	}{
		{worldgen.Cloudflare, blockpage.Cloudflare},
		{worldgen.Akamai, blockpage.Akamai},
		{worldgen.CloudFront, blockpage.CloudFront},
		{worldgen.AppEngine, blockpage.AppEngine},
		{worldgen.Incapsula, blockpage.Incapsula},
		{worldgen.Baidu, blockpage.Baidu},
		{worldgen.Soasta, blockpage.Soasta},
		{worldgen.OriginNginx, blockpage.Nginx},
		{worldgen.OriginVarnish, blockpage.Varnish},
		{worldgen.OriginApache, blockpage.Nginx}, // fallthrough default
	}
	for _, tc := range cases {
		d := synthetic("blk.example", []worldgen.Provider{tc.prov}, func(d *worldgen.Domain) {
			d.GeoRules[tc.prov] = rule()
		})
		// Switzerland is not subject to edge GeoIP confusion with any
		// sanctioned neighbor; a single serve suffices but smooth over
		// the sticky misgeo anyway by checking ground truth.
		r := serveSyn(t, d, "CH", nil)
		if r.Page != tc.want {
			t.Errorf("%s block page = %v, want %v", tc.prov, r.Page, tc.want)
		}
		if r.Status != tc.want.Status() {
			t.Errorf("%s status = %d", tc.prov, r.Status)
		}
	}
}

func TestCaptchaKindPerProvider(t *testing.T) {
	rule := func(a worldgen.Action) *worldgen.GeoRule {
		return &worldgen.GeoRule{Action: a, Countries: map[geo.CountryCode]bool{"CH": true}}
	}
	// Cloudflare captcha.
	d := synthetic("cap.example", []worldgen.Provider{worldgen.Cloudflare}, func(d *worldgen.Domain) {
		d.GeoRules[worldgen.Cloudflare] = rule(worldgen.ActionCaptcha)
	})
	if r := serveSyn(t, d, "CH", nil); r.Page != blockpage.CloudflareCaptcha {
		t.Errorf("CF captcha = %v", r.Page)
	}
	// Baidu captcha.
	d = synthetic("cap2.example", []worldgen.Provider{worldgen.Baidu}, func(d *worldgen.Domain) {
		d.GeoRules[worldgen.Baidu] = rule(worldgen.ActionCaptcha)
	})
	if r := serveSyn(t, d, "CH", nil); r.Page != blockpage.BaiduCaptcha {
		t.Errorf("Baidu captcha = %v", r.Page)
	}
	// Other providers challenge through Distil.
	d = synthetic("cap3.example", []worldgen.Provider{worldgen.Akamai}, func(d *worldgen.Domain) {
		d.GeoRules[worldgen.Akamai] = rule(worldgen.ActionCaptcha)
	})
	if r := serveSyn(t, d, "CH", nil); r.Page != blockpage.DistilCaptcha {
		t.Errorf("generic captcha = %v", r.Page)
	}
	// Distil-protected domains always use Distil's interstitial.
	d = synthetic("cap4.example", []worldgen.Provider{worldgen.Cloudflare}, func(d *worldgen.Domain) {
		d.DistilProtected = true
		d.GeoRules[worldgen.Cloudflare] = rule(worldgen.ActionCaptcha)
	})
	if r := serveSyn(t, d, "CH", nil); r.Page != blockpage.DistilCaptcha {
		t.Errorf("distil overlay = %v", r.Page)
	}
	// JS challenge.
	d = synthetic("js.example", []worldgen.Provider{worldgen.Cloudflare}, func(d *worldgen.Domain) {
		d.GeoRules[worldgen.Cloudflare] = rule(worldgen.ActionJS)
	})
	if r := serveSyn(t, d, "CH", nil); r.Page != blockpage.CloudflareJS || r.Status != 503 {
		t.Errorf("JS challenge = %v/%d", r.Page, r.Status)
	}
}

func TestProxyBlacklistKinds(t *testing.T) {
	exit, err := testWorld.Geo.ProxyExitIP("CH", 3)
	if err != nil {
		t.Fatal(err)
	}
	serve := func(d *worldgen.Domain) Response {
		return Serve(testWorld, Request{Domain: d, Host: d.Name, Path: "/", Method: "GET",
			Scheme: "https", ClientIP: exit, Header: browserHeaders(), SampleSeed: 2})
	}
	cases := []struct {
		chain  []worldgen.Provider
		distil bool
		want   blockpage.Kind
	}{
		{[]worldgen.Provider{worldgen.Akamai}, false, blockpage.Akamai},
		{[]worldgen.Provider{worldgen.Incapsula}, false, blockpage.Incapsula},
		{[]worldgen.Provider{worldgen.OriginVarnish}, false, blockpage.Varnish},
		{[]worldgen.Provider{worldgen.OriginNginx}, false, blockpage.Nginx},
		{[]worldgen.Provider{worldgen.OriginApache}, false, blockpage.Nginx},
		{[]worldgen.Provider{worldgen.Akamai}, true, blockpage.DistilCaptcha},
	}
	for _, tc := range cases {
		d := synthetic("pxy.example", tc.chain, func(d *worldgen.Domain) {
			d.BlocksProxies = true
			d.DistilProtected = tc.distil
		})
		if r := serve(d); r.Page != tc.want {
			t.Errorf("chain %v distil=%v: page = %v, want %v", tc.chain, tc.distil, r.Page, tc.want)
		}
	}
}

func TestReputationStickyPerIP(t *testing.T) {
	d := synthetic("rep.example", []worldgen.Provider{worldgen.Akamai}, func(d *worldgen.Domain) {
		d.ReputationSensitivity = 0.9
	})
	ip, _ := testWorld.Geo.HostIP("IR", 5)
	first := Serve(testWorld, Request{Domain: d, Host: d.Name, Path: "/", Method: "GET",
		Scheme: "https", ClientIP: ip, Header: browserHeaders(), SampleSeed: 0}).Page
	for seed := uint64(1); seed < 10; seed++ {
		got := Serve(testWorld, Request{Domain: d, Host: d.Name, Path: "/", Method: "GET",
			Scheme: "https", ClientIP: ip, Header: browserHeaders(), SampleSeed: seed}).Page
		if got != first {
			t.Fatalf("reputation verdict flipped between requests: %v then %v", first, got)
		}
	}
}

func TestResidentialChallengeNoise(t *testing.T) {
	d := synthetic("noise.example", []worldgen.Provider{worldgen.Cloudflare}, func(d *worldgen.Domain) {
		d.ResidentialChallengeRate = 1.0 // always challenge
	})
	r := serveSyn(t, d, "CH", nil)
	if r.Page != blockpage.CloudflareCaptcha {
		t.Fatalf("CF residential challenge = %v", r.Page)
	}
	d = synthetic("noise2.example", []worldgen.Provider{worldgen.OriginNginx}, func(d *worldgen.Domain) {
		d.ResidentialChallengeRate = 1.0
	})
	if r := serveSyn(t, d, "CH", nil); r.Page != blockpage.DistilCaptcha {
		t.Fatalf("non-CF residential challenge = %v", r.Page)
	}
}

func TestAppLayerVariantServed(t *testing.T) {
	d := synthetic("app.example", []worldgen.Provider{worldgen.OriginNginx}, func(d *worldgen.Domain) {
		d.AppLayer = &worldgen.AppLayerPolicy{
			RestrictedIn: map[geo.CountryCode]bool{"IR": true},
			PriceMarkup:  map[geo.CountryCode]float64{"BR": 1.5},
		}
	})
	restricted := serveSyn(t, d, "IR", nil)
	if restricted.Status != 200 {
		t.Fatalf("restricted variant status %d", restricted.Status)
	}
	if body := restricted.Body(); !containsFold(body, "not available in your region") {
		t.Fatal("restricted variant missing notice")
	}
	plain := serveSyn(t, d, "CH", nil)
	if body := plain.Body(); !containsFold(body, `href="/checkout"`) {
		t.Fatal("plain variant missing checkout")
	}
	if restricted.BodyLen == plain.BodyLen {
		t.Log("variant lengths equal (possible but unlikely)")
	}
}

func TestJunkPageServed(t *testing.T) {
	d := synthetic("junky.example", []worldgen.Provider{worldgen.OriginNginx}, func(d *worldgen.Domain) {
		d.JunkRate = 1.0
	})
	r := serveSyn(t, d, "CH", nil)
	if r.Status != 200 {
		t.Fatalf("junk page status %d", r.Status)
	}
	if r.BodyLen > 4000 {
		t.Fatalf("junk page suspiciously long: %d", r.BodyLen)
	}
	if len(r.Body()) != r.BodyLen {
		t.Fatal("junk Content-Length mismatch")
	}
}

func TestHeadersOnDualChain(t *testing.T) {
	d := synthetic("dual.example", []worldgen.Provider{worldgen.Incapsula, worldgen.Akamai}, nil)
	r := serveSyn(t, d, "CH", map[string]string{"Pragma": "akamai-x-cache-on"})
	if r.Header.Get("X-Iinfo") == "" {
		t.Fatal("Incapsula header missing on dual chain")
	}
	if r.Header.Get("X-Check-Cacheable") != "YES" {
		t.Fatal("Akamai debug headers missing on dual chain")
	}
}

func TestUnallocatedClientIP(t *testing.T) {
	d := synthetic("noloc.example", []worldgen.Provider{worldgen.Cloudflare}, func(d *worldgen.Domain) {
		d.GeoRules[worldgen.Cloudflare] = &worldgen.GeoRule{
			Action: worldgen.ActionBlock, Countries: map[geo.CountryCode]bool{"IR": true},
		}
	})
	// A bogon source has no location: rules must not fire.
	r := Serve(testWorld, Request{Domain: d, Host: d.Name, Path: "/", Method: "GET",
		Scheme: "https", ClientIP: 0x01000000, Header: browserHeaders(), SampleSeed: 1})
	if r.Page != blockpage.KindNone {
		t.Fatalf("bogon client blocked: %v", r.Page)
	}
}

func TestLegal451Served(t *testing.T) {
	d, ok := testWorld.Lookup("lexpublica.com")
	if !ok {
		t.Fatal("cameo missing")
	}
	crimea := testWorld.Geo.CrimeaHostIP(7)
	counts := map[blockpage.Kind]int{}
	for seed := uint64(0); seed < 9; seed++ {
		r := Serve(testWorld, Request{Domain: d, Host: d.Name, Path: "/", Method: "GET",
			Scheme: "https", ClientIP: crimea, Header: browserHeaders(), SampleSeed: seed})
		counts[r.Page]++
		if r.Page == blockpage.Legal451 && r.Status != 451 {
			t.Fatalf("451 page served with status %d", r.Status)
		}
	}
	if counts[blockpage.Legal451] < 5 {
		t.Fatalf("Crimean client should majority-see the 451 page: %v", counts)
	}
	// Mainland Ukraine gets the real page.
	ua, _ := testWorld.Geo.HostIP("UA", 7)
	r := Serve(testWorld, Request{Domain: d, Host: d.Name, Path: "/", Method: "GET",
		Scheme: "https", ClientIP: ua, Header: browserHeaders(), SampleSeed: 1})
	if r.Status == 451 {
		t.Fatal("mainland Ukraine must not see the 451")
	}
}
