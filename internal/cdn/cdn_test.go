package cdn

import (
	"net/http"
	"strings"
	"testing"

	"geoblock/internal/blockpage"
	"geoblock/internal/geo"
	"geoblock/internal/worldgen"
)

var testWorld = worldgen.Generate(worldgen.TestConfig())

func browserHeaders() http.Header {
	h := make(http.Header)
	h.Set("User-Agent", "Mozilla/5.0 (Macintosh; Intel Mac OS X 10.13; rv:61.0) Gecko/20100101 Firefox/61.0")
	h.Set("Accept", "text/html,application/xhtml+xml")
	h.Set("Accept-Language", "en-US,en;q=0.5")
	return h
}

func crawlerHeaders() http.Header {
	h := make(http.Header)
	h.Set("User-Agent", "Mozilla/5.0 zgrab/0.x")
	return h
}

func reqFor(t *testing.T, name string, cc geo.CountryCode, h http.Header, seed uint64) Request {
	t.Helper()
	d, ok := testWorld.Lookup(name)
	if !ok {
		t.Fatalf("domain %s not found", name)
	}
	ip, err := testWorld.Geo.HostIP(cc, 42)
	if err != nil {
		t.Fatal(err)
	}
	return Request{
		Domain: d, Host: name, Path: "/", Method: "GET", Scheme: "https",
		ClientIP: ip, Header: h, Clock: 0, SampleSeed: seed,
	}
}

// serveStable calls Serve with several seeds and returns the majority
// outcome, smoothing over the injected GeoIP error noise.
func serveStable(t *testing.T, name string, cc geo.CountryCode, h http.Header) Response {
	t.Helper()
	counts := map[blockpage.Kind]int{}
	var last Response
	responses := map[blockpage.Kind]Response{}
	for seed := uint64(0); seed < 9; seed++ {
		r := Serve(testWorld, reqFor(t, name, cc, h, seed))
		counts[r.Page]++
		responses[r.Page] = r
		last = r
	}
	best, n := last.Page, 0
	for k, c := range counts {
		if c > n {
			best, n = k, c
		}
	}
	return responses[best]
}

func TestOriginServed(t *testing.T) {
	d := testWorld.Top10K()[0]
	// Find a domain with no rules at all.
	for _, cand := range testWorld.Top10K() {
		if len(cand.GeoRules) == 0 && !cand.AirbnbStyle && !cand.GAEHosted &&
			cand.ResidentialChallengeRate == 0 && !cand.Unreachable && cand.RedirectHops == 0 && !cand.RedirectLoop {
			d = cand
			break
		}
	}
	r := serveStable(t, d.Name, "US", browserHeaders())
	if r.Status != 200 || r.Page != blockpage.KindNone {
		t.Fatalf("plain domain %s served %d/%v", d.Name, r.Status, r.Page)
	}
	body := r.Body()
	if len(body) != r.BodyLen {
		t.Fatalf("BodyLen %d != len(body) %d", r.BodyLen, len(body))
	}
	if !strings.Contains(body, d.Name) {
		t.Fatal("origin page should carry the domain name")
	}
}

func TestAppEnginePlatformBlock(t *testing.T) {
	var gae *worldgen.Domain
	for _, d := range testWorld.Top10K() {
		if d.GAEHosted && len(d.Providers) == 1 && d.Providers[0] == worldgen.AppEngine {
			gae = d
			break
		}
	}
	if gae == nil {
		t.Skip("no GAE-hosted domain at this scale")
	}
	r := serveStable(t, gae.Name, "IR", browserHeaders())
	if r.Page != blockpage.AppEngine || r.Status != 403 {
		t.Fatalf("GAE in Iran: %v/%d", r.Page, r.Status)
	}
	if !blockpage.Matches(blockpage.AppEngine, r.Body()) {
		t.Fatal("body is not the AppEngine page")
	}
	r = serveStable(t, gae.Name, "DE", browserHeaders())
	if r.Page != blockpage.KindNone {
		t.Fatalf("GAE in Germany should serve content, got %v", r.Page)
	}
}

func TestCloudflareGeoblock(t *testing.T) {
	var d *worldgen.Domain
	var cc geo.CountryCode
	for _, cand := range testWorld.Top10K() {
		if rule, ok := cand.GeoRules[worldgen.Cloudflare]; ok && rule.Action == worldgen.ActionBlock {
			d = cand
			cc = rule.CountryList()[0]
			break
		}
	}
	if d == nil {
		t.Skip("no Cloudflare geoblocker at this scale")
	}
	if !countryMeasurable(cc) {
		t.Skipf("blocked country %s not measurable", cc)
	}
	r := serveStable(t, d.Name, cc, browserHeaders())
	if r.Page != blockpage.Cloudflare {
		t.Fatalf("expected Cloudflare block in %s, got %v", cc, r.Page)
	}
	body := r.Body()
	if !strings.Contains(body, testWorld.Geo.Name(geo.CountryCode(cc))) {
		t.Fatalf("Cloudflare page should name the blocked country %s", cc)
	}
	if r.Header.Get("CF-RAY") == "" || r.Header.Get("Server") != "cloudflare" {
		t.Fatal("Cloudflare headers missing on block page")
	}
}

func countryMeasurable(cc geo.CountryCode) bool {
	for _, m := range testWorld.Geo.Measurable() {
		if m == cc {
			return true
		}
	}
	return false
}

func TestAkamaiBotDefense(t *testing.T) {
	// Bot-sensitive deployments are rare at default calibration; build
	// a small world where they are common.
	cfg := worldgen.TestConfig()
	cfg.Scale = 0.05
	cfg.AkamaiBotSensitivityRate = 0.6
	botWorld := worldgen.Generate(cfg)
	var d *worldgen.Domain
	for _, cand := range botWorld.Top10K() {
		if cand.FrontedBy(worldgen.Akamai) && cand.BotSensitivity > 0.8 && len(cand.GeoRules) == 0 && !cand.AirbnbStyle {
			d = cand
			break
		}
	}
	if d == nil {
		t.Fatal("no bot-sensitive Akamai domain even at elevated rate")
	}
	ip, _ := botWorld.Geo.HostIP("US", 42)
	serve := func(h http.Header) map[blockpage.Kind]int {
		counts := map[blockpage.Kind]int{}
		for seed := uint64(0); seed < 9; seed++ {
			r := Serve(botWorld, Request{Domain: d, Host: d.Name, Path: "/", Method: "GET",
				Scheme: "https", ClientIP: ip, Header: h, SampleSeed: seed})
			counts[r.Page]++
		}
		return counts
	}
	if c := serve(crawlerHeaders()); c[blockpage.Akamai] < 5 {
		t.Fatalf("crawler against bot-sensitive Akamai: %v", c)
	}
	if c := serve(browserHeaders()); c[blockpage.KindNone] < 5 {
		t.Fatalf("browser against same domain should pass: %v", c)
	}
}

func TestAkamaiPragmaDebugHeaders(t *testing.T) {
	var d *worldgen.Domain
	for _, cand := range testWorld.Top10K() {
		if len(cand.Providers) == 1 && cand.Providers[0] == worldgen.Akamai && cand.BotSensitivity < 0.5 {
			d = cand
			break
		}
	}
	if d == nil {
		t.Skip("no Akamai domain at this scale")
	}
	h := browserHeaders()
	r := Serve(testWorld, reqFor(t, d.Name, "US", h, 1))
	if r.Header.Get("X-Check-Cacheable") != "" {
		t.Fatal("Akamai debug headers must not appear without Pragma")
	}
	h.Set("Pragma", "akamai-x-cache-on, akamai-x-get-cache-key")
	r = Serve(testWorld, reqFor(t, d.Name, "US", h, 1))
	if r.Header.Get("X-Check-Cacheable") != "YES" || !strings.Contains(r.Header.Get("X-Cache"), "akamaitechnologies.com") {
		t.Fatal("Akamai debug headers missing with Pragma")
	}
}

func TestProviderHeaderSignatures(t *testing.T) {
	cases := []struct {
		prov   worldgen.Provider
		header string
	}{
		{worldgen.Cloudflare, "CF-RAY"},
		{worldgen.CloudFront, "X-Amz-Cf-Id"},
		{worldgen.Incapsula, "X-Iinfo"},
	}
	for _, tc := range cases {
		found := false
		for _, d := range testWorld.Top10K() {
			if len(d.Providers) == 1 && d.Providers[0] == tc.prov {
				r := Serve(testWorld, reqFor(t, d.Name, "CH", browserHeaders(), 3))
				if r.Header.Get(tc.header) == "" {
					t.Errorf("%s response missing %s", tc.prov, tc.header)
				}
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no %s domain found", tc.prov)
		}
	}
}

func TestMakroFlip(t *testing.T) {
	d, _ := testWorld.Lookup("makro.co.za")
	rule := d.GeoRules[worldgen.CloudFront]
	cc := rule.CountryList()[0]
	if !countryMeasurable(cc) {
		for _, c := range rule.CountryList() {
			if countryMeasurable(c) {
				cc = c
				break
			}
		}
	}
	ip, _ := testWorld.Geo.HostIP(cc, 9)
	req := Request{Domain: d, Host: d.Name, Path: "/", Method: "GET", Scheme: "https",
		ClientIP: ip, Header: browserHeaders(), Clock: 0, SampleSeed: 5}
	if r := Serve(testWorld, req); r.Page != blockpage.CloudFront {
		t.Fatalf("makro at clock 0 in %s: %v", cc, r.Page)
	}
	req.Clock = 1
	if r := Serve(testWorld, req); r.Page == blockpage.CloudFront {
		t.Fatal("makro should have lifted its rule at clock 1")
	}
}

func TestCrimeaGranularity(t *testing.T) {
	d, _ := testWorld.Lookup("geniusdisplay.com")
	crimea := testWorld.Geo.CrimeaHostIP(5)
	req := Request{Domain: d, Host: d.Name, Path: "/", Method: "GET", Scheme: "https",
		ClientIP: crimea, Header: browserHeaders(), Clock: 0, SampleSeed: 2}
	counts := map[blockpage.Kind]int{}
	for seed := uint64(0); seed < 9; seed++ {
		req.SampleSeed = seed
		counts[Serve(testWorld, req).Page]++
	}
	if counts[blockpage.AppEngine] < 5 {
		t.Fatalf("Crimean client should majority-see the AppEngine page: %v", counts)
	}
	// Mainland Ukraine sees content (nginx rule is Russia-only).
	r := serveStable(t, d.Name, "UA", browserHeaders())
	if r.Page != blockpage.KindNone {
		t.Fatalf("mainland Ukraine should see content, got %v", r.Page)
	}
	// Russia sees the nginx 403.
	r = serveStable(t, d.Name, "RU", browserHeaders())
	if r.Page != blockpage.Nginx {
		t.Fatalf("Russia should see the nginx page, got %v", r.Page)
	}
}

func TestRedirectChain(t *testing.T) {
	var d *worldgen.Domain
	for _, cand := range testWorld.Top10K() {
		if cand.RedirectHops == 2 && len(cand.GeoRules) == 0 && !cand.GAEHosted && !cand.AirbnbStyle {
			d = cand
			break
		}
	}
	if d == nil {
		t.Skip("no 2-hop domain at this scale")
	}
	ip, _ := testWorld.Geo.HostIP("US", 3)
	req := Request{Domain: d, Host: d.Name, Path: "/", Method: "GET", Scheme: "http",
		ClientIP: ip, Header: browserHeaders(), SampleSeed: 4}
	r := Serve(testWorld, req)
	if r.Status != 301 || r.Redirect != "https://"+d.Name+"/" {
		t.Fatalf("hop 1: %d -> %q", r.Status, r.Redirect)
	}
	req.Scheme = "https"
	r = Serve(testWorld, req)
	if r.Status != 301 || r.Redirect != "https://www."+d.Name+"/" {
		t.Fatalf("hop 2: %d -> %q", r.Status, r.Redirect)
	}
	req.Host = "www." + d.Name
	r = Serve(testWorld, req)
	if r.Status != 200 {
		t.Fatalf("final hop: %d", r.Status)
	}
}

func TestRedirectLoop(t *testing.T) {
	var d *worldgen.Domain
	for _, cand := range testWorld.Top10K() {
		if cand.RedirectLoop {
			d = cand
			break
		}
	}
	if d == nil {
		t.Skip("no redirect-loop domain at this scale")
	}
	ip, _ := testWorld.Geo.HostIP("US", 3)
	req := Request{Domain: d, Host: d.Name, Path: "/a", Method: "GET", Scheme: "https",
		ClientIP: ip, Header: browserHeaders(), SampleSeed: 4}
	r := Serve(testWorld, req)
	if r.Status != 301 || !strings.HasSuffix(r.Redirect, "/b") {
		t.Fatalf("loop hop: %d -> %q", r.Status, r.Redirect)
	}
}

func TestBlockBeatsRedirect(t *testing.T) {
	// A geoblocked client must get the block page on first contact,
	// even for domains with redirect chains.
	var d *worldgen.Domain
	var cc geo.CountryCode
	for _, cand := range testWorld.Top10K() {
		if rule, ok := cand.GeoRules[worldgen.Cloudflare]; ok && rule.Action == worldgen.ActionBlock && cand.RedirectHops > 0 {
			for _, c := range rule.CountryList() {
				if countryMeasurable(c) {
					d, cc = cand, c
					break
				}
			}
			if d != nil {
				break
			}
		}
	}
	if d == nil {
		t.Skip("no redirecting geoblocker at this scale")
	}
	ip, _ := testWorld.Geo.HostIP(cc, 7)
	req := Request{Domain: d, Host: d.Name, Path: "/", Method: "GET", Scheme: "http",
		ClientIP: ip, Header: browserHeaders(), SampleSeed: 11}
	counts := map[blockpage.Kind]int{}
	for seed := uint64(0); seed < 9; seed++ {
		req.SampleSeed = seed
		counts[Serve(testWorld, req).Page]++
	}
	if counts[blockpage.Cloudflare] < 5 {
		t.Fatalf("block should fire before redirect: %v", counts)
	}
}

func TestDeterministicResponses(t *testing.T) {
	d := testWorld.Top10K()[10]
	req := reqFor(t, d.Name, "FR", browserHeaders(), 99)
	a := Serve(testWorld, req)
	b := Serve(testWorld, req)
	if a.Status != b.Status || a.BodyLen != b.BodyLen || a.Page != b.Page {
		t.Fatal("same request must produce identical responses")
	}
	if a.Body() != b.Body() {
		t.Fatal("bodies differ across identical requests")
	}
}

func TestCrawlerLike(t *testing.T) {
	if !crawlerLike(nil) || !crawlerLike(make(http.Header)) {
		t.Fatal("empty headers are crawler-like")
	}
	if !crawlerLike(crawlerHeaders()) {
		t.Fatal("UA-only is still crawler-like (§3.2)")
	}
	if crawlerLike(browserHeaders()) {
		t.Fatal("full browser headers must not be crawler-like")
	}
}

func TestGeoIPErrorRateBounded(t *testing.T) {
	// Over many seeds, a blocked (domain, country) pair should see its
	// block page in well over 80% of samples (Figure 4).
	var d *worldgen.Domain
	for _, cand := range testWorld.Top10K() {
		if cand.GAEHosted && len(cand.Providers) == 1 && cand.Providers[0] == worldgen.AppEngine {
			d = cand
			break
		}
	}
	if d == nil {
		t.Skip("no GAE domain")
	}
	ip, _ := testWorld.Geo.HostIP("SY", 21)
	blocked := 0
	const n = 200
	for seed := uint64(0); seed < n; seed++ {
		r := Serve(testWorld, Request{Domain: d, Host: d.Name, Path: "/", Method: "GET",
			Scheme: "https", ClientIP: ip, Header: browserHeaders(), SampleSeed: seed})
		if r.Page == blockpage.AppEngine {
			blocked++
		}
	}
	rate := float64(blocked) / n
	if rate < 0.9 || rate > 1.0 {
		t.Fatalf("block rate %.2f; GeoIP noise should be small", rate)
	}
	if blocked == n {
		t.Log("no GeoIP flips in this window (acceptable)")
	}
}

func TestProxyBlacklistBlockedEverywhere(t *testing.T) {
	// A BlocksProxies domain denies proxy-exit addresses in every
	// country, but serves real clients normally.
	var d *worldgen.Domain
	for _, cand := range testWorld.Top10K() {
		if cand.BlocksProxies && cand.FrontedBy(worldgen.Akamai) && !cand.Unreachable && len(cand.CensoredIn) == 0 {
			d = cand
			break
		}
	}
	if d == nil {
		cfg := worldgen.TestConfig()
		cfg.Scale = 0.05
		cfg.ProxyBlockAkamai = 0.5
		w := worldgen.Generate(cfg)
		for _, cand := range w.Top10K() {
			if cand.BlocksProxies && cand.FrontedBy(worldgen.Akamai) && !cand.Unreachable && len(cand.CensoredIn) == 0 {
				d = cand
				break
			}
		}
		if d == nil {
			t.Fatal("no proxy-blocking Akamai domain even at elevated rate")
		}
		for _, cc := range []geo.CountryCode{"US", "DE", "IR", "JP"} {
			exitIP, err := w.Geo.ProxyExitIP(cc, 9)
			if err != nil {
				t.Fatal(err)
			}
			r := Serve(w, Request{Domain: d, Host: d.Name, Path: "/", Method: "GET",
				Scheme: "https", ClientIP: exitIP, Header: browserHeaders(), SampleSeed: 3})
			if r.Page != blockpage.Akamai {
				t.Fatalf("proxy exit in %s got %v, want the Akamai page", cc, r.Page)
			}
			hostIP, _ := w.Geo.HostIP(cc, 9)
			r = Serve(w, Request{Domain: d, Host: d.Name, Path: "/", Method: "GET",
				Scheme: "https", ClientIP: hostIP, Header: browserHeaders(), SampleSeed: 3})
			if r.Page == blockpage.Akamai && len(d.GeoRules) == 0 {
				t.Fatalf("ordinary resident in %s hit the proxy blacklist", cc)
			}
		}
		return
	}
	for _, cc := range []geo.CountryCode{"US", "DE", "IR", "JP"} {
		exitIP, err := testWorld.Geo.ProxyExitIP(cc, 9)
		if err != nil {
			t.Fatal(err)
		}
		r := Serve(testWorld, Request{Domain: d, Host: d.Name, Path: "/", Method: "GET",
			Scheme: "https", ClientIP: exitIP, Header: browserHeaders(), SampleSeed: 3})
		if r.Page != blockpage.Akamai {
			t.Fatalf("proxy exit in %s got %v, want the Akamai page", cc, r.Page)
		}
	}
}

func TestAnonymizerChallengedByCloudflare(t *testing.T) {
	// Cloudflare-fronted domains challenge Tor/VPN exit addresses.
	var d *worldgen.Domain
	for _, cand := range testWorld.Top10K() {
		if len(cand.Providers) == 1 && cand.Providers[0] == worldgen.Cloudflare &&
			len(cand.GeoRules) == 0 && !cand.Unreachable && len(cand.CensoredIn) == 0 {
			d = cand
			break
		}
	}
	if d == nil {
		t.Skip("no plain Cloudflare domain")
	}
	var tor geo.IP
	for n := uint64(0); ; n++ {
		ip, err := testWorld.Geo.DatacenterIP("US", n)
		if err != nil {
			t.Fatal(err)
		}
		if testWorld.Geo.IsAnonymizer(ip) {
			tor = ip
			break
		}
	}
	challenged := 0
	const trials = 12
	for seed := uint64(0); seed < trials; seed++ {
		r := Serve(testWorld, Request{Domain: d, Host: d.Name, Path: "/", Method: "GET",
			Scheme: "https", ClientIP: tor, Header: browserHeaders(), SampleSeed: seed})
		if r.Page == blockpage.CloudflareCaptcha {
			challenged++
		}
	}
	// The verdict is sticky per (domain, IP): all or nothing.
	if challenged != 0 && challenged != trials {
		t.Fatalf("anonymizer verdict not sticky: %d of %d challenged", challenged, trials)
	}
}
