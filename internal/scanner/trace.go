// Trace wiring for the engine: deterministic span-context derivation
// shared by the in-process scheduler and the fabric, plus the common
// end-of-scan event tail.
//
// The derivations here are the distributed half of the determinism
// story: a coordinator resolves the scan context once (ScanTraceCtx),
// ships it in the PhaseSpec, and every worker derives the identical
// per-unit contexts (UnitTraceCtx) from it — so a unit's events carry
// the same IDs no matter which process executed it.
package scanner

import (
	"strconv"

	"geoblock/internal/trace"
)

// ScanTraceCtx resolves the scan-level trace context for a config:
// the explicitly propagated TraceCtx when set (the fabric worker
// path), otherwise a child of the tracer's root named after the phase
// (the in-process path). Zero — tracing off — when neither is set.
func ScanTraceCtx(cfg Config) trace.SpanCtx {
	if cfg.TraceCtx.Valid() {
		return cfg.TraceCtx
	}
	return cfg.Trace.Root().Child("scan/"+cfg.Phase, 0)
}

// UnitTraceCtx derives a work unit's span context from the scan
// context and the unit's canonical sequence number.
func UnitTraceCtx(scanCtx trace.SpanCtx, seq int) trace.SpanCtx {
	return scanCtx.Child("unit", seq)
}

// unitBuffer opens the staging buffer for one shard's events, nil when
// tracing is off — the engine's hot path then pays one nil test per
// instrumentation site.
func unitBuffer(scanCtx trace.SpanCtx, seq int, cfg Config) *trace.Buffer {
	if !scanCtx.Valid() {
		return nil
	}
	return trace.NewBuffer(UnitTraceCtx(scanCtx, seq), scanCtx.Span, cfg.TraceWall)
}

// closeUnit records the shard's closing "unit" event: one wide record
// carrying the unit's coordinates, fate, and wall duration.
func closeUnit(tb *trace.Buffer, sh *shard, cfg Config, country string, samples int, wallStart int64) {
	if tb == nil {
		return
	}
	ev := trace.NewEvent(tb.Ctx(), "unit")
	ev.Parent = tb.Parent()
	ev.Unit = sh.seq
	ev.Country = country
	ev.Phase = cfg.Phase
	if sh.lost == OutageNone {
		ev.Outcome = "ok"
	} else {
		ev.Outcome = sh.lost.String()
	}
	ev.WallNS = wallStart
	ev.WallDurNS = tb.Wall() - wallStart
	ev.Attrs = []trace.Attr{
		{K: "tasks", V: strconv.Itoa(len(sh.tasks))},
		{K: "samples", V: strconv.Itoa(samples)},
		{K: "slot", V: strconv.FormatUint(sh.slot, 16)},
	}
	tb.Record(ev)
}

// recordFetch records one sample's "fetch" event. k is the sample's
// ordinal within the unit (task-major), which keys the span ID.
func recordFetch(tb *trace.Buffer, sh *shard, cfg Config, country, domain string, k int, s Sample, wallStart int64) {
	ev := trace.NewEvent(tb.Ctx().Child("fetch", k), "fetch")
	ev.Unit = sh.seq
	ev.Country = country
	ev.Phase = cfg.Phase
	ev.Outcome = s.Err.String()
	ev.WallNS = wallStart
	ev.WallDurNS = tb.Wall() - wallStart
	ev.Attrs = []trace.Attr{
		{K: "domain", V: domain},
		{K: "status", V: strconv.Itoa(int(s.Status))},
		{K: "attempt", V: strconv.Itoa(int(s.Attempt))},
	}
	tb.Record(ev)
}

// recordScanTail emits the end-of-scan events every composition shares
// — Run's tail and Assembly.Finish both land here so the merged
// streams agree byte-for-byte. One "outage" event per degraded
// country (each also firing the flight recorder), then the closing
// "scan" event.
func recordScanTail(tr *trace.Tracer, scanCtx trace.SpanCtx, phase string, outages []Outage, shards int) {
	if tr == nil || !scanCtx.Valid() {
		return
	}
	virt, wall := tr.Now()
	for i, o := range outages {
		ev := trace.NewEvent(scanCtx.Child("outage", i), "outage")
		ev.Parent = scanCtx.Span
		ev.Phase = phase
		ev.Country = string(o.Country)
		ev.Outcome = o.Reason.String()
		ev.VirtNS = virt
		ev.WallNS = wall
		ev.Attrs = []trace.Attr{
			{K: "shards_lost", V: strconv.Itoa(o.Shards)},
			{K: "shards_total", V: strconv.Itoa(o.ShardsTotal)},
			{K: "tasks_lost", V: strconv.Itoa(o.Tasks)},
		}
		tr.Record(ev)
		tr.Trigger("outage: " + string(o.Country) + " " + o.Reason.String())
	}
	ev := trace.NewEvent(scanCtx, "scan")
	ev.Phase = phase
	if len(outages) == 0 {
		ev.Outcome = "ok"
	} else {
		ev.Outcome = "degraded"
	}
	ev.VirtNS = virt
	ev.WallNS = wall
	ev.Attrs = []trace.Attr{
		{K: "shards", V: strconv.Itoa(shards)},
		{K: "outages", V: strconv.Itoa(len(outages))},
	}
	tr.Record(ev)
}
