// The plan layer: explicit, serializable work units over the
// deterministic shard construction, plus an Assembly that folds
// out-of-order unit completions back into the engine's canonical-order
// output stream.
//
// scanner.Run is the single-process composition of these pieces; the
// distributed fabric (internal/fabric) is the multi-process one. Both
// produce byte-identical output because they share the shard
// boundaries, the sticky-session slots, the reorder frontier, and the
// outage accounting — a unit executes identically no matter which
// process runs it, or how many times.
package scanner

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"geoblock/internal/geo"
	"geoblock/internal/proxy"
	"geoblock/internal/stats"
	"geoblock/internal/telemetry"
	"geoblock/internal/trace"
)

// WorkUnit is the leasable coordinate of one scheduler shard: which
// country chunk it is, where it sits in canonical order, and a
// fingerprint binding it to the exact tasks and sampling parameters it
// was built from. The unit deliberately carries no task payload — every
// party rebuilds the same Plan from the same inputs, and the
// fingerprint proves they agree before any work is leased.
type WorkUnit struct {
	Seq     int    `json:"seq"`
	Country string `json:"country"`
	Phase   string `json:"phase"`
	// Index is the chunk index within the country.
	Index int `json:"index"`
	// Slot is the sticky-session slot, a pure function of
	// (country, phase, index).
	Slot uint64 `json:"slot"`
	// Tasks is the unit's task count.
	Tasks int `json:"tasks"`
	// Fingerprint digests the unit's identity: country, phase, chunk,
	// slot, sampling parameters, and every task's domain string.
	Fingerprint uint64 `json:"fingerprint"`
}

// UnitResult is one executed unit: the shard's samples in task order,
// its loss reason, and the full snapshot of the metrics its session
// and fetch work staged (nil when the plan carries no registry and the
// executor was asked not to stage).
type UnitResult struct {
	Samples []Sample
	Lost    OutageReason
	Metrics *telemetry.Snapshot
	// Trace holds the unit's staged wide events when tracing was on —
	// shipped back in fabric completions and appended at the assembly's
	// canonical emission point, same as an in-process shard's.
	Trace []trace.Event
}

// Plan is the deterministic decomposition of one scan into work units.
// Two plans built from the same (domains, countries, tasks, cfg) are
// identical — same shard boundaries, same slots, same fingerprints —
// which is what lets a coordinator and its workers each build their own
// copy and agree unit-by-unit.
type Plan struct {
	domains   []string
	countries []geo.CountryCode
	cfg       Config
	pol       RetryPolicy
	shards    []*shard
}

// buildCountryShards is the shared shard construction: country-major
// grouping, deterministic chunking, and per-chunk session slots. Run
// and NewPlan must stay on this one code path — the shard set is the
// determinism anchor.
func buildCountryShards(countries []geo.CountryCode, tasks []Task, cfg Config) []*shard {
	byCountry := make([][]Task, len(countries))
	for _, t := range tasks {
		byCountry[t.Country] = append(byCountry[t.Country], t)
	}
	return buildShards(byCountry, cfg.ShardSize, func(group int16, index int) uint64 {
		return shardSlot(string(countries[group]), cfg.Phase, index)
	})
}

// NewPlan decomposes one scan into its canonical work units. cfg is
// normalized exactly as Run normalizes it, so a Plan built from a wire
// config and one built in-process agree.
func NewPlan(domains []string, countries []geo.CountryCode, tasks []Task, cfg Config) *Plan {
	cfg = cfg.withDefaults()
	return &Plan{
		domains:   domains,
		countries: countries,
		cfg:       cfg,
		pol:       cfg.retryPolicy(),
		shards:    buildCountryShards(countries, tasks, cfg),
	}
}

// NumUnits returns the number of work units in the plan.
func (p *Plan) NumUnits() int { return len(p.shards) }

// Unit returns the seq-th work unit.
func (p *Plan) Unit(seq int) WorkUnit {
	sh := p.shards[seq]
	return WorkUnit{
		Seq:         sh.seq,
		Country:     string(p.countries[sh.group]),
		Phase:       p.cfg.Phase,
		Index:       sh.index,
		Slot:        sh.slot,
		Tasks:       len(sh.tasks),
		Fingerprint: p.unitFingerprint(sh),
	}
}

// Units materializes every work unit in canonical order.
func (p *Plan) Units() []WorkUnit {
	out := make([]WorkUnit, len(p.shards))
	for i := range p.shards {
		out[i] = p.Unit(i)
	}
	return out
}

// unitFingerprint digests one shard's identity, folding in the task
// contents (domain strings and country indices) and the sampling
// parameters that shape its output.
func (p *Plan) unitFingerprint(sh *shard) uint64 {
	h := hash("geoblock-unit")
	h = stats.Mix64(h ^ hash(string(p.countries[sh.group])))
	h = stats.Mix64(h ^ hash(p.cfg.Phase))
	h = stats.Mix64(h ^ uint64(sh.index)<<1 ^ sh.slot)
	h = stats.Mix64(h ^ uint64(p.cfg.Samples)<<8 ^ uint64(p.cfg.Retries)<<16)
	for _, t := range sh.tasks {
		h = stats.Mix64(h ^ hash(p.domains[t.Domain]) ^ uint64(uint16(t.Country))<<32)
	}
	return h
}

// Fingerprint digests the whole plan: every unit fingerprint plus the
// wire-visible config knobs (never Concurrency — that is free to vary).
// A coordinator and a worker whose plan fingerprints agree will agree
// on every unit.
func (p *Plan) Fingerprint() uint64 {
	h := hash("geoblock-plan")
	h = stats.Mix64(h ^ uint64(len(p.domains)) ^ uint64(len(p.countries))<<20)
	h = stats.Mix64(h ^ uint64(p.cfg.ShardSize) ^ uint64(p.cfg.RequestsPerExit)<<16 ^ uint64(p.cfg.MaxRedirects)<<32)
	h = stats.Mix64(h ^ uint64(p.cfg.Bodies)<<4)
	if p.cfg.VerifyConnectivity {
		h = stats.Mix64(h ^ 1)
	}
	keys := make([]string, 0, len(p.cfg.Headers))
	for k := range p.cfg.Headers {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		h = stats.Mix64(h ^ hash(k) ^ hash(p.cfg.Headers[k])<<1)
	}
	for _, sh := range p.shards {
		h = stats.Mix64(h ^ p.unitFingerprint(sh))
	}
	return h
}

// ExecuteUnit runs one unit through the session and fetcher layers
// against net, staging its metrics in a fresh shard-local registry.
// Execution never mutates the plan, so a unit can run any number of
// times (a re-issued lease after a worker death, say) with identical
// results. A cancelled context returns ctx.Err() and no result — a
// partial shard must never be reported as complete.
func (p *Plan) ExecuteUnit(ctx context.Context, net *proxy.Network, seq int) (UnitResult, error) {
	if seq < 0 || seq >= len(p.shards) {
		return UnitResult{}, fmt.Errorf("scanner: unit %d outside plan of %d units", seq, len(p.shards))
	}
	src := p.shards[seq]
	sh := &shard{seq: src.seq, group: src.group, index: src.index, slot: src.slot, tasks: src.tasks}
	staging := telemetry.NewWithClock(p.cfg.Metrics.Clock())
	scfg := p.cfg
	scfg.Metrics = staging
	tb := unitBuffer(ScanTraceCtx(p.cfg), seq, p.cfg)
	out := scanShard(ctx, net, p.domains, p.countries, sh, scfg, p.pol, tb)
	if err := ctx.Err(); err != nil {
		return UnitResult{}, err
	}
	return UnitResult{Samples: out, Lost: sh.lost, Metrics: staging.Snapshot(), Trace: tb.Events()}, nil
}

// Assembly reassembles unit completions — arriving in any order, from
// any number of executors — into the engine's canonical-order sink
// stream, with the identical span, counter, and outage accounting an
// in-process Run produces. Completions are accepted under an internal
// lock; the sink itself still sees strictly sequential canonical-order
// delivery, exactly as the engine's determinism contract promises.
type Assembly struct {
	mu       sync.Mutex
	plan     *Plan
	sink     Sink
	em       *emitter
	sp       *telemetry.Span
	skip     int
	finished bool
}

// NewAssembly prepares the reassembly for one scan: it validates and
// credits the resumed prefix (cfg.Resume), opens the scan span, and
// parks the reorder frontier past the skipped units.
func NewAssembly(p *Plan, sink Sink) (*Assembly, error) {
	skip, err := resumePrefix(p.cfg, p.shards)
	if err != nil {
		return nil, err
	}
	sp := startScanSpan(p.cfg)
	creditSkipped(p.cfg, sp, p.shards[:skip], func(sh *shard) string {
		return string(p.countries[sh.group])
	})
	if len(p.shards) > 0 {
		p.cfg.Metrics.Counter(MetShardsScheduled).Add(int64(len(p.shards)))
	}
	em := newEmitter(sink, p.shards, skip, p.cfg.Metrics, p.cfg.Trace, ScanTraceCtx(p.cfg), p.cfg.Phase)
	return &Assembly{plan: p, sink: sink, em: em, sp: sp, skip: skip}, nil
}

// Pending lists the unit sequence numbers still to execute, in
// canonical order (the resumed prefix is excluded).
func (a *Assembly) Pending() []int {
	out := make([]int, 0, len(a.plan.shards)-a.skip)
	for i := a.skip; i < len(a.plan.shards); i++ {
		out = append(out, i)
	}
	return out
}

// Complete folds one executed unit into the assembly. Safe to call from
// any goroutine; duplicate and out-of-range completions error without
// disturbing the stream.
func (a *Assembly) Complete(seq int, res UnitResult) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.finished {
		return fmt.Errorf("scanner: completion of unit %d after assembly finished", seq)
	}
	if seq < a.skip || seq >= len(a.plan.shards) {
		return fmt.Errorf("scanner: completion of unit %d outside pending range %d..%d", seq, a.skip, len(a.plan.shards)-1)
	}
	if a.em.completed(seq) {
		return fmt.Errorf("scanner: duplicate completion of unit %d", seq)
	}
	sh := a.plan.shards[seq]
	sh.country = string(a.plan.countries[sh.group])
	sh.out = res.Samples
	sh.lost = res.Lost
	sh.events = res.Trace
	if res.Metrics != nil && a.plan.cfg.Metrics != nil {
		// Rehydrate the unit's staged metrics into a shard-local registry
		// so the emitter's merge-at-emission and ShardDone.Metrics bytes
		// match an in-process run exactly.
		st := telemetry.NewWithClock(a.plan.cfg.Metrics.Clock())
		st.Merge(res.Metrics)
		sh.staging = st
	}
	csp := a.sp.StartSpan(sh.country)
	if sh.lost == OutageNone {
		csp.Outcome("ok")
	} else {
		csp.Outcome(sh.lost.String())
	}
	csp.End()
	a.plan.cfg.Metrics.Counter(MetShardsDone).Add(1)
	a.em.complete(sh)
	return nil
}

// Done reports whether every unit has been emitted.
func (a *Assembly) Done() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.em.frontier() == len(a.plan.shards)
}

// Finish closes the scan span and runs the end-of-run outage and
// coverage accounting, mirroring Run's tail exactly. It errors if units
// are still outstanding.
func (a *Assembly) Finish() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.finished {
		return fmt.Errorf("scanner: assembly finished twice")
	}
	if n := a.em.frontier(); n != len(a.plan.shards) {
		return fmt.Errorf("scanner: assembly finished with %d of %d units outstanding", len(a.plan.shards)-n, len(a.plan.shards))
	}
	a.finished = true
	a.sp.End()
	cfg := a.plan.cfg
	os, isOutageSink := a.sink.(OutageSink)
	if isOutageSink || cfg.Metrics != nil || cfg.Trace != nil {
		outages, cov := accountOutages(a.plan.shards, a.plan.countries)
		countOutages(cfg.Metrics, outages, cov)
		recordScanTail(cfg.Trace, ScanTraceCtx(cfg), cfg.Phase, outages, len(a.plan.shards))
		if isOutageSink {
			for _, o := range outages {
				os.EmitOutage(o)
			}
			os.EmitCoverage(cov)
		}
	}
	return nil
}

// Abort closes the scan span without the end-of-run accounting — the
// cancellation path, mirroring Run's early return after a cancelled
// schedule.
func (a *Assembly) Abort() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.finished {
		return
	}
	a.finished = true
	a.sp.End()
}

// completed reports whether seq has already been completed.
func (e *emitter) completed(seq int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.done[seq]
}

// frontier reports how many shards have been emitted in canonical
// order.
func (e *emitter) frontier() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.next
}
