package scanner

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"geoblock/internal/faults"
	"geoblock/internal/geo"
	"geoblock/internal/proxy"
	"geoblock/internal/telemetry"
)

// chaosNet builds a fresh mesh with the given fault hook installed, so
// chaos tests never leak injected failures into the shared testNet.
func chaosNet(h proxy.FaultHook) *proxy.Network {
	net := proxy.NewNetwork(testWorld)
	net.SetFaults(h)
	return net
}

// countingHook wraps a fault hook with call counters — the probe-count
// observability the chaos matrix uses to assert retries stay bounded.
// Counters are atomic (shards probe concurrently); verdicts delegate to
// the wrapped hook, so determinism is untouched.
type countingHook struct {
	inner    proxy.FaultHook
	dark     atomic.Int64 // ExitDark calls: connectivity probes + request-path checks
	requests atomic.Int64 // Request calls: fetch attempts that reached the mesh
	opens    atomic.Int64 // Brownout calls: session-open attempts
}

func (c *countingHook) Brownout(cc geo.CountryCode, slot uint64, attempt int) bool {
	c.opens.Add(1)
	return c.inner.Brownout(cc, slot, attempt)
}

func (c *countingHook) ExitDark(cc geo.CountryCode, exit geo.IP) bool {
	c.dark.Add(1)
	return c.inner.ExitDark(cc, exit)
}

func (c *countingHook) Churned(cc geo.CountryCode, exit geo.IP, served int) bool {
	return c.inner.Churned(cc, exit, served)
}

func (c *countingHook) Request(cc geo.CountryCode, exit geo.IP, host string, seed uint64) proxy.FaultVerdict {
	c.requests.Add(1)
	return c.inner.Request(cc, exit, host, seed)
}

// TestChaosMatrix runs the top10k phase under every standing fault
// profile and asserts the degradation contract: the scan terminates,
// the sample stream stays rectangular and canonically ordered, fetch
// attempts stay within the retry budget, and outage accounting matches
// what the profile destroyed.
func TestChaosMatrix(t *testing.T) {
	cases := []struct {
		name string
		// profile applied; darkCountry restricts it to IR only.
		profile     string
		darkCountry bool
		// wantOutages: exact number of fully lost countries (-1: don't pin).
		wantFullyLost int
		// wantResponses: at least one sample must carry an HTTP response.
		wantResponses bool
	}{
		{"dark-country", "dark", true, 1, true},
		{"flaky-exits", "flaky50", false, 0, true},
		{"mid-shard-churn", "churn", false, 0, true},
		{"brownout", "brownout", false, 0, true},
		{"blackout", "blackout", false, 5, false},
		{"slowloris", "slowloris", false, 0, true},
		{"truncation", "truncate", false, 0, true},
		{"mixed", "mixed", false, -1, true},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			profile, ok := faults.Named(tc.profile)
			if !ok {
				t.Fatalf("profile %q not registered", tc.profile)
			}
			inj := faults.New(7)
			if tc.darkCountry {
				inj.Country("IR", profile)
			} else {
				inj.Default(profile)
			}
			hook := &countingHook{inner: inj}

			domains, countries := smallInputs(40)
			tasks := CrossProduct(len(domains), len(countries))
			cfg := testConfig()
			cfg.Concurrency = 8
			cfg.Phase = "top10k-initial"

			res, err := Scan(context.Background(), chaosNet(hook), domains, countries, tasks, cfg)
			if err != nil {
				t.Fatal(err)
			}

			// Rectangular output in canonical order, faults or not.
			if want := len(tasks) * cfg.Samples; len(res.Samples) != want {
				t.Fatalf("samples = %d, want %d", len(res.Samples), want)
			}
			i := 0
			for _, task := range tasks {
				for a := 0; a < cfg.Samples; a++ {
					s := &res.Samples[i]
					if s.Domain != task.Domain || s.Country != task.Country || s.Attempt != uint8(a) {
						t.Fatalf("sample %d out of canonical order", i)
					}
					i++
				}
			}

			// Bounded retries: every logical sample makes at most
			// 1+Retries mesh attempts.
			if max := int64(len(tasks) * cfg.Samples * (1 + cfg.Retries)); hook.requests.Load() > max {
				t.Fatalf("mesh saw %d fetch attempts; retry budget allows %d", hook.requests.Load(), max)
			}

			// Outage accounting.
			fullyLost := 0
			for _, o := range res.Outages {
				if o.Reason == OutageNone || o.Shards == 0 || o.Shards > o.ShardsTotal {
					t.Fatalf("malformed outage %+v", o)
				}
				if o.Full() {
					fullyLost++
				}
			}
			if tc.wantFullyLost >= 0 && fullyLost != tc.wantFullyLost {
				t.Fatalf("%d countries fully lost, want %d (outages %+v)", fullyLost, tc.wantFullyLost, res.Outages)
			}
			if got := len(res.Coverage.Lost); tc.wantFullyLost >= 0 && got != tc.wantFullyLost {
				t.Fatalf("coverage lists %d lost countries, want %d", got, tc.wantFullyLost)
			}
			if res.Coverage.Requested != len(countries) {
				t.Fatalf("coverage requested = %d, want %d", res.Coverage.Requested, len(countries))
			}
			if res.Coverage.Attained != res.Coverage.Requested-fullyLost {
				t.Fatalf("coverage attained = %d with %d fully lost of %d",
					res.Coverage.Attained, fullyLost, res.Coverage.Requested)
			}

			responses := 0
			for i := range res.Samples {
				if res.Samples[i].OK() {
					responses++
				}
			}
			if tc.wantResponses && responses == 0 {
				t.Fatal("profile should leave some samples answered, got none")
			}
			if !tc.wantResponses && responses != 0 {
				t.Fatalf("blackout still produced %d responses", responses)
			}
		})
	}
}

// TestChaosDeterminism is the acceptance criterion: a fixed fault seed
// yields byte-identical scan output at Concurrency 1, 4, and 32, even
// under the everything-at-once profile.
func TestChaosDeterminism(t *testing.T) {
	profile, _ := faults.Named("mixed")
	domains, countries := smallInputs(48)
	tasks := skewedTasks(len(domains), len(countries))

	var base *Result
	for _, conc := range []int{1, 4, 32} {
		inj := faults.New(42).Default(profile)
		cfg := testConfig()
		cfg.Concurrency = conc
		res, err := Scan(context.Background(), chaosNet(inj), domains, countries, tasks, cfg)
		if err != nil {
			t.Fatalf("concurrency %d: %v", conc, err)
		}
		if base == nil {
			base = res
			continue
		}
		if len(res.Samples) != len(base.Samples) {
			t.Fatalf("concurrency %d: %d samples, want %d", conc, len(res.Samples), len(base.Samples))
		}
		for i := range res.Samples {
			if res.Samples[i] != base.Samples[i] {
				t.Fatalf("concurrency %d: sample %d differs under chaos:\n%+v\n%+v",
					conc, i, res.Samples[i], base.Samples[i])
			}
		}
		if len(res.Outages) != len(base.Outages) {
			t.Fatalf("concurrency %d: %d outages, want %d", conc, len(res.Outages), len(base.Outages))
		}
		for i := range res.Outages {
			if res.Outages[i].Country != base.Outages[i].Country ||
				res.Outages[i].Reason != base.Outages[i].Reason ||
				res.Outages[i].Shards != base.Outages[i].Shards ||
				res.Outages[i].Tasks != base.Outages[i].Tasks {
				t.Fatalf("concurrency %d: outage %d differs", conc, i)
			}
		}
	}
}

// TestChaosTelemetryDeterminism extends the chaos matrix to the
// telemetry layer: under every standing fault profile, the
// deterministic view of the scan's metrics snapshot — counters, error
// tallies, fault counters, span counts — must be byte-identical at
// Concurrency 1, 4, and 32. Only the explicitly runtime-class series
// (steals, worker gauge, latency histogram) may vary with the schedule,
// and Deterministic() strips exactly those.
func TestChaosTelemetryDeterminism(t *testing.T) {
	domains, countries := smallInputs(48)
	tasks := skewedTasks(len(domains), len(countries))

	for _, name := range faults.Names() {
		t.Run(name, func(t *testing.T) {
			profile, _ := faults.Named(name)
			var base string
			for _, conc := range []int{1, 4, 32} {
				reg := telemetry.New()
				inj := faults.New(42).Default(profile).Instrument(reg)
				cfg := testConfig()
				cfg.Concurrency = conc
				cfg.Metrics = reg
				cfg.Phase = "chaos"
				if _, err := Scan(context.Background(), chaosNet(inj), domains, countries, tasks, cfg); err != nil {
					t.Fatalf("concurrency %d: %v", conc, err)
				}
				text := reg.Snapshot().Deterministic().Text()
				if base == "" {
					base = text
					continue
				}
				if text != base {
					t.Fatalf("concurrency %d: deterministic snapshot differs from concurrency 1:\n--- base ---\n%s\n--- got ---\n%s",
						conc, base, text)
				}
			}
			if !strings.Contains(base, "faults.injected") {
				t.Fatalf("profile %s fired no faults; snapshot:\n%s", name, base)
			}
			// Fetch counters only exist when a fetch happened; blackout
			// never gets past session open. Scheduler counters always do.
			if !strings.Contains(base, "scanner.sched.shards_done") {
				t.Fatalf("snapshot missing scheduler counters:\n%s", base)
			}
		})
	}
}

// TestDarkCountryFailFast is the regression test for the ready()
// pre-check spin: against a fully dark country the old loop burned
// VerifyProbes rotations on every attempt of every sample. The circuit
// breaker caps the whole shard at BreakerSweeps sweeps, so the probe
// count must scale with shards, not samples.
func TestDarkCountryFailFast(t *testing.T) {
	profile, _ := faults.Named("dark")
	inj := faults.New(3).Country("IR", profile)
	hook := &countingHook{inner: inj}

	domains, _ := smallInputs(64)
	countries := []geo.CountryCode{"IR"}
	tasks := CrossProduct(len(domains), 1)
	cfg := testConfig()
	res, err := Scan(context.Background(), chaosNet(hook), domains, countries, tasks, cfg)
	if err != nil {
		t.Fatal(err)
	}

	shardCount := (len(tasks) + DefaultShardSize - 1) / DefaultShardSize
	// Per shard: at most BreakerSweeps sweeps of VerifyProbes probes,
	// plus one ExitDark check per pre-trip fetch attempt (< one sweep's
	// worth). The old spin was VerifyProbes per attempt — hundreds of
	// times this bound.
	maxProbes := int64(shardCount * (DefaultBreakerSweeps + 1) * DefaultVerifyProbes)
	if hook.dark.Load() > maxProbes {
		t.Fatalf("dark country cost %d probes; fail-fast bound is %d", hook.dark.Load(), maxProbes)
	}

	// The country degrades into a typed outage, not a hang or junk.
	if len(res.Outages) != 1 || res.Outages[0].Country != "IR" || !res.Outages[0].Full() {
		t.Fatalf("outages = %+v, want one full IR outage", res.Outages)
	}
	if res.Outages[0].Reason != OutageDark {
		t.Fatalf("reason = %v, want dark", res.Outages[0].Reason)
	}
	for i := range res.Samples {
		if res.Samples[i].Err != ErrNoExits && res.Samples[i].Err != ErrProxy {
			t.Fatalf("sample %d = %v, want no-exits or proxy", i, res.Samples[i].Err)
		}
	}
	if res.Coverage.Attained != 0 || res.Coverage.Requested != 1 {
		t.Fatalf("coverage = %+v, want 0/1", res.Coverage)
	}
}

// TestBreakerSparesFlakyCountries guards the paper's anchors: a country
// whose exits are organically flaky (here, half the inventory dark plus
// per-request failures) must NOT be written off — the breaker only
// trips when nothing has ever succeeded.
func TestBreakerSparesFlakyCountries(t *testing.T) {
	profile, _ := faults.Named("flaky50")
	inj := faults.New(11).Default(profile)

	domains, countries := smallInputs(40)
	tasks := CrossProduct(len(domains), len(countries))
	cfg := testConfig()
	res, err := Scan(context.Background(), chaosNet(inj), domains, countries, tasks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range res.Outages {
		if o.Reason == OutageDark && o.Full() {
			t.Fatalf("breaker wrote off flaky-but-alive country %s", o.Country)
		}
	}
	perCountry := make(map[int16]int)
	for i := range res.Samples {
		if res.Samples[i].OK() {
			perCountry[res.Samples[i].Country]++
		}
	}
	for i := range countries {
		if perCountry[int16(i)] == 0 {
			t.Fatalf("country %s produced no responses under flaky50", countries[i])
		}
	}
}

// TestBrownoutBackoff exercises the session-open path directly: a
// transient brownout clears within the open-retry budget (with
// decorrelated-jitter waits recorded through the Sleep hook), while a
// permanent one surfaces as *proxy.ErrBrownout.
func TestBrownoutBackoff(t *testing.T) {
	transient, _ := faults.Named("brownout") // clears after 1 failed open
	permanent, _ := faults.Named("blackout")

	// Find a (country, slot) pair the transient profile actually hits.
	inj := faults.New(5).Default(transient)
	cc := geo.CountryCode("US")
	slot := uint64(0)
	for ; slot < 1000; slot++ {
		if inj.Brownout(cc, slot, 0) {
			break
		}
	}
	if slot == 1000 {
		t.Fatal("no browned-out slot found in 1000 tries")
	}

	var waits []time.Duration
	pol := RetryPolicy{Sleep: func(d time.Duration) { waits = append(waits, d) }}
	net := chaosNet(inj)
	if _, err := openSession(net, cc, slot, pol, nil); err != nil {
		t.Fatalf("transient brownout did not clear: %v", err)
	}
	if len(waits) == 0 {
		t.Fatal("no backoff waits recorded")
	}
	for _, d := range waits {
		if d < backoffBase || d > backoffCap {
			t.Fatalf("wait %v outside [%v, %v]", d, backoffBase, backoffCap)
		}
	}

	// Permanent blackout: bounded attempts, then a typed error.
	waits = nil
	net2 := chaosNet(faults.New(5).Default(permanent))
	_, err := openSession(net2, cc, slot, pol, nil)
	if err == nil {
		t.Fatal("blackout session open succeeded")
	}
	if _, ok := err.(*proxy.ErrBrownout); !ok {
		t.Fatalf("err = %T (%v), want *proxy.ErrBrownout", err, err)
	}
	if len(waits) != DefaultOpenRetries {
		t.Fatalf("%d backoff waits, want %d", len(waits), DefaultOpenRetries)
	}
}

// TestBackoffDecorrelatedJitter pins the backoff generator itself:
// deterministic for a slot, varied across draws, always within
// [base, cap].
func TestBackoffDecorrelatedJitter(t *testing.T) {
	a, b := newBackoff(99, nil), newBackoff(99, nil)
	var prev time.Duration
	varied := false
	for i := 0; i < 50; i++ {
		d := a.wait()
		if d2 := b.wait(); d2 != d {
			t.Fatalf("draw %d: same slot diverged (%v vs %v)", i, d, d2)
		}
		if d < backoffBase || d > backoffCap {
			t.Fatalf("draw %d: %v outside [%v, %v]", i, d, backoffBase, backoffCap)
		}
		if i > 0 && d != prev {
			varied = true
		}
		prev = d
	}
	if !varied {
		t.Fatal("backoff produced a constant sequence; jitter is broken")
	}
	if c := newBackoff(100, nil).wait(); c == newBackoff(99, nil).wait() {
		t.Log("adjacent slots drew equal first waits (possible but unlikely)")
	}
}

// TestChurnForcesRotation: with every exit dying mid-stretch, the scan
// still completes with responses — rotation routes around the churn —
// and no exit serves more than its budget.
func TestChurnForcesRotation(t *testing.T) {
	profile, _ := faults.Named("churn")
	inj := faults.New(13).Default(profile)

	domains, countries := smallInputs(32)
	tasks := CrossProduct(len(domains), len(countries))
	cfg := testConfig()
	res, err := Scan(context.Background(), chaosNet(inj), domains, countries, tasks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	load := res.LoadReport()
	if load.MaxStretch > cfg.RequestsPerExit {
		t.Fatalf("stretch %d exceeds budget %d under churn", load.MaxStretch, cfg.RequestsPerExit)
	}
	responses := 0
	for i := range res.Samples {
		if res.Samples[i].OK() {
			responses++
		}
	}
	if responses == 0 {
		t.Fatal("churn profile starved the scan completely")
	}
}

// TestTruncationClassifiesAsReset: a truncated transfer must surface as
// a reset-classified failure (or be retried into a success), never as a
// silent short body counted as a response.
func TestTruncationClassifiesAsReset(t *testing.T) {
	inj := faults.New(17).Default(faults.Profile{Truncate: 1}) // every transfer dies
	domains, countries := smallInputs(8)
	tasks := CrossProduct(len(domains), len(countries))
	cfg := testConfig()
	cfg.Retries = 0 // no retries: every sample shows the raw verdict
	res, err := Scan(context.Background(), chaosNet(inj), domains, countries, tasks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Samples {
		s := &res.Samples[i]
		if s.OK() {
			t.Fatalf("sample %d reported OK with all transfers truncated", i)
		}
	}
}
