package scanner

import "testing"

// The telemetry layer labels per-code counters with ErrCode.String()
// (metrics.go) and per-outage counters with OutageReason.String()
// (scan.go). A new code whose String falls through to "unknown" would
// silently merge distinct failure modes into one counter series, so
// adding a code without a label is a test failure, not a runtime
// surprise.

func TestErrCodeStringsAreExhaustive(t *testing.T) {
	seen := map[string]ErrCode{}
	for c := ErrCode(0); c < ErrCode(errCodeCount); c++ {
		s := c.String()
		if s == "unknown" {
			t.Errorf("ErrCode(%d) has no String label; extend the switch and errCodeCount together", c)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("ErrCode(%d) and ErrCode(%d) share the label %q", prev, c, s)
		}
		seen[s] = c
	}
	if got := ErrCode(errCodeCount).String(); got != "unknown" {
		t.Errorf("ErrCode(errCodeCount).String() = %q; errCodeCount is stale, bump it to cover the new code", got)
	}
}

func TestOutageReasonStringsAreExhaustive(t *testing.T) {
	seen := map[string]OutageReason{}
	for r := OutageNone; r <= OutageDark; r++ {
		s := r.String()
		if s == "unknown" {
			t.Errorf("OutageReason(%d) has no String label", r)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("OutageReason(%d) and OutageReason(%d) share the label %q", prev, r, s)
		}
		seen[s] = r
	}
	if got := (OutageDark + 1).String(); got != "unknown" {
		t.Errorf("OutageReason one past OutageDark = %q; this test's upper bound is stale", got)
	}
}
