// The scheduler layer: deterministic sharding and a work-stealing
// worker pool with canonical-order emission.
package scanner

import (
	"context"
	"strconv"
	"sync"

	"geoblock/internal/telemetry"
	"geoblock/internal/trace"
)

// shard is one schedulable unit: a contiguous chunk of one group's
// (country's or VPS's) task list. Shards are fully independent — each
// carries its own session slot — so any execution order yields the
// same per-shard output.
type shard struct {
	seq     int    // canonical position (group-major, chunk order)
	group   int16  // country or VPS index
	index   int    // chunk index within the group
	slot    uint64 // sticky-session slot, a pure function of (group, phase, index)
	tasks   []Task
	out     []Sample     // filled by the runner, released after emission
	lost    OutageReason // set by the runner when the shard's tasks were lost
	country string       // group's country code, for ShardDone
	// staging holds the shard's own metrics when a ShardSink asked for
	// per-shard accounting; merged into the main registry at emission.
	staging *telemetry.Registry
	// events holds the shard's staged trace events when tracing is on;
	// appended to the tracer at emission, same canonical point as the
	// metrics merge.
	events []trace.Event
}

// buildShards chunks each group's tasks. Boundaries depend only on the
// task lists and shardSize — never on Concurrency — so the shard set
// (and through slotFor, every session slot) is stable across any
// worker count.
func buildShards(byGroup [][]Task, shardSize int, slotFor func(group int16, index int) uint64) []*shard {
	var shards []*shard
	for g, tasks := range byGroup {
		for i := 0; len(tasks) > 0; i++ {
			n := shardSize
			if n > len(tasks) {
				n = len(tasks)
			}
			shards = append(shards, &shard{
				seq:   len(shards),
				group: int16(g),
				index: i,
				slot:  slotFor(int16(g), i),
				tasks: tasks[:n],
			})
			tasks = tasks[n:]
		}
	}
	return shards
}

// shardSlot derives a shard's sticky-session slot from (country, phase,
// shard index) — the determinism anchor: a shard lands on the same
// exits no matter which worker runs it, or when.
func shardSlot(country, phase string, index int) uint64 {
	return hash(country + "/" + phase + "/" + strconv.Itoa(index))
}

// deque is one worker's shard queue. The owner pops from the front
// (low canonical sequence first); thieves steal from the back, so a
// skewed country's tail chunks migrate to idle workers.
type deque struct {
	mu     sync.Mutex
	shards []*shard
}

func (d *deque) popFront() *shard {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.shards) == 0 {
		return nil
	}
	sh := d.shards[0]
	d.shards = d.shards[1:]
	return sh
}

func (d *deque) stealBack() *shard {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.shards) == 0 {
		return nil
	}
	sh := d.shards[len(d.shards)-1]
	d.shards = d.shards[:len(d.shards)-1]
	return sh
}

// emitter delivers completed shards to the sink in canonical order: a
// reorder frontier holds out-of-order completions until every earlier
// shard has been emitted. Emit is therefore always called sequentially
// and in the same order regardless of scheduling.
type emitter struct {
	mu        sync.Mutex
	sink      Sink
	shardSink ShardSink // sink's ShardSink side, when it has one
	shards    []*shard
	done      []bool
	next      int
	reg       *telemetry.Registry
	// tr/scanCtx/phase carry the trace wiring: staged unit events are
	// appended (and the per-shard "sink.emit" event recorded) inside
	// the frontier loop, which is what makes the merged stream's order
	// canonical regardless of scheduling or process count.
	tr      *trace.Tracer
	scanCtx trace.SpanCtx
	phase   string
}

// newEmitter builds the canonical-order emitter both compositions
// share: schedule (the in-process pool) and Assembly (the fabric's
// reassembly) must stay on this one constructor so their emission-time
// accounting — metrics merge, ShardDone, trace append — is identical.
func newEmitter(sink Sink, shards []*shard, skip int, reg *telemetry.Registry, tr *trace.Tracer, scanCtx trace.SpanCtx, phase string) *emitter {
	done := make([]bool, len(shards))
	for i := 0; i < skip; i++ {
		done[i] = true
	}
	em := &emitter{sink: sink, shards: shards, done: done, next: skip, reg: reg, tr: tr, scanCtx: scanCtx, phase: phase}
	em.shardSink, _ = sink.(ShardSink)
	return em
}

func (e *emitter) complete(sh *shard) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.done[sh.seq] = true
	for e.next < len(e.shards) && e.done[e.next] {
		ready := e.shards[e.next]
		for i := range ready.out {
			e.sink.Emit(ready.out[i])
		}
		if e.reg != nil {
			var bytes int64
			for i := range ready.out {
				bytes += int64(ready.out[i].BodyLen)
			}
			e.reg.Counter(MetSinkSamples).Add(int64(len(ready.out)))
			e.reg.Counter(MetSinkBytes).Add(bytes)
		}
		if ready.staging != nil {
			// Fold the shard's staged metrics into the main registry at
			// the canonical emission point. Merging is commutative, so
			// the totals equal a run that recorded them live.
			e.reg.Merge(ready.staging.Snapshot())
		}
		if e.shardSink != nil {
			var det *telemetry.Snapshot
			if ready.staging != nil {
				det = ready.staging.Snapshot().Deterministic()
			}
			e.shardSink.EmitShardDone(ShardDone{
				Seq:     ready.seq,
				Country: ready.country,
				Tasks:   len(ready.tasks),
				Samples: len(ready.out),
				Lost:    ready.lost,
				Metrics: det,
			})
		}
		if e.tr != nil {
			// Same canonical point as the metrics merge: unit events land
			// in frontier order, then the emission itself is recorded.
			e.tr.Append(ready.events)
			virt, wall := e.tr.Now()
			ev := trace.NewEvent(e.scanCtx.Child("sink.emit", ready.seq), "sink.emit")
			ev.Parent = e.scanCtx.Span
			ev.Unit = ready.seq
			ev.Country = ready.country
			ev.Phase = e.phase
			if ready.lost == OutageNone {
				ev.Outcome = "ok"
			} else {
				ev.Outcome = ready.lost.String()
			}
			ev.VirtNS = virt
			ev.WallNS = wall
			ev.Attrs = []trace.Attr{{K: "samples", V: strconv.Itoa(len(ready.out))}}
			e.tr.Record(ev)
		}
		ready.out = nil // release bodies as soon as the sink has seen them
		ready.staging = nil
		ready.events = nil
		e.next++
	}
}

// schedule fans shards out over a work-stealing pool and streams
// completed shards through em in canonical order. run must fill
// sh.out. The first skip shards are a resumed prefix: already
// persisted by an earlier run, they are never distributed — the
// emitter's frontier starts past them. On context cancellation workers
// stop picking up shards and schedule returns ctx.Err();
// already-emitted samples are not retracted.
func schedule(ctx context.Context, shards []*shard, skip int, workers int, run func(context.Context, *shard), em *emitter) error {
	if len(shards) == 0 {
		return ctx.Err()
	}
	reg := em.reg
	reg.Counter(MetShardsScheduled).Add(int64(len(shards)))
	live := shards[skip:]
	if len(live) == 0 {
		return ctx.Err()
	}
	if workers > len(live) {
		workers = len(live)
	}
	if workers < 1 {
		workers = 1
	}
	// Steal counts and the worker gauge depend on scheduling, so they
	// are runtime-class; everything else here is deterministic.
	reg.RuntimeGauge(MetWorkers).Set(int64(workers))
	steals := reg.RuntimeCounter(MetSteals)
	shardsDone := reg.Counter(MetShardsDone)

	// Round-robin distribution: shard i starts on worker i%workers, so
	// a giant country's chunks are spread across the pool from the
	// start and stealing only handles residual imbalance.
	deques := make([]*deque, workers)
	for w := range deques {
		deques[w] = &deque{}
	}
	for i, sh := range live {
		d := deques[i%workers]
		d.shards = append(d.shards, sh)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				sh := deques[w].popFront()
				if sh == nil {
					for off := 1; off < workers && sh == nil; off++ {
						sh = deques[(w+off)%workers].stealBack()
					}
					if sh != nil {
						steals.Add(1)
						if em.tr != nil {
							// Which shard migrates depends entirely on
							// scheduling — runtime-class by definition.
							ev := trace.NewEvent(em.scanCtx.Child("steal", sh.seq), "steal")
							ev.Parent = em.scanCtx.Span
							ev.Unit = sh.seq
							ev.Phase = em.phase
							ev.Runtime = true
							_, ev.WallNS = em.tr.Now()
							ev.Attrs = []trace.Attr{{K: "worker", V: strconv.Itoa(w)}}
							em.tr.Record(ev)
						}
					}
				}
				if sh == nil {
					return // pool drained: the shard set is static
				}
				run(ctx, sh)
				shardsDone.Add(1)
				em.complete(sh)
			}
		}(w)
	}
	wg.Wait()
	return ctx.Err()
}
