// Package scanner is the layered scan engine behind lumscan (§3.2).
// It splits the hot path every study phase funnels through into four
// composable layers:
//
//   - Scheduler (sched.go): shards each country's task list into
//     deterministic chunks and work-steals across shards, so one large
//     country no longer serializes a run and parallelism scales with
//     cores rather than country count.
//   - Session (session.go): sticky proxy-session acquisition, the
//     connectivity pre-check loop, and per-exit budget rotation under
//     an explicit RetryPolicy.
//   - Fetcher (fetch.go): one HTTP attempt plus error classification.
//   - Sink (sink.go): streaming delivery of samples. Collect rebuilds
//     the classic in-memory Result; folding sinks let consumers drop
//     bodies immediately, bounding peak memory on Top-1M-scale runs.
//
// Determinism contract: every sample is a pure function of (domain,
// country, phase, attempt, shard slot). Shard boundaries and slots do
// not depend on Concurrency, and completed shards are emitted to the
// sink in canonical country-major, task-order sequence — so a scan's
// output is bit-identical at any concurrency, and Emit never needs to
// be safe for concurrent use.
package scanner

import (
	"net/http"

	"geoblock/internal/geo"
	"geoblock/internal/stats"
	"geoblock/internal/telemetry"
	"geoblock/internal/trace"
)

// ErrCode classifies a failed sample.
type ErrCode uint8

const (
	// ErrNone: the request completed with an HTTP response.
	ErrNone ErrCode = iota
	// ErrProxy: the exit or superproxy failed.
	ErrProxy
	// ErrTimeout: the connection timed out.
	ErrTimeout
	// ErrDNS: name resolution failed (including poisoned answers).
	ErrDNS
	// ErrReset: the connection was reset in-path.
	ErrReset
	// ErrRedirects: the redirect limit was exceeded.
	ErrRedirects
	// ErrLuminati: the proxy platform refused the domain
	// (X-Luminati-Error).
	ErrLuminati
	// ErrNoExits: the country has no usable exits.
	ErrNoExits

	// errCodeCount is one past the highest ErrCode. The fetcher's
	// per-code metric counters are indexed by it, and the
	// exhaustiveness test pins every code below it to a unique String
	// label — add a code without bumping this and the test fails fast.
	errCodeCount = int(ErrNoExits) + 1
)

func (e ErrCode) String() string {
	switch e {
	case ErrNone:
		return "ok"
	case ErrProxy:
		return "proxy"
	case ErrTimeout:
		return "timeout"
	case ErrDNS:
		return "dns"
	case ErrReset:
		return "reset"
	case ErrRedirects:
		return "redirects"
	case ErrLuminati:
		return "luminati"
	case ErrNoExits:
		return "no-exits"
	}
	return "unknown"
}

// Sample is one measurement. The struct is deliberately compact: a full
// Top-10K study holds millions of them.
type Sample struct {
	Domain  int32 // index into Result.Domains
	Country int16 // index into Result.Countries
	Attempt uint8 // which sample of the pair (0-based)
	Err     ErrCode
	Status  int16
	BodyLen int32
	ExitIP  geo.IP
	Seed    uint64 // replay key
	Body    string // retained only when Config.KeepBody said so
}

// OK reports whether the sample carries an HTTP response.
func (s *Sample) OK() bool { return s.Err == ErrNone }

// OutageReason classifies why a country (or part of one) produced no
// measurements.
type OutageReason uint8

const (
	// OutageNone: no outage.
	OutageNone OutageReason = iota
	// OutageNoExits: the country has no exit inventory at all.
	OutageNoExits
	// OutageBrownout: the superproxy never accepted a session, even
	// under open-retry backoff.
	OutageBrownout
	// OutageDark: exits exist but none ever answered — the session
	// circuit breaker wrote the country off.
	OutageDark
)

func (r OutageReason) String() string {
	switch r {
	case OutageNone:
		return "none"
	case OutageNoExits:
		return "no-exits"
	case OutageBrownout:
		return "brownout"
	case OutageDark:
		return "dark"
	}
	return "unknown"
}

// Outage is the typed per-country degradation record: instead of
// poisoning downstream table math with sentinel values, a scan that
// exhausts a country's exits reports exactly what was lost. Samples for
// the lost tasks are still emitted (as ErrNoExits), so sample streams
// stay rectangular; the Outage is the accounting on top.
type Outage struct {
	Country geo.CountryCode
	// Reason is the dominant failure mode across the country's lost
	// shards.
	Reason OutageReason
	// Shards lost vs scheduled for the country.
	Shards, ShardsTotal int
	// Tasks in the lost shards.
	Tasks int
}

// Full reports whether every shard of the country was lost — the
// country contributed no measurements at all.
func (o Outage) Full() bool { return o.Shards == o.ShardsTotal }

// Coverage summarizes attained vs requested coverage — the headline
// the CLIs print so a degraded run is visible instead of silently
// thin.
type Coverage struct {
	// Requested is the number of countries the scan asked for (with at
	// least one task).
	Requested int
	// Attained is the number of countries that produced measurements
	// from at least one live shard.
	Attained int
	// Lost lists the fully lost countries, in scan order.
	Lost []geo.CountryCode
	// TasksLost counts tasks in outage-hit shards across all countries.
	TasksLost int
}

// Full reports whether every requested country was attained.
func (c Coverage) Full() bool { return c.Attained == c.Requested }

// Task is one (domain, country) pair to measure.
type Task struct {
	Domain  int32 `json:"d"`
	Country int16 `json:"c"`
}

// BodyPolicy is the serializable form of the body-retention decision.
// Config.KeepBody is a func and cannot cross a process boundary; a
// distributed work unit ships the policy instead and every worker
// derives the identical func from it.
type BodyPolicy uint8

const (
	// BodyDefault keeps non-200/301/302 bodies — every block page is
	// non-200. This is what a nil KeepBody has always meant.
	BodyDefault BodyPolicy = iota
	// BodyNone drops every body (status/length-only passes).
	BodyNone
	// BodyAll keeps every body.
	BodyAll
)

func (p BodyPolicy) String() string {
	switch p {
	case BodyDefault:
		return "default"
	case BodyNone:
		return "none"
	case BodyAll:
		return "all"
	}
	return "unknown"
}

// keep derives the KeepBody func the policy stands for.
func (p BodyPolicy) keep() func(status, bodyLen int) bool {
	switch p {
	case BodyNone:
		return func(int, int) bool { return false }
	case BodyAll:
		return func(int, int) bool { return true }
	}
	return func(status, _ int) bool { return status != 200 && status != 301 && status != 302 }
}

// DefaultShardSize is the task count per scheduler shard. Small enough
// that a skewed country splits across every core, large enough that a
// sticky session amortizes its connectivity pre-check.
const DefaultShardSize = 32

// Config tunes a scan.
type Config struct {
	// Samples per (domain, country) pair.
	Samples int
	// Retries per failed sample (the Lumscan reliability feature).
	Retries int
	// RequestsPerExit bounds per-exit load before rotation (paper: 10).
	RequestsPerExit int
	// MaxRedirects bounds the redirect chain (paper: 10).
	MaxRedirects int
	// Concurrency bounds the number of scheduler workers. Output is
	// bit-identical at any value (see the package determinism contract).
	Concurrency int
	// ShardSize is the task count per scheduler shard. Zero takes
	// DefaultShardSize. Shard boundaries feed the per-shard session
	// slots, so changing ShardSize (unlike Concurrency) changes which
	// exits serve which samples.
	ShardSize int
	// Headers are sent on every request. Use BrowserHeaders for the
	// full browser set; a bare UA reproduces the ZGrab false positives.
	Headers map[string]string
	// KeepBody decides whether a sample retains its body. Nil derives
	// the func from Bodies (whose zero value keeps non-200 bodies —
	// every block page is non-200). Prefer Bodies: a func cannot be
	// serialized into a distributed work unit, so a scan with a custom
	// KeepBody cannot run on the fabric.
	KeepBody func(status, bodyLen int) bool
	// Bodies is the serializable body-retention policy, consulted only
	// when KeepBody is nil.
	Bodies BodyPolicy
	// Phase salts the per-sample seeds so that repeated passes over the
	// same pairs draw fresh samples.
	Phase string
	// VerifyConnectivity runs the platform echo check when picking up a
	// new exit, rotating away from dead machines.
	VerifyConnectivity bool
	// WrapTransport, when non-nil, wraps every transport the fetcher
	// layer builds — the middleware seam for instrumentation, latency
	// injection in benchmarks, or request logging. It must not change
	// response contents, or the determinism contract breaks.
	WrapTransport func(http.RoundTripper) http.RoundTripper
	// Metrics, when non-nil, receives counters, histograms, and phase
	// spans from every engine layer (see metrics.go for the names).
	// Instrumentation never influences scan behavior: samples are
	// byte-identical with or without it.
	Metrics *telemetry.Registry
	// Span, when non-nil, is the parent the engine's own scan span
	// nests under — the pipeline passes its phase span here so the
	// trace reads pipeline phase → scan phase → country. Nil roots the
	// scan span at the registry.
	Span *telemetry.Span
	// Trace, when non-nil, receives wide events from every engine layer
	// (see internal/trace). Like Metrics, tracing never influences scan
	// behavior: samples are byte-identical with or without it.
	Trace *trace.Tracer
	// TraceCtx pins the scan-level trace context explicitly — the
	// fabric worker path, where the coordinator issued the context in
	// the PhaseSpec. When zero, the context derives from Trace's root
	// (see ScanTraceCtx). Either way every party derives identical
	// per-unit contexts.
	TraceCtx trace.SpanCtx
	// TraceWall, when non-nil, stamps unit events with wall time —
	// runtime-class information, stripped from the deterministic trace
	// view. The CLIs pass the tracer's wall clock; deterministic tests
	// leave it nil and wall stamps stay zero.
	TraceWall telemetry.Clock
	// Resume, when non-nil, marks a canonical-order prefix of the
	// scan's shards as already measured by an earlier run. The engine
	// skips their work entirely — the journal layer replays their
	// persisted samples into the sink beforehand — while still
	// crediting their spans, counters, and outage accounting from the
	// recorded loss reasons, so a resumed run's deterministic telemetry
	// and coverage math match an uninterrupted run's exactly.
	Resume *Resume
}

// Resume is the checkpoint index's view of how far an interrupted scan
// got: Shards completed scheduler shards, in canonical order, and each
// one's OutageReason (OutageNone for healthy shards). The engine folds
// the reasons back into the outage and coverage accounting exactly as
// if the shards had just run.
type Resume struct {
	Shards int
	Lost   []OutageReason
}

// withDefaults fills zero fields with the §4.1.1 parameters.
func (c Config) withDefaults() Config {
	if c.Samples <= 0 {
		c.Samples = 1
	}
	if c.MaxRedirects <= 0 {
		c.MaxRedirects = 10
	}
	if c.RequestsPerExit <= 0 {
		c.RequestsPerExit = 10
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.ShardSize <= 0 {
		c.ShardSize = DefaultShardSize
	}
	if c.Headers == nil {
		c.Headers = BrowserHeaders()
	}
	if c.KeepBody == nil {
		c.KeepBody = c.Bodies.keep()
	}
	return c
}

// retryPolicy extracts the session layer's knobs.
func (c Config) retryPolicy() RetryPolicy {
	return RetryPolicy{
		Retries:            c.Retries,
		RequestsPerExit:    c.RequestsPerExit,
		VerifyProbes:       DefaultVerifyProbes,
		VerifyConnectivity: c.VerifyConnectivity,
	}
}

// BrowserHeaders is the full header set that suppresses bot detection
// (§3.2: "merely setting User-Agent is insufficient").
func BrowserHeaders() map[string]string {
	return map[string]string{
		"User-Agent":      "Mozilla/5.0 (Macintosh; Intel Mac OS X 10.13; rv:61.0) Gecko/20100101 Firefox/61.0",
		"Accept":          "text/html,application/xhtml+xml,application/xml;q=0.9,*/*;q=0.8",
		"Accept-Language": "en-US,en;q=0.5",
	}
}

// ZGrabHeaders is the bare header set of the §3.1 VPS exploration.
func ZGrabHeaders() map[string]string {
	return map[string]string{
		"User-Agent": "Mozilla/5.0 (Macintosh; Intel Mac OS X 10.13; rv:61.0) Gecko/20100101 Firefox/61.0",
	}
}

// Result is a completed scan.
type Result struct {
	Domains   []string
	Countries []geo.CountryCode
	Samples   []Sample
	// Outages lists countries that lost shards to dead exits, dark
	// inventories, or superproxy brownouts, in scan order.
	Outages []Outage
	// Coverage is the attained-vs-requested summary for the run.
	Coverage Coverage
}

// ExitLoad summarizes how many requests each exit machine served — the
// accounting behind the paper's promise that the scan "keeps us from
// consuming too many resources on any single end user's machine"
// (§3.2). Counting is per contiguous stretch on an exit: the per-exit
// budget bounds each stretch, and rotation cycles the inventory.
type ExitLoad struct {
	// MaxStretch is the longest run of consecutive samples served by
	// one exit within a country.
	MaxStretch int
	// PerExit counts total samples per exit address.
	PerExit map[geo.IP]int
}

// LoadReport computes the per-exit accounting from the samples.
func (r *Result) LoadReport() ExitLoad {
	load := ExitLoad{PerExit: map[geo.IP]int{}}
	var prevExit geo.IP
	var prevCountry int16 = -1
	stretch := 0
	for i := range r.Samples {
		s := &r.Samples[i]
		if s.ExitIP == 0 {
			continue
		}
		load.PerExit[s.ExitIP]++
		if s.ExitIP == prevExit && s.Country == prevCountry {
			stretch++
		} else {
			stretch = 1
			prevExit, prevCountry = s.ExitIP, s.Country
		}
		if stretch > load.MaxStretch {
			load.MaxStretch = stretch
		}
	}
	return load
}

// CrossProduct builds the full task matrix.
func CrossProduct(nDomains, nCountries int) []Task {
	tasks := make([]Task, 0, nDomains*nCountries)
	for c := 0; c < nCountries; c++ {
		for d := 0; d < nDomains; d++ {
			tasks = append(tasks, Task{Domain: int32(d), Country: int16(c)})
		}
	}
	return tasks
}

// sampleSeed derives the deterministic per-sample seed.
func sampleSeed(domain, country, phase string, attempt int) uint64 {
	return stats.Mix64(hash(domain) ^ hash(country)<<1 ^ hash(phase)<<2 ^ uint64(attempt+1)*0x100000001b3)
}

func hash(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
