// The fetcher layer: one HTTP attempt and its error classification.
package scanner

import (
	"context"
	"errors"
	"io"
	"net/http"

	"geoblock/internal/geo"
	"geoblock/internal/vnet"
)

var errRedirectLimit = errors.New("scanner: redirect limit reached")

// redirectLimiter builds the http.Client redirect policy for the
// configured chain bound.
func redirectLimiter(maxRedirects int) func(*http.Request, []*http.Request) error {
	return func(req *http.Request, via []*http.Request) error {
		if len(via) >= maxRedirects {
			return errRedirectLimit
		}
		return nil
	}
}

// fetcher performs single attempts through one transport. It carries
// the shard's context so every request is cancellable end to end.
type fetcher struct {
	ctx      context.Context
	client   *http.Client
	headers  map[string]string
	keepBody func(status, bodyLen int) bool
	met      *fetchMetrics
}

// newFetcher builds a fetcher over rt with the config's header set,
// redirect bound, and body-retention policy.
func newFetcher(ctx context.Context, rt http.RoundTripper, cfg Config) *fetcher {
	if cfg.WrapTransport != nil {
		rt = cfg.WrapTransport(rt)
	}
	return &fetcher{
		ctx: ctx,
		client: &http.Client{
			Transport:     rt,
			CheckRedirect: redirectLimiter(cfg.MaxRedirects),
		},
		headers:  cfg.Headers,
		keepBody: cfg.KeepBody,
		met:      newFetchMetrics(cfg.Metrics),
	}
}

// fetch performs one attempt and classifies the outcome. exit is the
// address serving the attempt (recorded even on failure, for the load
// accounting and for replay). The return value is named so the metrics
// defer observes the final sample whichever path produced it.
func (f *fetcher) fetch(domain string, seed uint64, t Task, attempt uint8, exit geo.IP) (s Sample) {
	if f.met != nil {
		start := f.met.reg.Now()
		defer func() { f.met.observe(&s, f.met.reg.Now().Sub(start)) }()
	}
	s = Sample{Domain: t.Domain, Country: t.Country, Attempt: attempt, Seed: seed, ExitIP: exit}

	ctx := vnet.WithSampleSeed(f.ctx, seed)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+domain+"/", nil)
	if err != nil {
		s.Err = ErrDNS
		return s
	}
	for k, v := range f.headers {
		req.Header.Set(k, v)
	}

	resp, err := f.client.Do(req)
	if err != nil {
		s.Err = classifyError(err)
		return s
	}
	defer resp.Body.Close()

	if resp.Header.Get("X-Luminati-Error") != "" {
		s.Err = ErrLuminati
		return s
	}
	s.Status = int16(resp.StatusCode)

	// Content-Length is -1 when the header is absent; storing it
	// verbatim would poison the §4.1.2 page-length outlier math, so
	// such bodies are read and counted instead.
	var body []byte
	bodyLen := resp.ContentLength
	if bodyLen < 0 {
		body, err = io.ReadAll(resp.Body)
		if err != nil {
			s.Err = ErrReset
			return s
		}
		bodyLen = int64(len(body))
	}
	s.BodyLen = int32(bodyLen)
	if f.keepBody(resp.StatusCode, int(bodyLen)) {
		if body == nil {
			body, err = io.ReadAll(resp.Body)
			if err != nil {
				s.Err = ErrReset
				return s
			}
		}
		s.Body = string(body)
		s.BodyLen = int32(len(body))
	}
	return s
}

// classifyError maps transport errors onto the sample taxonomy. The
// redirect-limit sentinel surfaces wrapped in the *url.Error that
// http.Client.Do returns, so errors.Is unwraps it.
func classifyError(err error) ErrCode {
	var op *vnet.OpError
	if errors.As(err, &op) {
		switch {
		case op.Timeout():
			return ErrTimeout
		case op.Op == "dns":
			return ErrDNS
		case op.Op == "proxy":
			return ErrProxy
		default:
			return ErrReset
		}
	}
	if errors.Is(err, errRedirectLimit) {
		return ErrRedirects
	}
	return ErrProxy
}
