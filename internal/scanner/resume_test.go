package scanner

import (
	"context"
	"testing"

	"geoblock/internal/telemetry"
)

// shardCollect is a Collect that also records shard-completion events —
// the journaling consumer's view of a scan.
type shardCollect struct {
	Collect
	Dones []ShardDone
}

func (c *shardCollect) EmitShardDone(d ShardDone) { c.Dones = append(c.Dones, d) }

// TestResumeValidation: malformed Resume prefixes are caller bugs,
// rejected before any fetching.
func TestResumeValidation(t *testing.T) {
	domains, countries := smallInputs(8)
	tasks := CrossProduct(len(domains), len(countries))
	for _, r := range []*Resume{
		{Shards: -1},
		{Shards: 10000},
		{Shards: 1, Lost: nil},
		{Shards: 0, Lost: []OutageReason{OutageNone}},
	} {
		cfg := testConfig()
		cfg.Resume = r
		err := Run(context.Background(), testNet, domains, countries, tasks, cfg, &Collect{})
		if err == nil {
			t.Fatalf("Resume %+v accepted", r)
		}
	}
}

// TestShardDoneEmission: a ShardSink sees one event per shard, in
// canonical order, whose counts tile the sample stream exactly — and
// with a registry attached, each event carries the shard's staged
// deterministic metrics while the main registry still converges to the
// same deterministic snapshot as an unjournaled run.
func TestShardDoneEmission(t *testing.T) {
	domains, countries := smallInputs(40)
	tasks := skewedTasks(len(domains), len(countries))
	cfg := testConfig()
	cfg.Concurrency = 8

	plainReg := telemetry.New()
	plainCfg := cfg
	plainCfg.Metrics = plainReg
	var plain Collect
	if err := Run(context.Background(), testNet, domains, countries, tasks, plainCfg, &plain); err != nil {
		t.Fatal(err)
	}

	shardReg := telemetry.New()
	shardCfg := cfg
	shardCfg.Metrics = shardReg
	var sc shardCollect
	if err := Run(context.Background(), testNet, domains, countries, tasks, shardCfg, &sc); err != nil {
		t.Fatal(err)
	}

	if len(sc.Samples) != len(plain.Samples) {
		t.Fatalf("shard-sink run emitted %d samples, plain %d", len(sc.Samples), len(plain.Samples))
	}
	for i := range sc.Samples {
		if sc.Samples[i] != plain.Samples[i] {
			t.Fatalf("sample %d differs with a ShardSink attached", i)
		}
	}
	if len(sc.Dones) == 0 {
		t.Fatal("no ShardDone events")
	}
	total, tasksTotal := 0, 0
	for i, d := range sc.Dones {
		if d.Seq != i {
			t.Fatalf("ShardDone %d has seq %d; events must arrive in canonical order", i, d.Seq)
		}
		if d.Country == "" {
			t.Fatalf("ShardDone %d has no country", i)
		}
		if d.Metrics == nil {
			t.Fatalf("ShardDone %d carries no staged metrics despite a registry", i)
		}
		total += d.Samples
		tasksTotal += d.Tasks
	}
	if total != len(sc.Samples) {
		t.Fatalf("ShardDone sample counts sum to %d, stream has %d", total, len(sc.Samples))
	}
	if tasksTotal != len(tasks) {
		t.Fatalf("ShardDone task counts sum to %d, want %d", tasksTotal, len(tasks))
	}

	// Per-shard staging must be invisible in the end state: the staged
	// snapshots merge back into the main registry at emission.
	plainText := plainReg.Snapshot().Deterministic().Text()
	shardText := shardReg.Snapshot().Deterministic().Text()
	if plainText != shardText {
		t.Fatalf("staging changed the deterministic snapshot:\n--- plain ---\n%s\n--- shard-sink ---\n%s", plainText, shardText)
	}
}

// TestResumeSkipsPrefix: resuming past k shards emits exactly the
// suffix of the canonical stream, and the outage/coverage accounting —
// recomputed over all shards, skipped included — matches the full run.
func TestResumeSkipsPrefix(t *testing.T) {
	domains, countries := smallInputs(40)
	tasks := skewedTasks(len(domains), len(countries))
	cfg := testConfig()
	cfg.Concurrency = 8

	var full shardCollect
	if err := Run(context.Background(), testNet, domains, countries, tasks, cfg, &full); err != nil {
		t.Fatal(err)
	}
	if len(full.Dones) < 3 {
		t.Fatalf("workload built only %d shards; test needs a longer prefix", len(full.Dones))
	}

	for _, skip := range []int{1, len(full.Dones) / 2, len(full.Dones)} {
		lost := make([]OutageReason, skip)
		skipped := 0
		for i := 0; i < skip; i++ {
			lost[i] = full.Dones[i].Lost
			skipped += full.Dones[i].Samples
		}
		rcfg := cfg
		rcfg.Resume = &Resume{Shards: skip, Lost: lost}
		var part Collect
		if err := Run(context.Background(), testNet, domains, countries, tasks, rcfg, &part); err != nil {
			t.Fatalf("skip %d: %v", skip, err)
		}
		if want := len(full.Samples) - skipped; len(part.Samples) != want {
			t.Fatalf("skip %d: emitted %d samples, want %d", skip, len(part.Samples), want)
		}
		for i := range part.Samples {
			if part.Samples[i] != full.Samples[skipped+i] {
				t.Fatalf("skip %d: sample %d is not the canonical suffix", skip, i)
			}
		}
		if len(part.Outages) != len(full.Outages) {
			t.Fatalf("skip %d: %d outages, full run had %d", skip, len(part.Outages), len(full.Outages))
		}
		if part.Coverage.Requested != full.Coverage.Requested ||
			part.Coverage.Attained != full.Coverage.Attained ||
			part.Coverage.TasksLost != full.Coverage.TasksLost {
			t.Fatalf("skip %d: coverage %+v, full run %+v", skip, part.Coverage, full.Coverage)
		}
	}
}
