// The session layer: sticky proxy-session acquisition, the
// connectivity pre-check loop, and per-exit budget rotation.
package scanner

import (
	"geoblock/internal/geo"
	"geoblock/internal/proxy"
)

// DefaultVerifyProbes bounds the connectivity pre-check loop on a
// fresh exit, so a fully dark inventory degrades into plain failures
// rather than spinning.
const DefaultVerifyProbes = 5

// RetryPolicy is the session layer's contract, extracted from the old
// fetchWithRetries: how many times a failed sample is retried, when
// the exit budget forces rotation, and how hard to probe for a live
// exit before giving up on the pre-check.
type RetryPolicy struct {
	// Retries per failed sample (attempts = 1 + Retries).
	Retries int
	// RequestsPerExit bounds per-exit load before rotation (paper: 10).
	RequestsPerExit int
	// VerifyProbes bounds the pre-check loop on a fresh exit.
	VerifyProbes int
	// VerifyConnectivity enables the platform echo check.
	VerifyConnectivity bool
}

// session wraps a sticky proxy.Session with the policy-driven
// housekeeping every attempt needs. Like proxy.Session it is owned by
// a single shard and is not safe for concurrent use.
type session struct {
	s   *proxy.Session
	pol RetryPolicy
}

// openSession acquires a sticky session for cc starting at the
// deterministic slot.
func openSession(net *proxy.Network, cc geo.CountryCode, slot uint64, pol RetryPolicy) (*session, error) {
	if pol.VerifyProbes <= 0 {
		pol.VerifyProbes = DefaultVerifyProbes
	}
	s, err := net.NewSession(cc, slot)
	if err != nil {
		return nil, err
	}
	return &session{s: s, pol: pol}, nil
}

// ready prepares the current exit for one attempt: rotates when the
// per-exit budget is spent, then runs the connectivity pre-check on
// whatever fresh exit the session lands on.
func (se *session) ready(seed uint64) {
	if se.s.Used() >= se.pol.RequestsPerExit {
		se.s.Rotate()
	}
	if se.pol.VerifyConnectivity && se.s.Used() == 0 {
		for probe := 0; probe < se.pol.VerifyProbes; probe++ {
			if _, _, err := se.s.Verify(seed + uint64(probe)); err == nil {
				break
			}
			se.s.Rotate()
		}
	}
}

// rotate abandons the current exit (after a failed attempt).
func (se *session) rotate() { se.s.Rotate() }

// exitIP is the address of the exit the next attempt will use.
func (se *session) exitIP() geo.IP { return se.s.Exit().IP }

// transport exposes the raw session as the fetcher's RoundTripper.
func (se *session) transport() *proxy.Session { return se.s }

// fetchReliable performs one logical sample under the policy: up to
// 1+Retries attempts, rotating the exit between attempts and whenever
// the per-exit budget is spent. Luminati refusals are terminal — the
// platform's answer will not change with another exit.
func fetchReliable(f *fetcher, se *session, domain string, seed uint64, t Task, attempt uint8) Sample {
	var last Sample
	for try := 0; try <= se.pol.Retries; try++ {
		se.ready(seed)
		trySeed := seed + uint64(try)*0x9e3779b97f4a7c15
		last = f.fetch(domain, trySeed, t, attempt, se.exitIP())
		if last.Err == ErrNone || last.Err == ErrLuminati {
			return last
		}
		se.rotate()
	}
	return last
}
