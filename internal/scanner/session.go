// The session layer: sticky proxy-session acquisition, the
// connectivity pre-check loop, per-exit budget rotation, and the
// circuit breaker that keeps a dark country from eating the retry
// budget of every sample in a shard.
package scanner

import (
	"errors"
	"time"

	"geoblock/internal/geo"
	"geoblock/internal/proxy"
	"geoblock/internal/telemetry"
)

// DefaultVerifyProbes bounds the connectivity pre-check loop on a
// fresh exit, so a fully dark inventory degrades into plain failures
// rather than spinning.
const DefaultVerifyProbes = 5

// RetryPolicy is the session layer's contract, extracted from the old
// fetchWithRetries: how many times a failed sample is retried, when
// the exit budget forces rotation, and how hard to probe for a live
// exit before giving up on the pre-check.
type RetryPolicy struct {
	// Retries per failed sample (attempts = 1 + Retries).
	Retries int
	// RequestsPerExit bounds per-exit load before rotation (paper: 10).
	RequestsPerExit int
	// VerifyProbes bounds the pre-check loop on a fresh exit.
	VerifyProbes int
	// VerifyConnectivity enables the platform echo check.
	VerifyConnectivity bool
	// BreakerSweeps is the circuit-breaker threshold: how many
	// consecutive all-fail connectivity sweeps (with no success ever)
	// mark the country dead for the shard. Zero takes
	// DefaultBreakerSweeps.
	BreakerSweeps int
	// OpenRetries bounds session-open attempts against a browned-out
	// superproxy. Zero takes DefaultOpenRetries.
	OpenRetries int
	// Sleep, when non-nil, receives each backoff wait. Nil keeps time
	// virtual: the backoff schedule is computed but nothing blocks.
	Sleep func(time.Duration)
}

func (pol RetryPolicy) withDefaults() RetryPolicy {
	if pol.VerifyProbes <= 0 {
		pol.VerifyProbes = DefaultVerifyProbes
	}
	if pol.BreakerSweeps <= 0 {
		pol.BreakerSweeps = DefaultBreakerSweeps
	}
	if pol.OpenRetries <= 0 {
		pol.OpenRetries = DefaultOpenRetries
	}
	return pol
}

// session wraps a sticky proxy.Session with the policy-driven
// housekeeping every attempt needs. Like proxy.Session it is owned by
// a single shard and is not safe for concurrent use.
type session struct {
	s   *proxy.Session
	pol RetryPolicy
	h   health
	reg *telemetry.Registry
}

// openSession acquires a sticky session for cc starting at the
// deterministic slot. Superproxy brownouts are retried under
// decorrelated-jitter backoff (they clear); every other failure —
// ErrNoExits above all — is final. reg (nil-safe) tallies attempts,
// brownouts, and the computed backoff waits.
func openSession(net *proxy.Network, cc geo.CountryCode, slot uint64, pol RetryPolicy, reg *telemetry.Registry) (*session, error) {
	pol = pol.withDefaults()
	bo := newBackoff(slot, pol.Sleep)
	var lastErr error
	for attempt := 0; attempt <= pol.OpenRetries; attempt++ {
		reg.Counter(MetOpenAttempts).Add(1)
		s, err := net.NewSessionAttempt(cc, slot, attempt)
		if err == nil {
			return &session{s: s, pol: pol, reg: reg}, nil
		}
		lastErr = err
		var brown *proxy.ErrBrownout
		if !errors.As(err, &brown) {
			return nil, err
		}
		reg.Counter(MetBrownouts).Add(1)
		if attempt < pol.OpenRetries {
			d := bo.wait()
			// The schedule is a pure function of the slot, so the
			// histogram is deterministic-class even though it records
			// durations.
			reg.Histogram(MetBackoff, 0, float64(backoffCap/time.Millisecond), 16).
				Observe(float64(d) / float64(time.Millisecond))
		}
	}
	return nil, lastErr
}

// ready prepares the current exit for one attempt: rotates when the
// per-exit budget is spent, then runs the connectivity pre-check on
// whatever fresh exit the session lands on. It reports false once the
// circuit breaker has concluded the country is dark — the verdict is
// cached for the shard, so a dead country costs BreakerSweeps sweeps
// total instead of a full probe loop per attempt.
func (se *session) ready(seed uint64) bool {
	if se.h.dead {
		return false
	}
	if se.s.Used() >= se.pol.RequestsPerExit {
		se.s.Rotate()
		se.reg.Counter(MetRotations).Add(1)
	}
	if se.pol.VerifyConnectivity && se.s.Used() == 0 {
		probes := se.pol.VerifyProbes
		if n := se.s.InventorySize(); n < probes {
			probes = n // extra probes would only revisit exits already seen
		}
		found := false
		for probe := 0; probe < probes; probe++ {
			se.reg.Counter(MetProbes).Add(1)
			if _, _, err := se.s.Verify(seed + uint64(probe)); err == nil {
				found = true
				break
			}
			se.s.Rotate()
		}
		if found {
			se.h.success()
		} else {
			se.reg.Counter(MetFailedSweeps).Add(1)
			if se.h.failedSweep(se.pol.BreakerSweeps) {
				if se.h.dead {
					se.reg.Counter(MetBreakerTrips).Add(1)
				}
				return false
			}
		}
	}
	return true
}

// rotate abandons the current exit (after a failed attempt).
func (se *session) rotate() {
	se.s.Rotate()
	se.reg.Counter(MetRotations).Add(1)
}

// dark reports whether the circuit breaker wrote the country off.
func (se *session) dark() bool { return se.h.dead }

// exitIP is the address of the exit the next attempt will use.
func (se *session) exitIP() geo.IP { return se.s.Exit().IP }

// transport exposes the raw session as the fetcher's RoundTripper.
func (se *session) transport() *proxy.Session { return se.s }

// fetchReliable performs one logical sample under the policy: up to
// 1+Retries attempts, rotating the exit between attempts and whenever
// the per-exit budget is spent. Luminati refusals are terminal — the
// platform's answer will not change with another exit. A tripped
// circuit breaker short-circuits the whole sample to ErrNoExits.
func fetchReliable(f *fetcher, se *session, domain string, seed uint64, t Task, attempt uint8) Sample {
	var last Sample
	for try := 0; try <= se.pol.Retries; try++ {
		if try > 0 {
			se.reg.Counter(MetRetries).Add(1)
		}
		if !se.ready(seed) {
			return Sample{Domain: t.Domain, Country: t.Country, Attempt: attempt, Err: ErrNoExits}
		}
		trySeed := seed + uint64(try)*0x9e3779b97f4a7c15
		last = f.fetch(domain, trySeed, t, attempt, se.exitIP())
		if last.Err == ErrNone || last.Err == ErrLuminati {
			se.h.success()
			return last
		}
		se.rotate()
	}
	return last
}
