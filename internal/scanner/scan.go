// The engine: wires scheduler, session, fetcher, and sink together
// for residential-mesh scans.
package scanner

import (
	"context"
	"errors"
	"fmt"

	"geoblock/internal/geo"
	"geoblock/internal/proxy"
	"geoblock/internal/telemetry"
	"geoblock/internal/trace"
)

// Run measures tasks through the proxy mesh, streaming samples into
// sink in canonical country-major, task-order sequence. It returns
// ctx.Err() if the scan was cancelled (in which case the sink holds a
// prefix of the full run), nil otherwise.
//
// Degradation contract: a country whose exits are exhausted — empty
// inventory, a superproxy that never accepts a session, or a dark
// inventory the circuit breaker writes off — still emits its samples
// (as ErrNoExits), and a sink that implements OutageSink additionally
// receives one typed Outage per affected country followed by the
// run's Coverage summary.
func Run(ctx context.Context, net *proxy.Network, domains []string, countries []geo.CountryCode, tasks []Task, cfg Config, sink Sink) error {
	cfg = cfg.withDefaults()
	pol := cfg.retryPolicy()

	shards := buildCountryShards(countries, tasks, cfg)
	skip, err := resumePrefix(cfg, shards)
	if err != nil {
		return err
	}
	_, journaling := sink.(ShardSink)

	sp := startScanSpan(cfg)
	scanCtx := ScanTraceCtx(cfg)
	nameOf := func(sh *shard) string { return string(countries[sh.group]) }
	run := func(ctx context.Context, sh *shard) {
		// One country-span activation per shard: activations merge by
		// name, so the node's count reads "shards run" and its outcome
		// tally aggregates per-shard fates.
		sh.country = nameOf(sh)
		csp := sp.StartSpan(sh.country)
		scfg := cfg
		if journaling && cfg.Metrics != nil {
			// Stage this shard's session and fetch metrics in a
			// shard-local registry so ShardDone can carry exactly this
			// shard's contribution; the emitter merges it back.
			sh.staging = telemetry.NewWithClock(cfg.Metrics.Clock())
			scfg.Metrics = sh.staging
		}
		tb := unitBuffer(scanCtx, sh.seq, cfg)
		sh.out = scanShard(ctx, net, domains, countries, sh, scfg, pol, tb)
		sh.events = tb.Events()
		if sh.lost == OutageNone {
			csp.Outcome("ok")
		} else {
			csp.Outcome(sh.lost.String())
		}
		csp.End()
	}
	creditSkipped(cfg, sp, shards[:skip], nameOf)
	em := newEmitter(sink, shards, skip, cfg.Metrics, cfg.Trace, scanCtx, cfg.Phase)
	err = schedule(ctx, shards, skip, cfg.Concurrency, run, em)
	sp.End()
	if err != nil {
		return err
	}
	os, isOutageSink := sink.(OutageSink)
	if isOutageSink || cfg.Metrics != nil || cfg.Trace != nil {
		outages, cov := accountOutages(shards, countries)
		countOutages(cfg.Metrics, outages, cov)
		recordScanTail(cfg.Trace, scanCtx, cfg.Phase, outages, len(shards))
		if isOutageSink {
			for _, o := range outages {
				os.EmitOutage(o)
			}
			os.EmitCoverage(cov)
		}
	}
	return nil
}

// startScanSpan opens the engine's "scan/<phase>" span, nesting under
// cfg.Span when the pipeline provided its phase span as parent.
func startScanSpan(cfg Config) *telemetry.Span {
	name := "scan/" + cfg.Phase
	if cfg.Span != nil {
		return cfg.Span.StartSpan(name)
	}
	return cfg.Metrics.StartSpan(name)
}

// countOutages mirrors the outage accounting into the registry.
func countOutages(reg *telemetry.Registry, outages []Outage, cov Coverage) {
	if reg == nil {
		return
	}
	for _, o := range outages {
		reg.Counter(telemetry.Label(MetOutages, "reason", o.Reason.String())).Add(1)
	}
	reg.Counter(MetOutagesTotal).Add(int64(len(outages)))
	reg.Counter(MetCovRequested).Add(int64(cov.Requested))
	reg.Counter(MetCovAttained).Add(int64(cov.Attained))
	reg.Counter(MetCovTasksLost).Add(int64(cov.TasksLost))
}

// resumePrefix validates cfg.Resume against the freshly built shard
// set and stamps the restored loss records onto the skipped prefix, so
// the end-of-run outage and coverage accounting — which walks all
// shards — reproduces the uninterrupted run's records exactly.
func resumePrefix(cfg Config, shards []*shard) (int, error) {
	r := cfg.Resume
	if r == nil {
		return 0, nil
	}
	if r.Shards < 0 || r.Shards > len(shards) {
		return 0, fmt.Errorf("scanner: resume prefix of %d shards outside 0..%d", r.Shards, len(shards))
	}
	if len(r.Lost) != r.Shards {
		return 0, fmt.Errorf("scanner: resume carries %d loss records for %d shards", len(r.Lost), r.Shards)
	}
	for i := 0; i < r.Shards; i++ {
		shards[i].lost = r.Lost[i]
	}
	return r.Shards, nil
}

// creditSkipped restores the per-shard accounting a live run of the
// skipped prefix would have produced: one country-span activation with
// its outcome per shard, plus the shards-done counter. The prefix's
// samples and session/fetch metrics are restored separately by the
// journal's replay (see internal/runstore), keeping the deterministic
// telemetry view identical to an uninterrupted run.
func creditSkipped(cfg Config, sp *telemetry.Span, skipped []*shard, name func(*shard) string) {
	for _, sh := range skipped {
		csp := sp.StartSpan(name(sh))
		if sh.lost == OutageNone {
			csp.Outcome("ok")
		} else {
			csp.Outcome(sh.lost.String())
		}
		csp.End()
	}
	if len(skipped) > 0 {
		cfg.Metrics.Counter(MetShardsDone).Add(int64(len(skipped)))
	}
}

// Scan is the collecting form of Run: it materializes the full Result.
// A cancelled scan returns the samples emitted so far alongside
// ctx.Err().
func Scan(ctx context.Context, net *proxy.Network, domains []string, countries []geo.CountryCode, tasks []Task, cfg Config) (*Result, error) {
	var c Collect
	err := Run(ctx, net, domains, countries, tasks, cfg, &c)
	return &Result{Domains: domains, Countries: countries, Samples: c.Samples, Outages: c.Outages, Coverage: c.Coverage}, err
}

// scanShard runs one shard's tasks through its own sticky session,
// recording on the shard why (if at all) its tasks were lost. tb,
// when non-nil, stages the shard's trace events — session open, one
// wide record per fetch, and the closing unit event.
func scanShard(ctx context.Context, net *proxy.Network, domains []string, countries []geo.CountryCode, sh *shard, cfg Config, pol RetryPolicy, tb *trace.Buffer) []Sample {
	out := make([]Sample, 0, len(sh.tasks)*cfg.Samples)
	cc := countries[sh.group]
	unitStart := tb.Wall()

	se, err := openSession(net, cc, sh.slot, pol, cfg.Metrics)
	if tb != nil {
		ev := trace.NewEvent(tb.Ctx().Child("session.open", 0), "session.open")
		ev.Unit = sh.seq
		ev.Country = string(cc)
		ev.Phase = cfg.Phase
		if err == nil {
			ev.Outcome = "ok"
		} else {
			ev.Outcome = "error"
		}
		ev.WallNS = unitStart
		ev.WallDurNS = tb.Wall() - unitStart
		tb.Record(ev)
	}
	if err != nil {
		var brown *proxy.ErrBrownout
		if errors.As(err, &brown) {
			sh.lost = OutageBrownout
		} else {
			sh.lost = OutageNoExits
		}
		for _, t := range sh.tasks {
			for a := 0; a < cfg.Samples; a++ {
				out = append(out, Sample{Domain: t.Domain, Country: t.Country, Attempt: uint8(a), Err: ErrNoExits})
			}
		}
		closeUnit(tb, sh, cfg, string(cc), len(out), unitStart)
		return out
	}

	f := newFetcher(ctx, se.transport(), cfg)
	for ti, t := range sh.tasks {
		if ctx.Err() != nil {
			return out
		}
		domain := domains[t.Domain]
		for a := 0; a < cfg.Samples; a++ {
			seed := sampleSeed(domain, string(cc), cfg.Phase, a)
			if tb == nil {
				out = append(out, fetchReliable(f, se, domain, seed, t, uint8(a)))
				continue
			}
			fetchStart := tb.Wall()
			s := fetchReliable(f, se, domain, seed, t, uint8(a))
			out = append(out, s)
			recordFetch(tb, sh, cfg, string(cc), domain, ti*cfg.Samples+a, s, fetchStart)
		}
	}
	if se.dark() {
		sh.lost = OutageDark
	}
	closeUnit(tb, sh, cfg, string(cc), len(out), unitStart)
	return out
}

// accountOutages folds per-shard loss records into per-country Outage
// entries (scan order) and the run's Coverage summary. It runs after
// the pool drains, on the caller's goroutine, so the sink's
// no-locking contract is untouched.
func accountOutages(shards []*shard, countries []geo.CountryCode) ([]Outage, Coverage) {
	type tally struct {
		total, lost, tasks int
		byReason           [OutageDark + 1]int
	}
	tallies := make([]tally, len(countries))
	requested := make([]bool, len(countries))
	for _, sh := range shards {
		t := &tallies[sh.group]
		t.total++
		requested[sh.group] = true
		if sh.lost != OutageNone {
			t.lost++
			t.tasks += len(sh.tasks)
			t.byReason[sh.lost]++
		}
	}

	var outages []Outage
	var cov Coverage
	for g, t := range tallies {
		if !requested[g] {
			continue
		}
		cov.Requested++
		if t.lost == 0 {
			cov.Attained++
			continue
		}
		reason := OutageNoExits
		for r := OutageNoExits; r <= OutageDark; r++ {
			if t.byReason[r] > t.byReason[reason] {
				reason = r
			}
		}
		outages = append(outages, Outage{
			Country:     countries[g],
			Reason:      reason,
			Shards:      t.lost,
			ShardsTotal: t.total,
			Tasks:       t.tasks,
		})
		cov.TasksLost += t.tasks
		if t.lost == t.total {
			cov.Lost = append(cov.Lost, countries[g])
		} else {
			cov.Attained++
		}
	}
	return outages, cov
}
