// The engine: wires scheduler, session, fetcher, and sink together
// for residential-mesh scans.
package scanner

import (
	"context"

	"geoblock/internal/geo"
	"geoblock/internal/proxy"
)

// Run measures tasks through the proxy mesh, streaming samples into
// sink in canonical country-major, task-order sequence. It returns
// ctx.Err() if the scan was cancelled (in which case the sink holds a
// prefix of the full run), nil otherwise.
func Run(ctx context.Context, net *proxy.Network, domains []string, countries []geo.CountryCode, tasks []Task, cfg Config, sink Sink) error {
	cfg = cfg.withDefaults()
	pol := cfg.retryPolicy()

	byCountry := make([][]Task, len(countries))
	for _, t := range tasks {
		byCountry[t.Country] = append(byCountry[t.Country], t)
	}
	shards := buildShards(byCountry, cfg.ShardSize, func(group int16, index int) uint64 {
		return shardSlot(string(countries[group]), cfg.Phase, index)
	})

	run := func(ctx context.Context, sh *shard) {
		sh.out = scanShard(ctx, net, domains, countries, sh, cfg, pol)
	}
	return schedule(ctx, shards, cfg.Concurrency, run, sink)
}

// Scan is the collecting form of Run: it materializes the full Result.
// A cancelled scan returns the samples emitted so far alongside
// ctx.Err().
func Scan(ctx context.Context, net *proxy.Network, domains []string, countries []geo.CountryCode, tasks []Task, cfg Config) (*Result, error) {
	var c Collect
	err := Run(ctx, net, domains, countries, tasks, cfg, &c)
	return &Result{Domains: domains, Countries: countries, Samples: c.Samples}, err
}

// scanShard runs one shard's tasks through its own sticky session.
func scanShard(ctx context.Context, net *proxy.Network, domains []string, countries []geo.CountryCode, sh *shard, cfg Config, pol RetryPolicy) []Sample {
	out := make([]Sample, 0, len(sh.tasks)*cfg.Samples)
	cc := countries[sh.group]

	se, err := openSession(net, cc, sh.slot, pol)
	if err != nil {
		for _, t := range sh.tasks {
			for a := 0; a < cfg.Samples; a++ {
				out = append(out, Sample{Domain: t.Domain, Country: t.Country, Attempt: uint8(a), Err: ErrNoExits})
			}
		}
		return out
	}

	f := newFetcher(ctx, se.transport(), cfg)
	for _, t := range sh.tasks {
		if ctx.Err() != nil {
			return out
		}
		domain := domains[t.Domain]
		for a := 0; a < cfg.Samples; a++ {
			seed := sampleSeed(domain, string(cc), cfg.Phase, a)
			out = append(out, fetchReliable(f, se, domain, seed, t, uint8(a)))
		}
	}
	return out
}
