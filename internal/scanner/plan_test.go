package scanner

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

// planInputs is a multi-shard, multi-country workload small enough to
// execute unit-by-unit in a test.
func planInputs() ([]string, []Task, Config) {
	domains, countries := smallInputs(24)
	cfg := testConfig()
	cfg.ShardSize = 8
	return domains, CrossProduct(len(domains), len(countries)), cfg
}

// TestPlanMatchesRun is the plan layer's identity contract: executing
// every unit out of order through an Assembly reproduces the exact
// samples, outages, and coverage of the one-shot engine.
func TestPlanMatchesRun(t *testing.T) {
	domains, tasks, cfg := planInputs()
	_, countries := smallInputs(24)

	ref, err := Scan(context.Background(), testNet, domains, countries, tasks, cfg)
	if err != nil {
		t.Fatal(err)
	}

	p := NewPlan(domains, countries, tasks, cfg)
	if p.NumUnits() == 0 {
		t.Fatal("plan has no units")
	}
	var col Collect
	asm, err := NewAssembly(p, &col)
	if err != nil {
		t.Fatal(err)
	}
	pending := asm.Pending()
	if len(pending) != p.NumUnits() {
		t.Fatalf("Pending lists %d units, plan has %d", len(pending), p.NumUnits())
	}
	// Complete in reverse canonical order: the assembly's reorder
	// frontier must hold everything back and still emit canonically.
	for i := len(pending) - 1; i >= 0; i-- {
		seq := pending[i]
		res, err := p.ExecuteUnit(context.Background(), testNet, seq)
		if err != nil {
			t.Fatalf("unit %d: %v", seq, err)
		}
		if asm.Done() && i > 0 {
			t.Fatal("assembly done with completions outstanding")
		}
		if err := asm.Complete(seq, res); err != nil {
			t.Fatalf("complete %d: %v", seq, err)
		}
	}
	if !asm.Done() {
		t.Fatal("assembly not done after every completion")
	}
	if err := asm.Finish(); err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(col.Samples, ref.Samples) {
		t.Fatalf("plan-executed samples diverge from Scan (%d vs %d)", len(col.Samples), len(ref.Samples))
	}
	if !reflect.DeepEqual(col.Outages, ref.Outages) {
		t.Fatalf("outages diverge:\n%+v\n%+v", col.Outages, ref.Outages)
	}
	if !reflect.DeepEqual(col.Coverage, ref.Coverage) {
		t.Fatalf("coverage diverges:\n%+v\n%+v", col.Coverage, ref.Coverage)
	}
}

// TestPlanFingerprints: two plans over the same inputs agree on every
// fingerprint; any identity-bearing change — sampling parameters, task
// contents — moves them. Concurrency deliberately does not.
func TestPlanFingerprints(t *testing.T) {
	domains, tasks, cfg := planInputs()
	_, countries := smallInputs(24)

	a := NewPlan(domains, countries, tasks, cfg)
	b := NewPlan(domains, countries, tasks, cfg)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical inputs produced different plan fingerprints")
	}
	ua, ub := a.Units(), b.Units()
	if !reflect.DeepEqual(ua, ub) {
		t.Fatal("identical inputs produced different unit sets")
	}
	for i, u := range ua {
		if u.Seq != i {
			t.Fatalf("unit %d carries seq %d", i, u.Seq)
		}
		if u.Fingerprint == 0 {
			t.Fatalf("unit %d has a zero fingerprint", i)
		}
	}

	conc := cfg
	conc.Concurrency = 17
	if NewPlan(domains, countries, tasks, conc).Fingerprint() != a.Fingerprint() {
		t.Fatal("Concurrency moved the plan fingerprint; it must be free to vary")
	}

	moved := cfg
	moved.Samples = cfg.Samples + 1
	if NewPlan(domains, countries, tasks, moved).Fingerprint() == a.Fingerprint() {
		t.Fatal("changing Samples did not move the plan fingerprint")
	}

	swapped := append([]string(nil), domains...)
	swapped[0], swapped[1] = swapped[1], swapped[0]
	if NewPlan(swapped, countries, tasks, cfg).Units()[0].Fingerprint == ua[0].Fingerprint {
		t.Fatal("changing a unit's task contents did not move its fingerprint")
	}
}

// TestExecuteUnitRepeatable: a unit is a pure function of the plan — a
// re-issued lease executing it again gets byte-identical samples.
func TestExecuteUnitRepeatable(t *testing.T) {
	domains, tasks, cfg := planInputs()
	_, countries := smallInputs(24)
	p := NewPlan(domains, countries, tasks, cfg)

	r1, err := p.ExecuteUnit(context.Background(), testNet, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p.ExecuteUnit(context.Background(), testNet, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Samples, r2.Samples) || r1.Lost != r2.Lost {
		t.Fatal("re-executing a unit produced different output")
	}

	if _, err := p.ExecuteUnit(context.Background(), testNet, p.NumUnits()); err == nil {
		t.Fatal("out-of-range unit executed")
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.ExecuteUnit(cancelled, testNet, 0); err == nil {
		t.Fatal("cancelled context executed a unit")
	}
}

// TestAssemblyRejections: the completion bookkeeping that keeps a
// distributed run honest — duplicates, strays, and premature or double
// finishes all error without disturbing the stream.
func TestAssemblyRejections(t *testing.T) {
	domains, tasks, cfg := planInputs()
	_, countries := smallInputs(24)
	p := NewPlan(domains, countries, tasks, cfg)
	var col Collect
	asm, err := NewAssembly(p, &col)
	if err != nil {
		t.Fatal(err)
	}

	if err := asm.Finish(); err == nil || !strings.Contains(err.Error(), "outstanding") {
		t.Fatalf("premature finish: err = %v", err)
	}
	res, err := p.ExecuteUnit(context.Background(), testNet, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := asm.Complete(p.NumUnits(), res); err == nil {
		t.Fatal("out-of-range completion accepted")
	}
	if err := asm.Complete(0, res); err != nil {
		t.Fatal(err)
	}
	if err := asm.Complete(0, res); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate completion: err = %v", err)
	}

	for _, seq := range asm.Pending()[1:] {
		r, err := p.ExecuteUnit(context.Background(), testNet, seq)
		if err != nil {
			t.Fatal(err)
		}
		if err := asm.Complete(seq, r); err != nil {
			t.Fatal(err)
		}
	}
	if err := asm.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := asm.Finish(); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("double finish: err = %v", err)
	}
	if err := asm.Complete(1, res); err == nil || !strings.Contains(err.Error(), "finished") {
		t.Fatalf("completion after finish: err = %v", err)
	}
}

// TestAssemblyAbort: the cancellation path closes the span without the
// end-of-run accounting and stays idempotent.
func TestAssemblyAbort(t *testing.T) {
	domains, tasks, cfg := planInputs()
	_, countries := smallInputs(24)
	p := NewPlan(domains, countries, tasks, cfg)
	var col Collect
	asm, err := NewAssembly(p, &col)
	if err != nil {
		t.Fatal(err)
	}
	asm.Abort()
	asm.Abort() // second abort is a no-op, not a double-close panic
	if err := asm.Complete(0, UnitResult{}); err == nil {
		t.Fatal("completion accepted after abort")
	}
	if len(col.Outages) != 0 || col.Coverage.Requested != 0 {
		t.Fatal("abort ran the end-of-run accounting")
	}
}
