// Metric names for the scan engine's telemetry, one constant per
// series so instrumentation sites and tests never drift on spelling.
// The split between deterministic and runtime classes follows the
// package determinism contract: a deterministic metric is a pure
// function of the scan inputs (identical at any Concurrency); a
// runtime metric describes one particular schedule and is registered
// through the Runtime* constructors so Snapshot.Deterministic strips
// it.
package scanner

import (
	"fmt"
	"time"

	"geoblock/internal/telemetry"
)

const (
	// Scheduler layer.
	MetShardsScheduled = "scanner.sched.shards_scheduled"
	MetShardsDone      = "scanner.sched.shards_done"
	MetSteals          = "scanner.sched.steals"  // runtime: depends on worker timing
	MetWorkers         = "scanner.sched.workers" // runtime gauge

	// Sink layer (counted at canonical-order delivery).
	MetSinkSamples = "scanner.sink.samples"
	MetSinkBytes   = "scanner.sink.body_bytes"

	// Fetcher layer.
	MetFetchAttempts = "scanner.fetch.attempts"
	MetFetchResults  = "scanner.fetch.results"    // + {code=<ErrCode>}
	MetFetchLatency  = "scanner.fetch.latency_ms" // runtime histogram
	MetFetchBytes    = "scanner.fetch.body_bytes"

	// Session layer.
	MetOpenAttempts = "scanner.session.open_attempts"
	MetBrownouts    = "scanner.session.brownouts"
	MetBackoff      = "scanner.session.backoff_ms"
	MetRetries      = "scanner.session.retries"
	MetRotations    = "scanner.session.rotations"
	MetProbes       = "scanner.session.precheck_probes"
	MetFailedSweeps = "scanner.session.failed_sweeps"
	MetBreakerTrips = "scanner.session.breaker_trips"

	// Outage accounting.
	MetOutages      = "scanner.outages" // + {reason=<OutageReason>}
	MetOutagesTotal = "scanner.outages_total"
	MetCovRequested = "scanner.coverage.requested"
	MetCovAttained  = "scanner.coverage.attained"
	MetCovTasksLost = "scanner.coverage.tasks_lost"
)

// fetchMetrics caches the fetcher's metric handles so the per-attempt
// hot path does no name lookups: result counters are an array indexed
// by ErrCode. Nil when the scan carries no registry.
type fetchMetrics struct {
	reg      *telemetry.Registry
	attempts *telemetry.Counter
	results  [errCodeCount]*telemetry.Counter
	latency  *telemetry.Histogram
	bytes    *telemetry.Histogram
}

func newFetchMetrics(reg *telemetry.Registry) *fetchMetrics {
	if reg == nil {
		return nil
	}
	m := &fetchMetrics{reg: reg, attempts: reg.Counter(MetFetchAttempts)}
	for e := 0; e < errCodeCount; e++ {
		m.results[e] = reg.Counter(telemetry.Label(MetFetchResults, "code", ErrCode(e).String()))
	}
	// Latency is wall-schedule dependent; body size is not.
	m.latency = reg.RuntimeHistogram(MetFetchLatency, 0, 2000, 20)
	m.bytes = reg.Histogram(MetFetchBytes, 0, 65536, 16)
	return m
}

// observe records one completed fetch attempt.
func (m *fetchMetrics) observe(s *Sample, d time.Duration) {
	m.attempts.Add(1)
	if int(s.Err) < len(m.results) {
		m.results[s.Err].Add(1)
	}
	m.latency.Observe(float64(d) / float64(time.Millisecond))
	if s.Err == ErrNone {
		m.bytes.Observe(float64(s.BodyLen))
	}
}

// ProgressLine renders the one-line scan progress summary the CLIs
// print to stderr: shard progress, outages, and retry pressure.
func ProgressLine(reg *telemetry.Registry) string {
	done := reg.Counter(MetShardsDone).Value()
	total := reg.Counter(MetShardsScheduled).Value()
	outages := reg.Counter(MetOutagesTotal).Value()
	attempts := reg.Counter(MetFetchAttempts).Value()
	retries := reg.Counter(MetRetries).Value()
	rate := 0.0
	if attempts > 0 {
		rate = 100 * float64(retries) / float64(attempts)
	}
	return fmt.Sprintf("scan: shards %d/%d · outages %d · retry rate %.1f%% (%d attempts) · samples %d",
		done, total, outages, rate, attempts, reg.Counter(MetSinkSamples).Value())
}
