package scanner

import (
	"context"
	"errors"
	"testing"

	"geoblock/internal/geo"
	"geoblock/internal/proxy"
	"geoblock/internal/vnet"
	"geoblock/internal/worldgen"
)

var (
	testWorld = worldgen.Generate(worldgen.TestConfig())
	testNet   = proxy.NewNetwork(testWorld)
)

func testConfig() Config {
	return Config{
		Samples:            3,
		Retries:            2,
		RequestsPerExit:    10,
		MaxRedirects:       10,
		Headers:            BrowserHeaders(),
		Phase:              "scanner-test",
		VerifyConnectivity: true,
	}
}

func smallInputs(n int) ([]string, []geo.CountryCode) {
	var domains []string
	for _, d := range testWorld.Top10K()[:n] {
		domains = append(domains, d.Name)
	}
	return domains, []geo.CountryCode{"US", "DE", "IR", "SY", "BR"}
}

// skewedTasks builds a country-skewed workload: country 0 carries 10×
// the tasks of every other country — the shape that serialized the old
// one-worker-per-country engine.
func skewedTasks(nDomains, nCountries int) []Task {
	var tasks []Task
	for d := 0; d < nDomains; d++ {
		tasks = append(tasks, Task{Domain: int32(d), Country: 0})
	}
	for c := 1; c < nCountries; c++ {
		for d := 0; d < nDomains/10; d++ {
			tasks = append(tasks, Task{Domain: int32(d), Country: int16(c)})
		}
	}
	return tasks
}

// TestDeterminismAcrossConcurrency is the engine's core contract: the
// Result (sample order, seeds, exits — every byte) is identical for
// any worker count.
func TestDeterminismAcrossConcurrency(t *testing.T) {
	domains, countries := smallInputs(64)
	tasks := skewedTasks(len(domains), len(countries))

	var base *Result
	for _, conc := range []int{1, 4, 32} {
		cfg := testConfig()
		cfg.Concurrency = conc
		res, err := Scan(context.Background(), testNet, domains, countries, tasks, cfg)
		if err != nil {
			t.Fatalf("concurrency %d: %v", conc, err)
		}
		if base == nil {
			base = res
			continue
		}
		if len(res.Samples) != len(base.Samples) {
			t.Fatalf("concurrency %d: %d samples, want %d", conc, len(res.Samples), len(base.Samples))
		}
		for i := range res.Samples {
			if res.Samples[i] != base.Samples[i] {
				t.Fatalf("concurrency %d: sample %d differs:\n%+v\n%+v",
					conc, i, res.Samples[i], base.Samples[i])
			}
		}
	}
}

// TestCanonicalOrder pins the output ordering contract: country-major,
// then task order, then attempt — regardless of scheduling.
func TestCanonicalOrder(t *testing.T) {
	domains, countries := smallInputs(40)
	tasks := CrossProduct(len(domains), len(countries))
	cfg := testConfig()
	cfg.Concurrency = 16
	res, err := Scan(context.Background(), testNet, domains, countries, tasks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(tasks) * cfg.Samples; len(res.Samples) != want {
		t.Fatalf("samples = %d, want %d", len(res.Samples), want)
	}
	i := 0
	for _, task := range tasks {
		for a := 0; a < cfg.Samples; a++ {
			s := &res.Samples[i]
			if s.Domain != task.Domain || s.Country != task.Country || s.Attempt != uint8(a) {
				t.Fatalf("sample %d is (%d,%d,%d), want (%d,%d,%d)",
					i, s.Domain, s.Country, s.Attempt, task.Domain, task.Country, a)
			}
			i++
		}
	}
}

// TestLoadBoundUnderStealing asserts the §3.2 per-exit budget survives
// the work-stealing scheduler: within every country, no exit serves a
// longer consecutive stretch than RequestsPerExit samples.
func TestLoadBoundUnderStealing(t *testing.T) {
	domains, countries := smallInputs(64)
	tasks := skewedTasks(len(domains), len(countries))
	cfg := testConfig()
	cfg.Concurrency = 32
	res, err := Scan(context.Background(), testNet, domains, countries, tasks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	load := res.LoadReport()
	if load.MaxStretch == 0 {
		t.Fatal("no load recorded")
	}
	if load.MaxStretch > cfg.RequestsPerExit {
		t.Fatalf("an exit served %d consecutive samples; the budget is %d",
			load.MaxStretch, cfg.RequestsPerExit)
	}
	// Sharding must spread load across the inventory at least as well
	// as one session per country did.
	if len(load.PerExit) < len(countries) {
		t.Fatalf("only %d exits used for %d countries", len(load.PerExit), len(countries))
	}
}

// TestShardSizeChangesExits documents the flip side of the determinism
// contract: ShardSize (unlike Concurrency) feeds the session slots, so
// changing it re-maps samples onto exits.
func TestShardSizeChangesExits(t *testing.T) {
	domains, countries := smallInputs(64)
	tasks := CrossProduct(len(domains), len(countries))
	run := func(shardSize int) *Result {
		cfg := testConfig()
		cfg.ShardSize = shardSize
		res, err := Scan(context.Background(), testNet, domains, countries, tasks, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(16), run(64)
	diff := 0
	for i := range a.Samples {
		if a.Samples[i].ExitIP != b.Samples[i].ExitIP {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("shard size must influence exit assignment")
	}
}

func TestCancellation(t *testing.T) {
	domains, countries := smallInputs(64)
	tasks := CrossProduct(len(domains), len(countries))
	cfg := testConfig()
	cfg.Concurrency = 4

	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	sink := SinkFunc(func(Sample) {
		n++
		if n == 10 {
			cancel()
		}
	})
	err := Run(ctx, testNet, domains, countries, tasks, cfg, sink)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n >= len(tasks)*cfg.Samples {
		t.Fatal("cancellation did not stop the scan early")
	}

	// An already-cancelled context scans nothing.
	done, cancel2 := context.WithCancel(context.Background())
	cancel2()
	var c Collect
	if err := Run(done, testNet, domains, countries, tasks, cfg, &c); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(c.Samples) != 0 {
		t.Fatalf("cancelled scan emitted %d samples", len(c.Samples))
	}
}

func TestNoExitsShard(t *testing.T) {
	domains, _ := smallInputs(4)
	countries := []geo.CountryCode{"KP"}
	cfg := testConfig()
	res, err := Scan(context.Background(), testNet, domains, countries, CrossProduct(len(domains), 1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(domains) * cfg.Samples; len(res.Samples) != want {
		t.Fatalf("samples = %d, want %d", len(res.Samples), want)
	}
	for _, s := range res.Samples {
		if s.Err != ErrNoExits {
			t.Fatalf("err = %v, want no-exits", s.Err)
		}
	}
}

func TestVPSDeterminismAcrossConcurrency(t *testing.T) {
	fleet := proxy.VPSFleet(testWorld, []geo.CountryCode{"IR", "US", "RU", "BR"})
	domains, _ := smallInputs(30)
	var base *Result
	for _, conc := range []int{1, 8} {
		cfg := Config{Samples: 2, Headers: ZGrabHeaders(), Phase: "vps-det", Concurrency: conc, ShardSize: 4}
		res, err := ScanVPS(context.Background(), fleet, domains, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = res
			continue
		}
		for i := range res.Samples {
			if res.Samples[i] != base.Samples[i] {
				t.Fatalf("VPS sample %d differs at concurrency %d", i, conc)
			}
		}
	}
}

func TestClassifyError(t *testing.T) {
	cases := []struct {
		err  error
		want ErrCode
	}{
		{&vnet.OpError{Op: "dns", Msg: "no such host"}, ErrDNS},
		{&vnet.OpError{Op: "proxy", Msg: "exit failed"}, ErrProxy},
		{&vnet.OpError{Op: "read", Msg: "reset"}, ErrReset},
		{errRedirectLimit, ErrRedirects},
		// http.Client.Do wraps CheckRedirect errors in *url.Error;
		// classification must unwrap rather than string-match.
		{wrapURLError(errRedirectLimit), ErrRedirects},
		{errors.New("mystery"), ErrProxy},
	}
	for _, tc := range cases {
		if got := classifyError(tc.err); got != tc.want {
			t.Errorf("classifyError(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

func wrapURLError(err error) error {
	return &wrappedErr{err}
}

type wrappedErr struct{ inner error }

func (w *wrappedErr) Error() string { return "Get \"http://x/\": " + w.inner.Error() }
func (w *wrappedErr) Unwrap() error { return w.inner }

func TestSampleSeedDistinct(t *testing.T) {
	a := sampleSeed("a.com", "IR", "initial", 0)
	b := sampleSeed("a.com", "IR", "initial", 1)
	c := sampleSeed("a.com", "SY", "initial", 0)
	d := sampleSeed("b.com", "IR", "initial", 0)
	e := sampleSeed("a.com", "IR", "resample", 0)
	seen := map[uint64]bool{}
	for _, s := range []uint64{a, b, c, d, e} {
		if seen[s] {
			t.Fatal("seed collision across sampling dimensions")
		}
		seen[s] = true
	}
}
