// The sink layer: streaming delivery of samples.
package scanner

// Sink receives samples as shards complete. The engine serializes
// calls and delivers in canonical country-major, task-order sequence
// (see the package determinism contract), so implementations need no
// locking and may rely on the order.
//
// A folding sink that digests each sample and drops it (bodies
// included) bounds a scan's peak memory by the in-flight shards
// instead of the full result — the difference between streaming a
// Top-1M pass and materializing millions of retained block pages.
type Sink interface {
	Emit(s Sample)
}

// SinkFunc adapts a plain function to the Sink interface.
type SinkFunc func(Sample)

// Emit calls f(s).
func (f SinkFunc) Emit(s Sample) { f(s) }

// Collect is the materializing sink: it reproduces the classic
// in-memory sample slice, in canonical order.
type Collect struct {
	Samples []Sample
}

// Emit appends s.
func (c *Collect) Emit(s Sample) { c.Samples = append(c.Samples, s) }

// DropBodies wraps a sink, clearing each sample's body before
// delivery — for consumers that only fold statuses and lengths but
// want to keep a Config whose KeepBody drives classification
// elsewhere.
func DropBodies(next Sink) Sink {
	return SinkFunc(func(s Sample) {
		s.Body = ""
		next.Emit(s)
	})
}
