// The sink layer: streaming delivery of samples.
package scanner

import "geoblock/internal/telemetry"

// Sink receives samples as shards complete. The engine serializes
// calls and delivers in canonical country-major, task-order sequence
// (see the package determinism contract), so implementations need no
// locking and may rely on the order.
//
// A folding sink that digests each sample and drops it (bodies
// included) bounds a scan's peak memory by the in-flight shards
// instead of the full result — the difference between streaming a
// Top-1M pass and materializing millions of retained block pages.
type Sink interface {
	Emit(s Sample)
}

// SinkFunc adapts a plain function to the Sink interface.
type SinkFunc func(Sample)

// Emit calls f(s).
func (f SinkFunc) Emit(s Sample) { f(s) }

// OutageSink is the optional degradation channel: a Sink that also
// implements it receives the per-country Outage records and the final
// Coverage summary after the last sample, still on the engine's single
// delivery goroutine (outages in scan order, coverage last). Sinks
// that don't implement it simply see the ErrNoExits samples.
type OutageSink interface {
	Sink
	EmitOutage(o Outage)
	EmitCoverage(c Coverage)
}

// ShardDone describes one completed scheduler shard at the moment of
// its canonical emission: its sequence number, the country (or VPS
// country) it belongs to, its task and emitted-sample counts, why its
// tasks were lost (OutageNone for a healthy shard), and the shard's own
// deterministic telemetry contribution.
type ShardDone struct {
	Seq     int
	Country string
	Tasks   int
	Samples int
	Lost    OutageReason
	// Metrics is the deterministic view of the metrics this shard's
	// session and fetch work recorded, staged in a shard-local registry
	// (see ShardSink). Nil when the scan ran without a registry.
	Metrics *telemetry.Snapshot
}

// ShardSink is the optional checkpoint channel: a Sink that also
// implements it receives one ShardDone after each shard's samples,
// still on the engine's single delivery goroutine and in canonical
// order. A journaling sink treats the callback as its durable commit
// point — everything before it belongs to fully delivered shards.
//
// Presence of a ShardSink switches the engine into metric staging: each
// shard's session and fetch metrics accumulate in a shard-local
// registry that is merged into Config.Metrics at emission time (the
// merged totals are identical either way, since every engine metric is
// per-shard and commutative), and ShardDone.Metrics carries exactly
// that shard's deterministic contribution — what a resumed run must
// restore for work it skips.
type ShardSink interface {
	Sink
	EmitShardDone(d ShardDone)
}

// Collect is the materializing sink: it reproduces the classic
// in-memory sample slice, in canonical order, plus the outage and
// coverage accounting.
type Collect struct {
	Samples  []Sample
	Outages  []Outage
	Coverage Coverage
}

// Emit appends s.
func (c *Collect) Emit(s Sample) { c.Samples = append(c.Samples, s) }

// EmitOutage appends o.
func (c *Collect) EmitOutage(o Outage) { c.Outages = append(c.Outages, o) }

// EmitCoverage records the run's coverage summary.
func (c *Collect) EmitCoverage(cov Coverage) { c.Coverage = cov }

// DropBodies wraps a sink, clearing each sample's body before
// delivery — for consumers that only fold statuses and lengths but
// want to keep a Config whose KeepBody drives classification
// elsewhere. Outage and coverage records pass through when the wrapped
// sink accepts them.
func DropBodies(next Sink) Sink {
	return dropBodies{next: next}
}

type dropBodies struct{ next Sink }

func (d dropBodies) Emit(s Sample) {
	s.Body = ""
	d.next.Emit(s)
}

func (d dropBodies) EmitOutage(o Outage) {
	if os, ok := d.next.(OutageSink); ok {
		os.EmitOutage(o)
	}
}

func (d dropBodies) EmitCoverage(c Coverage) {
	if os, ok := d.next.(OutageSink); ok {
		os.EmitCoverage(c)
	}
}
