// Exit-health tracking: the per-session circuit breaker and the
// decorrelated-jitter backoff that pace session-open retries.
package scanner

import (
	"time"

	"geoblock/internal/stats"
)

// DefaultBreakerSweeps is how many consecutive all-fail connectivity
// sweeps a session tolerates before the circuit breaker concludes the
// country is dark. The threshold only applies while the session has
// never seen a single success: an organically flaky country (exit
// reliability as low as ~0.4) fails a full 5-probe sweep ~8% of the
// time, so a breaker that tripped on streaks alone would silently
// erase countries the paper measures. Once any probe or fetch has
// succeeded the breaker never trips — failures route through the
// bounded retry/rotate path instead.
const DefaultBreakerSweeps = 3

// DefaultOpenRetries bounds session-open attempts against a browned-out
// superproxy before the shard gives the country up.
const DefaultOpenRetries = 3

// health is a session's view of its country's exits: whether anything
// has ever worked, and how many connectivity sweeps have failed in a
// row. It backs the circuit breaker in session.ready.
type health struct {
	everOK       bool
	failedSweeps int
	dead         bool // breaker open: cached dead-country verdict
}

// success records evidence the country is alive and resets the streak.
func (h *health) success() {
	h.everOK = true
	h.failedSweeps = 0
}

// failedSweep records one all-fail connectivity sweep and reports
// whether the breaker just tripped.
func (h *health) failedSweep(threshold int) bool {
	h.failedSweeps++
	if !h.everOK && h.failedSweeps >= threshold {
		h.dead = true
	}
	return h.dead
}

// Decorrelated-jitter backoff parameters (next = min(cap, rand(base,
// prev*3))): spreads retries instead of synchronizing them, without the
// full-cap waits plain exponential backoff converges to.
const (
	backoffBase = 250 * time.Millisecond
	backoffCap  = 8 * time.Second
)

// backoff paces session-open retries. Waits are drawn from a
// deterministic per-shard stream, and time is virtual by default: with
// a nil sleep the schedule is computed (and observable in tests) but
// the simulated mesh never actually blocks.
type backoff struct {
	rng   *stats.RNG
	prev  time.Duration
	sleep func(time.Duration)
}

func newBackoff(slot uint64, sleep func(time.Duration)) *backoff {
	return &backoff{
		rng:   stats.NewRNG(stats.Mix64(slot ^ 0xb0ff)).Fork("backoff"),
		prev:  backoffBase,
		sleep: sleep,
	}
}

// wait draws the next decorrelated-jitter delay, sleeps it when a
// sleeper is installed, and returns it.
func (b *backoff) wait() time.Duration {
	lo, hi := float64(backoffBase), float64(b.prev)*3
	d := time.Duration(lo + b.rng.Float64()*(hi-lo))
	if d > backoffCap {
		d = backoffCap
	}
	b.prev = d
	if b.sleep != nil {
		b.sleep(d)
	}
	return d
}
