package scanner

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"geoblock/internal/faults"
	"geoblock/internal/trace"
)

// tracedScan runs one collected scan with a fresh tracer attached and
// returns the deterministic trace view's byte form.
func tracedScan(t *testing.T, conc int, profile string, faultSeed uint64) []byte {
	t.Helper()
	tr := trace.New(trace.Root(7))
	cfg := testConfig()
	cfg.Concurrency = conc
	cfg.Trace = tr
	domains, countries := smallInputs(48)
	tasks := skewedTasks(len(domains), len(countries))
	net := testNet
	if profile != "" {
		p, ok := faults.Named(profile)
		if !ok {
			t.Fatalf("profile %q not registered", profile)
		}
		net = chaosNet(faults.New(faultSeed).Default(p))
	}
	if _, err := Scan(context.Background(), net, domains, countries, tasks, cfg); err != nil {
		t.Fatalf("concurrency %d: %v", conc, err)
	}
	b, err := tr.Snapshot().Deterministic().JSON()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestTraceDeterminismAcrossConcurrency is the tracing acceptance gate
// at the engine layer: the deterministic trace view — every event, ID,
// attribute, and the stream order itself — is byte-identical at
// Concurrency 1, 4, and 32, clean and under the everything-at-once
// chaos profile.
func TestTraceDeterminismAcrossConcurrency(t *testing.T) {
	for _, profile := range []string{"", "mixed"} {
		name := profile
		if name == "" {
			name = "clean"
		}
		t.Run(name, func(t *testing.T) {
			base := tracedScan(t, 1, profile, 42)
			if !bytes.Contains(base, []byte(`"name": "fetch"`)) {
				t.Fatalf("trace carries no fetch events:\n%s", base)
			}
			if !bytes.Contains(base, []byte(`"name": "scan"`)) {
				t.Fatal("trace carries no closing scan event")
			}
			for _, conc := range []int{4, 32} {
				if got := tracedScan(t, conc, profile, 42); !bytes.Equal(got, base) {
					t.Fatalf("concurrency %d: deterministic trace diverges from concurrency 1 (%d vs %d bytes)",
						conc, len(got), len(base))
				}
			}
		})
	}
}

// TestTraceRuntimeEventsStripped: the raw stream contains runtime-class
// steal events at high concurrency, and the deterministic view does
// not — the same split the telemetry layer enforces.
func TestTraceRuntimeEventsStripped(t *testing.T) {
	tr := trace.New(trace.Root(7))
	cfg := testConfig()
	cfg.Concurrency = 16
	cfg.Trace = tr
	domains, countries := smallInputs(48)
	tasks := skewedTasks(len(domains), len(countries))
	if _, err := Scan(context.Background(), testNet, domains, countries, tasks, cfg); err != nil {
		t.Fatal(err)
	}
	det := tr.Snapshot().Deterministic()
	for _, ev := range det.Events {
		if ev.Runtime {
			t.Fatalf("runtime event %q survived Deterministic()", ev.Name)
		}
		if ev.WallNS != 0 || ev.WallDurNS != 0 {
			t.Fatalf("event %q kept wall stamps in the deterministic view", ev.Name)
		}
	}
}

// TestFlightDumpOnSeededOutage: a fully dark country must fire the
// flight recorder exactly once per outage — the auto-dump the tentpole
// promises when an Outage is recorded.
func TestFlightDumpOnSeededOutage(t *testing.T) {
	profile, _ := faults.Named("dark")
	inj := faults.New(3).Country("IR", profile)

	var dump bytes.Buffer
	tr := trace.New(trace.Root(7)).WithFlightSink(&dump)
	domains, countries := smallInputs(32)
	tasks := CrossProduct(len(domains), len(countries))
	cfg := testConfig()
	cfg.Trace = tr
	res, err := Scan(context.Background(), chaosNet(inj), domains, countries, tasks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	outages := 0
	for _, o := range res.Outages {
		if o.Full() {
			outages++
		}
	}
	if outages != 1 {
		t.Fatalf("want exactly one full outage, got %+v", res.Outages)
	}
	if got := tr.FlightDumps(); got != 1 {
		t.Fatalf("flight recorder dumped %d times, want 1", got)
	}
	text := dump.String()
	if !strings.Contains(text, "== trace flight recorder: outage: IR") {
		t.Fatalf("dump header missing outage reason:\n%s", text)
	}
	if !strings.Contains(text, "== end flight dump ==") {
		t.Fatalf("dump trailer missing:\n%s", text)
	}
	if !strings.Contains(text, "country=IR") {
		t.Fatalf("dump carries no IR events:\n%s", text)
	}
}

// TestTracingDisabledOverhead pins the acceptance bound: with tracing
// off, the instrumentation the engine pays per sample — the nil buffer
// test in the fetch loop plus the per-shard context resolution — must
// cost under 2% of a real sample's scan time. Both sides are measured,
// not assumed.
func TestTracingDisabledOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark comparison under -short")
	}
	domains, countries := smallInputs(16)
	tasks := CrossProduct(len(domains), len(countries))
	cfg := testConfig()
	cfg.Concurrency = 1

	scanRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Scan(context.Background(), testNet, domains, countries, tasks, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	samplesPerRun := len(tasks) * cfg.Samples
	nsPerSample := float64(scanRes.NsPerOp()) / float64(samplesPerRun)

	// The disabled path, per shard: resolve the (zero) scan context,
	// open a nil buffer, take the fetch loop's nil branch once per
	// sample, and close the nil buffer. sink<n> keeps the compiler from
	// discarding the calls.
	perShard := cfg.ShardSize
	if perShard == 0 {
		perShard = DefaultShardSize
	}
	var sink *trace.Buffer
	var sinkB bool
	offRes := testing.Benchmark(func(b *testing.B) {
		off := testConfig() // Trace nil: tracing disabled
		for i := 0; i < b.N; i++ {
			scanCtx := ScanTraceCtx(off)
			tb := unitBuffer(scanCtx, i, off)
			for s := 0; s < perShard*off.Samples; s++ {
				if tb == nil {
					sinkB = !sinkB
				}
			}
			closeUnit(tb, &shard{seq: i}, off, "US", 0, 0)
			sink = tb
		}
	})
	_ = sink
	_ = sinkB
	nsOverheadPerSample := float64(offRes.NsPerOp()) / float64(perShard*cfg.Samples)

	ratio := nsOverheadPerSample / nsPerSample
	t.Logf("scan: %.1f ns/sample; disabled-trace overhead: %.3f ns/sample (%.4f%%)",
		nsPerSample, nsOverheadPerSample, ratio*100)
	if ratio >= 0.02 {
		t.Fatalf("tracing-disabled overhead is %.2f%% of scan time; bound is 2%%", ratio*100)
	}
}

// BenchmarkScanTraceOff and BenchmarkScanTraceOn are the human-readable
// pair behind the overhead bound: run with -bench to see the absolute
// cost of recording the full event stream.
func BenchmarkScanTraceOff(b *testing.B) { benchScanTrace(b, false) }
func BenchmarkScanTraceOn(b *testing.B)  { benchScanTrace(b, true) }

func benchScanTrace(b *testing.B, traced bool) {
	domains, countries := smallInputs(16)
	tasks := CrossProduct(len(domains), len(countries))
	cfg := testConfig()
	cfg.Concurrency = 4
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if traced {
			cfg.Trace = trace.New(trace.Root(7))
		}
		if _, err := Scan(context.Background(), testNet, domains, countries, tasks, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
