// The VPS engine: the §3.1 datacenter exploration, ported onto the
// same scheduler/fetcher/sink layers. There is no session layer — VPS
// vantage points are stable addresses with no proxy failures and no
// rotation budget — so each shard is a bare fetch loop.
package scanner

import (
	"context"

	"geoblock/internal/geo"
	"geoblock/internal/proxy"
	"geoblock/internal/telemetry"
	"geoblock/internal/trace"
)

// RunVPS streams a VPS-fleet scan into sink. Tasks index domains and
// fleet positions (Task.Country is the VPS index); a nil task list
// scans the full cross product. Samples are a pure function of
// (domain, VPS, phase, attempt) — no session state — so results are
// identical at any concurrency and shard size.
func RunVPS(ctx context.Context, fleet []*proxy.VPS, domains []string, tasks []Task, cfg Config, sink Sink) error {
	if cfg.Headers == nil {
		cfg.Headers = ZGrabHeaders()
	}
	cfg = cfg.withDefaults()
	if tasks == nil {
		tasks = CrossProduct(len(domains), len(fleet))
	}

	byVPS := make([][]Task, len(fleet))
	for _, t := range tasks {
		byVPS[t.Country] = append(byVPS[t.Country], t)
	}
	shards := buildShards(byVPS, cfg.ShardSize, func(int16, int) uint64 { return 0 })
	skip, err := resumePrefix(cfg, shards)
	if err != nil {
		return err
	}
	_, journaling := sink.(ShardSink)

	sp := startScanSpan(cfg)
	scanCtx := ScanTraceCtx(cfg)
	nameOf := func(sh *shard) string { return string(fleet[sh.group].Country) }
	run := func(ctx context.Context, sh *shard) {
		sh.country = nameOf(sh)
		csp := sp.StartSpan(sh.country)
		scfg := cfg
		if journaling && cfg.Metrics != nil {
			sh.staging = telemetry.NewWithClock(cfg.Metrics.Clock())
			scfg.Metrics = sh.staging
		}
		tb := unitBuffer(scanCtx, sh.seq, cfg)
		sh.out = scanVPSShard(ctx, fleet[sh.group], domains, sh, scfg, tb)
		sh.events = tb.Events()
		csp.Outcome("ok") // no session layer: a VPS shard cannot be lost
		csp.End()
	}
	creditSkipped(cfg, sp, shards[:skip], nameOf)
	em := newEmitter(sink, shards, skip, cfg.Metrics, cfg.Trace, scanCtx, cfg.Phase)
	err = schedule(ctx, shards, skip, cfg.Concurrency, run, em)
	sp.End()
	if err != nil {
		return err
	}
	recordScanTail(cfg.Trace, scanCtx, cfg.Phase, nil, len(shards))
	return nil
}

// ScanVPS is the collecting form of RunVPS over the full cross
// product, with one Result country entry per fleet position.
func ScanVPS(ctx context.Context, fleet []*proxy.VPS, domains []string, cfg Config) (*Result, error) {
	countries := make([]geo.CountryCode, len(fleet))
	for i, v := range fleet {
		countries[i] = v.Country
	}
	var c Collect
	err := RunVPS(ctx, fleet, domains, nil, cfg, &c)
	return &Result{Domains: domains, Countries: countries, Samples: c.Samples}, err
}

func scanVPSShard(ctx context.Context, v *proxy.VPS, domains []string, sh *shard, cfg Config, tb *trace.Buffer) []Sample {
	f := newFetcher(ctx, v.Stack(), cfg)
	out := make([]Sample, 0, len(sh.tasks)*cfg.Samples)
	unitStart := tb.Wall()
	for ti, t := range sh.tasks {
		if ctx.Err() != nil {
			return out
		}
		domain := domains[t.Domain]
		for a := 0; a < cfg.Samples; a++ {
			seed := sampleSeed(domain, string(v.Country), cfg.Phase+"/vps", a)
			if tb == nil {
				out = append(out, f.fetch(domain, seed, t, uint8(a), v.IP))
				continue
			}
			fetchStart := tb.Wall()
			s := f.fetch(domain, seed, t, uint8(a), v.IP)
			out = append(out, s)
			recordFetch(tb, sh, cfg, string(v.Country), domain, ti*cfg.Samples+a, s, fetchStart)
		}
	}
	closeUnit(tb, sh, cfg, string(v.Country), len(out), unitStart)
	return out
}
