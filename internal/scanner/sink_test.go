package scanner

import (
	"context"
	"testing"

	"geoblock/internal/geo"
)

// TestStreamingMatchesCollect: the streaming path and the
// materializing path see the exact same samples in the same order.
func TestStreamingMatchesCollect(t *testing.T) {
	domains, countries := smallInputs(40)
	tasks := CrossProduct(len(domains), len(countries))
	cfg := testConfig()
	cfg.Concurrency = 8

	collected, err := Scan(context.Background(), testNet, domains, countries, tasks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []Sample
	if err := Run(context.Background(), testNet, domains, countries, tasks, cfg,
		SinkFunc(func(s Sample) { streamed = append(streamed, s) })); err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(collected.Samples) {
		t.Fatalf("streamed %d, collected %d", len(streamed), len(collected.Samples))
	}
	for i := range streamed {
		if streamed[i] != collected.Samples[i] {
			t.Fatalf("sample %d differs between streaming and collect", i)
		}
	}
}

func TestDropBodies(t *testing.T) {
	domains, _ := smallInputs(40)
	countries := []geo.CountryCode{"IR", "SY"}
	tasks := CrossProduct(len(domains), len(countries))
	cfg := testConfig()

	var c Collect
	if err := Run(context.Background(), testNet, domains, countries, tasks, cfg, DropBodies(&c)); err != nil {
		t.Fatal(err)
	}
	if len(c.Samples) == 0 {
		t.Fatal("no samples")
	}
	for i := range c.Samples {
		if c.Samples[i].Body != "" {
			t.Fatal("DropBodies leaked a body")
		}
	}
}

// TestRedirectLoopClassified drives the typed redirect-limit
// classification end to end: a redirect-loop domain must come back as
// ErrRedirects through the *url.Error wrapping of http.Client.Do.
func TestRedirectLoopClassified(t *testing.T) {
	var name string
	for _, d := range testWorld.Top10K() {
		if d.RedirectLoop && !d.Unreachable {
			name = d.Name
			break
		}
	}
	if name == "" {
		t.Skip("no redirect-loop domain at this scale")
	}
	cfg := testConfig()
	res, err := Scan(context.Background(), testNet, []string{name}, []geo.CountryCode{"US"}, CrossProduct(1, 1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	seen := false
	for _, s := range res.Samples {
		if s.Err == ErrRedirects {
			seen = true
		}
	}
	if !seen {
		t.Fatalf("redirect loop never classified as ErrRedirects: %+v", res.Samples)
	}
}

// TestBodyLenNonNegative guards the Content-Length fix: absent headers
// surface as counted lengths, never as -1.
func TestBodyLenNonNegative(t *testing.T) {
	domains, countries := smallInputs(40)
	tasks := CrossProduct(len(domains), len(countries))
	res, err := Scan(context.Background(), testNet, domains, countries, tasks, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Samples {
		s := &res.Samples[i]
		if s.BodyLen < 0 {
			t.Fatalf("sample %d has negative BodyLen %d", i, s.BodyLen)
		}
		if s.Body != "" && int(s.BodyLen) != len(s.Body) {
			t.Fatalf("sample %d BodyLen %d != len(Body) %d", i, s.BodyLen, len(s.Body))
		}
	}
}
