// Package outlier implements the page-length heuristic the paper uses
// to shrink 1.4M samples to a clusterable candidate set (§4.1.2),
// following Jones et al.: pick a representative length per domain (the
// longest instance observed, optionally restricted to a subset of
// reference countries) and extract every sample at least 30% shorter.
package outlier

// DefaultCutoff is the paper's relative length threshold: a sample is a
// candidate block page when it is ≥30% shorter than the representative.
const DefaultCutoff = 0.30

// Representative tracks the per-domain representative length: the
// longest instance of the page seen across the reference samples.
type Representative struct {
	lengths map[int32]int // domain index → max length
}

// NewRepresentative returns an empty tracker.
func NewRepresentative() *Representative {
	return &Representative{lengths: make(map[int32]int)}
}

// Observe feeds one reference sample's body length.
func (r *Representative) Observe(domain int32, length int) {
	if length > r.lengths[domain] {
		r.lengths[domain] = length
	}
}

// Length returns the representative length for domain (0 if none
// observed — every comparison against it fails open, extracting
// nothing, which matches the paper's conservative handling of domains
// with no usable reference).
func (r *Representative) Length(domain int32) int { return r.lengths[domain] }

// Domains returns how many domains have a representative.
func (r *Representative) Domains() int { return len(r.lengths) }

// IsOutlier applies the relative-length test: true when length is more
// than cutoff shorter than the representative for domain.
func (r *Representative) IsOutlier(domain int32, length int, cutoff float64) bool {
	rep := r.lengths[domain]
	if rep == 0 {
		return false
	}
	return float64(length) < float64(rep)*(1-cutoff)
}

// RelativeDifference returns (rep−len)/rep, the x-axis of Figure 2
// (negative when the sample is longer than the representative). ok is
// false when the domain has no representative.
func (r *Representative) RelativeDifference(domain int32, length int) (float64, bool) {
	rep := r.lengths[domain]
	if rep == 0 {
		return 0, false
	}
	return float64(rep-length) / float64(rep), true
}

// IsOutlierRaw is the ablation comparator the paper argues against
// (§4.1.5): an absolute byte-difference cutoff, which "excessively
// penalizes long pages".
func (r *Representative) IsOutlierRaw(domain int32, length int, deltaBytes int) bool {
	rep := r.lengths[domain]
	if rep == 0 {
		return false
	}
	return rep-length > deltaBytes
}
