package outlier_test

import (
	"fmt"

	"geoblock/internal/outlier"
)

// The paper's length heuristic: observe reference samples, then flag
// anything at least 30% shorter than the longest instance seen.
func ExampleRepresentative() {
	rep := outlier.NewRepresentative()

	// Reference samples from the top-20 blocking countries.
	const domain = 7
	rep.Observe(domain, 18200) // full page
	rep.Observe(domain, 18950) // full page, more dynamic content
	rep.Observe(domain, 1620)  // a block page slipped into the references

	fmt.Println("representative:", rep.Length(domain))
	fmt.Println("block page is outlier:", rep.IsOutlier(domain, 1620, outlier.DefaultCutoff))
	fmt.Println("full page is outlier:", rep.IsOutlier(domain, 18400, outlier.DefaultCutoff))

	diff, _ := rep.RelativeDifference(domain, 1620)
	fmt.Printf("relative difference: %.2f\n", diff)
	// Output:
	// representative: 18950
	// block page is outlier: true
	// full page is outlier: false
	// relative difference: 0.91
}
