package outlier

import (
	"testing"
	"testing/quick"
)

func TestRepresentativeTracksMax(t *testing.T) {
	r := NewRepresentative()
	r.Observe(1, 100)
	r.Observe(1, 300)
	r.Observe(1, 200)
	if r.Length(1) != 300 {
		t.Fatalf("rep = %d", r.Length(1))
	}
	if r.Length(2) != 0 {
		t.Fatal("unobserved domain should be 0")
	}
	if r.Domains() != 1 {
		t.Fatalf("domains = %d", r.Domains())
	}
}

func TestIsOutlierCutoff(t *testing.T) {
	r := NewRepresentative()
	r.Observe(7, 1000)
	cases := []struct {
		length int
		want   bool
	}{
		{699, true},   // 30.1% shorter
		{700, false},  // exactly 30% shorter — boundary is exclusive
		{999, false},  // barely shorter
		{1000, false}, // equal
		{1500, false}, // longer
		{1, true},
	}
	for _, tc := range cases {
		if got := r.IsOutlier(7, tc.length, DefaultCutoff); got != tc.want {
			t.Errorf("IsOutlier(%d) = %v, want %v", tc.length, got, tc.want)
		}
	}
}

func TestNoRepresentativeNeverOutlier(t *testing.T) {
	r := NewRepresentative()
	if r.IsOutlier(9, 1, DefaultCutoff) {
		t.Fatal("domain without representative must not flag")
	}
	if r.IsOutlierRaw(9, 1, 10) {
		t.Fatal("raw variant must also fail open")
	}
	if _, ok := r.RelativeDifference(9, 1); ok {
		t.Fatal("RelativeDifference must report missing rep")
	}
}

func TestRelativeDifference(t *testing.T) {
	r := NewRepresentative()
	r.Observe(1, 1000)
	d, ok := r.RelativeDifference(1, 400)
	if !ok || d != 0.6 {
		t.Fatalf("diff = %v, %v", d, ok)
	}
	d, _ = r.RelativeDifference(1, 1200)
	if d != -0.2 {
		t.Fatalf("longer sample diff = %v", d)
	}
}

func TestRawOutlier(t *testing.T) {
	r := NewRepresentative()
	r.Observe(3, 10000)
	if !r.IsOutlierRaw(3, 7000, 2000) {
		t.Fatal("3000-byte gap should exceed 2000")
	}
	if r.IsOutlierRaw(3, 9000, 2000) {
		t.Fatal("1000-byte gap should not exceed 2000")
	}
}

func TestOutlierMonotoneProperty(t *testing.T) {
	// If a length is an outlier, every shorter length is too.
	r := NewRepresentative()
	r.Observe(5, 50000)
	f := func(a, b uint16) bool {
		la, lb := int(a), int(b)
		if la > lb {
			la, lb = lb, la
		}
		if r.IsOutlier(5, lb, DefaultCutoff) && !r.IsOutlier(5, la, DefaultCutoff) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestCutoffSweep(t *testing.T) {
	// Larger cutoffs extract fewer samples (used by the §4.1.5 sweep).
	r := NewRepresentative()
	r.Observe(1, 10000)
	lengths := []int{1000, 3000, 5000, 6500, 8000, 9500}
	prev := len(lengths) + 1
	for _, cut := range []float64{0.05, 0.30, 0.50, 0.80} {
		n := 0
		for _, l := range lengths {
			if r.IsOutlier(1, l, cut) {
				n++
			}
		}
		if n > prev {
			t.Fatalf("cutoff %v extracted more (%d) than smaller cutoff (%d)", cut, n, prev)
		}
		prev = n
	}
}
