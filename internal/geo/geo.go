// Package geo models the geographic substrate of the simulated
// Internet: the country inventory, a deterministic IPv4 allocation, and
// the GeoIP lookup that CDN edges use to make geoblocking decisions.
//
// The paper's methodology depends on client geolocation twice: CDNs
// geolocate the client IP to apply country-scoped rules, and the
// measurement platform geolocates its own exits to label samples. Both
// sides consult this package; small, controlled disagreements between
// an exit's claimed and actual location reproduce the geolocation
// errors the paper cites as one source of <100% block-page agreement.
package geo

import (
	"fmt"
	"net/netip"
	"sort"
)

// IP is a 32-bit address in the simulated IPv4 space.
type IP uint32

// Addr converts the simulated address into a netip.Addr for display and
// for transporting through standard HTTP plumbing.
func (ip IP) Addr() netip.Addr {
	return netip.AddrFrom4([4]byte{byte(ip >> 24), byte(ip >> 16), byte(ip >> 8), byte(ip)})
}

// ParseIP converts a netip.Addr back into a simulated IP. Only IPv4
// addresses are representable.
func ParseIP(a netip.Addr) (IP, error) {
	if !a.Is4() {
		return 0, fmt.Errorf("geo: %v is not an IPv4 address", a)
	}
	b := a.As4()
	return IP(uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])), nil
}

func (ip IP) String() string { return ip.Addr().String() }

// Range is a half-open [Lo, Hi) span of the simulated address space
// allocated to one country, optionally tagged with a sub-national
// region (Crimea).
type Range struct {
	Lo, Hi  IP
	Country CountryCode
	Region  string
}

// Location is the result of a GeoIP lookup.
type Location struct {
	Country CountryCode
	Region  string // "" except for special regions such as Crimea
}

// DB is the immutable geographic database: countries plus the IPv4
// allocation. Construct one with NewDB; it is safe for concurrent use.
type DB struct {
	countries []Country
	byCode    map[CountryCode]*Country
	ranges    []Range // sorted by Lo, non-overlapping
}

// allocation constants: the usable space is carved between allocBase
// and allocTop; everything outside resolves to no country (bogons).
const (
	allocBase IP = 0x08000000 // 8.0.0.0
	allocTop  IP = 0xdf000000 // 223.0.0.0
)

// NewDB builds the database. The allocation is a pure function of the
// country table: each country receives a contiguous block proportional
// to its exit inventory (with a floor so every country has room for a
// few thousand hosts), and Ukraine's block reserves its top slice for
// the Crimea region.
func NewDB() *DB {
	db := &DB{byCode: make(map[CountryCode]*Country, len(countries))}
	db.countries = make([]Country, len(countries))
	copy(db.countries, countries)
	var totalWeight uint64
	for i := range db.countries {
		c := &db.countries[i]
		db.byCode[c.Code] = c
		totalWeight += allocWeight(c)
	}
	space := uint64(allocTop - allocBase)
	cursor := allocBase
	for i := range db.countries {
		c := &db.countries[i]
		size := IP(space * allocWeight(c) / totalWeight)
		if size < 4096 {
			size = 4096
		}
		lo, hi := cursor, cursor+size
		cursor = hi
		if c.Code == "UA" {
			// Reserve the top eighth of Ukraine's block for Crimea so
			// region-granular blocking (App Engine, Airbnb) is testable.
			crimeaLo := hi - (hi-lo)/8
			db.ranges = append(db.ranges,
				Range{Lo: lo, Hi: crimeaLo, Country: c.Code},
				Range{Lo: crimeaLo, Hi: hi, Country: c.Code, Region: RegionCrimea})
			continue
		}
		db.ranges = append(db.ranges, Range{Lo: lo, Hi: hi, Country: c.Code})
	}
	if cursor > allocTop {
		// The floor can only overflow if the country table grows far
		// beyond the real world's; fail loudly rather than alias space.
		panic("geo: address space exhausted")
	}
	sort.Slice(db.ranges, func(i, j int) bool { return db.ranges[i].Lo < db.ranges[j].Lo })
	return db
}

func allocWeight(c *Country) uint64 {
	w := uint64(c.LuminatiExits)
	if w < 10 {
		w = 10
	}
	return w
}

// Countries returns the full country inventory in stable order.
func (db *DB) Countries() []Country { return db.countries }

// Country returns the record for code, or false if unknown.
func (db *DB) Country(code CountryCode) (Country, bool) {
	c, ok := db.byCode[code]
	if !ok {
		return Country{}, false
	}
	return *c, true
}

// Name returns the human-readable name for code, or the code itself if
// unknown (so table rendering never fails).
func (db *DB) Name(code CountryCode) string {
	if c, ok := db.byCode[code]; ok {
		return c.Name
	}
	return string(code)
}

// Measurable returns the codes of countries that have at least one
// residential exit and are not flaky — the 177-country study set.
func (db *DB) Measurable() []CountryCode {
	var out []CountryCode
	for i := range db.countries {
		c := &db.countries[i]
		if c.LuminatiExits > 0 && !c.Flaky {
			out = append(out, c.Code)
		}
	}
	return out
}

// Sanctioned returns the codes of comprehensively sanctioned countries.
func (db *DB) Sanctioned() []CountryCode {
	var out []CountryCode
	for i := range db.countries {
		if db.countries[i].Sanctioned {
			out = append(out, db.countries[i].Code)
		}
	}
	return out
}

// Locate performs the GeoIP lookup CDN edges use. The second return is
// false for addresses outside any allocated range.
func (db *DB) Locate(ip IP) (Location, bool) {
	i := sort.Search(len(db.ranges), func(i int) bool { return db.ranges[i].Hi > ip })
	if i == len(db.ranges) || ip < db.ranges[i].Lo {
		return Location{}, false
	}
	r := db.ranges[i]
	return Location{Country: r.Country, Region: r.Region}, true
}

// RangeOf returns the primary (non-Crimea) allocated range for code.
func (db *DB) RangeOf(code CountryCode) (Range, bool) {
	for _, r := range db.ranges {
		if r.Country == code && r.Region == "" {
			return r, true
		}
	}
	return Range{}, false
}

// CrimeaRange returns the Crimea sub-range of Ukraine's allocation.
func (db *DB) CrimeaRange() Range {
	for _, r := range db.ranges {
		if r.Region == RegionCrimea {
			return r
		}
	}
	panic("geo: Crimea range missing")
}

// HostIP returns the n-th host address inside code's primary range,
// wrapping within the range, so callers can mint as many distinct
// deterministic addresses as they need.
func (db *DB) HostIP(code CountryCode, n uint64) (IP, error) {
	r, ok := db.RangeOf(code)
	if !ok {
		return 0, fmt.Errorf("geo: no allocation for country %q", code)
	}
	span := uint64(proxyBoundary(r) - r.Lo)
	return r.Lo + IP(n%span), nil
}

// CrimeaHostIP mints the n-th host address inside the Crimea range.
func (db *DB) CrimeaHostIP(n uint64) IP {
	r := db.CrimeaRange()
	span := uint64(r.Hi - r.Lo)
	return r.Lo + IP(n%span)
}

// Ranges exposes the full allocation (for property tests and tooling).
func (db *DB) Ranges() []Range { return db.ranges }

// datacenterFraction reserves the top 1/32 of each country's primary
// range for datacenter/hosting address space. Residential exits are
// minted below it; VPSes and scanners inside it. Anti-abuse systems
// treat the two very differently.
const datacenterFraction = 32

// datacenterBoundary returns the first datacenter address of r.
func datacenterBoundary(r Range) IP {
	return r.Hi - (r.Hi-r.Lo)/datacenterFraction
}

// proxyFraction reserves the slice just below the datacenter space for
// residential addresses known to run proxy/VPN exit software (the
// Hola-style inventory): anti-abuse blacklists cover it wholesale.
const proxyFraction = 16

// proxyBoundary returns the first proxy-flagged address of r.
func proxyBoundary(r Range) IP {
	return datacenterBoundary(r) - (r.Hi-r.Lo)/proxyFraction
}

// ProxyExitIP mints the n-th address in code's proxy-flagged slice.
func (db *DB) ProxyExitIP(code CountryCode, n uint64) (IP, error) {
	r, ok := db.RangeOf(code)
	if !ok {
		return 0, fmt.Errorf("geo: no allocation for country %q", code)
	}
	lo := proxyBoundary(r)
	span := uint64(datacenterBoundary(r) - lo)
	return lo + IP(n%span), nil
}

// IsProxyExit reports whether ip sits in a proxy-flagged residential
// slice — the signal commercial blacklists give anti-abuse systems.
func (db *DB) IsProxyExit(ip IP) bool {
	i := sort.Search(len(db.ranges), func(i int) bool { return db.ranges[i].Hi > ip })
	if i == len(db.ranges) || ip < db.ranges[i].Lo {
		return false
	}
	r := db.ranges[i]
	if r.Region != "" {
		return false
	}
	return ip >= proxyBoundary(r) && ip < datacenterBoundary(r)
}

// DatacenterIP mints the n-th datacenter address inside code's range.
func (db *DB) DatacenterIP(code CountryCode, n uint64) (IP, error) {
	r, ok := db.RangeOf(code)
	if !ok {
		return 0, fmt.Errorf("geo: no allocation for country %q", code)
	}
	lo := datacenterBoundary(r)
	span := uint64(r.Hi - lo)
	return lo + IP(n%span), nil
}

// IsAnonymizer reports whether ip appears on the (simulated) public
// anonymizer/Tor-exit lists that anti-abuse systems subscribe to: a
// deterministic pseudo-membership over datacenter address space.
func (db *DB) IsAnonymizer(ip IP) bool {
	if !db.IsDatacenter(ip) {
		return false
	}
	h := uint64(ip) * 0x9e3779b97f4a7c15
	h ^= h >> 29
	return h%8 == 0
}

// IsDatacenter reports whether ip falls in a datacenter slice.
func (db *DB) IsDatacenter(ip IP) bool {
	i := sort.Search(len(db.ranges), func(i int) bool { return db.ranges[i].Hi > ip })
	if i == len(db.ranges) || ip < db.ranges[i].Lo {
		return false
	}
	r := db.ranges[i]
	if r.Region != "" {
		return false
	}
	return ip >= datacenterBoundary(r)
}
