package geo

import (
	"testing"
	"testing/quick"
)

func TestCountryTableIntegrity(t *testing.T) {
	db := NewDB()
	seen := map[CountryCode]bool{}
	for _, c := range db.Countries() {
		if len(c.Code) != 2 {
			t.Errorf("bad code %q", c.Code)
		}
		if seen[c.Code] {
			t.Errorf("duplicate code %q", c.Code)
		}
		seen[c.Code] = true
		if c.Name == "" {
			t.Errorf("%s has empty name", c.Code)
		}
		if c.GDPTier < 1 || c.GDPTier > 5 {
			t.Errorf("%s has GDP tier %d", c.Code, c.GDPTier)
		}
	}
}

func TestMeasurableCount(t *testing.T) {
	db := NewDB()
	if got := len(db.Measurable()); got != 177 {
		t.Fatalf("measurable countries = %d, want 177 (as in the paper)", got)
	}
}

func TestSanctionedSet(t *testing.T) {
	db := NewDB()
	want := map[CountryCode]bool{"IR": true, "SY": true, "SD": true, "CU": true, "KP": true}
	got := db.Sanctioned()
	if len(got) != len(want) {
		t.Fatalf("sanctioned = %v", got)
	}
	for _, c := range got {
		if !want[c] {
			t.Fatalf("unexpected sanctioned country %s", c)
		}
	}
}

func TestNorthKoreaHasNoExits(t *testing.T) {
	db := NewDB()
	kp, ok := db.Country("KP")
	if !ok || kp.LuminatiExits != 0 {
		t.Fatal("North Korea must exist and have zero proxy exits")
	}
	for _, c := range db.Measurable() {
		if c == "KP" {
			t.Fatal("North Korea must not be measurable")
		}
	}
}

func TestRangesPartition(t *testing.T) {
	db := NewDB()
	rs := db.Ranges()
	if len(rs) == 0 {
		t.Fatal("no ranges")
	}
	for i, r := range rs {
		if r.Hi <= r.Lo {
			t.Fatalf("range %d empty: %+v", i, r)
		}
		if i > 0 && r.Lo < rs[i-1].Hi {
			t.Fatalf("ranges %d and %d overlap", i-1, i)
		}
	}
}

func TestLocateRoundTrip(t *testing.T) {
	db := NewDB()
	for _, c := range db.Countries() {
		ip, err := db.HostIP(c.Code, 7)
		if err != nil {
			t.Fatalf("HostIP(%s): %v", c.Code, err)
		}
		loc, ok := db.Locate(ip)
		if !ok {
			t.Fatalf("Locate(%v) failed for %s", ip, c.Code)
		}
		if loc.Country != c.Code {
			t.Fatalf("Locate(%v) = %s, want %s", ip, loc.Country, c.Code)
		}
	}
}

func TestLocateRoundTripProperty(t *testing.T) {
	db := NewDB()
	codes := db.Measurable()
	f := func(ci uint16, n uint64) bool {
		code := codes[int(ci)%len(codes)]
		ip, err := db.HostIP(code, n)
		if err != nil {
			return false
		}
		loc, ok := db.Locate(ip)
		return ok && loc.Country == code
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestLocateOutsideAllocation(t *testing.T) {
	db := NewDB()
	for _, ip := range []IP{0, 0x01000000, 0xff000000} {
		if _, ok := db.Locate(ip); ok {
			t.Fatalf("Locate(%v) should fail outside allocation", ip)
		}
	}
}

func TestCrimeaRange(t *testing.T) {
	db := NewDB()
	r := db.CrimeaRange()
	if r.Country != "UA" || r.Region != RegionCrimea {
		t.Fatalf("Crimea range wrong: %+v", r)
	}
	ip := db.CrimeaHostIP(3)
	loc, ok := db.Locate(ip)
	if !ok || loc.Country != "UA" || loc.Region != RegionCrimea {
		t.Fatalf("Crimea host locates to %+v", loc)
	}
	// A plain Ukraine IP must not carry the Crimea tag.
	ua, err := db.HostIP("UA", 3)
	if err != nil {
		t.Fatal(err)
	}
	loc, _ = db.Locate(ua)
	if loc.Region != "" {
		t.Fatalf("primary UA host has region %q", loc.Region)
	}
}

func TestIPAddrConversion(t *testing.T) {
	ip := IP(0x08010203)
	a := ip.Addr()
	if a.String() != "8.1.2.3" {
		t.Fatalf("Addr = %v", a)
	}
	back, err := ParseIP(a)
	if err != nil || back != ip {
		t.Fatalf("round trip failed: %v %v", back, err)
	}
}

func TestIPConversionProperty(t *testing.T) {
	f := func(v uint32) bool {
		ip := IP(v)
		back, err := ParseIP(ip.Addr())
		return err == nil && back == ip
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNameFallback(t *testing.T) {
	db := NewDB()
	if db.Name("IR") != "Iran" {
		t.Fatal("known name lookup failed")
	}
	if db.Name("XX") != "XX" {
		t.Fatal("unknown code should echo")
	}
}

func TestHostIPUnknownCountry(t *testing.T) {
	db := NewDB()
	if _, err := db.HostIP("XX", 0); err == nil {
		t.Fatal("expected error for unknown country")
	}
}

func TestHostIPDistinct(t *testing.T) {
	db := NewDB()
	a, _ := db.HostIP("US", 1)
	b, _ := db.HostIP("US", 2)
	if a == b {
		t.Fatal("distinct host indices must yield distinct IPs")
	}
}

func TestDeterministicAllocation(t *testing.T) {
	a := NewDB()
	b := NewDB()
	ra, rb := a.Ranges(), b.Ranges()
	if len(ra) != len(rb) {
		t.Fatal("allocation not deterministic")
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("range %d differs: %+v vs %+v", i, ra[i], rb[i])
		}
	}
}

func TestAddressClassesDisjoint(t *testing.T) {
	db := NewDB()
	for _, cc := range []CountryCode{"US", "IR", "DE", "KM"} {
		host, err := db.HostIP(cc, 12345)
		if err != nil {
			t.Fatal(err)
		}
		if db.IsDatacenter(host) || db.IsProxyExit(host) {
			t.Fatalf("%s residential host misclassified", cc)
		}
		dc, err := db.DatacenterIP(cc, 7)
		if err != nil {
			t.Fatal(err)
		}
		if !db.IsDatacenter(dc) || db.IsProxyExit(dc) {
			t.Fatalf("%s datacenter host misclassified", cc)
		}
		px, err := db.ProxyExitIP(cc, 7)
		if err != nil {
			t.Fatal(err)
		}
		if !db.IsProxyExit(px) || db.IsDatacenter(px) {
			t.Fatalf("%s proxy-exit host misclassified", cc)
		}
		// All three classes still geolocate to the country.
		for _, ip := range []IP{host, dc, px} {
			loc, ok := db.Locate(ip)
			if !ok || loc.Country != cc {
				t.Fatalf("%s address %v geolocates to %v", cc, ip, loc)
			}
		}
	}
}

func TestAnonymizerSubsetOfDatacenter(t *testing.T) {
	db := NewDB()
	found := false
	for n := uint64(0); n < 64; n++ {
		ip, err := db.DatacenterIP("US", n)
		if err != nil {
			t.Fatal(err)
		}
		if db.IsAnonymizer(ip) {
			found = true
		}
	}
	if !found {
		t.Fatal("no anonymizer addresses in 64 datacenter hosts (expect ~1/8)")
	}
	host, _ := db.HostIP("US", 1)
	if db.IsAnonymizer(host) {
		t.Fatal("residential address flagged as anonymizer")
	}
}

func TestAddressClassProperty(t *testing.T) {
	db := NewDB()
	codes := db.Measurable()
	f := func(ci uint16, n uint64) bool {
		cc := codes[int(ci)%len(codes)]
		host, err1 := db.HostIP(cc, n)
		dc, err2 := db.DatacenterIP(cc, n)
		px, err3 := db.ProxyExitIP(cc, n)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		// Exactly one class per address.
		classes := 0
		if db.IsDatacenter(dc) {
			classes++
		}
		if db.IsProxyExit(px) {
			classes++
		}
		return classes == 2 && !db.IsDatacenter(host) && !db.IsProxyExit(host) &&
			!db.IsProxyExit(dc) && !db.IsDatacenter(px)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
