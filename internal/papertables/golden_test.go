package papertables

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"geoblock/internal/analysis"
	"geoblock/internal/cfrules"
	"geoblock/internal/geo"
	"geoblock/internal/lumscan"
	"geoblock/internal/pipeline"
	"geoblock/internal/worldgen"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// TestPaperTablesGolden regenerates every paper table from a fixed
// world and diffs the rendered output against the canonical copy under
// testdata/. Table-math regressions — a changed denominator, a
// reordered row, a broken percentage — fail loudly here instead of
// drifting silently. Refresh intentionally with:
//
//	go test ./internal/papertables/ -run Golden -update
func TestPaperTablesGolden(t *testing.T) {
	w := worldgen.Generate(worldgen.TestConfig())
	s := pipeline.New(w)

	var buf bytes.Buffer
	r := s.RunTop10K(pipeline.Top10KConfig{})
	PrintCoverage(&buf, "top10k initial snapshot", r.Outages, r.Coverage)
	FindingsSummary(&buf, r)
	PrintTable1(&buf, analysis.BuildTable1(r))
	rows, total := analysis.BuildTable2(r)
	PrintTable2(&buf, rows, total)
	PrintTable3(&buf, analysis.BuildTable3(w, r.Findings))
	PrintCategoryRates(&buf, "Table 4: Geoblocked sites by category (Top 10K)",
		analysis.BuildCategoryRates(w, analysis.RespondingDomains(r.Initial), r.Findings))
	PrintTable5(&buf, w.Geo, analysis.BuildTable5(w, r.Findings))
	PrintCountryCDN(&buf, "Table 6: Geoblocking among Top 10K sites, by country",
		w.Geo, analysis.BuildCountryCDNTable(r.Findings), 10)

	r1m := s.RunTop1M(pipeline.Top1MConfig{})
	PrintCountryCDN(&buf, "Table 7: Geoblocking among Top 1M sites, by country",
		w.Geo, analysis.BuildCountryCDNTable(r1m.ExplicitFindings), 10)
	PrintCategoryRates(&buf, "Table 8: Geoblocked sites by top category (Top 1M)",
		analysis.BuildCategoryRates(w, analysis.RespondingDomains(r1m.Initial), r1m.ExplicitFindings))

	PrintCloudflareTable9(&buf, w.Geo, cfrules.Synthesize(w.Cfg.Seed, w.Cfg.Scale))

	compareGolden(t, "tables.golden", buf.Bytes())
}

// TestCoverageTableGolden pins the degraded-run rendering: outage rows
// and the attained-vs-requested header, plus the quiet full-coverage
// form.
func TestCoverageTableGolden(t *testing.T) {
	var buf bytes.Buffer
	PrintCoverage(&buf, "chaos scan", []lumscan.Outage{
		{Country: "IR", Reason: lumscan.OutageDark, Shards: 13, ShardsTotal: 13, Tasks: 391},
		{Country: "SY", Reason: lumscan.OutageBrownout, Shards: 2, ShardsTotal: 9, Tasks: 64},
	}, lumscan.Coverage{Requested: 177, Attained: 176, Lost: []geo.CountryCode{"IR"}, TasksLost: 455})
	PrintCoverage(&buf, "clean scan", nil, lumscan.Coverage{Requested: 177, Attained: 177})
	compareGolden(t, "coverage.golden", buf.Bytes())
}

func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if bytes.Equal(got, want) {
		return
	}
	// Report the first diverging line, not a wall of bytes.
	gotLines, wantLines := bytes.Split(got, []byte("\n")), bytes.Split(want, []byte("\n"))
	n := len(gotLines)
	if len(wantLines) < n {
		n = len(wantLines)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(gotLines[i], wantLines[i]) {
			t.Fatalf("%s: line %d differs\n got: %s\nwant: %s\n(re-run with -update if the change is intentional)",
				name, i+1, gotLines[i], wantLines[i])
		}
	}
	t.Fatalf("%s: output is %d lines, golden is %d (re-run with -update if intentional)",
		name, len(gotLines), len(wantLines))
}
