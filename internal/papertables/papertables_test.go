package papertables

import (
	"strings"
	"testing"

	"geoblock/internal/analysis"
	"geoblock/internal/blockpage"
	"geoblock/internal/category"
	"geoblock/internal/cfrules"
	"geoblock/internal/consistency"
	"geoblock/internal/geo"
	"geoblock/internal/ooni"
	"geoblock/internal/pipeline"
)

var db = geo.NewDB()

func TestPrintTable1(t *testing.T) {
	var b strings.Builder
	PrintTable1(&b, analysis.Table1{
		InitialDomains: 10000, SafeDomains: 8003, InitialSamples: 1416531,
		ClusteredPages: 24381, Clusters: 119, DiscoveredProviders: 7,
	})
	for _, want := range []string{"Table 1", "10000", "8003", "1416531", "24381", "119", "7"} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("missing %q:\n%s", want, b.String())
		}
	}
}

func TestPrintTable2(t *testing.T) {
	var b strings.Builder
	rows := []analysis.Table2Row{
		{Kind: blockpage.Akamai, Recalled: 1446, Actual: 3313},
		{Kind: blockpage.Cloudflare, Recalled: 406, Actual: 433},
	}
	PrintTable2(&b, rows, analysis.Table2Row{Recalled: 1852, Actual: 3746})
	out := b.String()
	for _, want := range []string{"Akamai", "43.6%", "Cloudflare", "93.8%", "Total"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestPrintCountryCDNCollapsesTail(t *testing.T) {
	var rows []analysis.CountryCDNRow
	for _, cc := range []geo.CountryCode{"SY", "IR", "SD", "CU", "CN", "NG", "RU", "BR", "IQ", "PK", "DE", "FR", "JP"} {
		rows = append(rows, analysis.CountryCDNRow{
			Country: cc,
			PerKind: map[blockpage.Kind]int{blockpage.Cloudflare: 2},
			Total:   2,
		})
	}
	var b strings.Builder
	PrintCountryCDN(&b, "Table 6", db, rows, 10)
	out := b.String()
	if !strings.Contains(out, "Other") {
		t.Fatal("tail not collapsed into Other")
	}
	if !strings.Contains(out, "Syria") || strings.Contains(out, "Japan") {
		t.Fatalf("row selection wrong:\n%s", out)
	}
	if !strings.Contains(out, "Total") {
		t.Fatal("totals row missing")
	}
}

func TestPrintCategoryRates(t *testing.T) {
	var b strings.Builder
	PrintCategoryRates(&b, "Table 4", []analysis.CategoryRateRow{
		{Category: category.Shopping, Tested: 787, Geoblocked: 29},
		{Category: category.Business, Tested: 758, Geoblocked: 13},
	})
	out := b.String()
	if !strings.Contains(out, "Shopping") || !strings.Contains(out, "29 (3.7%)") {
		t.Fatalf("rates wrong:\n%s", out)
	}
}

func TestPrintExplorationAndOONI(t *testing.T) {
	var b strings.Builder
	PrintExploration(&b, &pipeline.ExploreResult{
		NSCloudflare: 2171, NSAkamai: 4111, Iran403: 707, US403: 69,
		PairsBlockpage: 1068, GenuinePairs: 782, FalsePositives: 286,
		FalsePositivesAkamai: 286, UniqueDomains: 269,
	})
	if !strings.Contains(b.String(), "707") || !strings.Contains(b.String(), "26.8%") {
		t.Fatalf("exploration table wrong:\n%s", b.String())
	}

	b.Reset()
	PrintOONI(&b, &ooni.Analysis{
		TotalMeasurements: 87000000, GeoblockCases: 8313, GeoblockCountries: 139,
		GeoblockDomains: 97, TestListSize: 1078, CensorCountriesWithCases: 12,
		ControlBlocked403: 36028, LocalBlockedCtrlOK: 14380,
		AnomalousAll: 50000, AnomaliesActuallyGeo: 8000,
	})
	for _, want := range []string{"8313", "139", "97 of 1078", "36028", "14380"} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("OONI table missing %q:\n%s", want, b.String())
		}
	}
}

func TestPrintExtensions(t *testing.T) {
	var b strings.Builder
	PrintTimeouts(&b, &pipeline.TimeoutResult{
		CandidateDomains: 3,
		Findings: []pipeline.TimeoutFinding{
			{DomainName: "drop.example", Countries: []geo.CountryCode{"RU", "CN"}, CensorOverlap: []geo.CountryCode{"CN"}},
		},
	})
	if !strings.Contains(b.String(), "drop.example") || !strings.Contains(b.String(), "RU CN") {
		t.Fatalf("timeouts table wrong:\n%s", b.String())
	}

	b.Reset()
	PrintAppLayer(&b, &pipeline.AppLayerResult{
		DomainsTested: 100,
		Findings: []pipeline.AppLayerFinding{
			{DomainName: "shop.example", Country: "IR", MissingLinks: []string{"/checkout"}, NoticeAdded: true},
			{DomainName: "shop.example", Country: "BR", PriceRatio: 1.4},
		},
	})
	out := b.String()
	if !strings.Contains(out, "/checkout") || !strings.Contains(out, "price ×1.40") {
		t.Fatalf("app-layer table wrong:\n%s", out)
	}

	b.Reset()
	PrintRegional(&b, []pipeline.RegionalFinding{
		{DomainName: "geniusdisplay.com", Kind: blockpage.AppEngine, RegionRate: 1, MainlandRate: 0},
	})
	if !strings.Contains(b.String(), "geniusdisplay.com") || !strings.Contains(b.String(), "100.0%") {
		t.Fatalf("regional table wrong:\n%s", b.String())
	}
}

func TestPrintCloudflareTable9Smoke(t *testing.T) {
	ds := cfrules.Synthesize(7, 0.05)
	var b strings.Builder
	PrintCloudflareTable9(&b, db, ds)
	out := b.String()
	if !strings.Contains(out, "Baseline") || !strings.Contains(out, "Enterprise") {
		t.Fatalf("table 9 wrong:\n%s", out)
	}
}

func TestFindingsSummary(t *testing.T) {
	var b strings.Builder
	r := &pipeline.Top10KResult{
		Findings: []pipeline.Finding{
			{DomainName: "a.example", Country: "IR", Kind: blockpage.Cloudflare,
				Rate: consistency.Rate{Responses: 23, Blocks: 23}},
		},
		Eliminated: 5,
	}
	r.Config.Threshold = 0.8
	FindingsSummary(&b, r)
	if !strings.Contains(b.String(), "1 instances") || !strings.Contains(b.String(), "5 pairs eliminated") {
		t.Fatalf("summary wrong:\n%s", b.String())
	}
}
