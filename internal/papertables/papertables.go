// Package papertables renders the analysis package's structured tables
// and figures in the paper's layout: one Print function per table and
// figure, shared by the command-line tools, the examples, and the
// benchmark harness.
package papertables

import (
	"fmt"
	"io"
	"strings"

	"geoblock/internal/analysis"
	"geoblock/internal/blockpage"
	"geoblock/internal/cfrules"
	"geoblock/internal/geo"
	"geoblock/internal/lumscan"
	"geoblock/internal/ooni"
	"geoblock/internal/pipeline"
	"geoblock/internal/report"
	"geoblock/internal/stats"
	"geoblock/internal/worldgen"
)

// PrintTable1 renders the pipeline-overview table.
func PrintTable1(w io.Writer, t1 analysis.Table1) {
	report.Table(w, "Table 1: Overview of data at each step in Methods",
		[]string{"Initial Domains", "Safe Domains", "Sampled Pairs", "Clustered Pages", "Clusters", "Discovered CDNs/Hosts"},
		[][]string{{
			report.Itoa(t1.InitialDomains), report.Itoa(t1.SafeDomains),
			report.Itoa(t1.InitialSamples), report.Itoa(t1.ClusteredPages),
			report.Itoa(t1.Clusters), report.Itoa(t1.DiscoveredProviders),
		}})
}

// PrintTable2 renders the recall table.
func PrintTable2(w io.Writer, rows []analysis.Table2Row, total analysis.Table2Row) {
	out := make([][]string, 0, len(rows)+1)
	for _, r := range rows {
		out = append(out, []string{
			r.Kind.String(), report.Itoa(r.Recalled), report.Itoa(r.Actual),
			report.PctStr(r.Recall()),
		})
	}
	out = append(out, []string{"Total", report.Itoa(total.Recalled),
		report.Itoa(total.Actual), report.PctStr(total.Recall())})
	report.Table(w, "Table 2: Recall for block pages (30% length metric)",
		[]string{"Page", "Recalled", "Actual", "Recall"}, out)
}

// explicitKindColumns is the column order of Tables 3, 6 and 7.
var explicitKindColumns = []blockpage.Kind{
	blockpage.Cloudflare, blockpage.CloudFront, blockpage.AppEngine,
	blockpage.Baidu, blockpage.Airbnb,
}

// PrintTable3 renders the category × CDN table.
func PrintTable3(w io.Writer, rows []analysis.CategoryCDNRow) {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		row := []string{string(r.Category)}
		for _, k := range explicitKindColumns {
			row = append(row, report.Itoa(r.PerKind[k]))
		}
		row = append(row, report.Itoa(r.Total))
		out = append(out, row)
	}
	report.Table(w, "Table 3: Most geoblocked categories by CDN (unique domains)",
		[]string{"Category", "Cloudflare", "CloudFront", "AppEngine", "Baidu", "Airbnb", "Total"}, out)
}

// PrintCategoryRates renders Table 4 (Top 10K) or Table 8 (Top 1M).
func PrintCategoryRates(w io.Writer, title string, rows []analysis.CategoryRateRow) {
	out := make([][]string, 0, len(rows))
	var tested, blocked int
	for _, r := range rows {
		out = append(out, []string{
			string(r.Category), report.Itoa(r.Tested),
			fmt.Sprintf("%d (%s)", r.Geoblocked, report.PctStr(r.Rate())),
		})
		tested += r.Tested
		blocked += r.Geoblocked
	}
	out = append(out, []string{"Total", report.Itoa(tested),
		fmt.Sprintf("%d (%s)", blocked, report.PctStr(float64(blocked)/float64(max(tested, 1))))})
	report.Table(w, title, []string{"Category", "Tested", "Geoblocked"}, out)
}

// PrintTable5 renders the TLD and country rankings.
func PrintTable5(w io.Writer, db *geo.DB, t5 analysis.Table5) {
	n := max(len(t5.TLDs), len(t5.Countries))
	if n > 10 {
		n = 10
	}
	out := make([][]string, 0, n)
	for i := 0; i < n; i++ {
		row := []string{"", "", "", ""}
		if i < len(t5.TLDs) {
			row[0], row[1] = t5.TLDs[i].Key, report.Itoa(t5.TLDs[i].Count)
		}
		if i < len(t5.Countries) {
			row[2] = db.Name(geo.CountryCode(t5.Countries[i].Key))
			row[3] = report.Itoa(t5.Countries[i].Count)
		}
		out = append(out, row)
	}
	report.Table(w, "Table 5: Top TLDs and geoblocked countries",
		[]string{"TLD", "Domains", "Country", "Instances"}, out)
}

// PrintCountryCDN renders Table 6 (Top 10K) or Table 7 (Top 1M).
func PrintCountryCDN(w io.Writer, title string, db *geo.DB, rows []analysis.CountryCDNRow, topN int) {
	if topN > 0 && len(rows) > topN {
		// Collapse the tail into an "Other" row, as the paper does.
		other := analysis.CountryCDNRow{Country: "--", PerKind: map[blockpage.Kind]int{}}
		for _, r := range rows[topN:] {
			for k, n := range r.PerKind {
				other.PerKind[k] += n
			}
			other.Total += r.Total
		}
		rows = append(append([]analysis.CountryCDNRow{}, rows[:topN]...), other)
	}
	out := make([][]string, 0, len(rows))
	totals := analysis.CountryCDNRow{PerKind: map[blockpage.Kind]int{}}
	for _, r := range rows {
		name := "Other"
		if r.Country != "--" {
			name = db.Name(r.Country)
		}
		row := []string{name}
		for _, k := range explicitKindColumns {
			row = append(row, report.Itoa(r.PerKind[k]))
			totals.PerKind[k] += r.PerKind[k]
		}
		row = append(row, report.Itoa(r.Total))
		totals.Total += r.Total
		out = append(out, row)
	}
	trow := []string{"Total"}
	for _, k := range explicitKindColumns {
		trow = append(trow, report.Itoa(totals.PerKind[k]))
	}
	trow = append(trow, report.Itoa(totals.Total))
	out = append(out, trow)
	report.Table(w, title,
		[]string{"Country", "Cloudflare", "CloudFront", "AppEngine", "Baidu", "Airbnb", "Total"}, out)
}

// PrintProviderRates renders the per-provider customer geoblock rates.
func PrintProviderRates(w io.Writer, title string, rates []analysis.ProviderRates) {
	out := make([][]string, 0, len(rates))
	for _, r := range rates {
		out = append(out, []string{
			string(r.Provider), report.Itoa(r.Tested),
			fmt.Sprintf("%d (%s)", r.Geoblocked, report.PctStr(r.Rate())),
		})
	}
	report.Table(w, title, []string{"Provider", "Customers", "Geoblocking"}, out)
}

// PrintCloudflareTable9 renders the §6 rule-rate table.
func PrintCloudflareTable9(w io.Writer, db *geo.DB, ds *cfrules.Dataset) {
	countries := ds.TopBlockedCountries(16)
	baseline, rows := ds.Table9(countries)

	pct := func(f float64) string { return fmt.Sprintf("%.2f%%", 100*f) }
	out := [][]string{{
		"Baseline", pct(baseline.All),
		pct(baseline.PerTier[cfrules.Enterprise]), pct(baseline.PerTier[cfrules.Business]),
		pct(baseline.PerTier[cfrules.Pro]), pct(baseline.PerTier[cfrules.Free]),
	}}
	for _, r := range rows {
		out = append(out, []string{
			db.Name(r.Country), pct(r.All),
			pct(r.PerTier[cfrules.Enterprise]), pct(r.PerTier[cfrules.Business]),
			pct(r.PerTier[cfrules.Pro]), pct(r.PerTier[cfrules.Free]),
		})
	}
	report.Table(w, "Table 9: Cloudflare geoblocking rules by account type",
		[]string{"Country", "All", "Enterprise", "Business", "Pro", "Free"}, out)
}

// PrintFigure renders a figure's series as an ASCII chart.
func PrintFigure(w io.Writer, title string, series []stats.Series) {
	report.Chart(w, title, series, 64, 14)
}

// PrintFigure2 renders the relative-size histograms.
func PrintFigure2(w io.Writer, f analysis.Figure2) {
	toSeries := func(name string, h *stats.Histogram) stats.Series {
		s := stats.Series{Name: name}
		for i, frac := range h.Fractions() {
			s.Points = append(s.Points, stats.Point{X: h.BinCenter(i), Y: frac})
		}
		return s
	}
	PrintFigure(w, "Figure 2: Relative sizes of block pages and representative pages",
		[]stats.Series{toSeries("all samples", f.All), toSeries("block pages", f.Blocked)})
}

// PrintOONI renders the §7.1 confound summary.
func PrintOONI(w io.Writer, a *ooni.Analysis) {
	report.Table(w, "OONI confound analysis (§7.1)",
		[]string{"Metric", "Value"},
		[][]string{
			{"Measurements", report.Itoa(a.TotalMeasurements)},
			{"Geoblock-page cases", report.Itoa(a.GeoblockCases)},
			{"Countries with cases", report.Itoa(a.GeoblockCountries)},
			{"Test-list domains affected", fmt.Sprintf("%d of %d (%s)",
				a.GeoblockDomains, a.TestListSize,
				report.PctStr(float64(a.GeoblockDomains)/float64(max(a.TestListSize, 1))))},
			{"Censoring countries with cases", report.Itoa(a.CensorCountriesWithCases)},
			{"Control (Tor) 403s, Akamai/CF sites", report.Itoa(a.ControlBlocked403)},
			{"Local-blocked, control OK", report.Itoa(a.LocalBlockedCtrlOK)},
			{"Anomalous measurements", report.Itoa(a.AnomalousAll)},
			{"Anomalies that are geoblocking", report.Itoa(a.AnomaliesActuallyGeo)},
		})
}

// PrintExploration renders the §3.1 exploration summary.
func PrintExploration(w io.Writer, r *pipeline.ExploreResult) {
	report.Table(w, "Exploration (§3.1): NS-detected customers probed from 16 VPSes",
		[]string{"Metric", "Value"},
		[][]string{
			{"NS-detected Cloudflare customers", report.Itoa(r.NSCloudflare)},
			{"NS-detected Akamai customers", report.Itoa(r.NSAkamai)},
			{"403s from Iran VPS", report.Itoa(r.Iran403)},
			{"403s from U.S. control", report.Itoa(r.US403)},
			{"Block-page pairs flagged", report.Itoa(r.PairsBlockpage)},
			{"Genuine after browser check", report.Itoa(r.GenuinePairs)},
			{"False positives (bot defense)", fmt.Sprintf("%d (%s)",
				r.FalsePositives,
				report.PctStr(float64(r.FalsePositives)/float64(max(r.PairsBlockpage, 1))))},
			{"Unique domains", report.Itoa(r.UniqueDomains)},
		})
}

// PrintNonExplicit renders the §5.2.2 summary.
func PrintNonExplicit(w io.Writer, r *pipeline.Top1MResult) {
	rows := [][]string{}
	for _, k := range []blockpage.Kind{blockpage.Akamai, blockpage.Incapsula} {
		findings := 0
		instances := 0
		for _, f := range r.NonExplicitFindings {
			if f.Kind == k {
				findings++
				instances += len(f.Blocked)
			}
		}
		rows = append(rows, []string{
			k.String(), report.Itoa(r.NonExplicitSeen[k]),
			report.Itoa(findings), report.Itoa(instances),
		})
	}
	report.Table(w, "Non-explicit geoblockers (§5.2.2, 100% consistency)",
		[]string{"CDN", "Domains w/ page", "Confirmed domains", "Instances"}, rows)
}

// FindingsSummary prints the headline numbers of a Top-10K run.
func FindingsSummary(w io.Writer, r *pipeline.Top10KResult) {
	unique := pipeline.UniqueDomains(r.Findings)
	countries := map[geo.CountryCode]bool{}
	for _, f := range r.Findings {
		countries[f.Country] = true
	}
	fmt.Fprintf(w, "Confirmed geoblocking: %d instances, %d unique domains, %d countries (%d pairs eliminated by the %.0f%% threshold)\n\n",
		len(r.Findings), unique, len(countries), r.Eliminated, 100*r.Config.Threshold)
}

// ProviderCountsFromWorld tallies each CDN's Top-10K customer counts —
// the denominators of §4.2.1.
func ProviderCountsFromWorld(w *worldgen.World) map[worldgen.Provider]int {
	out := map[worldgen.Provider]int{}
	for _, d := range w.Top10K() {
		for _, p := range d.Providers {
			if p.IsCDN() {
				out[p]++
			}
		}
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// PrintClusterSummaries renders the manual-examination view of the
// largest clusters.
func PrintClusterSummaries(w io.Writer, summaries []pipeline.ClusterSummary, topN int) {
	rows := make([][]string, 0, topN)
	for i, s := range summaries {
		if i >= topN {
			break
		}
		label := s.Kind.String()
		if s.Kind == 0 {
			label = "(not a block page)"
		}
		rows = append(rows, []string{
			report.Itoa(i + 1), report.Itoa(s.Size), label,
			s.ExampleDomain, report.Itoa(int(s.ExampleLen)),
		})
	}
	report.Table(w, fmt.Sprintf("Cluster examination (§4.1.3): top %d of %d clusters", min(topN, len(summaries)), len(summaries)),
		[]string{"#", "Pages", "Label", "Example domain", "Bytes"}, rows)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// PrintTimeouts renders the timeout-geoblocking extension results.
func PrintTimeouts(w io.Writer, r *pipeline.TimeoutResult) {
	rows := make([][]string, 0, len(r.Findings))
	for _, f := range r.Findings {
		cs := make([]string, len(f.Countries))
		for i, cc := range f.Countries {
			cs[i] = string(cc)
		}
		overlap := "none"
		if len(f.CensorOverlap) > 0 {
			os := make([]string, len(f.CensorOverlap))
			for i, cc := range f.CensorOverlap {
				os[i] = string(cc)
			}
			overlap = strings.Join(os, " ")
		}
		rows = append(rows, []string{f.DomainName, strings.Join(cs, " "), overlap})
	}
	report.Table(w, fmt.Sprintf("Extension: timeout geoblocking (§7.3) — %d candidate domains, %d pairs past the vantage cross-check, %d domains confirmed",
		r.CandidateDomains, r.CrossCheckedPairs, len(r.Findings)),
		[]string{"Domain", "Timeout-blocked in", "Censor overlap"}, rows)
}

// PrintAppLayer renders the application-layer discrimination results.
func PrintAppLayer(w io.Writer, r *pipeline.AppLayerResult) {
	rows := make([][]string, 0, len(r.Findings))
	for _, f := range r.Findings {
		what := ""
		if len(f.MissingLinks) > 0 {
			what = "features removed: " + strings.Join(f.MissingLinks, " ")
		}
		if f.NoticeAdded {
			if what != "" {
				what += "; "
			}
			what += "region notice"
		}
		if f.PriceRatio > 1.02 {
			if what != "" {
				what += "; "
			}
			what += fmt.Sprintf("price ×%.2f", f.PriceRatio)
		}
		rows = append(rows, []string{f.DomainName, string(f.Country), what})
	}
	report.Table(w, fmt.Sprintf("Extension: application-layer discrimination (§7.3) — %d domains tested",
		r.DomainsTested),
		[]string{"Domain", "Country", "Discrimination"}, rows)
}

// PrintRegional renders the region-granularity results.
func PrintRegional(w io.Writer, findings []pipeline.RegionalFinding) {
	rows := make([][]string, 0, len(findings))
	for _, f := range findings {
		rows = append(rows, []string{
			f.DomainName, f.Kind.String(),
			report.PctStr(f.RegionRate), report.PctStr(f.MainlandRate),
		})
	}
	report.Table(w, "Extension: region-granular blocking — Crimea vs mainland Ukraine (§4.2.2)",
		[]string{"Domain", "Page", "Crimea rate", "Mainland rate"}, rows)
}

// PrintCoverage renders a scan phase's degradation accounting: one row
// per country outage plus the attained-vs-requested coverage line. A
// run with full coverage prints a single confirmation line, so readers
// of a degraded report can tell the difference between "nothing lost"
// and "nobody checked".
func PrintCoverage(w io.Writer, phase string, outages []lumscan.Outage, cov lumscan.Coverage) {
	if len(outages) == 0 {
		fmt.Fprintf(w, "Coverage (%s): %d/%d countries, no outages\n\n", phase, cov.Attained, cov.Requested)
		return
	}
	rows := make([][]string, 0, len(outages))
	for _, o := range outages {
		extent := "partial"
		if o.Full() {
			extent = "full"
		}
		rows = append(rows, []string{
			string(o.Country), o.Reason.String(),
			fmt.Sprintf("%d/%d", o.Shards, o.ShardsTotal),
			report.Itoa(o.Tasks), extent,
		})
	}
	report.Table(w, fmt.Sprintf("Coverage (%s): %d/%d countries attained, %d tasks lost",
		phase, cov.Attained, cov.Requested, cov.TasksLost),
		[]string{"Country", "Reason", "Shards lost", "Tasks", "Extent"}, rows)
}
