package lint_test

import (
	"path/filepath"
	"testing"

	"geoblock/internal/lint"
)

// TestSuiteSelfClean runs the full suite over the whole module, test
// files included — the same invocation as `make lint` — and requires
// every diagnostic to be either absent or covered by the committed
// lint.baseline. Any new wall-clock call, unsorted map emission,
// severed context, dropped outcome, naked goroutine, codec-parity gap,
// metric-class conflict, or snapshot-discipline violation anywhere in
// the tree fails this test; so does a stale baseline entry, which
// keeps the ratchet one-way (the documented bench_test.go wall-time
// suppressions are the only sanctioned escapes).
func TestSuiteSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatalf("resolving module root: %v", err)
	}
	pkgs, err := lint.Load(root, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages")
	}
	bl, err := lint.LoadBaseline(filepath.Join(root, "lint.baseline"))
	if err != nil {
		t.Fatalf("loading lint.baseline: %v", err)
	}
	diags := lint.Check(pkgs, lint.All())
	_, surviving, stale := bl.Apply(root, diags)
	for _, d := range surviving {
		t.Errorf("unbaselined: %s", d)
	}
	for _, s := range stale {
		t.Errorf("stale baseline entry (fixed? shrink lint.baseline): %s", s)
	}
}
