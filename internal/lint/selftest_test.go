package lint_test

import (
	"testing"

	"geoblock/internal/lint"
)

// TestSuiteSelfClean runs the full suite over the whole module, test
// files included — the same invocation as `make lint` — and requires it
// to come back empty. Any new wall-clock call, unsorted map emission,
// severed context, dropped outcome, or naked goroutine anywhere in the
// tree fails this test (the documented bench_test.go wall-time
// suppressions are the only sanctioned escapes).
func TestSuiteSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	pkgs, err := lint.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages")
	}
	for _, d := range lint.Check(pkgs, lint.All()) {
		t.Errorf("%s", d)
	}
}
