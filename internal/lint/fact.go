// The fact layer: how geovet's analyzers see across package
// boundaries. An analyzer running over one package may record a
// conclusion about an object it declares ("this function transitively
// reaches the wall clock", "this function performs network I/O") or
// about the package as a whole ("these metric names were registered
// with these classes"). When a later pass analyzes a package that
// imports the first, it looks those conclusions up instead of
// re-deriving them — the stdlib-only sibling of go/analysis facts.
//
// Check orders packages so dependencies are analyzed before their
// importers, which is what makes the lookup sound: by the time a pass
// asks about a callee in another package, that package's facts exist.
// Facts are keyed by the variant-stripped package path, so a fact
// exported while analyzing the test-augmented variant of a package
// ("p [p.test]") is found by importers that link against the plain
// package.
//
// Facts are JSON-serializable through a small type registry. Nothing
// persists them today — one Check call owns one store — but the
// round-trip keeps every fact a plain value (no closures, no AST
// pointers), which is what lets the baseline and any future cached
// mode treat them as data.
package lint

import (
	"encoding/json"
	"fmt"
	"go/types"
	"sort"
	"strings"
)

// A Fact is one serializable conclusion attached to an object or a
// package. Implementations must be JSON-marshalable pointers whose
// FactName is registered with RegisterFact.
type Fact interface {
	// FactName returns the fact type's registered name, e.g.
	// "clockflow.reaches".
	FactName() string
}

// factTypes is the registry of fact constructors, keyed by FactName.
var factTypes = map[string]func() Fact{}

// RegisterFact registers a fact type for deserialization. Call from
// the defining analyzer's init.
func RegisterFact(name string, new func() Fact) {
	if _, dup := factTypes[name]; dup {
		panic(fmt.Sprintf("lint: fact type %q registered twice", name))
	}
	factTypes[name] = new
}

// factKey addresses one fact: which analyzer concluded it, about which
// package, and about which object within it ("" for package facts).
type factKey struct {
	analyzer string
	pkg      string // variant-stripped package path
	object   string // objectKey, or "" for a package fact
}

// factStore holds every fact exported during one Check call.
type factStore struct {
	m map[factKey]Fact
}

func newFactStore() *factStore { return &factStore{m: map[factKey]Fact{}} }

// stripVariant removes go list's test-variant decoration from an
// import path: "p [q.test]" → "p". Facts and package ordering both key
// on the stripped path so the test-augmented variant of a package
// (which replaces the plain one in a -test load) answers for it.
func stripVariant(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}

// objectKey names an object stably across loads: "Name" for
// package-level objects, "(Recv).Name" for methods. The package is
// carried separately in the factKey.
func objectKey(obj types.Object) string {
	fn, ok := obj.(*types.Func)
	if !ok {
		return obj.Name()
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return "(" + named.Obj().Name() + ")." + fn.Name()
	}
	return fn.Name()
}

// ExportObjectFact records a conclusion about obj, visible to later
// passes of the same analyzer over packages that import this one.
func (p *Pass) ExportObjectFact(obj types.Object, f Fact) {
	if obj == nil || obj.Pkg() == nil {
		return
	}
	p.facts.m[factKey{p.Analyzer.Name, stripVariant(obj.Pkg().Path()), objectKey(obj)}] = f
}

// ObjectFact returns the current analyzer's fact about obj, if a prior
// pass exported one.
func (p *Pass) ObjectFact(obj types.Object) (Fact, bool) {
	if obj == nil || obj.Pkg() == nil {
		return nil, false
	}
	f, ok := p.facts.m[factKey{p.Analyzer.Name, stripVariant(obj.Pkg().Path()), objectKey(obj)}]
	return f, ok
}

// ExportPackageFact records a conclusion about the package under
// analysis as a whole.
func (p *Pass) ExportPackageFact(f Fact) {
	p.facts.m[factKey{p.Analyzer.Name, stripVariant(p.Pkg.Path()), ""}] = f
}

// PackageFact returns the current analyzer's fact about the package
// with the given (variant-stripped) path.
func (p *Pass) PackageFact(pkgPath string) (Fact, bool) {
	f, ok := p.facts.m[factKey{p.Analyzer.Name, pkgPath, ""}]
	return f, ok
}

// A FinishPass is handed to an analyzer's Finish hook after every
// package has been analyzed, for module-wide reconciliation over the
// facts it exported (e.g. telemetrycheck's cross-package metric-class
// audit). It can read the analyzer's facts and report diagnostics,
// but sees no syntax: everything it needs must be in the facts.
type FinishPass struct {
	Analyzer *Analyzer
	facts    *factStore
	diags    *[]Diagnostic
}

// PackageFacts returns every package fact this analyzer exported,
// sorted by package path for deterministic iteration.
func (p *FinishPass) PackageFacts() []PackageFactEntry {
	var out []PackageFactEntry
	for k, f := range p.facts.m {
		if k.analyzer == p.Analyzer.Name && k.object == "" {
			out = append(out, PackageFactEntry{Path: k.pkg, Fact: f})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// PackageFactEntry pairs a package path with its fact.
type PackageFactEntry struct {
	Path string
	Fact Fact
}

// Reportf records a module-wide finding at an explicit position
// (FinishPass has no FileSet; facts carry file/line themselves).
func (p *FinishPass) Reportf(file string, line int, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      tokenPosition(file, line),
		Message:  fmt.Sprintf(format, args...),
	})
}

// factRecord is the serialized form of one fact.
type factRecord struct {
	Analyzer string          `json:"analyzer"`
	Pkg      string          `json:"pkg"`
	Object   string          `json:"object,omitempty"`
	Type     string          `json:"type"`
	Data     json.RawMessage `json:"data"`
}

// EncodeFacts serializes a store's facts as deterministic JSON (sorted
// by key). Exposed for the round-trip test and future cached runs.
func (s *factStore) encode() ([]byte, error) {
	recs := make([]factRecord, 0, len(s.m))
	for k, f := range s.m {
		data, err := json.Marshal(f)
		if err != nil {
			return nil, fmt.Errorf("lint: encoding fact %s/%s/%s: %w", k.analyzer, k.pkg, k.object, err)
		}
		recs = append(recs, factRecord{Analyzer: k.analyzer, Pkg: k.pkg, Object: k.object, Type: f.FactName(), Data: data})
	}
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		return a.Object < b.Object
	})
	return json.MarshalIndent(recs, "", "\t")
}

// decodeFacts rebuilds a store from encode's output, constructing each
// fact through the type registry.
func decodeFacts(b []byte) (*factStore, error) {
	var recs []factRecord
	if err := json.Unmarshal(b, &recs); err != nil {
		return nil, err
	}
	s := newFactStore()
	for _, r := range recs {
		mk, ok := factTypes[r.Type]
		if !ok {
			return nil, fmt.Errorf("lint: unknown fact type %q", r.Type)
		}
		f := mk()
		if err := json.Unmarshal(r.Data, f); err != nil {
			return nil, fmt.Errorf("lint: decoding fact %s for %s.%s: %w", r.Type, r.Pkg, r.Object, err)
		}
		s.m[factKey{r.Analyzer, r.Pkg, r.Object}] = f
	}
	return s, nil
}
