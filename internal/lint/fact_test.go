package lint

import (
	"bytes"
	"reflect"
	"testing"
)

// TestFactRoundTrip pins the fact serialization: encode is
// deterministic, decode rebuilds an identical store through the type
// registry, and an unregistered fact type is an error, not a silent
// drop.
func TestFactRoundTrip(t *testing.T) {
	s := newFactStore()
	s.m[factKey{"clockflow", "geoblock/internal/timeutil", "Timestamp"}] =
		&clockFact{Via: "calls clockwrap.Stamp, which calls time.Now"}
	s.m[factKey{"clockflow", "geoblock/internal/clockwrap", "(Ticker).Next"}] =
		&clockFact{Via: "calls time.Now"}
	s.m[factKey{"swapcheck", "geoblock/internal/netwrap", "Ping"}] =
		&netFact{Via: "calls net.Dial"}
	s.m[factKey{"telemetrycheck", "geoblock/internal/pipeline/tcfix", ""}] =
		&telemetryFact{Regs: []metricReg{
			{Name: "tcfix.samples", Kind: "counter", File: "tcfix.go", Line: 21},
			{Name: "tcfix.wall", Kind: "gauge", Runtime: true, File: "tcfix.go", Line: 30},
		}}

	b1, err := s.encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := decodeFacts(b1)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(s.m, got.m) {
		t.Fatalf("round trip changed the store:\n%v\n!=\n%v", got.m, s.m)
	}
	b2, err := got.encode()
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("encode is not deterministic across a round trip:\n%s\n!=\n%s", b1, b2)
	}

	if _, err := decodeFacts([]byte(`[{"analyzer":"x","pkg":"p","type":"no.such.fact","data":{}}]`)); err == nil {
		t.Fatal("decoding an unregistered fact type succeeded")
	}
}

// TestStripVariant pins the test-variant normalization facts and
// package ordering both key on.
func TestStripVariant(t *testing.T) {
	for in, want := range map[string]string{
		"geoblock/internal/runstore":                          "geoblock/internal/runstore",
		"geoblock/internal/runstore [geoblock/runstore.test]": "geoblock/internal/runstore",
	} {
		if got := stripVariant(in); got != want {
			t.Errorf("stripVariant(%q) = %q, want %q", in, got, want)
		}
	}
}
