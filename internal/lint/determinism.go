// The determinism analyzer: no wall clock, no global RNG in the scan
// path. The engine's headline contract — byte-identical output at any
// concurrency, under any fault profile — holds because every sample is
// a pure function of (domain, country, phase, attempt, shard slot).
// One time.Now or math/rand call anywhere under the scan path breaks
// that purity invisibly: results still look plausible, they just stop
// being reproducible. This analyzer is the machine check backstopping
// the chaos matrix's byte-identical assertions.
package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// determinismScope is the scan path: every package whose output feeds
// the byte-identical contract, plus the root facade and the CLIs built
// on it. bench_test.go measures wall time on purpose and carries
// exact-line suppressions.
var determinismScope = scope(
	"geoblock",
	"geoblock/cmd/...",
	"geoblock/internal/scanner/...",
	"geoblock/internal/pipeline/...",
	"geoblock/internal/papertables/...",
	"geoblock/internal/faults/...",
	"geoblock/internal/runstore/...",
	"geoblock/internal/worldgen/...",
	"geoblock/internal/telemetry/...",
	"geoblock/internal/trace/...",
	"geoblock/internal/fabric/...",
	"geoblock/internal/verdict/...",
)

// wallClockFuncs are the time package functions that read or wait on
// the wall clock. time.Duration values and arithmetic stay legal — only
// observing real time is forbidden.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

// randPackages are the global-RNG packages. Any import is a violation:
// even a locally seeded rand.New(rand.NewSource(...)) hides its seed
// from the replay key, and the argless rand.New seeding of math/rand/v2
// draws from the global runtime source outright.
var randPackages = map[string]string{
	"math/rand":    "math/rand",
	"math/rand/v2": "math/rand/v2",
}

// Determinism forbids wall-clock reads and global RNG in the scan path.
var Determinism = &Analyzer{
	Name:  "determinism",
	Doc:   "forbid time.Now/Since/Sleep and math/rand in the scan path; use the virtual clock and internal/stats seeded RNG",
	Match: determinismScope,
	Run:   runDeterminism,
}

func runDeterminism(p *Pass) {
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path := imp.Path.Value
			if len(path) >= 2 {
				path = path[1 : len(path)-1]
			}
			if name, ok := randPackages[path]; ok {
				p.Reportf(imp.Pos(), "import of %s: the scan path must draw randomness from the seeded internal/stats RNG (stats.NewRNG / RNG.Fork), or determinism breaks", name)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !wallClockFuncs[fn.Name()] {
				return true
			}
			if strings.HasPrefix(p.Path, "geoblock/internal/telemetry") {
				// The telemetry package owns the engine's single
				// sanctioned wall-clock read: the Wall implementation of
				// the injected Clock interface, which lives in clock.go
				// and nowhere else.
				if filepath.Base(fileName(p.Fset, id.Pos())) == "clock.go" {
					return true
				}
				p.Reportf(id.Pos(), "time.%s in internal/telemetry outside the Clock seam: all telemetry timing must flow through the injected Clock (clock.go), or snapshots stop being reproducible", fn.Name())
				return true
			}
			p.Reportf(id.Pos(), "time.%s reads the wall clock: scan-path timing must come from the virtual clock (injected sleep/now functions) or an injected timestamp, or output stops being reproducible", fn.Name())
			return true
		})
	}
}
