// Fixture: outside the determinism scope (internal/cdnid is not on the
// scan path), so the wall clock is legal and nothing may be reported.
package dfix

import "time"

func Stamp() time.Time { return time.Now() }
