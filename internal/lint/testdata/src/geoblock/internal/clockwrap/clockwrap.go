// Fixture: an out-of-scope helper package that reads the wall clock.
// Nothing is reported here — clockflow only exports the fact that
// Stamp reaches time.Now; the diagnostic lands at the scan-path call
// site two imports away.
package clockwrap

import "time"

// Stamp reads the wall clock directly.
func Stamp() time.Time { return time.Now() }

// Span is pure duration arithmetic: no fact, no diagnostic anywhere.
func Span(d time.Duration) time.Duration { return 2 * d }
