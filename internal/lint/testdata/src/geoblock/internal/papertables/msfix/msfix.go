// Fixture: the mapsort analyzer. Map iteration order must not escape
// into writers, sinks, or output slices; order-independent folds and
// the collect-then-sort idiom stay legal.
package msfix

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Writing a table row per map entry emits in map order.
func printRates(w io.Writer, rates map[string]float64) {
	for cc, r := range rates {
		fmt.Fprintf(w, "%s %.2f\n", cc, r) // want "Fprintf .writes to an io.Writer. inside range over a map"
	}
}

// Building a string via a writer method is the same leak.
func joined(m map[string]int) string {
	b := new(strings.Builder)
	for k := range m {
		b.WriteString(k) // want "WriteString .writes to an io.Writer. inside range over a map"
	}
	return b.String()
}

// sink mimics the engine's streaming Emit vocabulary.
type sink struct{}

func (sink) Emit(s string) error { return nil }

// Emitting per entry delivers samples in map order.
func drain(s sink, m map[string]bool) error {
	for k := range m {
		if err := s.Emit(k); err != nil { // want "Emit inside range over a map emits in map iteration order"
			return err
		}
	}
	return nil
}

// Appending to an outer slice freezes map order into element order.
func keysUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "appends to out in map iteration order"
	}
	return out
}

// Collect-then-sort is the sanctioned fix.
func keysSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Order-independent folds are legal.
func total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// A loop-local accumulator's order dies with the iteration.
func widest(m map[string][]int) int {
	widest := 0
	for _, vs := range m {
		var acc []int
		acc = append(acc, vs...)
		if len(acc) > widest {
			widest = len(acc)
		}
	}
	return widest
}
