// Fixture: the nakedgo analyzer inside the verdict edge
// (geoblock/internal/verdict/...). The edge's concurrency model is a
// single atomic pointer swap — readers never block, the publisher
// never spawns. A stray goroutine here (say, compiling a snapshot off
// to the side and swapping it in whenever it finishes) could publish
// after its study was torn down and resurrect a stale matrix.
package ngfix

import "sync"

// Publishing a snapshot from an untied goroutine is the violation.
func publishAsync(compile func() any, swap func(any)) {
	go swap(compile()) // want "goroutine launch in the scan path"
}

// A bare literal is no better.
func warmAsync(lookup func(string) bool, domains []string) {
	go func() { // want "naked goroutine in the scan path"
		for _, d := range domains {
			lookup(d)
		}
	}()
}

// The sanctioned shape: concurrent readers tied to a WaitGroup so the
// swap test drains before asserting.
func hammer(lookup func(string) bool, domains []string) {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, d := range domains {
				lookup(d)
			}
		}()
	}
	wg.Wait()
}
