// Fixture: the determinism analyzer inside the verdict edge
// (geoblock/internal/verdict/...). The snapshot itself is pure data,
// but the limiter's token refill and the snapshot's provenance both
// look like places to reach for the wall clock — and must not: the
// limiter reads the injected telemetry.Clock (tests drive it with a
// virtual clock), and a snapshot's version comes from the world's
// policy clock, never from real time.
package dfix

import "time"

// Stamping a snapshot version off the wall clock is the violation.
func snapshotVersion() uint64 {
	return uint64(time.Now().UnixNano()) // want "time.Now reads the wall clock"
}

// So is refilling the token bucket from real elapsed time instead of
// the injected clock.
func refill(last time.Time) time.Duration {
	return time.Since(last) // want "time.Since reads the wall clock"
}

// Retry-After arithmetic never observes real time and stays legal.
func retryAfter(deficit float64, rate float64) time.Duration {
	return time.Duration(deficit / rate * float64(time.Second))
}
