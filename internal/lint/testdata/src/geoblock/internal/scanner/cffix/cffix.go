// Fixture: scan-path code (scanner is determinism scope) calling
// out-of-scope wrappers. Clockflow flags the calls whose callees'
// facts say they transitively reach the wall clock or the global RNG
// — through any number of wrapper packages — and stays quiet on the
// clean ones and on the documented suppression.
package cffix

import (
	"time"

	"geoblock/internal/timeutil"
)

func sample() int64 {
	return timeutil.Timestamp() // want "timeutil.Timestamp reaches the wall clock or global RNG .calls clockwrap.Stamp, which calls time.Now."
}

func jitter(n int) int {
	return timeutil.Pick(n) // want "timeutil.Pick reaches the wall clock or global RNG .calls math/rand.Intn."
}

func widen(d time.Duration) time.Duration {
	return timeutil.Span(d) // clean wrapper: no fact, no diagnostic
}

func sanctioned() int64 {
	return timeutil.Timestamp() //geolint:allow clockflow fixture-documented escape for the suppression path
}
