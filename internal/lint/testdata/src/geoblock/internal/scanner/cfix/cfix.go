// Fixture: the ctxflow analyzer. Exported I/O in the scan path must
// accept a context, and an incoming context must never be severed by a
// freshly minted Background/TODO.
package cfix

import "context"

// fetch is ctx-first, so calling it counts as performing I/O.
func fetch(ctx context.Context, url string) error {
	_ = ctx
	_ = url
	return nil
}

// Exported, performs I/O, no way for a caller to cancel it.
func ScanAll(urls []string) { // want "exported ScanAll performs I/O but accepts no context.Context"
	for _, u := range urls {
		_ = fetch(context.Background(), u)
	}
}

// An incoming context severed mid-flow: Ctrl-C stops propagating here.
func Refresh(ctx context.Context, urls []string) error {
	for _, u := range urls {
		if err := fetch(context.Background(), u); err != nil { // want "context.Background.. severs the incoming context"
			return err
		}
	}
	return nil
}

// Session carries its context as a field, like pipeline.Study.
type Session struct {
	ctx context.Context
}

// The nil-default accessor is the one sanctioned minting site.
func (s *Session) context() context.Context {
	if s.ctx != nil {
		return s.ctx
	}
	return context.Background()
}

// A method on a ctx-carrying receiver has an incoming context too.
func (s *Session) Warm(urls []string) {
	for _, u := range urls {
		_ = fetch(context.TODO(), u) // want "context.TODO.. severs the incoming context"
	}
}

// Unexported helpers are their exported callers' responsibility.
func scanOne(u string) error { return fetch(context.Background(), u) }

// Pure computation owes nobody a context.
func Count(urls []string) int { return len(urls) }
