// Test files are the scan's drivers: they legitimately create root
// contexts, so nothing in here may be reported.
package cfix

import "context"

func DriveScan(ctx context.Context) error {
	_ = ctx
	return fetch(context.Background(), "example.test")
}
