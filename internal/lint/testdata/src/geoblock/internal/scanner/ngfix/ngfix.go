// Fixture: the nakedgo analyzer. Scan-path goroutines must be tied to
// a WaitGroup (or the scheduler's pool) so scans drain deterministically.
package ngfix

import "sync"

// A bare literal goroutine can outlive the scan.
func fire(work func()) {
	go func() { // want "naked goroutine in the scan path"
		work()
	}()
}

// A named-function launch offers no drain tie at all.
func fireNamed(work func()) {
	go work() // want "goroutine launch in the scan path"
}

// The WaitGroup-tied worker shape is the sanctioned discipline.
func drainAll(jobs []func()) {
	var wg sync.WaitGroup
	for _, j := range jobs {
		j := j
		wg.Add(1)
		go func() {
			defer wg.Done()
			j()
		}()
	}
	wg.Wait()
}
