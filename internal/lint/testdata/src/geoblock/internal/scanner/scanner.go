// Package scanner is a fixture stub standing in for the real engine:
// just enough surface for the outcomecheck fixtures to exercise the
// Outage rule and the error-vocabulary rule against the import path
// they key on.
package scanner

// Outage is the typed per-country degradation record.
type Outage struct {
	Country string
}

// Scan returns a sample count and the run's error.
func Scan(domains []string) (int, error) { return len(domains), nil }

// Drain returns the outages a run accumulated.
func Drain() []Outage { return nil }

// Probe returns a single outage record.
func Probe(country string) Outage { return Outage{Country: country} }
