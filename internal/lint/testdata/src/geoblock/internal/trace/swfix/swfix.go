// Fixture: the shared-state discipline rules inside the trace layer
// (geoblock/internal/trace/...). The tracer is shared by every
// goroutine that records an event: its event store and flight ring
// sit below mu (S1), and its counters are touched only through its
// own methods (S2) — the same layout the real Tracer follows.
package swfix

import (
	"sync"
	"sync/atomic"
)

// recorder follows the layout convention: root is immutable after init
// and sits above mu; events and dropped below mu are the guarded set.
type recorder struct {
	root uint64

	mu      sync.Mutex
	events  []string
	dropped int64
}

// record holds the lock: clean.
func (r *recorder) record(ev string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, ev)
}

// lenLocked declares that its caller holds the lock: clean.
func (r *recorder) lenLocked() int {
	return len(r.events)
}

// rootID reads above the mutex line: clean.
func (r *recorder) rootID() uint64 { return r.root }

// peek touches the guarded set with no lock and no naming claim.
func (r *recorder) peek() int {
	return len(r.events) // want "field recorder.events is declared below its guarding mutex but peek neither locks one nor follows the .Locked caller-holds convention"
}

// seq owns an atomic span counter; only its methods may touch it.
type seq struct {
	n atomic.Int64
}

func (s *seq) next() int64 { return s.n.Add(1) }

// steal reaches into the atomic from outside the owning type.
func steal(s *seq) int64 {
	return s.n.Add(1) // want "atomic field swfix.seq.n touched outside swfix.seq's own methods"
}
