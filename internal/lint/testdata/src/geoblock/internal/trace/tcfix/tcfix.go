// Fixture: the metric-namespace rules inside the trace layer
// (geoblock/internal/trace/...). Trace instrumentation that registers
// its own metrics — dropped-event counters, flight-dump counters —
// must keep the names static so the registry's class audit stays
// decidable; deriving a counter name from an event name at runtime
// makes the namespace unbounded.
package tcfix

import "geoblock/internal/telemetry"

const metDropped = "tracefix.events.dropped"

// registerStatics pins the negatives: literal and const names, and a
// labeled variant with a dynamic value but static key.
func registerStatics(reg *telemetry.Registry, phase string) {
	reg.RuntimeCounter("tracefix.flight.dumps").Add(1)
	reg.Counter(metDropped).Add(1)
	reg.Counter(telemetry.Label(metDropped, "phase", phase)).Add(1)
}

// PerEventCounter derives the metric name from the event: the
// violation — the namespace becomes a function of whatever events the
// run happens to record.
func PerEventCounter(reg *telemetry.Registry, eventName string) {
	reg.Counter("tracefix." + eventName).Add(1) // want "metric name for Counter is not a string literal, package const, or telemetry.Label over one"
}
