// Fixture: the determinism analyzer inside the trace layer
// (geoblock/internal/trace/...). Event timestamps flow through the
// tracer's injected clocks — virtual time from telemetry.Clock, wall
// time only via the WithWall seam — so the deterministic event stream
// stays byte-identical at any concurrency. A direct wall-clock read
// here would stamp schedule-dependent times into events that the
// determinism contract promises are pure.
package dfix

import "time"

// Stamping an event from the real clock is the violation: the stamp
// must come from the tracer's injected clocks.
func stampEvent() int64 {
	return time.Now().UnixNano() // want "time.Now reads the wall clock"
}

// So is flushing a buffer on a real-time ticker instead of at the
// canonical emission point.
func flushLoop(stop chan struct{}) {
	t := time.NewTicker(time.Second) // want "time.NewTicker reads the wall clock"
	defer t.Stop()
	<-stop
}

// An exact-line suppression survives the scope extension: the CLIs
// wire the wall clock in at the edge on purpose.
func wiredWall() func() time.Time {
	return time.Now //geolint:allow determinism the CLI injects the wall clock at the edge
}

// Duration arithmetic never observes real time and stays legal.
func halfWindow(d time.Duration) time.Duration { return d / 2 }
