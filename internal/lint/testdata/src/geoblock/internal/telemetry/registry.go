// Fixture stand-in for the real telemetry registry: just enough
// surface — the Registry constructors and Label — for telemetrycheck's
// receiver matching. The package path is what matters; telemetrycheck
// exempts the package itself, so nothing here is analyzed.
package telemetry

type Registry struct{}

type Counter struct{}

type Gauge struct{}

type Histogram struct{}

func (*Registry) Counter(name string) *Counter        { return nil }
func (*Registry) RuntimeCounter(name string) *Counter { return nil }
func (*Registry) Gauge(name string) *Gauge            { return nil }
func (*Registry) RuntimeGauge(name string) *Gauge     { return nil }
func (*Registry) Histogram(name string, min, max float64, bins int) *Histogram {
	return nil
}
func (*Registry) RuntimeHistogram(name string, min, max float64, bins int) *Histogram {
	return nil
}

func (*Counter) Add(n int64) {}
func (*Gauge) Set(v int64)   {}
func (*Gauge) Add(n int64)   {}

func Label(name string, kv ...string) string { return name }
