// Fixture: clock.go is the telemetry package's sanctioned Clock seam —
// the one file where a wall-clock read is legal.
package tfix

import "time"

// Wall mirrors telemetry.Wall: the single sanctioned time.Now.
type Wall struct{}

func (Wall) Now() time.Time { return time.Now() }
