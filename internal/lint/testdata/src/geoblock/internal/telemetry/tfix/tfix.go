// Fixture: outside clock.go, the telemetry package gets its own
// determinism diagnostic — timing must flow through the injected Clock.
package tfix

import "time"

func stamp() time.Time {
	return time.Now() // want "time.Now in internal/telemetry outside the Clock seam"
}

func wait() {
	time.Sleep(time.Millisecond) // want "time.Sleep in internal/telemetry outside the Clock seam"
}

// Duration arithmetic and tickers stay legal: only observing real time
// is forbidden, and periodic progress output is driven by a ticker the
// caller owns.
func ticker() *time.Ticker { return time.NewTicker(time.Second) }
