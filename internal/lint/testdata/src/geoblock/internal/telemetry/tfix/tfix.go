// Fixture: outside clock.go, the telemetry package gets its own
// determinism diagnostic — timing must flow through the injected Clock.
package tfix

import "time"

func stamp() time.Time {
	return time.Now() // want "time.Now in internal/telemetry outside the Clock seam"
}

func wait() {
	time.Sleep(time.Millisecond) // want "time.Sleep in internal/telemetry outside the Clock seam"
}

// Tickers are wall-clock observations too: a ticker outside the
// clock.go seam turns elapsed real time into program behavior.
func ticker() *time.Ticker {
	return time.NewTicker(time.Second) // want "time.NewTicker in internal/telemetry outside the Clock seam"
}

// Pure duration arithmetic stays legal: no real time is observed.
func double(d time.Duration) time.Duration { return 2 * d }
