// Fixture: an out-of-scope wrapper package one hop from the sources.
// The fact chain built here ("calls clockwrap.Stamp, which calls
// time.Now") is what the scan-path diagnostic prints.
package timeutil

import (
	"math/rand"
	"time"

	"geoblock/internal/clockwrap"
)

// Timestamp wraps the clockwrap wrapper: two packages sit between the
// scan path and time.Now.
func Timestamp() int64 { return clockwrap.Stamp().UnixNano() }

// Pick wraps the global RNG one hop away.
func Pick(n int) int { return rand.Intn(n) }

// Span stays clean: it only uses the clean helper.
func Span(d time.Duration) time.Duration { return clockwrap.Span(d) }
