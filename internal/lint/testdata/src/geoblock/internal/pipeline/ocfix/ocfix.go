// Fixture: the outcomecheck analyzer. Degradation outcomes — Outage
// values, scan/sink errors, wrapped causes — must not vanish.
package ocfix

import (
	"errors"
	"fmt"

	"geoblock/internal/scanner"
)

// An expression statement drops the engine's error on the floor.
func fire(domains []string) {
	scanner.Scan(domains) // want "Scan's error is ignored"
}

// Blanking the error slot is the same drop in assignment clothes.
func count(domains []string) int {
	n, _ := scanner.Scan(domains) // want "Scan's error is ignored"
	return n
}

// A discarded Outage un-counts a lost country.
func dropAll() {
	scanner.Drain() // want "Drain's Outage result is discarded"
}

func dropOne() {
	_ = scanner.Probe("KP") // want "Probe's Outage result is discarded"
}

// sink mimics the streaming sink vocabulary by method name.
type sink struct{}

func (sink) Emit(s string) error { return nil }

// An ignored Emit error hides coverage loss from the consumer.
func pump(s sink, keys []string) {
	for _, k := range keys {
		s.Emit(k) // want "Emit's error is ignored"
	}
}

// Handling every outcome is the contract; nothing below may fire.
func handled(domains []string) ([]scanner.Outage, error) {
	n, err := scanner.Scan(domains)
	if err != nil {
		return nil, fmt.Errorf("scan of %d domains: %w", n, err)
	}
	return scanner.Drain(), nil
}

var errBudget = errors.New("budget exhausted")

// %v flattens the cause chain errors.Is/As classification depends on.
func classify(err error) error {
	if errors.Is(err, errBudget) {
		return fmt.Errorf("fatal: %v", err) // want "fmt.Errorf formats an error operand without %w"
	}
	return nil
}

// %w keeps the chain; non-error operands need no wrapping; errors
// outside the vocabulary may be dropped deliberately.
func wrap(err error) error { return fmt.Errorf("scan: %w", err) }

func describe(n int) error { return fmt.Errorf("scan saw %d samples", n) }

func lenient() {
	fmt.Println("flushed")
}
