// Fixture: the metric-namespace rules. T1 — names are literals,
// package consts, or telemetry.Label over one (label values may be
// dynamic, keys may not), with the one sanctioned indirection of an
// unexported helper whose every caller passes a static name. T3 — a
// deterministic-class registration on an HTTP-handler-only path is a
// snapshot perturbed by serving load. The cross-package T2 conflict
// partner lives in fabric/tcfix2.
package tcfix

import (
	"net/http"

	"geoblock/internal/telemetry"
)

const metRetries = "tcfix.retries"

// registerStatics pins the negatives: every static-name shape.
func registerStatics(reg *telemetry.Registry, code string) {
	reg.Counter("tcfix.samples").Add(1)
	reg.Counter(metRetries).Add(1)
	reg.Counter(telemetry.Label(metRetries, "code", code)).Add(1)
}

// DynamicName is exported, so the parameter indirection is not
// sanctioned: the audit cannot see its callers in other packages.
func DynamicName(reg *telemetry.Registry, name string) {
	reg.Counter(name).Add(1) // want "metric name for Counter is not a string literal, package const, or telemetry.Label over one"
}

// labelKey: label values may be dynamic, keys may not.
func labelKey(reg *telemetry.Registry, k string) {
	reg.Counter(telemetry.Label("tcfix.base", k, "v")).Add(1) // want "telemetry.Label key is not a string literal or const"
}

// countGood is the sanctioned indirection: unexported, and every call
// site passes a static name, each recorded as a registration.
func countGood(reg *telemetry.Registry, name string) {
	reg.Counter(name).Add(1)
}

func callsGood(reg *telemetry.Registry) {
	countGood(reg, "tcfix.steps")
}

// countBad has one dynamic caller, so both the call site and the
// helper's registration are flagged — the indirection is only
// sanctioned while every caller keeps it auditable.
func countBad(reg *telemetry.Registry, name string) {
	reg.Counter(name).Add(1) // want "metric name for Counter is not a string literal, package const, or telemetry.Label over one"
}

func callsBad(reg *telemetry.Registry, dyn string) {
	countBad(reg, dyn) // want "metric name passed to countBad is not a string literal or package const"
}

// registerConflict registers a name fabric/tcfix2 also registers with
// a different class; the module-wide Finish audit flags whichever site
// sorts second (this one — fabric sorts before pipeline).
func registerConflict(reg *telemetry.Registry) {
	reg.Counter("tcfix.conflict").Add(1) // want "metric \"tcfix.conflict\" registered as deterministic counter here but as runtime gauge"
}

// server exercises T3: the handler itself and an unexported helper
// reachable only from it are both handler-only paths.
type server struct{ reg *telemetry.Registry }

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter("tcfix.requests").Add(1) // want "deterministic-class Counter registered on an HTTP-handler path"
	s.reg.RuntimeCounter("tcfix.requests.wall").Add(1)
	s.observe()
}

// observe is unexported and called only from ServeHTTP: handler-only
// by the fixpoint.
func (s *server) observe() {
	s.reg.Gauge("tcfix.inflight").Add(1) // want "deterministic-class Gauge registered on an HTTP-handler path"
}
