// Fixture for suppression-directive semantics, driven programmatically
// by suppress_test.go rather than by // want comments: a directive
// under test and a want expectation cannot share a line's trailing
// comment. The test locates each case by its function declaration and
// asserts on the diagnostics of the line below it.
package supfix

import "time"

// No directive: the determinism diagnostic stands.
func bare() time.Time {
	return time.Now()
}

// A well-formed directive (analyzer + reason) silences its line.
func allowed() time.Time {
	return time.Now() //geolint:allow determinism fixture exercises a sanctioned escape
}

// A reasonless directive is itself a diagnostic and silences nothing.
func reasonless() time.Time {
	return time.Now() //geolint:allow determinism
}

// Naming the wrong analyzer leaves the real diagnostic standing.
func wrongAnalyzer() time.Time {
	return time.Now() //geolint:allow mapsort the directive names the wrong analyzer
}

// Naming an unknown analyzer is itself a diagnostic.
func unknownAnalyzer() time.Time {
	return time.Now() //geolint:allow clockcheck no such analyzer exists
}

//geolint:allow determinism a directive covers only its own line
func leak() time.Time {
	return time.Now()
}
