// Fixture: the determinism analyzer's positive and negative space
// inside the scan path (geoblock/internal/pipeline/...).
package dfix

import (
	"math/rand" // want "import of math/rand"
	"time"
)

// Wall-clock reads are the violation, one diagnostic per call site.
func clocky() (time.Time, time.Duration) {
	start := time.Now()             // want "time.Now reads the wall clock"
	time.Sleep(time.Millisecond)    // want "time.Sleep reads the wall clock"
	return start, time.Since(start) // want "time.Since reads the wall clock"
}

// Using the global RNG adds nothing beyond the import diagnostic.
func roll() int { return rand.Int() }

// Duration arithmetic and fixed instants never observe real time.
const tick = 250 * time.Millisecond

var epoch = time.Unix(0, 0)

func double(d time.Duration) time.Duration { return d * 2 }
