// Fixture for block-directive semantics, checked by
// TestBlockSuppressions (no // want comments here — the cases include
// malformed directives whose diagnostics land on the directive line
// itself): a block directive over a statement covers only that
// statement, a directive scoped to another analyzer swallows nothing,
// and a trailing directive with no construct after it is malformed.
package blockfix

import "time"

func pair() (time.Time, time.Time) {
	//geolint:allow-block determinism fixture sanctions the first read only
	a := time.Now()
	b := time.Now()
	return a, b
}

//geolint:allow-block mapsort fixture names the wrong analyzer on purpose
func wrongAnalyzer() time.Time {
	return time.Now()
}

//geolint:allow-block determinism fixture trails the file, covering nothing
