// Fixture: an out-of-scope wrapper around network I/O. Swapcheck's
// fact layer marks Ping as reaching net.Dial, so a swapScope package
// holding a mutex across a Ping call is flagged without this package
// ever being in scope itself.
package netwrap

import "net"

// Ping dials a peer and hangs up.
func Ping(addr string) error {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	return c.Close()
}
