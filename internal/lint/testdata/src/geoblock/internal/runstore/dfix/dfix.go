// Fixture: the determinism analyzer over the journal layer
// (geoblock/internal/runstore/...). Fsync latency and recovery timing
// must come from the injected telemetry clock, never the wall clock.
package dfix

import "time"

// timing a write against the wall clock is the violation.
func syncLatency(sync func() error) (time.Duration, error) {
	start := time.Now() // want "time.Now reads the wall clock"
	err := sync()
	return time.Since(start), err // want "time.Since reads the wall clock"
}

// backing off between retries with a real sleep is too.
func retrySync(sync func() error) error {
	if err := sync(); err != nil {
		time.Sleep(5 * time.Millisecond) // want "time.Sleep reads the wall clock"
		return sync()
	}
	return nil
}

// The clock seam is the legal shape: timestamps arrive injected.
func syncLatencySeamed(now func() time.Time, sync func() error) (time.Duration, error) {
	start := now()
	err := sync()
	return now().Sub(start), err
}

// Duration constants and arithmetic never observe real time.
const flushEvery = 64 * time.Millisecond

func double(d time.Duration) time.Duration { return d * 2 }
