// Fixture: the codec rules. W1 — wire I/O and checksum results may
// not be discarded; W2 — a field the encoder writes must be read by
// the paired decoder; W3 — once a codec touches a struct, every field
// is either on the wire or suppressed with a reason at its
// declaration. Negatives pin the exemptions: in-memory writers,
// deferred close-out syncs, properly checked outcomes, and the block
// directive over a deliberate torn write.
package wcfix

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"io"
	"os"
)

// header is the fixture's wire struct. etag is rebuilt at decode and
// documents that at its declaration; crc has no such excuse.
type header struct {
	Version uint32
	Count   uint32
	crc     uint32 // want "field wcfix.header.crc is never touched by Encode"
	etag    string //geolint:allow wirecheck derived at decode: recomputed from the payload bytes
}

// Encode writes the header through an unexported helper; the parity
// closure follows the delegation.
func Encode(w io.Writer, h *header) error {
	if err := binary.Write(w, binary.LittleEndian, h.Version); err != nil {
		return err
	}
	return encodeCount(w, h)
}

func encodeCount(w io.Writer, h *header) error {
	return binary.Write(w, binary.LittleEndian, h.Count) // want "field wcfix.header.Count is written by Encode but never read by the paired Decode"
}

// Decode reads Version back but forgets Count.
func Decode(r io.Reader, h *header) error {
	return binary.Read(r, binary.LittleEndian, &h.Version)
}

// flush discards wire outcomes both ways W1 catches.
func flush(f *os.File, b []byte) {
	f.Write(b)   // want "discarded result of File.Write"
	_ = f.Sync() // want "error result of File.Sync assigned to _"
}

// digest drops a checksum on the floor: CRC results count too.
func digest(b []byte) {
	crc32.Checksum(b, crc32.MakeTable(crc32.Castagnoli)) // want "discarded result of crc32.Checksum"
}

// buffered is exempt: an in-memory writer's error exists only to
// satisfy the io interfaces.
func buffered(b *bytes.Buffer, p []byte) {
	b.Write(p)
}

// closeOut is exempt: the deferred close-out Sync idiom.
func closeOut(f *os.File) {
	defer f.Sync()
}

// checked is the proper shape: every outcome flows somewhere.
func checked(f *os.File, b []byte) error {
	if _, err := f.Write(b); err != nil {
		return err
	}
	return f.Sync()
}

// The block directive covers the whole next declaration: deliberate
// torn-write modeling, as the journal's crash hook does it.
//
//geolint:allow-block wirecheck deliberate torn half-frame, modeling a crash mid-record
func sever(f *os.File, b []byte) {
	f.Write(b[:len(b)/2])
	_ = f.Sync()
}
