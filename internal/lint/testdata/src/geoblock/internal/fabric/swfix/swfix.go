// Fixture: the shared-state discipline rules. S1 — fields declared
// below a struct's mutex are the guarded set, and access requires
// holding a lock or the *Locked caller-holds convention. S2 — atomic
// fields are touched only by their owning type's methods. S3 — no
// network I/O while a mutex may be held, seen through cross-package
// wrappers via the netio facts.
package swfix

import (
	"net"
	"sync"
	"sync/atomic"

	"geoblock/internal/netwrap"
)

// table follows the layout convention: gen is immutable after init and
// sits above mu; leases below mu is the guarded set.
type table struct {
	gen int64

	mu     sync.Mutex
	leases map[string]int
}

// get holds the lock: clean.
func (t *table) get(k string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.leases[k]
}

// getLocked declares that its caller holds the lock: clean.
func (t *table) getLocked(k string) int {
	return t.leases[k]
}

// generation reads above the mutex line: clean.
func (t *table) generation() int64 { return t.gen }

// peek touches the guarded set with no lock and no naming claim.
func (t *table) peek(k string) int {
	return t.leases[k] // want "field table.leases is declared below its guarding mutex but peek neither locks one nor follows the .Locked caller-holds convention"
}

// probe documents why its unguarded read is tolerable.
func (t *table) probe(k string) int {
	return t.leases[k] //geolint:allow swapcheck fixture-documented racy probe, result is advisory only
}

// holder owns an atomic field; only its methods may touch it.
type holder struct {
	v atomic.Int64
}

func (h *holder) load() int64 { return h.v.Load() }

// poke reaches into the atomic from outside the owning type.
func poke(h *holder) int64 {
	return h.v.Load() // want "atomic field swfix.holder.v touched outside swfix.holder's own methods"
}

// refreshDirect dials while holding the lock: the direct S3 case.
func (t *table) refreshDirect(addr string) {
	t.mu.Lock()
	_, _ = net.Dial("tcp", addr) // want "network I/O while a mutex may be held .calls net.Dial."
	t.mu.Unlock()
}

// refreshViaWrapper does the same through an out-of-scope wrapper; the
// netio fact sees through it.
func (t *table) refreshViaWrapper(addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	_ = netwrap.Ping(addr) // want "network I/O while a mutex may be held .calls netwrap.Ping, which calls net.Dial."
}

// refreshAfterUnlock copies the state out, unlocks, then calls: clean.
func (t *table) refreshAfterUnlock(addr string) {
	t.mu.Lock()
	n := len(t.leases)
	t.mu.Unlock()
	if n > 0 {
		_ = netwrap.Ping(addr)
	}
}
