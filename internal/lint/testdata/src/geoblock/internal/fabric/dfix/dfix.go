// Fixture: the determinism analyzer inside the fabric
// (geoblock/internal/fabric/...). Lease deadlines come from the
// coordinator's injected telemetry.Clock and worker backoff from the
// injected Sleep hook; a direct wall-clock read here would let lease
// expiry — and therefore which worker re-executes a unit — depend on
// real time, silently breaking the byte-identity chaos matrix.
package dfix

import "time"

// Reading real time for a lease deadline is the violation.
func leaseDeadline(ttl time.Duration) time.Time {
	return time.Now().Add(ttl) // want "time.Now reads the wall clock"
}

// So is sleeping the poll loop on the real clock instead of the
// injected Sleep hook.
func pollBackoff() {
	time.Sleep(200 * time.Millisecond) // want "time.Sleep reads the wall clock"
}

// An exact-line suppression survives the scope extension: the worker
// CLI wires time.Sleep in as the hook on purpose.
func wiredSleep() func(time.Duration) {
	return time.Sleep //geolint:allow determinism the CLI injects the wall clock at the edge
}

// TTL arithmetic never observes real time and stays legal.
const defaultTTL = 30 * time.Second

func halfTTL(ttl time.Duration) time.Duration { return ttl / 2 }
