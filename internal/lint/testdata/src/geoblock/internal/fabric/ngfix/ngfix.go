// Fixture: the nakedgo analyzer inside the fabric
// (geoblock/internal/fabric/...). The coordinator's HTTP handlers and
// the worker loop are synchronous by design — a stray goroutine here
// could complete a unit after its phase was torn down, racing the
// assembly's single-writer journal discipline.
package ngfix

import "sync"

// Firing a completion off to the side with no drain tie is the
// violation.
func completeAsync(post func()) {
	go post() // want "goroutine launch in the scan path"
}

// A bare literal is no better.
func leaseLoop(step func()) {
	go func() { // want "naked goroutine in the scan path"
		for {
			step()
		}
	}()
}

// The sanctioned shape: every worker goroutine tied to a WaitGroup so
// the fabric drains before results are read.
func runWorkers(workers []func()) {
	var wg sync.WaitGroup
	for _, w := range workers {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			w()
		}()
	}
	wg.Wait()
}
