// Fixture: the other half of the T2 cross-package conflict. This site
// sorts first (fabric < pipeline), so it fixes "tcfix.conflict" as a
// runtime gauge and the diagnostic lands on pipeline/tcfix's
// deterministic counter. The distinct name below stays quiet: one
// name, one class, no conflict.
package tcfix2

import "geoblock/internal/telemetry"

func register(reg *telemetry.Registry) {
	reg.RuntimeGauge("tcfix.conflict").Set(1)
	reg.RuntimeGauge("tcfix2.leases").Set(3)
}
