// The clockflow analyzer: the determinism invariant, interprocedurally.
// The determinism analyzer catches a time.Now written in the scan path;
// it cannot catch a scan-path call to a helper in another package that
// calls time.Now, because it reasons one call site at a time — one
// wrapper function defeats it. Clockflow closes that hole with facts:
// it runs over every package in dependency order, computes which
// declared functions transitively reach the wall clock or the global
// RNG (through any chain of wrappers, across any number of packages),
// exports that conclusion, and then flags scan-path call sites whose
// callee lives outside the scan path and carries the fact.
//
// Calls to functions inside the determinism scope are never reported
// here: within the scope, the determinism analyzer already polices
// every direct source line, and whatever it allowed — the clock.go
// Clock seam, an exact-line suppression — is a sanctioned seam whose
// transitive use is the point. Clockflow exists for the escape route
// determinism cannot see: out of the scope, through a wrapper, and
// back into real time.
package lint

import (
	"go/ast"
	"go/types"
)

func init() {
	RegisterFact("clockflow.reaches", func() Fact { return new(clockFact) })
}

// clockFact marks a function that transitively reaches the wall clock
// or global RNG. Via records the chain, for diagnostics.
type clockFact struct {
	Via string `json:"via"`
}

func (*clockFact) FactName() string { return "clockflow.reaches" }

// Clockflow flags scan-path calls into out-of-scope functions that
// transitively reach the wall clock or global RNG.
var Clockflow = &Analyzer{
	Name: "clockflow",
	Doc:  "scan-path code must not reach time.Now/Sleep or global RNG through wrapper functions in other packages",
	// Match is nil: facts must be computed for every package, because
	// the wrapper chain runs through packages the scan path merely
	// imports. Reporting is still gated on determinismScope below.
	Run: runClockflow,
}

// clockSeed reports whether n is itself a wall-clock or global-RNG
// source, returning the reason.
func clockSeed(info *types.Info) func(ast.Node) string {
	return func(n ast.Node) string {
		id, ok := n.(*ast.Ident)
		if !ok {
			return ""
		}
		fn, ok := info.Uses[id].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return ""
		}
		switch fn.Pkg().Path() {
		case "time":
			if wallClockFuncs[fn.Name()] {
				return "calls time." + fn.Name()
			}
		case "math/rand", "math/rand/v2":
			return "calls " + fn.Pkg().Path() + "." + fn.Name()
		}
		return ""
	}
}

func runClockflow(p *Pass) {
	reaches := propagate(p, clockSeed(p.Info), func(fn *types.Func) string {
		if f, ok := p.ObjectFact(fn); ok {
			return f.(*clockFact).Via
		}
		return ""
	})
	for fn, via := range reaches {
		p.ExportObjectFact(fn, &clockFact{Via: via})
	}

	if !determinismScope(p.Path) {
		return
	}
	// In scope: flag mentions of out-of-scope module functions that
	// carry the fact. Same-package functions and in-scope packages are
	// determinism's jurisdiction; stdlib functions carry no facts.
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			calleePkg := stripVariant(fn.Pkg().Path())
			if calleePkg == stripVariant(p.Pkg.Path()) || determinismScope(calleePkg) {
				return true
			}
			fact, ok := p.ObjectFact(fn)
			if !ok {
				return true
			}
			p.Reportf(id.Pos(), "%s.%s reaches the wall clock or global RNG (%s): scan-path timing and randomness must flow through the injected clock and seeded RNG, or output stops being reproducible",
				fn.Pkg().Name(), fn.Name(), fact.(*clockFact).Via)
			return true
		})
	}
}
