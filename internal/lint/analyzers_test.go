package lint_test

import (
	"testing"

	"geoblock/internal/lint"
	"geoblock/internal/lint/linttest"
)

// Each analyzer runs over fixture packages under testdata/src whose
// // want comments pin both its positives and its negatives. These are
// also the seeded violations of the acceptance criteria: a regression
// that stops an analyzer firing breaks an expectation here.

func TestDeterminism(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.Determinism,
		"geoblock/internal/pipeline/dfix",
		// The journal layer times fsyncs via the injected clock seam.
		"geoblock/internal/runstore/dfix",
		// Telemetry: wall clock legal only in the clock.go Clock seam.
		"geoblock/internal/telemetry/tfix",
		// The fabric: lease deadlines and worker backoff must flow
		// through the injected clock/Sleep seams.
		"geoblock/internal/fabric/dfix",
		// The verdict edge: limiter refills and snapshot versions must
		// come from the injected clock and the world's policy clock.
		"geoblock/internal/verdict/dfix",
		// The trace layer: event stamps flow through the tracer's
		// injected clocks, never a direct wall read.
		"geoblock/internal/trace/dfix",
		// Out of scope: the wall clock is legal off the scan path.
		"geoblock/internal/cdnid/dfix")
}

func TestMapsort(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.Mapsort,
		"geoblock/internal/papertables/msfix")
}

func TestCtxflow(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.Ctxflow,
		"geoblock/internal/scanner/cfix")
}

func TestOutcomecheck(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.Outcomecheck,
		"geoblock/internal/pipeline/ocfix")
}

func TestNakedgo(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.Nakedgo,
		"geoblock/internal/scanner/ngfix",
		"geoblock/internal/fabric/ngfix",
		"geoblock/internal/verdict/ngfix")
}

func TestClockflow(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.Clockflow,
		// Facts flow clockwrap → timeutil → the scan path: the wrapper
		// around time.Now sits two packages away from the diagnostic.
		"geoblock/internal/clockwrap",
		"geoblock/internal/timeutil",
		"geoblock/internal/scanner/cffix")
}

func TestWirecheck(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.Wirecheck,
		"geoblock/internal/runstore/wcfix")
}

func TestTelemetrycheck(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.Telemetrycheck,
		// Both packages in one Check call: the T2 class conflict is a
		// cross-package reconciliation in the Finish pass.
		"geoblock/internal/fabric/tcfix2",
		"geoblock/internal/pipeline/tcfix",
		// Trace instrumentation: per-event metric names are dynamic
		// names, the namespace audit's nightmare case.
		"geoblock/internal/trace/tcfix")
}

func TestSwapcheck(t *testing.T) {
	linttest.Run(t, "testdata/src", lint.Swapcheck,
		// netwrap is out of scope but its netio facts feed swfix's S3.
		"geoblock/internal/netwrap",
		"geoblock/internal/fabric/swfix",
		// The tracer's event store and flight ring are mutex-guarded
		// shared state like any other snapshot.
		"geoblock/internal/trace/swfix")
}
