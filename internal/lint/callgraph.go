// Intra-package call-graph propagation, shared by the interprocedural
// analyzers (clockflow, swapcheck). The model is deliberately simple:
// a function "reaches" a property if its body contains a seed node, if
// it mentions a same-package function that reaches it, or if it calls
// a cross-package function whose exported fact says it does. Mentions
// count, not just calls — assigning time.Sleep to a struct field is as
// much of an escape as calling it — and function-literal bodies taint
// the declaration that encloses them, which is the conservative
// direction for goroutines and callbacks.
//
// What this model cannot see, on purpose: calls through interfaces and
// function values (no concrete callee, no fact), and the standard
// library's internals (loaded without function bodies). Both keep the
// suite fast and quiet; the invariants geovet proves are about the
// engine's own seams, not the runtime's.
package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// funcDecls maps every function and method declared in the package to
// its declaration.
func funcDecls(p *Pass) map[*types.Func]*ast.FuncDecl {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fd.Body == nil {
				continue // declared elsewhere (assembly, linkname)
			}
			if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	return decls
}

// propagate computes, for every function declared in the package, a
// non-empty reason string when it transitively reaches the property:
//
//   - seed returns a reason when an AST node in a body is itself a
//     source (e.g. an identifier resolving to time.Now);
//   - imported returns a reason when a mentioned cross-package
//     function carries the property as an exported fact.
//
// Reasons chain ("calls stamp, which calls time.Now") so diagnostics
// can show the path. Propagation through same-package mentions runs to
// a fixpoint in deterministic order.
func propagate(p *Pass, seed func(n ast.Node) string, imported func(fn *types.Func) string) map[*types.Func]string {
	decls := funcDecls(p)
	reason := map[*types.Func]string{}
	callees := map[*types.Func][]*types.Func{}

	var order []*types.Func
	for fn := range decls {
		order = append(order, fn)
	}
	sort.Slice(order, func(i, j int) bool { return order[i].Pos() < order[j].Pos() })

	for _, fn := range order {
		var mentions []*types.Func
		ast.Inspect(decls[fn].Body, func(n ast.Node) bool {
			if reason[fn] != "" {
				return false
			}
			if why := seed(n); why != "" {
				reason[fn] = why
				return false
			}
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			callee, ok := p.Info.Uses[id].(*types.Func)
			if !ok || callee.Pkg() == nil {
				return true
			}
			if _, samePkg := decls[callee]; samePkg {
				mentions = append(mentions, callee)
			} else if why := imported(callee); why != "" {
				reason[fn] = "calls " + callee.Pkg().Name() + "." + callee.Name() + ", which " + why
				return false
			}
			return true
		})
		callees[fn] = mentions
	}

	for changed := true; changed; {
		changed = false
		for _, fn := range order {
			if reason[fn] != "" {
				continue
			}
			for _, c := range callees[fn] {
				if why := reason[c]; why != "" {
					reason[fn] = "calls " + c.Name() + ", which " + why
					changed = true
					break
				}
			}
		}
	}
	return reason
}
