// Package lint is geolint: the static-analysis suite that machine-checks
// the invariants the scan engine's determinism and degradation contracts
// rest on. The engine promises byte-identical output at any concurrency
// under any fault profile (DESIGN.md §6); that promise is carried by
// conventions the compiler cannot see — no wall clock or global RNG in
// the scan path, contexts threaded end to end, every scanner.Outage and
// sink error handled, no stray goroutines. Each convention is encoded
// here as an analyzer, so a violation fails `make check` instead of
// waiting for a flaky chaos run or a reviewer's memory.
//
// The suite is a deliberately small, dependency-free sibling of
// golang.org/x/tools/go/analysis: an Analyzer inspects one type-checked
// package at a time and reports Diagnostics; the driver (cmd/geolint)
// loads the module — test files included — and runs every analyzer whose
// scope matches. Targeted escapes use exact-line suppression comments:
//
//	time.Sleep(d) //geolint:allow determinism benchmarking wall time
//
// A suppression names the analyzer it silences and must carry a reason;
// a reasonless or unknown-analyzer directive is itself a diagnostic, and
// a directive only covers its own line, so an allowance can never leak
// to neighboring code.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer checks one invariant over one type-checked package.
type Analyzer struct {
	// Name is the analyzer's identifier, used in diagnostics and in
	// //geolint:allow directives.
	Name string
	// Doc states the invariant the analyzer encodes.
	Doc string
	// Match reports whether the analyzer applies to a package. It is
	// given the package's scope path (the import path with any test
	// variant decoration stripped, so in-package test files are checked
	// under the same scope as the code they test). Nil means every
	// package.
	Match func(pkgPath string) bool
	// Run inspects one package, reporting findings through the pass.
	Run func(*Pass)
	// Finish, if non-nil, runs once after every package, for
	// module-wide reconciliation over the facts Run exported (see
	// fact.go). Analyzers without cross-package state leave it nil.
	Finish func(*FinishPass)
}

// A Pass is one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Path is the package's scope path (see Analyzer.Match).
	Path string

	diags *[]Diagnostic
	facts *factStore
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// All returns the full geolint suite.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism,
		Mapsort,
		Ctxflow,
		Outcomecheck,
		Nakedgo,
		Clockflow,
		Wirecheck,
		Telemetrycheck,
		Swapcheck,
	}
}

// Check runs every matching analyzer over pkgs — dependencies first,
// so fact-exporting analyzers see their imports' conclusions — applies
// //geolint:allow suppressions, and returns the surviving diagnostics
// in file/line order. Malformed suppression directives are returned as
// diagnostics in their own right.
func Check(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	facts := newFactStore()
	for _, pkg := range topoOrder(pkgs) {
		for _, a := range analyzers {
			if a.Match != nil && !a.Match(pkg.Path) {
				continue
			}
			a.Run(&Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Path:     pkg.Path,
				diags:    &diags,
				facts:    facts,
			})
		}
	}
	for _, a := range analyzers {
		if a.Finish != nil {
			a.Finish(&FinishPass{Analyzer: a, facts: facts, diags: &diags})
		}
	}

	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	allows, malformed := collectAllows(pkgs, known)

	kept := malformed
	for _, d := range diags {
		if allows.suppresses(d) {
			continue
		}
		kept = append(kept, d)
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return kept
}

// topoOrder returns pkgs with every package after the packages it
// imports (restricted to pkgs itself), so facts exported about a
// dependency exist before its importers are analyzed. Packages are
// matched by variant-stripped path: a test-augmented variant
// ("p [p.test]") stands in for the plain package its importers link
// against. Import cycles through test variants (p's tests import q,
// q's tests import p) cannot be ordered both ways; the DFS breaks
// them arbitrarily, which only costs fact precision, never a loop.
func topoOrder(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[stripVariant(p.Types.Path())] = p
	}
	order := make([]*Package, 0, len(pkgs))
	state := make(map[*Package]int, len(pkgs)) // 0 unvisited, 1 visiting, 2 done
	var visit func(p *Package)
	visit = func(p *Package) {
		if state[p] != 0 {
			return
		}
		state[p] = 1
		for _, imp := range p.Types.Imports() {
			if dep, ok := byPath[stripVariant(imp.Path())]; ok && dep != p {
				visit(dep)
			}
		}
		state[p] = 2
		order = append(order, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return order
}

// tokenPosition builds a Position for diagnostics reported from facts,
// which carry file and line but no offset.
func tokenPosition(file string, line int) token.Position {
	return token.Position{Filename: file, Line: line, Column: 1}
}

// scope builds a Match func from import-path patterns. A bare path
// matches exactly; a trailing "/..." matches the path and everything
// below it.
func scope(patterns ...string) func(string) bool {
	return func(pkgPath string) bool {
		for _, pat := range patterns {
			if prefix, ok := strings.CutSuffix(pat, "/..."); ok {
				if pkgPath == prefix || strings.HasPrefix(pkgPath, prefix+"/") {
					return true
				}
			} else if pkgPath == pat {
				return true
			}
		}
		return false
	}
}

// funcFor resolves the *types.Func a call expression invokes (through
// package selectors, method values, and interface methods), or nil for
// builtins, conversions, and indirect calls through variables.
func funcFor(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the named function of the named
// package (methods do not count).
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath &&
		fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}

// isNamedType reports whether t (after pointer stripping) is the named
// type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// fileName returns the on-disk name of the file holding pos. It asks
// the FileSet for the unadjusted position: a generated or fixture file
// carrying //line directives must be classified by the file it IS, not
// the file it claims to be, or a directive could smuggle scan-path
// code into a _test.go or clock.go exemption.
func fileName(fset *token.FileSet, pos token.Pos) string {
	return fset.PositionFor(pos, false).Filename
}

// isTestFile reports whether pos sits in a _test.go file.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fileName(fset, pos), "_test.go")
}

// errorIface is the universe error interface, for Implements checks.
var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// returnsError returns the result indices of fn's signature whose type
// is the error interface (wrapped error types count too).
func errorResults(fn *types.Func) []int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var idx []int
	for i := 0; i < sig.Results().Len(); i++ {
		if types.Implements(sig.Results().At(i).Type(), errorIface) {
			idx = append(idx, i)
		}
	}
	return idx
}
