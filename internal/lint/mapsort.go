// The mapsort analyzer: map iteration order must never reach an output.
// Go randomizes map range order per run, so a loop that ranges over a
// map and emits to a sink, writes a table, or accumulates an output
// slice produces differently-ordered artifacts on every invocation —
// the exact failure the golden-file papertables tests and byte-identical
// chaos assertions exist to catch, surfaced here at compile time rather
// than as a flaky diff. Order-independent folds (summing into another
// map, taking a min) stay legal; the collect-keys-then-sort idiom is
// recognized as the fix.
package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Mapsort flags map-range loops whose iteration order escapes into a
// sink, writer, or output slice without a deterministic sort.
var Mapsort = &Analyzer{
	Name:  "mapsort",
	Doc:   "flag range-over-map loops that write to sinks, tables, or output slices without an intervening deterministic sort",
	Match: scope("geoblock/..."),
	Run:   runMapsort,
}

func runMapsort(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fn := funcBody(n)
			if fn == nil {
				return true
			}
			checkMapRanges(p, fn)
			return true
		})
	}
}

// funcBody returns n's body if n declares a function.
func funcBody(n ast.Node) *ast.BlockStmt {
	switch fn := n.(type) {
	case *ast.FuncDecl:
		return fn.Body
	case *ast.FuncLit:
		return fn.Body
	}
	return nil
}

// checkMapRanges inspects one function body. Nested function literals
// are handled by their own funcBody visit; their statements still count
// as "after the loop" text for the sort search, which is the
// conservative direction.
func checkMapRanges(p *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := p.Info.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(p, body, rng)
		return true
	})
}

func checkMapRangeBody(p *Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, ok := sinkWrite(p.Info, n); ok {
				p.Reportf(n.Pos(), "%s inside range over a map emits in map iteration order; collect and sort the keys first", name)
			}
		case *ast.AssignStmt:
			// x = append(x, ...) where x outlives the loop: the map's
			// iteration order becomes the slice's element order.
			obj, appendCall := outerAppend(p.Info, n, rng)
			if obj == nil {
				return true
			}
			if !sortedAfter(p.Info, funcBody, rng, obj) {
				p.Reportf(appendCall.Pos(), "range over a map appends to %s in map iteration order and %s is never sorted afterwards; sort it (sort.Slice, sort.Strings, ...) before it is used", obj.Name(), obj.Name())
			}
		}
		return true
	})
}

// sinkWrite reports whether call delivers output whose order matters:
// an Emit/EmitOutage/EmitCoverage sink call, or any call handed an
// io.Writer (fmt.Fprintf, report.Table, w.Write, ...).
func sinkWrite(info *types.Info, call *ast.CallExpr) (string, bool) {
	if fn := funcFor(info, call); fn != nil {
		switch fn.Name() {
		case "Emit", "EmitOutage", "EmitCoverage":
			return fn.Name(), true
		}
	}
	for _, arg := range call.Args {
		t := info.TypeOf(arg)
		if t != nil && types.Implements(t, ioWriterIface) {
			name := "call"
			if fn := funcFor(info, call); fn != nil {
				name = fn.Name()
			}
			return name + " (writes to an io.Writer)", true
		}
	}
	// Method writes on a writer receiver: buf.WriteString, w.Write, ...
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && strings.HasPrefix(sel.Sel.Name, "Write") {
		if t := info.TypeOf(sel.X); t != nil && types.Implements(t, ioWriterIface) {
			return sel.Sel.Name + " (writes to an io.Writer)", true
		}
	}
	return "", false
}

// outerAppend matches `x = append(x, ...)` (or x’s further elements)
// assigning to a variable declared outside the range statement, and
// returns that variable and the append call.
func outerAppend(info *types.Info, as *ast.AssignStmt, rng *ast.RangeStmt) (types.Object, *ast.CallExpr) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil, nil
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return nil, nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil, nil
	}
	callee, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || callee.Name != "append" {
		return nil, nil
	}
	if _, isBuiltin := info.Uses[callee].(*types.Builtin); !isBuiltin {
		return nil, nil // a user-defined append, not the builtin
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil || obj.Pos() >= rng.Pos() {
		return nil, nil // loop-local accumulator: its order dies with the loop body
	}
	return obj, call
}

// sortedAfter reports whether, lexically after the range loop, obj is
// passed (anywhere in the argument tree) to a call whose callee name
// mentions sorting — sort.Slice, sort.Strings, slices.SortFunc, a local
// sortCodes helper, and so on.
func sortedAfter(info *types.Info, funcBody *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || found {
			return !found
		}
		var name string
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			// Keep the qualifier: sort.Strings's tell is the package name.
			name = fun.Sel.Name
			if x, ok := fun.X.(*ast.Ident); ok {
				name = x.Name + "." + name
			}
		default:
			return true
		}
		if !strings.Contains(strings.ToLower(name), "sort") {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && info.Uses[id] == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// ioWriterIface is a structural stand-in for io.Writer, built by hand
// so the check needs no handle on the io package's type object.
var ioWriterIface = func() *types.Interface {
	sig := types.NewSignatureType(nil, nil, nil,
		types.NewTuple(types.NewVar(0, nil, "p", types.NewSlice(types.Typ[types.Byte]))),
		types.NewTuple(types.NewVar(0, nil, "n", types.Typ[types.Int]),
			types.NewVar(0, nil, "err", types.Universe.Lookup("error").Type())),
		false)
	iface := types.NewInterfaceType([]*types.Func{types.NewFunc(0, nil, "Write", sig)}, nil)
	iface.Complete()
	return iface
}()
