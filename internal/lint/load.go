// The loader: stdlib-only package loading and type checking for the
// whole module, test files included. One `go list -test -deps -json`
// invocation enumerates every package (and its transitive standard
// library closure) with module-aware file lists; the loader then parses
// and type-checks bottom-up with go/types, feeding imports from the
// packages it has already checked. Nothing here talks to the network or
// needs golang.org/x/tools — the go toolchain the repo already builds
// with is the only dependency.
package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one loaded, type-checked analysis target.
type Package struct {
	// Path is the scope path analyzers match against: the import path
	// with go list's test-variant decoration stripped, so the files of
	// "geoblock [geoblock.test]" and "geoblock_test [geoblock.test]"
	// are both checked under the scope "geoblock".
	Path string
	// ImportPath is go list's undoctored identifier.
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Standard   bool
	ForTest    string
	Error      *struct{ Err string }
	DepsErrors []struct{ Err string }
}

// Load enumerates patterns (default "./...") relative to dir and
// returns the module's packages, type-checked with full syntax and
// type information. In-package and external test files are included:
// go list's test-augmented variants replace the plain package so test
// code faces the same invariants as the code it exercises.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-test", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// A pure-Go view of the tree: cgo files would need a C toolchain to
	// even enumerate, and nothing in the scan path may depend on them.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %w\n%s", strings.Join(patterns, " "), err, errb.String())
	}

	byPath := map[string]*listPkg{}
	var order []*listPkg
	dec := json.NewDecoder(&out)
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		byPath[p.ImportPath] = p
		order = append(order, p)
	}

	ld := &loader{
		fset:   token.NewFileSet(),
		byPath: byPath,
		typed:  map[string]*types.Package{"unsafe": types.Unsafe},
		info:   map[string]*pkgSyntax{},
	}

	// Which plain packages are superseded by a test-augmented variant
	// ("P [P.test]" carries P's GoFiles plus its in-package test files)?
	augmented := map[string]bool{}
	for _, p := range order {
		if p.ForTest != "" && strings.HasPrefix(p.ImportPath, p.ForTest+" [") {
			augmented[p.ForTest] = true
		}
	}

	var pkgs []*Package
	var loadErrs []error
	seen := map[string]bool{}
	for _, p := range order {
		if seen[p.ImportPath] {
			continue
		}
		seen[p.ImportPath] = true
		switch {
		case p.Standard,
			strings.HasSuffix(p.ImportPath, ".test"), // synthetic test main
			p.ForTest == "" && augmented[p.ImportPath]:
			continue
		}
		if p.Error != nil {
			loadErrs = append(loadErrs, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err))
			continue
		}
		tp, err := ld.check(p)
		if err != nil {
			loadErrs = append(loadErrs, fmt.Errorf("lint: %s: %w", p.ImportPath, err))
			continue
		}
		syn := ld.info[p.ImportPath]
		pkgs = append(pkgs, &Package{
			Path:       scopePath(p),
			ImportPath: p.ImportPath,
			Fset:       ld.fset,
			Files:      syn.files,
			Types:      tp,
			Info:       syn.info,
		})
	}
	return pkgs, errors.Join(loadErrs...)
}

// scopePath strips test-variant decoration: the scope of both
// "P [P.test]" and "P_test [P.test]" is P.
func scopePath(p *listPkg) string {
	if p.ForTest != "" {
		return p.ForTest
	}
	return p.ImportPath
}

// pkgSyntax keeps the syntax and type info of a checked module package.
type pkgSyntax struct {
	files []*ast.File
	info  *types.Info
}

// loader type-checks packages on demand, memoizing results. Standard
// library packages are checked with IgnoreFuncBodies (their exported
// signatures are all analyzers need); module packages keep full bodies,
// comments, and types.Info.
type loader struct {
	fset   *token.FileSet
	byPath map[string]*listPkg
	typed  map[string]*types.Package
	info   map[string]*pkgSyntax
}

func (ld *loader) check(p *listPkg) (*types.Package, error) {
	if tp, ok := ld.typed[p.ImportPath]; ok {
		return tp, nil
	}

	mode := parser.ParseComments | parser.SkipObjectResolution
	if p.Standard {
		mode = parser.SkipObjectResolution
	}
	var files []*ast.File
	for _, name := range p.GoFiles {
		af, err := parser.ParseFile(ld.fset, filepath.Join(p.Dir, name), nil, mode)
		if err != nil {
			return nil, err
		}
		files = append(files, af)
	}

	cfg := &types.Config{
		Importer:         importerFunc(func(path string) (*types.Package, error) { return ld.importPath(p, path) }),
		IgnoreFuncBodies: p.Standard,
	}
	var firstErr error
	cfg.Error = func(err error) {
		// The standard library may use compiler intrinsics go/types
		// cannot fully check without bodies; only module packages must
		// check cleanly (and `go build`, which gates before geolint,
		// guarantees they do).
		if !p.Standard && firstErr == nil {
			firstErr = err
		}
	}
	var info *types.Info
	if !p.Standard {
		info = &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Uses:       map[*ast.Ident]types.Object{},
			Defs:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
	}
	tp, err := cfg.Check(p.ImportPath, ld.fset, files, info)
	if !p.Standard && firstErr != nil {
		return nil, firstErr
	}
	if tp == nil && err != nil && !p.Standard {
		return nil, err
	}
	ld.typed[p.ImportPath] = tp
	if !p.Standard {
		ld.info[p.ImportPath] = &pkgSyntax{files: files, info: info}
	}
	return tp, nil
}

// importPath resolves an import seen in from's files: through the
// package's ImportMap first (which routes test imports to augmented
// variants), then to the package listing.
func (ld *loader) importPath(from *listPkg, path string) (*types.Package, error) {
	if mapped, ok := from.ImportMap[path]; ok {
		path = mapped
	}
	if tp, ok := ld.typed[path]; ok {
		return tp, nil
	}
	p, ok := ld.byPath[path]
	if !ok {
		return nil, fmt.Errorf("import %q not in go list output", path)
	}
	return ld.check(p)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// A StdImporter resolves standard-library imports (signatures only),
// fetching `go list` metadata on demand. The fixture loader in linttest
// uses it so analyzer fixtures can import time, fmt, or sync without a
// module load; fixture-local packages are resolved by the caller before
// falling back here.
type StdImporter struct {
	ld *loader
}

// NewStdImporter returns a StdImporter sharing fset's positions.
func NewStdImporter(fset *token.FileSet) *StdImporter {
	return &StdImporter{ld: &loader{
		fset:   fset,
		byPath: map[string]*listPkg{},
		typed:  map[string]*types.Package{"unsafe": types.Unsafe},
		info:   map[string]*pkgSyntax{},
	}}
}

// Import type-checks path and its dependency closure.
func (si *StdImporter) Import(path string) (*types.Package, error) {
	if tp, ok := si.ld.typed[path]; ok {
		return tp, nil
	}
	if _, ok := si.ld.byPath[path]; !ok {
		cmd := exec.Command("go", "list", "-deps", "-json", path)
		cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
		var out, errb bytes.Buffer
		cmd.Stdout = &out
		cmd.Stderr = &errb
		if err := cmd.Run(); err != nil {
			return nil, fmt.Errorf("lint: go list %s: %w\n%s", path, err, errb.String())
		}
		dec := json.NewDecoder(&out)
		for {
			p := new(listPkg)
			if err := dec.Decode(p); err == io.EOF {
				break
			} else if err != nil {
				return nil, fmt.Errorf("lint: decoding go list output: %w", err)
			}
			if _, ok := si.ld.byPath[p.ImportPath]; !ok {
				si.ld.byPath[p.ImportPath] = p
			}
		}
	}
	p, ok := si.ld.byPath[path]
	if !ok {
		return nil, fmt.Errorf("lint: unknown package %q", path)
	}
	return si.ld.check(p)
}
