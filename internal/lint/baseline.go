// The baseline ratchet: geolint's committed debt ledger. A baseline
// entry is one accepted diagnostic — analyzer, module-relative file,
// exact message — with a count, deliberately without a line number so
// unrelated edits above an accepted finding do not churn the file. The
// contract is a one-way ratchet: a diagnostic not covered by the
// baseline fails the build (CI catches a new finding the moment it is
// introduced), while a baseline entry no diagnostic matches is
// reported as stale so the ledger can only shrink toward zero.
//
// Inline //geolint:allow directives and the baseline serve different
// masters: a directive documents a finding that is *correct to keep*
// (a crash hook that must tear a frame), the baseline parks a finding
// that is *accepted for now* (an init-path access the heuristic cannot
// prove single-threaded). New code gets directives; the baseline is
// for the debt a new analyzer surfaces in old code.
package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// baselineKey identifies one accepted diagnostic shape.
type baselineKey struct {
	Analyzer string
	File     string // module-relative, slash-separated
	Message  string
}

// A Baseline is a multiset of accepted diagnostics.
type Baseline struct {
	counts map[baselineKey]int
}

// LoadBaseline reads a baseline file. A missing file is an empty
// baseline, so a fresh checkout ratchets from zero.
func LoadBaseline(path string) (*Baseline, error) {
	b := &Baseline{counts: map[baselineKey]int{}}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return b, nil
		}
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.SplitN(line, "\t", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("%s:%d: want <analyzer>\\t<file>\\t<message>", path, lineNo)
		}
		b.counts[baselineKey{parts[0], parts[1], parts[2]}]++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b, nil
}

// Apply splits diags into the ones the baseline covers and the ones it
// does not, and returns any stale entries (baselined shapes no current
// diagnostic matches, formatted for display). Counts ratchet: three
// accepted findings of one shape cover at most three diagnostics.
// Paths in diags are made relative to root before matching.
func (b *Baseline) Apply(root string, diags []Diagnostic) (covered, surviving []Diagnostic, stale []string) {
	remaining := make(map[baselineKey]int, len(b.counts))
	for k, n := range b.counts {
		remaining[k] = n
	}
	for _, d := range diags {
		k := baselineKey{d.Analyzer, relPath(root, d.Pos.Filename), d.Message}
		if remaining[k] > 0 {
			remaining[k]--
			covered = append(covered, d)
		} else {
			surviving = append(surviving, d)
		}
	}
	for k, n := range remaining {
		if n > 0 {
			stale = append(stale, fmt.Sprintf("%s\t%s\t%s (×%d)", k.Analyzer, k.File, k.Message, n))
		}
	}
	sort.Strings(stale)
	return covered, surviving, stale
}

// FormatBaseline renders diags as baseline file content, sorted and
// prefixed with the header comment.
func FormatBaseline(root string, diags []Diagnostic) string {
	var lines []string
	for _, d := range diags {
		lines = append(lines, fmt.Sprintf("%s\t%s\t%s", d.Analyzer, relPath(root, d.Pos.Filename), d.Message))
	}
	sort.Strings(lines)
	var sb strings.Builder
	sb.WriteString("# geolint baseline: accepted diagnostics, one per line as\n")
	sb.WriteString("# <analyzer>\\t<file>\\t<message>. The ratchet only tightens —\n")
	sb.WriteString("# new findings fail the build, and stale entries are flagged so\n")
	sb.WriteString("# this file shrinks toward empty. Regenerate with\n")
	sb.WriteString("#   go run ./cmd/geolint -write-baseline lint.baseline ./...\n")
	for _, l := range lines {
		sb.WriteString(l)
		sb.WriteString("\n")
	}
	return sb.String()
}

// relPath makes file relative to root in slash form; files outside
// root (GOROOT positions should not occur, but belt and braces) keep
// their absolute path.
func relPath(root, file string) string {
	if root == "" {
		return filepath.ToSlash(file)
	}
	rel, err := filepath.Rel(root, file)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(file)
	}
	return filepath.ToSlash(rel)
}
