// The telemetrycheck analyzer: the metric namespace is static and
// class-consistent. The telemetry layer splits metrics into a
// deterministic class (part of the byte-identical snapshot contract)
// and a runtime class (wall-clock-adjacent, excluded from it), with a
// name's class fixed at first registration (DESIGN.md §8). Three ways
// to silently break that audit:
//
// T1: a dynamic metric name. If the name isn't a string literal, a
// package const, or telemetry.Label over one (with literal keys —
// label values may be dynamic, that is what labels are for), the
// registry's first-registration-wins class rule depends on runtime
// data and the namespace can't be audited statically. A name that is a
// parameter of an unexported helper is traced one level: every call
// site must pass a static name.
//
// T2: the same name registered with different classes (or kinds) in
// different packages. Each package exports the registrations it
// makes as a fact; a Finish pass reconciles them module-wide, so
// scanner registering a deterministic counter and a daemon registering
// the same name as a runtime gauge collide at build time, not in a
// diverging snapshot.
//
// T3: a deterministic-class registration reachable only from an HTTP
// handler. Serving traffic is runtime by definition — a det-class
// metric mutated per request makes the deterministic snapshot a
// function of load. Flagged when the registration sits in a
// handler-shaped function, or in an unexported function whose only
// intra-package callers are handler-shaped.
//
// internal/telemetry itself is exempt: it is the layer's implementor,
// and its Merge/Snapshot plumbing necessarily handles names and
// classes as data.
package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

func init() {
	RegisterFact("telemetrycheck.regs", func() Fact { return new(telemetryFact) })
}

// metricReg is one metric registration: resolved name, kind, class,
// and where.
type metricReg struct {
	Name    string `json:"name"`
	Kind    string `json:"kind"` // counter | gauge | histogram
	Runtime bool   `json:"runtime"`
	File    string `json:"file"`
	Line    int    `json:"line"`
}

// telemetryFact is a package's metric registrations, for the
// module-wide class audit.
type telemetryFact struct {
	Regs []metricReg `json:"regs"`
}

func (*telemetryFact) FactName() string { return "telemetrycheck.regs" }

const telemetryPkg = "geoblock/internal/telemetry"

// registryMethods maps telemetry.Registry constructor names to
// (kind, runtime class).
var registryMethods = map[string]struct {
	kind    string
	runtime bool
}{
	"Counter":          {"counter", false},
	"RuntimeCounter":   {"counter", true},
	"Gauge":            {"gauge", false},
	"RuntimeGauge":     {"gauge", true},
	"Histogram":        {"histogram", false},
	"RuntimeHistogram": {"histogram", true},
}

// Telemetrycheck enforces static metric names and module-wide
// name/class consistency.
var Telemetrycheck = &Analyzer{
	Name: "telemetrycheck",
	Doc:  "metric names must be literals or consts, registered with one class module-wide; deterministic metrics must stay off runtime-only paths",
	// Match is nil: registrations anywhere in the module feed the
	// cross-package class audit. The telemetry package itself is
	// exempted in Run.
	Run:    runTelemetrycheck,
	Finish: finishTelemetrycheck,
}

func runTelemetrycheck(p *Pass) {
	if p.Path == telemetryPkg || !strings.HasPrefix(p.Path, "geoblock") {
		return
	}
	decls := funcDecls(p)
	handlerish := handlerOnly(p, decls)

	var regs []metricReg
	record := func(name string, kind string, runtime bool, pos ast.Node) {
		position := p.Fset.Position(pos.Pos())
		regs = append(regs, metricReg{Name: name, Kind: kind, Runtime: runtime, File: position.Filename, Line: position.Line})
	}

	var fns []*types.Func
	for fn := range decls {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Pos() < fns[j].Pos() })

	for _, fn := range fns {
		decl := decls[fn]
		if isTestFile(p.Fset, decl.Pos()) {
			// Tests stage scratch registries with throwaway names;
			// the namespace audit is about what ships.
			continue
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := funcFor(p.Info, call)
			m, ok := isRegistryCall(callee)
			if !ok || len(call.Args) == 0 {
				return true
			}
			nameArg := call.Args[0]
			name, static := staticMetricName(p, nameArg)
			if !static {
				if !tracedParam(p, decls, fn, decl, nameArg, m, record) {
					p.Reportf(nameArg.Pos(), "metric name for %s is not a string literal, package const, or telemetry.Label over one: a dynamic name defeats the registry's static class audit", callee.Name())
				}
			} else {
				record(name, m.kind, m.runtime, nameArg)
			}
			if !m.runtime && handlerish[fn] {
				p.Reportf(call.Pos(), "deterministic-class %s registered on an HTTP-handler path: serving load would perturb the byte-identical snapshot; use the runtime class (Runtime%s)", callee.Name(), callee.Name())
			}
			return true
		})
	}
	if len(regs) > 0 {
		sort.Slice(regs, func(i, j int) bool {
			if regs[i].File != regs[j].File {
				return regs[i].File < regs[j].File
			}
			return regs[i].Line < regs[j].Line
		})
		p.ExportPackageFact(&telemetryFact{Regs: regs})
	}
}

// isRegistryCall reports whether fn is a telemetry.Registry metric
// constructor, and which one.
func isRegistryCall(fn *types.Func) (struct {
	kind    string
	runtime bool
}, bool) {
	var zero struct {
		kind    string
		runtime bool
	}
	if fn == nil || fn.Pkg() == nil || stripVariant(fn.Pkg().Path()) != telemetryPkg {
		return zero, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !isNamedType(sig.Recv().Type(), fn.Pkg().Path(), "Registry") {
		return zero, false
	}
	m, ok := registryMethods[fn.Name()]
	return m, ok
}

// staticMetricName resolves e to a compile-time metric name: a string
// literal, a constant, or telemetry.Label(base, k1, v1, ...) where
// base and the keys are static (values may be dynamic). Returns the
// base name — labeled variants share their base's class.
func staticMetricName(p *Pass, e ast.Expr) (string, bool) {
	e = ast.Unparen(e)
	if tv, ok := p.Info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value), true
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	fn := funcFor(p.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Name() != "Label" || stripVariant(fn.Pkg().Path()) != telemetryPkg {
		return "", false
	}
	if len(call.Args) == 0 {
		return "", false
	}
	base, ok := staticMetricName(p, call.Args[0])
	if !ok {
		return "", false
	}
	// Keys sit at odd argument indices (1, 3, ...); values between
	// them may be dynamic.
	for i := 1; i < len(call.Args); i += 2 {
		tv, ok := p.Info.Types[ast.Unparen(call.Args[i])]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			p.Reportf(call.Args[i].Pos(), "telemetry.Label key is not a string literal or const: dynamic keys make the metric namespace unbounded and unauditable")
			// Report once and treat the base as resolved; the key
			// diagnostic is the actionable one.
		}
	}
	return base, true
}

// tracedParam handles the one sanctioned indirection: the name is a
// parameter of an unexported same-package helper (the c.count(name)
// idiom). Every intra-package call site must then pass a static name,
// each of which is recorded as a registration in its own right.
func tracedParam(p *Pass, decls map[*types.Func]*ast.FuncDecl, fn *types.Func, decl *ast.FuncDecl, arg ast.Expr, m struct {
	kind    string
	runtime bool
}, record func(string, string, bool, ast.Node)) bool {
	id, ok := ast.Unparen(arg).(*ast.Ident)
	if !ok {
		return false
	}
	obj, ok := p.Info.Uses[id].(*types.Var)
	if !ok || fn.Exported() {
		return false
	}
	// Which parameter of fn is it?
	sig := fn.Type().(*types.Signature)
	idx := -1
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == obj {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	// Every call of fn in the package must pass a static name there.
	ok = true
	for caller, callerDecl := range decls {
		if caller == fn {
			continue
		}
		ast.Inspect(callerDecl.Body, func(n ast.Node) bool {
			call, okCall := n.(*ast.CallExpr)
			if !okCall || funcFor(p.Info, call) != fn || idx >= len(call.Args) {
				return true
			}
			if isTestFile(p.Fset, call.Pos()) {
				return true
			}
			name, static := staticMetricName(p, call.Args[idx])
			if !static {
				p.Reportf(call.Args[idx].Pos(), "metric name passed to %s is not a string literal or package const: a dynamic name defeats the registry's static class audit", fn.Name())
				ok = false
				return true
			}
			record(name, m.kind, m.runtime, call.Args[idx])
			return true
		})
	}
	return ok
}

// handlerOnly computes which functions are HTTP-handler-shaped or
// (if unexported) reachable intra-package only from such functions.
func handlerOnly(p *Pass, decls map[*types.Func]*ast.FuncDecl) map[*types.Func]bool {
	shaped := map[*types.Func]bool{}
	callers := map[*types.Func][]*types.Func{}
	for fn, decl := range decls {
		if isHandlerShaped(fn) {
			shaped[fn] = true
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			callee, ok := p.Info.Uses[id].(*types.Func)
			if !ok {
				return true
			}
			if _, samePkg := decls[callee]; samePkg {
				callers[callee] = append(callers[callee], fn)
			}
			return true
		})
	}
	// Fixpoint: an unexported function with at least one caller, all
	// of whose callers are handler-only, is handler-only too.
	for changed := true; changed; {
		changed = false
		for fn := range decls {
			if shaped[fn] || fn.Exported() || len(callers[fn]) == 0 {
				continue
			}
			all := true
			for _, c := range callers[fn] {
				if !shaped[c] {
					all = false
					break
				}
			}
			if all {
				shaped[fn] = true
				changed = true
			}
		}
	}
	return shaped
}

// isHandlerShaped reports whether fn has http.HandlerFunc's signature
// or is a ServeHTTP method.
func isHandlerShaped(fn *types.Func) bool {
	if fn.Name() == "ServeHTTP" {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 2 {
		return false
	}
	return isNamedType(sig.Params().At(0).Type(), "net/http", "ResponseWriter") &&
		isNamedType(sig.Params().At(1).Type(), "net/http", "Request")
}

// finishTelemetrycheck is T2: reconcile every package's registrations.
// The first registration of a name (in package/file/line order) fixes
// its kind and class; later conflicting sites are reported.
func finishTelemetrycheck(p *FinishPass) {
	type site struct {
		reg metricReg
		pkg string
	}
	byName := map[string][]site{}
	for _, e := range p.PackageFacts() {
		for _, r := range e.Fact.(*telemetryFact).Regs {
			byName[r.Name] = append(byName[r.Name], site{r, e.Path})
		}
	}
	var names []string
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sites := byName[name]
		sort.Slice(sites, func(i, j int) bool {
			a, b := sites[i].reg, sites[j].reg
			if a.File != b.File {
				return a.File < b.File
			}
			return a.Line < b.Line
		})
		first := sites[0].reg
		reported := map[string]bool{}
		for _, s := range sites[1:] {
			if s.reg.Kind == first.Kind && s.reg.Runtime == first.Runtime {
				continue
			}
			key := fmt.Sprintf("%s:%d", s.reg.File, s.reg.Line)
			if reported[key] {
				continue
			}
			reported[key] = true
			p.Reportf(s.reg.File, s.reg.Line,
				"metric %q registered as %s %s here but as %s %s at %s:%d: one name, one class — a name whose class depends on registration order breaks the deterministic-snapshot audit",
				name, className(s.reg.Runtime), s.reg.Kind, className(first.Runtime), first.Kind, first.File, first.Line)
		}
	}
}

func className(runtime bool) string {
	if runtime {
		return "runtime"
	}
	return "deterministic"
}
