// Package linttest runs geolint analyzers over small fixture packages,
// in the manner of golang.org/x/tools/go/analysis/analysistest: fixture
// sources live under testdata/src/<import-path>/ and carry expectations
// as trailing comments,
//
//	rand.Int() // want "global math/rand"
//
// where each quoted string is a regexp that must match the message of a
// diagnostic reported on that line. Run fails the test for any reported
// diagnostic with no matching expectation and any expectation with no
// matching diagnostic, so fixtures pin both the positives and the
// negatives of an analyzer.
//
// Fixture packages may import each other (resolved fixture-first under
// the same testdata/src root, so a fixture can stand in for, say,
// geoblock/internal/scanner) and the standard library (resolved through
// lint.NewStdImporter). Suppression directives are honored exactly as
// in the real driver: Run routes everything through lint.Check.
package linttest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"geoblock/internal/lint"
)

// state caches type-checked fixtures across tests in a binary: the
// stdlib closure (fmt pulls in reflect) is checked once, not once per
// analyzer test.
var state = struct {
	mu   sync.Mutex
	fset *token.FileSet
	std  *lint.StdImporter
	pkgs map[string]*fixture // keyed by absolute fixture dir
}{}

type fixture struct {
	pkg *lint.Package
	err error
}

// Run loads each fixture package under root (normally "testdata/src"),
// runs a over them via lint.Check — suppressions included — and
// compares the surviving diagnostics against the fixtures' // want
// expectations.
func Run(t *testing.T, root string, a *lint.Analyzer, paths ...string) {
	t.Helper()
	pkgs := Load(t, root, paths...)
	check(t, pkgs, lint.Check(pkgs, []*lint.Analyzer{a}))
}

// Load loads fixture packages without running any analyzer, for tests
// that drive lint.Check themselves (e.g. with the full suite).
func Load(t *testing.T, root string, paths ...string) []*lint.Package {
	t.Helper()
	absRoot, err := filepath.Abs(root)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	state.mu.Lock()
	defer state.mu.Unlock()
	if state.fset == nil {
		state.fset = token.NewFileSet()
		state.std = lint.NewStdImporter(state.fset)
		state.pkgs = map[string]*fixture{}
	}
	var pkgs []*lint.Package
	for _, path := range paths {
		fx := loadLocked(absRoot, path)
		if fx.err != nil {
			t.Fatalf("linttest: loading %s: %v", path, fx.err)
		}
		pkgs = append(pkgs, fx.pkg)
	}
	return pkgs
}

// loadLocked parses and type-checks the fixture package at root/path,
// memoized. Imports resolve to sibling fixtures when a directory for
// them exists under root, and to the standard library otherwise.
func loadLocked(root, path string) *fixture {
	dir := filepath.Join(root, path)
	if fx, ok := state.pkgs[dir]; ok {
		return fx
	}
	// Seed the cache before type-checking so an import cycle among
	// fixtures surfaces as a load error, not infinite recursion.
	fx := &fixture{err: fmt.Errorf("import cycle through %s", path)}
	state.pkgs[dir] = fx

	entries, err := os.ReadDir(dir)
	if err != nil {
		fx.err = err
		return fx
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		af, err := parser.ParseFile(state.fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			fx.err = err
			return fx
		}
		files = append(files, af)
	}
	if len(files) == 0 {
		fx.err = fmt.Errorf("no Go files in %s", dir)
		return fx
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	cfg := &types.Config{Importer: importerFunc(func(imp string) (*types.Package, error) {
		if st, err := os.Stat(filepath.Join(root, imp)); err == nil && st.IsDir() {
			sub := loadLocked(root, imp)
			if sub.err != nil {
				return nil, sub.err
			}
			return sub.pkg.Types, nil
		}
		return state.std.Import(imp)
	})}
	tp, err := cfg.Check(path, state.fset, files, info)
	if err != nil {
		fx.err = err
		return fx
	}
	*fx = fixture{pkg: &lint.Package{
		Path:       path,
		ImportPath: path,
		Fset:       state.fset,
		Files:      files,
		Types:      tp,
		Info:       info,
	}}
	return fx
}

// expectation is one quoted regexp of a // want comment.
type expectation struct {
	re      *regexp.Regexp
	pos     token.Position
	matched bool
}

var quoted = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// check matches diagnostics against the // want comments of pkgs.
func check(t *testing.T, pkgs []*lint.Package, diags []lint.Diagnostic) {
	t.Helper()
	wants := map[string][]*expectation{} // "file:line"
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					for _, q := range quoted.FindAllString(text, -1) {
						pat, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s: bad want string %s: %v", pos, q, err)
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
						}
						wants[key] = append(wants[key], &expectation{re: re, pos: pos})
					}
				}
			}
		}
	}

	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}

	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("%s: no diagnostic matched %q", w.pos, w.re)
			}
		}
	}
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
