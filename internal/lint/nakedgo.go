// The nakedgo analyzer: no stray goroutines in the scan path. The
// engine's concurrency is confined to the scheduler's work-stealing
// pool, where every worker is tied to a WaitGroup so a scan drains
// completely before its result is read — the no-deadlock and
// byte-identical chaos assertions both assume it. A `go func` launched
// anywhere in the scan path without such a tie can outlive the scan,
// race the sink's single-goroutine delivery contract, or leak under
// fault injection.
package lint

import (
	"go/ast"
	"go/types"
)

// Nakedgo flags goroutine launches in the scan path that are not tied
// to a WaitGroup (or errgroup-style Done/Wait discipline).
var Nakedgo = &Analyzer{
	Name: "nakedgo",
	Doc:  "scan-path goroutines must be tied to a WaitGroup/errgroup or the scheduler's worker pool",
	Match: scope(
		"geoblock/internal/scanner/...",
		"geoblock/internal/pipeline/...",
		"geoblock/internal/proxy/...",
		"geoblock/internal/lumscan/...",
		"geoblock/internal/faults/...",
		"geoblock/internal/fabric/...",
		"geoblock/internal/verdict/...",
	),
	Run: runNakedgo,
}

func runNakedgo(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
			if !ok {
				p.Reportf(g.Pos(), "goroutine launch in the scan path: wrap it in a WaitGroup-tied literal (wg.Add before, defer wg.Done inside) or route the work through the scheduler")
				return true
			}
			if !touchesWaitGroup(p.Info, lit.Body) {
				p.Reportf(g.Pos(), "naked goroutine in the scan path: tie it to a sync.WaitGroup (defer wg.Done()) or the scheduler's worker pool so scans drain deterministically")
			}
			return true
		})
	}
}

// touchesWaitGroup reports whether body references a sync.WaitGroup
// (typically `defer wg.Done()`), which is the drain tie the scheduler
// contract requires.
func touchesWaitGroup(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		if isNamedType(obj.Type(), "sync", "WaitGroup") {
			found = true
		}
		return !found
	})
	return found
}
