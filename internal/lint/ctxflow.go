// The ctxflow analyzer: contexts thread end to end through the scan
// path. PR 1's cancellation work made every scan entrypoint take a
// context and every study phase respect it; that only stays true if (a)
// no new exported I/O surface appears without a context parameter, and
// (b) nobody severs an incoming context by minting context.Background()
// mid-flow — the bug class where a Ctrl-C drains the CLI but a scan
// keeps burning through the proxy mesh underneath it.
//
// Functions receive an incoming context three ways here: an explicit
// context.Context parameter, an *http.Request (which carries one), or a
// receiver struct with a context field (pipeline.Study.Ctx). The
// nil-default accessor idiom — a method returning context.Context that
// falls back to Background when the field is unset — is the one
// sanctioned minting site. Test files are exempt: tests are the scan's
// drivers and legitimately create root contexts.
package lint

import (
	"go/ast"
	"go/types"
)

// Ctxflow enforces context threading through the scan path's I/O.
var Ctxflow = &Analyzer{
	Name: "ctxflow",
	Doc:  "exported I/O must accept a context.Context, and an incoming context must never be severed by context.Background()/TODO()",
	Match: scope(
		"geoblock/internal/scanner/...",
		"geoblock/internal/proxy/...",
		"geoblock/internal/pipeline/...",
	),
	Run: runCtxflow,
}

func runCtxflow(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || isTestFile(p.Fset, fn.Pos()) {
				continue
			}
			incoming := hasIncomingCtx(p.Info, fn)
			if incoming {
				if !isCtxAccessor(p.Info, fn) {
					reportSevering(p, fn.Body)
				}
			} else if fn.Name.IsExported() && performsIO(p.Info, fn.Body) {
				p.Reportf(fn.Name.Pos(), "exported %s performs I/O but accepts no context.Context; thread a ctx parameter through so callers can cancel it", fn.Name.Name)
			}
		}
	}
}

// hasIncomingCtx reports whether fn is handed a context: a
// context.Context or *http.Request parameter, or a receiver whose
// struct type carries a context.Context field.
func hasIncomingCtx(info *types.Info, fn *ast.FuncDecl) bool {
	for _, field := range fn.Type.Params.List {
		t := info.TypeOf(field.Type)
		if isNamedType(t, "context", "Context") || isNamedType(t, "net/http", "Request") {
			return true
		}
	}
	if fn.Recv != nil {
		for _, field := range fn.Recv.List {
			t := info.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			st, ok := t.Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				if isNamedType(st.Field(i).Type(), "context", "Context") {
					return true
				}
			}
		}
	}
	return false
}

// isCtxAccessor recognizes the nil-default accessor: a function whose
// single result is context.Context. Such a function's whole job is to
// produce a context (falling back to Background when no caller supplied
// one), so minting inside it is the sanctioned pattern rather than a
// severing.
func isCtxAccessor(info *types.Info, fn *ast.FuncDecl) bool {
	res := fn.Type.Results
	if res == nil || len(res.List) != 1 || len(res.List[0].Names) > 1 {
		return false
	}
	return isNamedType(info.TypeOf(res.List[0].Type), "context", "Context")
}

// reportSevering flags context.Background()/TODO() calls in a body that
// already has an incoming context (closures included — they capture it).
func reportSevering(p *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := funcFor(p.Info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
			return true
		}
		if fn.Name() == "Background" || fn.Name() == "TODO" {
			p.Reportf(call.Pos(), "context.%s() severs the incoming context: cancellation stops propagating here; pass the caller's ctx through instead", fn.Name())
		}
		return true
	})
}

// performsIO reports whether body does work that should be
// cancellable: calling anything that itself wants a leading
// context.Context, doing an HTTP round trip, or minting a context to
// feed such a call.
func performsIO(info *types.Info, body *ast.BlockStmt) bool {
	io := false
	ast.Inspect(body, func(n ast.Node) bool {
		if io {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := funcFor(info, call)
		if fn == nil {
			return true
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == "context" && (fn.Name() == "Background" || fn.Name() == "TODO") {
			io = true
			return false
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return true
		}
		if sig.Params().Len() > 0 && isNamedType(sig.Params().At(0).Type(), "context", "Context") {
			io = true
			return false
		}
		// HTTP round trips acquire their context from the request; the
		// function still owes its caller a way to build that request
		// with one.
		if recv := sig.Recv(); recv != nil && isNamedType(recv.Type(), "net/http", "Client") {
			switch fn.Name() {
			case "Do", "Get", "Post", "PostForm", "Head":
				io = true
				return false
			}
		}
		return true
	})
	return io
}
