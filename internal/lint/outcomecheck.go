// The outcomecheck analyzer: degradation outcomes must not vanish. PR 2
// replaced sentinel values with typed scanner.Outage records and gave
// scans an error channel precisely so degraded runs are visible; both
// are defeated by one `_ =`. Three rules:
//
//  1. A scanner.Outage (or []Outage) produced by a call must not be
//     discarded — dropping it un-counts a lost country.
//  2. An error returned by the scan/sink vocabulary (package scanner or
//     lumscan functions, Emit*/Flush methods, internal/report encoders)
//     must not be ignored: a cancelled or failed scan that reports nil
//     coverage loss looks identical to a perfect run.
//  3. fmt.Errorf with an error operand must wrap it with %w — %v/%s
//     strips the chain that errors.Is/As classification (redirect
//     taxonomy, brownout detection) depends on.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// Outcomecheck forbids dropped Outage values, ignored scan/sink errors,
// and unwrapped error operands in fmt.Errorf.
var Outcomecheck = &Analyzer{
	Name:  "outcomecheck",
	Doc:   "handle every scanner.Outage and scan/sink error; wrap error operands with %w",
	Match: scope("geoblock/..."),
	Run:   runOutcomecheck,
}

func runOutcomecheck(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDroppedResults(p, call, nil)
				}
			case *ast.AssignStmt:
				checkBlankAssign(p, n)
			case *ast.CallExpr:
				checkErrorfWrap(p, n)
			}
			return true
		})
	}
}

// checkDroppedResults flags a call statement that discards an Outage or
// a vocabulary error outright. blanks, when non-nil, maps result index
// -> discarded-by-blank for the multi-value assignment case.
func checkDroppedResults(p *Pass, call *ast.CallExpr, blanks map[int]bool) {
	fn := funcFor(p.Info, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if blanks != nil && !blanks[i] {
			continue
		}
		t := res.At(i).Type()
		switch {
		case isOutageType(t):
			p.Reportf(call.Pos(), "%s's Outage result is discarded: a lost country goes uncounted; record it (or pass an OutageSink)", fn.Name())
		case errorVocabulary(fn) && types.Implements(t, errorIface):
			p.Reportf(call.Pos(), "%s's error is ignored: a cancelled or degraded scan becomes indistinguishable from a full one; check it (log, record, or propagate)", fn.Name())
		}
	}
}

// checkBlankAssign finds `x, _ := f()` shapes where the blank slot
// holds an Outage or a vocabulary error, and `_ = f()` single-value
// discards.
func checkBlankAssign(p *Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		// `a, b = f(), g()`: each RHS pairs with one LHS.
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) || !isBlank(as.Lhs[i]) {
				continue
			}
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
				checkDroppedResults(p, call, map[int]bool{0: true})
			}
		}
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	blanks := map[int]bool{}
	any := false
	for i, lhs := range as.Lhs {
		if isBlank(lhs) {
			blanks[i] = true
			any = true
		}
	}
	if any {
		checkDroppedResults(p, call, blanks)
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// isOutageType matches scanner.Outage, []Outage, and pointers to them.
// lumscan.Outage is a type alias, so it resolves to the same named type.
func isOutageType(t types.Type) bool {
	if sl, ok := t.Underlying().(*types.Slice); ok {
		t = sl.Elem()
	}
	return isNamedType(t, "geoblock/internal/scanner", "Outage")
}

// errorVocabulary reports whether fn belongs to the scan/sink
// vocabulary whose errors carry outcome information: anything exported
// by the engine or its facade, the streaming sink methods, and the
// table/CSV encoders the paper artifacts flow through.
func errorVocabulary(fn *types.Func) bool {
	switch fn.Name() {
	case "Emit", "EmitOutage", "EmitCoverage", "Flush":
		return true
	}
	if pkg := fn.Pkg(); pkg != nil {
		switch pkg.Path() {
		case "geoblock/internal/scanner", "geoblock/internal/lumscan", "geoblock/internal/report":
			return true
		}
	}
	return false
}

// checkErrorfWrap flags fmt.Errorf calls that format an error operand
// without a single %w in the format string.
func checkErrorfWrap(p *Pass, call *ast.CallExpr) {
	fn := funcFor(p.Info, call)
	if !isPkgFunc(fn, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil || strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		t := p.Info.TypeOf(arg)
		if t != nil && types.Implements(t, errorIface) {
			p.Reportf(arg.Pos(), "fmt.Errorf formats an error operand without %%w: the cause chain is flattened and errors.Is/As classification downstream stops seeing it")
			return
		}
	}
}
