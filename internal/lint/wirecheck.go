// The wirecheck analyzer: the journal and verdict codecs must fail
// loudly and carry every field. The engine's crash-safety story rests
// on two properties of its wire code (DESIGN.md §9, §11): every I/O
// and checksum result is checked — a swallowed short write is exactly
// the torn frame the fuzzers only find probabilistically — and the
// encode and decode sides of a codec agree on the fields they carry,
// because a field the encoder writes and the decoder ignores (or an
// added field the encoder never learned about) is silent wire drift
// that replays cleanly and resumes wrongly.
//
// Three rules, over internal/runstore and internal/verdict:
//
// W1: a call whose result carries the outcome of wire I/O
// (binary.Write, io.ReadFull, Write/Sync/Flush methods, a CRC value)
// may not discard it — no bare expression statements, no blank error
// slots. In-memory writers that cannot fail (bytes.Buffer,
// strings.Builder) and deferred cleanup calls are exempt.
//
// W2: a struct field accessed by an Encode function must be accessed
// by the paired Decode (pairs match by name: Encode/Decode,
// encodeRecord/DecodeRecord). The comparison closes over unexported
// same-package helpers on both sides, so delegation to decodeHeader or
// a dec cursor does not hide an access — but it stops at exported
// functions, so a decode-side call back into Encode (to recompute an
// ETag, say) does not trivially satisfy the rule.
//
// W3: once an Encode side touches any field of a module struct, it
// must touch all of them — a new field added to the struct but not to
// the codec is caught at the field's declaration, where a derived or
// rebuilt-at-decode field can carry an exact-line suppression naming
// why it stays off the wire.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Wirecheck enforces checked wire I/O and encode/decode field parity
// in the codec packages.
var Wirecheck = &Analyzer{
	Name: "wirecheck",
	Doc:  "codec I/O results must be checked; fields written by Encode must be read by the paired Decode",
	Match: scope(
		"geoblock/internal/runstore/...",
		"geoblock/internal/verdict/...",
	),
	Run: runWirecheck,
}

func runWirecheck(p *Pass) {
	checkWireIO(p)
	checkCodecParity(p)
}

// wireFuncs are package-level functions whose results carry wire I/O
// outcomes.
var wireFuncs = map[string]map[string]bool{
	"encoding/binary": {"Write": true, "Read": true},
	"io":              {"ReadFull": true, "ReadAtLeast": true, "Copy": true, "CopyN": true, "WriteString": true},
	"hash/crc32":      {"Checksum": true, "Update": true},
}

// wireMethods are method names whose error result carries a wire I/O
// outcome, on any receiver except the exempt in-memory writers.
var wireMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "Read": true,
	"ReadFrom": true, "WriteTo": true, "Sync": true, "Flush": true,
}

// wireExemptRecv lists receiver types whose writes cannot fail: their
// error results exist only to satisfy io interfaces.
func wireExemptRecv(t types.Type) bool {
	return isNamedType(t, "bytes", "Buffer") || isNamedType(t, "strings", "Builder")
}

// isWireCall reports whether call's result carries a wire I/O outcome
// that must not be discarded.
func isWireCall(info *types.Info, call *ast.CallExpr) bool {
	fn := funcFor(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if recv := sig.Recv(); recv != nil {
		return wireMethods[fn.Name()] && !wireExemptRecv(recv.Type()) && len(errorResults(fn)) > 0
	}
	return wireFuncs[fn.Pkg().Path()][fn.Name()]
}

// checkWireIO is W1: walk every function body for discarded wire
// results — expression statements and blank-assigned error slots.
func checkWireIO(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.DeferStmt:
				return false // deferred cleanup: close-out Sync/Close idiom
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok && isWireCall(p.Info, call) {
					p.Reportf(st.Pos(), "discarded result of %s: a wire I/O or checksum outcome must flow into an error return or an explicit check, or a torn frame goes unnoticed", callName(p.Info, call))
				}
			case *ast.AssignStmt:
				if len(st.Rhs) != 1 {
					return true
				}
				call, ok := st.Rhs[0].(*ast.CallExpr)
				if !ok || !isWireCall(p.Info, call) {
					return true
				}
				fn := funcFor(p.Info, call)
				for _, i := range errorResults(fn) {
					if i < len(st.Lhs) && isBlank(st.Lhs[i]) {
						p.Reportf(st.Pos(), "error result of %s assigned to _: a wire I/O outcome must flow into an error return or an explicit check, or a torn frame goes unnoticed", callName(p.Info, call))
					}
				}
			}
			return true
		})
	}
}

// callName renders a call's target for diagnostics.
func callName(info *types.Info, call *ast.CallExpr) string {
	fn := funcFor(info, call)
	if fn == nil {
		return "call"
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Pkg().Name() + "." + fn.Name()
}

// fieldRef is one struct-field access: which named struct, which
// field, where first seen.
type fieldKey struct {
	structKey string // pkgpath.TypeName
	field     string
}

// codecPair is one Encode/Decode pair found in the package.
type codecPair struct {
	enc, dec *types.Func
}

// checkCodecParity is W2 + W3: pair Encode*/Decode* functions by name
// suffix, close each side over its unexported same-package helpers,
// collect the module-struct fields each side touches, and compare.
func checkCodecParity(p *Pass) {
	decls := funcDecls(p)
	var fns []*types.Func
	for fn := range decls {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Pos() < fns[j].Pos() })

	// Pairs match by bare name (Encode↔Decode, encodeRecord↔
	// DecodeRecord), receiver-agnostic: the codec idiom here pairs a
	// method Encode with a package-level Decode constructor.
	byName := map[string]*types.Func{}
	for _, fn := range fns {
		if _, taken := byName[fn.Name()]; !taken {
			byName[fn.Name()] = fn
		}
	}

	var pairs []codecPair
	for _, fn := range fns {
		name := fn.Name()
		var suffix string
		if strings.HasPrefix(name, "Encode") {
			suffix = strings.TrimPrefix(name, "Encode")
		} else if strings.HasPrefix(name, "encode") {
			suffix = strings.TrimPrefix(name, "encode")
		} else {
			continue
		}
		if isTestFile(p.Fset, fn.Pos()) {
			continue
		}
		for _, decName := range []string{"Decode" + suffix, "decode" + suffix} {
			if dec, ok := byName[decName]; ok {
				pairs = append(pairs, codecPair{enc: fn, dec: dec})
				break
			}
		}
	}
	w3seen := map[fieldKey]bool{}
	for _, pair := range pairs {
		encFields := closureFields(p, decls, pair.enc, decodePrefixed)
		decFields := closureFields(p, decls, pair.dec, encodePrefixed)

		decStructs := map[string]bool{}
		for k := range decFields {
			decStructs[k.structKey] = true
		}

		var encKeys []fieldKey
		for k := range encFields {
			encKeys = append(encKeys, k)
		}
		sort.Slice(encKeys, func(i, j int) bool {
			if encKeys[i].structKey != encKeys[j].structKey {
				return encKeys[i].structKey < encKeys[j].structKey
			}
			return encKeys[i].field < encKeys[j].field
		})

		// W2: every encode-side field of a struct the decoder also
		// handles must be decode-side too.
		for _, k := range encKeys {
			if decStructs[k.structKey] && decFields[k] == token.NoPos {
				p.Reportf(encFields[k], "field %s.%s is written by %s but never read by the paired %s: a field the decoder ignores is silent wire drift",
					shortStruct(k.structKey), k.field, pair.enc.Name(), pair.dec.Name())
			}
		}

		// W3: an encode side that touches a module struct must touch
		// every field of it. Reported at the field declaration, so a
		// derived field documents its own exemption where it is defined.
		for _, structKey := range sortedStructKeys(encFields) {
			st := moduleStruct(p, structKey)
			if st == nil {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				fv := st.Field(i)
				k := fieldKey{structKey, fv.Name()}
				if encFields[k] != token.NoPos || w3seen[k] {
					continue
				}
				w3seen[k] = true
				p.Reportf(fv.Pos(),"field %s.%s is never touched by %s: if it belongs on the wire, encode it; if it is derived at decode, suppress this line with the reason",
					shortStruct(structKey), fv.Name(), pair.enc.Name())
			}
		}
	}
}

// decodePrefixed and encodePrefixed classify codec function names, for
// keeping each side's closure on its own side.
func decodePrefixed(name string) bool {
	return strings.HasPrefix(name, "Decode") || strings.HasPrefix(name, "decode")
}

func encodePrefixed(name string) bool {
	return strings.HasPrefix(name, "Encode") || strings.HasPrefix(name, "encode")
}

// closureFields collects every module-struct field access reachable
// from fn through same-package callees, so delegation to a
// decodeHeader helper, a dec cursor method, or an exported DecodeRecord
// does not hide an access. Callees matching skip are not entered: the
// decode side's closure must not include encoders (or a decoder that
// recomputes an ETag by calling Encode would trivially satisfy field
// parity), and vice versa.
func closureFields(p *Pass, decls map[*types.Func]*ast.FuncDecl, fn *types.Func, skip func(string) bool) map[fieldKey]token.Pos {
	fields := map[fieldKey]token.Pos{}
	visited := map[*types.Func]bool{}
	var visit func(fn *types.Func)
	visit = func(fn *types.Func) {
		if visited[fn] {
			return
		}
		visited[fn] = true
		decl, ok := decls[fn]
		if !ok {
			return
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				sel, ok := p.Info.Selections[n]
				if !ok || sel.Kind() != types.FieldVal {
					return true
				}
				recordField(fields, sel.Recv(), sel.Obj().Name(), n.Sel.Pos())
			case *ast.CompositeLit:
				tv, ok := p.Info.Types[ast.Expr(n)]
				if !ok {
					return true
				}
				for _, el := range n.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if key, ok := kv.Key.(*ast.Ident); ok {
						recordField(fields, tv.Type, key.Name, key.Pos())
					}
				}
			case *ast.Ident:
				callee, ok := p.Info.Uses[n].(*types.Func)
				if ok && !skip(callee.Name()) {
					if _, samePkg := decls[callee]; samePkg {
						visit(callee)
					}
				}
			}
			return true
		})
	}
	visit(fn)
	return fields
}

// recordField notes an access to a field of a module struct type.
func recordField(fields map[fieldKey]token.Pos, t types.Type, field string, pos token.Pos) {
	key, ok := structKeyOf(t)
	if !ok {
		return
	}
	k := fieldKey{key, field}
	if fields[k] == token.NoPos {
		fields[k] = pos
	}
}

// structKeyOf names a module-declared struct type, after pointer and
// slice stripping.
func structKeyOf(t types.Type) (string, bool) {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
			continue
		case *types.Slice:
			t = u.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !strings.HasPrefix(stripVariant(obj.Pkg().Path()), "geoblock") {
		return "", false
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return "", false
	}
	return stripVariant(obj.Pkg().Path()) + "." + obj.Name(), true
}

// sortedStructKeys returns the distinct struct keys of a field-access
// set, sorted for deterministic reporting.
func sortedStructKeys(fields map[fieldKey]token.Pos) []string {
	seen := map[string]bool{}
	var keys []string
	for k := range fields {
		if !seen[k.structKey] {
			seen[k.structKey] = true
			keys = append(keys, k.structKey)
		}
	}
	sort.Strings(keys)
	return keys
}

func shortStruct(structKey string) string {
	if i := strings.LastIndex(structKey, "/"); i >= 0 {
		return structKey[i+1:]
	}
	return structKey
}

// moduleStruct resolves a structKey back to its *types.Struct, when
// the type is declared in the package under analysis or one it
// imports.
func moduleStruct(p *Pass, structKey string) *types.Struct {
	i := strings.LastIndex(structKey, ".")
	pkgPath, name := structKey[:i], structKey[i+1:]
	tpkg := p.Pkg
	if stripVariant(tpkg.Path()) != pkgPath {
		tpkg = nil
		for _, imp := range p.Pkg.Imports() {
			if stripVariant(imp.Path()) == pkgPath {
				tpkg = imp
				break
			}
		}
		if tpkg == nil {
			return nil
		}
	}
	obj, ok := tpkg.Scope().Lookup(name).(*types.TypeName)
	if !ok {
		return nil
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	return st
}

