package lint_test

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"geoblock/internal/lint"
)

func diag(analyzer, file string, line int, msg string) lint.Diagnostic {
	return lint.Diagnostic{Analyzer: analyzer, Pos: token.Position{Filename: file, Line: line}, Message: msg}
}

// TestBaselineRatchet pins the one-way semantics: covered findings
// pass even when their lines shift, new findings survive, a vanished
// finding is stale, and counts ratchet — N baseline entries of one
// shape cover at most N diagnostics.
func TestBaselineRatchet(t *testing.T) {
	root := t.TempDir()
	path := filepath.Join(root, "lint.baseline")
	aGo, bGo := filepath.Join(root, "a.go"), filepath.Join(root, "b.go")
	ds := []lint.Diagnostic{
		diag("swapcheck", aGo, 10, "field X unguarded"),
		diag("swapcheck", aGo, 20, "field X unguarded"),
		diag("wirecheck", bGo, 3, "discarded result"),
	}
	if err := os.WriteFile(path, []byte(lint.FormatBaseline(root, ds)), 0o644); err != nil {
		t.Fatal(err)
	}
	bl, err := lint.LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}

	// Same findings, lines shifted: all covered, nothing stale — the
	// baseline is line-number-free on purpose.
	shifted := []lint.Diagnostic{
		diag("swapcheck", aGo, 11, "field X unguarded"),
		diag("swapcheck", aGo, 25, "field X unguarded"),
		diag("wirecheck", bGo, 5, "discarded result"),
	}
	covered, surviving, stale := bl.Apply(root, shifted)
	if len(covered) != 3 || len(surviving) != 0 || len(stale) != 0 {
		t.Fatalf("shifted lines: covered=%d surviving=%d stale=%v", len(covered), len(surviving), stale)
	}

	// A third copy of a twice-baselined shape survives: counts ratchet.
	three := append(shifted[:2:2], diag("swapcheck", aGo, 30, "field X unguarded"))
	_, surviving, _ = bl.Apply(root, append(three, shifted[2]))
	if len(surviving) != 1 {
		t.Fatalf("count ratchet: surviving=%v", surviving)
	}

	// A new shape survives; the unmatched entries are stale.
	next := []lint.Diagnostic{
		diag("swapcheck", aGo, 10, "field X unguarded"),
		diag("clockflow", filepath.Join(root, "c.go"), 7, "reaches the wall clock"),
	}
	covered, surviving, stale = bl.Apply(root, next)
	if len(covered) != 1 || len(surviving) != 1 || surviving[0].Analyzer != "clockflow" {
		t.Fatalf("new shape: covered=%d surviving=%v", len(covered), surviving)
	}
	if len(stale) != 2 {
		t.Fatalf("stale = %v, want one a.go and one b.go leftover", stale)
	}
	for _, s := range stale {
		if !strings.Contains(s, "\t") {
			t.Fatalf("stale entry not tab-formatted: %q", s)
		}
	}

	// A missing file is an empty baseline: everything survives, so a
	// fresh tree ratchets from zero.
	empty, err := lint.LoadBaseline(filepath.Join(root, "nope.baseline"))
	if err != nil {
		t.Fatal(err)
	}
	_, surviving, _ = empty.Apply(root, ds)
	if len(surviving) != len(ds) {
		t.Fatalf("empty baseline: surviving=%d, want %d", len(surviving), len(ds))
	}

	// A malformed line is a load error, not a silently empty ledger.
	bad := filepath.Join(root, "bad.baseline")
	if err := os.WriteFile(bad, []byte("swapcheck only-two-fields\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := lint.LoadBaseline(bad); err == nil {
		t.Fatal("loading a malformed baseline succeeded")
	}
}
