// The swapcheck analyzer: shared snapshot state keeps its discipline.
// The serving layers hold state that many goroutines touch — the
// verdict Holder's atomic snapshot pointer, the fabric coordinator's
// lease tables, the telemetry registry's metric maps — and each has
// exactly one sanctioned access pattern. The race detector validates
// those patterns only on the schedules a test happens to produce;
// swapcheck checks the pattern itself.
//
// Three rules, over the packages that share state across goroutines
// (the facade, the fabric, the verdict edge, telemetry, the journal,
// and worldd):
//
// S1: in a struct with a mu sync.Mutex/RWMutex field, the fields
// declared below mu are the guarded set — that is this codebase's
// layout convention — and code that touches them must either hold the
// lock (the enclosing function locks a mutex) or declare that its
// caller does (the *Locked naming convention). Immutable-after-init
// fields belong above mu, where the convention exempts them.
//
// S2: a struct field of atomic type is touched only by methods of the
// owning type. An atomic field poked from outside its type's methods
// scatters the memory-ordering reasoning across packages.
//
// S3: no network I/O while holding a mutex. A lease handler that calls
// out to a peer mid-critical-section serializes the fleet on its
// slowest member; the fact layer (shared with clockflow's propagation)
// sees through wrappers to the http.Client.Do three calls down.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

func init() {
	RegisterFact("swapcheck.netio", func() Fact { return new(netFact) })
}

// netFact marks a function that transitively performs network I/O.
type netFact struct {
	Via string `json:"via"`
}

func (*netFact) FactName() string { return "swapcheck.netio" }

// swapScope is where shared snapshot state lives: packages whose
// structs are read by many goroutines while one swaps or mutates.
var swapScope = scope(
	"geoblock",
	"geoblock/cmd/worldd/...",
	"geoblock/internal/fabric/...",
	"geoblock/internal/verdict/...",
	"geoblock/internal/telemetry/...",
	"geoblock/internal/trace/...",
	"geoblock/internal/runstore/...",
)

// Swapcheck enforces mutex/atomic discipline on shared snapshot state.
var Swapcheck = &Analyzer{
	Name: "swapcheck",
	Doc:  "guarded fields accessed under their mutex, atomic fields only via their type's methods, no network I/O under a lock",
	// Match is nil: network-I/O facts must be computed module-wide so
	// S3 sees through wrappers in any package. Reporting is gated on
	// swapScope below.
	Run: runSwapcheck,
}

// netSeed reports direct network I/O: net dials and listens, net/http
// client entry points, and RoundTrip implementations.
func netSeed(info *types.Info) func(ast.Node) string {
	return func(n ast.Node) string {
		id, ok := n.(*ast.Ident)
		if !ok {
			return ""
		}
		fn, ok := info.Uses[id].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return ""
		}
		switch fn.Pkg().Path() {
		case "net":
			switch fn.Name() {
			case "Dial", "DialTimeout", "DialUDP", "DialTCP", "Listen", "ListenTCP", "ListenPacket":
				return "calls net." + fn.Name()
			}
		case "net/http":
			switch fn.Name() {
			case "Get", "Head", "Post", "PostForm", "Do", "RoundTrip":
				return "calls http." + fn.Name()
			}
		}
		return ""
	}
}

func runSwapcheck(p *Pass) {
	reaches := propagate(p, netSeed(p.Info), func(fn *types.Func) string {
		if f, ok := p.ObjectFact(fn); ok {
			return f.(*netFact).Via
		}
		return ""
	})
	for fn, via := range reaches {
		p.ExportObjectFact(fn, &netFact{Via: via})
	}

	if !swapScope(p.Path) {
		return
	}
	guarded := guardedFields(p)
	decls := funcDecls(p)
	var fns []*types.Func
	for fn := range decls {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Pos() < fns[j].Pos() })
	for _, fn := range fns {
		checkGuardedAccess(p, fn, decls[fn], guarded)
		checkAtomicAccess(p, fn, decls[fn])
		checkLockedNetwork(p, fn, decls[fn], reaches)
	}
}

// guardedFields finds, for each struct in the package with a mutex
// field, the set of fields declared after it.
func guardedFields(p *Pass) map[*types.Var]string {
	guarded := map[*types.Var]string{} // field var → struct name, for messages
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			sawMutex := false
			for _, fieldDecl := range st.Fields.List {
				for _, name := range fieldDecl.Names {
					v, ok := p.Info.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					if isMutex(v.Type()) {
						sawMutex = true
						continue
					}
					if sawMutex {
						guarded[v] = ts.Name.Name
					}
				}
			}
			return true
		})
	}
	return guarded
}

func isMutex(t types.Type) bool {
	return isNamedType(t, "sync", "Mutex") || isNamedType(t, "sync", "RWMutex")
}

// locksSomething reports whether the function body calls Lock or RLock
// on a mutex anywhere — the coarse "holds a lock" qualifier for S1.
func locksSomething(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := funcFor(p.Info, call); fn != nil && (fn.Name() == "Lock" || fn.Name() == "RLock") {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && isMutex(sig.Recv().Type()) {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkGuardedAccess is S1.
func checkGuardedAccess(p *Pass, fn *types.Func, decl *ast.FuncDecl, guarded map[*types.Var]string) {
	if len(guarded) == 0 || strings.HasSuffix(fn.Name(), "Locked") || locksSomething(p, decl.Body) {
		return
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := p.Info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		v, ok := s.Obj().(*types.Var)
		if !ok {
			return true
		}
		if structName, isGuarded := guarded[v]; isGuarded {
			p.Reportf(sel.Sel.Pos(), "field %s.%s is declared below its guarding mutex but %s neither locks one nor follows the *Locked caller-holds convention: hoist immutable fields above mu, or take the lock", structName, v.Name(), fn.Name())
		}
		return true
	})
}

// checkAtomicAccess is S2.
func checkAtomicAccess(p *Pass, fn *types.Func, decl *ast.FuncDecl) {
	recvType := receiverNamed(fn)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := p.Info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		v, ok := s.Obj().(*types.Var)
		if !ok || !isAtomicType(v.Type()) {
			return true
		}
		owner, ok := structKeyOf(s.Recv())
		if !ok {
			return true
		}
		if recvType != "" && owner == stripVariant(p.Pkg.Path())+"."+recvType {
			return true
		}
		p.Reportf(sel.Sel.Pos(), "atomic field %s.%s touched outside %s's own methods: keep the memory-ordering discipline in one place by going through the type's accessors", shortStruct(owner), v.Name(), shortStruct(owner))
		return true
	})
}

// receiverNamed returns the name of fn's receiver type, or "".
func receiverNamed(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

func isAtomicType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// checkLockedNetwork is S3: within one function, a network call (by
// seed or by fact) positioned after a Lock with no intervening
// non-deferred Unlock is a network round trip inside a critical
// section.
func checkLockedNetwork(p *Pass, fn *types.Func, decl *ast.FuncDecl, reaches map[*types.Func]string) {
	var locks, unlocks []token.Pos
	type netCall struct {
		pos token.Pos
		via string
	}
	var nets []netCall
	seed := netSeed(p.Info)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			return false // a deferred Unlock holds to return; a deferred call runs outside the section
		case *ast.CallExpr:
			callee := funcFor(p.Info, n)
			if callee == nil {
				return true
			}
			if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil && isMutex(sig.Recv().Type()) {
				switch callee.Name() {
				case "Lock", "RLock":
					locks = append(locks, n.Pos())
				case "Unlock", "RUnlock":
					unlocks = append(unlocks, n.Pos())
				}
				return true
			}
			var via string
			if why := seed(n.Fun); why != "" {
				via = why
			} else if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if why := seed(sel.Sel); why != "" {
					via = why
				}
			}
			if via == "" {
				if why, ok := reaches[callee]; ok {
					via = "calls " + callee.Name() + ", which " + why
				} else if f, ok := p.ObjectFact(callee); ok {
					via = "calls " + callee.Pkg().Name() + "." + callee.Name() + ", which " + f.(*netFact).Via
				}
			}
			if via != "" {
				nets = append(nets, netCall{n.Pos(), via})
			}
		}
		return true
	})
	for _, nc := range nets {
		held := false
		for _, l := range locks {
			if l < nc.pos {
				held = true
				for _, u := range unlocks {
					if l < u && u < nc.pos {
						held = false
						break
					}
				}
				if held {
					break
				}
			}
		}
		if held {
			p.Reportf(nc.pos, "network I/O while a mutex may be held (%s): a slow peer extends the critical section unboundedly — copy the state out, unlock, then call", nc.via)
		}
	}
}
