// Suppression directives: exact-line, reason-required escapes from the
// suite. The shape is deliberately rigid — a directive names exactly one
// analyzer, must justify itself, and covers only its own source line —
// so the allowlist stays greppable and can never silently widen.
package lint

import (
	"fmt"
	"strings"
)

// directivePrefix introduces a suppression comment. The full form is
//
//	//geolint:allow <analyzer> <reason...>
//
// placed on the same line as the diagnostic it silences.
const directivePrefix = "//geolint:allow"

// lineKey addresses one source line of one file.
type lineKey struct {
	file string
	line int
}

// allowSet indexes well-formed directives by (file, line, analyzer).
type allowSet map[lineKey]map[string]bool

func (s allowSet) suppresses(d Diagnostic) bool {
	return s[lineKey{d.Pos.Filename, d.Pos.Line}][d.Analyzer]
}

// collectAllows scans every comment of every package for suppression
// directives. Well-formed ones land in the returned allowSet; malformed
// ones — a missing reason, or an analyzer name the suite doesn't know —
// come back as diagnostics so a bad escape hatch fails the build
// instead of silently allowing nothing (or worse, something else).
func collectAllows(pkgs []*Package, known map[string]bool) (allowSet, []Diagnostic) {
	allows := allowSet{}
	var malformed []Diagnostic
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, directivePrefix) {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					bad := func(format string, args ...any) {
						malformed = append(malformed, Diagnostic{
							Analyzer: "geolint",
							Pos:      pos,
							Message:  fmt.Sprintf(format, args...),
						})
					}
					rest := c.Text[len(directivePrefix):]
					if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
						// e.g. //geolint:allowance — not ours.
						continue
					}
					fields := strings.Fields(rest)
					if len(fields) == 0 {
						bad("suppression names no analyzer: want %s <analyzer> <reason>", directivePrefix)
						continue
					}
					name := fields[0]
					if !known[name] {
						bad("suppression names unknown analyzer %q", name)
						continue
					}
					if len(fields) < 2 {
						bad("suppression of %s gives no reason: want %s %s <reason>", name, directivePrefix, name)
						continue
					}
					key := lineKey{pos.Filename, pos.Line}
					if allows[key] == nil {
						allows[key] = map[string]bool{}
					}
					allows[key][name] = true
				}
			}
		}
	}
	return allows, malformed
}
