// Suppression directives: reason-required escapes from the suite. The
// shape is deliberately rigid — a directive names exactly one analyzer
// and must justify itself — so the allowlist stays greppable and can
// never silently widen. Two granularities:
//
//	//geolint:allow <analyzer> <reason...>
//
// on the same line as the diagnostic covers exactly that line, and
//
//	//geolint:allow-block <analyzer> <reason...>
//
// on a line of its own covers the next declaration or statement in
// full — the escape for a construct that provokes several diagnostics
// at once (a deliberate crash-injection block, a derived-field group),
// still scoped to one analyzer so an allowance for wirecheck can never
// swallow a determinism finding inside the same block.
package lint

import (
	"fmt"
	"go/ast"
	"strings"
)

// directivePrefix introduces an exact-line suppression comment.
const directivePrefix = "//geolint:allow"

// blockDirectivePrefix introduces a block suppression comment, placed
// on its own line before the declaration or statement it covers.
const blockDirectivePrefix = "//geolint:allow-block"

// lineKey addresses one source line of one file.
type lineKey struct {
	file string
	line int
}

// allowRange is one block directive's extent: the analyzer it silences
// over a contiguous line range of one file.
type allowRange struct {
	file       string
	start, end int
	analyzer   string
}

// allowSet indexes exact-line directives by (file, line, analyzer) and
// holds the block ranges alongside.
type allowSet struct {
	lines  map[lineKey]map[string]bool
	blocks []allowRange
}

func (s *allowSet) suppresses(d Diagnostic) bool {
	if s.lines[lineKey{d.Pos.Filename, d.Pos.Line}][d.Analyzer] {
		return true
	}
	for _, r := range s.blocks {
		if r.analyzer == d.Analyzer && r.file == d.Pos.Filename && r.start <= d.Pos.Line && d.Pos.Line <= r.end {
			return true
		}
	}
	return false
}

// collectAllows scans every comment of every package for suppression
// directives. Well-formed ones land in the returned allowSet; malformed
// ones — a missing reason, or an analyzer name the suite doesn't know —
// come back as diagnostics so a bad escape hatch fails the build
// instead of silently allowing nothing (or worse, something else).
func collectAllows(pkgs []*Package, known map[string]bool) (*allowSet, []Diagnostic) {
	allows := &allowSet{lines: map[lineKey]map[string]bool{}}
	var malformed []Diagnostic
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, directivePrefix) {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					bad := func(format string, args ...any) {
						malformed = append(malformed, Diagnostic{
							Analyzer: "geolint",
							Pos:      pos,
							Message:  fmt.Sprintf(format, args...),
						})
					}
					block := strings.HasPrefix(c.Text, blockDirectivePrefix)
					prefix := directivePrefix
					if block {
						prefix = blockDirectivePrefix
					}
					rest := c.Text[len(prefix):]
					if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
						// e.g. //geolint:allowance — not ours.
						continue
					}
					fields := strings.Fields(rest)
					if len(fields) == 0 {
						bad("suppression names no analyzer: want %s <analyzer> <reason>", prefix)
						continue
					}
					name := fields[0]
					if !known[name] {
						bad("suppression names unknown analyzer %q", name)
						continue
					}
					if len(fields) < 2 {
						bad("suppression of %s gives no reason: want %s %s <reason>", name, prefix, name)
						continue
					}
					if block {
						start, end, ok := blockExtent(pkg, f, c)
						if !ok {
							bad("%s is not followed by a declaration or statement in this file: a block suppression must introduce the construct it covers", blockDirectivePrefix)
							continue
						}
						allows.blocks = append(allows.blocks, allowRange{pos.Filename, start, end, name})
						continue
					}
					key := lineKey{pos.Filename, pos.Line}
					if allows.lines[key] == nil {
						allows.lines[key] = map[string]bool{}
					}
					allows.lines[key][name] = true
				}
			}
		}
	}
	return allows, malformed
}

// blockExtent finds the next declaration or statement starting after
// the directive comment and returns its line span. Struct fields count
// too, so a derived-field group in a type declaration can carry one
// directive.
func blockExtent(pkg *Package, f *ast.File, c *ast.Comment) (start, end int, ok bool) {
	var best ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case ast.Decl, ast.Stmt, *ast.Field:
			if n.Pos() > c.End() && (best == nil || n.Pos() < best.Pos()) {
				best = n
			}
		}
		return true
	})
	if best == nil {
		return 0, 0, false
	}
	return pkg.Fset.Position(best.Pos()).Line, pkg.Fset.Position(best.End()).Line, true
}
