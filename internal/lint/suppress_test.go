package lint_test

import (
	"os"
	"strings"
	"testing"

	"geoblock/internal/lint"
	"geoblock/internal/lint/linttest"
)

// TestSuppressions pins the directive semantics against the supfix
// fixture: a well-formed //geolint:allow silences exactly its own line,
// a reasonless or unknown-analyzer directive is itself a diagnostic
// (and silences nothing), and a directive on a neighboring line never
// leaks. The fixture carries no // want comments — a directive under
// test would swallow them — so expectations are anchored to each case's
// `func` line instead.
func TestSuppressions(t *testing.T) {
	const fixture = "testdata/src/geoblock/internal/pipeline/supfix/supfix.go"
	src, err := os.ReadFile(fixture)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(src), "\n")
	lineOf := func(sub string) int {
		for i, l := range lines {
			if strings.Contains(l, sub) {
				return i + 1
			}
		}
		t.Fatalf("fixture has no line containing %q", sub)
		return 0
	}
	// The violation in every case sits on the line after the func decl.
	violation := func(fn string) int { return lineOf("func "+fn) + 1 }

	type want struct {
		analyzer string
		line     int
		msg      string // substring of the expected message
	}
	wants := []want{
		{"determinism", violation("bare"), "wall clock"},
		// allowed(): fully suppressed, so no entry.
		{"determinism", violation("reasonless"), "wall clock"},
		{"geolint", violation("reasonless"), "gives no reason"},
		{"determinism", violation("wrongAnalyzer"), "wall clock"},
		{"determinism", violation("unknownAnalyzer"), "wall clock"},
		{"geolint", violation("unknownAnalyzer"), "unknown analyzer"},
		// leak(): the directive on the line above must not reach this one.
		{"determinism", violation("leak"), "wall clock"},
	}

	pkgs := linttest.Load(t, "testdata/src", "geoblock/internal/pipeline/supfix")
	diags := lint.Check(pkgs, lint.All())

	unmatched := append([]want(nil), wants...)
	for _, d := range diags {
		found := false
		for i, w := range unmatched {
			if w.analyzer == d.Analyzer && w.line == d.Pos.Line && strings.Contains(d.Message, w.msg) {
				unmatched = append(unmatched[:i], unmatched[i+1:]...)
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range unmatched {
		t.Errorf("missing diagnostic: %s at line %d matching %q", w.analyzer, w.line, w.msg)
	}
	if t.Failed() {
		var all []string
		for _, d := range diags {
			all = append(all, d.String())
		}
		t.Logf("all diagnostics:\n%s", strings.Join(all, "\n"))
	}
}

// TestBlockSuppressions pins the //geolint:allow-block directive
// against the blockfix fixture: a block over a statement covers
// exactly that statement, a block scoped to one analyzer never
// swallows another's finding, and a trailing directive that
// introduces no construct is itself a diagnostic.
func TestBlockSuppressions(t *testing.T) {
	const fixture = "testdata/src/geoblock/internal/pipeline/blockfix/blockfix.go"
	src, err := os.ReadFile(fixture)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(src), "\n")
	lineOf := func(sub string) int {
		for i, l := range lines {
			if strings.Contains(l, sub) {
				return i + 1
			}
		}
		t.Fatalf("fixture has no line containing %q", sub)
		return 0
	}

	type want struct {
		analyzer string
		line     int
		msg      string
	}
	wants := []want{
		// a := time.Now() is covered; the next statement is not.
		{"determinism", lineOf("b := time.Now()"), "wall clock"},
		// A block scoped to mapsort never swallows a determinism finding.
		{"determinism", lineOf("func wrongAnalyzer") + 1, "wall clock"},
		// A trailing directive introduces nothing: malformed.
		{"geolint", lineOf("covering nothing"), "not followed by a declaration or statement"},
	}

	pkgs := linttest.Load(t, "testdata/src", "geoblock/internal/pipeline/blockfix")
	diags := lint.Check(pkgs, lint.All())

	unmatched := append([]want(nil), wants...)
	for _, d := range diags {
		found := false
		for i, w := range unmatched {
			if w.analyzer == d.Analyzer && w.line == d.Pos.Line && strings.Contains(d.Message, w.msg) {
				unmatched = append(unmatched[:i], unmatched[i+1:]...)
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range unmatched {
		t.Errorf("missing diagnostic: %s at line %d matching %q", w.analyzer, w.line, w.msg)
	}
	if t.Failed() {
		var all []string
		for _, d := range diags {
			all = append(all, d.String())
		}
		t.Logf("all diagnostics:\n%s", strings.Join(all, "\n"))
	}
}
