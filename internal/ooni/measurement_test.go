package ooni

import "testing"

func TestAnomalyRules(t *testing.T) {
	cases := []struct {
		name string
		m    Measurement
		want bool
	}{
		{"local blocked, control ok",
			Measurement{LocalStatus: 403, ControlStatus: 200}, true},
		{"both ok",
			Measurement{LocalStatus: 200, ControlStatus: 200}, false},
		{"both blocked",
			Measurement{LocalStatus: 403, ControlStatus: 403}, false},
		{"local error, control ok",
			Measurement{LocalErr: true, ControlStatus: 200}, true},
		{"both error",
			Measurement{LocalErr: true, ControlErr: true}, false},
		{"control-only error is inconclusive",
			Measurement{LocalStatus: 200, ControlErr: true}, false},
		{"control blocked hides local block",
			Measurement{LocalStatus: 403, ControlStatus: 403}, false},
		{"5xx counts as blocked class",
			Measurement{LocalStatus: 503, ControlStatus: 200}, true},
	}
	for _, tc := range cases {
		if got := anomaly(tc.m); got != tc.want {
			t.Errorf("%s: anomaly = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestControlBlockedMasksGeoblocking(t *testing.T) {
	// The paper's §7.1 caveat in miniature: when the Tor control is
	// itself blocked, a genuinely geoblocked local measurement does not
	// register as an anomaly — the case is invisible to OONI's verdict
	// but visible to the fingerprint scan.
	m := Measurement{LocalStatus: 403, ControlStatus: 403}
	if anomaly(m) {
		t.Fatal("masked case should not be an anomaly")
	}
}
