// Package ooni synthesizes an OONI-style censorship-measurement corpus
// over the simulated Internet and runs the paper's §7.1 confound
// analysis: how often do CDN geoblock pages appear in data collected to
// measure *censorship*, and how often is the control measurement — made
// over Tor from datacenter address space — itself blocked?
//
// OONI's web-connectivity test fetches each Citizen Lab test-list
// domain from a volunteer's device and compares it against a control
// fetch; the saved report keeps the local response body but only the
// status of the control. Both properties are mirrored here.
package ooni

import (
	"context"
	"io"
	"net/http"
	"sort"

	"geoblock/internal/blockpage"
	"geoblock/internal/censor"
	"geoblock/internal/fingerprint"
	"geoblock/internal/geo"
	"geoblock/internal/stats"
	"geoblock/internal/vnet"
	"geoblock/internal/worldgen"
)

// Measurement is one saved web-connectivity report, reduced to the
// fields the confound analysis reads.
type Measurement struct {
	Domain  string
	Country geo.CountryCode

	// Local result.
	LocalErr    bool
	LocalStatus int16
	LocalKind   blockpage.Kind // fingerprint classification of the body

	// Control result (status only — OONI reports do not retain the
	// control body, §7.1).
	ControlErr    bool
	ControlStatus int16

	// Anomaly is OONI's verdict: local differs from control.
	Anomaly bool
}

// Corpus is the synthesized measurement set.
type Corpus struct {
	Measurements []Measurement
	Domains      []string // the global test list actually probed
	Countries    []geo.CountryCode
}

// Config tunes corpus synthesis.
type Config struct {
	// MeasurementsPerPair is how many reports each (country, domain)
	// pair accumulates.
	MeasurementsPerPair int
	// Countries to draw volunteers from; nil = every measurable country.
	Countries []geo.CountryCode
	// Concurrency bounds parallel volunteer simulation.
	Concurrency int
}

// Synthesize runs the volunteer fleet: for every test-list domain that
// exists in the world, a volunteer in each country fetches it and a
// control fetch runs from a Tor exit in datacenter address space.
func Synthesize(w *worldgen.World, cfg Config) *Corpus {
	if cfg.MeasurementsPerPair <= 0 {
		cfg.MeasurementsPerPair = 1
	}
	countries := cfg.Countries
	if countries == nil {
		countries = w.Geo.Measurable()
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}

	// Probe only list entries that resolve in the simulated world.
	var domains []string
	for _, name := range w.CitizenLab.Global {
		if _, ok := w.Lookup(name); ok {
			domains = append(domains, name)
		}
	}
	sort.Strings(domains)

	cls := fingerprint.NewClassifier()
	corpus := &Corpus{Domains: domains, Countries: countries}

	// Tor control exit: a U.S. datacenter address with a battered
	// reputation (Tor exits share fate with abusers — Khattak et al.,
	// cited in §8).
	var torIP geo.IP
	for n := uint64(99); ; n++ {
		ip, err := w.Geo.DatacenterIP("US", n)
		if err != nil {
			panic(err)
		}
		if w.Geo.IsAnonymizer(ip) {
			torIP = ip
			break
		}
	}
	torStack := vnet.NewStack(w, torIP)

	perCountry := make([][]Measurement, len(countries))
	sem := make(chan struct{}, cfg.Concurrency)
	done := make(chan int)
	for ci := range countries {
		go func(ci int) {
			sem <- struct{}{}
			defer func() { <-sem }()
			perCountry[ci] = measureCountry(w, cls, torStack, countries[ci], domains, cfg.MeasurementsPerPair)
			done <- ci
		}(ci)
	}
	for range countries {
		<-done
	}
	for _, ms := range perCountry {
		corpus.Measurements = append(corpus.Measurements, ms...)
	}
	return corpus
}

func measureCountry(w *worldgen.World, cls *fingerprint.Classifier, torStack *vnet.Stack, cc geo.CountryCode, domains []string, perPair int) []Measurement {
	ip, err := w.Geo.HostIP(cc, stats.Mix64(hash(string(cc)))%100000)
	if err != nil {
		return nil
	}
	local := vnet.NewStack(w, ip)
	out := make([]Measurement, 0, len(domains)*perPair)
	for _, domain := range domains {
		for k := 0; k < perPair; k++ {
			m := Measurement{Domain: domain, Country: cc}
			seed := stats.Mix64(hash(domain) ^ hash(string(cc)) ^ uint64(k+1))

			status, kind, lerr := fetch(local, cls, domain, seed, false)
			m.LocalErr = lerr
			m.LocalStatus = status
			m.LocalKind = kind

			cstatus, _, cerr := fetch(torStack, cls, domain, seed^0x70e, true)
			m.ControlErr = cerr
			m.ControlStatus = cstatus

			m.Anomaly = anomaly(m)
			out = append(out, m)
		}
	}
	return out
}

// fetch performs one measurement fetch. Control fetches use OONI's
// bare client fingerprint; local fetches use a browser-like set.
func fetch(stack *vnet.Stack, cls *fingerprint.Classifier, domain string, seed uint64, control bool) (int16, blockpage.Kind, bool) {
	client := stack.Client(10)
	req, err := http.NewRequestWithContext(
		vnet.WithSampleSeed(context.Background(), seed),
		http.MethodGet, "http://"+domain+"/", nil)
	if err != nil {
		return 0, blockpage.KindNone, true
	}
	req.Header.Set("User-Agent", "Mozilla/5.0 (Windows NT 6.1; rv:45.0) Gecko/20100101 Firefox/45.0")
	if !control {
		req.Header.Set("Accept", "text/html,application/xhtml+xml")
		req.Header.Set("Accept-Language", "en-US,en;q=0.5")
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, blockpage.KindNone, true
	}
	defer resp.Body.Close()
	kind := blockpage.KindNone
	if resp.StatusCode != 200 {
		body, rerr := io.ReadAll(resp.Body)
		if rerr == nil {
			kind = cls.Classify(string(body))
		}
	}
	return int16(resp.StatusCode), kind, false
}

// anomaly reproduces OONI's comparison: a measurement is anomalous when
// the local fetch failed or returned a different status class than the
// control.
func anomaly(m Measurement) bool {
	if m.LocalErr && !m.ControlErr {
		return true
	}
	if m.LocalErr || m.ControlErr {
		return false // both failed, or control-only failure: inconclusive
	}
	return (m.LocalStatus >= 400) != (m.ControlStatus >= 400)
}

// Analysis is the §7.1 readout.
type Analysis struct {
	TotalMeasurements int

	// Geoblocking signals inside "censorship" data.
	GeoblockCases     int // measurements matching an explicit geoblock page
	GeoblockCountries int // countries where that happened
	GeoblockDomains   int // unique test-list domains affected
	TestListSize      int

	// Censorship countries where geoblock pages also appear.
	CensorCountriesWithCases int

	// Control confusion for Akamai/Cloudflare-fronted domains:
	// measurements whose control returned 403 vs. measurements where
	// only the local side was blocked.
	ControlBlocked403    int
	LocalBlockedCtrlOK   int
	AnomalousAll         int
	AnomaliesActuallyGeo int // anomalies whose local body is a geoblock page

	// CasesByCountry counts geoblock-page cases per country, and
	// CasesByKind per explicit page class.
	CasesByCountry map[geo.CountryCode]int
	CasesByKind    map[blockpage.Kind]int
}

// Analyze computes the confound analysis over the corpus.
func Analyze(w *worldgen.World, corpus *Corpus) *Analysis {
	a := &Analysis{
		TotalMeasurements: len(corpus.Measurements),
		TestListSize:      len(corpus.Domains),
	}
	geoCountries := map[geo.CountryCode]bool{}
	geoDomains := map[string]bool{}
	censorCountriesWith := map[geo.CountryCode]bool{}
	a.CasesByCountry = map[geo.CountryCode]int{}
	a.CasesByKind = map[blockpage.Kind]int{}

	for _, m := range corpus.Measurements {
		explicitGeo := m.LocalKind.Explicit()
		if explicitGeo {
			a.GeoblockCases++
			a.CasesByCountry[m.Country]++
			a.CasesByKind[m.LocalKind]++
			geoCountries[m.Country] = true
			geoDomains[m.Domain] = true
			if censor.CensorsAnything(m.Country) {
				censorCountriesWith[m.Country] = true
			}
		}
		if m.Anomaly {
			a.AnomalousAll++
			if explicitGeo {
				a.AnomaliesActuallyGeo++
			}
		}

		// Akamai/Cloudflare infrastructure subset for the control
		// comparison.
		if d, ok := w.Lookup(m.Domain); ok &&
			(d.FrontedBy(worldgen.Akamai) || d.FrontedBy(worldgen.Cloudflare)) {
			if !m.ControlErr && m.ControlStatus == 403 {
				a.ControlBlocked403++
			}
			if !m.LocalErr && m.LocalStatus >= 400 && !m.ControlErr && m.ControlStatus == 200 {
				a.LocalBlockedCtrlOK++
			}
		}
	}
	a.GeoblockCountries = len(geoCountries)
	a.GeoblockDomains = len(geoDomains)
	a.CensorCountriesWithCases = len(censorCountriesWith)
	return a
}

func hash(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
