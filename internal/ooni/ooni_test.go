package ooni

import (
	"sync"
	"testing"

	"geoblock/internal/worldgen"
)

var (
	once       sync.Once
	testWorld  *worldgen.World
	testCorpus *Corpus
	testResult *Analysis
)

func corpus(t *testing.T) (*worldgen.World, *Corpus, *Analysis) {
	t.Helper()
	once.Do(func() {
		testWorld = worldgen.Generate(worldgen.TestConfig())
		testCorpus = Synthesize(testWorld, Config{MeasurementsPerPair: 2})
		testResult = Analyze(testWorld, testCorpus)
	})
	return testWorld, testCorpus, testResult
}

func TestCorpusCoverage(t *testing.T) {
	_, c, _ := corpus(t)
	if len(c.Domains) < 50 {
		t.Fatalf("test list too small: %d", len(c.Domains))
	}
	want := len(c.Domains) * len(c.Countries) * 2
	if len(c.Measurements) != want {
		t.Fatalf("measurements = %d, want %d", len(c.Measurements), want)
	}
}

func TestGeoblockConfoundPresent(t *testing.T) {
	_, _, a := corpus(t)
	if a.GeoblockCases == 0 {
		t.Fatal("no geoblock pages in the censorship corpus; the confound vanished")
	}
	frac := float64(a.GeoblockDomains) / float64(a.TestListSize)
	// Paper: 9% of the global test list (97 of ~1,078 domains).
	if frac < 0.03 || frac > 0.20 {
		t.Fatalf("geoblocking domains = %.3f of list (n=%d of %d), want ~0.09",
			frac, a.GeoblockDomains, a.TestListSize)
	}
	if a.GeoblockCountries < 50 {
		t.Fatalf("geoblock cases in only %d countries (paper: 139)", a.GeoblockCountries)
	}
}

func TestCensorshipCountriesAlsoAffected(t *testing.T) {
	_, _, a := corpus(t)
	// Paper: instances occur in all 12 countries where OONI identifies
	// state censorship.
	if a.CensorCountriesWithCases < 4 {
		t.Fatalf("geoblock cases in only %d censoring countries", a.CensorCountriesWithCases)
	}
}

func TestControlConfusion(t *testing.T) {
	_, _, a := corpus(t)
	if a.ControlBlocked403 == 0 {
		t.Fatal("Tor control never blocked; the paper's main caveat is absent")
	}
	// Paper: 36,028 control-403s vs 14,380 local-blocked-control-ok —
	// the control is blocked more often than the local side.
	if a.ControlBlocked403 <= a.LocalBlockedCtrlOK {
		t.Fatalf("control 403s (%d) should exceed local-only blocks (%d)",
			a.ControlBlocked403, a.LocalBlockedCtrlOK)
	}
}

func TestAnomaliesContainGeoblocking(t *testing.T) {
	_, _, a := corpus(t)
	if a.AnomalousAll == 0 {
		t.Fatal("no anomalies at all; censorship is not being observed")
	}
	if a.AnomaliesActuallyGeo == 0 {
		t.Fatal("no anomalies explained by geoblocking; the headline confound is absent")
	}
	if a.AnomaliesActuallyGeo >= a.AnomalousAll {
		t.Fatal("geoblocking cannot explain every anomaly (censorship exists too)")
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	w, _, _ := corpus(t)
	a := Synthesize(w, Config{MeasurementsPerPair: 1, Countries: w.Geo.Measurable()[:10]})
	b := Synthesize(w, Config{MeasurementsPerPair: 1, Countries: w.Geo.Measurable()[:10]})
	if len(a.Measurements) != len(b.Measurements) {
		t.Fatal("measurement counts differ")
	}
	for i := range a.Measurements {
		if a.Measurements[i] != b.Measurements[i] {
			t.Fatalf("measurement %d differs", i)
		}
	}
}

func TestMeasurementFieldsSane(t *testing.T) {
	_, c, _ := corpus(t)
	for _, m := range c.Measurements[:500] {
		if !m.LocalErr && m.LocalStatus == 0 {
			t.Fatalf("ok local measurement without status: %+v", m)
		}
		if m.LocalErr && m.LocalKind != 0 {
			t.Fatalf("failed local measurement with a body kind: %+v", m)
		}
	}
}

func TestCaseBreakdowns(t *testing.T) {
	_, _, a := corpus(t)
	var byCountry, byKind int
	for _, n := range a.CasesByCountry {
		byCountry += n
	}
	for _, n := range a.CasesByKind {
		byKind += n
	}
	if byCountry != a.GeoblockCases || byKind != a.GeoblockCases {
		t.Fatalf("breakdowns do not sum: country=%d kind=%d total=%d",
			byCountry, byKind, a.GeoblockCases)
	}
	for k := range a.CasesByKind {
		if !k.Explicit() {
			t.Fatalf("non-explicit kind %v in the case breakdown", k)
		}
	}
}
