// Package verdict is the serving edge of the reproduction: an
// immutable, versioned snapshot of the full (domain × country)
// block-verdict matrix — the paper's end product (§4, Table 4) — laid
// out for memory-speed reads. A completed study compiles its confirmed
// findings into per-country bitsets over an interned domain table;
// lookups are a map index, a bit test, and (for blocked pairs) a
// binary search for the page kind — no allocation, no locking, no
// pointer chasing beyond the row.
//
// Snapshots are immutable after Compile or Decode. Serving layers swap
// whole snapshots atomically (atomic.Pointer[Snapshot]) when a new
// study completes, so readers always see one consistent matrix: either
// the old study's answers or the new study's, never a mix.
//
// The binary codec (wire.go) persists snapshots in the journal's CRC-
// framed wire style, so a study's verdict matrix survives the process
// that computed it and an edge daemon can load it cold.
package verdict

import (
	"fmt"
	"sort"
	"sync/atomic"

	"geoblock/internal/blockpage"
	"geoblock/internal/geo"
)

// Metric names for the serving layer. All runtime-class: lookup
// traffic depends on who asks, never on the study inputs.
const (
	// MetLookups counts verdict lookups, labeled result=blocked|clear|unknown.
	MetLookups = "verdict.lookups"
	// MetShed counts requests refused by the admission limiter.
	MetShed = "verdict.shed"
	// MetSwaps counts atomic snapshot swaps.
	MetSwaps = "verdict.swaps"
	// MetNotModified counts ETag revalidations answered 304.
	MetNotModified = "verdict.not_modified"
	// HistLookupNanos is the per-request serving latency histogram, in
	// nanoseconds.
	HistLookupNanos = "verdict.lookup_ns"
	// MetSlowLookups counts lookups past SlowLookupNanos — each one
	// also records a trace exemplar event when the edge has a tracer.
	MetSlowLookups = "verdict.lookups_slow"
)

// SlowLookupNanos is the slow-lookup exemplar threshold: a request
// served slower than this gets a wide event carrying its trace ID, so
// the latency histogram's tail has concrete, inspectable examples.
const SlowLookupNanos = 100_000

// Verdict is one (domain, country) answer.
type Verdict struct {
	// Blocked reports whether the study confirmed an explicit geoblock
	// for the pair.
	Blocked bool
	// Kind is the confirmed block-page class when Blocked, KindNone
	// otherwise.
	Kind blockpage.Kind
}

// Entry is one blocked pair in a Source: the compile-time form of a
// confirmed finding.
type Entry struct {
	Domain  string
	Country geo.CountryCode
	Kind    blockpage.Kind
}

// Source is the input to Compile: the study's scanned population (the
// full domain and country universe, so "known but not blocked" is
// distinguishable from "never studied") plus the confirmed findings.
type Source struct {
	// Version orders snapshots from the same system; serving layers use
	// it to tell which study a response came from. Studies use the
	// world's policy clock at completion.
	Version uint64
	// Seed is the study's world seed, kept for provenance.
	Seed uint64
	// Domains is the studied domain universe (the §4 safe list).
	Domains []string
	// Countries is the studied country universe (the 177 of §4.1.1).
	Countries []geo.CountryCode
	// Entries are the confirmed (domain, country, kind) findings.
	Entries []Entry
}

// countryRow is one country's slice of the matrix: a bitset over the
// interned domain table for the hot "blocked?" test, plus the sorted
// set-bit indices and their page kinds for the full verdict.
type countryRow struct {
	bits  []uint64 //geolint:allow wirecheck rebuilt from doms by index(), never on the wire
	doms  []int32
	kinds []byte
}

func (row *countryRow) blocked(di int32) bool {
	return row.bits[uint32(di)>>6]&(1<<(uint32(di)&63)) != 0
}

// kind returns the page kind for a set bit via binary search over the
// row's sorted domain indices. Hand-rolled so the hot path stays
// allocation-free (a sort.Search closure could escape).
func (row *countryRow) kind(di int32) blockpage.Kind {
	lo, hi := 0, len(row.doms)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if row.doms[mid] < di {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(row.doms) && row.doms[lo] == di {
		return blockpage.Kind(row.kinds[lo])
	}
	return blockpage.KindNone
}

// Snapshot is an immutable compiled verdict matrix. All methods are
// safe for unlimited concurrent readers; nothing mutates after Compile
// or Decode returns.
type Snapshot struct {
	version uint64
	seed    uint64

	domains    []string
	countries  []geo.CountryCode
	domainIdx  map[string]int32  //geolint:allow wirecheck derived at decode by index(), never on the wire
	countryIdx map[geo.CountryCode]int32 //geolint:allow wirecheck derived at decode by index(), never on the wire
	rows       []countryRow

	blocked int
	etag    string //geolint:allow wirecheck recomputed from the encoded bytes at decode, never on the wire
}

// Compile builds a snapshot from a completed study's outputs. Domains
// and countries are deduplicated and interned in sorted order; every
// entry must name a domain and country inside that universe, and a
// pair may appear at most once (the same pair with the same kind
// collapses; conflicting kinds error — a study never produces both).
func Compile(src Source) (*Snapshot, error) {
	s := &Snapshot{
		version: src.Version,
		seed:    src.Seed,
		domains: dedupSorted(src.Domains),
	}
	ccs := make([]string, 0, len(src.Countries))
	for _, cc := range src.Countries {
		ccs = append(ccs, string(cc))
	}
	for _, cc := range dedupSorted(ccs) {
		s.countries = append(s.countries, geo.CountryCode(cc))
	}
	s.index()

	words := (len(s.domains) + 63) / 64
	type pair struct {
		dom  int32
		kind byte
	}
	perCountry := make([][]pair, len(s.countries))
	for _, e := range src.Entries {
		di, ok := s.domainIdx[e.Domain]
		if !ok {
			return nil, fmt.Errorf("verdict: entry domain %q is not in the snapshot's domain universe", e.Domain)
		}
		ci, ok := s.countryIdx[e.Country]
		if !ok {
			return nil, fmt.Errorf("verdict: entry country %q is not in the snapshot's country universe", e.Country)
		}
		if int(e.Kind) < 0 || int(e.Kind) > 255 {
			return nil, fmt.Errorf("verdict: entry kind %d does not fit the wire form", e.Kind)
		}
		perCountry[ci] = append(perCountry[ci], pair{di, byte(e.Kind)})
	}
	s.rows = make([]countryRow, len(s.countries))
	for ci := range s.rows {
		ps := perCountry[ci]
		sort.Slice(ps, func(i, j int) bool { return ps[i].dom < ps[j].dom })
		row := &s.rows[ci]
		row.bits = make([]uint64, words)
		for i, p := range ps {
			if i > 0 && ps[i-1].dom == p.dom {
				if ps[i-1].kind == p.kind {
					continue
				}
				return nil, fmt.Errorf("verdict: conflicting kinds for (%s, %s)", s.domains[p.dom], s.countries[ci])
			}
			row.bits[uint32(p.dom)>>6] |= 1 << (uint32(p.dom) & 63)
			row.doms = append(row.doms, p.dom)
			row.kinds = append(row.kinds, p.kind)
			s.blocked++
		}
	}
	s.etag = computeETag(s)
	return s, nil
}

// index builds the lookup maps from the interned tables.
func (s *Snapshot) index() {
	s.domainIdx = make(map[string]int32, len(s.domains))
	for i, d := range s.domains {
		s.domainIdx[d] = int32(i)
	}
	s.countryIdx = make(map[geo.CountryCode]int32, len(s.countries))
	for i, cc := range s.countries {
		s.countryIdx[cc] = int32(i)
	}
}

func dedupSorted(in []string) []string {
	out := append([]string(nil), in...)
	sort.Strings(out)
	w := 0
	for i, v := range out {
		if i == 0 || out[w-1] != v {
			out[w] = v
			w++
		}
	}
	return out[:w]
}

// Lookup answers one (domain, country) pair. ok is false when either
// coordinate is outside the snapshot's universe — the caller's 404.
// The hot path allocates nothing.
func (s *Snapshot) Lookup(domain string, cc geo.CountryCode) (v Verdict, ok bool) {
	di, ok := s.domainIdx[domain]
	if !ok {
		return Verdict{}, false
	}
	ci, ok := s.countryIdx[cc]
	if !ok {
		return Verdict{}, false
	}
	row := &s.rows[ci]
	if !row.blocked(di) {
		return Verdict{}, true
	}
	return Verdict{Blocked: true, Kind: row.kind(di)}, true
}

// HasDomain reports whether domain is in the snapshot's universe.
func (s *Snapshot) HasDomain(domain string) bool {
	_, ok := s.domainIdx[domain]
	return ok
}

// Version returns the snapshot's study version.
func (s *Snapshot) Version() uint64 { return s.version }

// Seed returns the study's world seed.
func (s *Snapshot) Seed() uint64 { return s.seed }

// ETag returns the snapshot's strong entity tag: a quoted token
// derived from the version and a checksum of the canonical encoding,
// ready for HTTP ETag / If-None-Match revalidation.
func (s *Snapshot) ETag() string { return s.etag }

// Blocked returns the confirmed blocked-pair count.
func (s *Snapshot) Blocked() int { return s.blocked }

// Domains returns the interned domain table in sorted order. The slice
// is the snapshot's own — callers must not mutate it.
func (s *Snapshot) Domains() []string { return s.domains }

// Countries returns the interned country table in sorted order. The
// slice is the snapshot's own — callers must not mutate it.
func (s *Snapshot) Countries() []geo.CountryCode { return s.countries }

// Holder publishes one current snapshot to unlimited concurrent
// readers with atomic whole-snapshot swap: a reader always sees one
// consistent matrix, never a mix of two studies. The zero value is
// ready to use and Load returns nil until the first Swap.
type Holder struct {
	p atomic.Pointer[Snapshot]
}

// Load returns the current snapshot, or nil before the first Swap.
func (h *Holder) Load() *Snapshot { return h.p.Load() }

// Swap publishes s and returns the snapshot it replaced (nil on the
// first call). In-flight readers keep the snapshot they loaded.
func (h *Holder) Swap(s *Snapshot) *Snapshot { return h.p.Swap(s) }
