package verdict

import (
	"testing"
	"time"

	"geoblock/internal/telemetry"
)

func TestLimiterAdmitsBurstThenSheds(t *testing.T) {
	clock := &telemetry.Virtual{}
	l := NewLimiter(10, 5, clock)
	for i := 0; i < 5; i++ {
		ok, _ := l.Allow()
		if !ok {
			t.Fatalf("request %d shed inside the burst", i)
		}
	}
	ok, retry := l.Allow()
	if ok {
		t.Fatal("request beyond the burst admitted with no time passing")
	}
	if retry < time.Second {
		t.Fatalf("Retry-After %v under the one-second floor", retry)
	}
}

func TestLimiterRefills(t *testing.T) {
	clock := &telemetry.Virtual{}
	l := NewLimiter(10, 1, clock)
	if ok, _ := l.Allow(); !ok {
		t.Fatal("first request shed")
	}
	if ok, _ := l.Allow(); ok {
		t.Fatal("second immediate request admitted")
	}
	clock.Advance(100 * time.Millisecond) // exactly one token at 10/s
	if ok, _ := l.Allow(); !ok {
		t.Fatal("request shed after a full token refilled")
	}
	// Refill never exceeds burst.
	clock.Advance(time.Hour)
	if ok, _ := l.Allow(); !ok {
		t.Fatal("request shed after an hour idle")
	}
	if ok, _ := l.Allow(); ok {
		t.Fatal("burst=1 bucket held more than one token after idling")
	}
}

func TestLimiterRetryAfterRoundsUp(t *testing.T) {
	clock := &telemetry.Virtual{}
	l := NewLimiter(0.4, 1, clock) // 2.5s per token
	l.Allow()
	ok, retry := l.Allow()
	if ok {
		t.Fatal("empty bucket admitted")
	}
	if retry != 3*time.Second {
		t.Fatalf("Retry-After = %v, want 3s (2.5s rounded up)", retry)
	}
}

func TestLimiterNilAndDisabled(t *testing.T) {
	var l *Limiter
	if ok, retry := l.Allow(); !ok || retry != 0 {
		t.Fatal("nil limiter must admit everything")
	}
	if NewLimiter(0, 10, nil) != nil {
		t.Fatal("rate 0 must mean no limiter")
	}
	if NewLimiter(-1, 10, nil) != nil {
		t.Fatal("negative rate must mean no limiter")
	}
	if l := NewLimiter(5, 0, &telemetry.Virtual{}); l == nil {
		t.Fatal("burst 0 must clamp to 1, not disable")
	} else if ok, _ := l.Allow(); !ok {
		t.Fatal("clamped burst admitted nothing")
	}
}
