// The snapshot codec: the runstore wire style (CRC-framed records,
// varint fields, no maps, no floats, no timestamps) applied to the
// verdict matrix, so snapshots persist to disk and reload bit-exact.
//
// A snapshot file is the 8-byte magic followed by framed records:
// exactly one header (version, seed, interned tables), one row record
// per country in table order (delta-coded sorted domain indices plus
// page kinds), and one trailer carrying the blocked-pair total as an
// end-to-end cross-check. Each frame is
//
//	u32le payload length | u32le CRC-32C of payload | payload
//
// Decoding is strict: a bad magic, torn frame, CRC mismatch, record
// out of order, index out of range, non-ascending domain index,
// count mismatch, or trailing bytes all error — corrupt or truncated
// input must never round into a plausible matrix.
package verdict

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"geoblock/internal/geo"
)

// wireMagic opens every encoded snapshot.
const wireMagic = "GBVERD01"

// Record types.
const (
	recHeader  byte = 1 // version, seed, domain table, country table
	recRow     byte = 2 // country index, blocked pairs (delta dom idx, kind)
	recTrailer byte = 3 // total blocked pairs
)

// frameHeader is the byte length of the length+CRC prefix.
const frameHeader = 8

// maxPayload bounds a single record payload; a frame announcing more
// is treated as corruption, not an allocation request.
const maxPayload = 64 << 20

// maxTableLen bounds the interned table sizes a decoder will build
// before reading their content — a corrupt count must not become a
// giant allocation.
const maxTableLen = 1 << 24

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Encode renders the snapshot in its canonical binary form. The
// encoding is deterministic: the same matrix always produces the same
// bytes, which is what makes the ETag a content hash and golden files
// stable.
func (s *Snapshot) Encode() []byte {
	h := []byte{recHeader}
	h = binary.AppendUvarint(h, s.version)
	h = binary.AppendUvarint(h, s.seed)
	h = binary.AppendUvarint(h, uint64(len(s.domains)))
	for _, d := range s.domains {
		h = appendString(h, d)
	}
	h = binary.AppendUvarint(h, uint64(len(s.countries)))
	for _, cc := range s.countries {
		h = appendString(h, string(cc))
	}
	out := append([]byte(wireMagic), frame(h)...)

	for ci := range s.rows {
		row := &s.rows[ci]
		b := []byte{recRow}
		b = binary.AppendUvarint(b, uint64(ci))
		b = binary.AppendUvarint(b, uint64(len(row.doms)))
		prev := int32(-1)
		for i, di := range row.doms {
			// Delta from the previous index; sorted and unique, so the
			// gap is always ≥ 1 and the varints stay small.
			b = binary.AppendUvarint(b, uint64(di-prev))
			b = binary.AppendUvarint(b, uint64(row.kinds[i]))
			prev = di
		}
		out = append(out, frame(b)...)
	}

	t := []byte{recTrailer}
	t = binary.AppendUvarint(t, uint64(s.blocked))
	return append(out, frame(t)...)
}

// computeETag derives the strong entity tag from the canonical
// encoding: two snapshots answer identically iff their tags match.
func computeETag(s *Snapshot) string {
	sum := crc32.Checksum(s.Encode(), castagnoli)
	return fmt.Sprintf("\"gbv1-%d-%08x\"", s.version, sum)
}

// Decode parses an encoded snapshot. The returned snapshot is fully
// indexed and ready to serve; its ETag equals the one the encoding
// side computed.
func Decode(b []byte) (*Snapshot, error) {
	if len(b) < len(wireMagic) || string(b[:len(wireMagic)]) != wireMagic {
		return nil, fmt.Errorf("verdict: bad snapshot magic")
	}
	b = b[len(wireMagic):]

	s := &Snapshot{}
	sawHeader := false
	sawTrailer := false
	nextRow := 0
	pairs := 0
	for len(b) > 0 {
		if sawTrailer {
			return nil, fmt.Errorf("verdict: %d trailing bytes after snapshot trailer", len(b))
		}
		if len(b) < frameHeader {
			return nil, fmt.Errorf("verdict: torn frame header (%d bytes)", len(b))
		}
		n := binary.LittleEndian.Uint32(b[0:4])
		sum := binary.LittleEndian.Uint32(b[4:8])
		if n > maxPayload || int(n) > len(b)-frameHeader {
			return nil, fmt.Errorf("verdict: frame length %d overruns payload", n)
		}
		payload := b[frameHeader : frameHeader+int(n)]
		if crc32.Checksum(payload, castagnoli) != sum {
			return nil, fmt.Errorf("verdict: frame CRC mismatch")
		}
		b = b[frameHeader+int(n):]

		d := dec{b: payload}
		t, err := d.u8()
		if err != nil {
			return nil, err
		}
		switch t {
		case recHeader:
			if sawHeader {
				return nil, fmt.Errorf("verdict: duplicate snapshot header")
			}
			sawHeader = true
			if err := s.decodeHeader(&d); err != nil {
				return nil, err
			}
		case recRow:
			if !sawHeader {
				return nil, fmt.Errorf("verdict: row record before header")
			}
			if nextRow >= len(s.countries) {
				return nil, fmt.Errorf("verdict: more row records than countries")
			}
			n, err := s.decodeRow(&d, nextRow)
			if err != nil {
				return nil, err
			}
			pairs += n
			nextRow++
		case recTrailer:
			if !sawHeader {
				return nil, fmt.Errorf("verdict: trailer before header")
			}
			if nextRow != len(s.countries) {
				return nil, fmt.Errorf("verdict: trailer after %d of %d country rows", nextRow, len(s.countries))
			}
			total, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			if int(total) != pairs {
				return nil, fmt.Errorf("verdict: trailer claims %d blocked pairs, rows hold %d", total, pairs)
			}
			sawTrailer = true
		default:
			return nil, fmt.Errorf("verdict: unknown record type %d", t)
		}
		if len(d.b) != 0 {
			return nil, fmt.Errorf("verdict: %d trailing bytes in record type %d", len(d.b), t)
		}
	}
	if !sawTrailer {
		return nil, fmt.Errorf("verdict: snapshot carries no trailer")
	}
	s.blocked = pairs
	s.etag = computeETag(s)
	return s, nil
}

func (s *Snapshot) decodeHeader(d *dec) error {
	var err error
	if s.version, err = d.uvarint(); err != nil {
		return err
	}
	if s.seed, err = d.uvarint(); err != nil {
		return err
	}
	nd, err := d.tableLen()
	if err != nil {
		return err
	}
	s.domains = make([]string, 0, min(nd, 4096))
	prev := ""
	for i := 0; i < nd; i++ {
		v, err := d.str()
		if err != nil {
			return err
		}
		if i > 0 && v <= prev {
			return fmt.Errorf("verdict: domain table not strictly sorted at %q", v)
		}
		s.domains = append(s.domains, v)
		prev = v
	}
	nc, err := d.tableLen()
	if err != nil {
		return err
	}
	s.countries = make([]geo.CountryCode, 0, min(nc, 512))
	prev = ""
	for i := 0; i < nc; i++ {
		v, err := d.str()
		if err != nil {
			return err
		}
		if i > 0 && v <= prev {
			return fmt.Errorf("verdict: country table not strictly sorted at %q", v)
		}
		s.countries = append(s.countries, geo.CountryCode(v))
		prev = v
	}
	s.index()
	s.rows = make([]countryRow, len(s.countries))
	words := (len(s.domains) + 63) / 64
	for i := range s.rows {
		s.rows[i].bits = make([]uint64, words)
	}
	return nil
}

func (s *Snapshot) decodeRow(d *dec, want int) (int, error) {
	ci, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if int(ci) != want {
		return 0, fmt.Errorf("verdict: row record for country %d out of order (want %d)", ci, want)
	}
	n, err := d.tableLen()
	if err != nil {
		return 0, err
	}
	if n > len(s.domains) {
		return 0, fmt.Errorf("verdict: row %d claims %d blocked of %d domains", ci, n, len(s.domains))
	}
	row := &s.rows[ci]
	prev := int32(-1)
	for i := 0; i < n; i++ {
		gap, err := d.uvarint()
		if err != nil {
			return 0, err
		}
		if gap == 0 || gap > uint64(len(s.domains)) {
			return 0, fmt.Errorf("verdict: row %d domain-index gap %d invalid", ci, gap)
		}
		di := prev + int32(gap)
		if int(di) >= len(s.domains) {
			return 0, fmt.Errorf("verdict: row %d domain index %d out of range", ci, di)
		}
		kind, err := d.uvarint8()
		if err != nil {
			return 0, err
		}
		row.bits[uint32(di)>>6] |= 1 << (uint32(di) & 63)
		row.doms = append(row.doms, di)
		row.kinds = append(row.kinds, kind)
		prev = di
	}
	return n, nil
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// frame wraps a payload in the length+CRC header.
func frame(payload []byte) []byte {
	b := make([]byte, frameHeader, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(b[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[4:8], crc32.Checksum(payload, castagnoli))
	return append(b, payload...)
}

// dec is a strict cursor over one record payload.
type dec struct{ b []byte }

func (d *dec) u8() (byte, error) {
	if len(d.b) == 0 {
		return 0, fmt.Errorf("verdict: truncated record payload")
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v, nil
}

func (d *dec) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		return 0, fmt.Errorf("verdict: truncated record payload")
	}
	d.b = d.b[n:]
	return v, nil
}

func (d *dec) uvarint8() (byte, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v > math.MaxUint8 {
		return 0, fmt.Errorf("verdict: field value %d overflows uint8", v)
	}
	return byte(v), nil
}

// tableLen decodes a table length, bounded so corrupt counts fail
// instead of allocating.
func (d *dec) tableLen() (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v > maxTableLen {
		return 0, fmt.Errorf("verdict: table length %d exceeds limit", v)
	}
	return int(v), nil
}

func (d *dec) str() (string, error) {
	n, err := d.tableLen()
	if err != nil {
		return "", err
	}
	if n > len(d.b) {
		return "", fmt.Errorf("verdict: truncated record payload")
	}
	v := string(d.b[:n])
	d.b = d.b[n:]
	return v, nil
}
