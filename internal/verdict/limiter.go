package verdict

import (
	"sync"
	"time"

	"geoblock/internal/telemetry"
)

// Limiter is a token-bucket admission gate for the serving edge. It
// answers one question per request — admit, or shed with a hint of
// when to come back — so overload turns into fast 429s instead of a
// collapsing tail. A nil *Limiter admits everything, which keeps the
// "no limit configured" path branch-free at call sites.
//
// Time comes from a telemetry.Clock so tests drive the bucket with a
// Virtual clock; the zero value of the clock field falls back to the
// wall clock on first use.
type Limiter struct {
	mu     sync.Mutex
	rate   float64 // tokens added per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
	clock  telemetry.Clock
	primed bool
}

// NewLimiter builds a limiter admitting rate requests/sec with the
// given burst capacity. A nil clock means the wall clock. Returns nil
// (admit everything) when rate <= 0.
func NewLimiter(rate float64, burst int, clock telemetry.Clock) *Limiter {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	if clock == nil {
		clock = telemetry.Wall{}
	}
	return &Limiter{rate: rate, burst: float64(burst), clock: clock}
}

// Allow consumes one token if available. When the bucket is empty it
// returns false and the duration after which a token will exist — the
// Retry-After the caller should advertise (rounded up to a whole
// second, minimum one, matching the header's granularity).
func (l *Limiter) Allow() (bool, time.Duration) {
	if l == nil {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.clock.Now()
	if !l.primed {
		// First sighting of the clock: start with a full bucket.
		l.tokens = l.burst
		l.last = now
		l.primed = true
	}
	if dt := now.Sub(l.last); dt > 0 {
		l.tokens += dt.Seconds() * l.rate
		if l.tokens > l.burst {
			l.tokens = l.burst
		}
	}
	l.last = now
	if l.tokens >= 1 {
		l.tokens--
		return true, 0
	}
	need := (1 - l.tokens) / l.rate
	retry := time.Duration(need * float64(time.Second))
	if retry < time.Second {
		retry = time.Second
	} else if rem := retry % time.Second; rem != 0 {
		retry += time.Second - rem
	}
	return false, retry
}
