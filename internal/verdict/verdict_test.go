package verdict

import (
	"fmt"
	"testing"

	"geoblock/internal/blockpage"
	"geoblock/internal/geo"
)

func testSource() Source {
	return Source{
		Version: 7,
		Seed:    11,
		Domains: []string{"news.example", "video.example", "shop.example", "mail.example"},
		Countries: []geo.CountryCode{"CN", "IR", "US", "DE"},
		Entries: []Entry{
			{Domain: "news.example", Country: "CN", Kind: blockpage.Censorship},
			{Domain: "video.example", Country: "CN", Kind: blockpage.Cloudflare},
			{Domain: "news.example", Country: "IR", Kind: blockpage.Akamai},
			{Domain: "shop.example", Country: "DE", Kind: blockpage.Legal451},
		},
	}
}

func TestCompileAndLookup(t *testing.T) {
	s, err := Compile(testSource())
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if got := s.Version(); got != 7 {
		t.Fatalf("Version = %d, want 7", got)
	}
	if got := s.Seed(); got != 11 {
		t.Fatalf("Seed = %d, want 11", got)
	}
	if got := s.Blocked(); got != 4 {
		t.Fatalf("Blocked = %d, want 4", got)
	}
	if len(s.Domains()) != 4 || len(s.Countries()) != 4 {
		t.Fatalf("universe = %d domains × %d countries, want 4×4", len(s.Domains()), len(s.Countries()))
	}

	cases := []struct {
		dom  string
		cc   geo.CountryCode
		ok   bool
		want Verdict
	}{
		{"news.example", "CN", true, Verdict{Blocked: true, Kind: blockpage.Censorship}},
		{"video.example", "CN", true, Verdict{Blocked: true, Kind: blockpage.Cloudflare}},
		{"news.example", "IR", true, Verdict{Blocked: true, Kind: blockpage.Akamai}},
		{"shop.example", "DE", true, Verdict{Blocked: true, Kind: blockpage.Legal451}},
		{"shop.example", "CN", true, Verdict{}},
		{"mail.example", "US", true, Verdict{}},
		{"news.example", "US", true, Verdict{}},
		{"absent.example", "CN", false, Verdict{}},
		{"news.example", "ZZ", false, Verdict{}},
		{"", "", false, Verdict{}},
	}
	for _, c := range cases {
		v, ok := s.Lookup(c.dom, c.cc)
		if ok != c.ok || v != c.want {
			t.Errorf("Lookup(%q, %q) = %+v, %v; want %+v, %v", c.dom, c.cc, v, ok, c.want, c.ok)
		}
	}

	if !s.HasDomain("mail.example") || s.HasDomain("absent.example") {
		t.Fatalf("HasDomain misclassified the universe")
	}
	if s.ETag() == "" || s.ETag()[0] != '"' {
		t.Fatalf("ETag %q is not a quoted strong validator", s.ETag())
	}
}

func TestCompileDedupsAndCollapsesDuplicates(t *testing.T) {
	src := testSource()
	src.Domains = append(src.Domains, "news.example", "news.example")
	src.Countries = append(src.Countries, "CN")
	src.Entries = append(src.Entries, Entry{Domain: "news.example", Country: "CN", Kind: blockpage.Censorship})
	s, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile with duplicates: %v", err)
	}
	if len(s.Domains()) != 4 || len(s.Countries()) != 4 {
		t.Fatalf("dedup left %d domains × %d countries", len(s.Domains()), len(s.Countries()))
	}
	if s.Blocked() != 4 {
		t.Fatalf("duplicate identical entry inflated Blocked to %d", s.Blocked())
	}
	want, err := Compile(testSource())
	if err != nil {
		t.Fatal(err)
	}
	if s.ETag() != want.ETag() {
		t.Fatalf("duplicate inputs changed the canonical encoding: %s vs %s", s.ETag(), want.ETag())
	}
}

func TestCompileRejectsBadEntries(t *testing.T) {
	for name, mut := range map[string]func(*Source){
		"unknown domain":   func(s *Source) { s.Entries[0].Domain = "absent.example" },
		"unknown country":  func(s *Source) { s.Entries[0].Country = "ZZ" },
		"conflicting kind": func(s *Source) { s.Entries = append(s.Entries, Entry{Domain: "news.example", Country: "CN", Kind: blockpage.Akamai}) },
		"kind out of wire range": func(s *Source) { s.Entries[0].Kind = blockpage.Kind(300) },
	} {
		src := testSource()
		mut(&src)
		if _, err := Compile(src); err == nil {
			t.Errorf("%s: Compile accepted invalid source", name)
		}
	}
}

func TestLookupIsAllocationFree(t *testing.T) {
	s, err := Compile(testSource())
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		s.Lookup("news.example", "CN")
		s.Lookup("mail.example", "US")
		s.Lookup("absent.example", "CN")
	})
	if allocs != 0 {
		t.Fatalf("Lookup allocates %.1f objects per three calls, want 0", allocs)
	}
}

// bigSource builds a large synthetic matrix for scale-sensitive tests.
func bigSource(domains, countries, stride int) Source {
	src := Source{Version: 1, Seed: 1}
	for i := 0; i < domains; i++ {
		src.Domains = append(src.Domains, fmt.Sprintf("site-%05d.example", i))
	}
	for c := 0; c < countries; c++ {
		src.Countries = append(src.Countries, geo.CountryCode(fmt.Sprintf("%c%c", 'A'+c/26, 'A'+c%26)))
	}
	for c := 0; c < countries; c++ {
		for i := c % stride; i < domains; i += stride {
			src.Entries = append(src.Entries, Entry{
				Domain:  src.Domains[i],
				Country: src.Countries[c],
				Kind:    blockpage.Kinds()[(i+c)%len(blockpage.Kinds())],
			})
		}
	}
	return src
}

func TestCompileLargeMatrix(t *testing.T) {
	src := bigSource(1000, 50, 7)
	s, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]blockpage.Kind, len(src.Entries))
	for _, e := range src.Entries {
		want[e.Domain+"/"+string(e.Country)] = e.Kind
	}
	if s.Blocked() != len(want) {
		t.Fatalf("Blocked = %d, want %d", s.Blocked(), len(want))
	}
	for _, d := range s.Domains() {
		for _, cc := range s.Countries() {
			v, ok := s.Lookup(d, cc)
			if !ok {
				t.Fatalf("Lookup(%q, %q) outside universe", d, cc)
			}
			k, blocked := want[d+"/"+string(cc)]
			if v.Blocked != blocked || v.Kind != k {
				t.Fatalf("Lookup(%q, %q) = %+v, want blocked=%v kind=%v", d, cc, v, blocked, k)
			}
		}
	}
}
