package verdict

import (
	"bytes"
	"testing"

	"geoblock/internal/geo"
)

// FuzzDecodeSnapshot hammers the snapshot decoder with arbitrary
// bytes: it must never panic, and any input it accepts must re-encode
// canonically — decoding the re-encoding yields identical bytes and an
// identical verdict matrix (the codec is closed under roundtripping).
func FuzzDecodeSnapshot(f *testing.F) {
	seeds := []Source{
		testSource(),
		{Version: 1, Seed: 2},
		{Version: 9, Seed: 3, Domains: []string{"a.example", "b.example"}, Countries: []geo.CountryCode{"CN", "US"}},
		bigSource(64, 8, 3),
	}
	for _, src := range seeds {
		s, err := Compile(src)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(s.Encode())
	}
	good, _ := Compile(testSource())
	enc := good.Encode()
	f.Add(enc[:len(enc)/2])
	flipped := append([]byte(nil), enc...)
	flipped[len(flipped)/3] ^= 0x80
	f.Add(flipped)
	f.Add([]byte(wireMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, payload []byte) {
		s, err := Decode(payload)
		if err != nil {
			return
		}
		re := s.Encode()
		s2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoding of accepted snapshot does not decode: %v", err)
		}
		if !bytes.Equal(s2.Encode(), re) {
			t.Fatalf("roundtrip not closed: second encoding differs")
		}
		if s2.ETag() != s.ETag() || s2.Version() != s.Version() || s2.Blocked() != s.Blocked() {
			t.Fatalf("snapshot identity drifted across roundtrip")
		}
		for _, d := range s.Domains() {
			for _, cc := range s.Countries() {
				a, aok := s.Lookup(d, cc)
				b, bok := s2.Lookup(d, cc)
				if a != b || aok != bok {
					t.Fatalf("Lookup(%q, %q) differs across roundtrip", d, cc)
				}
			}
		}
	})
}
