package verdict

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"geoblock/internal/geo"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, src := range []Source{
		testSource(),
		{Version: 1, Seed: 2}, // empty universe
		{Version: 3, Seed: 4, Domains: []string{"only.example"}, Countries: []geo.CountryCode{"US"}},
		bigSource(300, 20, 5),
	} {
		orig, err := Compile(src)
		if err != nil {
			t.Fatal(err)
		}
		enc := orig.Encode()
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if !bytes.Equal(dec.Encode(), enc) {
			t.Fatalf("re-encode is not byte-identical")
		}
		if dec.ETag() != orig.ETag() {
			t.Fatalf("ETag drifted across the wire: %s vs %s", dec.ETag(), orig.ETag())
		}
		if dec.Version() != orig.Version() || dec.Seed() != orig.Seed() || dec.Blocked() != orig.Blocked() {
			t.Fatalf("scalar fields drifted across the wire")
		}
		for _, d := range orig.Domains() {
			for _, cc := range orig.Countries() {
				a, aok := orig.Lookup(d, cc)
				b, bok := dec.Lookup(d, cc)
				if a != b || aok != bok {
					t.Fatalf("Lookup(%q, %q) differs after round trip: %+v vs %+v", d, cc, a, b)
				}
			}
		}
	}
}

// TestDecodeRejectsCorruption walks the strict-decoder error surface:
// every class of damage must produce an error, never a panic or a
// silently wrong snapshot.
func TestDecodeRejectsCorruption(t *testing.T) {
	s, err := Compile(testSource())
	if err != nil {
		t.Fatal(err)
	}
	good := s.Encode()

	reframe := func(payload []byte) []byte {
		return frame(payload)
	}
	// Offsets of each frame in the good encoding.
	var frames [][2]int // [start, end) including header
	for off := len(wireMagic); off < len(good); {
		n := int(binary.LittleEndian.Uint32(good[off : off+4]))
		frames = append(frames, [2]int{off, off + frameHeader + n})
		off += frameHeader + n
	}
	if len(frames) != 2+len(s.Countries()) {
		t.Fatalf("expected %d frames, found %d", 2+len(s.Countries()), len(frames))
	}

	cases := map[string][]byte{
		"empty":          {},
		"short magic":    good[:4],
		"bad magic":      append([]byte("XXVERD01"), good[8:]...),
		"magic only":     good[:len(wireMagic)],
		"torn frame":     good[:len(wireMagic)+3],
		"truncated tail": good[:len(good)-1],
		"trailing bytes": append(append([]byte{}, good...), 0),
	}

	// Flip one payload byte in the header frame: CRC must catch it.
	flip := append([]byte{}, good...)
	flip[frames[0][0]+frameHeader+2] ^= 0x40
	cases["payload bit flip"] = flip

	// Frame length overruns the buffer.
	overrun := append([]byte{}, good...)
	binary.LittleEndian.PutUint32(overrun[frames[0][0]:], 1<<30)
	cases["frame length overrun"] = overrun

	// Surgically rebuild streams with structural damage; each frame's
	// payload is re-framed so the CRC is valid and only the structure
	// is wrong.
	payload := func(i int) []byte {
		return good[frames[i][0]+frameHeader : frames[i][1]]
	}
	hdr, row0, trailer := payload(0), payload(1), payload(len(frames)-1)

	join := func(ps ...[]byte) []byte {
		out := []byte(wireMagic)
		for _, p := range ps {
			out = append(out, reframe(p)...)
		}
		return out
	}
	cases["row before header"] = join(row0, hdr, payload(2), payload(3), payload(4), trailer)
	cases["duplicate header"] = join(hdr, hdr, payload(1), payload(2), payload(3), payload(4), trailer)
	cases["missing row"] = join(hdr, payload(1), payload(2), payload(3), trailer)
	cases["extra row"] = join(hdr, payload(1), payload(2), payload(3), payload(4), payload(4), trailer)
	cases["rows out of order"] = join(hdr, payload(2), payload(1), payload(3), payload(4), trailer)
	cases["missing trailer"] = join(hdr, payload(1), payload(2), payload(3), payload(4))
	cases["trailer before rows"] = join(hdr, trailer, payload(1), payload(2), payload(3), payload(4))
	cases["frame after trailer"] = join(hdr, payload(1), payload(2), payload(3), payload(4), trailer, trailer)
	cases["unknown record type"] = join(hdr, payload(1), payload(2), payload(3), payload(4), []byte{99, 0}, trailer)
	cases["empty record"] = join(hdr, []byte{}, payload(1), payload(2), payload(3), payload(4), trailer)

	// Trailer total disagreeing with the rows.
	badTotal := binary.AppendUvarint([]byte{recTrailer}, uint64(s.Blocked()+1))
	cases["trailer count mismatch"] = join(hdr, payload(1), payload(2), payload(3), payload(4), badTotal)

	// Record-level trailing bytes (valid CRC, extra payload).
	cases["record trailing bytes"] = join(hdr, payload(1), payload(2), payload(3), payload(4), append(append([]byte{}, trailer...), 7))

	for name, in := range cases {
		if _, err := Decode(in); err == nil {
			t.Errorf("%s: Decode accepted corrupt input", name)
		}
	}
}

func TestDecodeRejectsBadTables(t *testing.T) {
	// Hand-build headers with invalid tables.
	mk := func(build func() []byte) []byte {
		return append([]byte(wireMagic), frame(build())...)
	}
	unsortedDomains := mk(func() []byte {
		b := []byte{recHeader}
		b = binary.AppendUvarint(b, 1) // version
		b = binary.AppendUvarint(b, 1) // seed
		b = binary.AppendUvarint(b, 2) // 2 domains, out of order
		b = appendString(b, "b.example")
		b = appendString(b, "a.example")
		b = binary.AppendUvarint(b, 0)
		return b
	})
	hugeTable := mk(func() []byte {
		b := []byte{recHeader}
		b = binary.AppendUvarint(b, 1)
		b = binary.AppendUvarint(b, 1)
		b = binary.AppendUvarint(b, maxTableLen+1)
		return b
	})
	dupCountry := mk(func() []byte {
		b := []byte{recHeader}
		b = binary.AppendUvarint(b, 1)
		b = binary.AppendUvarint(b, 1)
		b = binary.AppendUvarint(b, 0) // no domains
		b = binary.AppendUvarint(b, 2)
		b = appendString(b, "CN")
		b = appendString(b, "CN")
		return b
	})
	for name, in := range map[string][]byte{
		"unsorted domain table":   unsortedDomains,
		"table length over limit": hugeTable,
		"duplicate country":       dupCountry,
	} {
		if _, err := Decode(in); err == nil {
			t.Errorf("%s: Decode accepted invalid header", name)
		}
	}

	// Row-level damage over a valid 2-domain header.
	header := func() []byte {
		b := []byte{recHeader}
		b = binary.AppendUvarint(b, 1)
		b = binary.AppendUvarint(b, 1)
		b = binary.AppendUvarint(b, 2)
		b = appendString(b, "a.example")
		b = appendString(b, "b.example")
		b = binary.AppendUvarint(b, 1)
		b = appendString(b, "CN")
		return b
	}
	row := func(build func([]byte) []byte) []byte {
		out := append([]byte(wireMagic), frame(header())...)
		b := []byte{recRow}
		b = binary.AppendUvarint(b, 0) // country 0
		return append(out, frame(build(b))...)
	}
	for name, in := range map[string][]byte{
		"row claims too many blocked": row(func(b []byte) []byte {
			return binary.AppendUvarint(b, 3)
		}),
		"zero domain-index gap": row(func(b []byte) []byte {
			b = binary.AppendUvarint(b, 2) // 2 pairs
			b = binary.AppendUvarint(b, 1) // dom 0
			b = binary.AppendUvarint(b, 1) // kind
			b = binary.AppendUvarint(b, 0) // gap 0: repeats dom 0
			return binary.AppendUvarint(b, 1)
		}),
		"domain index out of range": row(func(b []byte) []byte {
			b = binary.AppendUvarint(b, 1)
			b = binary.AppendUvarint(b, 5) // dom 4 of 2
			return binary.AppendUvarint(b, 1)
		}),
		"kind overflows uint8": row(func(b []byte) []byte {
			b = binary.AppendUvarint(b, 1)
			b = binary.AppendUvarint(b, 1)
			return binary.AppendUvarint(b, 300)
		}),
		"row truncated mid-pair": row(func(b []byte) []byte {
			return binary.AppendUvarint(b, 1)
		}),
	} {
		if _, err := Decode(in); err == nil {
			t.Errorf("%s: Decode accepted invalid row", name)
		}
	}
}

// TestGoldenSnapshot pins the wire format: the checked-in golden file
// must decode to the known matrix, and re-encoding the test source
// must reproduce it byte for byte. Regenerate deliberately with
// UPDATE_GOLDEN=1 if the format changes.
func TestGoldenSnapshot(t *testing.T) {
	path := filepath.Join("testdata", "golden.snapshot")
	s, err := Compile(testSource())
	if err != nil {
		t.Fatal(err)
	}
	enc := s.Encode()
	if os.Getenv("UPDATE_GOLDEN") == "1" {
		if err := os.WriteFile(path, enc, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(enc, want) {
		t.Fatalf("encoding of the test source no longer matches testdata/golden.snapshot (%d vs %d bytes) — the wire format changed", len(enc), len(want))
	}
	dec, err := Decode(want)
	if err != nil {
		t.Fatalf("Decode golden: %v", err)
	}
	v, ok := dec.Lookup("news.example", "CN")
	if !ok || !v.Blocked {
		t.Fatalf("golden snapshot lost the (news.example, CN) block: %+v %v", v, ok)
	}
	if dec.ETag() != s.ETag() {
		t.Fatalf("golden ETag %s != compiled ETag %s", dec.ETag(), s.ETag())
	}
}

func TestETagMatchesContent(t *testing.T) {
	s, err := Compile(testSource())
	if err != nil {
		t.Fatal(err)
	}
	sum := crc32.Checksum(s.Encode(), crc32.MakeTable(crc32.Castagnoli))
	if want := `"gbv1-7-` + hex8(sum) + `"`; s.ETag() != want {
		t.Fatalf("ETag = %s, want %s", s.ETag(), want)
	}
	// Different content, different tag.
	src := testSource()
	src.Entries = src.Entries[:len(src.Entries)-1]
	other, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if other.ETag() == s.ETag() {
		t.Fatalf("distinct matrices share ETag %s", s.ETag())
	}
}

func hex8(v uint32) string {
	const digits = "0123456789abcdef"
	var b [8]byte
	for i := 7; i >= 0; i-- {
		b[i] = digits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}
