package verdict

import (
	"testing"

	"geoblock/internal/geo"
)

// BenchmarkVerdictLookup measures the hot path the edge serves from:
// the acceptance bar is ≥1M lookups/s (≤1000 ns/op) with zero
// allocations, and in practice a lookup is tens of nanoseconds.
func BenchmarkVerdictLookup(b *testing.B) {
	s, err := Compile(bigSource(10000, 100, 7))
	if err != nil {
		b.Fatal(err)
	}
	doms := s.Domains()
	ccs := s.Countries()
	b.ReportAllocs()
	b.ResetTimer()
	var sink bool
	for i := 0; i < b.N; i++ {
		v, _ := s.Lookup(doms[i%len(doms)], ccs[i%len(ccs)])
		sink = v.Blocked
	}
	_ = sink
}

func BenchmarkVerdictLookupMiss(b *testing.B) {
	s, err := Compile(bigSource(10000, 100, 7))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Lookup("absent.example", geo.CountryCode("ZZ"))
	}
}

func BenchmarkSnapshotDecode(b *testing.B) {
	s, err := Compile(bigSource(10000, 100, 7))
	if err != nil {
		b.Fatal(err)
	}
	enc := s.Encode()
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}
