package fingerprint

import (
	"fmt"
	"testing"

	"geoblock/internal/blockpage"
	"geoblock/internal/stats"
)

func vars(i int) blockpage.Vars {
	return blockpage.Vars{
		Domain:      fmt.Sprintf("dom%d.example", i),
		ClientIP:    fmt.Sprintf("10.1.%d.%d", i%200, (i*3)%200),
		CountryName: []string{"Iran", "Syria", "Cuba", "Russia", "China"}[i%5],
		RayID:       fmt.Sprintf("%016x", uint64(i)*2654435761),
		Nonce:       fmt.Sprintf("%08x", i*40503),
	}
}

func TestClassifyEveryTemplate(t *testing.T) {
	c := NewClassifier()
	for _, k := range append(blockpage.Kinds(), blockpage.Censorship, blockpage.Legal451) {
		for i := 0; i < 10; i++ {
			body := blockpage.Render(k, vars(i))
			if got := c.Classify(body); got != k {
				t.Errorf("render %d of %v classified as %v", i, k, got)
			}
		}
	}
}

func TestClassifyAgreesWithGroundTruth(t *testing.T) {
	// The production classifier must agree with the template ground
	// truth (blockpage.Matches) on every template render.
	c := NewClassifier()
	for _, k := range append(blockpage.Kinds(), blockpage.Censorship, blockpage.Legal451) {
		body := blockpage.Render(k, vars(3))
		got := c.Classify(body)
		if !blockpage.Matches(got, body) {
			t.Errorf("classifier says %v but ground truth disagrees", got)
		}
	}
}

func TestOriginPagesUnclassified(t *testing.T) {
	c := NewClassifier()
	rng := stats.NewRNG(5)
	for i := 0; i < 30; i++ {
		site := blockpage.NewOriginSite(fmt.Sprintf("o%d.example", i), rng.Fork(fmt.Sprint(i)))
		if k := c.Classify(site.Render(uint64(i))); k != blockpage.KindNone {
			t.Fatalf("origin page classified as %v", k)
		}
	}
}

func TestIsExplicitGeoblock(t *testing.T) {
	c := NewClassifier()
	explicit := map[blockpage.Kind]bool{
		blockpage.Cloudflare: true, blockpage.CloudFront: true,
		blockpage.AppEngine: true, blockpage.Baidu: true, blockpage.Airbnb: true,
	}
	for _, k := range blockpage.Kinds() {
		body := blockpage.Render(k, vars(1))
		kind, isExp := c.IsExplicitGeoblock(body)
		if kind != k {
			t.Errorf("%v misclassified as %v", k, kind)
		}
		if isExp != explicit[k] {
			t.Errorf("%v explicit=%v, want %v", k, isExp, explicit[k])
		}
	}
}

func TestCensorshipPageNotExplicit(t *testing.T) {
	c := NewClassifier()
	body := blockpage.Render(blockpage.Censorship, vars(2))
	kind, isExp := c.IsExplicitGeoblock(body)
	if kind != blockpage.Censorship || isExp {
		t.Fatal("censorship page must be recognized but never counted as geoblocking")
	}
}

func TestIsBlockPage(t *testing.T) {
	c := NewClassifier()
	if !c.IsBlockPage(blockpage.Render(blockpage.Nginx, vars(0))) {
		t.Fatal("nginx 403 should fingerprint")
	}
	if c.IsBlockPage("<html><body>perfectly ordinary page</body></html>") {
		t.Fatal("ordinary page misfired")
	}
	if c.IsBlockPage("") {
		t.Fatal("empty body misfired")
	}
}

func TestSignatureWhitespaceInsensitive(t *testing.T) {
	c := NewClassifier()
	body := blockpage.Render(blockpage.Cloudflare, vars(4))
	// Reflow the page: collapse newlines to spaces and double some.
	reflowed := ""
	for _, ch := range body {
		if ch == '\n' {
			reflowed += "  "
		} else {
			reflowed += string(ch)
		}
	}
	if c.Classify(reflowed) != blockpage.Cloudflare {
		t.Fatal("classifier must tolerate reflowed whitespace")
	}
}

func TestSignaturesExposed(t *testing.T) {
	c := NewClassifier()
	want := len(blockpage.Kinds()) + 2 // + censorship + HTTP 451
	if got := len(c.Signatures()); got != want {
		t.Fatalf("signature count = %d, want %d", got, want)
	}
	for _, s := range c.Signatures() {
		if len(s.Tokens) == 0 {
			t.Fatalf("%v has no tokens", s.Kind)
		}
	}
}
