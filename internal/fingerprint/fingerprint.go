// Package fingerprint is the production block-page classifier: the
// signatures the paper's semi-automated process extracted from its 119
// manually examined clusters (§4.1.3), compiled into a matcher that
// labels a response body with its block-page class.
//
// The classifier is evaluated against the template ground truth
// (blockpage.Matches) in tests; in the pipeline it is what turns raw
// resampled bodies into geoblocking observations.
package fingerprint

import (
	"strings"

	"geoblock/internal/blockpage"
)

// Signature recognizes one page class: every token must appear in the
// whitespace-normalized body.
type Signature struct {
	Kind   blockpage.Kind
	Tokens []string
}

// Classifier matches bodies against an ordered signature set.
type Classifier struct {
	sigs []Signature
}

// NewClassifier compiles the default signature set: one signature per
// fingerprinted class of Table 2, plus the censorship page (which the
// pipeline must recognize to *exclude*, not to report).
func NewClassifier() *Classifier {
	kinds := append(blockpage.Kinds(), blockpage.Censorship, blockpage.Legal451)
	sigs := make([]Signature, 0, len(kinds))
	for _, k := range kinds {
		tokens := []string{normalize(blockpage.Signature(k))}
		for _, t := range blockpage.DisambiguatingTokens(k) {
			tokens = append(tokens, normalize(t))
		}
		sigs = append(sigs, Signature{Kind: k, Tokens: tokens})
	}
	return &Classifier{sigs: sigs}
}

// Signatures exposes the compiled set (for documentation tooling).
func (c *Classifier) Signatures() []Signature { return c.sigs }

// Classify labels body, returning KindNone when nothing matches.
// Bodies are matched in signature order; signatures are mutually
// exclusive by construction (verified by tests against every template).
func (c *Classifier) Classify(body string) blockpage.Kind {
	nb := normalize(body)
	for _, s := range c.sigs {
		if matchAll(nb, s.Tokens) {
			return s.Kind
		}
	}
	return blockpage.KindNone
}

// IsBlockPage reports whether body matches any fingerprint at all.
func (c *Classifier) IsBlockPage(body string) bool {
	return c.Classify(body) != blockpage.KindNone
}

// IsExplicitGeoblock reports whether body is one of the five explicit
// geoblocking pages (§4.1.3): Cloudflare, Amazon CloudFront, Google App
// Engine, Baidu, Airbnb.
func (c *Classifier) IsExplicitGeoblock(body string) (blockpage.Kind, bool) {
	k := c.Classify(body)
	return k, k.Explicit()
}

func matchAll(normalized string, tokens []string) bool {
	for _, t := range tokens {
		if !strings.Contains(normalized, t) {
			return false
		}
	}
	return true
}

func normalize(s string) string {
	return strings.Join(strings.Fields(s), " ")
}
