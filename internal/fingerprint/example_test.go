package fingerprint_test

import (
	"fmt"

	"geoblock/internal/blockpage"
	"geoblock/internal/fingerprint"
)

// Classify a response body against the block-page signature set.
func ExampleClassifier_Classify() {
	cls := fingerprint.NewClassifier()

	body := blockpage.Render(blockpage.Cloudflare, blockpage.Vars{
		Domain:      "shop.example.com",
		ClientIP:    "91.108.4.7",
		CountryName: "Iran",
		RayID:       "44bfa65f2a8c2b91",
	})

	kind := cls.Classify(body)
	fmt.Println(kind)
	fmt.Println("explicit geoblock:", kind.Explicit())

	// An ordinary page matches nothing.
	fmt.Println(cls.Classify("<html><body>hello</body></html>"))
	// Output:
	// Cloudflare
	// explicit geoblock: true
	// none
}
