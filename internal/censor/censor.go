// Package censor simulates nation-state network censorship: the
// confound the paper's methodology must separate from server-side
// geoblocking. Each censoring country disrupts access to its censored
// domains with its documented mechanism mix — injected TCP resets,
// poisoned DNS answers, injected HTTP block pages, or induced timeouts
// (§8 surveys these per country).
//
// Censorship is a property of the *network between* a client in the
// censoring country and the site; the serving stack never sees the
// request. Mechanisms are stable per (country, domain) pair — a real
// censor's decision does not flip between consecutive probes.
package censor

import (
	"geoblock/internal/geo"
	"geoblock/internal/stats"
	"geoblock/internal/worldgen"
)

// Mechanism is how a censor disrupts a connection.
type Mechanism int

const (
	// None: the request passes.
	None Mechanism = iota
	// RST: an injected TCP reset kills the connection.
	RST
	// DNSPoison: the resolver returns a bogus answer; the connection
	// fails.
	DNSPoison
	// BlockPage: an HTTP 403 block page is injected in-path.
	BlockPage
	// Timeout: packets are silently dropped.
	Timeout
)

func (m Mechanism) String() string {
	switch m {
	case None:
		return "none"
	case RST:
		return "rst"
	case DNSPoison:
		return "dns"
	case BlockPage:
		return "blockpage"
	case Timeout:
		return "timeout"
	}
	return "unknown"
}

// mechanismMix is each censor's preferred techniques, as cumulative
// weights over [RST, DNSPoison, BlockPage, Timeout].
var mechanismMix = map[geo.CountryCode][4]float64{
	"CN": {0.45, 0.85, 0.85, 1.0}, // GFW: RST + DNS poisoning
	"IR": {0.05, 0.10, 0.90, 1.0}, // Iran: injected HTTP block pages
	"RU": {0.55, 0.65, 0.95, 1.0},
	"TR": {0.10, 0.20, 0.95, 1.0},
	"PK": {0.10, 0.70, 0.90, 1.0}, // Pakistan: DNS-heavy
	"SA": {0.10, 0.20, 0.95, 1.0},
	"SY": {0.30, 0.40, 0.80, 1.0},
	"VN": {0.40, 0.70, 0.90, 1.0},
	"EG": {0.50, 0.60, 0.70, 1.0},
	"AE": {0.10, 0.20, 0.95, 1.0},
	"ID": {0.20, 0.70, 0.95, 1.0},
	"BY": {0.40, 0.60, 0.90, 1.0},
}

// Check returns the mechanism (or None) applied to a request from loc
// for domain d. The answer is a pure function of (domain, country).
func Check(d *worldgen.Domain, loc geo.Location) Mechanism {
	if d == nil || len(d.CensoredIn) == 0 || !d.CensoredIn[loc.Country] {
		return None
	}
	mix, ok := mechanismMix[loc.Country]
	if !ok {
		return BlockPage
	}
	// Stable draw per (country, domain).
	h := stats.Mix64(hash(string(loc.Country)) ^ hash(d.Name))
	x := float64(h>>11) / (1 << 53)
	switch {
	case x < mix[0]:
		return RST
	case x < mix[1]:
		return DNSPoison
	case x < mix[2]:
		return BlockPage
	default:
		return Timeout
	}
}

// CensorsAnything reports whether cc operates a national filter at all.
func CensorsAnything(cc geo.CountryCode) bool {
	_, ok := mechanismMix[cc]
	return ok
}

func hash(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
