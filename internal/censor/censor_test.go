package censor

import (
	"testing"

	"geoblock/internal/geo"
	"geoblock/internal/worldgen"
)

func TestCheckNoneForUncensored(t *testing.T) {
	d := &worldgen.Domain{Name: "free.example.com"}
	if got := Check(d, geo.Location{Country: "CN"}); got != None {
		t.Fatalf("uncensored domain got %v", got)
	}
	if got := Check(nil, geo.Location{Country: "CN"}); got != None {
		t.Fatalf("nil domain got %v", got)
	}
}

func TestCheckOnlyInCensoringCountry(t *testing.T) {
	d := &worldgen.Domain{
		Name:       "banned.example.com",
		CensoredIn: map[geo.CountryCode]bool{"IR": true},
	}
	if got := Check(d, geo.Location{Country: "IR"}); got == None {
		t.Fatal("censored domain should be disrupted in Iran")
	}
	if got := Check(d, geo.Location{Country: "US"}); got != None {
		t.Fatalf("domain disrupted outside censoring country: %v", got)
	}
}

func TestMechanismStablePerPair(t *testing.T) {
	d := &worldgen.Domain{
		Name:       "stable.example.com",
		CensoredIn: map[geo.CountryCode]bool{"CN": true, "IR": true},
	}
	first := Check(d, geo.Location{Country: "CN"})
	for i := 0; i < 50; i++ {
		if got := Check(d, geo.Location{Country: "CN"}); got != first {
			t.Fatal("mechanism flipped between probes")
		}
	}
}

func TestMechanismMixFollowsProfile(t *testing.T) {
	// Across many domains, Iran should be blockpage-heavy and China
	// RST/DNS-heavy.
	irCounts := map[Mechanism]int{}
	cnCounts := map[Mechanism]int{}
	for i := 0; i < 500; i++ {
		d := &worldgen.Domain{
			Name:       "site-" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+i%7)) + ".example",
			CensoredIn: map[geo.CountryCode]bool{"CN": true, "IR": true},
		}
		irCounts[Check(d, geo.Location{Country: "IR"})]++
		cnCounts[Check(d, geo.Location{Country: "CN"})]++
	}
	if irCounts[BlockPage] < irCounts[RST]+irCounts[DNSPoison] {
		t.Fatalf("Iran should be blockpage-heavy: %v", irCounts)
	}
	if cnCounts[RST]+cnCounts[DNSPoison] < cnCounts[BlockPage] {
		t.Fatalf("China should be RST/DNS-heavy: %v", cnCounts)
	}
}

func TestCensorsAnything(t *testing.T) {
	if !CensorsAnything("CN") || !CensorsAnything("IR") {
		t.Fatal("known censors missing")
	}
	if CensorsAnything("CH") || CensorsAnything("NZ") {
		t.Fatal("non-censors flagged")
	}
}

func TestCensorCountriesMatchWorldgen(t *testing.T) {
	for _, cc := range worldgen.CensorCountries() {
		if !CensorsAnything(cc) {
			t.Errorf("worldgen censors %s but censor package has no profile", cc)
		}
	}
}

func TestMechanismString(t *testing.T) {
	for m, want := range map[Mechanism]string{
		None: "none", RST: "rst", DNSPoison: "dns", BlockPage: "blockpage", Timeout: "timeout",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %q", m, m.String())
		}
	}
}
