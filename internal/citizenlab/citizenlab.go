// Package citizenlab synthesizes the Citizen Lab Block List substitute:
// a global test list of domains that censorship measurement tools probe
// plus per-country lists. The paper uses the list twice — to *exclude*
// listed domains before probing from residential devices (§3.3), and as
// the domain universe of the OONI confound analysis, where 9% of the
// global list turned out to serve CDN geoblock pages (§7.1).
package citizenlab

import (
	"fmt"
	"sort"

	"geoblock/internal/geo"
	"geoblock/internal/stats"
)

// List is a synthetic Citizen Lab test list.
type List struct {
	// Global is the global test list every client probes.
	Global []string
	// PerCountry maps a country to its country-specific additions.
	PerCountry map[geo.CountryCode][]string

	global map[string]bool
}

// Build assembles a list: fromPopulation are real domains drawn from
// the simulated web (popular sites that ended up on the list — these
// are the ones that can collide with the study populations and with
// geoblocking), and extra synthetic entries model the rest of the list
// (activist sites, local media) that exist outside the measured web.
func Build(rng *stats.RNG, fromPopulation []string, extra int, censorCountries []geo.CountryCode) *List {
	l := &List{
		PerCountry: make(map[geo.CountryCode][]string),
		global:     make(map[string]bool),
	}
	for _, d := range fromPopulation {
		l.add(d)
	}
	for i := 0; i < extra; i++ {
		l.add(fmt.Sprintf("testlist-%04d.example", i))
	}
	sort.Strings(l.Global)
	for _, cc := range censorCountries {
		n := 20 + rng.Intn(60)
		local := make([]string, 0, n)
		for i := 0; i < n; i++ {
			local = append(local, fmt.Sprintf("local-%s-%03d.example", cc, i))
		}
		l.PerCountry[cc] = local
	}
	return l
}

func (l *List) add(d string) {
	if l.global[d] {
		return
	}
	l.global[d] = true
	l.Global = append(l.Global, d)
}

// Contains reports whether domain is on the global list — the check the
// safe-list filter applies before probing.
func (l *List) Contains(domain string) bool { return l.global[domain] }

// Len returns the size of the global list.
func (l *List) Len() int { return len(l.Global) }
