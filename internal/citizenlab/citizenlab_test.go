package citizenlab

import (
	"testing"

	"geoblock/internal/geo"
	"geoblock/internal/stats"
)

func TestBuild(t *testing.T) {
	rng := stats.NewRNG(1)
	l := Build(rng, []string{"a.example", "b.example", "a.example"}, 10,
		[]geo.CountryCode{"CN", "IR"})
	if l.Len() != 12 { // 2 unique population entries + 10 extras
		t.Fatalf("len = %d", l.Len())
	}
	if !l.Contains("a.example") || l.Contains("missing.example") {
		t.Fatal("containment broken")
	}
	if len(l.PerCountry["CN"]) == 0 || len(l.PerCountry["IR"]) == 0 {
		t.Fatal("per-country lists missing")
	}
	// Global list sorted and duplicate-free.
	for i := 1; i < len(l.Global); i++ {
		if l.Global[i] <= l.Global[i-1] {
			t.Fatalf("global list unsorted or duplicated at %d: %v", i, l.Global[i-1:i+1])
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	a := Build(stats.NewRNG(5), []string{"x.example"}, 5, []geo.CountryCode{"CN"})
	b := Build(stats.NewRNG(5), []string{"x.example"}, 5, []geo.CountryCode{"CN"})
	if len(a.Global) != len(b.Global) || len(a.PerCountry["CN"]) != len(b.PerCountry["CN"]) {
		t.Fatal("not deterministic")
	}
}
