package cfrules

import (
	"math"
	"testing"

	"geoblock/internal/geo"
)

func testDataset(t *testing.T) *Dataset {
	t.Helper()
	return Synthesize(403, 0.2)
}

func TestSynthesizeDeterministic(t *testing.T) {
	a := Synthesize(403, 0.2)
	b := Synthesize(403, 0.2)
	if len(a.Rules) != len(b.Rules) {
		t.Fatal("rule counts differ")
	}
	for i := range a.Rules {
		if a.Rules[i] != b.Rules[i] {
			t.Fatalf("rule %d differs", i)
		}
	}
}

func TestZonePopulations(t *testing.T) {
	ds := testDataset(t)
	if ds.ZonesPerTier[Free] <= ds.ZonesPerTier[Pro] ||
		ds.ZonesPerTier[Pro] <= ds.ZonesPerTier[Business] ||
		ds.ZonesPerTier[Business] <= ds.ZonesPerTier[Enterprise] {
		t.Fatalf("tier populations out of order: %v", ds.ZonesPerTier)
	}
}

func TestBaselineShape(t *testing.T) {
	ds := testDataset(t)
	baseline, _ := ds.Table9(nil)
	// Paper: Enterprise 37.07%, Business 2.69%, Pro 2.56%, Free 1.72%,
	// All 1.93%.
	if math.Abs(baseline.PerTier[Enterprise]-0.3707) > 0.02 {
		t.Fatalf("enterprise baseline %.4f", baseline.PerTier[Enterprise])
	}
	if baseline.PerTier[Enterprise] < 10*baseline.PerTier[Business] {
		t.Fatal("enterprise must dwarf business baseline")
	}
	if baseline.All < 0.015 || baseline.All > 0.025 {
		t.Fatalf("overall baseline %.4f, want ~0.019", baseline.All)
	}
	if baseline.PerTier[Free] > baseline.PerTier[Pro] || baseline.PerTier[Pro] > baseline.PerTier[Business] {
		t.Fatalf("tier baselines out of order: %v", baseline.PerTier)
	}
}

func TestTable9CountryShape(t *testing.T) {
	ds := testDataset(t)
	_, rows := ds.Table9([]geo.CountryCode{"KP", "IR", "RU", "CN", "SY", "SD"})
	get := func(cc geo.CountryCode) Table9Row {
		for _, r := range rows {
			if r.Country == cc {
				return r
			}
		}
		t.Fatalf("row %s missing", cc)
		return Table9Row{}
	}
	kp, ru, cn, ir := get("KP"), get("RU"), get("CN"), get("IR")
	// Enterprise: sanctions dominate (North Korea the most blocked).
	if kp.PerTier[Enterprise] < ru.PerTier[Enterprise] || ir.PerTier[Enterprise] < cn.PerTier[Enterprise] {
		t.Fatalf("enterprise should block sanctions hardest: KP=%v RU=%v IR=%v CN=%v",
			kp.PerTier[Enterprise], ru.PerTier[Enterprise], ir.PerTier[Enterprise], cn.PerTier[Enterprise])
	}
	// Free tier: China and Russia over the sanctioned set.
	if kp.PerTier[Free] > ru.PerTier[Free] || kp.PerTier[Free] > cn.PerTier[Free] {
		t.Fatalf("free tier should block CN/RU hardest: KP=%v RU=%v CN=%v",
			kp.PerTier[Free], ru.PerTier[Free], cn.PerTier[Free])
	}
	// Rates are per-tier fractions in [0, 1].
	for _, r := range rows {
		for _, tier := range Tiers() {
			if r.PerTier[tier] < 0 || r.PerTier[tier] > 1 {
				t.Fatalf("rate out of range: %v", r)
			}
		}
	}
}

func TestNonEnterpriseOnlyDuringRegression(t *testing.T) {
	ds := testDataset(t)
	for _, r := range ds.Rules {
		if r.Tier == Enterprise || r.Action != ActionBlock {
			continue
		}
		if r.Activated < DayRegressionStart || r.Activated > DaySnapshot {
			t.Fatalf("non-enterprise rule outside regression window: %+v", r)
		}
	}
	if ds.RegressionUptake() == 0 {
		t.Fatal("no regression uptake at all")
	}
}

func TestCumulativeActivationsMonotone(t *testing.T) {
	ds := testDataset(t)
	days := []Day{200, 500, 800, 1100, DayRegressionStart, 1250, DaySnapshot}
	for _, cc := range []geo.CountryCode{"KP", "IR", "SY", "SD", "CU"} {
		series := ds.CumulativeActivations(cc, days)
		for i := 1; i < len(series); i++ {
			if series[i] < series[i-1] {
				t.Fatalf("%s series not monotone: %v", cc, series)
			}
		}
		if series[len(series)-1] == 0 {
			t.Fatalf("%s has no enterprise activations", cc)
		}
	}
}

func TestSanctionedCountriesTrackTogether(t *testing.T) {
	// Figure 5: KP, IR, SY, SD, CU follow the same accumulation pattern
	// with KP and IR somewhat above the other three.
	ds := Synthesize(403, 0.5)
	days := []Day{DaySnapshot}
	kp := ds.CumulativeActivations("KP", days)[0]
	ir := ds.CumulativeActivations("IR", days)[0]
	sy := ds.CumulativeActivations("SY", days)[0]
	cu := ds.CumulativeActivations("CU", days)[0]
	if kp <= sy || ir <= cu {
		t.Fatalf("KP/IR should lead SY/CU: kp=%d ir=%d sy=%d cu=%d", kp, ir, sy, cu)
	}
	ratio := float64(kp) / float64(cu)
	if ratio > 2.0 {
		t.Fatalf("sanctioned countries should track together, kp/cu = %.2f", ratio)
	}
}

func TestTopBlockedCountries(t *testing.T) {
	ds := testDataset(t)
	top := ds.TopBlockedCountries(5)
	if len(top) != 5 {
		t.Fatalf("top = %v", top)
	}
	// Free-tier volume dominates raw counts, so CN/RU should lead.
	lead := map[geo.CountryCode]bool{top[0]: true, top[1]: true}
	if !lead["CN"] && !lead["RU"] {
		t.Fatalf("expected CN or RU leading raw counts: %v", top)
	}
}

func TestStringers(t *testing.T) {
	if Enterprise.String() != "Enterprise" || Free.String() != "Free" {
		t.Fatal("tier strings broken")
	}
	if ActionBlock.String() != "block" || ActionWhitelist.String() != "whitelist" {
		t.Fatal("action strings broken")
	}
}

func TestCumulativeActivationsUnknownCountry(t *testing.T) {
	ds := testDataset(t)
	series := ds.CumulativeActivations("ZZ", []Day{DaySnapshot})
	if series[0] != 0 {
		t.Fatal("unknown country should have no activations")
	}
}

func TestTable9UnknownCountryRow(t *testing.T) {
	ds := testDataset(t)
	_, rows := ds.Table9([]geo.CountryCode{"ZZ"})
	if len(rows) != 1 || rows[0].All != 0 {
		t.Fatalf("unknown country row: %+v", rows)
	}
}

func TestScaleFloor(t *testing.T) {
	ds := Synthesize(1, 0.0001)
	for tier, zones := range ds.ZonesPerTier {
		if zones < 50 {
			t.Fatalf("%v zone floor violated: %d", tier, zones)
		}
	}
}

func TestSynthesizePanicsOnBadScale(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Synthesize(1, 1.5)
}
