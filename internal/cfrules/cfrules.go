// Package cfrules synthesizes and analyzes the Cloudflare Firewall
// Access Rules snapshot of §6: a July 2018 view of every active
// country-scoped rule, taken during the April–August 2018 regression
// that exposed the Enterprise-only country-block feature to every
// account tier. It regenerates Table 9 (rule rates by tier and country)
// and Figure 5 (cumulative Enterprise activations over time).
package cfrules

import (
	"sort"

	"geoblock/internal/geo"
	"geoblock/internal/stats"
)

// Tier is a Cloudflare account tier.
type Tier int

const (
	Free Tier = iota
	Pro
	Business
	Enterprise
)

// Tiers lists the account tiers, cheapest first.
func Tiers() []Tier { return []Tier{Free, Pro, Business, Enterprise} }

func (t Tier) String() string {
	switch t {
	case Free:
		return "Free"
	case Pro:
		return "Pro"
	case Business:
		return "Business"
	case Enterprise:
		return "Enterprise"
	}
	return "Unknown"
}

// Action is a firewall-rule action.
type Action int

const (
	ActionBlock Action = iota
	ActionChallenge
	ActionJSChallenge
	ActionWhitelist
)

func (a Action) String() string {
	switch a {
	case ActionBlock:
		return "block"
	case ActionChallenge:
		return "challenge"
	case ActionJSChallenge:
		return "js_challenge"
	case ActionWhitelist:
		return "whitelist"
	}
	return "unknown"
}

// Day counts days since 2015-01-01 in the snapshot's virtual calendar.
type Day int

// Calendar anchors for the timeline.
const (
	DayRegressionStart Day = 1186 // 2018-04-01: non-Enterprise tiers gain blocking
	DaySnapshot        Day = 1307 // 2018-07-31: the snapshot Cloudflare shared
)

// Rule is one active country-scoped access rule.
type Rule struct {
	Tier      Tier
	Action    Action
	Country   geo.CountryCode
	Activated Day
}

// Dataset is the synthesized snapshot.
type Dataset struct {
	// ZonesPerTier is the total zone population per tier (blocking or
	// not).
	ZonesPerTier map[Tier]int
	// Rules holds every active country-scoped rule at the snapshot.
	Rules []Rule
}

// tierProfile calibrates one tier: its zone count at paper scale, its
// geoblocking baseline (fraction of zones with ≥1 country block rule),
// and the per-country inclusion propensities given that a zone blocks.
type tierProfile struct {
	zones    int
	baseline float64
	// include[country] = P(country in the blocked set | zone geoblocks).
	include map[geo.CountryCode]float64
	// tailMean is the mean number of additional arbitrary countries.
	tailMean float64
}

// profiles encode Table 9: e.g. 37.07% of Enterprise zones geoblock,
// and 16.50%/37.07% ≈ 45% of those include North Korea; free-tier
// blockers prefer China and Russia over the sanctioned set.
var profiles = map[Tier]tierProfile{
	Enterprise: {
		zones:    6000,
		baseline: 0.3707,
		include: map[geo.CountryCode]float64{
			"KP": 0.445, "IR": 0.420, "SY": 0.371, "SD": 0.366, "CU": 0.360,
			"RU": 0.132, "UA": 0.105, "IN": 0.113, "IQ": 0.108, "RO": 0.098,
			"BR": 0.104, "HR": 0.093, "CZ": 0.099, "EE": 0.088, "CN": 0.084,
			"VN": 0.083, "ID": 0.060,
		},
		tailMean: 2.0,
	},
	Business: {
		zones:    60000,
		baseline: 0.0269,
		include: map[geo.CountryCode]float64{
			"CN": 0.431, "RU": 0.424, "UA": 0.264, "IN": 0.178, "BG": 0.15,
			"RO": 0.182, "BR": 0.160, "ID": 0.145, "VN": 0.123, "KP": 0.141,
			"IR": 0.145, "CZ": 0.149, "IQ": 0.119, "EE": 0.119, "HR": 0.089,
			"SY": 0.063, "SD": 0.045, "CU": 0.046,
		},
		tailMean: 1.5,
	},
	Pro: {
		zones:    250000,
		baseline: 0.0256,
		include: map[geo.CountryCode]float64{
			"RU": 0.172, "CN": 0.180, "UA": 0.148, "IN": 0.090, "RO": 0.094,
			"BR": 0.063, "ID": 0.047, "VN": 0.063, "KP": 0.066, "IR": 0.051,
			"CZ": 0.059, "IQ": 0.035, "EE": 0.055, "HR": 0.051, "SY": 0.023,
			"SD": 0.016, "CU": 0.017,
		},
		tailMean: 1.2,
	},
	Free: {
		zones:    2500000,
		baseline: 0.0172,
		include: map[geo.CountryCode]float64{
			"RU": 0.110, "CN": 0.116, "UA": 0.087, "IN": 0.064, "RO": 0.070,
			"BR": 0.064, "ID": 0.058, "VN": 0.064, "KP": 0.058, "IR": 0.052,
			"CZ": 0.052, "IQ": 0.047, "EE": 0.047, "HR": 0.047, "SY": 0.012,
			"SD": 0.012, "CU": 0.012,
		},
		tailMean: 1.0,
	},
}

// Synthesize builds the snapshot at the given scale in (0, 1].
func Synthesize(seed uint64, scale float64) *Dataset {
	if scale <= 0 || scale > 1 {
		panic("cfrules: scale must be in (0, 1]")
	}
	rng := stats.NewRNG(seed).Fork("cfrules")
	db := geo.NewDB()
	all := db.Countries()

	ds := &Dataset{ZonesPerTier: map[Tier]int{}}
	for _, tier := range Tiers() {
		prof := profiles[tier]
		zones := int(float64(prof.zones) * scale)
		if zones < 50 {
			zones = 50
		}
		ds.ZonesPerTier[tier] = zones
		trng := rng.Fork(tier.String())

		// Deterministic iteration order over the propensity table.
		includeOrder := make([]geo.CountryCode, 0, len(prof.include))
		for cc := range prof.include {
			includeOrder = append(includeOrder, cc)
		}
		sort.Slice(includeOrder, func(i, j int) bool { return includeOrder[i] < includeOrder[j] })

		blockers := int(float64(zones)*prof.baseline + 0.5)
		for z := 0; z < blockers; z++ {
			zrng := trng.Fork(itoa(z))
			countries := map[geo.CountryCode]bool{}
			for _, cc := range includeOrder {
				if zrng.Bool(prof.include[cc]) {
					countries[cc] = true
				}
			}
			// Arbitrary tail countries.
			n := int(zrng.ExpFloat64() * prof.tailMean)
			for i := 0; i < n; i++ {
				countries[all[zrng.Intn(len(all))].Code] = true
			}
			if len(countries) == 0 {
				countries[all[zrng.Intn(len(all))].Code] = true
			}
			blocked := make([]geo.CountryCode, 0, len(countries))
			for cc := range countries {
				blocked = append(blocked, cc)
			}
			sort.Slice(blocked, func(i, j int) bool { return blocked[i] < blocked[j] })
			for _, cc := range blocked {
				ds.Rules = append(ds.Rules, Rule{
					Tier:      tier,
					Action:    ActionBlock,
					Country:   cc,
					Activated: activationDay(tier, cc, zrng),
				})
			}
			// Some blocking zones also run challenge rules.
			if zrng.Bool(0.3) {
				ds.Rules = append(ds.Rules, Rule{
					Tier:      tier,
					Action:    ActionChallenge,
					Country:   all[zrng.Intn(len(all))].Code,
					Activated: activationDay(tier, "", zrng),
				})
			}
		}
	}
	sortRules(ds.Rules)
	return ds
}

// activationDay models the timeline of Figure 5. Enterprise rules
// accumulate over the whole window (sanctions-driven rules cluster
// around enforcement waves); other tiers could only activate blocking
// during the regression, April–July 2018.
func activationDay(tier Tier, cc geo.CountryCode, rng *stats.RNG) Day {
	if tier != Enterprise {
		span := int(DaySnapshot - DayRegressionStart)
		return DayRegressionStart + Day(rng.Intn(span+1))
	}
	// Enterprise: ramping adoption — most rules recent, a long early
	// tail. Sample day offset from the snapshot with an exponential.
	back := int(rng.ExpFloat64() * 320)
	if back >= int(DaySnapshot) {
		back = int(DaySnapshot) - 1
	}
	day := int(DaySnapshot) - back
	_ = cc
	return Day(day)
}

func sortRules(rules []Rule) {
	sort.Slice(rules, func(i, j int) bool {
		if rules[i].Tier != rules[j].Tier {
			return rules[i].Tier < rules[j].Tier
		}
		if rules[i].Country != rules[j].Country {
			return rules[i].Country < rules[j].Country
		}
		return rules[i].Activated < rules[j].Activated
	})
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// Table9Row is one line of Table 9: the percentage of zones per tier
// with an active block rule for the country.
type Table9Row struct {
	Country geo.CountryCode
	All     float64
	PerTier map[Tier]float64
}

// Table9 computes the rule-rate table. Baseline is the fraction of
// zones (per tier, and overall) with at least one country-block rule.
func (ds *Dataset) Table9(countries []geo.CountryCode) (baseline Table9Row, rows []Table9Row) {
	type key struct {
		tier Tier
		cc   geo.CountryCode
	}
	// Count *rules* per (tier, country); each zone contributes at most
	// one rule per country by construction.
	perKey := map[key]int{}
	// Count distinct blocking zones via rule runs: Synthesize emits one
	// block rule per (zone, country), so zones-with-any-rule per tier is
	// reconstructed from the baseline profile instead; track it by
	// summing unique zone draws is not possible post-hoc, so the
	// Dataset records it directly below.
	for _, r := range ds.Rules {
		if r.Action != ActionBlock {
			continue
		}
		perKey[key{r.Tier, r.Country}]++
	}

	totalZones := 0
	for _, z := range ds.ZonesPerTier {
		totalZones += z
	}

	baseline = Table9Row{Country: "", PerTier: map[Tier]float64{}}
	blockingAll := 0
	for _, tier := range Tiers() {
		b := int(float64(ds.ZonesPerTier[tier])*profiles[tier].baseline + 0.5)
		if ds.ZonesPerTier[tier] > 0 {
			baseline.PerTier[tier] = float64(b) / float64(ds.ZonesPerTier[tier])
		}
		blockingAll += b
	}
	if totalZones > 0 {
		baseline.All = float64(blockingAll) / float64(totalZones)
	}

	for _, cc := range countries {
		row := Table9Row{Country: cc, PerTier: map[Tier]float64{}}
		total := 0
		for _, tier := range Tiers() {
			n := perKey[key{tier, cc}]
			total += n
			if ds.ZonesPerTier[tier] > 0 {
				row.PerTier[tier] = float64(n) / float64(ds.ZonesPerTier[tier])
			}
		}
		if totalZones > 0 {
			row.All = float64(total) / float64(totalZones)
		}
		rows = append(rows, row)
	}
	return baseline, rows
}

// TopBlockedCountries ranks countries by overall block-rule count.
func (ds *Dataset) TopBlockedCountries(n int) []geo.CountryCode {
	counts := stats.NewCounter()
	for _, r := range ds.Rules {
		if r.Action == ActionBlock {
			counts.Inc(string(r.Country), 1)
		}
	}
	var out []geo.CountryCode
	for _, kv := range counts.TopN(n) {
		out = append(out, geo.CountryCode(kv.Key))
	}
	return out
}

// CumulativeActivations returns Figure 5's series for one country: for
// each sample day, the number of Enterprise block rules against cc
// activated on or before it.
func (ds *Dataset) CumulativeActivations(cc geo.CountryCode, days []Day) []int {
	var activations []Day
	for _, r := range ds.Rules {
		if r.Tier == Enterprise && r.Action == ActionBlock && r.Country == cc {
			activations = append(activations, r.Activated)
		}
	}
	sort.Slice(activations, func(i, j int) bool { return activations[i] < activations[j] })
	out := make([]int, len(days))
	for i, day := range days {
		out[i] = sort.Search(len(activations), func(j int) bool { return activations[j] > day })
	}
	return out
}

// RegressionUptake counts non-Enterprise block rules activated during
// the regression window — the paper's observation that "where the
// functionality is available, many websites will opt to use it".
func (ds *Dataset) RegressionUptake() int {
	n := 0
	for _, r := range ds.Rules {
		if r.Tier != Enterprise && r.Action == ActionBlock &&
			r.Activated >= DayRegressionStart && r.Activated <= DaySnapshot {
			n++
		}
	}
	return n
}
