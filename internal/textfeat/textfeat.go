// Package textfeat builds term-frequency/inverse-document-frequency
// feature vectors over word 1- and 2-grams — the scikit-learn
// vectorization the paper feeds into hierarchical clustering (§4.1.3),
// reimplemented on sparse vectors.
package textfeat

import (
	"math"
	"sort"
	"strings"
)

// Vector is a sparse, L2-normalized feature vector. Indices are sorted
// ascending and unique.
type Vector struct {
	Idx []int32
	Val []float32
}

// NNZ returns the number of non-zero entries.
func (v Vector) NNZ() int { return len(v.Idx) }

// Cosine returns the cosine similarity of two normalized vectors, in
// [0, 1] for non-negative features (TF-IDF weights are non-negative).
func Cosine(a, b Vector) float64 {
	var dot float64
	i, j := 0, 0
	for i < len(a.Idx) && j < len(b.Idx) {
		switch {
		case a.Idx[i] == b.Idx[j]:
			dot += float64(a.Val[i]) * float64(b.Val[j])
			i++
			j++
		case a.Idx[i] < b.Idx[j]:
			i++
		default:
			j++
		}
	}
	if dot > 1 {
		dot = 1 // guard against float drift
	}
	return dot
}

// Tokenize lowercases the document and splits it into alphanumeric word
// tokens; markup punctuation separates tokens, mirroring sklearn's
// default token pattern closely enough for block-page boilerplate.
//
// Tokens containing digits collapse to a placeholder: ray IDs,
// reference numbers, incident IDs, client addresses and cache-buster
// nonces are the parts of a block page that vary per request, and
// collapsing them keeps two renders of the same template near-identical
// regardless of the corpus's IDF profile. (Jones et al.'s page
// fingerprinting does the equivalent masking.)
func Tokenize(doc string) []string {
	var tokens []string
	var cur strings.Builder
	hasDigit := false
	flush := func() {
		switch {
		case cur.Len() < 2: // sklearn's default drops 1-char tokens
		case hasDigit:
			tokens = append(tokens, "0")
		default:
			tokens = append(tokens, cur.String())
		}
		cur.Reset()
		hasDigit = false
	}
	for i := 0; i < len(doc); i++ {
		c := doc[i]
		switch {
		case c >= 'a' && c <= 'z':
			cur.WriteByte(c)
		case c >= '0' && c <= '9':
			cur.WriteByte(c)
			hasDigit = true
		case c >= 'A' && c <= 'Z':
			cur.WriteByte(c - 'A' + 'a')
		default:
			flush()
		}
	}
	flush()
	return tokens
}

// NGrams expands tokens into 1-grams and 2-grams.
func NGrams(tokens []string) []string {
	out := make([]string, 0, 2*len(tokens))
	out = append(out, tokens...)
	for i := 0; i+1 < len(tokens); i++ {
		out = append(out, tokens[i]+" "+tokens[i+1])
	}
	return out
}

// maxDocTokens caps the tokens considered per document: block pages are
// short, and capping keeps accidental megabyte origin pages from
// dominating fitting time.
const maxDocTokens = 4000

// Vectorizer fits a vocabulary with document frequencies over a corpus
// and transforms documents into TF-IDF vectors (smooth IDF, L2 norm —
// sklearn's TfidfVectorizer defaults).
type Vectorizer struct {
	vocab map[string]int32
	idf   []float64
	nDocs int
}

// Fit learns the vocabulary and document frequencies from docs.
func Fit(docs []string) *Vectorizer {
	v := &Vectorizer{vocab: make(map[string]int32)}
	df := []int32{}
	seen := make(map[int32]bool)
	for _, doc := range docs {
		v.nDocs++
		clear(seen)
		for _, g := range docGrams(doc) {
			id, ok := v.vocab[g]
			if !ok {
				id = int32(len(df))
				v.vocab[g] = id
				df = append(df, 0)
			}
			if !seen[id] {
				seen[id] = true
				df[id]++
			}
		}
	}
	v.idf = make([]float64, len(df))
	for i, d := range df {
		// Smooth IDF: ln((1+n)/(1+df)) + 1.
		v.idf[i] = math.Log(float64(1+v.nDocs)/float64(1+d)) + 1
	}
	return v
}

func docGrams(doc string) []string {
	toks := Tokenize(doc)
	if len(toks) > maxDocTokens {
		toks = toks[:maxDocTokens]
	}
	return NGrams(toks)
}

// VocabSize returns the number of fitted terms.
func (v *Vectorizer) VocabSize() int { return len(v.vocab) }

// Transform converts one document into a TF-IDF vector using the fitted
// vocabulary; unseen terms are ignored (sklearn behaviour).
func (v *Vectorizer) Transform(doc string) Vector {
	counts := make(map[int32]int)
	for _, g := range docGrams(doc) {
		if id, ok := v.vocab[g]; ok {
			counts[id]++
		}
	}
	idx := make([]int32, 0, len(counts))
	for id := range counts {
		idx = append(idx, id)
	}
	sort.Slice(idx, func(i, j int) bool { return idx[i] < idx[j] })
	val := make([]float32, len(idx))
	var norm float64
	for i, id := range idx {
		w := float64(counts[id]) * v.idf[id]
		val[i] = float32(w)
		norm += w * w
	}
	if norm > 0 {
		inv := float32(1 / math.Sqrt(norm))
		for i := range val {
			val[i] *= inv
		}
	}
	return Vector{Idx: idx, Val: val}
}

// FitTransform fits on docs and returns their vectors.
func FitTransform(docs []string) (*Vectorizer, []Vector) {
	v := Fit(docs)
	out := make([]Vector, len(docs))
	for i, d := range docs {
		out[i] = v.Transform(d)
	}
	return v, out
}
