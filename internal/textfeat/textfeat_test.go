package textfeat

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"geoblock/internal/blockpage"
	"geoblock/internal/stats"
)

func TestTokenize(t *testing.T) {
	// Digit-bearing tokens collapse to the "0" placeholder (variable
	// fields — ray IDs, reference numbers — must not split templates).
	got := Tokenize("Hello, World! x 42-foo ref4af7 <p>bar</p>")
	want := []string{"hello", "world", "0", "foo", "0", "bar"}
	if len(got) != len(want) {
		t.Fatalf("tokens = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestNGrams(t *testing.T) {
	got := NGrams([]string{"a1", "b2", "c3"})
	want := []string{"a1", "b2", "c3", "a1 b2", "b2 c3"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("ngrams = %v", got)
	}
}

func TestSelfSimilarityIsOne(t *testing.T) {
	_, vecs := FitTransform([]string{
		"the quick brown fox", "lazy dogs sleep here", "the quick brown fox",
	})
	if s := Cosine(vecs[0], vecs[2]); math.Abs(s-1) > 1e-6 {
		t.Fatalf("identical docs cosine = %v", s)
	}
	if s := Cosine(vecs[0], vecs[0]); math.Abs(s-1) > 1e-6 {
		t.Fatalf("self cosine = %v", s)
	}
}

func TestDisjointDocsZero(t *testing.T) {
	_, vecs := FitTransform([]string{"alpha beta gamma", "delta epsilon zeta"})
	if s := Cosine(vecs[0], vecs[1]); s != 0 {
		t.Fatalf("disjoint docs cosine = %v", s)
	}
}

func TestCosineBoundsProperty(t *testing.T) {
	rng := stats.NewRNG(7)
	words := strings.Fields("aa bb cc dd ee ff gg hh ii jj kk ll")
	mkDoc := func() string {
		n := 3 + rng.Intn(20)
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteString(words[rng.Intn(len(words))])
			b.WriteByte(' ')
		}
		return b.String()
	}
	docs := make([]string, 40)
	for i := range docs {
		docs[i] = mkDoc()
	}
	_, vecs := FitTransform(docs)
	f := func(a, b uint8) bool {
		i, j := int(a)%len(vecs), int(b)%len(vecs)
		s := Cosine(vecs[i], vecs[j])
		return s >= 0 && s <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCosineSymmetric(t *testing.T) {
	_, vecs := FitTransform([]string{
		"access denied cloudflare ray", "access denied reference number", "hello world page",
	})
	for i := range vecs {
		for j := range vecs {
			if math.Abs(Cosine(vecs[i], vecs[j])-Cosine(vecs[j], vecs[i])) > 1e-9 {
				t.Fatalf("cosine not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestTransformUnseenTermsIgnored(t *testing.T) {
	v := Fit([]string{"known words only"})
	vec := v.Transform("completely novel vocabulary")
	if vec.NNZ() != 0 {
		t.Fatalf("unseen terms produced %d entries", vec.NNZ())
	}
}

func TestVectorNormalized(t *testing.T) {
	_, vecs := FitTransform([]string{"one two three two one", "four five six"})
	for i, v := range vecs {
		var norm float64
		for _, x := range v.Val {
			norm += float64(x) * float64(x)
		}
		if math.Abs(norm-1) > 1e-5 {
			t.Fatalf("vector %d norm² = %v", i, norm)
		}
	}
}

func TestIDFDownweightsCommonTerms(t *testing.T) {
	// "common" appears in every doc, "rare" in one; in a doc containing
	// both once, the rare term must carry more weight.
	docs := []string{"common rare", "common filler", "common words", "common stuff"}
	v := Fit(docs)
	vec := v.Transform("common rare")
	cID, rID := v.vocab["common"], v.vocab["rare"]
	var wCommon, wRare float32
	for i, id := range vec.Idx {
		if id == cID {
			wCommon = vec.Val[i]
		}
		if id == rID {
			wRare = vec.Val[i]
		}
	}
	if wRare <= wCommon {
		t.Fatalf("rare weight %v <= common weight %v", wRare, wCommon)
	}
}

func TestBlockPagesOfSameKindSimilar(t *testing.T) {
	// Two renders of the same template (different variable fields) must
	// be far more similar than pages of different kinds.
	varsA := blockpage.Vars{Domain: "a.example.com", ClientIP: "1.2.3.4", CountryName: "Iran", RayID: "aaaa111", Nonce: "n1"}
	varsB := blockpage.Vars{Domain: "b.example.net", ClientIP: "5.6.7.8", CountryName: "Syria", RayID: "bbbb222", Nonce: "n2"}
	docs := []string{
		blockpage.Render(blockpage.Cloudflare, varsA),
		blockpage.Render(blockpage.Cloudflare, varsB),
		blockpage.Render(blockpage.Akamai, varsA),
		blockpage.Render(blockpage.Akamai, varsB),
		blockpage.Render(blockpage.CloudFront, varsA),
	}
	_, vecs := FitTransform(docs)
	sameCF := Cosine(vecs[0], vecs[1])
	sameAk := Cosine(vecs[2], vecs[3])
	cross := Cosine(vecs[0], vecs[2])
	if sameCF < 0.82 || sameAk < 0.82 {
		t.Fatalf("same-kind similarity too low: cf=%v ak=%v", sameCF, sameAk)
	}
	if cross > 0.5 {
		t.Fatalf("cross-kind similarity too high: %v", cross)
	}
}

func TestVocabSize(t *testing.T) {
	v := Fit([]string{"aa bb", "bb cc"})
	// terms: aa, bb, cc, "aa bb", "bb cc"
	if v.VocabSize() != 5 {
		t.Fatalf("vocab size = %d", v.VocabSize())
	}
}
