// Package proxy models the measurement platform's vantage points: a
// Luminati-style residential proxy mesh (superproxies fronting end-user
// exit machines in each country) and the fleet of datacenter VPSes used
// for validation (§2.2).
//
// The mesh reproduces the error structure that motivated the paper's
// Lumscan tool: unreliable residential exits, local filtering by
// corporate firewalls, occasionally mislocated machines, domains the
// proxy operator refuses to fetch (X-Luminati-Error), and countries
// with no exits at all (North Korea). All stochastic behaviour is
// deterministic per (exit, domain, sample) so studies replay exactly.
package proxy

import (
	"fmt"
	"io"
	"net/http"

	"geoblock/internal/geo"
	"geoblock/internal/stats"
	"geoblock/internal/vnet"
	"geoblock/internal/worldgen"
)

// Exit is one residential proxy machine.
type Exit struct {
	// IP is the address the exit's traffic sources from.
	IP geo.IP
	// Claimed is the country the proxy platform advertises for the
	// exit. For mislocated exits the IP geolocates elsewhere.
	Claimed geo.CountryCode
	// Reliability is the per-request success probability.
	Reliability float64
	// CorporateFirewall marks exits behind local filtering that blocks
	// a slice of domains regardless of geography (§4.2).
	CorporateFirewall bool
	// Mislocated marks exits whose true location differs from Claimed.
	Mislocated bool
	// InCrimea marks Ukrainian exits inside the Crimea region.
	InCrimea bool
}

// FaultVerdict is a fault hook's decision for one request through an
// exit.
type FaultVerdict uint8

const (
	// FaultNone: the request proceeds normally.
	FaultNone FaultVerdict = iota
	// FaultExitDown: the exit connection fails at the superproxy.
	FaultExitDown
	// FaultStall: the connection stalls until the client times out
	// (slowloris-shaped failure).
	FaultStall
	// FaultTruncate: the response body is cut mid-transfer.
	FaultTruncate
	// FaultReset: the connection is reset before any response.
	FaultReset
)

// FaultHook is the mesh's fault-injection seam (internal/faults holds
// the standard implementation). Every method MUST be a pure function of
// its arguments plus the hook's own seed — never of call order, shared
// mutable state, or wall time — or scan output stops being reproducible
// across Concurrency values. Hooks are called concurrently.
type FaultHook interface {
	// Brownout reports whether the superproxy refuses to open a session
	// for cc at slot on the given (0-based) open attempt. Transient
	// brownouts clear after a profile-determined number of attempts.
	Brownout(cc geo.CountryCode, slot uint64, attempt int) bool
	// ExitDark reports whether exit is dark for the whole run: it fails
	// the connectivity pre-check and every request.
	ExitDark(cc geo.CountryCode, exit geo.IP) bool
	// Churned reports whether exit has died mid-session after serving
	// `served` requests on the current sticky stretch.
	Churned(cc geo.CountryCode, exit geo.IP, served int) bool
	// Request draws the per-request fault verdict. seed is the
	// deterministic per-sample seed.
	Request(cc geo.CountryCode, exit geo.IP, host string, seed uint64) FaultVerdict
}

// Network is the proxy mesh.
type Network struct {
	World  *worldgen.World
	exits  map[geo.CountryCode][]*Exit
	faults FaultHook
}

// SetFaults installs (or, with nil, removes) the fault-injection hook.
// Install before opening sessions; the hook is shared by every session
// the network hands out.
func (n *Network) SetFaults(h FaultHook) { n.faults = h }

// maxExitsPerCountry caps the materialized inventory; rotation cycles
// within it.
const maxExitsPerCountry = 240

// NewNetwork builds the mesh from the world's per-country exit
// inventories.
func NewNetwork(w *worldgen.World) *Network {
	rng := stats.NewRNG(w.Cfg.Seed).Fork("proxy")
	n := &Network{World: w, exits: make(map[geo.CountryCode][]*Exit)}
	countries := w.Geo.Countries()
	for _, c := range countries {
		if c.LuminatiExits == 0 {
			continue
		}
		crng := rng.Fork(string(c.Code))
		count := c.LuminatiExits
		if count > maxExitsPerCountry {
			count = maxExitsPerCountry
		}
		base := 0.975
		switch {
		case c.Flaky:
			base = 0.55
		case c.Code == "KM": // Comoros: the paper's 76.4% response-rate outlier
			base = 0.80
		case c.Sanctioned:
			// Sanctioned countries' residential connectivity is the
			// study's noisiest: throttled uplinks, intermittent power.
			base = 0.93
		case c.GDPTier == 5:
			base = 0.95
		}
		exits := make([]*Exit, count)
		for i := range exits {
			e := &Exit{
				Claimed:     c.Code,
				Reliability: clampProb(base - 0.15*crng.Float64()),
			}
			e.CorporateFirewall = crng.Bool(0.08)
			switch {
			case crng.Bool(0.015):
				// Mislocated: the machine's address geolocates to a
				// nearby (table-adjacent) country.
				e.Mislocated = true
				other := countries[(indexOf(countries, c.Code)+1+crng.Intn(4))%len(countries)]
				e.IP = mustExitIP(w, other.Code, crng.Uint64())
			case c.Code == "UA" && crng.Bool(0.06):
				e.InCrimea = true
				e.IP = w.Geo.CrimeaHostIP(crng.Uint64())
			default:
				e.IP = mustExitIP(w, c.Code, crng.Uint64())
			}
			exits[i] = e
		}
		n.exits[c.Code] = exits
	}
	return n
}

func indexOf(cs []geo.Country, code geo.CountryCode) int {
	for i, c := range cs {
		if c.Code == code {
			return i
		}
	}
	return 0
}

// mustExitIP mints a proxy-exit address: exit machines run the Hola
// client, and their addresses sit in the proxy-flagged slice that
// commercial blacklists cover (§3.2's bot-defense fate sharing).
func mustExitIP(w *worldgen.World, cc geo.CountryCode, n uint64) geo.IP {
	ip, err := w.Geo.ProxyExitIP(cc, n)
	if err != nil {
		panic(err)
	}
	return ip
}

func clampProb(p float64) float64 {
	if p < 0.3 {
		return 0.3
	}
	if p > 1 {
		return 1
	}
	return p
}

// Countries returns the codes with at least one exit, sorted.
func (n *Network) Countries() []geo.CountryCode {
	var out []geo.CountryCode
	for _, c := range n.World.Geo.Countries() {
		if len(n.exits[c.Code]) > 0 {
			out = append(out, c.Code)
		}
	}
	return out
}

// Exits exposes a country's inventory (for diagnostics and tests).
func (n *Network) Exits(cc geo.CountryCode) []*Exit { return n.exits[cc] }

// ErrNoExits is returned when a country has no residential exits.
type ErrNoExits struct{ Country geo.CountryCode }

func (e *ErrNoExits) Error() string {
	return fmt.Sprintf("proxy: no exits available in %s", e.Country)
}

// ErrBrownout is returned when the superproxy fronting a country is
// (transiently) refusing to open sessions. Unlike ErrNoExits it is
// worth retrying: brownouts clear.
type ErrBrownout struct {
	Country geo.CountryCode
	Attempt int
}

func (e *ErrBrownout) Error() string {
	return fmt.Sprintf("proxy: superproxy brownout in %s (open attempt %d)", e.Country, e.Attempt)
}

// Session is a sticky proxy session: requests flow through one exit
// until the caller rotates. Sessions are not safe for concurrent use;
// open one per worker, as the real superproxy protocol does.
type Session struct {
	net   *Network
	cc    geo.CountryCode
	exits []*Exit
	cur   int
	used  int
}

// NewSession opens a session exiting in cc, starting at a
// deterministic position derived from slot (workers pass distinct
// slots to spread over the inventory).
func (n *Network) NewSession(cc geo.CountryCode, slot uint64) (*Session, error) {
	return n.NewSessionAttempt(cc, slot, 0)
}

// NewSessionAttempt is NewSession with an explicit 0-based open-attempt
// index, which the fault hook consults for superproxy brownouts: a
// browned-out open fails with *ErrBrownout, and retrying with a higher
// attempt may succeed once the brownout clears.
func (n *Network) NewSessionAttempt(cc geo.CountryCode, slot uint64, attempt int) (*Session, error) {
	exits := n.exits[cc]
	if len(exits) == 0 {
		return nil, &ErrNoExits{Country: cc}
	}
	if n.faults != nil && n.faults.Brownout(cc, slot, attempt) {
		return nil, &ErrBrownout{Country: cc, Attempt: attempt}
	}
	return &Session{
		net:   n,
		cc:    cc,
		exits: exits,
		cur:   int(stats.Mix64(slot) % uint64(len(exits))),
	}, nil
}

// NewRegionSession opens a session restricted to cc's exits inside (or
// outside) the Crimea region — the sub-national vantage selection the
// paper's §4.2.2 observation calls for.
func (n *Network) NewRegionSession(cc geo.CountryCode, crimea bool, slot uint64) (*Session, error) {
	var filtered []*Exit
	for _, e := range n.exits[cc] {
		if e.InCrimea == crimea && !e.Mislocated {
			filtered = append(filtered, e)
		}
	}
	if len(filtered) == 0 {
		return nil, &ErrNoExits{Country: cc}
	}
	return &Session{
		net:   n,
		cc:    cc,
		exits: filtered,
		cur:   int(stats.Mix64(slot) % uint64(len(filtered))),
	}, nil
}

// Exit returns the session's current exit.
func (s *Session) Exit() *Exit { return s.exits[s.cur] }

// InventorySize is the number of exits the session rotates over — the
// upper bound on how many distinct machines a probe sweep can reach.
func (s *Session) InventorySize() int { return len(s.exits) }

// Rotate moves the session to the next exit machine.
func (s *Session) Rotate() {
	s.cur = (s.cur + 1) % len(s.exits)
	s.used = 0
}

// Used returns how many requests the current exit has served.
func (s *Session) Used() int { return s.used }

// Verify performs the connectivity pre-check Lumscan runs before
// scanning: a request to a platform-controlled page that echoes the
// exit's address and advertised geolocation. It fails when the exit is
// (transiently) broken.
func (s *Session) Verify(seed uint64) (geo.IP, geo.CountryCode, error) {
	e := s.Exit()
	if s.net.faults != nil && s.net.faults.ExitDark(s.cc, e.IP) {
		return 0, "", &vnet.OpError{Op: "proxy", Host: "lumtest.example", Msg: "exit dark"}
	}
	rng := stats.NewRNG(stats.Mix64(seed) ^ uint64(e.IP) ^ 0xc0ffee)
	if !rng.Bool(e.Reliability) {
		return 0, "", &vnet.OpError{Op: "proxy", Host: "lumtest.example", Msg: "exit unavailable"}
	}
	return e.IP, e.Claimed, nil
}

// RoundTrip sends req through the session's current exit. It applies,
// in order: the platform's own domain policy (X-Luminati-Error), the
// exit's reliability, the exit's local firewall, and then the real
// network path from the exit's address.
func (s *Session) RoundTrip(req *http.Request) (*http.Response, error) {
	e := s.Exit()
	served := s.used
	s.used++

	host := trimHost(req.URL.Hostname())
	seed, _ := vnet.SampleSeed(req.Context())
	rng := stats.NewRNG(stats.Mix64(seed) ^ uint64(e.IP) ^ hash(host))

	// Injected faults sit in front of the mesh's organic error
	// structure, so a chaos run layers on top of (never replaces) the
	// paper's baseline unreliability.
	truncate := false
	if f := s.net.faults; f != nil {
		if f.ExitDark(s.cc, e.IP) || f.Churned(s.cc, e.IP, served) {
			return nil, &vnet.OpError{Op: "proxy", Host: host, Msg: "superproxy: exit connection failed"}
		}
		switch f.Request(s.cc, e.IP, host, seed) {
		case FaultExitDown:
			return nil, &vnet.OpError{Op: "proxy", Host: host, Msg: "superproxy: exit connection failed"}
		case FaultStall:
			return nil, vnet.TimeoutError("read", host)
		case FaultReset:
			return nil, &vnet.OpError{Op: "read", Host: host, Msg: "connection reset by peer"}
		case FaultTruncate:
			truncate = true
		}
	}

	if d, ok := s.net.World.Lookup(host); ok && d.LuminatiRestricted {
		h := make(http.Header)
		h.Set("X-Luminati-Error", "403 Forbidden: target site requests to not be crawled")
		return &http.Response{
			Status: "502 Bad Gateway", StatusCode: 502,
			Proto: "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header: h, Body: http.NoBody, Request: req,
		}, nil
	}

	// Path-level unreachability: some (country, destination) pairs
	// never connect — broken transit, MTU black holes, filtered
	// upstreams. The verdict is stable per pair, so retries and exit
	// rotation cannot fix it: this is what keeps even well-connected
	// countries at the paper's 89–94% per-domain response rates, and
	// what buries Comoros at ~76% (§4.1.1).
	if pathUnreachable(s.cc, host, s.net.World.Geo) {
		return nil, vnet.TimeoutError("dial", host)
	}

	if !rng.Bool(e.Reliability) {
		return nil, &vnet.OpError{Op: "proxy", Host: host, Msg: "superproxy: exit connection failed"}
	}

	// Corporate firewalls block a stable slice of domains for the
	// machines behind them (the paper's suspected source of local
	// interference, §4.2).
	if e.CorporateFirewall && stats.Mix64(hash(host)^uint64(e.IP))%100 < 4 {
		return nil, &vnet.OpError{Op: "read", Host: host, Msg: "connection reset by local filter"}
	}

	stack := vnet.NewStack(s.net.World, e.IP)
	resp, err := stack.RoundTrip(req)
	if err == nil && truncate {
		truncateResponse(resp, seed)
	}
	return resp, err
}

// truncateResponse rewrites resp so the transfer dies mid-body: the
// advertised length disappears and reads fail after a seed-determined
// prefix, the way a dropped residential uplink looks to the client.
func truncateResponse(resp *http.Response, seed uint64) {
	keep := int(stats.Mix64(seed^0x7c1) % 512)
	resp.Header = resp.Header.Clone()
	if resp.Header != nil {
		resp.Header.Del("Content-Length")
	}
	resp.ContentLength = -1
	resp.Body = &truncatedBody{inner: resp.Body, remaining: keep}
}

// truncatedBody yields at most `remaining` bytes, then fails the read.
type truncatedBody struct {
	inner     io.ReadCloser
	remaining int
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, &vnet.OpError{Op: "read", Host: "", Msg: "connection reset mid-transfer"}
	}
	if len(p) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.inner.Read(p)
	b.remaining -= n
	if err == io.EOF {
		// The origin finished first: the fault still eats the FIN.
		return n, &vnet.OpError{Op: "read", Host: "", Msg: "connection reset mid-transfer"}
	}
	return n, err
}

func (b *truncatedBody) Close() error { return b.inner.Close() }

// pathUnreachable draws the stable per-(country, destination) transit
// verdict.
func pathUnreachable(cc geo.CountryCode, host string, db *geo.DB) bool {
	rate := uint64(50) // 5.0% baseline, in 1/1000
	if c, ok := db.Country(cc); ok {
		switch {
		case c.Flaky:
			rate = 300
		case cc == "KM":
			rate = 200
		case c.GDPTier == 5:
			rate = 80
		}
	}
	h := stats.Mix64(hash(string(cc)) ^ hash(host) ^ 0x9a7)
	return h%1000 < rate
}

func trimHost(h string) string {
	if len(h) > 4 && h[:4] == "www." {
		return h[4:]
	}
	return h
}

func hash(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
