package proxy

import (
	"context"
	"io"
	"net/http"
	"testing"

	"geoblock/internal/geo"
	"geoblock/internal/vnet"
	"geoblock/internal/worldgen"
)

var testWorld = worldgen.Generate(worldgen.TestConfig())
var testNet = NewNetwork(testWorld)

func TestNetworkCoverage(t *testing.T) {
	countries := testNet.Countries()
	if len(countries) < 170 {
		t.Fatalf("proxy mesh covers %d countries, want most of the world", len(countries))
	}
	for _, cc := range countries {
		if cc == "KP" {
			t.Fatal("North Korea must have no exits")
		}
	}
}

func TestExitInventory(t *testing.T) {
	exits := testNet.Exits("US")
	if len(exits) == 0 || len(exits) > maxExitsPerCountry {
		t.Fatalf("US inventory = %d", len(exits))
	}
	for _, e := range exits {
		if e.Reliability < 0.3 || e.Reliability > 1 {
			t.Fatalf("reliability %v out of range", e.Reliability)
		}
		if e.Claimed != "US" {
			t.Fatalf("claimed country %s", e.Claimed)
		}
	}
}

func TestMislocatedExitsExist(t *testing.T) {
	mislocated, crimea := 0, 0
	for _, cc := range testNet.Countries() {
		for _, e := range testNet.Exits(cc) {
			if e.Mislocated {
				mislocated++
				loc, ok := testWorld.Geo.Locate(e.IP)
				if !ok || loc.Country == e.Claimed {
					t.Fatalf("mislocated exit in %s still geolocates home", cc)
				}
			}
			if e.InCrimea {
				crimea++
				loc, _ := testWorld.Geo.Locate(e.IP)
				if loc.Region != geo.RegionCrimea {
					t.Fatal("Crimean exit outside Crimea range")
				}
			}
		}
	}
	if mislocated == 0 {
		t.Fatal("no mislocated exits; geolocation-error path untested")
	}
	if crimea == 0 {
		t.Fatal("no Crimean exits; region-granular blocking unmeasurable")
	}
}

func TestSessionNoExits(t *testing.T) {
	if _, err := testNet.NewSession("KP", 0); err == nil {
		t.Fatal("expected ErrNoExits for North Korea")
	}
}

func TestSessionRotation(t *testing.T) {
	s, err := testNet.NewSession("DE", 1)
	if err != nil {
		t.Fatal(err)
	}
	first := s.Exit()
	s.Rotate()
	if s.Exit() == first && len(testNet.Exits("DE")) > 1 {
		t.Fatal("rotation did not change exit")
	}
	if s.Used() != 0 {
		t.Fatal("rotation must reset use count")
	}
}

func TestVerify(t *testing.T) {
	s, err := testNet.NewSession("FR", 2)
	if err != nil {
		t.Fatal(err)
	}
	okSeen := false
	for seed := uint64(0); seed < 20; seed++ {
		ip, cc, err := s.Verify(seed)
		if err == nil {
			okSeen = true
			if cc != "FR" || ip != s.Exit().IP {
				t.Fatalf("verify returned %v/%s", ip, cc)
			}
		}
	}
	if !okSeen {
		t.Fatal("verify never succeeded")
	}
}

func doThrough(t *testing.T, s *Session, url string, seed uint64) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequestWithContext(vnet.WithSampleSeed(context.Background(), seed), "GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("User-Agent", "Mozilla/5.0 Firefox/61.0")
	req.Header.Set("Accept", "text/html")
	req.Header.Set("Accept-Language", "en-US")
	return s.RoundTrip(req)
}

func TestRoundTripThroughExit(t *testing.T) {
	var d *worldgen.Domain
	for _, cand := range testWorld.Top10K() {
		if len(cand.GeoRules) == 0 && !cand.Unreachable && !cand.LuminatiRestricted &&
			!cand.RedirectLoop && cand.RedirectHops == 0 && len(cand.CensoredIn) == 0 &&
			!cand.GAEHosted && !cand.AirbnbStyle && cand.ResidentialChallengeRate == 0 {
			d = cand
			break
		}
	}
	s, err := testNet.NewSession("GB", 3)
	if err != nil {
		t.Fatal(err)
	}
	var got *http.Response
	for seed := uint64(0); seed < 30 && got == nil; seed++ {
		resp, err := doThrough(t, s, "https://"+d.Name+"/", seed)
		if err != nil {
			s.Rotate()
			continue
		}
		got = resp
	}
	if got == nil {
		t.Fatal("request never succeeded through the mesh")
	}
	defer got.Body.Close()
	if got.StatusCode != 200 {
		t.Fatalf("status %d", got.StatusCode)
	}
	b, _ := io.ReadAll(got.Body)
	if len(b) == 0 {
		t.Fatal("empty body")
	}
	if s.Used() == 0 {
		t.Fatal("use counter did not advance")
	}
}

func TestLuminatiRestrictedDomain(t *testing.T) {
	var d *worldgen.Domain
	for _, cand := range testWorld.Top10K() {
		if cand.LuminatiRestricted {
			d = cand
			break
		}
	}
	if d == nil {
		t.Skip("no restricted domain at this scale")
	}
	s, err := testNet.NewSession("US", 4)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := doThrough(t, s, "https://"+d.Name+"/", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.Header.Get("X-Luminati-Error") == "" {
		t.Fatal("expected X-Luminati-Error header")
	}
	if resp.StatusCode != 502 {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestDeterministicFailures(t *testing.T) {
	s1, _ := testNet.NewSession("IN", 7)
	s2, _ := testNet.NewSession("IN", 7)
	d := testWorld.Top10K()[5]
	for seed := uint64(0); seed < 10; seed++ {
		r1, e1 := doThrough(t, s1, "https://"+d.Name+"/", seed)
		r2, e2 := doThrough(t, s2, "https://"+d.Name+"/", seed)
		if (e1 == nil) != (e2 == nil) {
			t.Fatal("failure draws not deterministic")
		}
		if e1 == nil {
			if r1.StatusCode != r2.StatusCode {
				t.Fatal("status not deterministic")
			}
			r1.Body.Close()
			r2.Body.Close()
		}
	}
}

func TestVPSFleet(t *testing.T) {
	fleet := VPSFleet(testWorld, VPSCountries())
	if len(fleet) != 16 {
		t.Fatalf("fleet size = %d, want 16", len(fleet))
	}
	for _, v := range fleet {
		loc, ok := testWorld.Geo.Locate(v.IP)
		if !ok || loc.Country != v.Country {
			t.Fatalf("VPS in %s geolocates to %v", v.Country, loc)
		}
		if v.Stack() == nil {
			t.Fatal("VPS without stack")
		}
	}
}

func TestVPSStableAcrossRuns(t *testing.T) {
	a := VPSFleet(testWorld, VPSCountries())
	b := VPSFleet(testWorld, VPSCountries())
	for i := range a {
		if a[i].IP != b[i].IP {
			t.Fatal("VPS addressing not deterministic")
		}
	}
}

func TestRegionSession(t *testing.T) {
	crimea, err := testNet.NewRegionSession("UA", true, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if !crimea.Exit().InCrimea {
			t.Fatal("Crimea session served a mainland exit")
		}
		crimea.Rotate()
	}
	mainland, err := testNet.NewRegionSession("UA", false, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if mainland.Exit().InCrimea || mainland.Exit().Mislocated {
			t.Fatal("mainland session served a Crimean or mislocated exit")
		}
		mainland.Rotate()
	}
	if _, err := testNet.NewRegionSession("DE", true, 1); err == nil {
		t.Fatal("Germany has no Crimean exits")
	}
}

func TestExitsAreProxyFlagged(t *testing.T) {
	// Every exit address must sit in the proxy-flagged slice (or the
	// Crimea range): the blacklist fate-sharing of §3.2 depends on it.
	for _, cc := range []geo.CountryCode{"US", "IR", "DE"} {
		for _, e := range testNet.Exits(cc) {
			if e.InCrimea {
				continue
			}
			if !testWorld.Geo.IsProxyExit(e.IP) {
				t.Fatalf("exit %v in %s not in the proxy slice", e.IP, cc)
			}
		}
	}
}
