package proxy

import (
	"geoblock/internal/geo"
	"geoblock/internal/vnet"
	"geoblock/internal/worldgen"
)

// VPS is one datacenter vantage point of the validation fleet: a stable
// address, no residential noise, correct geolocation (the paper
// verified each VPS's location against Cloudflare's geolocation
// headers, §2.2).
type VPS struct {
	Country geo.CountryCode
	IP      geo.IP
	stack   *vnet.Stack
}

// Stack returns the VPS's network stack (an http.RoundTripper).
func (v *VPS) Stack() *vnet.Stack { return v.stack }

// VPSCountries is the paper's 16-country fleet: 9 spanning the GDP
// range plus 7 chosen for known sanctions or content-availability
// reputations (§2.2).
func VPSCountries() []geo.CountryCode {
	return []geo.CountryCode{
		"IR", "IL", "TR", "RU", "KH", "CH", "AT", "BY",
		"LV", "US", "CA", "BR", "NG", "EG", "KE", "NZ",
	}
}

// VPSFleet provisions one VPS in each of the listed countries. The
// host index keeps VPS addresses away from the residential pool.
func VPSFleet(w *worldgen.World, countries []geo.CountryCode) []*VPS {
	out := make([]*VPS, 0, len(countries))
	for i, cc := range countries {
		var ip geo.IP
		var err error
		// VPS providers recommended by local activists run clean
		// address space: skip addresses on the public anonymizer lists.
		for n := uint64(100 + i); ; n++ {
			ip, err = w.Geo.DatacenterIP(cc, n)
			if err != nil || !w.Geo.IsAnonymizer(ip) {
				break
			}
		}
		if err != nil {
			continue
		}
		out = append(out, &VPS{Country: cc, IP: ip, stack: vnet.NewStack(w, ip)})
	}
	return out
}
