// Trace export: the deterministic view the acceptance matrix
// byte-compares, and the Chrome trace-event JSON that Perfetto and
// chrome://tracing load directly.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Trace is a point-in-time export of a Tracer: the event stream in
// recorded (canonical) order plus the drop tally.
type Trace struct {
	Root    SpanCtx `json:"root"`
	Events  []Event `json:"events"`
	Dropped int64   `json:"dropped,omitempty"`
}

// Deterministic returns the view the engine's determinism contract
// covers: runtime-class events removed, wall stamps zeroed. Everything
// left — IDs, names, coordinates, outcomes, attrs, virtual stamps, and
// the order itself — is a pure function of the scan inputs, so two
// runs of the same scan produce byte-identical deterministic traces at
// any Concurrency and any worker count.
func (t *Trace) Deterministic() *Trace {
	out := &Trace{Root: t.Root, Dropped: t.Dropped}
	for _, ev := range t.Events {
		if ev.Runtime {
			continue
		}
		ev.WallNS = 0
		ev.WallDurNS = 0
		out.Events = append(out.Events, ev)
	}
	return out
}

// JSON returns the indented JSON form with a trailing newline — the
// byte-comparison form.
func (t *Trace) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// chromeEvent is one entry of the Chrome trace-event format's
// traceEvents array (the "JSON Array Format with metadata" shape that
// Perfetto's legacy importer and chrome://tracing both accept).
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome writes the trace in Chrome trace-event JSON. Events land
// as complete ("X") slices: timestamps prefer the wall stamps when a
// wall clock was injected and fall back to virtual time; unit-scoped
// events get one timeline row (tid) per unit, driver events row 0.
func (t *Trace) WriteChrome(w io.Writer) error {
	out := chromeTrace{DisplayTimeUnit: "ms"}
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", PID: 1,
		Args: map[string]string{"name": "geoblock " + t.Root.Trace.String()},
	})
	for _, ev := range t.Events {
		ts, dur := ev.WallNS, ev.WallDurNS
		if ts == 0 && dur == 0 {
			ts, dur = ev.VirtNS, ev.VirtDurNS
		}
		ce := chromeEvent{
			Name: ev.Name,
			Cat:  "det",
			Ph:   "X",
			TS:   float64(ts) / 1e3,
			Dur:  float64(dur) / 1e3,
			PID:  1,
		}
		if ev.Runtime {
			ce.Cat = "runtime"
		}
		if ev.Unit >= 0 {
			ce.TID = ev.Unit + 1
		}
		args := map[string]string{
			"trace": ev.Trace.String(),
			"span":  ev.Span.String(),
		}
		if ev.Parent != 0 {
			args["parent"] = ev.Parent.String()
		}
		if ev.Phase != "" {
			args["phase"] = ev.Phase
		}
		if ev.Country != "" {
			args["country"] = ev.Country
		}
		if ev.Outcome != "" {
			args["outcome"] = ev.Outcome
		}
		if ev.Unit >= 0 {
			args["unit"] = strconv.Itoa(ev.Unit)
		}
		for _, a := range ev.Attrs {
			args[a.K] = a.V
		}
		ce.Args = args
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	if t.Dropped > 0 {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "trace_dropped_events", Ph: "M", PID: 1,
			Args: map[string]string{"dropped": strconv.FormatInt(t.Dropped, 10)},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteFile writes the trace to path — Chrome JSON for ".json" paths
// (the -trace flag's format), indented raw JSON otherwise. The write
// is atomic: temp file in the same directory, then rename.
func (t *Trace) WriteFile(path string) error {
	var b strings.Builder
	if strings.HasSuffix(path, ".json") {
		if err := t.WriteChrome(&b); err != nil {
			return err
		}
	} else {
		data, err := t.JSON()
		if err != nil {
			return err
		}
		b.Write(data)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	_, err = io.WriteString(tmp, b.String())
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Chmod(tmp.Name(), 0o644)
	}
	if err == nil {
		err = os.Rename(tmp.Name(), path)
	}
	if err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("trace: writing %s: %w", path, err)
	}
	return nil
}
