// The Tracer: the process-wide event store behind the staging
// Buffers, plus the flight recorder — a bounded ring of the most
// recent events (all classes) that dumps itself when something dies.
package trace

import (
	"fmt"
	"io"
	"sync"

	"geoblock/internal/telemetry"
)

// DefaultLimit bounds how many events a Tracer retains. Appends past
// the limit are counted (Dropped) rather than kept, and the cap is
// applied at the canonical merge point, so which events survive is as
// deterministic as the stream itself.
const DefaultLimit = 1 << 18

// DefaultFlightSize is the flight recorder's ring capacity.
const DefaultFlightSize = 256

// Tracer collects a run's events. Driver-side code records into it
// directly (those call sites are single-goroutine or canonically
// serialized); unit-scoped events arrive in batches via Append from
// the scheduler's emitter. A nil *Tracer no-ops everywhere, so the
// engine's hot path pays one pointer test when tracing is off.
type Tracer struct {
	// root, clock, and wall are fixed before the tracer is shared (the
	// With* builders run at construction sites); they sit above mu,
	// outside the guarded set.
	root  SpanCtx
	clock telemetry.Clock
	wall  telemetry.Clock

	mu      sync.Mutex
	events  []Event
	dropped int64
	limit   int
	ring    []Event // flight recorder: last DefaultFlightSize events
	ringPos int
	ringLen int
	flight  io.Writer
	dumps   int
}

// New builds a tracer rooted at ctx, on a virtual clock, with no wall
// clock and no flight sink. Chain With* to configure before sharing.
func New(root SpanCtx) *Tracer {
	return &Tracer{
		root:  root,
		clock: telemetry.NewVirtual(),
		limit: DefaultLimit,
		ring:  make([]Event, DefaultFlightSize),
	}
}

// WithClock sets the tracer's primary (virtual-time) clock.
func (t *Tracer) WithClock(c telemetry.Clock) *Tracer {
	if t != nil && c != nil {
		t.clock = c
	}
	return t
}

// WithWall sets the wall clock for WallNS stamps (the CLIs pass
// telemetry.Wall{}; tests pass nothing and wall fields stay zero).
func (t *Tracer) WithWall(c telemetry.Clock) *Tracer {
	if t != nil {
		t.wall = c
	}
	return t
}

// WithFlightSink sets where Trigger dumps the flight recorder ring.
func (t *Tracer) WithFlightSink(w io.Writer) *Tracer {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.flight = w
	t.mu.Unlock()
	return t
}

// WithLimit overrides the retained-event cap (tests shrink it).
func (t *Tracer) WithLimit(n int) *Tracer {
	if t == nil || n <= 0 {
		return t
	}
	t.mu.Lock()
	t.limit = n
	t.mu.Unlock()
	return t
}

// Root returns the tracer's root context (zero for a nil tracer, which
// downstream code reads as "tracing off").
func (t *Tracer) Root() SpanCtx {
	if t == nil {
		return SpanCtx{}
	}
	return t.root
}

// WallClock returns the injected wall clock, nil when absent — the
// engine threads it to unit buffers via Config.TraceWall.
func (t *Tracer) WallClock() telemetry.Clock {
	if t == nil {
		return nil
	}
	return t.wall
}

// Now reads both clocks: virtual nanoseconds from the primary clock
// and wall nanoseconds from the wall clock (0 without one).
func (t *Tracer) Now() (virtNS, wallNS int64) {
	if t == nil {
		return 0, 0
	}
	virtNS = t.clock.Now().UnixNano()
	if t.wall != nil {
		wallNS = t.wall.Now().UnixNano()
	}
	return virtNS, wallNS
}

// Record appends one event, filling its trace ID from the root when
// the caller left it zero. Safe for concurrent use.
func (t *Tracer) Record(ev Event) {
	if t == nil {
		return
	}
	if ev.Trace == 0 {
		ev.Trace = t.root.Trace
	}
	t.mu.Lock()
	t.addLocked(ev)
	t.mu.Unlock()
}

// Append merges a unit buffer's events in order. The engine calls this
// at the canonical emission point only, which is what makes the stored
// order (and, with the limit, the drop set) schedule-independent.
func (t *Tracer) Append(evs []Event) {
	if t == nil || len(evs) == 0 {
		return
	}
	t.mu.Lock()
	for _, ev := range evs {
		t.addLocked(ev)
	}
	t.mu.Unlock()
}

// addLocked stores one event under mu: into the main buffer up to the
// limit, and into the flight ring always.
func (t *Tracer) addLocked(ev Event) {
	if len(t.events) < t.limit {
		t.events = append(t.events, ev)
	} else {
		t.dropped++
	}
	t.ring[t.ringPos] = ev
	t.ringPos = (t.ringPos + 1) % len(t.ring)
	if t.ringLen < len(t.ring) {
		t.ringLen++
	}
}

// Dropped reports how many events fell past the limit.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// FlightDumps reports how many flight-recorder dumps have been
// written (tests assert a seeded Outage produced exactly one).
func (t *Tracer) FlightDumps() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dumps
}

// Trigger dumps the flight recorder to the configured sink — the
// auto-dump path for Outages and worker deaths. Without a sink it is
// a no-op (deterministic test runs trace without dumping).
func (t *Tracer) Trigger(reason string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.flight == nil {
		return
	}
	t.dumpLocked(t.flight, reason)
}

// DumpFlight writes the ring to w regardless of the configured sink —
// the crash path, where the caller holds the writer.
func (t *Tracer) DumpFlight(w io.Writer, reason string) {
	if t == nil || w == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.dumpLocked(w, reason)
}

func (t *Tracer) dumpLocked(w io.Writer, reason string) {
	t.dumps++
	fmt.Fprintf(w, "== trace flight recorder: %s ==\n", reason)
	fmt.Fprintf(w, "trace=%s events=%d dropped=%d\n", t.root.Trace, len(t.events), t.dropped)
	// Oldest first: with a full ring the write position is the oldest
	// entry.
	start := 0
	if t.ringLen == len(t.ring) {
		start = t.ringPos
	}
	for i := 0; i < t.ringLen; i++ {
		ev := t.ring[(start+i)%len(t.ring)]
		fmt.Fprintf(w, "[-%03d] %s", t.ringLen-i, ev.Name)
		if ev.Phase != "" {
			fmt.Fprintf(w, " phase=%s", ev.Phase)
		}
		if ev.Unit >= 0 {
			fmt.Fprintf(w, " unit=%d", ev.Unit)
		}
		if ev.Country != "" {
			fmt.Fprintf(w, " country=%s", ev.Country)
		}
		if ev.Outcome != "" {
			fmt.Fprintf(w, " outcome=%s", ev.Outcome)
		}
		if ev.Runtime {
			fmt.Fprint(w, " (runtime)")
		}
		fmt.Fprintf(w, " span=%s wall=%dns\n", ev.Span, ev.WallNS)
	}
	fmt.Fprint(w, "== end flight dump ==\n")
}

// CrashDump is the process-death hook: deferred at the top of a CLI
// main, it dumps the flight recorder to w when the goroutine panics,
// then re-panics so the crash (and its stack) proceeds unchanged.
func CrashDump(t *Tracer, w io.Writer) {
	if r := recover(); r != nil {
		t.DumpFlight(w, fmt.Sprintf("panic: %v", r))
		panic(r)
	}
}

// Snapshot exports the tracer's current state. Safe to call while
// recording continues; the snapshot copies the event slice.
func (t *Tracer) Snapshot() *Trace {
	if t == nil {
		return &Trace{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := &Trace{Root: t.root, Dropped: t.dropped}
	out.Events = append([]Event(nil), t.events...)
	return out
}
