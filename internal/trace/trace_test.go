package trace

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"geoblock/internal/telemetry"
)

func TestRootAndChildDerivationIsPure(t *testing.T) {
	a, b := Root(11), Root(11)
	if a != b {
		t.Fatalf("Root(11) not stable: %v vs %v", a, b)
	}
	if !a.Valid() {
		t.Fatalf("Root(11) invalid: %v", a)
	}
	if Root(12) == a {
		t.Fatalf("different seeds derived the same root")
	}
	c1, c2 := a.Child("scan/initial", 0), a.Child("scan/initial", 0)
	if c1 != c2 {
		t.Fatalf("Child not stable: %v vs %v", c1, c2)
	}
	if c1.Trace != a.Trace {
		t.Fatalf("child switched traces: %v", c1)
	}
	if c1.Span == a.Span {
		t.Fatalf("child span equals parent span")
	}
	if a.Child("scan/initial", 1) == c1 || a.Child("scan/other", 0) == c1 {
		t.Fatalf("distinct coordinates derived the same child span")
	}
	if (SpanCtx{}).Child("x", 0).Valid() {
		t.Fatalf("zero ctx derived a valid child")
	}
}

func TestBufferNilSafetyAndFill(t *testing.T) {
	var nb *Buffer
	nb.Record(Event{Name: "x"})
	if nb.Events() != nil || nb.Ctx().Valid() || nb.Wall() != 0 || nb.Parent() != 0 {
		t.Fatalf("nil buffer not a no-op")
	}

	root := Root(7)
	unit := root.Child("unit", 3)
	b := NewBuffer(unit, root.Span, nil)
	b.Record(Event{Span: unit.Child("fetch", 0).Span, Name: "fetch", Unit: 3})
	evs := b.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d events", len(evs))
	}
	if evs[0].Trace != root.Trace {
		t.Fatalf("trace not filled from ctx: %v", evs[0].Trace)
	}
	if evs[0].Parent != unit.Span {
		t.Fatalf("parent not filled from ctx: %v", evs[0].Parent)
	}
}

func TestTracerRecordAppendAndLimit(t *testing.T) {
	var nt *Tracer
	nt.Record(Event{Name: "x"})
	nt.Append([]Event{{Name: "y"}})
	nt.Trigger("nothing")
	if nt.Snapshot() == nil || nt.Dropped() != 0 || nt.Root().Valid() {
		t.Fatalf("nil tracer not a no-op")
	}

	tr := New(Root(11)).WithLimit(3)
	tr.Record(NewEvent(tr.Root(), "a"))
	tr.Append([]Event{{Name: "b", Unit: 0}, {Name: "c", Unit: 1}, {Name: "d", Unit: 2}})
	snap := tr.Snapshot()
	if len(snap.Events) != 3 {
		t.Fatalf("limit not applied: %d events", len(snap.Events))
	}
	if snap.Dropped != 1 || tr.Dropped() != 1 {
		t.Fatalf("dropped = %d / %d, want 1", snap.Dropped, tr.Dropped())
	}
	if snap.Events[0].Name != "a" || snap.Events[2].Name != "c" {
		t.Fatalf("order not preserved: %+v", snap.Events)
	}
	if snap.Events[0].Trace != tr.Root().Trace {
		t.Fatalf("Record did not fill the trace ID")
	}
}

func TestTracerClocks(t *testing.T) {
	v := telemetry.NewVirtual()
	v.Advance(5 * time.Millisecond)
	tr := New(Root(1)).WithClock(v).WithWall(telemetry.NewVirtual())
	virt, wall := tr.Now()
	if virt != 5*time.Millisecond.Nanoseconds() {
		t.Fatalf("virt = %d", virt)
	}
	if wall != 0 {
		t.Fatalf("wall = %d, want epoch", wall)
	}
	if tr.WallClock() == nil {
		t.Fatalf("wall clock not retained")
	}
}

func TestFlightRecorderDump(t *testing.T) {
	var sink bytes.Buffer
	tr := New(Root(11)).WithFlightSink(&sink)
	// Overflow the ring so the dump window slides.
	for i := 0; i < DefaultFlightSize+10; i++ {
		tr.Record(Event{Name: "fetch", Unit: i, Country: "IR", Outcome: "ok"})
	}
	tr.Trigger("seeded outage")
	if tr.FlightDumps() != 1 {
		t.Fatalf("dumps = %d, want 1", tr.FlightDumps())
	}
	out := sink.String()
	if !strings.Contains(out, "trace flight recorder: seeded outage") {
		t.Fatalf("dump missing header:\n%s", out)
	}
	if !strings.Contains(out, "unit=10 country=IR") {
		t.Fatalf("dump missing oldest surviving event (unit 10):\n%s", out)
	}
	if strings.Contains(out, "unit=9 ") {
		t.Fatalf("dump kept an event the ring should have evicted:\n%s", out)
	}
	if !strings.Contains(out, "== end flight dump ==") {
		t.Fatalf("dump missing trailer:\n%s", out)
	}
}

func TestCrashDumpRepanics(t *testing.T) {
	var sink bytes.Buffer
	tr := New(Root(3))
	tr.Record(Event{Name: "unit", Unit: 0})
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Errorf("CrashDump swallowed the panic")
			}
		}()
		defer CrashDump(tr, &sink)
		panic("boom")
	}()
	if !strings.Contains(sink.String(), "panic: boom") {
		t.Fatalf("crash dump missing reason:\n%s", sink.String())
	}
	if tr.FlightDumps() != 1 {
		t.Fatalf("dumps = %d, want 1", tr.FlightDumps())
	}
}

func TestDeterministicViewStripsRuntimeAndWall(t *testing.T) {
	tr := New(Root(11))
	tr.Record(Event{Name: "unit", Unit: 0, WallNS: 123, WallDurNS: 45, VirtNS: 7})
	tr.Record(Event{Name: "lease", Unit: -1, Runtime: true})
	det := tr.Snapshot().Deterministic()
	if len(det.Events) != 1 {
		t.Fatalf("runtime event survived: %+v", det.Events)
	}
	ev := det.Events[0]
	if ev.WallNS != 0 || ev.WallDurNS != 0 {
		t.Fatalf("wall stamps survived: %+v", ev)
	}
	if ev.VirtNS != 7 {
		t.Fatalf("virtual stamp lost: %+v", ev)
	}
	a, err := det.JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := tr.Snapshot().Deterministic().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("deterministic JSON not stable")
	}
}

// TestChromeExportSchema pins the -trace output to the Chrome
// trace-event JSON shape Perfetto loads: a traceEvents array whose
// entries all carry name/ph/pid/tid, with "X" events timestamped.
func TestChromeExportSchema(t *testing.T) {
	tr := New(Root(11)).WithWall(telemetry.NewVirtual())
	tr.Record(Event{Name: "scan", Unit: -1, Phase: "initial", Outcome: "ok", WallNS: 2000, WallDurNS: 1000})
	tr.Record(Event{Name: "fetch", Unit: 4, Country: "CN", Outcome: "timeout",
		Attrs: []Attr{{K: "status", V: "0"}}})
	tr.Record(Event{Name: "lease", Unit: -1, Runtime: true})

	var buf bytes.Buffer
	if err := tr.Snapshot().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string             `json:"name"`
			Cat  string             `json:"cat"`
			Ph   string             `json:"ph"`
			TS   *float64           `json:"ts"`
			Dur  *float64           `json:"dur"`
			PID  *int               `json:"pid"`
			TID  *int               `json:"tid"`
			Args map[string]*string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) != 4 { // metadata + 3 events
		t.Fatalf("got %d traceEvents", len(doc.TraceEvents))
	}
	sawX := 0
	for i, ev := range doc.TraceEvents {
		if ev.Name == "" || ev.Ph == "" || ev.PID == nil || ev.TID == nil {
			t.Fatalf("event %d missing required fields: %+v", i, ev)
		}
		if ev.Ph != "X" {
			continue
		}
		sawX++
		if ev.TS == nil || ev.Cat == "" {
			t.Fatalf("X event %d missing ts/cat: %+v", i, ev)
		}
		if ev.Args["trace"] == nil || ev.Args["span"] == nil {
			t.Fatalf("X event %d missing trace identity args: %+v", i, ev)
		}
	}
	if sawX != 3 {
		t.Fatalf("got %d X events, want 3", sawX)
	}
	// The scan event's wall stamps land as microseconds.
	scan := doc.TraceEvents[1]
	if scan.Name != "scan" || *scan.TS != 2.0 || *scan.Dur != 1.0 {
		t.Fatalf("scan event mistimed: %+v", scan)
	}
	// The fetch event rides its unit's timeline row and keeps attrs.
	fetch := doc.TraceEvents[2]
	if *fetch.TID != 5 || fetch.Args["status"] == nil || *fetch.Args["country"] != "CN" {
		t.Fatalf("fetch event misplaced: %+v", fetch)
	}
	if doc.TraceEvents[3].Cat != "runtime" {
		t.Fatalf("runtime event not categorized: %+v", doc.TraceEvents[3])
	}
}

func TestWriteFileFormats(t *testing.T) {
	dir := t.TempDir()
	tr := New(Root(11))
	tr.Record(Event{Name: "unit", Unit: 0})

	chrome := filepath.Join(dir, "out.json")
	if err := tr.Snapshot().WriteFile(chrome); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(chrome)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "traceEvents") {
		t.Fatalf(".json file is not chrome format:\n%s", b)
	}

	raw := filepath.Join(dir, "out.trace")
	if err := tr.Snapshot().WriteFile(raw); err != nil {
		t.Fatal(err)
	}
	b, err = os.ReadFile(raw)
	if err != nil {
		t.Fatal(err)
	}
	var tt Trace
	if err := json.Unmarshal(b, &tt); err != nil {
		t.Fatalf("raw export did not round-trip: %v", err)
	}
	if len(tt.Events) != 1 || tt.Root != tr.Root() {
		t.Fatalf("raw export lost content: %+v", tt)
	}
}
