// Package trace is the engine's wide-event tracing layer: the
// per-event companion to internal/telemetry's aggregates. Where the
// telemetry span tree answers "how long did phase X take in total",
// a trace answers "what happened to unit 17" — each record is one
// wide event carrying the trace/span identity, the phase, unit,
// country, and outcome it describes, and dual virtual + wall
// timestamps read through the telemetry Clock seam.
//
// Determinism is inherited from the engine's contract, not bolted on.
// Trace and span IDs are pure functions of the scan inputs (world
// seed, phase key, unit sequence — derived with the same Mix64 chains
// the engine uses for session slots), unit-scoped events are staged in
// per-shard Buffers and merged at the scheduler's canonical emission
// point, and every event is classed deterministic or runtime exactly
// like a metric. The Deterministic view of a trace — runtime events
// stripped, wall stamps zeroed — is therefore byte-identical at any
// Concurrency and across any number of fabric workers, which the
// acceptance matrix asserts.
//
// Wall time never enters this package directly: callers inject a
// telemetry.Clock (telemetry.Wall in the CLIs, nothing in tests), so
// geolint's determinism analyzer holds here exactly as it does in the
// engine.
package trace

import (
	"strconv"

	"geoblock/internal/stats"
	"geoblock/internal/telemetry"
)

// ID is a trace or span identifier: 64 deterministic bits derived from
// the scan inputs, never random.
type ID uint64

// String renders the ID the way the Chrome export and flight dumps
// print it.
func (id ID) String() string { return "0x" + strconv.FormatUint(uint64(id), 16) }

// SpanCtx is the propagated trace context: which trace an event
// belongs to and which span it nests under. The zero value means "not
// tracing" — every consumer treats it as the off switch.
type SpanCtx struct {
	Trace ID `json:"trace"`
	Span  ID `json:"span"`
}

// Valid reports whether the context carries a real identity.
func (c SpanCtx) Valid() bool { return c.Trace != 0 && c.Span != 0 }

// Child derives a child context: same trace, span ID mixed from the
// parent span, the edge name, and an ordinal. The derivation is a pure
// function, so any process that knows the parent and the coordinates
// derives the identical child — the property that lets a fabric worker
// and an in-process run stamp byte-identical events.
func (c SpanCtx) Child(name string, k int) SpanCtx {
	if !c.Valid() {
		return SpanCtx{}
	}
	h := stats.Mix64(uint64(c.Span) ^ fnv(name))
	h = stats.Mix64(h ^ (uint64(k)+1)*0x9e3779b97f4a7c15)
	return SpanCtx{Trace: c.Trace, Span: ID(h)}
}

// Root derives a run's root context from the world seed. Trace and
// span start out equal: the root span is the trace.
func Root(seed uint64) SpanCtx {
	id := ID(stats.Mix64(seed ^ fnv("geoblock-trace")))
	if id == 0 {
		id = 1 // the zero ID is the off switch; never hand it out
	}
	return SpanCtx{Trace: id, Span: id}
}

// Attr is one key=value annotation on an event. Values are strings so
// events encode without float formatting ambiguity; format numbers
// with strconv at the call site (and only when tracing is enabled).
type Attr struct {
	K string `json:"k"`
	V string `json:"v"`
}

// Event is one wide record. Events are complete-span style: recorded
// once, at the end of the thing they describe, carrying its outcome.
//
// Two timestamp pairs coexist, both read through the Clock seam.
// VirtNS/VirtDurNS come from the injected (usually virtual) clock and
// belong to the deterministic view; unit-scoped events read a fresh
// epoch-pinned virtual clock so their stamps cannot depend on which
// process or worker ran the unit. WallNS/WallDurNS are real time when
// a wall clock was injected — runtime-class information, zeroed by
// Trace.Deterministic, used by the Chrome export to lay out the
// timeline.
type Event struct {
	Trace  ID `json:"trace"`
	Span   ID `json:"span"`
	Parent ID `json:"parent,omitempty"`
	// Name is the event class: "fetch", "session.open", "unit",
	// "sink.emit", "scan", "outage", "pipeline/scan", ...
	Name string `json:"name"`
	// Phase is the scan phase (or journal key) the event belongs to.
	Phase string `json:"phase,omitempty"`
	// Unit is the canonical shard sequence, -1 for events above the
	// unit level.
	Unit    int    `json:"unit"`
	Country string `json:"country,omitempty"`
	// Outcome is the event's result: "ok", an ErrCode or OutageReason
	// label, or an error class.
	Outcome string `json:"outcome,omitempty"`
	// Runtime marks events whose content or ordering depends on
	// scheduling (lease traffic, slow-lookup exemplars, steals); they
	// are stripped from the deterministic view exactly like
	// runtime-class metrics.
	Runtime   bool   `json:"runtime,omitempty"`
	VirtNS    int64  `json:"virt_ns,omitempty"`
	VirtDurNS int64  `json:"virt_dur_ns,omitempty"`
	WallNS    int64  `json:"wall_ns,omitempty"`
	WallDurNS int64  `json:"wall_dur_ns,omitempty"`
	Attrs     []Attr `json:"attrs,omitempty"`
}

// NewEvent starts an event under ctx with the unit field parked at -1.
// The caller fills coordinates and outcome, then hands it to a Buffer
// or Tracer.
func NewEvent(ctx SpanCtx, name string) Event {
	return Event{Trace: ctx.Trace, Span: ctx.Span, Name: name, Unit: -1}
}

// Buffer stages one unit's events without any locking: each scheduler
// shard (or fabric work unit) owns exactly one Buffer for its
// lifetime, so recording is plain appends — the lock-cheap
// per-goroutine path. The scheduler's emitter (or the fabric's
// Assembly) hands the finished buffer to the Tracer at the canonical
// emission point, which is what keeps the merged stream's order
// independent of scheduling.
//
// A nil *Buffer is a valid no-op receiver, so instrumentation sites
// stay straight-line.
type Buffer struct {
	ctx    SpanCtx
	parent ID
	wall   telemetry.Clock
	events []Event
}

// NewBuffer opens a unit's staging buffer. ctx is the unit's own span
// context, parent the span it nests under (the scan span), and wall an
// optional wall clock for runtime-class stamps — nil keeps wall fields
// zero, which every deterministic run does.
func NewBuffer(ctx SpanCtx, parent ID, wall telemetry.Clock) *Buffer {
	return &Buffer{ctx: ctx, parent: parent, wall: wall}
}

// Ctx returns the buffer's unit context (zero for a nil buffer).
func (b *Buffer) Ctx() SpanCtx {
	if b == nil {
		return SpanCtx{}
	}
	return b.ctx
}

// Parent returns the span the buffer's unit nests under.
func (b *Buffer) Parent() ID {
	if b == nil {
		return 0
	}
	return b.parent
}

// Wall reads the buffer's wall clock in nanoseconds, 0 without one.
func (b *Buffer) Wall() int64 {
	if b == nil || b.wall == nil {
		return 0
	}
	return b.wall.Now().UnixNano()
}

// Record appends one event, filling its trace ID and parent from the
// buffer's context when the caller left them zero.
func (b *Buffer) Record(ev Event) {
	if b == nil {
		return
	}
	if ev.Trace == 0 {
		ev.Trace = b.ctx.Trace
	}
	if ev.Parent == 0 {
		ev.Parent = b.ctx.Span
	}
	b.events = append(b.events, ev)
}

// Events returns the staged events (nil for a nil buffer). The slice
// is the buffer's own; callers take ownership after the unit is done.
func (b *Buffer) Events() []Event {
	if b == nil {
		return nil
	}
	return b.events
}

func fnv(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
