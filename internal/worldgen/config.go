package worldgen

import "geoblock/internal/category"

// Config holds every calibration knob of the world generator. The
// defaults reproduce the *shape* of the paper's aggregates (who blocks
// whom, at roughly what rate); Scale shrinks the populations uniformly
// for fast tests and benchmarks.
type Config struct {
	Seed uint64

	// Top10KSize is the size of the popular-site population (paper:
	// 10,000). Top1MRanks is the virtual rank space of the long tail
	// (paper: 1,000,000).
	Top10KSize int
	Top1MRanks int

	// Scale in (0, 1] multiplies all population sizes. 1.0 is paper
	// scale.
	Scale float64

	// Top10KProviderCounts is how many Top-10K domains each CDN fronts
	// (§4.2.1 reports Cloudflare 1,394, CloudFront 364, AppEngine 108).
	Top10KProviderCounts map[Provider]int

	// Top1MProviderCounts is the CDN customer population in the Top 1M
	// (§5.1.1: Cloudflare 109,801; CloudFront 10,856; Incapsula 5,570;
	// Akamai 10,727; AppEngine 16,455).
	Top1MProviderCounts map[Provider]int

	// Top1MDualProvider is how many Top-1M customers sit behind two
	// services at once (paper: 1,408).
	Top1MDualProvider int

	// GAEHostedRateTop10K / Top1M: the fraction of App Engine-detected
	// domains actually subject to the platform block (observed rates:
	// 40.7% in the Top 10K, 16.8% in the Top 1M).
	GAEHostedRateTop10K float64
	GAEHostedRateTop1M  float64

	// CFGeoblockRate / CloudFrontGeoblockRate: fraction of customers
	// with an active country-block rule (§4.2.1: 3.1% / 1.4%; §5.2.1:
	// 2.6% / 3.1%).
	CFGeoblockRate         float64
	CloudFrontGeoblockRate float64

	// AkamaiGeoblockRate / IncapsulaGeoblockRate: fraction of customers
	// of the non-explicit CDNs that geoblock (§5.2.2 confirms 14/~500
	// Akamai and 17/~280 Incapsula sampled domains).
	AkamaiGeoblockRate    float64
	IncapsulaGeoblockRate float64

	// SanctionedBlockProb is the probability that a geoblocking
	// Cloudflare/Akamai/Incapsula customer includes the whole
	// sanctioned set (IR, SY, SD, CU) in its rule.
	SanctionedBlockProb float64
	// HighRiskBlockProb is the per-country probability of including a
	// given high-risk country (CN, RU, NG, …).
	HighRiskBlockProb float64
	// RandomBlockMean is the mean number of additional arbitrary
	// countries included.
	RandomBlockMean float64
	// CloudFrontBlockSetSize is the mean blocked-set size for
	// CloudFront customers, whose observed rules are wide market-
	// segmentation sets (~33 countries per domain in Table 6).
	CloudFrontBlockSetSize int

	// Challenge deployment rates for Cloudflare customers.
	CFCaptchaRate float64
	CFJSRate      float64
	// DistilRate is the fraction of domains (across providers) fronted
	// by Distil's bot defense.
	DistilRate float64
	// BaiduCaptchaRate is the fraction of Baidu customers challenging
	// foreign visitors.
	BaiduCaptchaRate float64

	// NginxGeoblockRate / VarnishGeoblockRate: origin-side country
	// blocks by unfronted sites.
	NginxGeoblockRate   float64
	VarnishGeoblockRate float64
	// SoastaBlockRate: SOASTA-fronted sites with ambiguous block pages.
	SoastaBlockRate float64

	// AkamaiBotSensitivityRate is the fraction of Akamai customers
	// whose bot defense denies crawler-like clients everywhere. The
	// paper's §3.1 numbers (286 false-positive pairs across 16 VPSes,
	// i.e. ~18 of 4,111 Akamai domains, "nearly identical across
	// countries") imply roughly 0.45% of customers — enough to make
	// ~30% of observed Akamai 403s false positives.
	AkamaiBotSensitivityRate float64

	// ResidentialChallengeRate is the small per-request probability of
	// IP-reputation challenges against residential clients on
	// anti-abuse-heavy domains.
	ResidentialChallengeRate float64

	// Proxy-blacklist blocking: the fraction of deployments (per edge
	// type) that deny every address on the residential-proxy/VPN
	// blacklists, everywhere. Calibrated against Table 2's recall: the
	// blocked-everywhere domains are the samples the length heuristic
	// misses (Akamai 43.7%, nginx 57.4%, Distil 30.6%).
	ProxyBlockAkamai    float64
	ProxyBlockIncapsula float64
	ProxyBlockNginx     float64
	ProxyBlockDistil    float64

	// ReputationProneRate is the fraction of Akamai/Incapsula customers
	// whose edge denies low-reputation source addresses at all; prone
	// domains draw a sensitivity in [ReputationMin, ReputationMin +
	// ReputationSpan]. Calibrated against §3.1: ~11% of NS-detected
	// CDN customers returned 403 from an Iranian VPS vs ~1% from a U.S.
	// control.
	ReputationProneRate float64
	ReputationMin       float64
	ReputationSpan      float64

	// CategoryGeoblockBias multiplies a category's geoblock propensity
	// (Shopping and market-segmented goods categories lead Table 4/8).
	CategoryGeoblockBias map[category.Category]float64

	// AirbnbTLDCount is how many airbnb.<cc> cameo domains exist in the
	// Top 10K.
	AirbnbTLDCount int

	// UnreachableRate / LuminatiRestrictedRate / RedirectLoopRate are
	// the population-level pathologies of §4.1.1 (286 unreachable and
	// 13 proxy-refused of 10,000).
	UnreachableRate        float64
	LuminatiRestrictedRate float64
	RedirectLoopRate       float64

	// TimeoutGeoblockRate is the fraction of origin-hosted sites that
	// geoblock by silently dropping connections (§7.3 future work).
	TimeoutGeoblockRate float64

	// AppLayerRate is the fraction of Shopping/Travel-like sites that
	// practice application-layer geo-discrimination: removed features
	// and per-country price markups (§7.3 future work).
	AppLayerRate float64

	// JunkProneRate is the fraction of sites with flaky backends that
	// intermittently serve shared junk pages (maintenance pages, default
	// vhost pages); JunkRateMax bounds their per-request junk rate.
	JunkProneRate float64
	JunkRateMax   float64

	// CensorRate is the probability a Citizen-Lab-listed domain is
	// censored in a censoring country; NonListedCensorRate the (small)
	// probability for unlisted popular domains.
	CensorRate          float64
	NonListedCensorRate float64

	// CitizenLabExtra is how many list entries exist outside the
	// measured populations; CitizenLabOverlapRate the probability that
	// a Top-10K domain is on the list.
	CitizenLabExtra       int
	CitizenLabOverlapRate float64
}

// DefaultConfig returns the paper-scale calibration.
func DefaultConfig() Config {
	return Config{
		Seed:       403,
		Top10KSize: 10000,
		Top1MRanks: 1000000,
		Scale:      1.0,
		Top10KProviderCounts: map[Provider]int{
			Cloudflare: 1394,
			Akamai:     750,
			CloudFront: 364,
			AppEngine:  108,
			Incapsula:  90,
			Baidu:      25,
			Soasta:     20,
		},
		Top1MProviderCounts: map[Provider]int{
			Cloudflare: 109801,
			CloudFront: 10856,
			Akamai:     10727,
			Incapsula:  5570,
			AppEngine:  16455,
		},
		Top1MDualProvider:   1408,
		GAEHostedRateTop10K: 0.41,
		GAEHostedRateTop1M:  0.168,

		CFGeoblockRate:         0.031,
		CloudFrontGeoblockRate: 0.014,
		AkamaiGeoblockRate:     0.028,
		IncapsulaGeoblockRate:  0.06,

		SanctionedBlockProb:    0.47,
		HighRiskBlockProb:      0.17,
		RandomBlockMean:        3.0,
		CloudFrontBlockSetSize: 33,

		CFCaptchaRate:    0.050,
		CFJSRate:         0.040,
		DistilRate:       0.004,
		BaiduCaptchaRate: 0.60,

		NginxGeoblockRate:   0.020,
		VarnishGeoblockRate: 0.002,
		SoastaBlockRate:     0.10,

		AkamaiBotSensitivityRate: 0.0045,
		ResidentialChallengeRate: 0.002,

		ProxyBlockAkamai:    0.037,
		ProxyBlockIncapsula: 0.060,
		ProxyBlockNginx:     0.006,
		ProxyBlockDistil:    0.70,

		ReputationProneRate: 0.35,
		ReputationMin:       0.20,
		ReputationSpan:      0.50,

		CategoryGeoblockBias: map[category.Category]float64{
			category.Shopping:         2.8,
			category.Advertising:      4.0,
			category.JobSearch:        3.0,
			category.Travel:           2.4,
			category.PersonalVehicles: 3.5,
			category.Auctions:         3.5,
			category.Newsgroups:       1.8,
			category.WebHosting:       1.5,
			category.Business:         1.2,
			category.Sports:           1.1,
			category.ChildEducation:   4.0,
			category.Reference:        0.8,
			category.Health:           0.8,
			category.NewsMedia:        0.7,
			category.Freeware:         0.7,
			category.InfoTech:         0.5,
			category.Games:            0.5,
			category.Entertainment:    0.4,
			category.Finance:          0.4,
			category.Education:        0.25,
		},

		AirbnbTLDCount: 14,

		UnreachableRate:        0.0286,
		LuminatiRestrictedRate: 0.0013,
		RedirectLoopRate:       0.004,

		TimeoutGeoblockRate: 0.004,
		AppLayerRate:        0.08,

		JunkProneRate: 0.35,
		JunkRateMax:   0.02,

		CensorRate:          0.55,
		NonListedCensorRate: 0.0034,

		CitizenLabExtra:       980,
		CitizenLabOverlapRate: 0.011,
	}
}

// TestConfig returns a small, fast world (roughly 1/10 scale) for unit
// and integration tests.
func TestConfig() Config {
	c := DefaultConfig()
	c.Scale = 0.1
	return c
}

// scaled applies cfg.Scale to a population count, keeping at least 1
// when the unscaled count is positive.
func (c *Config) scaled(n int) int {
	if n <= 0 {
		return 0
	}
	s := int(float64(n) * c.Scale)
	if s < 1 {
		s = 1
	}
	return s
}

// catBias looks up the category multiplier, defaulting to 1.
func (c *Config) catBias(cat category.Category) float64 {
	if b, ok := c.CategoryGeoblockBias[cat]; ok {
		return b
	}
	return 1.0
}

// Scaled exposes the scale-adjusted population count for external
// calibration checks (benchmarks, analysis).
func (c *Config) Scaled(n int) int { return c.scaled(n) }
