package worldgen

import (
	"geoblock/internal/blockpage"
	"geoblock/internal/category"
	"geoblock/internal/geo"
)

// Domain is one site of the simulated web, with everything the serving
// stack needs to answer a request and everything the ground-truth
// evaluation needs to score the pipeline.
type Domain struct {
	Name     string
	Rank     int // 1-based Alexa-style rank
	TLD      string
	Category category.Category

	// Providers is the serving chain, outermost first. Usually length
	// one; dual-provider domains (the paper's zales.com, fronted by both
	// Incapsula and Akamai) have two. The last entry that is not a CDN
	// is the origin server software.
	Providers []Provider

	// GAEHosted marks domains actually hosted on App Engine (platform-
	// blocked in sanctioned countries by Google itself, §4.2.1), as
	// opposed to domains that merely resolve into Google netblocks.
	GAEHosted bool

	// NSDetectable marks customers identifiable from their NS records —
	// the conservative discovery method of §3.1 that found only a
	// fraction of each CDN's customers.
	NSDetectable bool

	// Origin renders the site's real page.
	Origin *blockpage.OriginSite

	// GeoRules holds the owner's country-scoped access rules per
	// provider in the chain.
	GeoRules map[Provider]*GeoRule

	// BotSensitivity is the probability that a crawler-like client
	// (bare ZGrab/curl header sets, §3.1) is denied by the provider's
	// bot defense regardless of location.
	BotSensitivity float64

	// ResidentialChallengeRate is the per-request probability that even
	// a browser-like residential client is challenged (IP-reputation
	// noise on busy anti-abuse deployments).
	ResidentialChallengeRate float64

	// ReputationSensitivity is the domain's propensity to deny clients
	// from low-reputation address space via its Akamai/Incapsula edge —
	// the mechanism behind the paper's 707 Iran 403s (§3.1) and the 101
	// Akamai domains that showed a block page at least once but mostly
	// failed the consistency test (§5.2.2). The effective per-request
	// denial probability is this value scaled by the client country's
	// abuse-risk factor (and up-weighted for datacenter sources).
	ReputationSensitivity float64

	// DistilProtected routes the domain's bot defense through Distil
	// Networks' interstitial instead of the provider's own page.
	DistilProtected bool

	// BlocksProxies marks deployments that deny the entire residential-
	// proxy/VPN blacklist, in every country. Their block page shows on
	// every sample — the blocked-everywhere domains the paper's length
	// heuristic cannot see (Table 2's low Akamai/nginx/Distil recall)
	// and that §5.2.2 explicitly excludes from geoblocking.
	BlocksProxies bool

	// AirbnbStyle marks sites serving Airbnb's custom restriction page
	// for the sanctioned set (Iran, Syria, Crimea, North Korea).
	AirbnbStyle bool

	// Legal451 marks the rare sites that answer geographic legal
	// restrictions with RFC 7725's 451 status instead of a provider
	// block page — the paper saw exactly two such responses (§2.1).
	Legal451 bool

	// CensoredIn lists countries whose national filter blocks the
	// domain — the confound the pipeline must not misattribute.
	CensoredIn map[geo.CountryCode]bool

	// OnCitizenLab marks membership in the global Citizen Lab list;
	// such domains are excluded from probing (§3.3).
	OnCitizenLab bool

	// TimeoutBlock lists countries whose connections the site silently
	// drops — geoblocking by timeout, the detection problem §7.3 flags
	// as future work ("we also observed consistent timeouts for certain
	// websites in only some countries").
	TimeoutBlock map[geo.CountryCode]bool

	// AppLayer is the site's application-layer geo-discrimination
	// policy (nil for none): the §7.3 "much harder to measure"
	// phenomenon — features removed and prices raised for some
	// countries while the page itself loads fine.
	AppLayer *AppLayerPolicy

	// JunkRate is the per-request probability that the origin serves a
	// shared junk page instead of content (maintenance interstitials,
	// default vhost pages, SPA shells) — the 200-status noise that
	// dominates the length-outlier clusters (§4.1.3).
	JunkRate float64

	// RedirectHops is the number of same-site hops (http→https,
	// apex→www) before content; RedirectLoop marks the pathological
	// sites that exceed any sane redirect limit.
	RedirectHops int
	RedirectLoop bool

	// Unreachable marks domains that never successfully respond (286 of
	// the Top 10K, §4.1.1); LuminatiRestricted marks the ones the proxy
	// network itself refuses to fetch (X-Luminati-Error, 13 domains).
	Unreachable        bool
	LuminatiRestricted bool
}

// AppLayerPolicy describes application-layer geo-discrimination.
type AppLayerPolicy struct {
	// RestrictedIn lists countries that get the degraded page: commerce
	// features removed, a region notice inserted.
	RestrictedIn map[geo.CountryCode]bool
	// PriceMarkup maps countries to a price multiplier (1.0 elsewhere):
	// geographic price discrimination.
	PriceMarkup map[geo.CountryCode]float64
}

// TimeoutBlockedIn reports whether the site drops connections from loc.
func (d *Domain) TimeoutBlockedIn(loc geo.Location) bool {
	return d.TimeoutBlock[loc.Country]
}

// Hosting returns the origin server software at the end of the chain.
func (d *Domain) Hosting() Provider {
	for i := len(d.Providers) - 1; i >= 0; i-- {
		if !d.Providers[i].IsCDN() {
			return d.Providers[i]
		}
	}
	return OriginApache
}

// FrontedBy reports whether p appears anywhere in the serving chain.
func (d *Domain) FrontedBy(p Provider) bool {
	for _, q := range d.Providers {
		if q == p {
			return true
		}
	}
	return false
}

// GeoBlockedIn reports whether any provider in the chain hard-blocks a
// client at loc at time clock, and by which provider. Challenges do not
// count: the paper's headline metric is total denial of access.
func (d *Domain) GeoBlockedIn(loc geo.Location, clock int64) (Provider, bool) {
	for _, p := range d.Providers {
		if p == AppEngine && d.GAEHosted && sanctionedLocation(loc) {
			return AppEngine, true
		}
		if r, ok := d.GeoRules[p]; ok && r.Action == ActionBlock && r.Applies(loc, clock) {
			return p, true
		}
	}
	if d.AirbnbStyle && airbnbBlocked(loc) {
		return d.Providers[0], true
	}
	return "", false
}

// ExplicitGeoBlockedIn reports whether the denial at loc would present
// an explicit geoblock page (the five classes of §4.1.3) rather than an
// ambiguous one.
func (d *Domain) ExplicitGeoBlockedIn(loc geo.Location, clock int64) bool {
	p, ok := d.GeoBlockedIn(loc, clock)
	if !ok {
		return false
	}
	if d.AirbnbStyle && airbnbBlocked(loc) {
		return true
	}
	switch p {
	case Cloudflare, CloudFront, AppEngine, Baidu:
		return true
	}
	return false
}

// sanctionedLocation reports whether loc falls under the App Engine
// platform block: Cuba, Iran, Syria, Sudan, North Korea, and Crimea.
func sanctionedLocation(loc geo.Location) bool {
	switch loc.Country {
	case "CU", "IR", "SY", "SD", "KP":
		return true
	}
	return loc.Region == geo.RegionCrimea
}

// airbnbBlocked reports whether loc falls under Airbnb's stated policy:
// Crimea, Iran, Syria, and North Korea.
func airbnbBlocked(loc geo.Location) bool {
	switch loc.Country {
	case "IR", "SY", "KP":
		return true
	}
	return loc.Region == geo.RegionCrimea
}
