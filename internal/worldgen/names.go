package worldgen

import (
	"fmt"
	"strings"

	"geoblock/internal/stats"
)

// TLD weights loosely follow the real distribution among popular sites:
// .com dominates, a handful of generic TLDs follow, and a long tail of
// country-code TLDs covers the rest — in the paper, 70 of the 100
// geoblocked Top-10K sites were .com (Table 5).
var tldWeights = []struct {
	TLD string
	W   float64
}{
	{"com", 62}, {"net", 5}, {"org", 5}, {"io", 1.5}, {"co", 1},
	{"ru", 2.5}, {"de", 2.2}, {"jp", 2.0}, {"br", 1.8}, {"in", 1.8},
	{"uk", 1.6}, {"fr", 1.5}, {"it", 1.3}, {"cn", 1.3}, {"ir", 1.0},
	{"pl", 0.9}, {"es", 0.9}, {"nl", 0.8}, {"au", 0.8}, {"ca", 0.7},
	{"tr", 0.7}, {"ua", 0.6}, {"mx", 0.6}, {"kr", 0.6}, {"id", 0.6},
	{"za", 0.5}, {"sg", 0.4}, {"ar", 0.4}, {"se", 0.4}, {"ch", 0.3},
}

var nameAdjectives = strings.Fields(`
swift bright nova prime metro city daily global alpha pixel cedar delta
ember flux harbor iris juniper kite lumen meadow nimbus onyx quartz
river summit terra umber vertex willow zephyr atlas bravo cosmo drift
`)

var nameNouns = strings.Fields(`
market press cart media works trade hub labs store shop base port deck
line mart zone gear feed desk play path bank wire post dash mill forge
point grid nest vault crest field spark stack track bloom craft
`)

// nameGen mints unique, plausible domain names deterministically.
type nameGen struct {
	rng  *stats.RNG
	used map[string]bool
}

func newNameGen(rng *stats.RNG) *nameGen {
	return &nameGen{rng: rng, used: make(map[string]bool)}
}

// tld draws a TLD from the weighted distribution.
func (g *nameGen) tld() string {
	weights := make([]float64, len(tldWeights))
	for i, t := range tldWeights {
		weights[i] = t.W
	}
	return tldWeights[g.rng.WeightedChoice(weights)].TLD
}

// next mints a fresh unique name under the given TLD.
func (g *nameGen) next(tld string) string {
	for attempt := 0; ; attempt++ {
		adj := nameAdjectives[g.rng.Intn(len(nameAdjectives))]
		noun := nameNouns[g.rng.Intn(len(nameNouns))]
		name := adj + noun
		if attempt > 2 {
			name = fmt.Sprintf("%s%s%d", adj, noun, g.rng.Intn(1000))
		}
		full := name + "." + tld
		if !g.used[full] {
			g.used[full] = true
			return full
		}
	}
}

// reserve claims an exact name (for cameo domains); it reports whether
// the name was free.
func (g *nameGen) reserve(name string) bool {
	if g.used[name] {
		return false
	}
	g.used[name] = true
	return true
}

// tldOf extracts the final label of a domain name.
func tldOf(name string) string {
	i := strings.LastIndexByte(name, '.')
	if i < 0 {
		return ""
	}
	return name[i+1:]
}

// SyntheticRankName is the deterministic name scheme for lazily
// synthesized long-tail domains (rank beyond the materialized
// populations): the rank is embedded so the name is globally unique and
// invertible.
func SyntheticRankName(rank int, tld string) string {
	return fmt.Sprintf("r%d-site.%s", rank, tld)
}

// parseSyntheticRank inverts SyntheticRankName; ok is false for names
// not in the scheme.
func parseSyntheticRank(name string) (rank int, ok bool) {
	if len(name) < 3 || name[0] != 'r' {
		return 0, false
	}
	i := 1
	for i < len(name) && name[i] >= '0' && name[i] <= '9' {
		rank = rank*10 + int(name[i]-'0')
		i++
	}
	if i == 1 || !strings.HasPrefix(name[i:], "-site.") {
		return 0, false
	}
	return rank, true
}
