// Package worldgen synthesizes the simulated web the study measures: a
// ranked domain population with TLDs, content categories, CDN/hosting
// assignments, and — the heart of the reproduction — per-domain
// geoblocking, challenge, anti-bot and censorship policies calibrated
// so the aggregate behaviour has the shape the paper reports.
package worldgen

import "geoblock/internal/geo"

// Provider identifies who serves a domain's traffic: one of the CDNs or
// hosting providers the paper studies, or the origin server software
// for unfronted sites.
type Provider string

// CDN and hosting providers discovered by the clustering step (§4.1.3)
// plus the origin server types whose 403 pages the paper fingerprints.
const (
	Cloudflare Provider = "cloudflare"
	Akamai     Provider = "akamai"
	CloudFront Provider = "cloudfront"
	AppEngine  Provider = "appengine"
	Incapsula  Provider = "incapsula"
	Baidu      Provider = "baidu"
	Soasta     Provider = "soasta"

	OriginNginx   Provider = "nginx"
	OriginVarnish Provider = "varnish"
	OriginApache  Provider = "apache"
)

// CDNs lists the fronting providers in stable order.
func CDNs() []Provider {
	return []Provider{Cloudflare, Akamai, CloudFront, AppEngine, Incapsula, Baidu, Soasta}
}

// IsCDN reports whether p fronts traffic (as opposed to origin server
// software).
func (p Provider) IsCDN() bool {
	switch p {
	case Cloudflare, Akamai, CloudFront, AppEngine, Incapsula, Baidu, Soasta:
		return true
	}
	return false
}

// Action is what a matching access rule does to the request.
type Action int

const (
	// ActionBlock denies the request with the provider's block page.
	ActionBlock Action = iota
	// ActionCaptcha serves an interactive captcha challenge.
	ActionCaptcha
	// ActionJS serves a JavaScript computation challenge.
	ActionJS
)

func (a Action) String() string {
	switch a {
	case ActionBlock:
		return "block"
	case ActionCaptcha:
		return "captcha"
	case ActionJS:
		return "js_challenge"
	}
	return "unknown"
}

// GeoRule is one country-scoped access rule a site owner configured at
// a provider — the Firewall-Access-Rules abstraction of §6 generalized
// across providers.
type GeoRule struct {
	Action    Action
	Countries map[geo.CountryCode]bool
	// BlockCrimea extends the rule to the Crimea region of Ukraine
	// (finer granularity than country, §4.2.2).
	BlockCrimea bool
	// ActiveUntil, when non-zero, is the virtual-clock tick after which
	// the rule is retired — the makro.co.za policy change the paper
	// caught mid-study (§4.2).
	ActiveUntil int64
}

// ActiveAt reports whether the rule applies at virtual time clock.
func (r *GeoRule) ActiveAt(clock int64) bool {
	return r.ActiveUntil == 0 || clock < r.ActiveUntil
}

// Applies reports whether the rule matches a client at loc at time
// clock.
func (r *GeoRule) Applies(loc geo.Location, clock int64) bool {
	if !r.ActiveAt(clock) {
		return false
	}
	if r.Countries[loc.Country] {
		return true
	}
	return r.BlockCrimea && loc.Region == geo.RegionCrimea
}

// CountryList returns the rule's countries in stable sorted order.
func (r *GeoRule) CountryList() []geo.CountryCode {
	out := make([]geo.CountryCode, 0, len(r.Countries))
	for cc := range r.Countries {
		out = append(out, cc)
	}
	sortCodes(out)
	return out
}

func sortCodes(cs []geo.CountryCode) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j] < cs[j-1]; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}
