package worldgen

import (
	"testing"

	"geoblock/internal/category"
	"geoblock/internal/geo"
)

// TestPaperScaleCalibration pins the generated world's ground truth to
// the paper's aggregates at full scale. World generation is fast
// (~0.3 s), so this regression net runs in every suite: a calibration
// drift that would silently bend EXPERIMENTS.md fails here first.
func TestPaperScaleCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale generation skipped in -short mode")
	}
	w := Generate(DefaultConfig())

	// Exact provider populations (§4.2.1).
	counts := map[Provider]int{}
	for _, d := range w.Top10K() {
		for _, p := range d.Providers {
			counts[p]++
		}
	}
	for p, want := range map[Provider]int{
		Cloudflare: 1394, CloudFront: 364, AppEngine: 108,
	} {
		if got := counts[p]; got < want-6 || got > want+6 {
			t.Errorf("%s fronts %d Top-10K domains, want ~%d", p, got, want)
		}
	}

	// Ground-truth unique explicit geoblockers among safe domains
	// (paper finds 100 of 8,003).
	unique := 0
	perCountry := map[geo.CountryCode]int{}
	for _, d := range w.Top10K() {
		if category.IsRisky(d.Category) || d.OnCitizenLab {
			continue
		}
		any := false
		for _, cc := range w.Geo.Measurable() {
			if d.ExplicitGeoBlockedIn(geo.Location{Country: cc}, 0) {
				perCountry[cc]++
				any = true
			}
		}
		if any {
			unique++
		}
	}
	if unique < 75 || unique > 140 {
		t.Errorf("ground-truth unique explicit geoblockers = %d, want ~100", unique)
	}

	// The sanctioned four dominate every other country (Table 5/6).
	floor := perCountry["IR"]
	for _, cc := range []geo.CountryCode{"SY", "SD", "CU"} {
		if perCountry[cc] < floor {
			floor = perCountry[cc]
		}
	}
	for _, cc := range []geo.CountryCode{"CN", "RU", "DE", "US", "BR", "NG"} {
		if perCountry[cc] >= floor {
			t.Errorf("%s (%d instances) reaches the sanctioned floor (%d)", cc, perCountry[cc], floor)
		}
	}

	// GAE hosting rate (§4.2.1: 40.7% of AppEngine-detected Top-10K
	// domains are platform-blocked).
	gae, hosted := 0, 0
	for _, d := range w.Top10K() {
		if d.FrontedBy(AppEngine) {
			gae++
			if d.GAEHosted {
				hosted++
			}
		}
	}
	if rate := float64(hosted) / float64(gae); rate < 0.30 || rate > 0.52 {
		t.Errorf("GAE-hosted rate %.3f, want ~0.41", rate)
	}

	// The Top-1M customer population (§5.1.1: 152,001).
	if got := len(w.CustomerRanks()); got < 148000 || got > 160000 {
		t.Errorf("Top-1M customers = %d, want ~152,001", got)
	}

	// The Airbnb ccTLD fleet exists and behaves.
	fleet := 0
	for _, d := range w.Top10K() {
		if d.AirbnbStyle {
			fleet++
			if !d.ExplicitGeoBlockedIn(geo.Location{Country: "IR"}, 0) {
				t.Errorf("%s does not block Iran", d.Name)
			}
		}
	}
	if fleet < 10 {
		t.Errorf("Airbnb fleet = %d domains, want 14", fleet)
	}

	// Citizen Lab list size near the real global list's (~1,100).
	if n := w.CitizenLab.Len(); n < 900 || n > 1300 {
		t.Errorf("Citizen Lab list = %d entries", n)
	}
}
