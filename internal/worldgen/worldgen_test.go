package worldgen

import (
	"testing"

	"geoblock/internal/stats"

	"geoblock/internal/category"
	"geoblock/internal/geo"
)

func testWorld(t *testing.T) *World {
	t.Helper()
	return Generate(TestConfig())
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(TestConfig())
	b := Generate(TestConfig())
	if len(a.Top10K()) != len(b.Top10K()) {
		t.Fatal("population sizes differ")
	}
	for i := range a.Top10K() {
		da, db := a.Top10K()[i], b.Top10K()[i]
		if da.Name != db.Name || da.Category != db.Category || len(da.GeoRules) != len(db.GeoRules) {
			t.Fatalf("domain %d differs: %q vs %q", i, da.Name, db.Name)
		}
	}
	ra, rb := a.CustomerRanks(), b.CustomerRanks()
	if len(ra) != len(rb) {
		t.Fatal("customer populations differ")
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("customer rank %d differs", i)
		}
	}
}

func TestTop10KPopulation(t *testing.T) {
	w := testWorld(t)
	cfg := w.Cfg
	if got, want := len(w.Top10K()), cfg.scaled(cfg.Top10KSize); got != want {
		t.Fatalf("top10k size = %d, want %d", got, want)
	}
	counts := map[Provider]int{}
	for _, d := range w.Top10K() {
		if d.Name == "" || d.Rank < 1 || d.Origin == nil {
			t.Fatalf("malformed domain %+v", d)
		}
		if len(d.Providers) == 0 {
			t.Fatalf("%s has no providers", d.Name)
		}
		for _, p := range d.Providers {
			counts[p]++
		}
	}
	for _, p := range CDNs() {
		want := cfg.scaled(cfg.Top10KProviderCounts[p])
		got := counts[p]
		// Cameo placement can shift a few assignments.
		if got < want-20 || got > want+20 {
			t.Errorf("%s fronts %d domains, want ~%d", p, got, want)
		}
	}
}

func TestUniqueNames(t *testing.T) {
	w := testWorld(t)
	seen := map[string]bool{}
	for _, d := range w.Top10K() {
		if seen[d.Name] {
			t.Fatalf("duplicate name %q", d.Name)
		}
		seen[d.Name] = true
	}
}

func TestCameosPresent(t *testing.T) {
	w := testWorld(t)
	for _, name := range []string{"makro.co.za", "geniusdisplay.com", "fasttech.com", "pbskids.com", "airbnb.fr"} {
		d, ok := w.Lookup(name)
		if !ok {
			t.Fatalf("cameo %s missing", name)
		}
		if d.Name != name {
			t.Fatalf("lookup mismatch for %s", name)
		}
	}
}

func TestMakroPolicyFlip(t *testing.T) {
	w := testWorld(t)
	d, _ := w.Lookup("makro.co.za")
	rule := d.GeoRules[CloudFront]
	if rule == nil {
		t.Fatal("makro has no CloudFront rule")
	}
	var blockedAt0 geo.CountryCode
	for cc := range rule.Countries {
		blockedAt0 = cc
		break
	}
	loc := geo.Location{Country: blockedAt0}
	if _, ok := d.GeoBlockedIn(loc, 0); !ok {
		t.Fatal("makro should block at clock 0")
	}
	if _, ok := d.GeoBlockedIn(loc, 5); ok {
		t.Fatal("makro should have lifted its policy by clock 5")
	}
}

func TestGeniusDisplay(t *testing.T) {
	w := testWorld(t)
	d, _ := w.Lookup("geniusdisplay.com")
	if p, ok := d.GeoBlockedIn(geo.Location{Country: "RU"}, 0); !ok || p != OriginNginx {
		t.Fatalf("geniusdisplay in Russia: provider=%v ok=%v", p, ok)
	}
	if p, ok := d.GeoBlockedIn(geo.Location{Country: "UA", Region: geo.RegionCrimea}, 0); !ok || p != AppEngine {
		t.Fatalf("geniusdisplay in Crimea: provider=%v ok=%v", p, ok)
	}
	if _, ok := d.GeoBlockedIn(geo.Location{Country: "UA"}, 0); ok {
		t.Fatal("geniusdisplay must not block mainland Ukraine")
	}
}

func TestAirbnbCameo(t *testing.T) {
	w := testWorld(t)
	d, _ := w.Lookup("airbnb.fr")
	for _, cc := range []geo.CountryCode{"IR", "SY", "KP"} {
		if _, ok := d.GeoBlockedIn(geo.Location{Country: cc}, 0); !ok {
			t.Errorf("airbnb.fr should block %s", cc)
		}
		if !d.ExplicitGeoBlockedIn(geo.Location{Country: cc}, 0) {
			t.Errorf("airbnb.fr block in %s should be explicit", cc)
		}
	}
	if _, ok := d.GeoBlockedIn(geo.Location{Country: "SD"}, 0); ok {
		t.Error("airbnb does not block Sudan")
	}
	if _, ok := d.GeoBlockedIn(geo.Location{Country: "UA", Region: geo.RegionCrimea}, 0); !ok {
		t.Error("airbnb should block Crimea")
	}
}

func TestGAEPlatformBlock(t *testing.T) {
	w := testWorld(t)
	var gae *Domain
	for _, d := range w.Top10K() {
		if d.FrontedBy(AppEngine) && d.GAEHosted {
			gae = d
			break
		}
	}
	if gae == nil {
		t.Skip("no GAE-hosted domain at this scale")
	}
	for _, cc := range []geo.CountryCode{"IR", "SY", "SD", "CU", "KP"} {
		if p, ok := gae.GeoBlockedIn(geo.Location{Country: cc}, 0); !ok || p != AppEngine {
			t.Errorf("GAE-hosted %s should platform-block %s", gae.Name, cc)
		}
	}
	if _, ok := gae.GeoBlockedIn(geo.Location{Country: "DE"}, 0); ok {
		t.Error("GAE platform block must not hit Germany")
	}
}

func TestGeoblockCalibrationShape(t *testing.T) {
	// At test scale (~1,000 domains) the unique-geoblocker count should
	// land near 10 (paper: 100 of 10,000) and the most-blocked countries
	// must be the sanctioned four.
	w := testWorld(t)
	perCountry := map[geo.CountryCode]int{}
	unique := 0
	for _, d := range w.Top10K() {
		if category.IsRisky(d.Category) || d.OnCitizenLab {
			continue
		}
		blockedAnywhere := false
		for _, cc := range w.Geo.Measurable() {
			if d.ExplicitGeoBlockedIn(geo.Location{Country: cc}, 0) {
				perCountry[cc]++
				blockedAnywhere = true
			}
		}
		if blockedAnywhere {
			unique++
		}
	}
	if unique < 4 || unique > 40 {
		t.Fatalf("unique explicit geoblockers = %d, want ~10 at 0.1 scale", unique)
	}
	for _, sanc := range []geo.CountryCode{"IR", "SY", "SD", "CU"} {
		for _, normal := range []geo.CountryCode{"DE", "FR", "JP"} {
			if perCountry[sanc] < perCountry[normal] {
				t.Errorf("%s (%d) should out-block %s (%d)", sanc, perCountry[sanc], normal, perCountry[normal])
			}
		}
	}
}

func TestCustomerPopulation(t *testing.T) {
	w := testWorld(t)
	cfg := w.Cfg
	var total int
	for _, p := range []Provider{Cloudflare, CloudFront, Akamai, Incapsula, AppEngine} {
		total += cfg.scaled(cfg.Top1MProviderCounts[p])
	}
	if got := len(w.CustomerRanks()); got != total {
		t.Fatalf("customer count = %d, want %d", got, total)
	}
	for _, r := range w.CustomerRanks() {
		if r <= len(w.Top10K()) || r > cfg.Top1MRanks {
			t.Fatalf("customer rank %d out of band", r)
		}
	}
}

func TestDualProviderCustomersExist(t *testing.T) {
	w := testWorld(t)
	dual := 0
	for _, r := range w.CustomerRanks() {
		if len(w.customers[r].providers) == 2 {
			dual++
		}
	}
	want := w.Cfg.scaled(w.Cfg.Top1MDualProvider)
	// Some dual assignments collapse when the drawn second provider
	// equals the first.
	if dual < want/2 || dual > want {
		t.Fatalf("dual-provider customers = %d, want ~%d", dual, want)
	}
}

func TestDomainAtLazyConsistent(t *testing.T) {
	w := testWorld(t)
	rank := w.CustomerRanks()[3]
	a := w.DomainAt(rank)
	b := w.DomainAt(rank)
	if a != b {
		t.Fatal("customer domains must be cached")
	}
	if _, ok := w.Lookup(a.Name); !ok {
		t.Fatal("materialized customer must be resolvable by name")
	}
}

func TestSyntheticDomainDeterministic(t *testing.T) {
	w := testWorld(t)
	// Find a non-customer long-tail rank.
	rank := w.Cfg.Top1MRanks - 1
	for {
		if _, ok := w.customers[rank]; !ok {
			break
		}
		rank--
	}
	a := w.DomainAt(rank)
	b := w.DomainAt(rank)
	if a.Name != b.Name || a.Category != b.Category || a.Origin.BaseLen != b.Origin.BaseLen {
		t.Fatal("synthetic domains must be deterministic")
	}
	if d, ok := w.Lookup(a.Name); !ok || d.Name != a.Name {
		t.Fatal("synthetic domain must resolve by name")
	}
}

func TestResolveA(t *testing.T) {
	w := testWorld(t)
	if _, ok := w.ResolveA("no-such-domain.invalid"); ok {
		t.Fatal("unknown domain must NXDOMAIN")
	}
	nets := GAENetblocks()
	inGAE := func(ip geo.IP) bool {
		for _, r := range nets {
			if ip >= r.Lo && ip < r.Hi {
				return true
			}
		}
		return false
	}
	gaeSeen, otherSeen := false, false
	for _, d := range w.Top10K()[:500] {
		ip, ok := w.ResolveA(d.Name)
		if !ok {
			t.Fatalf("ResolveA(%s) failed", d.Name)
		}
		if d.Providers[0] == AppEngine {
			gaeSeen = true
			if !inGAE(ip) {
				t.Fatalf("%s is AppEngine but resolves outside Google netblocks", d.Name)
			}
		} else {
			otherSeen = true
			if inGAE(ip) {
				t.Fatalf("%s is not AppEngine but resolves into Google netblocks", d.Name)
			}
		}
	}
	if !otherSeen {
		t.Fatal("test did not exercise non-GAE domains")
	}
	_ = gaeSeen
}

func TestNSDetection(t *testing.T) {
	w := testWorld(t)
	cfNS, akNS := 0, 0
	for _, d := range w.Top10K() {
		ns := w.NS(d.Name)
		for _, s := range ns {
			if d.NSDetectable && d.Providers[0] == Cloudflare && s == "ada.ns.cloudflare.com" {
				cfNS++
				break
			}
			if d.NSDetectable && d.Providers[0] == Akamai && s == "a1-64.akam.net" {
				akNS++
				break
			}
		}
		if !d.NSDetectable && len(ns) > 0 && ns[0] != "ns1.dns-host.example" {
			t.Fatalf("%s leaks CDN NS without NSDetectable", d.Name)
		}
	}
	if akNS == 0 {
		t.Fatal("no Akamai customers detectable via NS; §3.1 method would find nothing")
	}
}

func TestCitizenLabList(t *testing.T) {
	w := testWorld(t)
	if w.CitizenLab.Len() < 50 {
		t.Fatalf("citizen lab list too small: %d", w.CitizenLab.Len())
	}
	onList := 0
	for _, d := range w.Top10K() {
		if d.OnCitizenLab {
			if !w.CitizenLab.Contains(d.Name) {
				t.Fatalf("%s flagged but not on list", d.Name)
			}
			onList++
		}
	}
	if onList == 0 {
		t.Fatal("no population overlap with the Citizen Lab list")
	}
}

func TestCensorshipAssigned(t *testing.T) {
	w := testWorld(t)
	censored := 0
	for _, d := range w.Top10K() {
		for cc := range d.CensoredIn {
			if censorAggressiveness[cc] == 0 {
				t.Fatalf("%s censored in non-censoring country %s", d.Name, cc)
			}
			censored++
		}
	}
	if censored == 0 {
		t.Fatal("no censorship in the world; the confound cannot be exercised")
	}
}

func TestClock(t *testing.T) {
	w := testWorld(t)
	if w.Clock() != 0 {
		t.Fatal("clock must start at 0")
	}
	w.AdvanceClock(3)
	if w.Clock() != 3 {
		t.Fatal("clock did not advance")
	}
}

func TestGeoRuleApplies(t *testing.T) {
	r := &GeoRule{
		Action:      ActionBlock,
		Countries:   map[geo.CountryCode]bool{"IR": true},
		BlockCrimea: true,
		ActiveUntil: 2,
	}
	if !r.Applies(geo.Location{Country: "IR"}, 0) {
		t.Fatal("rule should apply in Iran at clock 0")
	}
	if r.Applies(geo.Location{Country: "IR"}, 2) {
		t.Fatal("rule expired at clock 2")
	}
	if !r.Applies(geo.Location{Country: "UA", Region: geo.RegionCrimea}, 1) {
		t.Fatal("rule should apply in Crimea")
	}
	if r.Applies(geo.Location{Country: "UA"}, 1) {
		t.Fatal("rule should not apply in mainland Ukraine")
	}
}

func TestHostingAndFrontedBy(t *testing.T) {
	d := &Domain{Providers: []Provider{Cloudflare}}
	if d.Hosting() != OriginApache {
		t.Fatal("CDN-only chain defaults to apache hosting")
	}
	d2 := &Domain{Providers: []Provider{OriginNginx, AppEngine}}
	if d2.Hosting() != OriginNginx {
		t.Fatal("hosting should be the non-CDN provider")
	}
	if !d2.FrontedBy(AppEngine) || d2.FrontedBy(Cloudflare) {
		t.Fatal("FrontedBy broken")
	}
}

func TestActionString(t *testing.T) {
	if ActionBlock.String() != "block" || ActionCaptcha.String() != "captcha" || ActionJS.String() != "js_challenge" {
		t.Fatal("Action.String broken")
	}
}

func TestParseSyntheticRank(t *testing.T) {
	name := SyntheticRankName(54321, "com")
	r, ok := parseSyntheticRank(name)
	if !ok || r != 54321 {
		t.Fatalf("parse(%q) = %d, %v", name, r, ok)
	}
	if _, ok := parseSyntheticRank("example.com"); ok {
		t.Fatal("non-synthetic name must not parse")
	}
}

func TestCitizenLabExtrasMaterialized(t *testing.T) {
	w := testWorld(t)
	extras := w.CitizenLabExtras()
	if len(extras) == 0 {
		t.Fatal("no test-list extras")
	}
	geoblockers := 0
	censored := 0
	for _, d := range extras {
		if !w.CitizenLab.Contains(d.Name) {
			t.Fatalf("extra %s not on the list", d.Name)
		}
		if _, ok := w.Lookup(d.Name); !ok {
			t.Fatalf("extra %s not servable", d.Name)
		}
		if d.Rank != 0 {
			t.Fatalf("extra %s has an Alexa rank", d.Name)
		}
		for _, cc := range w.Geo.Measurable() {
			if d.ExplicitGeoBlockedIn(geo.Location{Country: cc}, 0) {
				geoblockers++
				break
			}
		}
		if len(d.CensoredIn) > 0 {
			censored++
		}
	}
	// The list geoblocks at a much higher rate than popular sites
	// (paper: 9% of the global list).
	frac := float64(geoblockers) / float64(len(extras))
	if frac < 0.03 || frac > 0.25 {
		t.Fatalf("test-list geoblocker fraction %.3f, want ~0.09", frac)
	}
	if censored == 0 {
		t.Fatal("test-list entries should be heavily censored")
	}
}

func TestJunkRateAssigned(t *testing.T) {
	w := testWorld(t)
	withJunk := 0
	for _, d := range w.Top10K() {
		if d.JunkRate > 0 {
			withJunk++
			if d.JunkRate > w.Cfg.JunkRateMax {
				t.Fatalf("junk rate %v exceeds max", d.JunkRate)
			}
		}
	}
	frac := float64(withJunk) / float64(len(w.Top10K()))
	if frac < 0.2 || frac > 0.5 {
		t.Fatalf("junk-prone fraction %.2f, want ~0.35", frac)
	}
}

func TestBlocksProxiesAssigned(t *testing.T) {
	cfg := TestConfig()
	cfg.Scale = 0.5 // enough Akamai customers for a stable rate
	w := Generate(cfg)
	akamai, blocking := 0, 0
	for _, d := range w.Top10K() {
		if d.FrontedBy(Akamai) {
			akamai++
			if d.BlocksProxies {
				blocking++
			}
		}
	}
	if akamai == 0 || blocking == 0 {
		t.Fatalf("akamai=%d proxy-blocking=%d", akamai, blocking)
	}
	frac := float64(blocking) / float64(akamai)
	if frac > 0.12 {
		t.Fatalf("proxy-blocking Akamai fraction %.3f too high (want ~0.037)", frac)
	}
}

func TestNameGeneration(t *testing.T) {
	g := newNameGen(statsRNG())
	seen := map[string]bool{}
	for i := 0; i < 3000; i++ {
		tld := g.tld()
		if tld == "" {
			t.Fatal("empty TLD")
		}
		name := g.next(tld)
		if seen[name] {
			t.Fatalf("duplicate name %q", name)
		}
		seen[name] = true
	}
}

func TestNameReserve(t *testing.T) {
	g := newNameGen(statsRNG())
	if !g.reserve("airbnb.fr") {
		t.Fatal("first reserve must succeed")
	}
	if g.reserve("airbnb.fr") {
		t.Fatal("second reserve must fail")
	}
}

func TestTLDOf(t *testing.T) {
	if tldOf("a.b.co.za") != "za" || tldOf("plain") != "" {
		t.Fatal("tldOf broken")
	}
}

func statsRNG() *stats.RNG { return stats.NewRNG(77) }

func TestLegal451Cameo(t *testing.T) {
	w := testWorld(t)
	d, ok := w.Lookup("lexpublica.com")
	if !ok || !d.Legal451 {
		t.Fatal("lexpublica.com cameo missing or unflagged")
	}
	if _, blocked := d.GeoBlockedIn(geo.Location{Country: "UA", Region: geo.RegionCrimea}, 0); !blocked {
		t.Fatal("lexpublica should block Crimea")
	}
	if _, blocked := d.GeoBlockedIn(geo.Location{Country: "UA"}, 0); blocked {
		t.Fatal("lexpublica must not block mainland Ukraine")
	}
	if _, blocked := d.GeoBlockedIn(geo.Location{Country: "IR"}, 0); blocked {
		t.Fatal("lexpublica blocks Crimea only")
	}
}
