package worldgen

import (
	"sort"
	"sync"
	"sync/atomic"

	"geoblock/internal/citizenlab"
	"geoblock/internal/geo"
	"geoblock/internal/stats"
)

// World is the fully generated simulated web. The Top-10K population is
// materialized eagerly; Top-1M CDN customers are assigned eagerly (so
// population counts are exact) but their full Domain records are built
// lazily on first access, and non-customer long-tail domains are
// synthesized on demand without caching. All methods are safe for
// concurrent use.
type World struct {
	Cfg        Config
	Geo        *geo.DB
	CitizenLab *citizenlab.List

	top10k []*Domain
	byName map[string]*Domain

	customers     map[int]customerSeed // rank → provider assignment
	customerRanks []int                // sorted

	mu        sync.Mutex
	lazy      map[int]*Domain
	lazyNames map[string]*Domain
	lazyZales bool // the dual-provider cameo has been named

	clExtras []*Domain // test-list domains outside the rank space

	clock atomic.Int64
	seed  uint64
}

// customerSeed is the eager part of a Top-1M CDN customer: everything
// the population-identification scan can observe without a full build.
type customerSeed struct {
	providers    []Provider
	nsDetectable bool
	gaeHosted    bool
}

// infrastructure address space: providers live above the per-country
// allocation so client and server addresses never collide.
const (
	infraBase geo.IP = 0xE0000000
	infraSlot geo.IP = 0x00100000 // /12 per provider
	gaeBlocks        = 16         // App Engine netblocks (paper found 65)
)

var infraOrder = []Provider{
	Cloudflare, Akamai, CloudFront, AppEngine, Incapsula, Baidu, Soasta,
	OriginNginx, OriginVarnish, OriginApache,
}

func infraPool(p Provider) (geo.IP, geo.IP) {
	for i, q := range infraOrder {
		if q == p {
			lo := infraBase + geo.IP(i)*infraSlot
			return lo, lo + infraSlot
		}
	}
	lo := infraBase + geo.IP(len(infraOrder))*infraSlot
	return lo, lo + infraSlot
}

// GAENetblocks returns the Google App Engine address blocks the
// recursive netblock lookup of §5.1.1 discovers.
func GAENetblocks() []geo.Range {
	lo, hi := infraPool(AppEngine)
	span := (hi - lo) / gaeBlocks
	out := make([]geo.Range, gaeBlocks)
	for i := range out {
		out[i] = geo.Range{Lo: lo + geo.IP(i)*span, Hi: lo + geo.IP(i+1)*span}
	}
	return out
}

// Top10K returns the popular-site population in rank order.
func (w *World) Top10K() []*Domain { return w.top10k }

// CitizenLabExtras returns the materialized test-list domains that live
// outside the Alexa rank space.
func (w *World) CitizenLabExtras() []*Domain { return w.clExtras }

// CustomerRanks returns the ranks (beyond the Top 10K) of all Top-1M
// CDN customers, sorted.
func (w *World) CustomerRanks() []int { return w.customerRanks }

// Clock returns the current virtual time; AdvanceClock moves it
// forward. The pipeline advances the clock between measurement phases
// so that mid-study policy changes (§4.2) can manifest.
func (w *World) Clock() int64          { return w.clock.Load() }
func (w *World) AdvanceClock(by int64) { w.clock.Add(by) }

// DomainAt returns the domain at the given 1-based rank, materializing
// it if necessary. Ranks outside [1, Top1MRanks] return nil.
func (w *World) DomainAt(rank int) *Domain {
	if rank < 1 || rank > w.Cfg.Top1MRanks {
		return nil
	}
	if rank <= len(w.top10k) {
		return w.top10k[rank-1]
	}
	if seed, ok := w.customers[rank]; ok {
		return w.customerDomain(rank, seed)
	}
	// Long-tail non-customer: synthesized deterministically, not cached.
	return w.syntheticDomain(rank)
}

// Lookup resolves a domain name to its record.
func (w *World) Lookup(name string) (*Domain, bool) {
	if d, ok := w.byName[name]; ok {
		return d, true
	}
	w.mu.Lock()
	d, ok := w.lazyNames[name]
	w.mu.Unlock()
	if ok {
		return d, true
	}
	if rank, ok := parseSyntheticRank(name); ok {
		if d := w.DomainAt(rank); d != nil && d.Name == name {
			return d, true
		}
	}
	return nil, false
}

// customerDomain materializes (and caches) a Top-1M customer.
func (w *World) customerDomain(rank int, seed customerSeed) *Domain {
	w.mu.Lock()
	defer w.mu.Unlock()
	if d, ok := w.lazy[rank]; ok {
		return d
	}
	d := w.buildCustomer(rank, seed)
	w.lazy[rank] = d
	w.lazyNames[d.Name] = d
	return d
}

// syntheticDomain builds a throwaway long-tail origin-only domain. It
// is deterministic in rank and intentionally uncached: the population
// scan touches a million of them exactly once.
func (w *World) syntheticDomain(rank int) *Domain {
	rng := stats.NewRNG(w.seed).Fork("tail").Fork(itoa(rank))
	tld := tldWeightedPick(rng)
	name := SyntheticRankName(rank, tld)
	hosting := OriginApache
	switch {
	case rng.Bool(0.45):
		hosting = OriginNginx
	case rng.Bool(0.04):
		hosting = OriginVarnish
	}
	return &Domain{
		Name:      name,
		Rank:      rank,
		TLD:       tld,
		Category:  pickCategoryTop1M(rng),
		Providers: []Provider{hosting},
		Origin:    newOrigin(name, rng),
		GeoRules:  map[Provider]*GeoRule{},
	}
}

// ResolveA returns the IPv4 address name resolves to: an address inside
// the fronting provider's infrastructure pool (App Engine-detected
// domains land inside the Google netblocks). ok is false for NXDOMAIN.
func (w *World) ResolveA(name string) (geo.IP, bool) {
	d, ok := w.Lookup(name)
	if !ok {
		return 0, false
	}
	p := d.Providers[0]
	lo, hi := infraPool(p)
	span := uint64(hi - lo)
	h := stats.Mix64(hashString(name))
	return lo + geo.IP(h%span), true
}

// NS returns the authoritative nameserver suffixes for name — the
// DNS-based customer discovery of §3.1 keys on these. Only NSDetectable
// customers expose their CDN here.
func (w *World) NS(name string) []string {
	d, ok := w.Lookup(name)
	if !ok {
		return nil
	}
	if d.NSDetectable {
		switch d.Providers[0] {
		case Cloudflare:
			return []string{"ada.ns.cloudflare.com", "bob.ns.cloudflare.com"}
		case Akamai:
			return []string{"a1-64.akam.net", "a9-67.akam.net"}
		}
	}
	return []string{"ns1.dns-host.example", "ns2.dns-host.example"}
}

func hashString(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func itoa(n int) string {
	// strconv-free tiny helper keeps the hot path allocation-light.
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// sortedRanks returns the keys of m ascending.
func sortedRanks(m map[int]customerSeed) []int {
	out := make([]int, 0, len(m))
	for r := range m {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}
