package worldgen

import (
	"fmt"

	"geoblock/internal/blockpage"
	"geoblock/internal/category"
	"geoblock/internal/citizenlab"
	"geoblock/internal/geo"
	"geoblock/internal/stats"
)

// censorAggressiveness ranks the countries whose national filters the
// simulation models, as a multiplier on censorship rates. The censoring
// set follows the literature the paper cites (China, Iran, Pakistan,
// Syria, …); OONI's 12 state-censorship countries are drawn from here.
var censorAggressiveness = map[geo.CountryCode]float64{
	"CN": 3.0, "IR": 2.2, "SY": 1.0, "RU": 0.8, "TR": 0.8, "PK": 0.7,
	"SA": 0.6, "VN": 0.5, "EG": 0.4, "AE": 0.4, "ID": 0.3, "BY": 0.3,
}

// CensorCountries returns the censoring countries in stable order.
func CensorCountries() []geo.CountryCode {
	out := []geo.CountryCode{"AE", "BY", "CN", "EG", "ID", "IR", "PK", "RU", "SA", "SY", "TR", "VN"}
	return out
}

// Generate builds the world from cfg. Same config → identical world.
func Generate(cfg Config) *World {
	if cfg.Scale <= 0 || cfg.Scale > 1 {
		panic("worldgen: Config.Scale must be in (0, 1]")
	}
	root := stats.NewRNG(cfg.Seed)
	w := &World{
		Cfg:       cfg,
		Geo:       geo.NewDB(),
		byName:    make(map[string]*Domain),
		customers: make(map[int]customerSeed),
		lazy:      make(map[int]*Domain),
		lazyNames: make(map[string]*Domain),
		seed:      cfg.Seed,
	}

	g := &generator{cfg: &cfg, w: w, names: newNameGen(root.Fork("names"))}
	g.generateTop10K(root.Fork("top10k"))
	g.placeCameos(root.Fork("cameos"))
	g.assignTop1MCustomers(root.Fork("top1m"))
	g.buildCitizenLab(root.Fork("citizenlab"))
	g.assignCensorship(root.Fork("censorship"))
	w.customerRanks = sortedRanks(w.customers)
	return w
}

type generator struct {
	cfg   *Config
	w     *World
	names *nameGen
}

// generateTop10K materializes the popular-site population.
func (g *generator) generateTop10K(rng *stats.RNG) {
	cfg := g.cfg
	size := cfg.scaled(cfg.Top10KSize)

	// Lay out CDN assignments: exact per-provider counts scattered
	// uniformly over the ranks.
	assignment := make([]Provider, size)
	perm := rng.Perm(size)
	next := 0
	for _, p := range CDNs() {
		n := cfg.scaled(cfg.Top10KProviderCounts[p])
		for i := 0; i < n && next < size; i++ {
			assignment[perm[next]] = p
			next++
		}
	}

	weights := category.Top10KWeights()
	ws := make([]float64, len(weights))
	for i, cw := range weights {
		ws[i] = cw.W
	}

	g.w.top10k = make([]*Domain, size)
	for rank := 1; rank <= size; rank++ {
		drng := rng.Fork("d" + itoa(rank))
		tld := g.names.tld()
		name := g.names.next(tld)
		cat := weights[drng.WeightedChoice(ws)].Cat

		var chain []Provider
		if p := assignment[rank-1]; p != "" {
			chain = []Provider{p}
		} else {
			chain = []Provider{pickHosting(drng)}
		}

		d := &Domain{
			Name:      name,
			Rank:      rank,
			TLD:       tld,
			Category:  cat,
			Providers: chain,
			Origin:    newOrigin(name, drng),
			GeoRules:  map[Provider]*GeoRule{},
		}
		g.decoratePopulation(d, drng)
		g.assignPolicies(d, drng, false)
		g.w.top10k[rank-1] = d
		g.w.byName[name] = d
	}
}

// decoratePopulation applies the population-level pathologies of
// §4.1.1: unreachable domains, proxy-refused domains, redirects.
func (g *generator) decoratePopulation(d *Domain, rng *stats.RNG) {
	cfg := g.cfg
	switch {
	case rng.Bool(cfg.LuminatiRestrictedRate):
		d.LuminatiRestricted = true
	case rng.Bool(cfg.UnreachableRate):
		d.Unreachable = true
	case rng.Bool(cfg.RedirectLoopRate):
		d.RedirectLoop = true
	default:
		// Most sites redirect once or twice (http→https, apex→www).
		if rng.Bool(0.55) {
			d.RedirectHops = 1 + rng.Intn(2)
		}
	}
	if rng.Bool(cfg.CitizenLabOverlapRate) || (category.IsRisky(d.Category) && rng.Bool(0.03)) {
		d.OnCitizenLab = true
	}
}

// assignPolicies synthesizes the domain's access rules. top1m selects
// the Top-1M calibration for the App Engine hosting rate.
func (g *generator) assignPolicies(d *Domain, rng *stats.RNG, top1m bool) {
	cfg := g.cfg
	bias := cfg.catBias(d.Category)
	highRisk := g.highRiskCountries()
	measurable := g.w.Geo.Measurable()

	for _, p := range d.Providers {
		switch p {
		case AppEngine:
			rate := cfg.GAEHostedRateTop10K
			if top1m {
				rate = cfg.GAEHostedRateTop1M
			}
			d.GAEHosted = rng.Bool(rate)
		case Cloudflare:
			d.NSDetectable = rng.Bool(0.020)
			if rng.Bool(clamp01(cfg.CFGeoblockRate * bias)) {
				d.GeoRules[p] = g.scatteredBlockRule(rng, highRisk, measurable)
			} else if rng.Bool(cfg.CFCaptchaRate) {
				d.GeoRules[p] = g.challengeRule(rng, ActionCaptcha, highRisk, measurable)
			} else if rng.Bool(cfg.CFJSRate) {
				d.GeoRules[p] = g.jsRule(rng, highRisk, measurable)
			}
		case CloudFront:
			if rng.Bool(clamp01(cfg.CloudFrontGeoblockRate * bias)) {
				d.GeoRules[p] = g.wideBlockRule(rng, measurable)
			}
		case Akamai:
			d.NSDetectable = rng.Bool(0.383)
			d.BotSensitivity = akamaiBotSensitivity(rng, cfg.AkamaiBotSensitivityRate)
			d.BlocksProxies = rng.Bool(cfg.ProxyBlockAkamai)
			if rng.Bool(cfg.ReputationProneRate) {
				d.ReputationSensitivity = cfg.ReputationMin + cfg.ReputationSpan*rng.Float64()
			}
			if rng.Bool(clamp01(cfg.AkamaiGeoblockRate * bias)) {
				d.GeoRules[p] = g.scatteredBlockRule(rng, highRisk, measurable)
			}
		case Incapsula:
			d.BotSensitivity = akamaiBotSensitivity(rng, cfg.AkamaiBotSensitivityRate*0.8)
			d.BlocksProxies = rng.Bool(cfg.ProxyBlockIncapsula)
			if rng.Bool(cfg.ReputationProneRate) {
				d.ReputationSensitivity = cfg.ReputationMin + cfg.ReputationSpan*rng.Float64()
			}
			if rng.Bool(clamp01(cfg.IncapsulaGeoblockRate * bias)) {
				d.GeoRules[p] = g.scatteredBlockRule(rng, highRisk, measurable)
			}
		case Baidu:
			if rng.Bool(cfg.BaiduCaptchaRate) {
				d.GeoRules[p] = g.challengeRule(rng, ActionCaptcha, highRisk, measurable)
			}
		case Soasta:
			if rng.Bool(cfg.SoastaBlockRate) {
				d.GeoRules[p] = g.challengeRule(rng, ActionBlock, highRisk, measurable)
			}
		case OriginNginx:
			d.BlocksProxies = rng.Bool(cfg.ProxyBlockNginx)
			if rng.Bool(cfg.NginxGeoblockRate) {
				d.GeoRules[p] = g.proxyHostileRule(rng, highRisk, measurable)
			}
		case OriginVarnish:
			if rng.Bool(cfg.VarnishGeoblockRate) {
				d.GeoRules[p] = g.proxyHostileRule(rng, highRisk, measurable)
			}
		}
	}
	if rng.Bool(cfg.DistilRate) {
		d.DistilProtected = true
		d.BlocksProxies = rng.Bool(cfg.ProxyBlockDistil)
		d.ResidentialChallengeRate = 0.10 + 0.30*rng.Float64()
		if _, ok := d.GeoRules[d.Providers[0]]; !ok {
			d.GeoRules[d.Providers[0]] = g.challengeRule(rng, ActionCaptcha, highRisk, measurable)
		}
	} else if rng.Bool(0.05) {
		d.ResidentialChallengeRate = cfg.ResidentialChallengeRate
	}
	if rng.Bool(cfg.JunkProneRate) {
		d.JunkRate = cfg.JunkRateMax * rng.Float64()
	}

	// Timeout geoblocking: origin-hosted sites only (a CDN fronting the
	// site would answer the TCP handshake itself).
	if !d.Providers[0].IsCDN() && rng.Bool(cfg.TimeoutGeoblockRate) {
		rule := g.proxyHostileRule(rng, highRisk, measurable)
		d.TimeoutBlock = rule.Countries
	}

	// Application-layer discrimination concentrates in commerce-shaped
	// categories: removed checkout features and price markups.
	switch d.Category {
	case category.Shopping, category.Travel, category.Auctions, category.PersonalVehicles:
		if rng.Bool(cfg.AppLayerRate) {
			pol := &AppLayerPolicy{
				RestrictedIn: map[geo.CountryCode]bool{},
				PriceMarkup:  map[geo.CountryCode]float64{},
			}
			for _, cc := range []geo.CountryCode{"IR", "SY", "SD", "CU", "KP"} {
				if rng.Bool(0.5) {
					pol.RestrictedIn[cc] = true
				}
			}
			for _, cc := range highRisk {
				if rng.Bool(0.15) {
					pol.RestrictedIn[cc] = true
				}
			}
			n := 1 + poisson(rng, 2)
			for i := 0; i < n; i++ {
				cc := measurable[rng.Intn(len(measurable))]
				pol.PriceMarkup[cc] = 1.1 + 0.5*rng.Float64()
			}
			if len(pol.RestrictedIn) == 0 && len(pol.PriceMarkup) == 0 {
				pol.RestrictedIn["IR"] = true
			}
			d.AppLayer = pol
		}
	}
}

// scatteredBlockRule models the observed Cloudflare/Akamai/Incapsula
// rule shape: the sanctioned set with one coin flip, individual
// high-risk countries with another, and a small random tail.
func (g *generator) scatteredBlockRule(rng *stats.RNG, highRisk, measurable []geo.CountryCode) *GeoRule {
	cfg := g.cfg
	r := &GeoRule{Action: ActionBlock, Countries: map[geo.CountryCode]bool{}}
	if rng.Bool(cfg.SanctionedBlockProb) {
		for _, cc := range []geo.CountryCode{"IR", "SY", "SD", "CU", "KP"} {
			r.Countries[cc] = true
		}
		r.BlockCrimea = rng.Bool(0.5)
	}
	for _, cc := range highRisk {
		if rng.Bool(cfg.HighRiskBlockProb) {
			r.Countries[cc] = true
		}
	}
	n := poisson(rng, cfg.RandomBlockMean)
	for i := 0; i < n; i++ {
		r.Countries[measurable[rng.Intn(len(measurable))]] = true
	}
	if len(r.Countries) == 0 {
		r.Countries[measurable[rng.Intn(len(measurable))]] = true
	}
	return r
}

// wideBlockRule models CloudFront's observed market-segmentation rules:
// a wide set of arbitrary countries (~33 in Table 6).
func (g *generator) wideBlockRule(rng *stats.RNG, measurable []geo.CountryCode) *GeoRule {
	n := g.cfg.CloudFrontBlockSetSize + rng.Intn(21) - 10
	if n < 5 {
		n = 5
	}
	if n > len(measurable) {
		n = len(measurable)
	}
	r := &GeoRule{Action: ActionBlock, Countries: map[geo.CountryCode]bool{}}
	for _, i := range rng.SampleInts(len(measurable), n) {
		r.Countries[measurable[i]] = true
	}
	// Sanctioned countries join the set half the time.
	if rng.Bool(0.5) {
		for _, cc := range []geo.CountryCode{"IR", "SY", "SD", "CU"} {
			if rng.Bool(0.5) {
				r.Countries[cc] = true
			}
		}
	}
	return r
}

// challengeRule scopes a captcha/block to a handful of high-risk
// countries (anti-abuse deployments).
func (g *generator) challengeRule(rng *stats.RNG, action Action, highRisk, measurable []geo.CountryCode) *GeoRule {
	r := &GeoRule{Action: action, Countries: map[geo.CountryCode]bool{}}
	n := 3 + rng.Intn(6)
	for i := 0; i < n; i++ {
		r.Countries[highRisk[rng.Intn(len(highRisk))]] = true
	}
	if rng.Bool(0.3) {
		r.Countries[measurable[rng.Intn(len(measurable))]] = true
	}
	return r
}

// jsRule: half of JavaScript-challenge deployments are global
// ("under attack" mode), half country-scoped like captchas.
func (g *generator) jsRule(rng *stats.RNG, highRisk, measurable []geo.CountryCode) *GeoRule {
	if rng.Bool(0.5) {
		r := &GeoRule{Action: ActionJS, Countries: map[geo.CountryCode]bool{}}
		for _, cc := range measurable {
			r.Countries[cc] = true
		}
		return r
	}
	r := g.challengeRule(rng, ActionJS, highRisk, measurable)
	return r
}

// proxyHostileRule models origin-side country blocks: heavy on the
// abuse-associated countries, mean size ~8.
func (g *generator) proxyHostileRule(rng *stats.RNG, highRisk, measurable []geo.CountryCode) *GeoRule {
	r := &GeoRule{Action: ActionBlock, Countries: map[geo.CountryCode]bool{}}
	for _, cc := range highRisk {
		if rng.Bool(0.4) {
			r.Countries[cc] = true
		}
	}
	n := poisson(rng, 2.5)
	for i := 0; i < n; i++ {
		r.Countries[measurable[rng.Intn(len(measurable))]] = true
	}
	if len(r.Countries) == 0 {
		r.Countries["RU"] = true
	}
	return r
}

func (g *generator) highRiskCountries() []geo.CountryCode {
	var out []geo.CountryCode
	for _, c := range g.w.Geo.Countries() {
		if c.HighRisk {
			out = append(out, c.Code)
		}
	}
	return out
}

// akamaiBotSensitivity: a configured fraction of deployments deny
// crawler-like clients essentially everywhere; the rest are mild.
func akamaiBotSensitivity(rng *stats.RNG, rate float64) float64 {
	if rng.Bool(rate) {
		return 0.9 + 0.1*rng.Float64()
	}
	return 0.02 * rng.Float64()
}

// placeCameos overwrites a few generated domains with the named sites
// the paper singles out, so the case studies in §4.2.2 are replayable.
func (g *generator) placeCameos(rng *stats.RNG) {
	w := g.w
	size := len(w.top10k)
	if size < 100 {
		return
	}
	measurable := w.Geo.Measurable()

	replace := func(idx int, name string, mutate func(d *Domain)) {
		old := w.top10k[idx]
		delete(w.byName, old.Name)
		old.Name = name
		old.TLD = tldOf(name)
		old.Origin = newOrigin(name, rng.Fork(name))
		old.Unreachable, old.LuminatiRestricted, old.RedirectLoop = false, false, false
		old.GeoRules = map[Provider]*GeoRule{}
		old.AirbnbStyle, old.GAEHosted, old.DistilProtected = false, false, false
		old.Legal451 = false
		mutate(old)
		w.byName[name] = old
	}

	// makro.co.za: served a block page everywhere for the initial
	// 3-sample pass in 33 countries, then stopped — a policy change
	// caught mid-study (§4.2). ActiveUntil=1: active only at clock 0.
	replace(size/7, "makro.co.za", func(d *Domain) {
		d.Providers = []Provider{CloudFront}
		d.Category = category.Shopping
		rule := g.wideBlockRule(rng, measurable)
		rule.ActiveUntil = 1
		d.GeoRules[CloudFront] = rule
	})

	// geniusdisplay.com: nginx 403 for Russia at the origin, App Engine
	// platform block visible only from Crimean exits (§4.2.2).
	replace(size/5, "geniusdisplay.com", func(d *Domain) {
		d.Providers = []Provider{OriginNginx, AppEngine}
		d.Category = category.Advertising
		d.GAEHosted = true
		d.GeoRules[OriginNginx] = &GeoRule{
			Action:    ActionBlock,
			Countries: map[geo.CountryCode]bool{"RU": true},
		}
	})

	// fasttech.com: the one Baidu Yunjiasu block page, seen in China.
	replace(size/3, "fasttech.com", func(d *Domain) {
		d.Providers = []Provider{Baidu}
		d.Category = category.Shopping
		d.GeoRules[Baidu] = &GeoRule{
			Action:    ActionBlock,
			Countries: map[geo.CountryCode]bool{"CN": true},
		}
	})

	// lexpublica.com: the HTTP 451 curiosity — a site answering its
	// Crimea restriction with RFC 7725's status. Crimean exits are a
	// sliver of Ukraine's inventory, so whole studies observe only a
	// handful of 451s, as the paper did (§2.1).
	replace(size/11, "lexpublica.com", func(d *Domain) {
		d.Providers = []Provider{OriginNginx}
		d.Category = category.NewsMedia
		d.Legal451 = true
		d.GeoRules[OriginNginx] = &GeoRule{
			Action:      ActionBlock,
			Countries:   map[geo.CountryCode]bool{},
			BlockCrimea: true,
		}
	})

	// pbskids.com: the one Child Education geoblocker (Table 4).
	replace(size/9, "pbskids.com", func(d *Domain) {
		d.Providers = []Provider{Cloudflare}
		d.Category = category.ChildEducation
		d.GeoRules[Cloudflare] = &GeoRule{
			Action: ActionBlock,
			Countries: map[geo.CountryCode]bool{
				"IR": true, "SY": true, "SD": true, "CU": true, "KP": true,
			},
		}
	})

	// Airbnb's country-TLD fleet: custom page, Iran/Syria/Crimea/North
	// Korea only (§4.2.2).
	airbnbTLDs := []string{"fr", "it", "de", "es", "jp", "in", "au", "br", "sg", "ru", "nl", "pl", "ca", "mx"}
	n := g.cfg.scaled(g.cfg.AirbnbTLDCount)
	for i := 0; i < n && i < len(airbnbTLDs); i++ {
		idx := size/2 + i*17
		if idx >= size {
			break
		}
		replace(idx, "airbnb."+airbnbTLDs[i], func(d *Domain) {
			d.Providers = []Provider{Akamai}
			d.Category = category.Travel
			d.AirbnbStyle = true
			d.BotSensitivity = 0
		})
	}
}

// assignTop1MCustomers draws the CDN customer population of the long
// tail: exact per-provider counts at uniformly random ranks above the
// Top 10K, with a configured number of dual-provider domains.
func (g *generator) assignTop1MCustomers(rng *stats.RNG) {
	cfg := g.cfg
	w := g.w
	lo := len(w.top10k) + 1
	hi := cfg.Top1MRanks

	pick := func() int {
		for {
			r := lo + rng.Intn(hi-lo+1)
			if _, taken := w.customers[r]; !taken {
				return r
			}
		}
	}

	for _, p := range []Provider{Cloudflare, CloudFront, Akamai, Incapsula, AppEngine} {
		n := cfg.scaled(cfg.Top1MProviderCounts[p])
		for i := 0; i < n; i++ {
			rank := pick()
			seed := customerSeed{providers: []Provider{p}}
			switch p {
			case Cloudflare:
				seed.nsDetectable = rng.Bool(0.020)
			case Akamai:
				seed.nsDetectable = rng.Bool(0.383)
			case AppEngine:
				seed.gaeHosted = rng.Bool(cfg.GAEHostedRateTop1M)
			}
			w.customers[rank] = seed
		}
	}

	// Dual-provider customers: add a second service to existing ones
	// (the paper's zales.com carried both Incapsula and Akamai headers).
	ranks := sortedRanks(w.customers)
	dual := cfg.scaled(cfg.Top1MDualProvider)
	if dual > len(ranks) {
		dual = len(ranks)
	}
	for _, i := range rng.SampleInts(len(ranks), dual) {
		rank := ranks[i]
		seed := w.customers[rank]
		second := []Provider{Incapsula, Akamai, Cloudflare, CloudFront}[rng.Intn(4)]
		if second != seed.providers[0] {
			seed.providers = append(seed.providers, second)
			w.customers[rank] = seed
		}
	}
}

// buildCustomer materializes a Top-1M customer domain. Called lazily
// under w.mu.
func (w *World) buildCustomer(rank int, seed customerSeed) *Domain {
	rng := stats.NewRNG(w.seed).Fork("cust").Fork(itoa(rank))
	tld := tldWeightedPick(rng)
	name := fmt.Sprintf("r%d-site.%s", rank, tld)
	d := &Domain{
		Name:         name,
		Rank:         rank,
		TLD:          tld,
		Category:     pickCategoryTop1M(rng),
		Providers:    seed.providers,
		NSDetectable: seed.nsDetectable,
		GAEHosted:    seed.gaeHosted,
		Origin:       newOrigin(name, rng),
		GeoRules:     map[Provider]*GeoRule{},
	}
	g := &generator{cfg: &w.Cfg, w: w}
	// Population pathologies are rarer in the Top 1M sample (§5.1.3:
	// 26 of 6,180 never responded, 3 Luminati-refused).
	switch {
	case rng.Bool(0.0005):
		d.LuminatiRestricted = true
	case rng.Bool(0.004):
		d.Unreachable = true
	default:
		if rng.Bool(0.5) {
			d.RedirectHops = 1 + rng.Intn(2)
		}
	}
	if rng.Bool(0.004) || (category.IsRiskyTop1M(d.Category) && rng.Bool(0.02)) {
		d.OnCitizenLab = true
	}
	g.assignPoliciesLocked(d, rng)
	g.assignCensorshipForDomain(d, rng)

	// The cameo dual-provider customer.
	if len(seed.providers) == 2 && seed.providers[0] == Incapsula && seed.providers[1] == Akamai && w.lazyZales == false {
		d.Name = "zales.com"
		d.TLD = "com"
		d.Category = category.Shopping
		d.Origin = newOrigin(d.Name, rng)
		w.lazyZales = true
	}
	return d
}

// assignPoliciesLocked is assignPolicies for lazily built customers
// (the generator here has no name registry; policies only).
func (g *generator) assignPoliciesLocked(d *Domain, rng *stats.RNG) {
	g.assignPolicies(d, rng, true)
}

// buildCitizenLab assembles the test list: flagged population domains
// plus the rest of the global list — sensitive sites outside the
// popular-site populations. The extras are materialized as real,
// servable domains because the OONI analysis (§7.1) probes them: they
// are heavily censored, and they geoblock at a much higher rate than
// popular sites (the paper finds 9% of the global list serving CDN
// block pages somewhere — controversial content attracts geographic
// restriction).
func (g *generator) buildCitizenLab(rng *stats.RNG) {
	var listed []string
	for _, d := range g.w.top10k {
		if d.OnCitizenLab {
			listed = append(listed, d.Name)
		}
	}
	extras := g.cfg.scaled(g.cfg.CitizenLabExtra)
	for i := 0; i < extras; i++ {
		d := g.buildCLExtra(i, rng.Fork("cl-extra-"+itoa(i)))
		g.w.byName[d.Name] = d
		g.w.clExtras = append(g.w.clExtras, d)
		listed = append(listed, d.Name)
	}
	g.w.CitizenLab = citizenlab.Build(rng, listed, 0, CensorCountries())
}

// clExtraCategories is the content mix of the non-popular test-list
// entries: news, forums, political/social content.
var clExtraCategories = []category.Category{
	category.NewsMedia, category.Newsgroups, category.Society,
	category.PersonalSites, category.Reference, category.Advertising,
}

// buildCLExtra synthesizes one test-list domain outside the rank space.
func (g *generator) buildCLExtra(i int, rng *stats.RNG) *Domain {
	name := fmt.Sprintf("testlist-%04d.example", i)
	d := &Domain{
		Name:         name,
		Rank:         0, // outside the Alexa rank space
		TLD:          "example",
		Category:     clExtraCategories[rng.Intn(len(clExtraCategories))],
		Providers:    []Provider{pickHosting(rng)},
		Origin:       newOrigin(name, rng),
		GeoRules:     map[Provider]*GeoRule{},
		OnCitizenLab: true,
	}
	highRisk := g.highRiskCountries()
	measurable := g.w.Geo.Measurable()
	switch {
	case rng.Bool(0.35):
		d.Providers = []Provider{Cloudflare}
		if rng.Bool(0.18) {
			if rng.Bool(0.3) {
				// A minority of restricted test-list sites segment wide
				// swaths of the world, spreading the OONI confound far
				// beyond the sanctioned set.
				d.GeoRules[Cloudflare] = g.wideBlockRule(rng, measurable)
			} else {
				d.GeoRules[Cloudflare] = g.scatteredBlockRule(rng, highRisk, measurable)
			}
		} else if rng.Bool(0.10) {
			d.GeoRules[Cloudflare] = g.challengeRule(rng, ActionCaptcha, highRisk, measurable)
		}
	case rng.Bool(0.08):
		d.Providers = []Provider{Akamai}
		if rng.Bool(g.cfg.ReputationProneRate) {
			d.ReputationSensitivity = g.cfg.ReputationMin + g.cfg.ReputationSpan*rng.Float64()
		}
	case rng.Bool(0.05):
		d.Providers = []Provider{AppEngine}
		d.GAEHosted = rng.Bool(0.5)
	case rng.Bool(0.04):
		d.Providers = []Provider{CloudFront}
		if rng.Bool(0.1) {
			d.GeoRules[CloudFront] = g.wideBlockRule(rng, measurable)
		}
	}
	// Test-list content is censored far more aggressively than popular
	// sites.
	for _, cc := range CensorCountries() {
		aggr := censorAggressiveness[cc]
		if rng.Bool(clamp01(g.cfg.CensorRate * aggr / 3)) {
			if d.CensoredIn == nil {
				d.CensoredIn = map[geo.CountryCode]bool{}
			}
			d.CensoredIn[cc] = true
		}
	}
	return d
}

// assignCensorship marks which Top-10K domains national filters block.
func (g *generator) assignCensorship(rng *stats.RNG) {
	for _, d := range g.w.top10k {
		g.assignCensorshipForDomain(d, rng.Fork(d.Name))
	}
}

func (g *generator) assignCensorshipForDomain(d *Domain, rng *stats.RNG) {
	cfg := g.cfg
	// Iterate in the stable order: RNG draws must not depend on map
	// iteration.
	for _, cc := range CensorCountries() {
		aggr := censorAggressiveness[cc]
		p := cfg.NonListedCensorRate * aggr
		if d.OnCitizenLab {
			p = cfg.CensorRate * aggr / 3
		}
		if rng.Bool(clamp01(p)) {
			if d.CensoredIn == nil {
				d.CensoredIn = map[geo.CountryCode]bool{}
			}
			d.CensoredIn[cc] = true
		}
	}
}

func pickHosting(rng *stats.RNG) Provider {
	switch {
	case rng.Bool(0.50):
		return OriginNginx
	case rng.Bool(0.05):
		return OriginVarnish
	default:
		return OriginApache
	}
}

func newOrigin(name string, rng *stats.RNG) *blockpage.OriginSite {
	return blockpage.NewOriginSite(name, rng.Fork("origin"))
}

func pickCategoryTop1M(rng *stats.RNG) category.Category {
	weights := category.Top1MWeights()
	ws := make([]float64, len(weights))
	for i, cw := range weights {
		ws[i] = cw.W
	}
	return weights[rng.WeightedChoice(ws)].Cat
}

func tldWeightedPick(rng *stats.RNG) string {
	ws := make([]float64, len(tldWeights))
	for i, t := range tldWeights {
		ws[i] = t.W
	}
	return tldWeights[rng.WeightedChoice(ws)].TLD
}

// poisson draws from a Poisson distribution by summing exponential
// inter-arrival times; mean is small everywhere it is used.
func poisson(rng *stats.RNG, mean float64) int {
	if mean <= 0 {
		return 0
	}
	n, sum := 0, 0.0
	for {
		sum += rng.ExpFloat64()
		if sum > mean || n > 1000 {
			return n
		}
		n++
	}
}

func clamp01(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 0.95 {
		return 0.95
	}
	return p
}
