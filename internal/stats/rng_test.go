package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestForkStable(t *testing.T) {
	r := NewRNG(7)
	c1 := r.Fork("world")
	c2 := r.Fork("world")
	if c1.Uint64() != c2.Uint64() {
		t.Fatal("fork with same label not stable")
	}
	c3 := r.Fork("proxy")
	c4 := r.Fork("world")
	if c3.Uint64() == c4.Uint64() {
		t.Fatal("forks with different labels collide")
	}
}

func TestForkDoesNotAdvanceParent(t *testing.T) {
	a := NewRNG(9)
	b := NewRNG(9)
	a.Fork("x")
	if a.Uint64() != b.Uint64() {
		t.Fatal("Fork advanced parent stream")
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(5)
	if err := quick.Check(func(_ int) bool {
		f := r.Float64()
		return f >= 0 && f < 1
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Uniformish(t *testing.T) {
	r := NewRNG(11)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean %v too far from 0.5", mean)
	}
}

func TestBoolExtremes(t *testing.T) {
	r := NewRNG(2)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(13)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) rate = %v", got)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(17)
	var sum, sumSq float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(19)
	for n := 0; n < 50; n++ {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSampleIntsDistinct(t *testing.T) {
	r := NewRNG(23)
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw)%100 + 1
		k := int(kRaw) % (n + 1)
		s := r.SampleInts(n, k)
		if len(s) != k {
			return false
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleIntsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).SampleInts(3, 4)
}

func TestSampleElements(t *testing.T) {
	r := NewRNG(29)
	in := []string{"a", "b", "c", "d", "e"}
	out := Sample(r, in, 3)
	if len(out) != 3 {
		t.Fatalf("got %d elements", len(out))
	}
	seen := map[string]bool{}
	for _, v := range out {
		if seen[v] {
			t.Fatalf("duplicate element %q", v)
		}
		seen[v] = true
	}
}

func TestWeightedChoice(t *testing.T) {
	r := NewRNG(31)
	w := []float64{0, 1, 3, 0}
	counts := make([]int, len(w))
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.WeightedChoice(w)]++
	}
	if counts[0] != 0 || counts[3] != 0 {
		t.Fatal("zero-weight index chosen")
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if math.Abs(ratio-3) > 0.2 {
		t.Fatalf("weight ratio = %v, want ~3", ratio)
	}
}

func TestWeightedChoicePanicsAllZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).WeightedChoice([]float64{0, 0})
}

func TestZipfRanksInRange(t *testing.T) {
	r := NewRNG(37)
	z := NewZipf(r, 1000, 1.1)
	for i := 0; i < 10000; i++ {
		k := z.Rank()
		if k < 1 || k > 1000 {
			t.Fatalf("rank %d out of range", k)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(41)
	z := NewZipf(r, 1000, 1.2)
	counts := map[int]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Rank()]++
	}
	if counts[1] <= counts[100] {
		t.Fatalf("rank 1 (%d) not more common than rank 100 (%d)", counts[1], counts[100])
	}
	if counts[1] < n/20 {
		t.Fatalf("rank 1 count %d suspiciously low for Zipf", counts[1])
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := NewRNG(43)
	s := []int{1, 2, 3, 4, 5, 6}
	Shuffle(r, s)
	sum := 0
	for _, v := range s {
		sum += v
	}
	if sum != 21 || len(s) != 6 {
		t.Fatalf("shuffle lost elements: %v", s)
	}
}
