package stats

import (
	"fmt"
	"math"
	"sort"
)

// CDF is an empirical cumulative distribution function over float64
// observations. The zero value is empty; add observations with Add and
// finalize implicitly on first query.
type CDF struct {
	values []float64
	sorted bool
}

// NewCDF returns a CDF pre-populated with the given values.
func NewCDF(values ...float64) *CDF {
	c := &CDF{}
	for _, v := range values {
		c.Add(v)
	}
	return c
}

// Add records one observation.
func (c *CDF) Add(v float64) {
	c.values = append(c.values, v)
	c.sorted = false
}

// Len reports the number of observations.
func (c *CDF) Len() int { return len(c.values) }

func (c *CDF) ensure() {
	if !c.sorted {
		sort.Float64s(c.values)
		c.sorted = true
	}
}

// P returns the empirical probability that an observation is <= x.
// It returns 0 for an empty CDF.
func (c *CDF) P(x float64) float64 {
	if len(c.values) == 0 {
		return 0
	}
	c.ensure()
	i := sort.SearchFloat64s(c.values, x)
	// Advance past equal values so P is right-continuous (<= x).
	for i < len(c.values) && c.values[i] == x {
		i++
	}
	return float64(i) / float64(len(c.values))
}

// Quantile returns the q-th quantile (0 <= q <= 1) using nearest-rank.
// It panics on an empty CDF or q outside [0, 1].
func (c *CDF) Quantile(q float64) float64 {
	if len(c.values) == 0 {
		panic("stats: Quantile of empty CDF")
	}
	if q < 0 || q > 1 {
		panic("stats: Quantile with q outside [0,1]")
	}
	c.ensure()
	if q == 0 {
		return c.values[0]
	}
	i := int(math.Ceil(q*float64(len(c.values)))) - 1
	if i < 0 {
		i = 0
	}
	return c.values[i]
}

// Points returns up to n evenly spaced (x, P(X<=x)) points suitable for
// plotting the CDF as a line series. Fewer points are returned if there
// are fewer distinct observations.
func (c *CDF) Points(n int) []Point {
	if len(c.values) == 0 || n <= 0 {
		return nil
	}
	c.ensure()
	var pts []Point
	prev := math.Inf(-1)
	step := len(c.values) / n
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(c.values); i += step {
		v := c.values[i]
		if v == prev {
			continue
		}
		prev = v
		pts = append(pts, Point{X: v, Y: float64(i+1) / float64(len(c.values))})
	}
	last := c.values[len(c.values)-1]
	if len(pts) == 0 || pts[len(pts)-1].X != last {
		pts = append(pts, Point{X: last, Y: 1})
	}
	return pts
}

// Point is one (x, y) sample of a series.
type Point struct {
	X, Y float64
}

// Series is a named sequence of points, the unit figures are built from.
type Series struct {
	Name   string
	Points []Point
}

// Mean returns the arithmetic mean of vs, or 0 for an empty slice.
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var sum float64
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// Median returns the nearest-rank median of vs. It panics on empty input.
func Median(vs []float64) float64 {
	if len(vs) == 0 {
		panic("stats: Median of empty slice")
	}
	c := NewCDF(vs...)
	return c.Quantile(0.5)
}

// MedianInts is Median over ints, returned as float64 (the average of
// the two central elements for even lengths, matching common usage when
// the paper reports e.g. "a median of 3 domains").
func MedianInts(vs []int) float64 {
	if len(vs) == 0 {
		panic("stats: MedianInts of empty slice")
	}
	s := append([]int(nil), vs...)
	sort.Ints(s)
	n := len(s)
	if n%2 == 1 {
		return float64(s[n/2])
	}
	return float64(s[n/2-1]+s[n/2]) / 2
}

// Histogram counts observations into fixed-width bins over [min, max].
type Histogram struct {
	Min, Max float64
	Counts   []int
	under    int
	over     int
	total    int
}

// NewHistogram builds a histogram with n bins spanning [min, max].
func NewHistogram(min, max float64, n int) *Histogram {
	if n <= 0 || max <= min {
		panic("stats: NewHistogram with invalid parameters")
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, n)}
}

// Add records one observation; out-of-range values are tallied in
// underflow/overflow counters rather than dropped.
func (h *Histogram) Add(v float64) {
	h.total++
	if v < h.Min {
		h.under++
		return
	}
	if v >= h.Max {
		if v == h.Max {
			h.Counts[len(h.Counts)-1]++
			return
		}
		h.over++
		return
	}
	width := (h.Max - h.Min) / float64(len(h.Counts))
	i := int((v - h.Min) / width)
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
}

// Total reports the number of observations including out-of-range ones.
func (h *Histogram) Total() int { return h.total }

// MergeCounts folds externally accumulated observations into the
// histogram: counts adds bin-wise (its length must match the bin count;
// nil adds nothing in-range) and outOfRange observations land in the
// overflow tally. Merging is commutative, so histograms accumulated in
// pieces — per-shard telemetry staging, say — total the same as one
// accumulated live.
func (h *Histogram) MergeCounts(counts []int, outOfRange int) {
	for i, c := range counts {
		h.Counts[i] += c
		h.total += c
	}
	h.over += outOfRange
	h.total += outOfRange
}

// Fractions returns the in-range bin fractions of all observations.
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.Counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.total)
	}
	return out
}

// BinCenter returns the center x-value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	width := (h.Max - h.Min) / float64(len(h.Counts))
	return h.Min + width*(float64(i)+0.5)
}

// Counter tallies occurrences of string keys; it underlies the
// by-country / by-category / by-TLD tables.
type Counter struct {
	counts map[string]int
}

// NewCounter returns an empty Counter.
func NewCounter() *Counter { return &Counter{counts: make(map[string]int)} }

// Inc adds n to key's tally.
func (c *Counter) Inc(key string, n int) { c.counts[key] += n }

// Get returns key's tally.
func (c *Counter) Get(key string) int { return c.counts[key] }

// Len returns the number of distinct keys.
func (c *Counter) Len() int { return len(c.counts) }

// Total returns the sum of all tallies.
func (c *Counter) Total() int {
	var t int
	for _, n := range c.counts {
		t += n
	}
	return t
}

// KV is one key/count pair of a Counter in sorted order.
type KV struct {
	Key   string
	Count int
}

// Sorted returns all entries ordered by descending count, breaking ties
// by ascending key for deterministic output.
func (c *Counter) Sorted() []KV {
	out := make([]KV, 0, len(c.counts))
	for k, n := range c.counts {
		out = append(out, KV{k, n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// TopN returns the n highest entries (or fewer).
func (c *Counter) TopN(n int) []KV {
	s := c.Sorted()
	if len(s) > n {
		s = s[:n]
	}
	return s
}

// Pct formats a ratio as a percentage string with one decimal, e.g.
// "58.3%". It is the formatting the paper's tables use.
func Pct(num, den int) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(num)/float64(den))
}
