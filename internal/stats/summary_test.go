package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestCDFEmpty(t *testing.T) {
	var c CDF
	if c.P(10) != 0 {
		t.Fatal("empty CDF P != 0")
	}
	if c.Len() != 0 {
		t.Fatal("empty CDF Len != 0")
	}
}

func TestCDFBasics(t *testing.T) {
	c := NewCDF(1, 2, 3, 4)
	cases := []struct {
		x    float64
		want float64
	}{
		{0, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {100, 1},
	}
	for _, tc := range cases {
		if got := c.P(tc.x); got != tc.want {
			t.Errorf("P(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestCDFMonotonic(t *testing.T) {
	r := NewRNG(1)
	c := &CDF{}
	for i := 0; i < 500; i++ {
		c.Add(r.NormFloat64() * 10)
	}
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		return c.P(lo) <= c.P(hi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	c := NewCDF(10, 20, 30, 40, 50)
	if got := c.Quantile(0.5); got != 30 {
		t.Fatalf("median = %v", got)
	}
	if got := c.Quantile(0); got != 10 {
		t.Fatalf("q0 = %v", got)
	}
	if got := c.Quantile(1); got != 50 {
		t.Fatalf("q1 = %v", got)
	}
}

func TestQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(&CDF{}).Quantile(0.5)
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF(1, 1, 2, 3, 3, 3, 9)
	pts := c.Points(100)
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X <= pts[i-1].X {
			t.Fatalf("x not strictly increasing: %v", pts)
		}
		if pts[i].Y < pts[i-1].Y {
			t.Fatalf("y not monotone: %v", pts)
		}
	}
	if last := pts[len(pts)-1]; last.Y != 1 {
		t.Fatalf("final point y = %v, want 1", last.Y)
	}
}

func TestMeanMedian(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Fatalf("Mean = %v", m)
	}
	if m := Mean(nil); m != 0 {
		t.Fatalf("Mean(nil) = %v", m)
	}
	if m := Median([]float64{5, 1, 3}); m != 3 {
		t.Fatalf("Median = %v", m)
	}
	if m := MedianInts([]int{4, 1, 2, 3}); m != 2.5 {
		t.Fatalf("MedianInts even = %v", m)
	}
	if m := MedianInts([]int{7}); m != 7 {
		t.Fatalf("MedianInts single = %v", m)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{-1, 0, 1.9, 2, 9.99, 10, 11} {
		h.Add(v)
	}
	if h.Total() != 7 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.under != 1 || h.over != 1 {
		t.Fatalf("under/over = %d/%d", h.under, h.over)
	}
	// 0 and 1.9 in bin 0; 2 in bin 1; 9.99 and 10 in bin 4.
	want := []int{2, 1, 0, 0, 2}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Fatalf("bin %d = %d, want %d (%v)", i, c, want[i], h.Counts)
		}
	}
	fr := h.Fractions()
	var sum float64
	for _, f := range fr {
		sum += f
	}
	if math.Abs(sum-5.0/7.0) > 1e-12 {
		t.Fatalf("fractions sum = %v", sum)
	}
	if bc := h.BinCenter(0); bc != 1 {
		t.Fatalf("bin center = %v", bc)
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Inc("iran", 3)
	c.Inc("syria", 5)
	c.Inc("iran", 1)
	c.Inc("cuba", 4)
	if c.Get("iran") != 4 || c.Total() != 13 || c.Len() != 3 {
		t.Fatal("counter arithmetic wrong")
	}
	s := c.Sorted()
	if s[0].Key != "syria" || s[1].Key != "cuba" || s[2].Key != "iran" {
		t.Fatalf("sorted order wrong: %v", s)
	}
	top := c.TopN(2)
	if len(top) != 2 || top[0].Key != "syria" {
		t.Fatalf("TopN wrong: %v", top)
	}
}

func TestCounterTieBreakDeterministic(t *testing.T) {
	c := NewCounter()
	c.Inc("b", 2)
	c.Inc("a", 2)
	s := c.Sorted()
	if s[0].Key != "a" {
		t.Fatalf("ties must sort by key: %v", s)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(583, 1000); got != "58.3%" {
		t.Fatalf("Pct = %q", got)
	}
	if got := Pct(1, 0); got != "n/a" {
		t.Fatalf("Pct div0 = %q", got)
	}
}

func TestQuantileMatchesSort(t *testing.T) {
	r := NewRNG(99)
	f := func(n uint8) bool {
		size := int(n)%50 + 1
		vs := make([]float64, size)
		for i := range vs {
			vs[i] = r.Float64() * 100
		}
		c := NewCDF(vs...)
		sorted := append([]float64(nil), vs...)
		sort.Float64s(sorted)
		return c.Quantile(1) == sorted[size-1] && c.Quantile(0) == sorted[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
