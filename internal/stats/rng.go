// Package stats provides the deterministic random-number generation,
// sampling, and summary-statistics primitives shared by the rest of the
// geoblock reproduction. Every stochastic component of the simulated
// world is driven by an explicit *RNG so that a study run with a given
// seed is exactly reproducible.
package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random generator based on
// splitmix64. It is not safe for concurrent use; derive independent
// streams with Fork instead of sharing one generator across goroutines.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two generators built from
// the same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Fork derives an independent child generator from the current state and
// a label. The parent stream is not advanced, so forks are stable: the
// same (state, label) pair always yields the same child. Use distinct
// labels for distinct subsystems.
func (r *RNG) Fork(label string) *RNG {
	h := r.state
	for _, b := range []byte(label) {
		h ^= uint64(b)
		h *= 0x100000001b3
	}
	return NewRNG(mix(h))
}

// Mix64 applies the splitmix64 finalizer to z: a cheap, high-quality
// bit mixer for deriving per-item seeds from counters.
func Mix64(z uint64) uint64 { return mix(z) }

func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return mix(r.state)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate using the Box–Muller
// transform.
func (r *RNG) NormFloat64() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes s in place.
func Shuffle[T any](r *RNG, s []T) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// SampleInts returns k distinct integers drawn uniformly from [0, n)
// in random order. It panics if k > n or k < 0.
func (r *RNG) SampleInts(n, k int) []int {
	if k < 0 || k > n {
		panic("stats: SampleInts with k out of range")
	}
	// Floyd's algorithm: O(k) expected work, no O(n) allocation for
	// small k; fall back to a partial shuffle when k is a large
	// fraction of n.
	if k > n/2 {
		p := r.Perm(n)
		return p[:k]
	}
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := r.Intn(j + 1)
		if _, dup := chosen[t]; dup {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	Shuffle(r, out)
	return out
}

// Sample returns k distinct elements of s drawn uniformly without
// replacement.
func Sample[T any](r *RNG, s []T, k int) []T {
	idx := r.SampleInts(len(s), k)
	out := make([]T, len(idx))
	for i, j := range idx {
		out[i] = s[j]
	}
	return out
}

// WeightedChoice returns an index in [0, len(weights)) with probability
// proportional to weights[i]. Zero or negative weights are treated as
// zero. It panics if no weight is positive.
func (r *RNG) WeightedChoice(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		panic("stats: WeightedChoice with no positive weight")
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if x < w {
			return i
		}
		x -= w
	}
	// Floating-point slack: return the last positive-weight index.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	panic("unreachable")
}

// Zipf draws ranks in [1, n] following a Zipf distribution with the
// given exponent s > 0, using rejection-inversion. It is used to model
// popularity-skewed request and domain distributions.
type Zipf struct {
	rng         *RNG
	n           int
	s           float64
	hIntegralX1 float64
	hIntegralN  float64
	sDivided    float64
}

// NewZipf returns a Zipf sampler over ranks 1..n with exponent s.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n < 1 || s <= 0 {
		panic("stats: NewZipf with invalid parameters")
	}
	z := &Zipf{rng: rng, n: n, s: s}
	z.hIntegralX1 = z.hIntegral(1.5) - 1
	z.hIntegralN = z.hIntegral(float64(n) + 0.5)
	z.sDivided = 2 - z.hIntegralInverse(z.hIntegral(2.5)-z.h(2))
	return z
}

func (z *Zipf) h(x float64) float64 { return math.Exp(-z.s * math.Log(x)) }

func (z *Zipf) hIntegral(x float64) float64 {
	logX := math.Log(x)
	return helper2((1-z.s)*logX) * logX
}

func (z *Zipf) hIntegralInverse(x float64) float64 {
	t := x * (1 - z.s)
	if t < -1 {
		t = -1
	}
	return math.Exp(helper1(t) * x)
}

func helper1(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Log1p(x) / x
	}
	return 1 - x*(0.5-x*(1./3.-0.25*x))
}

func helper2(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Expm1(x) / x
	}
	return 1 + x*0.5*(1+x*(1./3.)*(1+0.25*x))
}

// Rank draws a rank in [1, n].
func (z *Zipf) Rank() int {
	for {
		u := z.hIntegralN + z.rng.Float64()*(z.hIntegralX1-z.hIntegralN)
		x := z.hIntegralInverse(u)
		k := math.Round(x)
		if k < 1 {
			k = 1
		} else if k > float64(z.n) {
			k = float64(z.n)
		}
		if k-x <= z.sDivided || u >= z.hIntegral(k+0.5)-z.h(k) {
			return int(k)
		}
	}
}
