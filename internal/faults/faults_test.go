package faults

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"

	"geoblock/internal/geo"
	"geoblock/internal/proxy"
	"geoblock/internal/telemetry"
	"geoblock/internal/vnet"
)

func TestDeterministicVerdicts(t *testing.T) {
	p := Profile{DarkExits: 0.3, ExitFailure: 0.2, Stall: 0.1, Truncate: 0.1, Churn: 0.4, Brownout: 0.3}
	a := New(9).Default(p)
	b := New(9).Default(p)
	for i := 0; i < 500; i++ {
		exit := geo.IP(i * 7919)
		cc := geo.CountryCode("IR")
		if a.ExitDark(cc, exit) != b.ExitDark(cc, exit) {
			t.Fatal("ExitDark diverged for identical seeds")
		}
		if a.Churned(cc, exit, i%10) != b.Churned(cc, exit, i%10) {
			t.Fatal("Churned diverged for identical seeds")
		}
		if a.Brownout(cc, uint64(i), i%3) != b.Brownout(cc, uint64(i), i%3) {
			t.Fatal("Brownout diverged for identical seeds")
		}
		if a.Request(cc, exit, "x.com", uint64(i)) != b.Request(cc, exit, "x.com", uint64(i)) {
			t.Fatal("Request diverged for identical seeds")
		}
	}
	// A different seed must not reproduce the same dark set.
	c := New(10).Default(p)
	same := 0
	for i := 0; i < 500; i++ {
		if a.ExitDark("IR", geo.IP(i*7919)) == c.ExitDark("IR", geo.IP(i*7919)) {
			same++
		}
	}
	if same == 500 {
		t.Fatal("seeds 9 and 10 drew identical dark sets")
	}
}

func TestDarkFractionTracksProfile(t *testing.T) {
	in := New(21).Default(Profile{DarkExits: 0.5})
	dark := 0
	const n = 4000
	for i := 0; i < n; i++ {
		if in.ExitDark("BR", geo.IP(i)) {
			dark++
		}
	}
	frac := float64(dark) / n
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("dark fraction %.3f for DarkExits 0.5", frac)
	}
}

func TestPerCountryOverride(t *testing.T) {
	in := New(4).Country("IR", Profile{DarkExits: 1})
	for i := 0; i < 100; i++ {
		if !in.ExitDark("IR", geo.IP(i)) {
			t.Fatal("IR exit not dark under DarkExits 1")
		}
		if in.ExitDark("US", geo.IP(i)) {
			t.Fatal("US exit dark with no default profile")
		}
	}
}

func TestBrownoutClears(t *testing.T) {
	in := New(8).Default(Profile{Brownout: 1, BrownoutLen: 2})
	if !in.Brownout("US", 5, 0) || !in.Brownout("US", 5, 1) {
		t.Fatal("brownout should cover attempts 0 and 1")
	}
	if in.Brownout("US", 5, 2) {
		t.Fatal("brownout should clear at attempt 2")
	}
	perm := New(8).Default(Profile{Brownout: 1, BrownoutLen: -1})
	if !perm.Brownout("US", 5, 1000) {
		t.Fatal("permanent brownout cleared")
	}
}

func TestChurnKillsAfterStableThreshold(t *testing.T) {
	in := New(6).Default(Profile{Churn: 1})
	exit := geo.IP(12345)
	death := -1
	for served := 0; served < churnSpan+2; served++ {
		if in.Churned("DE", exit, served) {
			death = served
			break
		}
	}
	if death < 1 || death > churnSpan {
		t.Fatalf("churned exit died at served=%d, want within [1, %d]", death, churnSpan)
	}
	// Once dead, dead for every larger served count.
	for served := death; served < death+5; served++ {
		if !in.Churned("DE", exit, served) {
			t.Fatalf("exit resurrected at served=%d", served)
		}
	}
}

func TestRequestSplitsOneDraw(t *testing.T) {
	in := New(30).Default(Profile{ExitFailure: 0.2, Stall: 0.2, Truncate: 0.2})
	counts := map[proxy.FaultVerdict]int{}
	const n = 4000
	for i := 0; i < n; i++ {
		counts[in.Request("RU", geo.IP(i), "a.com", uint64(i))]++
	}
	for _, v := range []proxy.FaultVerdict{proxy.FaultExitDown, proxy.FaultStall, proxy.FaultTruncate} {
		frac := float64(counts[v]) / n
		if frac < 0.15 || frac > 0.25 {
			t.Fatalf("verdict %d drawn at %.3f, want ≈0.2", v, frac)
		}
	}
	if frac := float64(counts[proxy.FaultNone]) / n; frac < 0.35 || frac > 0.45 {
		t.Fatalf("clean fraction %.3f, want ≈0.4", frac)
	}
}

func TestNamedProfiles(t *testing.T) {
	names := Names()
	if len(names) < 6 {
		t.Fatalf("only %d named profiles; the chaos matrix needs 6+", len(names))
	}
	for _, n := range names {
		p, ok := Named(n)
		if !ok {
			t.Fatalf("Names lists %q but Named rejects it", n)
		}
		if !p.active() {
			t.Fatalf("profile %q injects nothing", n)
		}
	}
	if _, ok := Named("nope"); ok {
		t.Fatal("Named accepted an unknown profile")
	}
}

// flatTripper serves a fixed body, standing in for a vnet stack.
type flatTripper struct{ body string }

func (f flatTripper) RoundTrip(*http.Request) (*http.Response, error) {
	h := http.Header{}
	h.Set("Content-Length", "1000")
	return &http.Response{
		StatusCode:    200,
		Header:        h,
		ContentLength: int64(len(f.body)),
		Body:          io.NopCloser(strings.NewReader(f.body)),
	}, nil
}

func TestWrapTransport(t *testing.T) {
	body := strings.Repeat("x", 1000)
	in := New(2).Default(Profile{Truncate: 1})
	rt := in.WrapTransport(flatTripper{body: body})

	ctx := vnet.WithSampleSeed(context.Background(), 77)
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, "http://site.com/", nil)
	resp, err := rt.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ContentLength != -1 || resp.Header.Get("Content-Length") != "" {
		t.Fatal("truncated response still advertises a length")
	}
	read, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatal("truncated body read to completion")
	}
	if len(read) >= len(body) {
		t.Fatalf("read %d bytes of %d despite truncation", len(read), len(body))
	}

	// Stall and exit-failure verdicts surface as typed transport errors.
	stall := New(2).Default(Profile{Stall: 1}).WrapTransport(flatTripper{body: body})
	if _, err := stall.RoundTrip(req); err == nil {
		t.Fatal("stall produced no error")
	} else if op, ok := err.(*vnet.OpError); !ok || !op.Timeout() {
		t.Fatalf("stall error = %v, want timeout OpError", err)
	}
	down := New(2).Default(Profile{ExitFailure: 1}).WrapTransport(flatTripper{body: body})
	if _, err := down.RoundTrip(req); err == nil {
		t.Fatal("exit failure produced no error")
	}

	// A clean profile passes the response through untouched.
	clean := New(2).WrapTransport(flatTripper{body: body})
	resp, err = clean.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := io.ReadAll(resp.Body); len(got) != len(body) {
		t.Fatalf("clean transport altered the body: %d bytes of %d", len(got), len(body))
	}
}

func TestStoreCrashSeededThreshold(t *testing.T) {
	// The kill point is a pure function of the seed: two injectors with
	// the same seed sever at the same record count, and the hook is a
	// threshold, not a coin flip — false below, true at and beyond.
	firstFire := func(in *Injector, span int64) int64 {
		crash := in.StoreCrash(span)
		for written := int64(0); written <= span+1; written++ {
			if crash(written) {
				for w := written; w <= span+1; w++ {
					if !crash(w) {
						t.Fatalf("crash hook un-fired at written=%d after firing at %d", w, written)
					}
				}
				return written
			}
		}
		t.Fatalf("crash hook never fired within span %d", span)
		return 0
	}

	for _, span := range []int64{1, 25, 200} {
		a := firstFire(New(7), span)
		b := firstFire(New(7), span)
		if a != b {
			t.Fatalf("span %d: same seed fired at %d and %d", span, a, b)
		}
		if a < 1 || a > span {
			t.Fatalf("span %d: kill point %d outside [1, %d]", span, a, span)
		}
	}

	// Different seeds spread the kill point across the span.
	points := map[int64]bool{}
	for seed := uint64(0); seed < 32; seed++ {
		points[firstFire(New(seed), 200)] = true
	}
	if len(points) < 2 {
		t.Fatal("32 seeds all chose the same kill point")
	}

	// A degenerate span clamps to 1: the very first append dies.
	if New(3).StoreCrash(0)(0) {
		t.Fatal("clamped hook fired before any record was appended")
	}
	if !New(3).StoreCrash(0)(1) {
		t.Fatal("clamped hook survived the first record")
	}

	// An instrumented injector tallies the fired sever.
	reg := telemetry.New()
	crash := New(3).Instrument(reg).StoreCrash(1)
	crash(5)
	snap := reg.Snapshot()
	var fired int64
	for _, c := range snap.Counters {
		if strings.Contains(c.Name, "store-crash") {
			fired = c.Value
		}
	}
	if fired != 1 {
		t.Fatalf("store-crash counter = %d, want 1", fired)
	}
}

// TestWorkerDeathSeededThreshold mirrors the StoreCrash contract for
// the fabric's worker kill hook: the death point is a pure function of
// the seed, drawn from [1, span], and latches — a worker that should
// have died never comes back.
func TestWorkerDeathSeededThreshold(t *testing.T) {
	firstFire := func(in *Injector, span int64) int64 {
		kill := in.WorkerDeath(span)
		for executed := int64(0); executed <= span+1; executed++ {
			if kill(executed) {
				for e := executed; e <= span+1; e++ {
					if !kill(e) {
						t.Fatalf("kill hook un-fired at executed=%d after firing at %d", e, executed)
					}
				}
				return executed
			}
		}
		t.Fatalf("kill hook never fired within span %d", span)
		return 0
	}

	for _, span := range []int64{1, 8, 100} {
		a := firstFire(New(7), span)
		b := firstFire(New(7), span)
		if a != b {
			t.Fatalf("span %d: same seed fired at %d and %d", span, a, b)
		}
		if a < 1 || a > span {
			t.Fatalf("span %d: kill point %d outside [1, %d]", span, a, span)
		}
		if other := firstFire(New(8), 100); span == 100 && other == a {
			// Different seeds *may* collide, but across a span of 100 a
			// collision is a 1% draw; treat it as a red flag.
			t.Logf("seeds 7 and 8 share kill point %d (possible but suspicious)", a)
		}
	}

	// A degenerate span clamps to 1: the worker dies on its first unit.
	if at := firstFire(New(3), 1); at != 1 {
		t.Fatalf("span 1 fired at %d, want 1", at)
	}
	kill := New(3).WorkerDeath(-5)
	if !kill(1) {
		t.Fatal("negative span did not clamp to die-on-first-unit")
	}

	// The fired verdict lands in the instrumented counter series.
	reg := telemetry.New()
	in := New(7).Instrument(reg)
	k := in.WorkerDeath(1)
	k(0)
	k(1)
	var fired int64
	for _, c := range reg.Snapshot().Counters {
		if strings.Contains(c.Name, "worker-death") {
			fired = c.Value
		}
	}
	if fired != 1 {
		t.Fatalf("worker-death counter = %d, want 1", fired)
	}
}

// TestInjectorSeedAccessor: replay reporting reads the seed back.
func TestInjectorSeedAccessor(t *testing.T) {
	if got := New(42).Seed(); got != 42 {
		t.Fatalf("Seed() = %d, want 42", got)
	}
}
