// Package faults is the deterministic fault-injection layer for the
// scan path: a seeded Injector that implements proxy.FaultHook (exit
// churn mid-session, dark-exit streaks, superproxy brownouts,
// slowloris stalls, truncated transfers, per-country failure-rate
// profiles) and a transport wrapper for vantage points that have no
// proxy mesh in front of them (the VPS fleet).
//
// The paper's Lumscan exists because the Luminati mesh is unreliable —
// dark exits, flaky superproxies, and mid-run churn are the normal
// case (§3). The deterministic world only simulates the calibrated
// baseline of that unreliability; this package manufactures the bad
// days, reproducibly, so the robustness suite can prove the scanner
// degrades gracefully instead of hanging, spinning, or poisoning
// downstream table math.
//
// Determinism contract: every verdict is a pure function of the
// injector's seed and the call's arguments. No mutable state, no wall
// time, no call-order dependence — so a scan under a fixed fault seed
// is byte-identical at any Concurrency, and a failure found in chaos
// testing replays from a single seed. The optional telemetry registry
// (Instrument) is a pure side channel: it counts fired verdicts and
// never feeds back into them, and because the engine's hook call
// pattern is schedule-independent, the counts themselves are
// deterministic too.
package faults

import (
	"io"
	"net/http"
	"sort"

	"geoblock/internal/geo"
	"geoblock/internal/proxy"
	"geoblock/internal/stats"
	"geoblock/internal/telemetry"
	"geoblock/internal/vnet"
)

// Profile is one country's (or the default) failure-rate profile. The
// zero value injects nothing.
type Profile struct {
	// DarkExits is the fraction of the country's exits that are dark
	// for the whole run: they fail the connectivity pre-check and every
	// request. 1.0 makes the country fully dark.
	DarkExits float64
	// ExitFailure is the extra per-request probability that the exit
	// connection fails at the superproxy.
	ExitFailure float64
	// Stall is the per-request probability that the connection stalls
	// until the client times out (slowloris-shaped failure).
	Stall float64
	// Truncate is the per-request probability that the response body is
	// cut mid-transfer.
	Truncate float64
	// Churn is the probability that a given exit dies mid-session: it
	// serves a small seed-determined number of requests on a sticky
	// stretch, then fails until the session rotates away.
	Churn float64
	// Brownout is the probability that the superproxy serving a given
	// session slot is browned out when the session opens.
	Brownout float64
	// BrownoutLen is how many consecutive open attempts a brownout
	// outlasts. Zero means DefaultBrownoutLen; negative means the
	// superproxy is down for good (every attempt fails).
	BrownoutLen int
}

// DefaultBrownoutLen is how many open attempts a transient brownout
// eats when the profile does not say otherwise.
const DefaultBrownoutLen = 2

// churnSpan bounds how many requests a churning exit serves before it
// dies (1..churnSpan).
const churnSpan = 8

// active reports whether the profile injects anything at all.
func (p Profile) active() bool { return p != Profile{} }

// Injector implements proxy.FaultHook from a single seed plus a
// default and optional per-country profiles. It is safe for concurrent
// use: all methods are pure (the metrics registry only ever counts).
type Injector struct {
	seed       uint64
	def        Profile
	perCountry map[geo.CountryCode]Profile
	metrics    *telemetry.Registry
}

// New returns an injector that injects nothing until profiles are set.
func New(seed uint64) *Injector {
	return &Injector{seed: seed, perCountry: map[geo.CountryCode]Profile{}}
}

// Default sets the profile applied to every country without its own.
// It returns the injector for chaining.
func (in *Injector) Default(p Profile) *Injector {
	in.def = p
	return in
}

// Country overrides the profile for one country.
func (in *Injector) Country(cc geo.CountryCode, p Profile) *Injector {
	in.perCountry[cc] = p
	return in
}

// Seed returns the injector's seed (for replay reporting).
func (in *Injector) Seed() uint64 { return in.seed }

// MetInjected is the fired-fault counter series, labeled by fault kind
// (brownout, dark, churn, exitdown, stall, truncate) and country
// ("vps" on the country-agnostic transport seam).
const MetInjected = "faults.injected"

// Instrument routes a counter per fired fault verdict into reg,
// labeled by kind and country. Call before the scan (the field is not
// synchronized); verdicts are unaffected. Returns the injector for
// chaining.
func (in *Injector) Instrument(reg *telemetry.Registry) *Injector {
	in.metrics = reg
	return in
}

// count tallies one fired verdict. Pure side channel: no influence on
// any verdict, and nil-safe when the injector is uninstrumented.
func (in *Injector) count(kind string, country string) {
	in.metrics.Counter(telemetry.Label(MetInjected, "kind", kind, "country", country)).Add(1)
}

func (in *Injector) profile(cc geo.CountryCode) Profile {
	if p, ok := in.perCountry[cc]; ok {
		return p
	}
	return in.def
}

// draw returns a uniform [0,1) float that is a pure function of the
// injector seed, a label, and the keys — the only randomness source in
// the package.
func (in *Injector) draw(label string, keys ...uint64) float64 {
	h := in.seed ^ hashString(label)
	for _, k := range keys {
		h = stats.Mix64(h ^ k)
	}
	return float64(stats.Mix64(h)>>11) / (1 << 53)
}

// Brownout implements proxy.FaultHook.
func (in *Injector) Brownout(cc geo.CountryCode, slot uint64, attempt int) bool {
	p := in.profile(cc)
	if p.Brownout <= 0 {
		return false
	}
	if in.draw("brownout", hashString(string(cc)), slot) >= p.Brownout {
		return false
	}
	length := p.BrownoutLen
	if length == 0 {
		length = DefaultBrownoutLen
	}
	fired := length < 0 || attempt < length
	if fired {
		in.count("brownout", string(cc))
	}
	return fired
}

// ExitDark implements proxy.FaultHook.
func (in *Injector) ExitDark(cc geo.CountryCode, exit geo.IP) bool {
	p := in.profile(cc)
	if p.DarkExits <= 0 {
		return false
	}
	fired := in.draw("dark", hashString(string(cc)), uint64(exit)) < p.DarkExits
	if fired {
		in.count("dark", string(cc))
	}
	return fired
}

// Churned implements proxy.FaultHook.
func (in *Injector) Churned(cc geo.CountryCode, exit geo.IP, served int) bool {
	p := in.profile(cc)
	if p.Churn <= 0 {
		return false
	}
	if in.draw("churn", hashString(string(cc)), uint64(exit)) >= p.Churn {
		return false
	}
	deathAt := 1 + int(stats.Mix64(in.seed^0xc4a12b^uint64(exit))%churnSpan)
	fired := served >= deathAt
	if fired {
		in.count("churn", string(cc))
	}
	return fired
}

// StoreCrash returns a runstore crash hook that severs the journal
// mid-record once the process has appended a seeded number of records,
// drawn uniformly from [1, span]. The threshold is a pure function of
// the injector's seed, so the kill-mid-write chaos profile crashes at
// the same record at any Concurrency — which is what lets the matrix
// assert crash → reopen → resume reproduces an uninterrupted run
// byte for byte.
func (in *Injector) StoreCrash(span int64) func(written int64) bool {
	if span < 1 {
		span = 1
	}
	at := 1 + int64(stats.Mix64(in.seed^hashString("kill-mid-write"))%uint64(span))
	return func(written int64) bool {
		fired := written >= at
		if fired {
			in.count("store-crash", "")
		}
		return fired
	}
}

// WorkerDeath returns a fabric worker kill hook: the worker dies after
// executing a seeded number of leased units, drawn uniformly from
// [1, span], without reporting the last one — mid-shard from the
// coordinator's view, exactly like a machine that lost power. The
// threshold is a pure function of the injector's seed; because unit
// execution is deterministic, the re-issued lease reproduces the dead
// worker's result bit for bit, which is what the fabric matrix asserts.
func (in *Injector) WorkerDeath(span int64) func(executed int64) bool {
	if span < 1 {
		span = 1
	}
	at := 1 + int64(stats.Mix64(in.seed^hashString("worker-death"))%uint64(span))
	return func(executed int64) bool {
		fired := executed >= at
		if fired {
			in.count("worker-death", "")
		}
		return fired
	}
}

// Request implements proxy.FaultHook: one draw, split across the
// profile's per-request rates.
func (in *Injector) Request(cc geo.CountryCode, exit geo.IP, host string, seed uint64) proxy.FaultVerdict {
	p := in.profile(cc)
	if p.ExitFailure <= 0 && p.Stall <= 0 && p.Truncate <= 0 {
		return proxy.FaultNone
	}
	u := in.draw("request", uint64(exit), hashString(host), seed)
	switch {
	case u < p.ExitFailure:
		in.count("exitdown", string(cc))
		return proxy.FaultExitDown
	case u < p.ExitFailure+p.Stall:
		in.count("stall", string(cc))
		return proxy.FaultStall
	case u < p.ExitFailure+p.Stall+p.Truncate:
		in.count("truncate", string(cc))
		return proxy.FaultTruncate
	}
	return proxy.FaultNone
}

// WrapTransport wraps rt with the injector's default profile's
// per-request faults (ExitFailure/Stall/Truncate), keyed by the
// per-sample seed in the request context. It is the fault seam for
// scan paths with no proxy mesh — the VPS fleet, or any consumer of
// scanner.Config.WrapTransport — and is country-agnostic by
// construction.
func (in *Injector) WrapTransport(rt http.RoundTripper) http.RoundTripper {
	return &faultTransport{in: in, next: rt}
}

type faultTransport struct {
	in   *Injector
	next http.RoundTripper
}

func (t *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	host := req.URL.Hostname()
	seed, _ := vnet.SampleSeed(req.Context())
	p := t.in.def
	u := t.in.draw("transport", hashString(host), seed)
	switch {
	case u < p.ExitFailure:
		t.in.count("exitdown", "vps")
		return nil, &vnet.OpError{Op: "proxy", Host: host, Msg: "injected: connection failed"}
	case u < p.ExitFailure+p.Stall:
		t.in.count("stall", "vps")
		return nil, vnet.TimeoutError("read", host)
	case u < p.ExitFailure+p.Stall+p.Truncate:
		resp, err := t.next.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		t.in.count("truncate", "vps")
		truncate(resp, seed)
		return resp, nil
	}
	return t.next.RoundTrip(req)
}

// truncate mirrors the proxy-level truncation fault for the transport
// seam: the advertised length disappears and reads die after a
// seed-determined prefix.
func truncate(resp *http.Response, seed uint64) {
	keep := int(stats.Mix64(seed^0x7c1) % 512)
	if resp.Header != nil {
		resp.Header = resp.Header.Clone()
		resp.Header.Del("Content-Length")
	}
	resp.ContentLength = -1
	resp.Body = &truncatedBody{inner: resp.Body, remaining: keep}
}

type truncatedBody struct {
	inner     io.ReadCloser
	remaining int
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, &vnet.OpError{Op: "read", Msg: "connection reset mid-transfer"}
	}
	if len(p) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.inner.Read(p)
	b.remaining -= n
	if err == io.EOF {
		return n, &vnet.OpError{Op: "read", Msg: "connection reset mid-transfer"}
	}
	return n, err
}

func (b *truncatedBody) Close() error { return b.inner.Close() }

// namedProfiles are the standing chaos scenarios shared by the CLIs
// (-faults) and the scanner's chaos test matrix.
var namedProfiles = map[string]Profile{
	// dark: every exit is dark — the country scans as a hard outage.
	"dark": {DarkExits: 1},
	// flaky50: half the inventory is dark and the rest drops a fifth of
	// requests — the mesh on a bad day, recoverable by rotation.
	"flaky50": {DarkExits: 0.5, ExitFailure: 0.2},
	// churn: every exit dies a few requests into its sticky stretch.
	"churn": {Churn: 1},
	// brownout: half the session slots hit a transient superproxy
	// brownout that clears after one failed open.
	"brownout": {Brownout: 0.5, BrownoutLen: 1},
	// blackout: every session open fails, permanently.
	"blackout": {Brownout: 1, BrownoutLen: -1},
	// slowloris: a third of requests stall until the client times out.
	"slowloris": {Stall: 0.35},
	// truncate: half of all transfers die mid-body.
	"truncate": {Truncate: 0.5},
	// mixed: a little of everything at once.
	"mixed": {DarkExits: 0.25, ExitFailure: 0.1, Stall: 0.1, Truncate: 0.1,
		Churn: 0.3, Brownout: 0.25, BrownoutLen: 1},
}

// Named returns the named chaos profile.
func Named(name string) (Profile, bool) {
	p, ok := namedProfiles[name]
	return p, ok
}

// Names lists the named chaos profiles, sorted.
func Names() []string {
	out := make([]string, 0, len(namedProfiles))
	for n := range namedProfiles {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func hashString(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
