// Package pipeline is the paper's semi-automated geoblocking detection
// system, end to end: safe-list filtering, the initial Lumscan snapshot,
// page-length outlier extraction, TF-IDF clustering with (simulated)
// manual cluster labeling, signature-driven identification of candidate
// pairs, targeted resampling, and the 80%-agreement confirmation step —
// for both the Alexa Top-10K study (§4) and the Top-1M CDN-customer
// study (§5), plus the §3.1 VPS exploration.
package pipeline

import (
	"context"
	"fmt"
	"sort"
	"strconv"

	"geoblock/internal/blockpage"
	"geoblock/internal/consistency"
	"geoblock/internal/fingerprint"
	"geoblock/internal/geo"
	"geoblock/internal/lumscan"
	"geoblock/internal/proxy"
	"geoblock/internal/runstore"
	"geoblock/internal/stats"
	"geoblock/internal/telemetry"
	"geoblock/internal/trace"
	"geoblock/internal/verdict"
	"geoblock/internal/worldgen"
)

// Study bundles the measurement infrastructure: the world under
// measurement, the residential proxy mesh, and the block-page
// classifier (which, in the paper's chronology, exists because an
// earlier run of the clustering stage discovered the signatures).
type Study struct {
	World      *worldgen.World
	Net        *proxy.Network
	Classifier *fingerprint.Classifier
	// Log, when non-nil, receives progress lines.
	Log func(format string, args ...any)
	// Ctx, when non-nil, cancels the study's scans (a cancelled study
	// returns partial results). Nil means context.Background().
	Ctx context.Context
	// Metrics receives counters and phase spans from every scan the
	// study runs. New installs a virtual-clock registry (deterministic
	// snapshots); replace it with telemetry.NewWithClock(telemetry.Wall{})
	// before running to time a real study. Never nil after New.
	Metrics *telemetry.Registry
	// Trace, when non-nil, receives wide events from every phase the
	// study runs: each scan invocation gets its own span context
	// (derived from the tracer's root and the journal key, so repeated
	// phases stay distinct) and a closing "pipeline/scan" event. Nil
	// means tracing off — zero overhead on the scan hot path.
	Trace *trace.Tracer
	// Store, when non-nil, journals every scan phase the study runs and
	// resumes interrupted phases from their checkpoints: completed
	// shards replay from disk instead of refetching. The journal must
	// come from the same study configuration (world seed and inputs) —
	// each phase's fingerprint is validated on resume.
	Store *runstore.Store
	// Runner, when non-nil, replaces the in-process engine for every
	// residential scan phase — the distributed fabric's coordinator
	// plugs in here. VPS phases always run in-process (the datacenter
	// fleet is cheap and local). The runner composes with Store: it runs
	// under the journal exactly where lumscan.ScanStream would.
	Runner ScanRunner
	// VerdictOut, when non-nil, receives the verdict snapshot compiled
	// from each completed study's confirmed findings — the serving
	// layer's feed. Called synchronously at the end of the study, after
	// the findings tables are final.
	VerdictOut func(*verdict.Snapshot)

	// phaseSeq counts scan invocations per phase name, so repeated
	// invocations (the explore verify loop) get distinct journal keys.
	// Study execution order is deterministic, so the keys are stable
	// across runs — which is what lets a resumed study find its work.
	phaseSeq map[string]int

	// scanErr holds the first scan abort the study observed (in
	// practice: ctx cancellation). Partial results are still returned —
	// that is the documented contract — but the abort stays visible
	// through Err instead of silently truncating the tables.
	scanErr error
}

// ScanRunner executes one residential scan phase. Its contract is the
// engine's: deliver samples to sink in canonical order, byte-identical
// to lumscan.ScanStream over the same inputs.
type ScanRunner func(ctx context.Context, domains []string, countries []geo.CountryCode, tasks []lumscan.Task, cfg lumscan.Config, sink lumscan.Sink) error

// New assembles a study over w with a fresh proxy mesh.
func New(w *worldgen.World) *Study {
	return &Study{
		World:      w,
		Net:        proxy.NewNetwork(w),
		Classifier: fingerprint.NewClassifier(),
		Metrics:    telemetry.New(),
	}
}

// phase opens a pipeline-level span; scan configs built inside the
// phase set Config.Span to it so the trace nests pipeline phase →
// scan phase → country.
func (s *Study) phase(name string) *telemetry.Span {
	return s.Metrics.StartSpan("pipeline/" + name)
}

// scanConfig is DefaultConfig wired to the study's registry, tracer,
// and the enclosing phase span.
func (s *Study) scanConfig(phase string, span *telemetry.Span) lumscan.Config {
	cfg := lumscan.DefaultConfig()
	cfg.Phase = phase
	cfg.Metrics = s.Metrics
	cfg.Span = span
	cfg.Trace = s.Trace
	cfg.TraceWall = s.Trace.WallClock()
	return cfg
}

// snapshot exports the study's telemetry in its deterministic view —
// the form study results carry, so a result is still a pure function
// of the study's inputs.
func (s *Study) snapshot() *telemetry.Snapshot {
	return s.Metrics.Snapshot().Deterministic()
}

func (s *Study) logf(format string, args ...any) {
	if s.Log != nil {
		s.Log(format, args...)
	}
}

func (s *Study) ctx() context.Context {
	if s.Ctx != nil {
		return s.Ctx
	}
	return context.Background()
}

// noteScanErr records a scan phase that returned an error — today that
// means the study's context was cancelled mid-phase. The phase's
// partial output is kept (the streaming sinks have already folded it),
// but the abort is logged and retained so callers can distinguish a
// truncated study from a complete one.
func (s *Study) noteScanErr(phase string, err error) {
	if err == nil {
		return
	}
	if s.scanErr == nil {
		s.scanErr = &PhaseError{Phase: phase, Err: err}
	}
	s.logf("%s: scan aborted: %v", phase, err)
}

// PhaseError is the error Study.Err reports: the underlying scan abort
// tagged with the pipeline phase it struck, so operators see which
// phase truncated the study. Unwrap preserves errors.Is matching on
// the cause (runstore.ErrSevered, context.Canceled, ...).
type PhaseError struct {
	Phase string
	Err   error
}

func (e *PhaseError) Error() string { return fmt.Sprintf("phase %s: %v", e.Phase, e.Err) }
func (e *PhaseError) Unwrap() error { return e.Err }

// Err reports the first scan abort the study observed, or nil if every
// phase ran to completion. A non-nil Err means the study's results are
// a prefix of the full run.
func (s *Study) Err() error { return s.scanErr }

// emitVerdicts compiles the confirmed findings over the studied
// universe into an immutable verdict snapshot and hands it to
// VerdictOut. Versioned by the world's policy clock at completion, so
// successive studies of a drifting world produce ordered snapshots.
func (s *Study) emitVerdicts(domains []string, countries []geo.CountryCode, findings []Finding) {
	if s.VerdictOut == nil {
		return
	}
	src := verdict.Source{
		Version:   uint64(s.World.Clock()),
		Seed:      s.World.Cfg.Seed,
		Domains:   domains,
		Countries: countries,
	}
	for _, f := range findings {
		src.Entries = append(src.Entries, verdict.Entry{
			Domain: f.DomainName, Country: f.Country, Kind: f.Kind,
		})
	}
	snap, err := verdict.Compile(src)
	if err != nil {
		// Findings are drawn from the studied universe, so Compile can
		// only fail on a pipeline bug; surface it rather than serve stale.
		s.logf("verdict: snapshot compile failed: %v", err)
		return
	}
	s.logf("verdict: snapshot v%d, %d blocked pairs over %d domains × %d countries",
		snap.Version(), snap.Blocked(), len(snap.Domains()), len(snap.Countries()))
	s.VerdictOut(snap)
}

// logCoverage reports a degraded scan phase: which countries were lost
// and how far short of the requested coverage the run fell. A full run
// stays quiet.
func (s *Study) logCoverage(phase string, outages []lumscan.Outage, cov lumscan.Coverage) {
	if len(outages) == 0 {
		return
	}
	for _, o := range outages {
		s.logf("%s: outage %s (%s): %d/%d shards, %d tasks lost",
			phase, o.Country, o.Reason, o.Shards, o.ShardsTotal, o.Tasks)
	}
	s.logf("%s: coverage %d/%d countries (%d tasks lost)",
		phase, cov.Attained, cov.Requested, cov.TasksLost)
}

// Finding is one confirmed geoblocking observation: a (domain, country)
// pair that served an explicit geoblock page in at least the threshold
// fraction of its samples.
type Finding struct {
	DomainName string
	Rank       int
	Country    geo.CountryCode
	Kind       blockpage.Kind
	Rate       consistency.Rate
}

// pairKey identifies a (domain, country) pair within one scan result.
type pairKey struct {
	domain  int32
	country int16
}

// candidate accumulates the evidence for one pair during resampling.
type candidate struct {
	kind blockpage.Kind
	rate consistency.Rate
}

// explicitKind reports the explicit geoblock page class of a body, or
// KindNone.
func (s *Study) explicitKind(body string) blockpage.Kind {
	if body == "" {
		return blockpage.KindNone
	}
	k, explicit := s.Classifier.IsExplicitGeoblock(body)
	if !explicit {
		return blockpage.KindNone
	}
	return k
}

// measurableCountries returns the study's country set (the 177 of
// §4.1.1).
func (s *Study) measurableCountries() []geo.CountryCode {
	return s.World.Geo.Measurable()
}

// pairRateSink returns a streaming sink folding samples into per-pair
// rates for the given per-pair expected kind. A sample counts as a
// response when it carried any HTTP status; it counts as a block when
// its body classifies to the pair's kind. Each sample is digested and
// dropped — bodies included — so a resample pass streamed through this
// sink never materializes a Result.
func (s *Study) pairRateSink(kinds map[pairKey]blockpage.Kind, into map[pairKey]*candidate) lumscan.SinkFunc {
	return func(sm lumscan.Sample) {
		key := pairKey{sm.Domain, sm.Country}
		kind, tracked := kinds[key]
		if !tracked {
			return
		}
		c := into[key]
		if c == nil {
			c = &candidate{kind: kind}
			into[key] = c
		}
		if !sm.OK() {
			return
		}
		c.rate.Responses++
		if sm.Body != "" && s.Classifier.Classify(sm.Body) == kind {
			c.rate.Blocks++
		}
	}
}

// collectPairRates folds an already-materialized scan result through
// pairRateSink (for the initial snapshot, which later stages also
// need in full).
func (s *Study) collectPairRates(res *lumscan.Result, kinds map[pairKey]blockpage.Kind, into map[pairKey]*candidate) {
	sink := s.pairRateSink(kinds, into)
	for i := range res.Samples {
		sink(res.Samples[i])
	}
}

// rankCountriesByBlocking runs the auxiliary pre-experiment of §4.1.2:
// sample the NS-detectable Cloudflare and Akamai customers within the
// safe set from every country and rank countries by how many 403s come
// back. The top of that ranking selects the reference countries for
// representative page lengths.
func (s *Study) rankCountriesByBlocking(safeDomains []string, safeRanks []int, countries []geo.CountryCode, samples int, span *telemetry.Span) []geo.CountryCode {
	var auxDomains []string
	for i, rank := range safeRanks {
		d := s.World.DomainAt(rank)
		if d != nil && d.NSDetectable {
			auxDomains = append(auxDomains, safeDomains[i])
		}
		if len(auxDomains) >= 300 {
			break
		}
	}
	if len(auxDomains) == 0 {
		// Degenerate small worlds: fall back to a slice of the safe set.
		n := len(safeDomains)
		if n > 100 {
			n = 100
		}
		auxDomains = safeDomains[:n]
	}

	cfg := s.scanConfig("country-rank", span)
	cfg.Samples = samples
	cfg.Bodies = lumscan.BodyNone
	counts := make([]int, len(countries))
	s.noteScanErr("country-rank", s.scanStream("country-rank", cfg, auxDomains, countries,
		lumscan.CrossProduct(len(auxDomains), len(countries)),
		lumscan.SinkFunc(func(sm lumscan.Sample) {
			if sm.OK() && sm.Status == 403 {
				counts[sm.Country]++
			}
		})))
	idx := make([]int, len(countries))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if counts[idx[a]] != counts[idx[b]] {
			return counts[idx[a]] > counts[idx[b]]
		}
		return countries[idx[a]] < countries[idx[b]]
	})
	out := make([]geo.CountryCode, len(countries))
	for i, j := range idx {
		out[i] = countries[j]
	}
	return out
}

// studyRNG derives the deterministic RNG for sampling decisions.
func (s *Study) studyRNG(label string) *stats.RNG {
	return stats.NewRNG(s.World.Cfg.Seed).Fork("pipeline").Fork(label)
}

// phaseKey returns the journal key for the next invocation of the
// named phase: the name itself the first time, name#k for repeats.
func (s *Study) phaseKey(name string) string {
	if s.phaseSeq == nil {
		s.phaseSeq = map[string]int{}
	}
	k := s.phaseSeq[name]
	s.phaseSeq[name]++
	if k == 0 {
		return name
	}
	return name + "#" + strconv.Itoa(k)
}

// scanFingerprint digests a scan invocation's identity for the
// journal: world seed, journal key, phase name, input sizes, and the
// sampling parameter — never Concurrency, which a resumed run is free
// to change. A journal directory reused across different study
// configurations fails this check instead of splicing foreign samples.
func (s *Study) scanFingerprint(key string, cfg lumscan.Config, domains, groups, tasks int) uint64 {
	h := fnv("geoblock-scan")
	h = stats.Mix64(h ^ s.World.Cfg.Seed)
	h = stats.Mix64(h ^ fnv(key))
	h = stats.Mix64(h ^ fnv(cfg.Phase))
	h = stats.Mix64(h ^ uint64(domains))
	h = stats.Mix64(h ^ uint64(groups)<<16)
	h = stats.Mix64(h ^ uint64(tasks)<<32)
	h = stats.Mix64(h ^ uint64(cfg.Samples)<<48)
	return h
}

func fnv(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// traceScan pins the invocation's scan context onto cfg — the root →
// pipeline-phase → scan-phase derivation that keys every event the
// scan records, unique per invocation because key is — and returns the
// closer that records the phase's "pipeline/scan" event. A no-op
// closure when the study is not tracing.
func (s *Study) traceScan(key string, cfg *lumscan.Config) func(error) {
	if s.Trace == nil {
		return func(error) {}
	}
	pctx := s.Trace.Root().Child("pipeline/"+key, 0)
	cfg.TraceCtx = pctx.Child("scan/"+cfg.Phase, 0)
	virt0, wall0 := s.Trace.Now()
	return func(err error) {
		virt, wall := s.Trace.Now()
		ev := trace.NewEvent(pctx, "pipeline/scan")
		ev.Parent = s.Trace.Root().Span
		ev.Phase = key
		if err == nil {
			ev.Outcome = "ok"
		} else {
			ev.Outcome = "aborted"
		}
		ev.VirtNS = virt0
		ev.VirtDurNS = virt - virt0
		ev.WallNS = wall0
		ev.WallDurNS = wall - wall0
		s.Trace.Record(ev)
	}
}

// scanStream is the study's one residential-scan entry point: it runs
// the phase directly when no journal is attached, and through
// Store.Scan — journaling live work, replaying committed work —
// otherwise. name keys the journal; it is usually cfg.Phase.
func (s *Study) scanStream(name string, cfg lumscan.Config, domains []string, countries []geo.CountryCode, tasks []lumscan.Task, sink lumscan.Sink) error {
	key := s.phaseKey(name)
	traceDone := s.traceScan(key, &cfg)
	run := func(cfg lumscan.Config, sink lumscan.Sink) error {
		if s.Runner != nil {
			return s.Runner(s.ctx(), domains, countries, tasks, cfg, sink)
		}
		return lumscan.ScanStream(s.ctx(), s.Net, domains, countries, tasks, cfg, sink)
	}
	var err error
	if s.Store == nil {
		err = run(cfg, sink)
	} else {
		err = s.Store.Scan(runstore.Scan{
			Key:         key,
			Fingerprint: s.scanFingerprint(key, cfg, len(domains), len(countries), len(tasks)),
			Cfg:         cfg,
			Sink:        sink,
			Run:         run,
		})
	}
	traceDone(err)
	return err
}

// scanVPSStream is scanStream for the datacenter engine.
func (s *Study) scanVPSStream(name string, cfg lumscan.Config, fleet []*proxy.VPS, domains []string, tasks []lumscan.Task, sink lumscan.Sink) error {
	key := s.phaseKey(name)
	traceDone := s.traceScan(key, &cfg)
	var err error
	if s.Store == nil {
		err = lumscan.ScanVPSStream(s.ctx(), fleet, domains, tasks, cfg, sink)
	} else {
		err = s.Store.Scan(runstore.Scan{
			Key:         key,
			Fingerprint: s.scanFingerprint(key, cfg, len(domains), len(fleet), len(tasks)),
			Cfg:         cfg,
			Sink:        sink,
			Run: func(cfg lumscan.Config, sink lumscan.Sink) error {
				return lumscan.ScanVPSStream(s.ctx(), fleet, domains, tasks, cfg, sink)
			},
		})
	}
	traceDone(err)
	return err
}
