package pipeline

import (
	"sort"

	"geoblock/internal/blockpage"
	"geoblock/internal/cdnid"
	"geoblock/internal/geo"
	"geoblock/internal/lumscan"
	"geoblock/internal/proxy"
	"geoblock/internal/telemetry"
	"geoblock/internal/worldgen"
)

// ExploreResult captures the §3.1 exploration: NS-based discovery of
// Akamai and Cloudflare customers, curl/ZGrab-style probing from the
// VPS fleet, and the browser-verification pass that exposes the bot
// false positives.
type ExploreResult struct {
	NSCloudflare int
	NSAkamai     int

	// The Iran-vs-US 403 comparison.
	Iran403 int
	US403   int

	// Block-page pairs across all VPSes (the 1,068 of §3.1) and the
	// browser-verification outcome (782 genuine, 27% false positives —
	// all from Akamai bot detection).
	PairsBlockpage       int
	GenuinePairs         int
	FalsePositives       int
	FalsePositivesAkamai int
	UniqueDomains        int
	PerProviderPairs     map[blockpage.Kind]int

	// Telemetry is the engine-health snapshot at the end of the run,
	// deterministic view (see Top10KResult.Telemetry).
	Telemetry *telemetry.Snapshot
}

// RunExploration executes the §3.1 exploration against the Top-1M NS
// populations.
func (s *Study) RunExploration() *ExploreResult {
	r := &ExploreResult{PerProviderPairs: map[blockpage.Kind]int{}}
	sp := s.phase("explore")
	defer func() {
		sp.End()
		r.Telemetry = s.snapshot()
	}()

	id := cdnid.NewIdentifier(s.World)
	ranks := make([]int, 0, len(s.World.CustomerRanks())+len(s.World.Top10K()))
	for rank := 1; rank <= len(s.World.Top10K()); rank++ {
		ranks = append(ranks, rank)
	}
	ranks = append(ranks, s.World.CustomerRanks()...)

	nsPops := map[worldgen.Provider][]int{}
	res := id.NSPopulations(1, len(s.World.Top10K()))
	for p, rs := range res {
		nsPops[p] = append(nsPops[p], rs...)
	}
	// Extend NS discovery over the customer ranks.
	for _, rank := range s.World.CustomerRanks() {
		d := s.World.DomainAt(rank)
		if d == nil || !d.NSDetectable {
			continue
		}
		switch d.Providers[0] {
		case worldgen.Cloudflare:
			nsPops[worldgen.Cloudflare] = append(nsPops[worldgen.Cloudflare], rank)
		case worldgen.Akamai:
			nsPops[worldgen.Akamai] = append(nsPops[worldgen.Akamai], rank)
		}
	}
	r.NSCloudflare = len(nsPops[worldgen.Cloudflare])
	r.NSAkamai = len(nsPops[worldgen.Akamai])

	var domains []string
	for _, p := range []worldgen.Provider{worldgen.Cloudflare, worldgen.Akamai} {
		sort.Ints(nsPops[p])
		for _, rank := range nsPops[p] {
			domains = append(domains, s.World.DomainAt(rank).Name)
		}
	}
	s.logf("explore: %d NS-detected domains (%d CF, %d Akamai)",
		len(domains), r.NSCloudflare, r.NSAkamai)

	fleet := proxy.VPSFleet(s.World, proxy.VPSCountries())
	cfg := lumscan.Config{Samples: 1, Headers: lumscan.ZGrabHeaders(), Phase: "explore", MaxRedirects: 10,
		Metrics: s.Metrics, Span: sp}

	countryIdx := map[geo.CountryCode]int16{}
	for i, v := range fleet {
		countryIdx[v.Country] = int16(i)
	}

	type pair struct {
		domain  int32
		country int16
	}
	blockPairs := map[pair]blockpage.Kind{}
	uniqueDomains := map[int32]bool{}
	s.noteScanErr("explore", s.scanVPSStream("explore", cfg, fleet, domains, nil,
		lumscan.SinkFunc(func(sm lumscan.Sample) {
			if !sm.OK() {
				return
			}
			if sm.Status == 403 {
				switch sm.Country {
				case countryIdx["IR"]:
					r.Iran403++
				case countryIdx["US"]:
					r.US403++
				}
			}
			if sm.Body == "" {
				return
			}
			k := s.Classifier.Classify(sm.Body)
			if k == blockpage.Akamai || k == blockpage.Cloudflare {
				blockPairs[pair{sm.Domain, sm.Country}] = k
				uniqueDomains[sm.Domain] = true
			}
		})))
	r.PairsBlockpage = len(blockPairs)
	r.UniqueDomains = len(uniqueDomains)

	// Manual verification: load each flagged pair in "a real web
	// browser tunneled through the VPS" — full browser headers. Bot
	// false positives load fine; genuine geoblocks stay blocked.
	keys := make([]pair, 0, len(blockPairs))
	for k := range blockPairs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].country != keys[j].country {
			return keys[i].country < keys[j].country
		}
		return keys[i].domain < keys[j].domain
	})
	verifyCfg := lumscan.Config{Samples: 1, Headers: lumscan.BrowserHeaders(), Phase: "explore-verify", MaxRedirects: 10,
		Metrics: s.Metrics, Span: sp}
	for _, key := range keys {
		kind := blockPairs[key]
		r.PerProviderPairs[kind]++
		var sub lumscan.Collect
		s.noteScanErr("explore-verify", s.scanVPSStream("explore-verify", verifyCfg,
			fleet[key.country:key.country+1], []string{domains[key.domain]}, nil, &sub))
		genuine := false
		for i := range sub.Samples {
			sm := &sub.Samples[i]
			if sm.OK() && sm.Body != "" && s.Classifier.Classify(sm.Body) == kind {
				genuine = true
			}
		}
		if genuine {
			r.GenuinePairs++
		} else {
			r.FalsePositives++
			if kind == blockpage.Akamai {
				r.FalsePositivesAkamai++
			}
		}
	}
	return r
}
