package pipeline

import (
	"io"
	"net/http"
	"sort"

	"geoblock/internal/applayer"
	"geoblock/internal/blockpage"
	"geoblock/internal/censor"
	"geoblock/internal/geo"
	"geoblock/internal/lumscan"
	"geoblock/internal/stats"
	"geoblock/internal/vnet"
)

// This file implements the three §7.3 "future work" directions the
// paper sketches: timeout-based geoblocking detection, application-
// layer discrimination detection, and region-granular measurement.

// ---------------------------------------------------------------------
// Timeout geoblocking.

// TimeoutFinding is one domain that consistently times out from
// specific countries while serving everyone else — geoblocking by
// connection drop.
type TimeoutFinding struct {
	DomainName string
	Countries  []geo.CountryCode
	// CensorOverlap lists the found countries that also operate
	// national filters with timeout mechanics — the attribution hazard
	// §7.3 warns about ("much more difficult to differentiate from
	// censorship").
	CensorOverlap []geo.CountryCode
}

// TimeoutResult is the timeout-geoblocking analysis output.
type TimeoutResult struct {
	// CandidateDomains had at least one all-timeout country in the
	// snapshot — overwhelmingly transit black holes on the proxy path,
	// which is why the cheap cross-check runs before anything else.
	CandidateDomains int
	// CrossCheckedPairs survived the independent-vantage probe (the
	// drop reproduces from a datacenter address in the same country).
	CrossCheckedPairs int
	// Findings additionally survived the confirmation resample.
	Findings []TimeoutFinding
}

// AnalyzeTimeouts scans a Top-10K snapshot for country-consistent
// timeouts and confirms candidates with a resample pass: a country
// counts when every confirmation sample times out while the domain
// answers at least 80% of its samples elsewhere.
func (s *Study) AnalyzeTimeouts(r *Top10KResult, resamples int) *TimeoutResult {
	if resamples <= 0 {
		resamples = 10
	}
	out := &TimeoutResult{}
	sp := s.phase("timeouts")
	defer sp.End()

	// Pass 1: per (domain, country) timeout and response tallies.
	type tally struct{ timeouts, responses, other int }
	pair := map[pairKey]*tally{}
	domainOK := map[int32]int{}
	domainAll := map[int32]int{}
	for i := range r.Initial.Samples {
		sm := &r.Initial.Samples[i]
		key := pairKey{sm.Domain, sm.Country}
		t := pair[key]
		if t == nil {
			t = &tally{}
			pair[key] = t
		}
		switch {
		case sm.OK():
			t.responses++
			domainOK[sm.Domain]++
		case sm.Err == lumscan.ErrTimeout:
			t.timeouts++
		default:
			t.other++
		}
		domainAll[sm.Domain]++
	}

	// Candidates: domains reachable overall, with ≥1 country that only
	// ever timed out.
	candCountries := map[int32][]int16{}
	for key, t := range pair {
		if t.timeouts >= 2 && t.responses == 0 &&
			domainAll[key.domain] > 0 &&
			float64(domainOK[key.domain]) >= 0.5*float64(domainAll[key.domain]) {
			candCountries[key.domain] = append(candCountries[key.domain], key.country)
		}
	}
	out.CandidateDomains = len(candCountries)

	// Pass 2: independent-vantage cross-check, one probe per pair. A
	// consistent residential timeout is usually a transit black hole on
	// the proxy path, not the server's policy; only drops that
	// reproduce from a datacenter address in the same country proceed.
	// This is the §7.3 differentiation problem in miniature — without a
	// second vantage type these candidates are unattributable.
	domains := make([]int32, 0, len(candCountries))
	for d := range candCountries {
		domains = append(domains, d)
	}
	sort.Slice(domains, func(i, j int) bool { return domains[i] < domains[j] })
	var tasks []lumscan.Task
	for _, d := range domains {
		cs := candCountries[d]
		sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
		for _, c := range cs {
			if s.timesOutFromDatacenter(r.SafeDomains[d], r.Countries[c]) {
				tasks = append(tasks, lumscan.Task{Domain: d, Country: c})
			}
		}
	}
	out.CrossCheckedPairs = len(tasks)

	// Pass 3: confirmation resample of the surviving pairs.
	scanCfg := s.scanConfig("timeout-confirm", sp)
	scanCfg.Samples = resamples
	scanCfg.Retries = 0
	confirm := map[pairKey]*tally{}
	s.noteScanErr("timeout-confirm", s.scanStream("timeout-confirm", scanCfg, r.SafeDomains, r.Countries, tasks,
		lumscan.SinkFunc(func(sm lumscan.Sample) {
			key := pairKey{sm.Domain, sm.Country}
			t := confirm[key]
			if t == nil {
				t = &tally{}
				confirm[key] = t
			}
			switch {
			case sm.OK():
				t.responses++
			case sm.Err == lumscan.ErrTimeout:
				t.timeouts++
			default:
				t.other++
			}
		})))

	for _, dIdx := range domains {
		f := TimeoutFinding{DomainName: r.SafeDomains[dIdx]}
		for _, cIdx := range candCountries[dIdx] {
			t := confirm[pairKey{dIdx, cIdx}]
			// Pairs the cross-check rejected never entered the resample
			// and have no tally.
			if t == nil || t.responses > 0 || t.timeouts < resamples*7/10 {
				continue
			}
			cc := r.Countries[cIdx]
			f.Countries = append(f.Countries, cc)
			if censor.CensorsAnything(cc) {
				f.CensorOverlap = append(f.CensorOverlap, cc)
			}
		}
		if len(f.Countries) > 0 {
			out.Findings = append(out.Findings, f)
		}
	}
	return out
}

// timesOutFromDatacenter probes domain from a datacenter address in cc
// and reports whether the connection still times out.
func (s *Study) timesOutFromDatacenter(domain string, cc geo.CountryCode) bool {
	ip, err := s.World.Geo.DatacenterIP(cc, stats.Mix64(hashStr(domain))%1000)
	if err != nil {
		return false
	}
	stack := vnet.NewStack(s.World, ip)
	client := stack.Client(10)
	seed := stats.Mix64(hashStr(domain) ^ hashStr(string(cc)) ^ 0x7a11)
	req, err := http.NewRequestWithContext(
		vnet.WithSampleSeed(s.ctx(), seed),
		http.MethodGet, "http://"+domain+"/", nil)
	if err != nil {
		return false
	}
	for k, v := range lumscan.BrowserHeaders() {
		req.Header.Set(k, v)
	}
	resp, err := client.Do(req)
	if err != nil {
		return isTimeout(err)
	}
	resp.Body.Close()
	return false
}

func isTimeout(err error) bool {
	for err != nil {
		if ne, ok := err.(interface{ Timeout() bool }); ok {
			return ne.Timeout()
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// ---------------------------------------------------------------------
// Application-layer discrimination.

// AppLayerFinding is one domain serving structurally different pages to
// different countries.
type AppLayerFinding struct {
	DomainName   string
	Country      geo.CountryCode
	MissingLinks []string
	NoticeAdded  bool
	PriceRatio   float64 // 0 when no price comparison was possible
}

// AppLayerResult is the application-layer study output.
type AppLayerResult struct {
	DomainsTested int
	Findings      []AppLayerFinding
}

// RunAppLayerStudy fetches each domain from a reference country and
// from every target country, extracts structural features, and reports
// discriminating differences. Each comparison is confirmed with a
// second sample so a junk-page load never counts as a removed feature.
func (s *Study) RunAppLayerStudy(domains []string, ref geo.CountryCode, targets []geo.CountryCode) *AppLayerResult {
	out := &AppLayerResult{DomainsTested: len(domains)}

	fetch := func(domain string, cc geo.CountryCode, attempt int) (applayer.Observation, bool) {
		ip, err := s.World.Geo.HostIP(cc, stats.Mix64(hashStr(domain)^hashStr(string(cc)))%100000)
		if err != nil {
			return applayer.Observation{}, false
		}
		stack := vnet.NewStack(s.World, ip)
		client := stack.Client(10)
		seed := stats.Mix64(hashStr(domain) ^ hashStr(string(cc)) ^ uint64(attempt+1)*0x9e37)
		req, err := http.NewRequestWithContext(
			vnet.WithSampleSeed(s.ctx(), seed),
			http.MethodGet, "http://"+domain+"/", nil)
		if err != nil {
			return applayer.Observation{}, false
		}
		for k, v := range lumscan.BrowserHeaders() {
			req.Header.Set(k, v)
		}
		resp, err := client.Do(req)
		if err != nil {
			return applayer.Observation{}, false
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			return applayer.Observation{}, false
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return applayer.Observation{}, false
		}
		return applayer.Extract(string(body)), true
	}

	for _, domain := range domains {
		refObs, ok := fetch(domain, ref, 0)
		if !ok {
			continue
		}
		for _, cc := range targets {
			if cc == ref {
				continue
			}
			obs, ok := fetch(domain, cc, 0)
			if !ok {
				continue
			}
			d := applayer.Compare(refObs, obs)
			if !d.Discriminates() {
				continue
			}
			// Confirm on a fresh sample: junk pages and transient
			// variants must not produce findings.
			obs2, ok := fetch(domain, cc, 1)
			if !ok {
				continue
			}
			d2 := applayer.Compare(refObs, obs2)
			if !d2.Discriminates() {
				continue
			}
			out.Findings = append(out.Findings, AppLayerFinding{
				DomainName:   domain,
				Country:      cc,
				MissingLinks: d2.MissingLinks,
				NoticeAdded:  d2.NoticeAdded,
				PriceRatio:   d2.PriceRatio,
			})
		}
	}
	return out
}

// ---------------------------------------------------------------------
// Region-granular measurement.

// RegionalFinding is one domain blocked from a sub-national region but
// not from the rest of its country — the Crimea granularity of §4.2.2.
type RegionalFinding struct {
	DomainName   string
	Kind         blockpage.Kind
	RegionRate   float64
	MainlandRate float64
}

// RunRegionalAnalysis probes domains through Crimean exits and through
// mainland-Ukraine exits and reports the ones whose explicit block page
// appears only from the region.
func (s *Study) RunRegionalAnalysis(domains []string, samples int) []RegionalFinding {
	if samples <= 0 {
		samples = 12
	}
	var out []RegionalFinding
	for _, domain := range domains {
		regionRate, rKind := s.regionBlockRate(domain, true, samples)
		mainRate, _ := s.regionBlockRate(domain, false, samples)
		if regionRate >= 0.8 && mainRate <= 0.2 && rKind != blockpage.KindNone {
			out = append(out, RegionalFinding{
				DomainName:   domain,
				Kind:         rKind,
				RegionRate:   regionRate,
				MainlandRate: mainRate,
			})
		}
	}
	return out
}

func (s *Study) regionBlockRate(domain string, crimea bool, samples int) (float64, blockpage.Kind) {
	sess, err := s.Net.NewRegionSession("UA", crimea, hashStr(domain))
	if err != nil {
		return 0, blockpage.KindNone
	}
	client := &http.Client{Transport: sess}
	blocks, responses := 0, 0
	kind := blockpage.KindNone
	for i := 0; i < samples; i++ {
		seed := stats.Mix64(hashStr(domain) ^ uint64(i+1)*0x517cc1b7 ^ uint64(boolToInt(crimea)))
		req, err := http.NewRequestWithContext(
			vnet.WithSampleSeed(s.ctx(), seed),
			http.MethodGet, "http://"+domain+"/", nil)
		if err != nil {
			continue
		}
		for k, v := range lumscan.BrowserHeaders() {
			req.Header.Set(k, v)
		}
		resp, err := client.Do(req)
		if err != nil {
			sess.Rotate()
			continue
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			continue
		}
		responses++
		if k := s.explicitKind(string(body)); k != blockpage.KindNone {
			blocks++
			kind = k
		}
		if (i+1)%3 == 0 {
			sess.Rotate()
		}
	}
	if responses == 0 {
		return 0, blockpage.KindNone
	}
	return float64(blocks) / float64(responses), kind
}

func boolToInt(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func hashStr(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
