package pipeline

import (
	"sort"

	"geoblock/internal/blockpage"
	"geoblock/internal/category"
	"geoblock/internal/cdnid"
	"geoblock/internal/consistency"
	"geoblock/internal/geo"
	"geoblock/internal/lumscan"
	"geoblock/internal/stats"
	"geoblock/internal/telemetry"
	"geoblock/internal/worldgen"
)

// Top1MConfig tunes the §5 study.
type Top1MConfig struct {
	SampleFraction float64 // 0.05
	InitialSamples int     // 3
	ResampleCount  int     // 20
	Threshold      float64 // 0.80
	Concurrency    int
	// FullDiscovery scans the entire rank space for CDN customers (the
	// paper's method, ~1M probes). When false, the scan covers only the
	// ranks known to be customers plus the Top 10K — identical results
	// by construction, since non-customers carry no provider evidence.
	FullDiscovery bool
}

func (c *Top1MConfig) fill() {
	if c.SampleFraction == 0 {
		c.SampleFraction = 0.05
	}
	if c.InitialSamples == 0 {
		c.InitialSamples = 3
	}
	if c.ResampleCount == 0 {
		c.ResampleCount = 20
	}
	if c.Threshold == 0 {
		c.Threshold = consistency.DefaultThreshold
	}
	if c.Concurrency == 0 {
		c.Concurrency = 8
	}
}

// NonExplicitFinding is one §5.2.2 result: an Akamai or Incapsula
// customer whose ambiguous block page behaves like geoblocking.
type NonExplicitFinding struct {
	DomainName  string
	Rank        int
	Kind        blockpage.Kind
	Consistency float64
	Blocked     []geo.CountryCode // countries at/above the threshold
}

// Top1MResult is everything the §5 analysis needs.
type Top1MResult struct {
	Config Top1MConfig

	// Discovery (§5.1.1).
	Discovered *cdnid.Populations
	DualCount  int

	// Sampling (§5.1.2).
	EligibleCount int // after category + Citizen Lab filtering
	TestDomains   []string
	TestRanks     []int

	// Snapshot (§5.1.3).
	Countries       []geo.CountryCode
	Initial         *lumscan.Result
	NeverResponded  int
	LuminatiBlocked int

	// Degradation accounting for the snapshot (see Top10KResult).
	Outages  []lumscan.Outage
	Coverage lumscan.Coverage

	// Explicit geoblockers (§5.2.1).
	CandidatePairs    int
	ExplicitFindings  []Finding
	EliminatedPairs   int
	CensoredGAEPairs  int // explicit blocks hidden behind censorship
	TestedPerProvider map[worldgen.Provider]int

	// Non-explicit geoblockers (§5.2.2).
	NonExplicitSeen     map[blockpage.Kind]int // domains with ≥1 page
	NonExplicitFindings []NonExplicitFinding
	ConsistencyScores   map[blockpage.Kind][]float64

	// Telemetry is the engine-health snapshot at the end of the run,
	// deterministic view (see Top10KResult.Telemetry).
	Telemetry *telemetry.Snapshot
}

// RunTop1M executes the full §5 study.
func (s *Study) RunTop1M(cfg Top1MConfig) *Top1MResult {
	cfg.fill()
	r := &Top1MResult{Config: cfg, TestedPerProvider: map[worldgen.Provider]int{}}
	sp := s.phase("top1m")
	defer func() {
		sp.End()
		r.Telemetry = s.snapshot()
	}()

	dsp := sp.StartSpan("discover")
	s.discover(r)
	dsp.End()
	s.logf("top1m: discovered %d customers (%d dual)", r.Discovered.Total(), r.DualCount)

	s.sampleTestList(r)
	s.logf("top1m: %d eligible, %d in the %.0f%% sample",
		r.EligibleCount, len(r.TestDomains), cfg.SampleFraction*100)

	r.Countries = s.measurableCountries()
	scanCfg := s.scanConfig("top1m-initial", sp)
	scanCfg.Samples = cfg.InitialSamples
	scanCfg.Concurrency = cfg.Concurrency
	var col lumscan.Collect
	initErr := s.scanStream("top1m-initial", scanCfg, r.TestDomains, r.Countries,
		lumscan.CrossProduct(len(r.TestDomains), len(r.Countries)), &col)
	r.Initial = &lumscan.Result{Domains: r.TestDomains, Countries: r.Countries,
		Samples: col.Samples, Outages: col.Outages, Coverage: col.Coverage}
	s.noteScanErr("top1m-initial", initErr)
	r.Outages, r.Coverage = r.Initial.Outages, r.Initial.Coverage
	s.logCoverage("top1m", r.Outages, r.Coverage)
	s.diagnostics1M(r)

	s.confirmExplicit1M(r, sp)
	s.logf("top1m: %d explicit findings (%d pairs eliminated)",
		len(r.ExplicitFindings), r.EliminatedPairs)

	s.analyzeNonExplicit(r, sp)
	s.logf("top1m: %d non-explicit findings", len(r.NonExplicitFindings))
	return r
}

func (s *Study) discover(r *Top1MResult) {
	id := cdnid.NewIdentifier(s.World)
	id.Concurrency = r.Config.Concurrency
	if r.Config.FullDiscovery {
		r.Discovered = id.ScanRanks(1, s.World.Cfg.Top1MRanks)
	} else {
		ranks := make([]int, 0, len(s.World.CustomerRanks())+len(s.World.Top10K()))
		for rank := 1; rank <= len(s.World.Top10K()); rank++ {
			ranks = append(ranks, rank)
		}
		ranks = append(ranks, s.World.CustomerRanks()...)
		r.Discovered = id.ScanRankList(ranks)
	}
	r.DualCount = len(r.Discovered.Dual)
}

// sampleTestList applies the §5.1.2 filter and draws the random sample.
// Only customers beyond the Top 10K enter the Top-1M test list (the
// Top 10K was studied separately in §4).
func (s *Study) sampleTestList(r *Top1MResult) {
	// Invert the discovery output to provider sets per rank.
	rankProviders := map[int][]worldgen.Provider{}
	for p, ranks := range r.Discovered.ByProvider {
		for _, rank := range ranks {
			if rank <= len(s.World.Top10K()) {
				continue // the Top 10K was studied separately (§4)
			}
			rankProviders[rank] = append(rankProviders[rank], p)
		}
	}
	eligible := make([]int, 0, len(rankProviders))
	for rank := range rankProviders {
		d := s.World.DomainAt(rank)
		if category.IsRiskyTop1M(d.Category) || s.World.CitizenLab.Contains(d.Name) {
			continue
		}
		eligible = append(eligible, rank)
	}
	sort.Ints(eligible)
	r.EligibleCount = len(eligible)

	n := int(float64(len(eligible)) * r.Config.SampleFraction)
	if n < 1 && len(eligible) > 0 {
		n = 1
	}
	rng := s.studyRNG("top1m-sample")
	picked := stats.Sample(rng, eligible, n)
	sort.Ints(picked)
	for _, rank := range picked {
		d := s.World.DomainAt(rank)
		r.TestRanks = append(r.TestRanks, rank)
		r.TestDomains = append(r.TestDomains, d.Name)
		for _, p := range rankProviders[rank] {
			r.TestedPerProvider[p]++
		}
	}
}

func (s *Study) diagnostics1M(r *Top1MResult) {
	okByDomain := make([]bool, len(r.TestDomains))
	lumByDomain := make([]bool, len(r.TestDomains))
	for i := range r.Initial.Samples {
		sm := &r.Initial.Samples[i]
		if sm.OK() {
			okByDomain[sm.Domain] = true
		}
		if sm.Err == lumscan.ErrLuminati {
			lumByDomain[sm.Domain] = true
		}
	}
	for i := range okByDomain {
		if okByDomain[i] {
			continue
		}
		r.NeverResponded++
		if lumByDomain[i] {
			r.LuminatiBlocked++
		}
	}
}

// confirmExplicit1M mirrors the Top-10K confirmation flow on the 1M
// sample, and additionally counts the §5.2.1 censorship interference:
// App Engine-hosted domains whose platform block in a sanctioned
// country could not be measured because the national filter got there
// first.
func (s *Study) confirmExplicit1M(r *Top1MResult, sp *telemetry.Span) {
	kinds := make(map[pairKey]blockpage.Kind)
	for i := range r.Initial.Samples {
		sm := &r.Initial.Samples[i]
		if !sm.OK() || sm.Body == "" {
			continue
		}
		if k := s.explicitKind(sm.Body); k != blockpage.KindNone {
			kinds[pairKey{sm.Domain, sm.Country}] = k
		}
	}
	r.CandidatePairs = len(kinds)

	tasks := make([]lumscan.Task, 0, len(kinds))
	for key := range kinds {
		tasks = append(tasks, lumscan.Task{Domain: key.domain, Country: key.country})
	}
	sort.Slice(tasks, func(i, j int) bool {
		if tasks[i].Country != tasks[j].Country {
			return tasks[i].Country < tasks[j].Country
		}
		return tasks[i].Domain < tasks[j].Domain
	})
	scanCfg := s.scanConfig("top1m-resample", sp)
	scanCfg.Samples = r.Config.ResampleCount
	scanCfg.Concurrency = r.Config.Concurrency

	cands := make(map[pairKey]*candidate, len(kinds))
	s.collectPairRates(r.Initial, kinds, cands)
	s.noteScanErr("top1m-resample", s.scanStream("top1m-resample", scanCfg, r.TestDomains, r.Countries, tasks,
		s.pairRateSink(kinds, cands)))

	keys := make([]pairKey, 0, len(cands))
	for key := range cands {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].domain != keys[j].domain {
			return keys[i].domain < keys[j].domain
		}
		return keys[i].country < keys[j].country
	})
	for _, key := range keys {
		c := cands[key]
		if !c.rate.Confirmed(r.Config.Threshold) {
			r.EliminatedPairs++
			continue
		}
		r.ExplicitFindings = append(r.ExplicitFindings, Finding{
			DomainName: r.TestDomains[key.domain],
			Rank:       r.TestRanks[key.domain],
			Country:    r.Countries[key.country],
			Kind:       c.kind,
			Rate:       c.rate,
		})
	}

	// Censorship interference: GAE-hosted sample domains censored in a
	// sanctioned country (the 5-in-Iran / 2-in-Syria effect).
	for i, rank := range r.TestRanks {
		d := s.World.DomainAt(rank)
		if d == nil || !d.GAEHosted {
			continue
		}
		_ = i
		for cc := range d.CensoredIn {
			switch cc {
			case "IR", "SY", "SD", "CU":
				r.CensoredGAEPairs++
			}
		}
	}
}

// analyzeNonExplicit is §5.2.2: for every sampled domain that served an
// Akamai or Incapsula page anywhere, sample it again in *every* country
// and apply the consistency metric; report domains with a perfect
// consistency score that are not blocked everywhere.
func (s *Study) analyzeNonExplicit(r *Top1MResult, sp *telemetry.Span) {
	ambiguous := map[int32]blockpage.Kind{}
	for i := range r.Initial.Samples {
		sm := &r.Initial.Samples[i]
		if !sm.OK() || sm.Body == "" {
			continue
		}
		k := s.Classifier.Classify(sm.Body)
		if k == blockpage.Akamai || k == blockpage.Incapsula {
			ambiguous[sm.Domain] = k
		}
	}
	r.NonExplicitSeen = map[blockpage.Kind]int{}
	for _, k := range ambiguous {
		r.NonExplicitSeen[k]++
	}

	domains := make([]int32, 0, len(ambiguous))
	for d := range ambiguous {
		domains = append(domains, d)
	}
	sort.Slice(domains, func(i, j int) bool { return domains[i] < domains[j] })

	tasks := make([]lumscan.Task, 0, len(domains)*len(r.Countries))
	for ci := range r.Countries {
		for _, d := range domains {
			tasks = append(tasks, lumscan.Task{Domain: d, Country: int16(ci)})
		}
	}
	scanCfg := s.scanConfig("top1m-nonexplicit", sp)
	scanCfg.Samples = r.Config.ResampleCount
	scanCfg.Concurrency = r.Config.Concurrency

	// This is the study's widest scan — every ambiguous domain in
	// every country, 20 samples each — so it streams into per-domain,
	// per-country rates and drops each body the moment it classifies.
	perDomain := map[int32]map[string]consistency.Rate{}
	s.noteScanErr("top1m-nonexplicit", s.scanStream("top1m-nonexplicit", scanCfg, r.TestDomains, r.Countries, tasks,
		lumscan.SinkFunc(func(sm lumscan.Sample) {
			kind, tracked := ambiguous[sm.Domain]
			if !tracked || !sm.OK() {
				return
			}
			m := perDomain[sm.Domain]
			if m == nil {
				m = map[string]consistency.Rate{}
				perDomain[sm.Domain] = m
			}
			cc := string(r.Countries[sm.Country])
			rate := m[cc]
			rate.Responses++
			if sm.Body != "" && s.Classifier.Classify(sm.Body) == kind {
				rate.Blocks++
			}
			m[cc] = rate
		})))

	r.ConsistencyScores = map[blockpage.Kind][]float64{}
	for _, dIdx := range domains {
		kind := ambiguous[dIdx]
		perCountry := perDomain[dIdx]
		if perCountry == nil {
			continue
		}
		score, seen := consistency.DomainConsistency(perCountry, r.Config.Threshold)
		if seen == 0 {
			continue
		}
		r.ConsistencyScores[kind] = append(r.ConsistencyScores[kind], score)
		if score < 1.0 || consistency.BlockedEverywhere(perCountry, r.Config.Threshold) {
			continue
		}
		var blocked []geo.CountryCode
		for cc, rate := range perCountry {
			if rate.Blocks > 0 && rate.Confirmed(r.Config.Threshold) {
				blocked = append(blocked, geo.CountryCode(cc))
			}
		}
		sort.Slice(blocked, func(i, j int) bool { return blocked[i] < blocked[j] })
		r.NonExplicitFindings = append(r.NonExplicitFindings, NonExplicitFinding{
			DomainName:  r.TestDomains[dIdx],
			Rank:        r.TestRanks[dIdx],
			Kind:        kind,
			Consistency: score,
			Blocked:     blocked,
		})
	}
}
