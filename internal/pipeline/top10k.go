package pipeline

import (
	"sort"

	"geoblock/internal/blockpage"
	"geoblock/internal/category"
	"geoblock/internal/cluster"
	"geoblock/internal/consistency"
	"geoblock/internal/geo"
	"geoblock/internal/lumscan"
	"geoblock/internal/outlier"
	"geoblock/internal/telemetry"
	"geoblock/internal/textfeat"
)

// Top10KConfig tunes the §4 study. Zero values take the paper's
// parameters.
type Top10KConfig struct {
	InitialSamples  int     // 3
	ResampleCount   int     // 20
	Threshold       float64 // 0.80
	RepCountryCount int     // 20
	LengthCutoff    float64 // 0.30
	Concurrency     int
}

func (c *Top10KConfig) fill() {
	if c.InitialSamples == 0 {
		c.InitialSamples = 3
	}
	if c.ResampleCount == 0 {
		c.ResampleCount = 20
	}
	if c.Threshold == 0 {
		c.Threshold = consistency.DefaultThreshold
	}
	if c.RepCountryCount == 0 {
		c.RepCountryCount = 20
	}
	if c.LengthCutoff == 0 {
		c.LengthCutoff = outlier.DefaultCutoff
	}
	if c.Concurrency == 0 {
		c.Concurrency = 8
	}
}

// OutlierDoc is one extracted candidate block page with its body.
type OutlierDoc struct {
	Domain  int32
	Country int16
	Status  int16
	Len     int32
	Body    string
}

// RecallRow is one line of Table 2.
type RecallRow struct {
	Recalled int
	Actual   int
}

// Top10KResult is everything the §4 analysis needs.
type Top10KResult struct {
	Config Top10KConfig

	// Safe-list filtering (§4.1.1).
	InitialCount      int
	SafeDomains       []string
	SafeRanks         []int
	RemovedRisky      int
	RemovedCitizenLab int

	// Initial snapshot.
	Countries       []geo.CountryCode
	Initial         *lumscan.Result
	NeverResponded  int
	LuminatiBlocked int

	// Degradation accounting for the initial snapshot: countries that
	// lost shards to dead or browned-out infrastructure, and the
	// coverage attained vs requested. A degraded run keeps its typed
	// outage records here instead of leaking sentinel values into the
	// table math.
	Outages  []lumscan.Outage
	Coverage lumscan.Coverage

	// Outlier extraction (§4.1.2).
	RepCountries   []geo.CountryCode
	Rep            *outlier.Representative
	RepSampleCount int
	DiffsAll       []float64 // Figure 2: every sample's relative diff
	DiffsBlocked   []float64 // Figure 2: fingerprinted block pages only
	Outliers       []OutlierDoc

	// Clustering and labeling (§4.1.3).
	Clusters        []cluster.Cluster
	ClusterKinds    []blockpage.Kind
	DiscoveredKinds []blockpage.Kind

	// Length-heuristic evaluation (Table 2, §4.1.5).
	Recall map[blockpage.Kind]RecallRow

	// Telemetry is the study's engine-health snapshot at the end of the
	// run, in its deterministic view (runtime-class metrics stripped,
	// span durations zeroed) so the result stays a pure function of the
	// study inputs. The live registry — runtime metrics included — is
	// Study.Metrics.
	Telemetry *telemetry.Snapshot

	// Resampling and confirmation (§4.1.4, §4.2).
	CandidatePairs int
	// Candidates lists every pair that showed an explicit block page at
	// least once (pre-threshold) — the population the paper's
	// 100-sample experiment draws from (§4.1.4).
	Candidates     []Finding
	Findings       []Finding
	Eliminated     int
	AgreementRates []float64 // Figure 4: per candidate pair
}

// RunTop10K executes the full §4 study.
func (s *Study) RunTop10K(cfg Top10KConfig) *Top10KResult {
	cfg.fill()
	r := &Top10KResult{Config: cfg}
	sp := s.phase("top10k")
	defer func() {
		sp.End()
		r.Telemetry = s.snapshot()
	}()

	s.filterSafe(r)
	s.logf("top10k: %d initial, %d safe (%d risky, %d citizenlab removed)",
		r.InitialCount, len(r.SafeDomains), r.RemovedRisky, r.RemovedCitizenLab)

	r.Countries = s.measurableCountries()

	// Initial snapshot: 3 samples per pair.
	scanCfg := s.scanConfig("top10k-initial", sp)
	scanCfg.Samples = cfg.InitialSamples
	scanCfg.Concurrency = cfg.Concurrency
	var col lumscan.Collect
	initErr := s.scanStream("top10k-initial", scanCfg, r.SafeDomains, r.Countries,
		lumscan.CrossProduct(len(r.SafeDomains), len(r.Countries)), &col)
	r.Initial = &lumscan.Result{Domains: r.SafeDomains, Countries: r.Countries,
		Samples: col.Samples, Outages: col.Outages, Coverage: col.Coverage}
	s.noteScanErr("top10k-initial", initErr)
	r.Outages, r.Coverage = r.Initial.Outages, r.Initial.Coverage
	s.logf("top10k: initial snapshot %d samples", len(r.Initial.Samples))
	s.logCoverage("top10k", r.Outages, r.Coverage)

	s.populationDiagnostics(r)

	// Reference countries for representative lengths.
	ranked := s.rankCountriesByBlocking(r.SafeDomains, r.SafeRanks, r.Countries, 3, sp)
	k := cfg.RepCountryCount
	if k > len(ranked) {
		k = len(ranked)
	}
	r.RepCountries = ranked[:k]

	osp := sp.StartSpan("outliers")
	s.extractOutliers(r)
	osp.End()
	s.logf("top10k: %d outliers from %d reference samples", len(r.Outliers), r.RepSampleCount)

	csp := sp.StartSpan("cluster")
	s.clusterAndLabel(r)
	csp.End()
	s.logf("top10k: %d clusters, %d block-page kinds discovered", len(r.Clusters), len(r.DiscoveredKinds))

	s.evaluateRecall(r)

	s.resampleAndConfirm(r, sp)
	s.logf("top10k: %d candidate pairs, %d confirmed, %d eliminated",
		r.CandidatePairs, len(r.Findings), r.Eliminated)

	s.emitVerdicts(r.SafeDomains, r.Countries, r.Findings)
	return r
}

// filterSafe applies the §4.1.1 safe-list policy.
func (s *Study) filterSafe(r *Top10KResult) {
	top := s.World.Top10K()
	r.InitialCount = len(top)
	for _, d := range top {
		switch {
		case category.IsRisky(d.Category):
			r.RemovedRisky++
		case s.World.CitizenLab.Contains(d.Name):
			r.RemovedCitizenLab++
		default:
			r.SafeDomains = append(r.SafeDomains, d.Name)
			r.SafeRanks = append(r.SafeRanks, d.Rank)
		}
	}
}

// populationDiagnostics computes the §4.1.1 reachability numbers:
// domains that never produced a response, and the subset the proxy
// platform itself refused (X-Luminati-Error).
func (s *Study) populationDiagnostics(r *Top10KResult) {
	okByDomain := make([]bool, len(r.SafeDomains))
	lumByDomain := make([]bool, len(r.SafeDomains))
	for i := range r.Initial.Samples {
		sm := &r.Initial.Samples[i]
		if sm.OK() {
			okByDomain[sm.Domain] = true
		}
		if sm.Err == lumscan.ErrLuminati {
			lumByDomain[sm.Domain] = true
		}
	}
	for i := range okByDomain {
		if okByDomain[i] {
			continue
		}
		r.NeverResponded++
		if lumByDomain[i] {
			r.LuminatiBlocked++
		}
	}
}

// extractOutliers runs the §4.1.2 length heuristic over the reference
// countries and materializes candidate bodies (replaying samples whose
// bodies were not retained).
func (s *Study) extractOutliers(r *Top10KResult) {
	repSet := make(map[int16]bool, len(r.RepCountries))
	for i, cc := range r.Countries {
		for _, rc := range r.RepCountries {
			if cc == rc {
				repSet[int16(i)] = true
			}
		}
	}

	r.Rep = outlier.NewRepresentative()
	for i := range r.Initial.Samples {
		sm := &r.Initial.Samples[i]
		if !repSet[sm.Country] || !sm.OK() || sm.BodyLen <= 0 {
			continue
		}
		r.Rep.Observe(sm.Domain, int(sm.BodyLen))
	}

	for i := range r.Initial.Samples {
		sm := &r.Initial.Samples[i]
		if !repSet[sm.Country] || !sm.OK() || sm.BodyLen <= 0 {
			continue
		}
		r.RepSampleCount++
		diff, ok := r.Rep.RelativeDifference(sm.Domain, int(sm.BodyLen))
		if !ok {
			continue
		}
		r.DiffsAll = append(r.DiffsAll, diff)
		if sm.Body != "" && s.Classifier.IsBlockPage(sm.Body) {
			r.DiffsBlocked = append(r.DiffsBlocked, diff)
		}
		if !r.Rep.IsOutlier(sm.Domain, int(sm.BodyLen), r.Config.LengthCutoff) {
			continue
		}
		body := sm.Body
		if body == "" {
			replayed, _, err := lumscan.Replay(s.World, r.SafeDomains[sm.Domain], sm.ExitIP, sm.Seed, lumscan.BrowserHeaders(), 10)
			if err != nil {
				continue
			}
			body = replayed
		}
		r.Outliers = append(r.Outliers, OutlierDoc{
			Domain: sm.Domain, Country: sm.Country, Status: sm.Status,
			Len: sm.BodyLen, Body: body,
		})
	}
}

// clusterAndLabel is §4.1.3: cluster the candidate corpus, then label
// each cluster the way the authors did by hand — here against the
// template ground truth, which plays the role of the human judgment
// "this cluster is the Cloudflare page". The corpus is clustered as one
// body: provider denials collapse into one cluster per page class, and
// the 200-status junk (maintenance pages, default vhosts, SPA shells)
// collapses into a handful of large clusters — exactly the structure
// behind the paper's 119 examined clusters.
func (s *Study) clusterAndLabel(r *Top10KResult) {
	docs := make([]string, len(r.Outliers))
	for i := range r.Outliers {
		docs[i] = r.Outliers[i].Body
	}
	_, vecs := textfeat.FitTransform(docs)
	opts := cluster.DefaultOptions()
	opts.Workers = r.Config.Concurrency
	r.Clusters = cluster.SingleLink(docs, vecs, opts)

	// Label clusters by majority template match.
	kinds := append(blockpage.Kinds(), blockpage.Censorship, blockpage.Legal451)
	seen := map[blockpage.Kind]bool{}
	for _, c := range r.Clusters {
		counts := map[blockpage.Kind]int{}
		for _, m := range c.Members {
			body := r.Outliers[m].Body
			for _, k := range kinds {
				if blockpage.Matches(k, body) {
					counts[k]++
					break
				}
			}
		}
		best, bestN := blockpage.KindNone, 0
		for k, n := range counts {
			if n > bestN {
				best, bestN = k, n
			}
		}
		if bestN*2 < len(c.Members) {
			best = blockpage.KindNone
		}
		r.ClusterKinds = append(r.ClusterKinds, best)
		if best != blockpage.KindNone && best != blockpage.Censorship && !seen[best] {
			seen[best] = true
			r.DiscoveredKinds = append(r.DiscoveredKinds, best)
		}
	}
	sort.Slice(r.DiscoveredKinds, func(i, j int) bool { return r.DiscoveredKinds[i] < r.DiscoveredKinds[j] })
}

// DiscoveredProviders maps the discovered page kinds to the CDN and
// hosting providers they expose (the "7 CDNs and hosting providers" of
// Table 1).
func (r *Top10KResult) DiscoveredProviders() []string {
	set := map[string]bool{}
	for _, k := range r.DiscoveredKinds {
		switch k {
		case blockpage.Akamai:
			set["Akamai"] = true
		case blockpage.Cloudflare, blockpage.CloudflareCaptcha, blockpage.CloudflareJS:
			set["Cloudflare"] = true
		case blockpage.CloudFront:
			set["Amazon CloudFront"] = true
		case blockpage.AppEngine:
			set["Google AppEngine"] = true
		case blockpage.Incapsula:
			set["Incapsula"] = true
		case blockpage.Baidu, blockpage.BaiduCaptcha:
			set["Baidu"] = true
		case blockpage.Soasta:
			set["SOASTA"] = true
		}
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// ClusterSummary describes one cluster the way the manual examination
// step would record it: size, the label assigned, and an example
// domain whose sample sits in it.
type ClusterSummary struct {
	Size          int
	Kind          blockpage.Kind
	ExampleDomain string
	ExampleLen    int32
}

// ClusterSummaries lists the clusters in examination order (largest
// first), for the report and the worldd-style tooling.
func (r *Top10KResult) ClusterSummaries() []ClusterSummary {
	out := make([]ClusterSummary, 0, len(r.Clusters))
	for i, c := range r.Clusters {
		if len(c.Members) == 0 {
			continue
		}
		first := r.Outliers[c.Members[0]]
		out = append(out, ClusterSummary{
			Size:          len(c.Members),
			Kind:          r.ClusterKinds[i],
			ExampleDomain: r.SafeDomains[first.Domain],
			ExampleLen:    first.Len,
		})
	}
	return out
}

// evaluateRecall computes Table 2: among reference-country samples that
// are actually block pages (ground truth via retained bodies), how many
// did the length heuristic extract?
func (s *Study) evaluateRecall(r *Top10KResult) {
	repSet := make(map[int16]bool)
	for i, cc := range r.Countries {
		for _, rc := range r.RepCountries {
			if cc == rc {
				repSet[int16(i)] = true
			}
		}
	}
	r.Recall = make(map[blockpage.Kind]RecallRow)
	for i := range r.Initial.Samples {
		sm := &r.Initial.Samples[i]
		if !repSet[sm.Country] || !sm.OK() || sm.Body == "" {
			continue
		}
		kind := s.Classifier.Classify(sm.Body)
		if kind == blockpage.KindNone || kind == blockpage.Censorship {
			continue
		}
		row := r.Recall[kind]
		row.Actual++
		if r.Rep.IsOutlier(sm.Domain, int(sm.BodyLen), r.Config.LengthCutoff) {
			row.Recalled++
		}
		r.Recall[kind] = row
	}
}

// resampleAndConfirm is §4.1.4: find every pair that served an explicit
// geoblock page, sample it 20 more times (after the world moves on — a
// policy can change under the study), and confirm at the agreement
// threshold over all samples.
func (s *Study) resampleAndConfirm(r *Top10KResult, sp *telemetry.Span) {
	kinds := make(map[pairKey]blockpage.Kind)
	for i := range r.Initial.Samples {
		sm := &r.Initial.Samples[i]
		if !sm.OK() || sm.Body == "" {
			continue
		}
		if k := s.explicitKind(sm.Body); k != blockpage.KindNone {
			kinds[pairKey{sm.Domain, sm.Country}] = k
		}
	}
	r.CandidatePairs = len(kinds)
	for key, kind := range kinds {
		r.Candidates = append(r.Candidates, Finding{
			DomainName: r.SafeDomains[key.domain],
			Rank:       r.SafeRanks[key.domain],
			Country:    r.Countries[key.country],
			Kind:       kind,
		})
	}
	sort.Slice(r.Candidates, func(i, j int) bool {
		if r.Candidates[i].DomainName != r.Candidates[j].DomainName {
			return r.Candidates[i].DomainName < r.Candidates[j].DomainName
		}
		return r.Candidates[i].Country < r.Candidates[j].Country
	})

	// Time passes between the snapshot and the confirmation pass.
	s.World.AdvanceClock(1)

	tasks := make([]lumscan.Task, 0, len(kinds))
	for key := range kinds {
		tasks = append(tasks, lumscan.Task{Domain: key.domain, Country: key.country})
	}
	sort.Slice(tasks, func(i, j int) bool {
		if tasks[i].Country != tasks[j].Country {
			return tasks[i].Country < tasks[j].Country
		}
		return tasks[i].Domain < tasks[j].Domain
	})

	scanCfg := s.scanConfig("top10k-resample", sp)
	scanCfg.Samples = r.Config.ResampleCount
	scanCfg.Concurrency = r.Config.Concurrency

	// The confirmation pass streams straight into the rate fold: each
	// 20-sample pair is digested as its shard completes and its bodies
	// dropped, so the pass never holds a materialized Result.
	cands := make(map[pairKey]*candidate, len(kinds))
	s.collectPairRates(r.Initial, kinds, cands)
	s.noteScanErr("top10k-confirm", s.scanStream("top10k-resample", scanCfg, r.SafeDomains, r.Countries, tasks,
		s.pairRateSink(kinds, cands)))

	keys := make([]pairKey, 0, len(cands))
	for key := range cands {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].domain != keys[j].domain {
			return keys[i].domain < keys[j].domain
		}
		return keys[i].country < keys[j].country
	})
	for _, key := range keys {
		c := cands[key]
		r.AgreementRates = append(r.AgreementRates, c.rate.Frac())
		if !c.rate.Confirmed(r.Config.Threshold) {
			r.Eliminated++
			continue
		}
		r.Findings = append(r.Findings, Finding{
			DomainName: r.SafeDomains[key.domain],
			Rank:       r.SafeRanks[key.domain],
			Country:    r.Countries[key.country],
			Kind:       c.kind,
			Rate:       c.rate,
		})
	}
}

// UniqueDomains returns the count of distinct domains among findings.
func UniqueDomains(findings []Finding) int {
	set := map[string]bool{}
	for _, f := range findings {
		set[f.DomainName] = true
	}
	return len(set)
}

// FindingsByKind groups findings per page kind.
func FindingsByKind(findings []Finding) map[blockpage.Kind][]Finding {
	out := map[blockpage.Kind][]Finding{}
	for _, f := range findings {
		out[f.Kind] = append(out[f.Kind], f)
	}
	return out
}
