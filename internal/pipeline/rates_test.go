package pipeline

import (
	"testing"

	"geoblock/internal/blockpage"
	"geoblock/internal/fingerprint"
	"geoblock/internal/geo"
	"geoblock/internal/lumscan"
)

func TestCollectPairRates(t *testing.T) {
	s := &Study{Classifier: fingerprint.NewClassifier()}
	cfBody := blockpage.Render(blockpage.Cloudflare, blockpage.Vars{
		Domain: "x.example", CountryName: "Iran", RayID: "abc123", ClientIP: "1.2.3.4",
	})
	gaeBody := blockpage.Render(blockpage.AppEngine, blockpage.Vars{
		Domain: "x.example", CountryName: "Iran",
	})

	res := &lumscan.Result{
		Domains:   []string{"x.example"},
		Countries: []geo.CountryCode{"IR"},
		Samples: []lumscan.Sample{
			// Three responses: two matching the tracked kind, one an
			// origin page (body dropped), one error (excluded).
			{Domain: 0, Country: 0, Status: 403, Body: cfBody},
			{Domain: 0, Country: 0, Status: 403, Body: cfBody},
			{Domain: 0, Country: 0, Status: 200},
			{Domain: 0, Country: 0, Err: lumscan.ErrTimeout},
			// A different block page does NOT count toward this pair's
			// kind.
			{Domain: 0, Country: 0, Status: 403, Body: gaeBody},
		},
	}
	kinds := map[pairKey]blockpage.Kind{{0, 0}: blockpage.Cloudflare}
	cands := map[pairKey]*candidate{}
	s.collectPairRates(res, kinds, cands)

	c := cands[pairKey{0, 0}]
	if c == nil {
		t.Fatal("pair not collected")
	}
	if c.rate.Responses != 4 {
		t.Fatalf("responses = %d, want 4 (errors excluded)", c.rate.Responses)
	}
	if c.rate.Blocks != 2 {
		t.Fatalf("blocks = %d, want 2 (only the tracked kind counts)", c.rate.Blocks)
	}
}

func TestCollectPairRatesIgnoresUntracked(t *testing.T) {
	s := &Study{Classifier: fingerprint.NewClassifier()}
	res := &lumscan.Result{
		Domains:   []string{"x.example", "y.example"},
		Countries: []geo.CountryCode{"IR"},
		Samples: []lumscan.Sample{
			{Domain: 1, Country: 0, Status: 200},
		},
	}
	cands := map[pairKey]*candidate{}
	s.collectPairRates(res, map[pairKey]blockpage.Kind{{0, 0}: blockpage.Cloudflare}, cands)
	if len(cands) != 0 {
		t.Fatalf("untracked pair collected: %v", cands)
	}
}
