package pipeline

import (
	"sort"

	"geoblock/internal/blockpage"
	"geoblock/internal/consistency"
	"geoblock/internal/lumscan"
	"geoblock/internal/stats"
)

// ConsistencyExperiment is the §4.1.4/§4.1.5 machinery behind Figures 1
// and 3: sample each confirmed geoblocking pair many times, then
// subsample combinations of different sizes to measure (a) how
// consistently the block page shows at each sample size and (b) how
// often small samples miss it entirely.
type ConsistencyExperiment struct {
	// SampleSizes are the subsample sizes evaluated.
	SampleSizes []int
	// Draws is the number of random combinations per size (paper: 500).
	Draws int
	// Population is the per-pair sample count (paper: 100).
	Population int

	// RatesBySize[k] holds, for each pair, each draw's block fraction.
	RatesBySize map[int][]float64
	// FalseNegBySize[k] holds, per pair, the fraction of draws with no
	// block observation.
	FalseNegBySize map[int][]float64
}

// RunConsistencyExperiment samples every *candidate* pair `population`
// times and computes the subsampling curves. It mirrors §4.1.4: "we
// took the country-domain pairs where we saw at least one instance of
// an explicit block page and sampled them 100 additional times" — the
// pre-threshold population, so the noisy pairs the confirmation step
// later eliminates are part of the curves.
func (s *Study) RunConsistencyExperiment(r *Top10KResult, population, draws int, sizes []int) *ConsistencyExperiment {
	if population <= 0 {
		population = 100
	}
	if draws <= 0 {
		draws = 500
	}
	if len(sizes) == 0 {
		sizes = []int{1, 2, 3, 5, 10, 20, 40, 80, 100}
	}
	exp := &ConsistencyExperiment{
		SampleSizes:    sizes,
		Draws:          draws,
		Population:     population,
		RatesBySize:    map[int][]float64{},
		FalseNegBySize: map[int][]float64{},
	}

	domainIdx := map[string]int32{}
	for i, d := range r.SafeDomains {
		domainIdx[d] = int32(i)
	}
	countryIdx := map[string]int16{}
	for i, cc := range r.Countries {
		countryIdx[string(cc)] = int16(i)
	}

	tasks := make([]lumscan.Task, 0, len(r.Candidates))
	kinds := make(map[pairKey]struct{}, len(r.Candidates))
	for _, f := range r.Candidates {
		key := pairKey{domainIdx[f.DomainName], countryIdx[string(f.Country)]}
		if _, dup := kinds[key]; dup {
			continue
		}
		kinds[key] = struct{}{}
		tasks = append(tasks, lumscan.Task{Domain: key.domain, Country: key.country})
	}
	sort.Slice(tasks, func(i, j int) bool {
		if tasks[i].Country != tasks[j].Country {
			return tasks[i].Country < tasks[j].Country
		}
		return tasks[i].Domain < tasks[j].Domain
	})

	scanCfg := lumscan.DefaultConfig()
	scanCfg.Samples = population
	scanCfg.Phase = "consistency-100"
	// The experiment measures "the rate of other failures, for example
	// proxy errors, transient network failures, and local filtering"
	// (§4.1.5) — raw per-sample outcomes, so retries are off.
	scanCfg.Retries = 0

	// Per-pair boolean observation vectors (errors count as misses: the
	// experiment measures "the rate of other failures", §4.1.5). At 100
	// samples per pair this is the deepest scan in the repo, so each
	// sample streams into its bit and the body is gone immediately.
	perPair := map[pairKey][]bool{}
	s.noteScanErr("figure1", s.scanStream("figure1", scanCfg, r.SafeDomains, r.Countries, tasks,
		lumscan.SinkFunc(func(sm lumscan.Sample) {
			key := pairKey{sm.Domain, sm.Country}
			if _, tracked := kinds[key]; !tracked {
				return
			}
			hit := sm.OK() && sm.Body != "" && s.explicitKind(sm.Body) != blockpage.KindNone
			perPair[key] = append(perPair[key], hit)
		})))

	// Figure 1 draws from every candidate pair; Figure 3 ("known
	// geoblockers") only from the pairs the threshold confirmed.
	confirmed := map[pairKey]bool{}
	for _, f := range r.Findings {
		confirmed[pairKey{domainIdx[f.DomainName], countryIdx[string(f.Country)]}] = true
	}

	rng := s.studyRNG("consistency-subsample")
	keys := make([]pairKey, 0, len(perPair))
	for key := range perPair {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].domain != keys[j].domain {
			return keys[i].domain < keys[j].domain
		}
		return keys[i].country < keys[j].country
	})
	for _, key := range keys {
		blocks := perPair[key]
		for _, k := range sizes {
			rates := consistency.SubsampleBlockRates(blocks, k, draws, rng)
			exp.RatesBySize[k] = append(exp.RatesBySize[k], stats.Mean(rates))
			if confirmed[key] {
				exp.FalseNegBySize[k] = append(exp.FalseNegBySize[k],
					consistency.FalseNegativeRate(blocks, k, draws, rng))
			}
		}
	}
	return exp
}

// FractionBelow returns, for sample size k, the fraction of pairs whose
// mean block rate across draws falls below rate — the Figure 1 CDF
// readout (the paper: at 20 samples, 3.9% of pairs sat under 80%).
func (e *ConsistencyExperiment) FractionBelow(k int, rate float64) float64 {
	rs := e.RatesBySize[k]
	if len(rs) == 0 {
		return 0
	}
	n := 0
	for _, r := range rs {
		if r < rate {
			n++
		}
	}
	return float64(n) / float64(len(rs))
}

// MeanFalseNegative returns the average miss rate at sample size k —
// the Figure 3 series (the paper: 1.7% at 3 samples).
func (e *ConsistencyExperiment) MeanFalseNegative(k int) float64 {
	return stats.Mean(e.FalseNegBySize[k])
}
