package pipeline

import (
	"sort"
	"testing"

	"geoblock/internal/blockpage"
	"geoblock/internal/geo"
	"geoblock/internal/worldgen"
)

func TestAnalyzeTimeouts(t *testing.T) {
	s, r := top10K(t)
	res := s.AnalyzeTimeouts(r, 8)
	// Ground truth: which safe domains actually timeout-geoblock?
	truth := map[string][]geo.CountryCode{}
	for _, name := range r.SafeDomains {
		d, _ := s.World.Lookup(name)
		if d == nil || len(d.TimeoutBlock) == 0 {
			continue
		}
		var cs []geo.CountryCode
		for cc := range d.TimeoutBlock {
			cs = append(cs, cc)
		}
		sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
		truth[name] = cs
	}
	if len(truth) == 0 {
		t.Skip("no timeout geoblockers at this scale")
	}
	if len(res.Findings) == 0 {
		t.Fatalf("%d true timeout geoblockers but none found (candidates: %d)",
			len(truth), res.CandidateDomains)
	}
	for _, f := range res.Findings {
		d, ok := s.World.Lookup(f.DomainName)
		if !ok {
			t.Fatalf("finding names unknown domain %s", f.DomainName)
		}
		for _, cc := range f.Countries {
			if !d.TimeoutBlock[cc] && !d.CensoredIn[cc] && !d.Unreachable {
				t.Errorf("%s: %s flagged but no timeout rule exists", f.DomainName, cc)
			}
		}
	}
}

func TestAppLayerStudy(t *testing.T) {
	s, r := top10K(t)
	// Candidates: domains with an app-layer policy (the study would
	// normally sweep everything; testing the true positives keeps this
	// fast).
	var domains []string
	restricted := map[string]map[geo.CountryCode]bool{}
	for _, name := range r.SafeDomains {
		d, _ := s.World.Lookup(name)
		if d == nil || d.AppLayer == nil || d.Unreachable || len(d.CensoredIn) > 0 {
			continue
		}
		domains = append(domains, name)
		restricted[name] = d.AppLayer.RestrictedIn
		if len(domains) >= 8 {
			break
		}
	}
	if len(domains) == 0 {
		t.Skip("no app-layer domains at this scale")
	}
	targets := []geo.CountryCode{"IR", "SY", "CN", "RU", "BR", "IN"}
	res := s.RunAppLayerStudy(domains, "US", targets)
	if len(res.Findings) == 0 {
		t.Fatal("no app-layer discrimination detected despite true positives")
	}
	for _, f := range res.Findings {
		d, _ := s.World.Lookup(f.DomainName)
		if d == nil || d.AppLayer == nil {
			t.Fatalf("finding on domain without a policy: %s", f.DomainName)
		}
		if f.NoticeAdded || len(f.MissingLinks) > 0 {
			if !d.AppLayer.RestrictedIn[f.Country] {
				t.Errorf("%s/%s: feature removal flagged without a restriction", f.DomainName, f.Country)
			}
		}
		if f.PriceRatio > 1.02 {
			if _, ok := d.AppLayer.PriceMarkup[f.Country]; !ok {
				t.Errorf("%s/%s: markup flagged without a policy", f.DomainName, f.Country)
			}
		}
	}
}

func TestAppLayerNoFalsePositives(t *testing.T) {
	s, r := top10K(t)
	// Plain domains must produce no findings.
	var domains []string
	for _, name := range r.SafeDomains {
		d, _ := s.World.Lookup(name)
		if d == nil || d.AppLayer != nil || d.Unreachable || len(d.CensoredIn) > 0 ||
			len(d.GeoRules) > 0 || d.GAEHosted || d.AirbnbStyle {
			continue
		}
		domains = append(domains, name)
		if len(domains) >= 10 {
			break
		}
	}
	res := s.RunAppLayerStudy(domains, "US", []geo.CountryCode{"IR", "CN", "DE"})
	if len(res.Findings) != 0 {
		t.Fatalf("false positives: %+v", res.Findings)
	}
}

func TestRegionalAnalysis(t *testing.T) {
	s, _ := top10K(t)
	// geniusdisplay.com: AppEngine page from Crimea only; airbnb.fr the
	// same; a plain domain as control.
	var plain string
	for _, d := range s.World.Top10K() {
		if len(d.GeoRules) == 0 && !d.GAEHosted && !d.AirbnbStyle && !d.Unreachable &&
			len(d.CensoredIn) == 0 && d.JunkRate == 0 && len(d.TimeoutBlock) == 0 {
			plain = d.Name
			break
		}
	}
	findings := s.RunRegionalAnalysis([]string{"geniusdisplay.com", "airbnb.fr", plain}, 12)
	byName := map[string]RegionalFinding{}
	for _, f := range findings {
		byName[f.DomainName] = f
	}
	gd, ok := byName["geniusdisplay.com"]
	if !ok {
		t.Fatal("geniusdisplay.com region-granular block not detected")
	}
	if gd.Kind != blockpage.AppEngine {
		t.Fatalf("geniusdisplay kind = %v", gd.Kind)
	}
	if _, ok := byName["airbnb.fr"]; !ok {
		t.Fatal("airbnb.fr Crimea block not detected")
	}
	if _, ok := byName[plain]; ok {
		t.Fatalf("control domain %s misdetected", plain)
	}
}

func TestWorldHasExtensionPolicies(t *testing.T) {
	w := worldgen.Generate(worldgen.TestConfig())
	timeouts, applayers := 0, 0
	for _, d := range w.Top10K() {
		if len(d.TimeoutBlock) > 0 {
			timeouts++
			if d.Providers[0].IsCDN() {
				t.Fatalf("%s: CDN-fronted site with a timeout rule", d.Name)
			}
		}
		if d.AppLayer != nil {
			applayers++
		}
	}
	if timeouts == 0 {
		t.Fatal("no timeout geoblockers generated")
	}
	if applayers == 0 {
		t.Fatal("no app-layer policies generated")
	}
}
