package pipeline

import (
	"sync"
	"testing"

	"geoblock/internal/blockpage"
	"geoblock/internal/geo"
	"geoblock/internal/worldgen"
)

var (
	once1M   sync.Once
	study1M  *Study
	result1M *Top1MResult
)

func top1M(t *testing.T) (*Study, *Top1MResult) {
	t.Helper()
	once1M.Do(func() {
		w := worldgen.Generate(worldgen.TestConfig())
		study1M = New(w)
		result1M = study1M.RunTop1M(Top1MConfig{Concurrency: 8})
	})
	return study1M, result1M
}

func TestTop1MDiscovery(t *testing.T) {
	s, r := top1M(t)
	cfg := s.World.Cfg
	for _, p := range []worldgen.Provider{
		worldgen.Cloudflare, worldgen.CloudFront, worldgen.Akamai,
		worldgen.Incapsula, worldgen.AppEngine,
	} {
		got := len(r.Discovered.ByProvider[p])
		// Discovery covers Top 10K + Top 1M customers; compare against
		// the configured Top-1M population with headroom for the
		// Top-10K share and prober losses.
		floor := cfg.Scaled(cfg.Top1MProviderCounts[p]) * 3 / 4
		if got < floor {
			t.Errorf("%s discovered %d, want ≥ %d", p, got, floor)
		}
	}
	if r.DualCount == 0 {
		t.Fatal("no dual-provider customers discovered")
	}
}

func TestTop1MSampling(t *testing.T) {
	_, r := top1M(t)
	if r.EligibleCount == 0 {
		t.Fatal("no eligible domains")
	}
	want := int(float64(r.EligibleCount) * 0.05)
	if len(r.TestDomains) < want-2 || len(r.TestDomains) > want+2 {
		t.Fatalf("sample size %d, want ~%d", len(r.TestDomains), want)
	}
	// §5.1.3: the Top-1M sample is better behaved than the Top 10K.
	if r.NeverResponded > len(r.TestDomains)/20 {
		t.Fatalf("too many unreachable: %d of %d", r.NeverResponded, len(r.TestDomains))
	}
}

func TestTop1MExplicitFindings(t *testing.T) {
	_, r := top1M(t)
	if len(r.ExplicitFindings) == 0 {
		t.Fatal("no explicit geoblocking found")
	}
	perCountry := map[geo.CountryCode]int{}
	gaeCountries := map[geo.CountryCode]bool{}
	for _, f := range r.ExplicitFindings {
		if !f.Kind.Explicit() {
			t.Fatalf("non-explicit finding %+v", f)
		}
		perCountry[f.Country]++
		if f.Kind == blockpage.AppEngine {
			gaeCountries[f.Country] = true
		}
	}
	for cc := range gaeCountries {
		switch cc {
		case "IR", "SY", "SD", "CU":
		default:
			t.Fatalf("AppEngine blocking seen in %s", cc)
		}
	}
	// Sanctioned countries lead (Table 7).
	for _, sanc := range []geo.CountryCode{"IR", "SY", "SD", "CU"} {
		for _, normal := range []geo.CountryCode{"CH", "JP", "NZ"} {
			if perCountry[sanc] < perCountry[normal] {
				t.Errorf("%s (%d) should out-block %s (%d)", sanc, perCountry[sanc], normal, perCountry[normal])
			}
		}
	}
}

func TestTop1MOverallRate(t *testing.T) {
	_, r := top1M(t)
	unique := UniqueDomains(r.ExplicitFindings)
	rate := float64(unique) / float64(len(r.TestDomains))
	// Paper: 4.4% of tested domains geoblock in at least one country.
	if rate < 0.01 || rate > 0.12 {
		t.Fatalf("unique geoblocker rate %.3f (n=%d of %d) outside band",
			rate, unique, len(r.TestDomains))
	}
}

func TestTop1MGAERate(t *testing.T) {
	_, r := top1M(t)
	gaeTested := r.TestedPerProvider[worldgen.AppEngine]
	if gaeTested == 0 {
		t.Skip("no GAE domains in sample at this scale")
	}
	blocked := map[string]bool{}
	for _, f := range r.ExplicitFindings {
		if f.Kind == blockpage.AppEngine {
			blocked[f.DomainName] = true
		}
	}
	rate := float64(len(blocked)) / float64(gaeTested)
	// Paper: 16.8% of AppEngine-detected sample domains geoblock.
	if rate < 0.05 || rate > 0.35 {
		t.Fatalf("GAE geoblock rate %.3f (n=%d of %d) outside band", rate, len(blocked), gaeTested)
	}
}

func TestTop1MNonExplicit(t *testing.T) {
	_, r := top1M(t)
	if r.NonExplicitSeen[blockpage.Akamai]+r.NonExplicitSeen[blockpage.Incapsula] == 0 {
		t.Skip("no ambiguous block pages at this scale")
	}
	for _, f := range r.NonExplicitFindings {
		if f.Consistency != 1.0 {
			t.Fatalf("non-explicit finding with consistency %v", f.Consistency)
		}
		if f.Kind != blockpage.Akamai && f.Kind != blockpage.Incapsula {
			t.Fatalf("unexpected non-explicit kind %v", f.Kind)
		}
		if len(f.Blocked) == 0 {
			t.Fatalf("finding with no blocked countries: %+v", f)
		}
		if len(f.Blocked) >= 170 {
			t.Fatalf("blocked-everywhere domain slipped through: %+v", f)
		}
	}
	// Explicit geoblockers are much more consistent than the ambiguous
	// pages (§5.2.2: 85% vs ~14-16% at score 1.0). Verify the ambiguous
	// scores include sub-1.0 values when bot noise exists.
	scores := append(r.ConsistencyScores[blockpage.Akamai], r.ConsistencyScores[blockpage.Incapsula]...)
	if len(scores) > 5 {
		low := 0
		for _, sc := range scores {
			if sc < 1.0 {
				low++
			}
		}
		if low == 0 {
			t.Log("note: all ambiguous domains perfectly consistent at this scale")
		}
	}
}

func TestExploration(t *testing.T) {
	s, _ := top1M(t)
	r := s.RunExploration()
	if r.NSCloudflare == 0 || r.NSAkamai == 0 {
		t.Fatalf("NS discovery empty: cf=%d ak=%d", r.NSCloudflare, r.NSAkamai)
	}
	if r.Iran403 <= r.US403 {
		t.Fatalf("Iran 403s (%d) must exceed US control (%d)", r.Iran403, r.US403)
	}
	if r.PairsBlockpage == 0 {
		t.Fatal("no block-page pairs observed")
	}
	if r.GenuinePairs+r.FalsePositives != r.PairsBlockpage {
		t.Fatal("verification accounting broken")
	}
	if r.FalsePositives == 0 {
		t.Fatal("expected bot-detection false positives from crawler headers")
	}
	// Virtually all false positives come from Akamai bot detection; a
	// stray non-Akamai one can occur when a GeoIP flip hides a genuine
	// Cloudflare block during verification.
	if r.FalsePositivesAkamai*10 < r.FalsePositives*9 {
		t.Fatalf("false positives should be dominated by Akamai (ak=%d total=%d)",
			r.FalsePositivesAkamai, r.FalsePositives)
	}
	fpRate := float64(r.FalsePositives) / float64(r.PairsBlockpage)
	// Paper: 27% of flagged pairs were false positives.
	if fpRate < 0.05 || fpRate > 0.65 {
		t.Fatalf("false-positive rate %.2f outside band", fpRate)
	}
}
