package pipeline

import (
	"sync"
	"testing"

	"geoblock/internal/blockpage"
	"geoblock/internal/geo"
	"geoblock/internal/worldgen"
)

// The Top-10K study is expensive even at test scale; run it once and
// share the result across tests.
var (
	onceTop10K   sync.Once
	sharedStudy  *Study
	sharedResult *Top10KResult
)

func top10K(t *testing.T) (*Study, *Top10KResult) {
	t.Helper()
	onceTop10K.Do(func() {
		w := worldgen.Generate(worldgen.TestConfig())
		sharedStudy = New(w)
		sharedResult = sharedStudy.RunTop10K(Top10KConfig{Concurrency: 8})
	})
	return sharedStudy, sharedResult
}

func TestTop10KFiltering(t *testing.T) {
	_, r := top10K(t)
	if r.InitialCount != 1000 {
		t.Fatalf("initial = %d", r.InitialCount)
	}
	frac := float64(len(r.SafeDomains)) / float64(r.InitialCount)
	if frac < 0.70 || frac > 0.90 {
		t.Fatalf("safe fraction %.2f, want ~0.80", frac)
	}
	if r.RemovedRisky == 0 || r.RemovedCitizenLab == 0 {
		t.Fatalf("filter removed risky=%d citizenlab=%d", r.RemovedRisky, r.RemovedCitizenLab)
	}
}

func TestTop10KCoverage(t *testing.T) {
	_, r := top10K(t)
	if len(r.Countries) != 177 {
		t.Fatalf("countries = %d", len(r.Countries))
	}
	want := len(r.SafeDomains) * len(r.Countries) * 3
	if len(r.Initial.Samples) != want {
		t.Fatalf("samples = %d, want %d", len(r.Initial.Samples), want)
	}
	if r.NeverResponded == 0 {
		t.Fatal("expected some unreachable domains")
	}
	if r.NeverResponded > len(r.SafeDomains)/10 {
		t.Fatalf("too many unreachable: %d", r.NeverResponded)
	}
}

func TestTop10KOutliers(t *testing.T) {
	_, r := top10K(t)
	if len(r.RepCountries) != 20 {
		t.Fatalf("rep countries = %d", len(r.RepCountries))
	}
	// Sanctioned countries should rank into the reference set.
	found := 0
	for _, cc := range r.RepCountries {
		switch cc {
		case "IR", "SY", "SD", "CU":
			found++
		}
	}
	if found < 3 {
		t.Fatalf("only %d sanctioned countries in the reference set %v", found, r.RepCountries)
	}
	if len(r.Outliers) == 0 {
		t.Fatal("no outliers extracted")
	}
	outFrac := float64(len(r.Outliers)) / float64(r.RepSampleCount)
	// Paper: 5.1% of the reference samples.
	if outFrac < 0.005 || outFrac > 0.15 {
		t.Fatalf("outlier fraction %.3f outside plausible band", outFrac)
	}
	for _, o := range r.Outliers {
		if o.Body == "" {
			t.Fatal("outlier without body")
		}
	}
}

func TestTop10KDiscovery(t *testing.T) {
	_, r := top10K(t)
	if len(r.Clusters) == 0 {
		t.Fatal("no clusters")
	}
	kinds := map[blockpage.Kind]bool{}
	for _, k := range r.DiscoveredKinds {
		kinds[k] = true
	}
	// The cornerstone discoveries must be present.
	for _, k := range []blockpage.Kind{blockpage.Cloudflare, blockpage.AppEngine} {
		if !kinds[k] {
			t.Errorf("kind %v not discovered (have %v)", k, r.DiscoveredKinds)
		}
	}
	provs := r.DiscoveredProviders()
	if len(provs) < 4 {
		t.Fatalf("discovered providers = %v", provs)
	}
}

func TestTop10KRecall(t *testing.T) {
	_, r := top10K(t)
	var recalled, actual int
	for _, row := range r.Recall {
		recalled += row.Recalled
		actual += row.Actual
		if row.Recalled > row.Actual {
			t.Fatalf("recall row exceeds actual: %+v", row)
		}
	}
	if actual == 0 {
		t.Fatal("no actual block pages in the reference countries")
	}
	overall := float64(recalled) / float64(actual)
	// Paper: 58.3% overall; wide tolerance for the scaled world.
	if overall < 0.25 || overall > 0.95 {
		t.Fatalf("overall recall %.2f outside plausible band", overall)
	}
}

func TestTop10KFindings(t *testing.T) {
	_, r := top10K(t)
	if len(r.Findings) == 0 {
		t.Fatal("no confirmed geoblocking")
	}
	if r.CandidatePairs < len(r.Findings) {
		t.Fatal("more findings than candidates")
	}
	if r.Eliminated+len(r.Findings) != len(r.AgreementRates) {
		t.Fatalf("eliminated %d + findings %d != candidates with rates %d",
			r.Eliminated, len(r.Findings), len(r.AgreementRates))
	}
	perCountry := map[geo.CountryCode]int{}
	for _, f := range r.Findings {
		if !f.Kind.Explicit() {
			t.Fatalf("non-explicit finding: %+v", f)
		}
		if f.Rate.Frac() < 0.8 {
			t.Fatalf("finding below threshold: %+v", f)
		}
		perCountry[f.Country]++
	}
	// Shape: the sanctioned four dominate.
	for _, sanc := range []geo.CountryCode{"IR", "SY", "SD", "CU"} {
		if perCountry[sanc] < perCountry["DE"] {
			t.Errorf("%s (%d findings) should exceed DE (%d)", sanc, perCountry[sanc], perCountry["DE"])
		}
	}
	unique := UniqueDomains(r.Findings)
	// Scale 0.1 of the paper's 100 unique domains.
	if unique < 3 || unique > 40 {
		t.Fatalf("unique geoblocked domains = %d", unique)
	}
}

func TestTop10KMakroEliminated(t *testing.T) {
	// makro.co.za's rule lifts between the snapshot and the resample;
	// it must appear as a candidate but not survive confirmation.
	_, r := top10K(t)
	for _, f := range r.Findings {
		if f.DomainName == "makro.co.za" {
			t.Fatal("makro.co.za should have been eliminated by the threshold")
		}
	}
	if r.Eliminated == 0 {
		t.Fatal("no eliminated pairs at all; the threshold did nothing")
	}
}

func TestTop10KAppEngineOnlySanctioned(t *testing.T) {
	_, r := top10K(t)
	for _, f := range r.Findings {
		if f.Kind != blockpage.AppEngine {
			continue
		}
		switch f.Country {
		case "IR", "SY", "SD", "CU":
		default:
			t.Fatalf("AppEngine finding outside the sanctioned set: %s", f.Country)
		}
	}
}

func TestFindingsByKind(t *testing.T) {
	_, r := top10K(t)
	groups := FindingsByKind(r.Findings)
	total := 0
	for _, fs := range groups {
		total += len(fs)
	}
	if total != len(r.Findings) {
		t.Fatal("grouping lost findings")
	}
}

func TestConsistencyExperiment(t *testing.T) {
	s, r := top10K(t)
	exp := s.RunConsistencyExperiment(r, 30, 100, []int{1, 3, 20})
	if len(exp.RatesBySize[3]) == 0 {
		t.Fatal("no rates collected")
	}
	fn1 := exp.MeanFalseNegative(1)
	fn3 := exp.MeanFalseNegative(3)
	fn20 := exp.MeanFalseNegative(20)
	if fn3 > fn1+1e-9 || fn20 > fn3+1e-9 {
		t.Fatalf("false negatives must shrink with sample size: %v %v %v", fn1, fn3, fn20)
	}
	if fn3 > 0.2 {
		t.Fatalf("3-sample miss rate %.3f too high (paper: 1.7%%)", fn3)
	}
	// The candidate population includes the transient pairs the
	// threshold later eliminates (makro-style policy flips, stray GeoIP
	// exits). makro.co.za alone contributes ~30 expired pairs — a fixed
	// cameo cost that is ~30% of the candidate pool at test scale but
	// only ~4.5% at paper scale, where the measured fraction (~12%)
	// sits near the paper's 11.4% eliminated / 3.9% below-80 numbers.
	if below := exp.FractionBelow(20, 0.8); below > 0.60 {
		t.Fatalf("%.2f of pairs below 80%% at 20 samples", below)
	}
}

func TestComorosIsTheResponseRateOutlier(t *testing.T) {
	// §4.1.1: every country returned 89.2–93.9% of pairs except Comoros
	// at 76.4%. The world's one deliberately degraded (but usable)
	// country must surface exactly there.
	_, r := top10K(t)
	type pairIdx struct {
		d int32
		c int16
	}
	seen := map[pairIdx]bool{}
	ok := map[pairIdx]bool{}
	for i := range r.Initial.Samples {
		sm := &r.Initial.Samples[i]
		key := pairIdx{sm.Domain, sm.Country}
		seen[key] = true
		if sm.OK() {
			ok[key] = true
		}
	}
	perCountrySeen := map[int16]int{}
	perCountryOK := map[int16]int{}
	for key := range seen {
		perCountrySeen[key.c]++
		if ok[key] {
			perCountryOK[key.c]++
		}
	}
	var kmRate float64
	better := 0
	for ci, n := range perCountrySeen {
		rate := float64(perCountryOK[ci]) / float64(n)
		if r.Countries[ci] == "KM" {
			kmRate = rate
		} else if rate > 0.85 {
			better++
		}
	}
	if kmRate > 0.93 {
		t.Fatalf("Comoros response rate %.3f; should be the degraded outlier", kmRate)
	}
	if better < 150 {
		t.Fatalf("only %d countries above 85%% response rate", better)
	}
}
