package pipeline

import (
	"testing"

	"geoblock/internal/lumscan"
	"geoblock/internal/proxy"
	"geoblock/internal/worldgen"
)

// TestScanDeterminismAcrossSystems guards the property every recorded
// experiment depends on: two independently constructed worlds with the
// same seed produce bit-identical scans (map-iteration order must never
// leak into RNG draw sequences).
func TestScanDeterminismAcrossSystems(t *testing.T) {
	cfg := worldgen.TestConfig()
	cfg.Scale = 0.02
	cfg.Seed = 11
	run := func() *lumscan.Result {
		w := worldgen.Generate(cfg)
		net := proxy.NewNetwork(w)
		var domains []string
		for _, d := range w.Top10K() {
			domains = append(domains, d.Name)
		}
		countries := w.Geo.Measurable()
		sc := lumscan.DefaultConfig()
		sc.Phase = "det"
		return lumscan.Scan(net, domains, countries, lumscan.CrossProduct(len(domains), len(countries)), sc)
	}
	a, b := run(), run()
	if len(a.Samples) != len(b.Samples) {
		t.Fatalf("counts differ")
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("sample %d differs:\n%+v\n%+v (domain=%s country=%s)",
				i, a.Samples[i], b.Samples[i], a.Domains[a.Samples[i].Domain], a.Countries[a.Samples[i].Country])
		}
	}
}
