package pipeline

import (
	"testing"

	"geoblock/internal/blockpage"
)

func TestClusterCountReviewable(t *testing.T) {
	// The paper examined 119 clusters by hand. Our corpus must collapse
	// to a hand-reviewable count: block-page classes plus a handful of
	// junk clusters plus stragglers — not thousands of per-site groups.
	_, r := top10K(t)
	if len(r.Clusters) > 300 {
		t.Fatalf("%d clusters from %d outliers; not hand-reviewable (paper: 119)",
			len(r.Clusters), len(r.Outliers))
	}
	if len(r.Clusters) < 10 {
		t.Fatalf("only %d clusters; the corpus collapsed too far", len(r.Clusters))
	}
	// The largest clusters must dominate the corpus.
	top, total := 0, 0
	for i, c := range r.Clusters {
		if i < 20 {
			top += c.Size()
		}
		total += c.Size()
	}
	if float64(top) < 0.8*float64(total) {
		t.Fatalf("top-20 clusters cover only %d of %d outliers", top, total)
	}
}

func TestCensorshipClustersNotDiscovered(t *testing.T) {
	// Censorship pages form their own cluster during examination, but
	// must never be "discovered" as a CDN block page class.
	_, r := top10K(t)
	censorLabeled := false
	for _, k := range r.ClusterKinds {
		if k == blockpage.Censorship {
			censorLabeled = true
		}
	}
	for _, k := range r.DiscoveredKinds {
		if k == blockpage.Censorship {
			t.Fatal("censorship page treated as a geoblocking discovery")
		}
	}
	if !censorLabeled {
		t.Log("no censorship cluster at this scale (allowed)")
	}
}
