package report

import (
	"strings"
	"testing"

	"geoblock/internal/stats"
)

func TestTable(t *testing.T) {
	var b strings.Builder
	Table(&b, "Demo", []string{"Country", "Count"}, [][]string{
		{"Syria", "71"},
		{"Iran", "67"},
	})
	out := b.String()
	for _, want := range []string{"Demo", "Country", "Syria", "71", "Iran"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 5 {
		t.Fatalf("too few lines:\n%s", out)
	}
}

func TestCSV(t *testing.T) {
	var b strings.Builder
	err := CSV(&b, []string{"a", "b"}, [][]string{{"1", "x,y"}, {"2", "z"}})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "\"x,y\"") {
		t.Fatalf("comma not quoted:\n%s", out)
	}
	if !strings.HasPrefix(out, "a,b\n") {
		t.Fatalf("header wrong:\n%s", out)
	}
}

func TestSeriesCSV(t *testing.T) {
	var b strings.Builder
	err := SeriesCSV(&b, []stats.Series{
		{Name: "s1", Points: []stats.Point{{X: 1, Y: 0.5}, {X: 2, Y: 1}}},
		{Name: "s2", Points: []stats.Point{{X: 1, Y: 0.1}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Count(out, "\n") != 4 { // header + 3 points
		t.Fatalf("line count wrong:\n%s", out)
	}
	if !strings.Contains(out, "s1,1,0.5") {
		t.Fatalf("point row missing:\n%s", out)
	}
}

func TestChart(t *testing.T) {
	var b strings.Builder
	Chart(&b, "CDF", []stats.Series{
		{Name: "rates", Points: []stats.Point{{X: 0, Y: 0}, {X: 0.5, Y: 0.6}, {X: 1, Y: 1}}},
	}, 40, 8)
	out := b.String()
	if !strings.Contains(out, "CDF") || !strings.Contains(out, "*") {
		t.Fatalf("chart missing content:\n%s", out)
	}
	if !strings.Contains(out, "rates") {
		t.Fatal("legend missing")
	}
}

func TestChartEmpty(t *testing.T) {
	var b strings.Builder
	Chart(&b, "empty", nil, 40, 8)
	if !strings.Contains(b.String(), "no data") {
		t.Fatal("empty chart should say so")
	}
}

func TestChartFlatSeries(t *testing.T) {
	var b strings.Builder
	Chart(&b, "flat", []stats.Series{
		{Name: "konst", Points: []stats.Point{{X: 1, Y: 5}, {X: 2, Y: 5}}},
	}, 30, 5)
	if b.Len() == 0 {
		t.Fatal("flat series should still render")
	}
}

func TestHelpers(t *testing.T) {
	if Itoa(42) != "42" {
		t.Fatal("Itoa broken")
	}
	if PctStr(0.583) != "58.3%" {
		t.Fatal("PctStr broken")
	}
}
