// Package report renders tables and figure series as aligned text and
// CSV — the shared output layer of the cmd tools and the benchmark
// harness.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strings"

	"geoblock/internal/stats"
)

// Table writes an aligned text table with a title rule.
func Table(w io.Writer, title string, headers []string, rows [][]string) {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	total := len(widths)*3 + 1
	for _, wd := range widths {
		total += wd
	}

	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", min(total, 100)))
	writeRow(w, headers, widths)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(w, sep, widths)
	for _, row := range rows {
		writeRow(w, row, widths)
	}
	fmt.Fprintln(w)
}

func writeRow(w io.Writer, cells []string, widths []int) {
	var b strings.Builder
	for i, cell := range cells {
		if i > 0 {
			b.WriteString("   ")
		}
		b.WriteString(cell)
		if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
			b.WriteString(strings.Repeat(" ", pad))
		}
	}
	fmt.Fprintln(w, b.String())
}

// CSV writes headers plus rows in RFC 4180 form.
func CSV(w io.Writer, headers []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(headers); err != nil {
		return err
	}
	for _, row := range rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SeriesCSV writes one or more series as long-form CSV
// (series,x,y rows).
func SeriesCSV(w io.Writer, series []stats.Series) error {
	rows := make([][]string, 0, 64)
	for _, s := range series {
		for _, p := range s.Points {
			rows = append(rows, []string{s.Name, formatFloat(p.X), formatFloat(p.Y)})
		}
	}
	return CSV(w, []string{"series", "x", "y"}, rows)
}

// Chart renders series as a simple ASCII line chart: good enough to
// eyeball the shape of a CDF or a cumulative curve in a terminal.
func Chart(w io.Writer, title string, series []stats.Series, width, height int) {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, p := range s.Points {
			minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
			minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
		}
	}
	if math.IsInf(minX, 1) {
		fmt.Fprintf(w, "%s\n(no data)\n", title)
		return
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	marks := "*o+x#@%&"
	for si, s := range series {
		mark := marks[si%len(marks)]
		for _, p := range s.Points {
			x := int((p.X - minX) / (maxX - minX) * float64(width-1))
			y := int((p.Y - minY) / (maxY - minY) * float64(height-1))
			row := height - 1 - y
			grid[row][x] = mark
		}
	}

	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "y: [%s, %s]\n", formatFloat(minY), formatFloat(maxY))
	for _, row := range grid {
		fmt.Fprintf(w, "| %s\n", string(row))
	}
	fmt.Fprintf(w, "+%s\n", strings.Repeat("-", width+1))
	fmt.Fprintf(w, "x: [%s, %s]\n", formatFloat(minX), formatFloat(maxX))
	for si, s := range series {
		fmt.Fprintf(w, "  %c %s\n", marks[si%len(marks)], s.Name)
	}
	fmt.Fprintln(w)
}

func formatFloat(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%.4g", f)
}

// Itoa formats an int (tiny convenience for table rows).
func Itoa(n int) string { return fmt.Sprintf("%d", n) }

// PctStr formats a fraction as a percentage with one decimal.
func PctStr(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
