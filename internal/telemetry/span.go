// Span-style phase tracing. Spans form an aggregated tree — pipeline
// phases at the root, scan phases beneath them, countries beneath
// those — where same-named activations merge into one node carrying an
// activation count, a total duration, and a tally of outcome keys.
// Aggregation (rather than an event log) keeps the trace deterministic:
// the tree's shape and counts are a function of the work performed, not
// of the order workers happened to perform it.
package telemetry

import (
	"sync"
	"time"
)

// node is one name in the span tree. All fields are guarded by mu;
// nodes are created once and never removed.
type node struct {
	mu       sync.Mutex
	count    int64
	total    time.Duration
	outcomes map[string]int64
	children map[string]*node
}

func (n *node) child(name string) *node {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.children == nil {
		n.children = map[string]*node{}
	}
	c := n.children[name]
	if c == nil {
		c = &node{}
		n.children[name] = c
	}
	return c
}

func (n *node) done(d time.Duration) {
	n.mu.Lock()
	n.count++
	n.total += d
	n.mu.Unlock()
}

func (n *node) outcome(key string) {
	n.mu.Lock()
	if n.outcomes == nil {
		n.outcomes = map[string]int64{}
	}
	n.outcomes[key]++
	n.mu.Unlock()
}

// Span is one live activation of a tree node. End it exactly once;
// starting the same name again later merges into the same node. A nil
// *Span no-ops, and spans started under it are nil too, so call sites
// never branch on whether telemetry is wired.
type Span struct {
	reg   *Registry
	n     *node
	start time.Time
}

// StartSpan opens a root-level span.
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	return &Span{reg: r, n: r.root.child(name), start: r.Now()}
}

// StartSpan opens a child activation under s.
func (s *Span) StartSpan(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{reg: s.reg, n: s.n.child(name), start: s.reg.Now()}
}

// Outcome tallies one occurrence of key on the span's node — "ok", an
// outage reason, an error class. Call any number of times before End.
func (s *Span) Outcome(key string) {
	if s == nil {
		return
	}
	s.n.outcome(key)
}

// End closes the activation, folding its duration and count into the
// node.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.n.done(s.reg.Now().Sub(s.start))
}
