// Periodic progress reporting for the CLIs: a goroutine that prints
// line() to w on every tick until stopped. The ticker comes from the
// clock.go seam (wallTicker) and lives outside the metric path, so it
// never touches snapshot determinism; runProgress is split out so
// tests can drive the loop from a plain channel instead of real time.
package telemetry

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// StartProgress emits line() to w every interval until the returned
// stop function is called. stop blocks until the reporter goroutine has
// exited and is safe to call more than once. A non-positive interval
// defaults to two seconds.
func StartProgress(w io.Writer, every time.Duration, line func() string) (stop func()) {
	if every <= 0 {
		every = 2 * time.Second
	}
	t := wallTicker(every)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		runProgress(w, t.C, done, line)
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			t.Stop()
			close(done)
			wg.Wait()
		})
	}
}

// runProgress is the reporter loop, factored over a plain tick channel.
func runProgress(w io.Writer, ticks <-chan time.Time, done <-chan struct{}, line func() string) {
	for {
		select {
		case <-done:
			return
		case <-ticks:
			fmt.Fprintln(w, line())
		}
	}
}
