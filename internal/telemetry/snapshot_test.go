package telemetry

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite the snapshot golden files")

// populate records a fixed set of events against a virtual clock, the
// same way the engine would during a small scan. Everything here is
// deterministic, so the snapshot must be byte-identical on every run.
func populate() *Registry {
	clk := NewVirtual()
	r := NewWithClock(clk)

	r.Counter("scanner.sched.shards_done").Add(6)
	r.Counter(Label("scanner.fetch.results", "code", "ok")).Add(40)
	r.Counter(Label("scanner.fetch.results", "code", "timeout")).Add(2)
	r.Counter(Label("faults.injected", "kind", "dark", "country", "IR")).Add(3)
	r.RuntimeCounter("scanner.sched.steals").Add(5)
	r.Gauge("scanner.coverage.requested").Set(48)
	r.RuntimeGauge("scanner.sched.workers").Set(4)

	h := r.Histogram("scanner.session.backoff_ms", 0, 8000, 16)
	h.Observe(250)
	h.Observe(612)
	h.Observe(9000) // out of range
	r.RuntimeHistogram("scanner.fetch.latency_ms", 0, 1000, 20).Observe(3.5)

	study := r.StartSpan("pipeline/top10k")
	scan := study.StartSpan("scan/top10k-initial")
	for i := 0; i < 3; i++ {
		c := scan.StartSpan("US")
		clk.Advance(2 * time.Millisecond)
		c.Outcome("ok")
		c.End()
	}
	c := scan.StartSpan("IR")
	clk.Advance(5 * time.Millisecond)
	c.Outcome("dark-country")
	c.End()
	scan.End()
	study.End()
	return r
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if string(got) != string(want) {
		t.Fatalf("%s differs from golden (re-run with -update if intentional)\n got:\n%s\nwant:\n%s", name, got, want)
	}
}

func TestSnapshotGoldenText(t *testing.T) {
	checkGolden(t, "snapshot.golden", []byte(populate().Snapshot().Text()))
}

func TestSnapshotGoldenJSON(t *testing.T) {
	b, err := populate().Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "snapshot.golden.json", b)
}

func TestSnapshotByteIdenticalAcrossRuns(t *testing.T) {
	a := populate().Snapshot()
	b := populate().Snapshot()
	if a.Text() != b.Text() {
		t.Fatal("two identical recordings produced different text snapshots")
	}
	aj, _ := a.JSON()
	bj, _ := b.JSON()
	if string(aj) != string(bj) {
		t.Fatal("two identical recordings produced different JSON snapshots")
	}
}

func TestDeterministicStripsRuntime(t *testing.T) {
	det := populate().Snapshot().Deterministic()
	for _, m := range det.Counters {
		if m.Runtime {
			t.Fatalf("runtime counter %s survived Deterministic", m.Name)
		}
	}
	for _, m := range det.Gauges {
		if m.Runtime {
			t.Fatalf("runtime gauge %s survived Deterministic", m.Name)
		}
	}
	for _, h := range det.Histograms {
		if h.Runtime {
			t.Fatalf("runtime histogram %s survived Deterministic", h.Name)
		}
	}
	var walk func(spans []SpanStats)
	walk = func(spans []SpanStats) {
		for _, s := range spans {
			if s.TotalMicros != 0 {
				t.Fatalf("span %s kept a nonzero duration", s.Name)
			}
			walk(s.Children)
		}
	}
	walk(det.Spans)
	// The deterministic view of a wall-clocked registry equals the
	// deterministic view of a virtual one recording the same events.
	if len(det.Counters) == 0 || len(det.Histograms) == 0 {
		t.Fatal("deterministic view lost deterministic-class metrics")
	}
}

func TestJSONRoundTrips(t *testing.T) {
	b, err := populate().Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if len(s.Counters) == 0 || len(s.Spans) == 0 {
		t.Fatal("round-tripped snapshot lost content")
	}
}

func TestWriteFileFormats(t *testing.T) {
	dir := t.TempDir()
	snap := populate().Snapshot()

	txt := filepath.Join(dir, "snap.txt")
	if err := snap.WriteFile(txt); err != nil {
		t.Fatal(err)
	}
	b, _ := os.ReadFile(txt)
	if string(b) != snap.Text() {
		t.Fatal("text WriteFile content mismatch")
	}

	js := filepath.Join(dir, "snap.json")
	if err := snap.WriteFile(js); err != nil {
		t.Fatal(err)
	}
	b, _ = os.ReadFile(js)
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		t.Fatalf(".json WriteFile must produce JSON: %v", err)
	}
}
