// HTTP surfaces: /debug/metrics (text, or JSON with ?format=json) and
// the net/http/pprof handlers, attachable to any mux (worldd's main
// mux, or the standalone server behind the scan CLIs' -metrics flag).
package telemetry

import (
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler serves the registry's live snapshot: plain text by default,
// indented JSON with ?format=json.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		snap := r.Snapshot()
		if req.URL.Query().Get("format") == "json" {
			b, err := snap.JSON()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write(b)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		snap.WriteText(w)
	})
}

// AttachDebug registers /debug/metrics and the pprof handlers on mux.
func AttachDebug(mux *http.ServeMux, r *Registry) {
	mux.Handle("/debug/metrics", r.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// MetricsServer returns an unstarted HTTP server on addr exposing
// /debug/metrics and pprof for r. The caller owns its lifecycle.
func MetricsServer(addr string, r *Registry) *http.Server {
	mux := http.NewServeMux()
	AttachDebug(mux, r)
	return &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
}
