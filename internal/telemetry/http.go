// HTTP surfaces: /debug/metrics (text, JSON with ?format=json, or the
// Prometheus exposition format via content negotiation) and the
// net/http/pprof handlers, attachable to any mux (worldd's main mux,
// or the standalone server behind the scan CLIs' -metrics flag).
package telemetry

import (
	"net/http"
	"net/http/pprof"
	"strings"
	"time"
)

// Handler serves the registry's live snapshot: plain text by default,
// indented JSON with ?format=json, Prometheus text exposition when the
// scraper negotiates for it (Accept: text/plain; version=0.0.4, or
// ?format=prometheus for humans).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		snap := r.Snapshot()
		format := req.URL.Query().Get("format")
		if format == "" && wantsPrometheus(req.Header.Get("Accept")) {
			format = "prometheus"
		}
		switch format {
		case "json":
			b, err := snap.JSON()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write(b)
		case "prometheus":
			w.Header().Set("Content-Type", PrometheusContentType)
			snap.WritePrometheus(w)
		default:
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			snap.WriteText(w)
		}
	})
}

// wantsPrometheus reports whether an Accept header asks for the
// exposition format: any text/plain clause carrying the format's
// version parameter. Prometheus sends exactly this; browsers and curl
// never do, so the human-readable text stays the default.
func wantsPrometheus(accept string) bool {
	for _, clause := range strings.Split(accept, ",") {
		if strings.Contains(clause, "text/plain") && strings.Contains(clause, "version=0.0.4") {
			return true
		}
	}
	return false
}

// AttachDebug registers /debug/metrics and the pprof handlers on mux.
func AttachDebug(mux *http.ServeMux, r *Registry) {
	mux.Handle("/debug/metrics", r.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// MetricsServer returns an unstarted HTTP server on addr exposing
// /debug/metrics and pprof for r. The caller owns its lifecycle.
func MetricsServer(addr string, r *Registry) *http.Server {
	mux := http.NewServeMux()
	AttachDebug(mux, r)
	return &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
}
