package telemetry

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCountersGaugesHistograms(t *testing.T) {
	r := New()
	r.Counter("a").Add(2)
	r.Counter("a").Add(3)
	if got := r.Counter("a").Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	r.Gauge("g").Set(7)
	r.Gauge("g").Add(-2)
	if got := r.Gauge("g").Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	h := r.Histogram("h", 0, 10, 5)
	h.Observe(1)
	h.Observe(9.5)
	h.Observe(42) // over range
	st := h.export("h")
	if st.Total != 3 || st.OutOfRange != 1 {
		t.Fatalf("histogram total=%d oor=%d, want 3/1", st.Total, st.OutOfRange)
	}
	if st.Sum != 1+9+42 {
		t.Fatalf("histogram sum=%d, want 52 (integer-truncated)", st.Sum)
	}
}

func TestRegistrationClassIsSticky(t *testing.T) {
	r := New()
	r.RuntimeCounter("steals").Add(1)
	r.Counter("steals").Add(1) // later deterministic lookup keeps the class
	snap := r.Snapshot()
	if len(snap.Counters) != 1 || !snap.Counters[0].Runtime {
		t.Fatalf("first registration should fix the runtime class: %+v", snap.Counters)
	}
	if det := snap.Deterministic(); len(det.Counters) != 0 {
		t.Fatalf("runtime counter leaked into deterministic view: %+v", det.Counters)
	}
}

func TestNilReceiversNoOp(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(1)
	r.RuntimeCounter("x").Add(1)
	r.Gauge("x").Set(1)
	r.Histogram("x", 0, 1, 1).Observe(1)
	r.RuntimeHistogram("x", 0, 1, 1).Observe(1)
	if !r.Now().IsZero() {
		t.Fatal("nil registry Now should be the zero time")
	}
	sp := r.StartSpan("a")
	sp.Outcome("ok")
	child := sp.StartSpan("b")
	child.End()
	sp.End()
	if got := r.Snapshot().Text(); !strings.Contains(got, "# counters") {
		t.Fatalf("nil registry snapshot should still render sections:\n%s", got)
	}
	if r.Counter("x").Value() != 0 || r.Gauge("x").Value() != 0 {
		t.Fatal("nil metrics must read zero")
	}
}

func TestVirtualClockAndSpanDurations(t *testing.T) {
	clk := NewVirtual()
	r := NewWithClock(clk)
	sp := r.StartSpan("phase")
	clk.Advance(1500 * time.Microsecond)
	sp.Outcome("ok")
	sp.End()
	snap := r.Snapshot()
	if len(snap.Spans) != 1 {
		t.Fatalf("want one span, got %+v", snap.Spans)
	}
	if got := snap.Spans[0].TotalMicros; got != 1500 {
		t.Fatalf("span duration = %dµs, want 1500", got)
	}
	det := snap.Deterministic()
	if det.Spans[0].TotalMicros != 0 {
		t.Fatal("Deterministic must zero span durations")
	}
	if len(det.Spans[0].Outcomes) != 1 || det.Spans[0].Outcomes[0].Key != "ok" {
		t.Fatalf("Deterministic must keep outcomes: %+v", det.Spans[0].Outcomes)
	}
}

func TestSpanTreeMerges(t *testing.T) {
	r := New()
	for i := 0; i < 3; i++ {
		sp := r.StartSpan("scan")
		c := sp.StartSpan("IR")
		c.Outcome("dark")
		c.End()
		sp.End()
	}
	snap := r.Snapshot()
	if len(snap.Spans) != 1 || snap.Spans[0].Count != 3 {
		t.Fatalf("same-named spans must merge: %+v", snap.Spans)
	}
	kids := snap.Spans[0].Children
	if len(kids) != 1 || kids[0].Name != "IR" || kids[0].Count != 3 {
		t.Fatalf("child activations must merge too: %+v", kids)
	}
	if kids[0].Outcomes[0] != (OutcomeStat{Key: "dark", Count: 3}) {
		t.Fatalf("outcome tally = %+v", kids[0].Outcomes)
	}
}

func TestConcurrentUseIsRaceFree(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Counter("c").Add(1)
				r.Histogram("h", 0, 100, 10).Observe(float64(i))
				sp := r.StartSpan("s")
				sp.Outcome("ok")
				sp.End()
			}
		}()
	}
	for i := 0; i < 10; i++ {
		_ = r.Snapshot().Text() // snapshot while writers run
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 800 {
		t.Fatalf("counter = %d, want 800", got)
	}
	if got := r.Snapshot().Spans[0].Count; got != 800 {
		t.Fatalf("span count = %d, want 800", got)
	}
}

func TestLabel(t *testing.T) {
	if got := Label("m"); got != "m" {
		t.Fatalf("Label with no pairs = %q", got)
	}
	if got := Label("m", "k", "v"); got != "m{k=v}" {
		t.Fatalf("Label = %q", got)
	}
	if got := Label("m", "a", "1", "b", "2"); got != "m{a=1,b=2}" {
		t.Fatalf("Label = %q", got)
	}
}

func TestProgressLoop(t *testing.T) {
	var buf bytes.Buffer
	ticks := make(chan time.Time)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		runProgress(&buf, ticks, done, func() string { return "tick" })
	}()
	ticks <- time.Time{}
	ticks <- time.Time{}
	close(done)
	wg.Wait()
	if got := buf.String(); got != "tick\ntick\n" {
		t.Fatalf("progress output = %q", got)
	}
}

func TestStartProgressStopsIdempotently(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	stop := StartProgress(w, time.Hour, func() string { return "x" })
	stop()
	stop() // second call must not panic or deadlock
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestHTTPHandler(t *testing.T) {
	r := New()
	r.Counter("hits").Add(3)
	h := r.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/metrics", nil))
	if !strings.Contains(rec.Body.String(), "hits 3") {
		t.Fatalf("text body missing counter:\n%s", rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("text content type = %q", ct)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/metrics?format=json", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("json content type = %q", ct)
	}
	if body := rec.Body.String(); !strings.Contains(body, `"name": "hits"`) {
		t.Fatalf("json body missing counter:\n%s", body)
	}
}

func TestAttachDebugRoutes(t *testing.T) {
	mux := http.NewServeMux()
	AttachDebug(mux, New())
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/metrics status = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/cmdline", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/pprof/cmdline status = %d", rec.Code)
	}
}
