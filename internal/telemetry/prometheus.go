// Prometheus text exposition (version 0.0.4): the scrape format every
// Prometheus-compatible collector speaks. The snapshot's flat metric
// model maps directly — counters and gauges become series, labeled
// names ("a.b{k=v}") become real label sets, histograms become the
// cumulative _bucket/_sum/_count triple, and the span tree flattens
// into two series keyed by a span path label.
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PrometheusContentType is the exposition format's content type; the
// /debug/metrics handler negotiates into this format when a scraper
// asks for it (Accept: text/plain; version=0.0.4).
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus writes the snapshot in the Prometheus text
// exposition format. Output is deterministic: base names sorted, label
// sets in the registry's sorted order.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	writePromFamilies(&b, s.Counters, "counter")
	writePromFamilies(&b, s.Gauges, "gauge")
	for _, h := range s.Histograms {
		base, labels := promName(h.Name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", base)
		width := (h.Max - h.Min) / float64(len(h.Counts))
		cum := 0
		for i, c := range h.Counts {
			cum += c
			le := trimFloat(h.Min + width*float64(i+1))
			fmt.Fprintf(&b, "%s_bucket%s %d\n", base, promLabels(labels, "le", le), cum)
		}
		fmt.Fprintf(&b, "%s_bucket%s %d\n", base, promLabels(labels, "le", "+Inf"), h.Total)
		fmt.Fprintf(&b, "%s_sum%s %d\n", base, promLabels(labels), h.Sum)
		fmt.Fprintf(&b, "%s_count%s %d\n", base, promLabels(labels), h.Total)
	}
	if len(s.Spans) > 0 {
		b.WriteString("# TYPE geoblock_span_count counter\n")
		writePromSpans(&b, s.Spans, "", "geoblock_span_count", func(sp SpanStats) int64 { return sp.Count })
		b.WriteString("# TYPE geoblock_span_micros_total counter\n")
		writePromSpans(&b, s.Spans, "", "geoblock_span_micros_total", func(sp SpanStats) int64 { return sp.TotalMicros })
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writePromFamilies groups metrics by base name so each family's TYPE
// line appears exactly once, with its label sets beneath it.
func writePromFamilies(b *strings.Builder, ms []Metric, typ string) {
	type series struct {
		labels [][2]string
		value  int64
	}
	families := map[string][]series{}
	var order []string
	for _, m := range ms {
		base, labels := promName(m.Name)
		if _, ok := families[base]; !ok {
			order = append(order, base)
		}
		families[base] = append(families[base], series{labels, m.Value})
	}
	sort.Strings(order)
	for _, base := range order {
		fmt.Fprintf(b, "# TYPE %s %s\n", base, typ)
		for _, s := range families[base] {
			fmt.Fprintf(b, "%s%s %d\n", base, promLabels(s.labels), s.value)
		}
	}
}

func writePromSpans(b *strings.Builder, spans []SpanStats, prefix, metric string, val func(SpanStats) int64) {
	for _, sp := range spans {
		path := sp.Name
		if prefix != "" {
			path = prefix + "/" + sp.Name
		}
		fmt.Fprintf(b, "%s{span=%q} %d\n", metric, path, val(sp))
		writePromSpans(b, sp.Children, path, metric, val)
	}
}

// promName splits a registry metric name into a Prometheus-legal base
// name and its label pairs: "scanner.fetch.results{code=timeout}" →
// "scanner_fetch_results", [[code timeout]].
func promName(name string) (string, [][2]string) {
	var labels [][2]string
	if i := strings.IndexByte(name, '{'); i >= 0 {
		body := strings.TrimSuffix(name[i+1:], "}")
		name = name[:i]
		for _, pair := range strings.Split(body, ",") {
			if k, v, ok := strings.Cut(pair, "="); ok {
				labels = append(labels, [2]string{promSanitize(k), v})
			}
		}
	}
	return promSanitize(name), labels
}

// promSanitize maps a name onto the exposition charset
// [a-zA-Z0-9_:]; everything else becomes '_'.
func promSanitize(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabels renders a label set (plus optional extra pairs appended
// at the end), empty string for no labels.
func promLabels(labels [][2]string, extra ...string) string {
	if len(labels) == 0 && len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	first := true
	emit := func(k, v string) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(v))
	}
	for _, kv := range labels {
		emit(kv[0], kv[1])
	}
	for i := 0; i+1 < len(extra); i += 2 {
		emit(extra[i], extra[i+1])
	}
	b.WriteByte('}')
	return b.String()
}
