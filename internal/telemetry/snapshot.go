// Snapshot export. A Snapshot is a point-in-time copy of a Registry
// flattened into sorted slices — no maps survive into the export, so
// both the text and JSON encodings are deterministic byte for byte.
// Deterministic() further strips runtime-class metrics and zeroes span
// durations, producing the view that must be identical across
// Concurrency levels under the engine's determinism contract.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Metric is one exported counter or gauge value.
type Metric struct {
	Name    string `json:"name"`
	Value   int64  `json:"value"`
	Runtime bool   `json:"runtime,omitempty"`
}

// HistogramStats exports one histogram: bin counts over [Min, Max),
// the observation total, how many observations fell outside the range,
// and the integer-truncated sum.
type HistogramStats struct {
	Name       string  `json:"name"`
	Min        float64 `json:"min"`
	Max        float64 `json:"max"`
	Counts     []int   `json:"counts"`
	Total      int     `json:"total"`
	OutOfRange int     `json:"out_of_range"`
	Sum        int64   `json:"sum"`
	Runtime    bool    `json:"runtime,omitempty"`
}

// SpanStats exports one span-tree node: activation count, total
// duration in microseconds, outcome tallies, and children — all sorted
// by name.
type SpanStats struct {
	Name        string        `json:"name"`
	Count       int64         `json:"count"`
	TotalMicros int64         `json:"total_micros"`
	Outcomes    []OutcomeStat `json:"outcomes,omitempty"`
	Children    []SpanStats   `json:"children,omitempty"`
}

// OutcomeStat is one outcome-key tally on a span node.
type OutcomeStat struct {
	Key   string `json:"key"`
	Count int64  `json:"count"`
}

// Snapshot is a registry export. All slices are sorted by name, so two
// snapshots of registries that recorded the same events encode to the
// same bytes.
type Snapshot struct {
	Counters   []Metric         `json:"counters"`
	Gauges     []Metric         `json:"gauges"`
	Histograms []HistogramStats `json:"histograms"`
	Spans      []SpanStats      `json:"spans"`
}

// Snapshot exports the registry's current state. Safe to call while a
// scan is running; each metric is read atomically (the snapshot as a
// whole is not one consistent cut, which only matters mid-run).
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return &Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := &Snapshot{}

	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := r.counters[name]
		snap.Counters = append(snap.Counters, Metric{Name: name, Value: c.Value(), Runtime: c.runtime})
	}

	names = names[:0]
	for name := range r.gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		g := r.gauges[name]
		snap.Gauges = append(snap.Gauges, Metric{Name: name, Value: g.Value(), Runtime: g.runtime})
	}

	names = names[:0]
	for name := range r.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		snap.Histograms = append(snap.Histograms, r.hists[name].export(name))
	}

	snap.Spans = exportChildren(r.root)
	return snap
}

func (h *Histogram) export(name string) HistogramStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	counts := make([]int, len(h.h.Counts))
	copy(counts, h.h.Counts)
	in := 0
	for _, c := range counts {
		in += c
	}
	return HistogramStats{
		Name:       name,
		Min:        h.h.Min,
		Max:        h.h.Max,
		Counts:     counts,
		Total:      h.h.Total(),
		OutOfRange: h.h.Total() - in,
		Sum:        h.sum,
		Runtime:    h.runtime,
	}
}

// exportChildren flattens a node's children, sorted by name.
func exportChildren(n *node) []SpanStats {
	type kid struct {
		name string
		n    *node
	}
	n.mu.Lock()
	kids := make([]kid, 0, len(n.children))
	for name, c := range n.children {
		kids = append(kids, kid{name, c})
	}
	n.mu.Unlock()
	sort.Slice(kids, func(i, j int) bool { return kids[i].name < kids[j].name })
	var out []SpanStats
	for _, k := range kids {
		out = append(out, exportNode(k.name, k.n))
	}
	return out
}

func exportNode(name string, n *node) SpanStats {
	n.mu.Lock()
	s := SpanStats{Name: name, Count: n.count, TotalMicros: n.total.Microseconds()}
	outs := make([]OutcomeStat, 0, len(n.outcomes))
	for k, v := range n.outcomes {
		outs = append(outs, OutcomeStat{Key: k, Count: v})
	}
	n.mu.Unlock()
	sort.Slice(outs, func(i, j int) bool { return outs[i].Key < outs[j].Key })
	if len(outs) > 0 {
		s.Outcomes = outs
	}
	s.Children = exportChildren(n)
	return s
}

// Deterministic returns a copy with runtime-class metrics removed and
// all span durations zeroed: exactly the content that the determinism
// contract promises is identical at any Concurrency. The chaos matrix
// byte-compares this view across schedules.
func (s *Snapshot) Deterministic() *Snapshot {
	out := &Snapshot{}
	for _, m := range s.Counters {
		if !m.Runtime {
			out.Counters = append(out.Counters, m)
		}
	}
	for _, m := range s.Gauges {
		if !m.Runtime {
			out.Gauges = append(out.Gauges, m)
		}
	}
	for _, h := range s.Histograms {
		if h.Runtime {
			continue
		}
		hc := h
		hc.Counts = append([]int(nil), h.Counts...)
		out.Histograms = append(out.Histograms, hc)
	}
	out.Spans = zeroDurations(s.Spans)
	return out
}

func zeroDurations(spans []SpanStats) []SpanStats {
	out := make([]SpanStats, len(spans))
	for i, s := range spans {
		s.TotalMicros = 0
		s.Outcomes = append([]OutcomeStat(nil), s.Outcomes...)
		s.Children = zeroDurations(s.Children)
		out[i] = s
	}
	return out
}

// WriteText writes the snapshot in its plain-text form: one metric per
// line grouped into sections, spans as an indented tree.
func (s *Snapshot) WriteText(w io.Writer) error {
	var b strings.Builder
	b.WriteString("# counters\n")
	writeMetrics(&b, s.Counters)
	b.WriteString("\n# gauges\n")
	writeMetrics(&b, s.Gauges)
	b.WriteString("\n# histograms\n")
	for _, h := range s.Histograms {
		fmt.Fprintf(&b, "%s [%s,%s) total=%d oor=%d sum=%d bins=", h.Name,
			trimFloat(h.Min), trimFloat(h.Max), h.Total, h.OutOfRange, h.Sum)
		for i, c := range h.Counts {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(c))
		}
		if h.Runtime {
			b.WriteString(" (runtime)")
		}
		b.WriteByte('\n')
	}
	b.WriteString("\n# spans\n")
	writeSpans(&b, s.Spans, 0)
	_, err := io.WriteString(w, b.String())
	return err
}

// Text returns the plain-text form as a string.
func (s *Snapshot) Text() string {
	var b strings.Builder
	_ = s.WriteText(&b) // strings.Builder never errors
	return b.String()
}

// JSON returns the indented JSON form with a trailing newline.
func (s *Snapshot) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteFile writes the snapshot to path: JSON when the name ends in
// ".json", text otherwise. The write is atomic — the data lands in a
// temp file in the same directory and renames over path — so a crash
// mid-write (or a concurrent reader) never sees a half-written
// snapshot, only the old file or the new one.
func (s *Snapshot) WriteFile(path string) error {
	var data []byte
	if strings.HasSuffix(path, ".json") {
		b, err := s.JSON()
		if err != nil {
			return err
		}
		data = b
	} else {
		data = []byte(s.Text())
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	_, err = tmp.Write(data)
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Chmod(tmp.Name(), 0o644)
	}
	if err == nil {
		err = os.Rename(tmp.Name(), path)
	}
	if err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

func writeMetrics(b *strings.Builder, ms []Metric) {
	for _, m := range ms {
		b.WriteString(m.Name)
		b.WriteByte(' ')
		b.WriteString(strconv.FormatInt(m.Value, 10))
		if m.Runtime {
			b.WriteString(" (runtime)")
		}
		b.WriteByte('\n')
	}
}

func writeSpans(b *strings.Builder, spans []SpanStats, depth int) {
	for _, s := range spans {
		for i := 0; i < depth; i++ {
			b.WriteString("  ")
		}
		fmt.Fprintf(b, "%s n=%d total=%s", s.Name, s.Count,
			(time.Duration(s.TotalMicros) * time.Microsecond).String())
		for i, o := range s.Outcomes {
			if i == 0 {
				b.WriteString(" [")
			} else {
				b.WriteByte(' ')
			}
			fmt.Fprintf(b, "%s=%d", o.Key, o.Count)
			if i == len(s.Outcomes)-1 {
				b.WriteByte(']')
			}
		}
		b.WriteByte('\n')
		writeSpans(b, s.Children, depth+1)
	}
}

// trimFloat renders a bucket bound without trailing zeros (8000, 0.5).
func trimFloat(f float64) string {
	return strconv.FormatFloat(f, 'f', -1, 64)
}
