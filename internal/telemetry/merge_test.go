package telemetry

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestMergeReconstructsCounters is the resume-layer contract for the
// metric kinds the journal actually checkpoints (counters, gauges,
// histograms): splitting a workload's events across two registries and
// merging one's snapshot into the other must snapshot byte-identically
// to recording everything live in one registry.
func TestMergeReconstructsCounters(t *testing.T) {
	record := func(r *Registry, okResults, timeouts int64, backoffs []float64) {
		r.Counter(Label("scanner.fetch.results", "code", "ok")).Add(okResults)
		r.Counter(Label("scanner.fetch.results", "code", "timeout")).Add(timeouts)
		r.RuntimeCounter("scanner.sched.steals").Add(okResults % 3)
		r.Gauge("scanner.coverage.requested").Set(48)
		h := r.Histogram("scanner.session.backoff_ms", 0, 8000, 16)
		for _, v := range backoffs {
			h.Observe(v)
		}
	}

	live := New()
	record(live, 40, 2, []float64{250, 612, 9000})

	a := New()
	record(a, 25, 1, []float64{250, 9000})
	b := New()
	record(b, 15, 1, []float64{612})
	a.Merge(b.Snapshot())

	if got, want := a.Snapshot().Text(), live.Snapshot().Text(); got != want {
		t.Fatalf("merged registry differs from live recording:\n--- merged ---\n%s\n--- live ---\n%s", got, want)
	}
}

// TestMergeAccumulatesSpans: span nodes fold by adding activation
// counts, durations, and outcome tallies, recursing into children.
func TestMergeAccumulatesSpans(t *testing.T) {
	clk := NewVirtual()
	r := NewWithClock(clk)
	sp := r.StartSpan("scan")
	c := sp.StartSpan("US")
	clk.Advance(2 * time.Millisecond)
	c.Outcome("ok")
	c.End()
	sp.End()

	oclk := NewVirtual()
	o := NewWithClock(oclk)
	osp := o.StartSpan("scan")
	oc := osp.StartSpan("US")
	oclk.Advance(3 * time.Millisecond)
	oc.Outcome("lost")
	oc.End()
	osp.End()

	r.Merge(o.Snapshot())
	snap := r.Snapshot()
	if len(snap.Spans) != 1 || snap.Spans[0].Name != "scan" {
		t.Fatalf("spans = %+v", snap.Spans)
	}
	scan := snap.Spans[0]
	if scan.Count != 2 {
		t.Fatalf("scan count = %d, want 2", scan.Count)
	}
	if len(scan.Children) != 1 {
		t.Fatalf("children = %+v", scan.Children)
	}
	us := scan.Children[0]
	if us.Count != 2 || us.TotalMicros != 5000 {
		t.Fatalf("US child = %+v, want count 2 / 5000µs", us)
	}
	if len(us.Outcomes) != 2 {
		t.Fatalf("outcomes = %+v, want ok and lost", us.Outcomes)
	}
	for _, oc := range us.Outcomes {
		if oc.Count != 1 {
			t.Fatalf("outcome %s count = %d, want 1", oc.Key, oc.Count)
		}
	}
}

// TestMergeGeometryMismatch: a snapshot histogram whose bin layout
// disagrees with the registered one folds into out-of-range instead of
// silently dropping observations.
func TestMergeGeometryMismatch(t *testing.T) {
	r := New()
	r.Histogram("h", 0, 100, 10).Observe(50)

	other := New()
	oh := other.Histogram("h", 0, 1000, 5)
	oh.Observe(10)
	oh.Observe(999)
	r.Merge(other.Snapshot())

	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("%d histograms after mismatch merge, want 1", len(snap.Histograms))
	}
	h := snap.Histograms[0]
	if h.Total != 3 {
		t.Fatalf("total = %d, want 3 (no observation may vanish)", h.Total)
	}
	if h.OutOfRange != 2 {
		t.Fatalf("out-of-range = %d, want the 2 foreign-geometry observations", h.OutOfRange)
	}
}

// TestMergeNilAndEmpty: merging nil or an empty snapshot is a no-op,
// including on a nil registry.
func TestMergeNilAndEmpty(t *testing.T) {
	var nilReg *Registry
	nilReg.Merge(populate().Snapshot()) // must not panic

	r := New()
	r.Counter("c").Add(1)
	before := r.Snapshot().Text()
	r.Merge(nil)
	r.Merge(&Snapshot{})
	if r.Snapshot().Text() != before {
		t.Fatal("empty merge changed the registry")
	}
}

// TestMergeIsCommutative: the journal replays checkpoints in order, but
// the algebra must not care — fold A into B and B into A, same bytes.
func TestMergeIsCommutative(t *testing.T) {
	mk := func(n int64) *Registry {
		r := New()
		r.Counter("c").Add(n)
		r.Histogram("h", 0, 10, 5).Observe(float64(n % 10))
		sp := r.StartSpan("root")
		sp.Outcome("ok")
		sp.End()
		return r
	}
	ab, ba := mk(3), mk(7)
	ab.Merge(mk(7).Snapshot())
	ba.Merge(mk(3).Snapshot())
	if ab.Snapshot().Text() != ba.Snapshot().Text() {
		t.Fatalf("merge is order-sensitive:\n--- a+b ---\n%s\n--- b+a ---\n%s",
			ab.Snapshot().Text(), ba.Snapshot().Text())
	}
}

// TestWriteFileAtomic: WriteFile leaves no temp droppings on success,
// replaces an existing file wholesale, and fails cleanly when the
// target directory does not exist.
func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "metrics.txt")
	if err := os.WriteFile(path, []byte("stale content"), 0o644); err != nil {
		t.Fatal(err)
	}
	snap := populate().Snapshot()
	if err := snap.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != snap.Text() {
		t.Fatal("overwrite left mixed content")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".") {
			t.Fatalf("temp file %q left behind", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Fatalf("%d entries in dir, want just the snapshot", len(entries))
	}

	if err := snap.WriteFile(filepath.Join(dir, "missing", "metrics.txt")); err == nil {
		t.Fatal("write into a missing directory succeeded")
	}
}
