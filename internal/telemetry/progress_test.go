package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// syncWriter serializes writes: runProgress runs on its own goroutine,
// and the assertions read while it may still be printing.
type syncWriter struct {
	mu sync.Mutex
	b  strings.Builder
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}

// TestRunProgressTicksAndStops drives the reporter loop from a plain
// channel — the seam progress.go exists for — and asserts one line per
// tick, then a prompt exit on done.
func TestRunProgressTicksAndStops(t *testing.T) {
	ticks := make(chan time.Time)
	done := make(chan struct{})
	var w syncWriter
	n := 0
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		runProgress(&w, ticks, done, func() string {
			n++
			return "tick"
		})
	}()
	for i := 0; i < 3; i++ {
		ticks <- time.Time{}
	}
	close(done)
	<-finished
	if n != 3 {
		t.Fatalf("line() called %d times, want 3", n)
	}
	if got := w.String(); got != "tick\ntick\ntick\n" {
		t.Fatalf("output = %q", got)
	}
}

// TestRunProgressExitsWithoutTicks: closing done before any tick must
// end the loop without printing.
func TestRunProgressExitsWithoutTicks(t *testing.T) {
	done := make(chan struct{})
	close(done)
	var w syncWriter
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		runProgress(&w, make(chan time.Time), done, func() string { return "never" })
	}()
	select {
	case <-finished:
	case <-time.After(5 * time.Second): //geolint:allow determinism test timeout guard, not telemetry timing
		t.Fatal("runProgress did not exit on done")
	}
	if w.String() != "" {
		t.Fatalf("loop printed %q after done", w.String())
	}
}

// TestStartProgressLifecycle exercises the wallTicker path end to end:
// a tiny real interval produces at least one line, and stop is
// idempotent and blocks until the goroutine is gone.
func TestStartProgressLifecycle(t *testing.T) {
	var w syncWriter
	stop := StartProgress(&w, time.Millisecond, func() string { return "alive" })
	deadline := time.Now().Add(5 * time.Second) //geolint:allow determinism polling the real wallTicker under test
	for !strings.Contains(w.String(), "alive") {
		if time.Now().After(deadline) { //geolint:allow determinism polling the real wallTicker under test
			t.Fatal("no progress line within 5s")
		}
		time.Sleep(time.Millisecond) //geolint:allow determinism polling the real wallTicker under test
	}
	stop()
	stop() // second call must be a no-op, not a double-close panic

	// After stop returns the goroutine is gone: the output must not
	// grow any further.
	settled := w.String()
	time.Sleep(10 * time.Millisecond) //geolint:allow determinism observing that the stopped reporter stays quiet
	if got := w.String(); got != settled {
		t.Fatalf("reporter kept printing after stop: %q -> %q", settled, got)
	}
}

// TestStartProgressDefaultInterval: a non-positive interval falls back
// to the two-second default instead of a zero-period ticker panic.
func TestStartProgressDefaultInterval(t *testing.T) {
	var w syncWriter
	stop := StartProgress(&w, 0, func() string { return "x" })
	stop()
	stop = StartProgress(&w, -time.Second, func() string { return "x" })
	stop()
}
