// Package telemetry is the engine's dependency-free observability
// layer: a Registry of counters, gauges, and histograms plus span-style
// phase tracing, threaded through every scanner layer, the fault
// injector, and the pipeline phases.
//
// Two metric classes coexist. Deterministic metrics are pure functions
// of the scan inputs — retry tallies, ErrCode counts, injected-fault
// counters, backoff schedules, shard and sample totals — and under the
// engine's determinism contract they are identical at any Concurrency.
// Runtime metrics (work-steal counts, worker gauges, wall-clock
// latencies) describe one particular execution and legitimately vary
// from run to run; they are registered through the Runtime*
// constructors and stripped by Snapshot.Deterministic, the view the
// chaos matrix compares byte for byte.
//
// Time is injected: a Registry built with New uses a Virtual clock
// (every duration is zero, every snapshot reproducible), and the CLI
// surfaces inject Wall for real timings. The wall clock itself is
// confined to clock.go — geolint's determinism analyzer enforces the
// seam.
//
// Every method is nil-receiver safe, so instrumentation sites read as
// plain straight-line code — reg.Counter(name).Add(1) — and a nil
// *Registry turns the whole layer into a no-op.
package telemetry

import (
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"geoblock/internal/stats"
)

// Registry holds a process's metrics and span tree. The zero value is
// not usable; build one with New or NewWithClock. A nil *Registry is a
// valid no-op receiver for every method.
type Registry struct {
	// clock and root are set at construction and never reassigned:
	// they sit above mu, outside the guarded set, because StartSpan
	// and Merge follow the root pointer without the registry lock
	// (node has its own).
	clock Clock
	root  *node

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// New returns a registry on a Virtual clock pinned at the epoch: all
// durations record as zero, so snapshots are a pure function of the
// recorded events — the right default for tests and deterministic runs.
func New() *Registry { return NewWithClock(nil) }

// NewWithClock returns a registry reading time from c. A nil clock
// falls back to a fresh Virtual clock.
func NewWithClock(c Clock) *Registry {
	if c == nil {
		c = NewVirtual()
	}
	return &Registry{
		clock:    c,
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		root:     &node{},
	}
}

// Now reads the registry's clock. A nil registry returns the zero time.
func (r *Registry) Now() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.clock.Now()
}

// Clock returns the registry's time source, so derived registries (the
// engine's per-shard staging registries, for one) can tick on the same
// clock as their parent. A nil registry returns nil, which NewWithClock
// treats as a fresh Virtual clock.
func (r *Registry) Clock() Clock {
	if r == nil {
		return nil
	}
	return r.clock
}

// Merge folds an exported snapshot back into the registry: counters and
// histogram bins add, gauges take the snapshot's value, and span nodes
// accumulate activation counts, durations, and outcome tallies. Metric
// classes and histogram geometry apply on first registration, exactly
// as with the live constructors; a histogram whose bin layout disagrees
// with an already-registered one is folded into the out-of-range tally
// rather than dropped, so totals stay honest.
//
// Merge is how a resumed run restores the telemetry of work it did not
// redo: the journal layer persists each shard's staged snapshot and
// merges it back on replay, and because every operation here is
// commutative and associative, the merged registry snapshots
// byte-identically to one that recorded the events live.
func (r *Registry) Merge(s *Snapshot) {
	if r == nil || s == nil {
		return
	}
	for _, m := range s.Counters {
		r.counter(m.Name, m.Runtime).Add(m.Value)
	}
	for _, m := range s.Gauges {
		r.gauge(m.Name, m.Runtime).Set(m.Value)
	}
	for _, hs := range s.Histograms {
		r.histogram(hs.Name, hs.Min, hs.Max, len(hs.Counts), hs.Runtime).merge(hs)
	}
	for _, sp := range s.Spans {
		mergeSpan(r.root.child(sp.Name), sp)
	}
}

func mergeSpan(n *node, s SpanStats) {
	n.mu.Lock()
	n.count += s.Count
	n.total += time.Duration(s.TotalMicros) * time.Microsecond
	if len(s.Outcomes) > 0 && n.outcomes == nil {
		n.outcomes = map[string]int64{}
	}
	for _, o := range s.Outcomes {
		n.outcomes[o.Key] += o.Count
	}
	n.mu.Unlock()
	for _, c := range s.Children {
		mergeSpan(n.child(c.Name), c)
	}
}

// Counter returns the named deterministic-class counter, creating it on
// first use. The class is fixed at creation; later lookups keep it.
func (r *Registry) Counter(name string) *Counter { return r.counter(name, false) }

// RuntimeCounter returns the named runtime-class counter: one whose
// value depends on scheduling (work steals, for example) and is
// excluded from the deterministic snapshot view.
func (r *Registry) RuntimeCounter(name string) *Counter { return r.counter(name, true) }

func (r *Registry) counter(name string, runtime bool) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{runtime: runtime}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named deterministic-class gauge.
func (r *Registry) Gauge(name string) *Gauge { return r.gauge(name, false) }

// RuntimeGauge returns the named runtime-class gauge.
func (r *Registry) RuntimeGauge(name string) *Gauge { return r.gauge(name, true) }

func (r *Registry) gauge(name string, runtime bool) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{runtime: runtime}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named deterministic-class histogram with bins
// fixed-width buckets over [min, max) (reusing internal/stats). The
// parameters apply on first registration; later lookups return the
// existing histogram unchanged.
func (r *Registry) Histogram(name string, min, max float64, bins int) *Histogram {
	return r.histogram(name, min, max, bins, false)
}

// RuntimeHistogram is Histogram for runtime-class observations (wall
// latencies above all), excluded from the deterministic view.
func (r *Registry) RuntimeHistogram(name string, min, max float64, bins int) *Histogram {
	return r.histogram(name, min, max, bins, true)
}

func (r *Registry) histogram(name string, min, max float64, bins int, runtime bool) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{h: stats.NewHistogram(min, max, bins), runtime: runtime}
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing metric. Safe for concurrent
// use; a nil *Counter no-ops.
type Counter struct {
	v       atomic.Int64
	runtime bool
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reads the counter. A nil counter reads zero.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time metric. Safe for concurrent use; a nil
// *Gauge no-ops.
type Gauge struct {
	v       atomic.Int64
	runtime bool
}

// Set records the gauge's current value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by n (for in-flight style gauges).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value reads the gauge. A nil gauge reads zero.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed-width buckets, wrapping
// stats.Histogram with a mutex and an integer sum. The sum truncates
// each observation toward zero before accumulating so that concurrent
// accumulation order cannot perturb it — a float sum's low bits would
// depend on addition order and break byte-identical snapshots.
type Histogram struct {
	mu      sync.Mutex
	h       *stats.Histogram
	sum     int64
	runtime bool
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.h.Add(v)
	h.sum += int64(v)
	h.mu.Unlock()
}

// merge folds an exported histogram into this one. Matching bin layouts
// add bin-wise; a mismatched layout (the registry already held the name
// with different geometry) folds every observation into the overflow
// tally so the total still reflects the events.
func (h *Histogram) merge(hs HistogramStats) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sum += hs.Sum
	if len(hs.Counts) == len(h.h.Counts) && hs.Min == h.h.Min && hs.Max == h.h.Max {
		h.h.MergeCounts(hs.Counts, hs.OutOfRange)
		return
	}
	h.h.MergeCounts(nil, hs.Total)
}

// Label decorates a metric name with key=value label pairs:
//
//	Label("scanner.fetch.results", "code", "timeout")
//	// -> "scanner.fetch.results{code=timeout}"
//
// Labels are part of the name, so each combination is its own metric;
// keep cardinalities small (ErrCodes, outage reasons, fault kinds —
// never domains).
func Label(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteByte('=')
		b.WriteString(kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}
