package telemetry

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// promRegistry builds a registry with one of everything the exposition
// must render: a plain counter, a labeled counter family, a gauge, a
// histogram, and a span with a child.
func promRegistry() *Registry {
	r := New()
	r.Counter("scanner.fetch.attempts").Add(7)
	r.Counter(Label("scanner.fetch.results", "code", "timeout")).Add(2)
	r.Counter(Label("scanner.fetch.results", "code", "ok")).Add(5)
	r.RuntimeGauge("scanner.sched.workers").Set(4)
	h := r.Histogram("scanner.fetch.bytes", 0, 100, 4)
	h.Observe(10)
	h.Observe(60)
	h.Observe(250) // out of range: lands only in +Inf
	sp := r.StartSpan("study")
	sp.StartSpan("scan").End()
	sp.End()
	return r
}

func TestWritePrometheus(t *testing.T) {
	var b strings.Builder
	if err := promRegistry().Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE scanner_fetch_attempts counter",
		"scanner_fetch_attempts 7",
		"# TYPE scanner_fetch_results counter",
		`scanner_fetch_results{code="ok"} 5`,
		`scanner_fetch_results{code="timeout"} 2`,
		"# TYPE scanner_sched_workers gauge",
		"scanner_sched_workers 4",
		"# TYPE scanner_fetch_bytes histogram",
		`scanner_fetch_bytes_bucket{le="25"} 1`,
		`scanner_fetch_bytes_bucket{le="100"} 2`,
		`scanner_fetch_bytes_bucket{le="+Inf"} 3`,
		"scanner_fetch_bytes_count 3",
		`geoblock_span_count{span="study"} 1`,
		`geoblock_span_count{span="study/scan"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q;\n%s", want, out)
		}
	}
	// A TYPE line must appear exactly once per family even with several
	// labeled series.
	if n := strings.Count(out, "# TYPE scanner_fetch_results counter"); n != 1 {
		t.Errorf("scanner_fetch_results TYPE declared %d times, want 1", n)
	}
}

// TestMetricsHandlerNegotiation is the handler table: the same
// endpoint serves human text, JSON, and the Prometheus exposition,
// chosen by query parameter or Accept header.
func TestMetricsHandlerNegotiation(t *testing.T) {
	handler := promRegistry().Handler()
	cases := []struct {
		name     string
		target   string
		accept   string
		wantCT   string
		wantBody string
	}{
		{"default-text", "/debug/metrics", "", "text/plain; charset=utf-8", "# counters"},
		{"browser-accept-stays-text", "/debug/metrics", "text/html,application/xhtml+xml", "text/plain; charset=utf-8", "# counters"},
		{"query-json", "/debug/metrics?format=json", "", "application/json", `"counters"`},
		{"query-prometheus", "/debug/metrics?format=prometheus", "", PrometheusContentType, "# TYPE scanner_fetch_attempts counter"},
		{"accept-prometheus", "/debug/metrics", "text/plain; version=0.0.4; charset=utf-8", PrometheusContentType, "scanner_fetch_attempts 7"},
		{"accept-prometheus-listed", "/debug/metrics", "application/openmetrics-text, text/plain; version=0.0.4", PrometheusContentType, "# TYPE scanner_fetch_bytes histogram"},
		{"query-overrides-accept", "/debug/metrics?format=json", "text/plain; version=0.0.4", "application/json", `"histograms"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest("GET", tc.target, nil)
			if tc.accept != "" {
				req.Header.Set("Accept", tc.accept)
			}
			rec := httptest.NewRecorder()
			handler.ServeHTTP(rec, req)
			if rec.Code != 200 {
				t.Fatalf("status %d", rec.Code)
			}
			if ct := rec.Header().Get("Content-Type"); ct != tc.wantCT {
				t.Fatalf("Content-Type = %q, want %q", ct, tc.wantCT)
			}
			if !strings.Contains(rec.Body.String(), tc.wantBody) {
				t.Fatalf("body missing %q:\n%s", tc.wantBody, rec.Body.String())
			}
		})
	}
}

// TestPromSanitize pins the name mapping rules.
func TestPromSanitize(t *testing.T) {
	for in, want := range map[string]string{
		"scanner.fetch.results": "scanner_fetch_results",
		"a-b/c":                 "a_b_c",
		"9lives":                "_9lives",
		"ok_name:sub":           "ok_name:sub",
	} {
		if got := promSanitize(in); got != want {
			t.Errorf("promSanitize(%q) = %q, want %q", in, got, want)
		}
	}
}
