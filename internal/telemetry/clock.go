// The clock seam. This file is the only place in internal/telemetry —
// and, outside test suppressions, the only place in the engine — that
// may read the wall clock; geolint's determinism analyzer rejects
// time.Now anywhere else in the package. Everything downstream takes
// time from an injected Clock, so instrumented code stays a pure
// function of its inputs when the clock is virtual.
package telemetry

import (
	"sync/atomic"
	"time"
)

// Clock supplies the current time to a Registry. Implementations must
// be safe for concurrent use.
type Clock interface {
	Now() time.Time
}

// Wall reads the operating system clock. Inject it in CLI surfaces
// where real latencies matter; never in tests or deterministic runs.
type Wall struct{}

// Now returns the wall-clock time.
func (Wall) Now() time.Time {
	return time.Now() // the engine's sole sanctioned wall-clock read
}

// wallTicker starts a real-time ticker. It lives here — not in the
// progress reporter that uses it — so every wall-time read in the
// package, periodic or point-in-time, sits inside the one sanctioned
// seam, where clockflow's transitive-reachability facts start from.
func wallTicker(every time.Duration) *time.Ticker {
	return time.NewTicker(every)
}

// Virtual is a manually advanced clock pinned at the Unix epoch. It
// only moves when Advance is called, so spans measured against it
// record zero (or exactly the advanced) durations — the foundation of
// byte-identical snapshots.
type Virtual struct {
	ns atomic.Int64 // nanoseconds since the epoch
}

// NewVirtual returns a virtual clock at the Unix epoch.
func NewVirtual() *Virtual { return &Virtual{} }

// Now returns the virtual time in UTC.
func (v *Virtual) Now() time.Time {
	return time.Unix(0, v.ns.Load()).UTC()
}

// Advance moves the clock forward by d.
func (v *Virtual) Advance(d time.Duration) {
	v.ns.Add(int64(d))
}
