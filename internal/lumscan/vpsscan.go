package lumscan

import (
	"context"

	"geoblock/internal/proxy"
	"geoblock/internal/scanner"
)

// ScanVPS runs the §3.1-style exploration: fetching domains from the
// datacenter VPS fleet with ZGrab-like header realism. Unlike the
// residential mesh there are no proxy failures, but the crawler-ish
// fingerprint triggers bot defenses — the ~30% Akamai false-positive
// problem the paper reports. Result.Countries carries one entry per
// fleet position, and Sample.Country indexes the fleet.
func ScanVPS(fleet []*proxy.VPS, domains []string, cfg Config) *Result {
	res, err := scanner.ScanVPS(context.Background(), fleet, domains, cfg)
	if err != nil {
		// See Scan: only cancellation can error, and Background cannot
		// be cancelled.
		panic("lumscan: uncancellable scan failed: " + err.Error())
	}
	return res
}

// ScanVPSCtx is ScanVPS with cancellation.
func ScanVPSCtx(ctx context.Context, fleet []*proxy.VPS, domains []string, cfg Config) (*Result, error) {
	return scanner.ScanVPS(ctx, fleet, domains, cfg)
}

// ScanVPSStream streams a VPS scan into sink; a nil task list scans
// the full domain × fleet cross product.
func ScanVPSStream(ctx context.Context, fleet []*proxy.VPS, domains []string, tasks []Task, cfg Config, sink Sink) error {
	return scanner.RunVPS(ctx, fleet, domains, tasks, cfg, sink)
}
