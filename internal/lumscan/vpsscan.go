package lumscan

import (
	"context"
	"io"
	"net/http"
	"sync"

	"geoblock/internal/geo"
	"geoblock/internal/proxy"
	"geoblock/internal/vnet"
)

// ScanVPS runs the §3.1-style exploration: fetching domains from the
// datacenter VPS fleet with ZGrab-like header realism. Unlike the
// residential mesh there are no proxy failures, but the crawler-ish
// fingerprint triggers bot defenses — the ~30% Akamai false-positive
// problem the paper reports.
func ScanVPS(fleet []*proxy.VPS, domains []string, cfg Config) *Result {
	if cfg.Samples <= 0 {
		cfg.Samples = 1
	}
	if cfg.MaxRedirects <= 0 {
		cfg.MaxRedirects = 10
	}
	if cfg.Headers == nil {
		cfg.Headers = ZGrabHeaders()
	}
	if cfg.KeepBody == nil {
		cfg.KeepBody = func(status, _ int) bool { return status != 200 && status != 301 && status != 302 }
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}

	countries := make([]geo.CountryCode, len(fleet))
	for i, v := range fleet {
		countries[i] = v.Country
	}

	res := &Result{Domains: domains, Countries: countries}
	perVPS := make([][]Sample, len(fleet))
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Concurrency)
	for vi, v := range fleet {
		wg.Add(1)
		go func(vi int, v *proxy.VPS) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			perVPS[vi] = scanFromVPS(v, vi, domains, cfg)
		}(vi, v)
	}
	wg.Wait()
	for _, s := range perVPS {
		res.Samples = append(res.Samples, s...)
	}
	return res
}

func scanFromVPS(v *proxy.VPS, vi int, domains []string, cfg Config) []Sample {
	client := v.Stack().Client(cfg.MaxRedirects)
	out := make([]Sample, 0, len(domains)*cfg.Samples)
	for di, domain := range domains {
		for a := 0; a < cfg.Samples; a++ {
			seed := sampleSeed(domain, string(v.Country), cfg.Phase+"/vps", a)
			s := Sample{Domain: int32(di), Country: int16(vi), Attempt: uint8(a), Seed: seed, ExitIP: v.IP}

			ctx := vnet.WithSampleSeed(context.Background(), seed)
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+domain+"/", nil)
			if err != nil {
				s.Err = ErrDNS
				out = append(out, s)
				continue
			}
			for k, hv := range cfg.Headers {
				req.Header.Set(k, hv)
			}
			resp, err := client.Do(req)
			if err != nil {
				s.Err = classifyError(err)
				out = append(out, s)
				continue
			}
			s.Status = int16(resp.StatusCode)
			s.BodyLen = int32(resp.ContentLength)
			if cfg.KeepBody(resp.StatusCode, int(resp.ContentLength)) {
				body, rerr := io.ReadAll(resp.Body)
				if rerr == nil {
					s.Body = string(body)
					s.BodyLen = int32(len(body))
				} else {
					s.Err = ErrReset
				}
			}
			resp.Body.Close()
			out = append(out, s)
		}
	}
	return out
}
