// Package lumscan is the reproduction of the paper's Lumscan tool
// (§3.2): a reliable scanning engine over the residential proxy mesh.
// Its features are the ones the paper calls out — connectivity
// pre-checks on each exit, configurable retries for failed requests,
// full control of request headers (a bare User-Agent is not enough to
// avoid bot detection), and load balancing that rotates exit machines
// after a bounded number of requests so no end user carries the scan.
//
// Samples record status, body length (from Content-Length, so bodies
// that are not needed are never rendered), the exit that served them,
// and the deterministic seed that allows the exact response body to be
// re-fetched later (Replay) instead of storing terabytes of HTML.
//
// The engine itself lives in internal/scanner, layered as scheduler /
// session / fetcher / sink; this package re-exports it and adds the
// paper-shaped conveniences (DefaultConfig, Replay). Scan and ScanVPS
// materialize full results; the Ctx and Stream forms thread a
// context.Context for cancellation, and Stream delivers samples to a
// Sink as shards finish — in canonical country-major, task order, at
// any concurrency — so folding consumers never hold a full result.
package lumscan

import (
	"context"
	"fmt"
	"io"
	"net/http"

	"geoblock/internal/geo"
	"geoblock/internal/proxy"
	"geoblock/internal/scanner"
	"geoblock/internal/vnet"
	"geoblock/internal/worldgen"
)

// The scan-engine vocabulary, re-exported from internal/scanner.
type (
	// ErrCode classifies a failed sample.
	ErrCode = scanner.ErrCode
	// Sample is one measurement.
	Sample = scanner.Sample
	// Task is one (domain, country) pair to measure.
	Task = scanner.Task
	// Config tunes a scan.
	Config = scanner.Config
	// Result is a completed scan.
	Result = scanner.Result
	// ExitLoad is the per-exit load accounting of Result.LoadReport.
	ExitLoad = scanner.ExitLoad
	// RetryPolicy is the session layer's retry/rotation contract.
	RetryPolicy = scanner.RetryPolicy
	// Sink receives samples as they stream out of a scan.
	Sink = scanner.Sink
	// SinkFunc adapts a function to the Sink interface.
	SinkFunc = scanner.SinkFunc
	// Collect is the materializing sink.
	Collect = scanner.Collect
	// Outage is the typed per-country degradation record.
	Outage = scanner.Outage
	// OutageReason classifies why a country produced no measurements.
	OutageReason = scanner.OutageReason
	// OutageSink is the optional sink channel for outage/coverage records.
	OutageSink = scanner.OutageSink
	// Coverage is the attained-vs-requested summary of a run.
	Coverage = scanner.Coverage
	// BodyPolicy is the serializable body-retention policy.
	BodyPolicy = scanner.BodyPolicy
	// WorkUnit is one leasable scheduler shard (the distributed fabric's
	// unit of work).
	WorkUnit = scanner.WorkUnit
)

const (
	OutageNone     = scanner.OutageNone
	OutageNoExits  = scanner.OutageNoExits
	OutageBrownout = scanner.OutageBrownout
	OutageDark     = scanner.OutageDark

	ErrNone      = scanner.ErrNone
	ErrProxy     = scanner.ErrProxy
	ErrTimeout   = scanner.ErrTimeout
	ErrDNS       = scanner.ErrDNS
	ErrReset     = scanner.ErrReset
	ErrRedirects = scanner.ErrRedirects
	ErrLuminati  = scanner.ErrLuminati
	ErrNoExits   = scanner.ErrNoExits

	BodyDefault = scanner.BodyDefault
	BodyNone    = scanner.BodyNone
	BodyAll     = scanner.BodyAll
)

// CrossProduct builds the full task matrix.
var CrossProduct = scanner.CrossProduct

// BrowserHeaders is the full header set that suppresses bot detection
// (§3.2: "merely setting User-Agent is insufficient").
var BrowserHeaders = scanner.BrowserHeaders

// ZGrabHeaders is the bare header set of the §3.1 VPS exploration.
var ZGrabHeaders = scanner.ZGrabHeaders

// ProgressLine renders a one-line scan progress summary from a
// telemetry registry the scan was pointed at (Config.Metrics).
var ProgressLine = scanner.ProgressLine

// DefaultConfig is the initial-snapshot configuration of §4.1.1.
func DefaultConfig() Config {
	return Config{
		Samples:            3,
		Retries:            2,
		RequestsPerExit:    10,
		MaxRedirects:       10,
		Concurrency:        8,
		Headers:            BrowserHeaders(),
		Phase:              "initial",
		VerifyConnectivity: true,
	}
}

// Scan measures tasks through the proxy mesh and materializes the full
// result, in canonical country-major, task order.
func Scan(net *proxy.Network, domains []string, countries []geo.CountryCode, tasks []Task, cfg Config) *Result {
	res, err := scanner.Scan(context.Background(), net, domains, countries, tasks, cfg)
	if err != nil {
		// The engine errors only on cancellation and the background
		// context is never cancelled; anything else is an engine bug,
		// not a degraded run the caller could reason about.
		panic("lumscan: uncancellable scan failed: " + err.Error())
	}
	return res
}

// ScanCtx is Scan with cancellation: a cancelled scan returns the
// samples emitted so far alongside ctx.Err().
func ScanCtx(ctx context.Context, net *proxy.Network, domains []string, countries []geo.CountryCode, tasks []Task, cfg Config) (*Result, error) {
	return scanner.Scan(ctx, net, domains, countries, tasks, cfg)
}

// ScanStream runs the scan against a streaming sink instead of
// materializing a Result: samples arrive in canonical order as shards
// complete, and a folding sink can drop bodies immediately.
func ScanStream(ctx context.Context, net *proxy.Network, domains []string, countries []geo.CountryCode, tasks []Task, cfg Config, sink Sink) error {
	return scanner.Run(ctx, net, domains, countries, tasks, cfg, sink)
}

// Replay re-fetches the exact body of a previously collected sample:
// the response is a pure function of (domain, exit address, seed), so
// the pipeline can cluster outlier bodies without having stored them.
func Replay(w *worldgen.World, domain string, exit geo.IP, seed uint64, headers map[string]string, maxRedirects int) (string, int, error) {
	stack := vnet.NewStack(w, exit)
	client := stack.Client(maxRedirects)
	ctx := vnet.WithSampleSeed(context.Background(), seed)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+domain+"/", nil)
	if err != nil {
		return "", 0, err
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := client.Do(req)
	if err != nil {
		return "", 0, fmt.Errorf("lumscan: replay %s: %w", domain, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", 0, err
	}
	return string(body), resp.StatusCode, nil
}
