// Package lumscan is the reproduction of the paper's Lumscan tool
// (§3.2): a reliable scanning engine over the residential proxy mesh.
// Its features are the ones the paper calls out — connectivity
// pre-checks on each exit, configurable retries for failed requests,
// full control of request headers (a bare User-Agent is not enough to
// avoid bot detection), and load balancing that rotates exit machines
// after a bounded number of requests so no end user carries the scan.
//
// Samples record status, body length (from Content-Length, so bodies
// that are not needed are never rendered), the exit that served them,
// and the deterministic seed that allows the exact response body to be
// re-fetched later (Replay) instead of storing terabytes of HTML.
package lumscan

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"geoblock/internal/geo"
	"geoblock/internal/proxy"
	"geoblock/internal/stats"
	"geoblock/internal/vnet"
	"geoblock/internal/worldgen"
)

// ErrCode classifies a failed sample.
type ErrCode uint8

const (
	// ErrNone: the request completed with an HTTP response.
	ErrNone ErrCode = iota
	// ErrProxy: the exit or superproxy failed.
	ErrProxy
	// ErrTimeout: the connection timed out.
	ErrTimeout
	// ErrDNS: name resolution failed (including poisoned answers).
	ErrDNS
	// ErrReset: the connection was reset in-path.
	ErrReset
	// ErrRedirects: the redirect limit was exceeded.
	ErrRedirects
	// ErrLuminati: the proxy platform refused the domain
	// (X-Luminati-Error).
	ErrLuminati
	// ErrNoExits: the country has no usable exits.
	ErrNoExits
)

func (e ErrCode) String() string {
	switch e {
	case ErrNone:
		return "ok"
	case ErrProxy:
		return "proxy"
	case ErrTimeout:
		return "timeout"
	case ErrDNS:
		return "dns"
	case ErrReset:
		return "reset"
	case ErrRedirects:
		return "redirects"
	case ErrLuminati:
		return "luminati"
	case ErrNoExits:
		return "no-exits"
	}
	return "unknown"
}

// Sample is one measurement. The struct is deliberately compact: a full
// Top-10K study holds millions of them.
type Sample struct {
	Domain  int32 // index into Result.Domains
	Country int16 // index into Result.Countries
	Attempt uint8 // which sample of the pair (0-based)
	Err     ErrCode
	Status  int16
	BodyLen int32
	ExitIP  geo.IP
	Seed    uint64 // replay key
	Body    string // retained only when Config.KeepBody said so
}

// OK reports whether the sample carries an HTTP response.
func (s *Sample) OK() bool { return s.Err == ErrNone }

// Config tunes a scan.
type Config struct {
	// Samples per (domain, country) pair.
	Samples int
	// Retries per failed sample (the Lumscan reliability feature).
	Retries int
	// RequestsPerExit bounds per-exit load before rotation (paper: 10).
	RequestsPerExit int
	// MaxRedirects bounds the redirect chain (paper: 10).
	MaxRedirects int
	// Concurrency bounds the number of in-flight countries.
	Concurrency int
	// Headers are sent on every request. Use BrowserHeaders for the
	// full browser set; a bare UA reproduces the ZGrab false positives.
	Headers map[string]string
	// KeepBody decides whether a sample retains its body. Nil keeps
	// non-200 bodies (every block page is non-200).
	KeepBody func(status, bodyLen int) bool
	// Phase salts the per-sample seeds so that repeated passes over the
	// same pairs draw fresh samples.
	Phase string
	// VerifyConnectivity runs the platform echo check when picking up a
	// new exit, rotating away from dead machines.
	VerifyConnectivity bool
}

// DefaultConfig is the initial-snapshot configuration of §4.1.1.
func DefaultConfig() Config {
	return Config{
		Samples:            3,
		Retries:            2,
		RequestsPerExit:    10,
		MaxRedirects:       10,
		Concurrency:        8,
		Headers:            BrowserHeaders(),
		Phase:              "initial",
		VerifyConnectivity: true,
	}
}

// BrowserHeaders is the full header set that suppresses bot detection
// (§3.2: "merely setting User-Agent is insufficient").
func BrowserHeaders() map[string]string {
	return map[string]string{
		"User-Agent":      "Mozilla/5.0 (Macintosh; Intel Mac OS X 10.13; rv:61.0) Gecko/20100101 Firefox/61.0",
		"Accept":          "text/html,application/xhtml+xml,application/xml;q=0.9,*/*;q=0.8",
		"Accept-Language": "en-US,en;q=0.5",
	}
}

// ZGrabHeaders is the bare header set of the §3.1 VPS exploration.
func ZGrabHeaders() map[string]string {
	return map[string]string{
		"User-Agent": "Mozilla/5.0 (Macintosh; Intel Mac OS X 10.13; rv:61.0) Gecko/20100101 Firefox/61.0",
	}
}

// Task is one (domain, country) pair to measure.
type Task struct {
	Domain  int32
	Country int16
}

// Result is a completed scan.
type Result struct {
	Domains   []string
	Countries []geo.CountryCode
	Samples   []Sample
}

// ExitLoad summarizes how many requests each exit machine served — the
// accounting behind the paper's promise that the scan "keeps us from
// consuming too many resources on any single end user's machine"
// (§3.2). Counting is per contiguous stretch on an exit: the per-exit
// budget bounds each stretch, and rotation cycles the inventory.
type ExitLoad struct {
	// MaxStretch is the longest run of consecutive samples served by
	// one exit within a country.
	MaxStretch int
	// PerExit counts total samples per exit address.
	PerExit map[geo.IP]int
}

// LoadReport computes the per-exit accounting from the samples.
func (r *Result) LoadReport() ExitLoad {
	load := ExitLoad{PerExit: map[geo.IP]int{}}
	var prevExit geo.IP
	var prevCountry int16 = -1
	stretch := 0
	for i := range r.Samples {
		s := &r.Samples[i]
		if s.ExitIP == 0 {
			continue
		}
		load.PerExit[s.ExitIP]++
		if s.ExitIP == prevExit && s.Country == prevCountry {
			stretch++
		} else {
			stretch = 1
			prevExit, prevCountry = s.ExitIP, s.Country
		}
		if stretch > load.MaxStretch {
			load.MaxStretch = stretch
		}
	}
	return load
}

// CrossProduct builds the full task matrix.
func CrossProduct(nDomains, nCountries int) []Task {
	tasks := make([]Task, 0, nDomains*nCountries)
	for c := 0; c < nCountries; c++ {
		for d := 0; d < nDomains; d++ {
			tasks = append(tasks, Task{Domain: int32(d), Country: int16(c)})
		}
	}
	return tasks
}

// Scan measures tasks through the proxy mesh. Tasks are grouped by
// country; each country is scanned by one worker holding a sticky
// session, so results are deterministic even under concurrency.
func Scan(net *proxy.Network, domains []string, countries []geo.CountryCode, tasks []Task, cfg Config) *Result {
	if cfg.Samples <= 0 {
		cfg.Samples = 1
	}
	if cfg.MaxRedirects <= 0 {
		cfg.MaxRedirects = 10
	}
	if cfg.RequestsPerExit <= 0 {
		cfg.RequestsPerExit = 10
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.Headers == nil {
		cfg.Headers = BrowserHeaders()
	}
	if cfg.KeepBody == nil {
		cfg.KeepBody = func(status, _ int) bool { return status != 200 && status != 301 && status != 302 }
	}

	byCountry := make([][]Task, len(countries))
	for _, t := range tasks {
		byCountry[t.Country] = append(byCountry[t.Country], t)
	}

	results := make([][]Sample, len(countries))
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Concurrency)
	for ci := range countries {
		if len(byCountry[ci]) == 0 {
			continue
		}
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[ci] = scanCountry(net, domains, countries[ci], byCountry[ci], cfg)
		}(ci)
	}
	wg.Wait()

	res := &Result{Domains: domains, Countries: countries}
	for _, rs := range results {
		res.Samples = append(res.Samples, rs...)
	}
	return res
}

// scanCountry runs one country's tasks through a sticky session.
func scanCountry(net *proxy.Network, domains []string, cc geo.CountryCode, tasks []Task, cfg Config) []Sample {
	slot := hash(string(cc) + "/" + cfg.Phase)
	sess, err := net.NewSession(cc, slot)
	if err != nil {
		out := make([]Sample, 0, len(tasks)*cfg.Samples)
		for _, t := range tasks {
			for a := 0; a < cfg.Samples; a++ {
				out = append(out, Sample{Domain: t.Domain, Country: t.Country, Attempt: uint8(a), Err: ErrNoExits})
			}
		}
		return out
	}

	client := &http.Client{
		Transport: sess,
		CheckRedirect: func(req *http.Request, via []*http.Request) error {
			if len(via) >= cfg.MaxRedirects {
				return errRedirectLimit
			}
			return nil
		},
	}

	out := make([]Sample, 0, len(tasks)*cfg.Samples)
	for _, t := range tasks {
		domain := domains[t.Domain]
		for a := 0; a < cfg.Samples; a++ {
			seed := sampleSeed(domain, string(cc), cfg.Phase, a)
			s := fetchWithRetries(client, sess, domain, seed, t, uint8(a), cfg)
			out = append(out, s)
		}
	}
	return out
}

var errRedirectLimit = errors.New("lumscan: redirect limit reached")

// fetchWithRetries performs one logical sample: up to 1+Retries
// attempts, rotating the exit between attempts and when the per-exit
// budget is spent.
func fetchWithRetries(client *http.Client, sess *proxy.Session, domain string, seed uint64, t Task, attempt uint8, cfg Config) Sample {
	var last Sample
	for try := 0; try <= cfg.Retries; try++ {
		if sess.Used() >= cfg.RequestsPerExit {
			sess.Rotate()
		}
		if cfg.VerifyConnectivity && sess.Used() == 0 {
			// Fresh exit: run the platform echo check; rotate through
			// dead machines (bounded so a fully dark inventory
			// degrades into plain failures rather than spinning).
			for probe := 0; probe < 5; probe++ {
				if _, _, err := sess.Verify(seed + uint64(probe)); err == nil {
					break
				}
				sess.Rotate()
			}
		}
		trySeed := seed + uint64(try)*0x9e3779b97f4a7c15
		last = fetchOnce(client, sess, domain, trySeed, t, attempt, cfg)
		if last.Err == ErrNone || last.Err == ErrLuminati {
			return last
		}
		sess.Rotate()
	}
	return last
}

func fetchOnce(client *http.Client, sess *proxy.Session, domain string, seed uint64, t Task, attempt uint8, cfg Config) Sample {
	s := Sample{Domain: t.Domain, Country: t.Country, Attempt: attempt, Seed: seed, ExitIP: sess.Exit().IP}

	ctx := vnet.WithSampleSeed(context.Background(), seed)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+domain+"/", nil)
	if err != nil {
		s.Err = ErrDNS
		return s
	}
	for k, v := range cfg.Headers {
		req.Header.Set(k, v)
	}

	resp, err := client.Do(req)
	if err != nil {
		s.Err = classifyError(err)
		return s
	}
	defer resp.Body.Close()

	// The exit that served the *final* hop matters for replay.
	s.ExitIP = sess.Exit().IP
	if resp.Header.Get("X-Luminati-Error") != "" {
		s.Err = ErrLuminati
		return s
	}
	s.Status = int16(resp.StatusCode)
	s.BodyLen = int32(resp.ContentLength)
	if cfg.KeepBody(resp.StatusCode, int(resp.ContentLength)) {
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			s.Err = ErrReset
			return s
		}
		s.Body = string(body)
		s.BodyLen = int32(len(body))
	}
	return s
}

func classifyError(err error) ErrCode {
	var op *vnet.OpError
	if errors.As(err, &op) {
		switch {
		case op.Timeout():
			return ErrTimeout
		case op.Op == "dns":
			return ErrDNS
		case op.Op == "proxy":
			return ErrProxy
		default:
			return ErrReset
		}
	}
	if errors.Is(err, errRedirectLimit) || strings.Contains(err.Error(), "redirect") {
		return ErrRedirects
	}
	return ErrProxy
}

// sampleSeed derives the deterministic per-sample seed.
func sampleSeed(domain, country, phase string, attempt int) uint64 {
	return stats.Mix64(hash(domain) ^ hash(country)<<1 ^ hash(phase)<<2 ^ uint64(attempt+1)*0x100000001b3)
}

// Replay re-fetches the exact body of a previously collected sample:
// the response is a pure function of (domain, exit address, seed), so
// the pipeline can cluster outlier bodies without having stored them.
func Replay(w *worldgen.World, domain string, exit geo.IP, seed uint64, headers map[string]string, maxRedirects int) (string, int, error) {
	stack := vnet.NewStack(w, exit)
	client := stack.Client(maxRedirects)
	ctx := vnet.WithSampleSeed(context.Background(), seed)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+domain+"/", nil)
	if err != nil {
		return "", 0, err
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := client.Do(req)
	if err != nil {
		return "", 0, fmt.Errorf("lumscan: replay %s: %w", domain, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", 0, err
	}
	return string(body), resp.StatusCode, nil
}

func hash(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
